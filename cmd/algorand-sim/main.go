// algorand-sim runs a simulated Algorand deployment and reports
// per-round consensus latency, finality, and network costs.
//
// Usage:
//
//	algorand-sim -n 100 -rounds 5 -blocksize 1048576 -malicious 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"algorand"
)

func main() {
	var (
		n         = flag.Int("n", 100, "number of users")
		rounds    = flag.Uint64("rounds", 3, "rounds to run")
		blockSize = flag.Int("blocksize", 1<<20, "block size in bytes")
		malicious = flag.Float64("malicious", 0, "fraction of equivocating users (0..0.3)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		realCrypt = flag.Bool("real-crypto", false, "use full Ed25519+ECVRF instead of the fast provider")
		shards    = flag.Uint64("shards", 0, "storage shard count (0 = archive everything)")
	)
	flag.Parse()

	cfg := algorand.NewSimConfig(*n, *rounds)
	cfg.Seed = *seed
	cfg.Params.BlockSize = *blockSize
	cfg.UseRealCrypto = *realCrypt
	cfg.ShardCount = *shards

	fmt.Printf("simulating %d users, %d rounds, %d KB blocks (crypto: %s)\n",
		*n, *rounds, *blockSize>>10, providerName(*realCrypt))
	cluster := algorand.NewCluster(cfg)
	if *malicious > 0 {
		k := int(*malicious * float64(*n))
		fmt.Printf("making %d users malicious (equivocating proposers + double voters)\n", k)
		cluster.MakeEquivocatingProposers(k)
	}
	end := cluster.Run()

	for r := uint64(1); r <= *rounds; r++ {
		fmt.Printf("round %2d: %v\n", r, algorand.Summarize(cluster.RoundLatencies(r)))
	}
	final, empty := cluster.FinalityRate()
	fmt.Printf("final-consensus rate %.0f%%, empty-block rate %.0f%%\n", 100*final, 100*empty)

	if err := cluster.AgreementCheck(); err != nil {
		fmt.Println("AGREEMENT VIOLATION:", err)
		os.Exit(1)
	}
	fmt.Println("agreement holds across all nodes ✓")

	var sent int64
	for i := range cluster.Nodes {
		sent += cluster.Net.NodeStats(i).BytesSent
	}
	fmt.Printf("network: %.1f MB total, %.2f Mbit/s per user over %v\n",
		float64(sent)/(1<<20),
		float64(sent*8)/end.Seconds()/float64(*n)/1e6,
		end)
}

func providerName(real bool) string {
	if real {
		return "real"
	}
	return "fast"
}
