// algorand-gateway runs one real access-tier node over TCP: the
// user-facing front door between clients and an algorand-node
// deployment. Gateways occupy the LAST -gateways entries of the shared
// address book; consensus nodes run with the same book and the same
// -gateways count so everyone agrees on who votes and who fronts:
//
//	BOOK=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	algorand-node    -id 0 -peers $BOOK -gateways 1 -rounds 5 &
//	algorand-node    -id 1 -peers $BOOK -gateways 1 -rounds 5 &
//	algorand-node    -id 2 -peers $BOOK -gateways 1 -rounds 5 &
//	algorand-gateway -id 3 -peers $BOOK -gateways 1 -listen 127.0.0.1:8000 -rounds 5
//
// Clients submit transactions and run queries against -listen (the
// node -submit-addr TCP/JSON protocol plus {"op":...} queries); the
// gateway validates at the edge, routes admitted transactions to
// deterministic consensus clusters, and answers reads from its
// CommitAnnounce-fed read model. Consensus nodes carry zero client
// connections. A gateway owns no stake and signs nothing, so it needs
// no identity of its own — only the shared genesis derivation.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/gateway"
	"algorand/internal/ledger"
	"algorand/internal/metrics"
	"algorand/internal/node"
	"algorand/internal/params"
	"algorand/internal/realnet"
	"algorand/internal/vtime"
)

func main() {
	var (
		id       = flag.Int("id", 0, "this gateway's index in the address book (must be one of the last -gateways entries)")
		peers    = flag.String("peers", "", "comma-separated host:port address book (consensus nodes first, gateways last)")
		gateways = flag.Int("gateways", 1, "how many trailing address-book entries are gateways")
		gseed    = flag.Uint64("genesis-seed", 1, "shared genesis seed word (must match the nodes)")
		weight   = flag.Uint64("weight", 10, "currency units per user (must match the nodes)")
		listen   = flag.String("listen", "", "listen address for the client TCP/JSON endpoint (required)")
		rounds   = flag.Uint64("rounds", 0, "exit once the read model reaches this round (0 = run until killed)")
		maxConns = flag.Int("max-conns", 1024, "concurrent client connection cap")
		workers  = flag.Int("tx-workers", 4, "edge signature-verification workers")
		metricsA = flag.String("metrics-addr", "", "listen address for the Prometheus-style text metrics endpoint (empty = off)")
		verbose  = flag.Bool("v", false, "log transport errors")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	voters := len(addrs) - *gateways
	if voters < 2 || *id < voters || *id >= len(addrs) {
		fmt.Fprintln(os.Stderr, "need -peers with >=2 consensus addresses and a gateway -id in the last -gateways slots")
		os.Exit(2)
	}
	if *listen == "" {
		fmt.Fprintln(os.Stderr, "need -listen for the client endpoint")
		os.Exit(2)
	}

	// The same genesis derivation as algorand-node: only the first
	// `voters` book entries are funded identities; gateways hold none.
	provider := crypto.NewReal()
	genesis := make(map[crypto.PublicKey]uint64)
	for i := 0; i < voters; i++ {
		idty := provider.NewIdentity(crypto.SeedFromUint64(*gseed<<20 | uint64(i)))
		genesis[idty.PublicKey()] = *weight
	}
	seed0 := crypto.HashUint64("algorand-node.genesis", *gseed)

	reg := metrics.NewRegistry()
	sim := vtime.New().Realtime()
	ln, err := net.Listen("tcp", addrs[*id])
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen %s: %v\n", addrs[*id], err)
		os.Exit(1)
	}
	rcfg := realnet.DefaultConfig()
	rcfg.Metrics = reg
	transport := realnet.NewWithConfig(sim, *id, addrs, ln, rcfg)
	defer transport.Close()
	if *verbose {
		transport.OnError(func(err error) {
			fmt.Fprintf(os.Stderr, "transport: %v\n", err)
		})
	}

	consensus := make([]int, voters)
	for i := range consensus {
		consensus[i] = i
	}
	// The same committee-size derivation as algorand-node, so the read
	// model verifies certificates under the parameters the cluster
	// actually runs (the λ timing knobs do not enter verification).
	prm := params.Default()
	prm.TauProposer = uint64(voters)/2 + 1
	prm.TauStep = uint64(voters) * 3
	prm.TauFinal = uint64(voters) * 6
	prm.MaxSteps = 12

	cfg := gateway.Config{
		Consensus:   consensus,
		Committee:   node.CommitteeParamsFor(prm),
		LedgerCfg:   ledger.DefaultConfig(),
		FlowWorkers: *workers,
		MaxConns:    *maxConns,
		Metrics:     reg,
	}
	// The TCP server submits from its own goroutines, so the pipeline
	// clock must be readable off the scheduler: use the wall clock.
	epoch := time.Now()
	cfg.Flow.Now = func() time.Duration { return time.Since(epoch) }

	gw := gateway.New(*id, sim, transport, provider, cfg, genesis, seed0)
	transport.Start()
	gw.Start()
	defer gw.Close()

	srv, err := gateway.ListenAndServe(*listen, gw)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("gateway %d fronting %d consensus nodes, serving clients on %s\n",
		*id, voters, srv.Addr())

	if *metricsA != "" {
		mln, err := net.Listen("tcp", *metricsA)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics listen %s: %v\n", *metricsA, err)
			os.Exit(1)
		}
		defer mln.Close()
		go http.Serve(mln, reg.Handler())
		fmt.Printf("gateway %d serving metrics on http://%s/\n", *id, mln.Addr())
	}

	if *rounds > 0 {
		sim.Spawn("watcher", func(p *vtime.Proc) {
			for {
				if st := gw.Stats(); st.HeadRound >= *rounds {
					// Linger so late queries still see the head.
					p.Sleep(time.Second)
					sim.Stop()
					return
				}
				p.Sleep(100 * time.Millisecond)
			}
		})
	}
	start := time.Now()
	sim.Run(24 * time.Hour)

	st := gw.Stats()
	fmt.Printf("gateway %d finished at round %d in %v\n", *id, st.HeadRound, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  sessions=%d queries=%d submitted=%d admitted=%d rejected=%d\n",
		st.Sessions, st.Queries, st.Submitted, st.Admitted, st.Rejected)
	fmt.Printf("  routed: %d txs in %d batches (%d bytes), resent=%d\n",
		st.TxsRouted, st.BatchesRouted, st.BytesRouted, st.Resent)
	fmt.Printf("  read model: %d blocks applied, %d announces (%d stale), %d chain fills, %d cert rejects\n",
		st.BlocksApplied, st.Announces, st.StaleAnnounces, st.ChainFills, st.CertRejects)
	fmt.Printf("  edge pool: %d pending (%d bytes); conn rejects=%d frame rejects=%d\n",
		st.Pending, st.PendingBytes, st.ConnRejects, st.FrameRejects)
}
