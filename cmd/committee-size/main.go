// committee-size computes the §7.5 committee-sizing curve (Figure 3):
// the minimal expected committee size τ, and the threshold T to use
// with it, such that the probability of a committee violating BA⋆'s
// constraints stays below a target.
//
// Usage:
//
//	committee-size -from 0.76 -to 0.90 -step 0.02 -target 5e-9
package main

import (
	"flag"
	"fmt"

	"algorand"
)

func main() {
	var (
		from   = flag.Float64("from", 0.76, "lowest honest fraction h")
		to     = flag.Float64("to", 0.90, "highest honest fraction h")
		step   = flag.Float64("step", 0.02, "h increment")
		target = flag.Float64("target", 5e-9, "violation probability bound")
	)
	flag.Parse()

	fmt.Printf("%-10s %-8s %-10s %-14s\n", "honest(h)", "tau", "T", "P[violation]")
	for h := *from; h <= *to+1e-9; h += *step {
		tau, T := algorand.MinCommitteeSize(h, *target)
		v := algorand.CommitteeViolationProb(float64(tau), h, T)
		fmt.Printf("%-10.2f %-8d %-10.3f %-14.2e\n", h, tau, T, v)
	}
	fmt.Printf("\npaper's operating point: h=0.80, tau=2000, T=0.685 → P = %.2e\n",
		algorand.CommitteeViolationProb(2000, 0.80, 0.685))
}
