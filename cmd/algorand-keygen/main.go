// algorand-keygen derives an Algorand identity (Ed25519 signing key +
// ECVRF key, same RFC 8032 derivation, same public key) and
// demonstrates a verifiable sortition draw with it.
//
// Usage:
//
//	algorand-keygen -seed 42
package main

import (
	"encoding/hex"
	"flag"
	"fmt"

	"algorand"
)

func main() {
	var (
		seedWord = flag.Uint64("seed", 0, "deterministic seed word (0 = random)")
		out      = flag.String("out", "", "write the seed to this key file (0600, never overwrites)")
		in       = flag.String("in", "", "load the seed from an existing key file")
	)
	flag.Parse()

	provider := algorand.NewRealCrypto()
	var seed = algorand.NewSeed(*seedWord)
	switch {
	case *in != "":
		s, err := algorand.LoadSeed(*in)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		seed = s
	case *seedWord == 0:
		s, err := algorand.RandomSeed()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		seed = s
	}
	if *out != "" {
		if err := algorand.SaveSeed(*out, seed); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("seed saved to", *out)
	}
	id := provider.NewIdentity(seed)
	pk := id.PublicKey()
	fmt.Printf("public key:   %s\n", hex.EncodeToString(pk[:]))

	// Sign something.
	msg := []byte("hello algorand")
	sig := id.Sign(msg)
	fmt.Printf("signature:    %s... (verifies: %v)\n",
		hex.EncodeToString(sig[:16]), provider.VerifySig(pk, msg, sig))

	// Evaluate the VRF via a sortition draw and verify it publicly.
	role := algorand.SortitionRole{Kind: algorand.RoleCommittee, Round: 1, Step: 1}
	res := algorand.Sortition(id, []byte("example-seed"), role, 500, 10, 100)
	fmt.Printf("vrf output:   %s...\n", hex.EncodeToString(res.Output[:16]))
	fmt.Printf("vrf proof:    %s... (%d bytes)\n", hex.EncodeToString(res.Proof[:16]), len(res.Proof))
	_, j := algorand.VerifySortition(provider, pk, res.Proof, []byte("example-seed"), role, 500, 10, 100)
	fmt.Printf("selected as %d of the user's 10 sub-users (publicly verified: %d)\n", res.J, j)
}
