// experiments regenerates the paper's evaluation tables and figures
// (§10 and Figure 3) as TSV series on stdout. EXPERIMENTS.md records a
// reference run.
//
// Usage:
//
//	experiments -run all
//	experiments -run figure5 -users 2 -rounds 5
package main

import (
	"flag"
	"fmt"
	"os"

	"algorand/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment: figure3|figure5|figure6|figure7|figure8|throughput|costs|timeouts|steps|ablations|pipeline|coin|sync|all")
		users  = flag.Float64("users", 1, "user-count multiplier")
		rounds = flag.Uint64("rounds", 3, "rounds per run")
	)
	flag.Parse()

	scale := experiments.Scale{Users: *users, Rounds: *rounds}
	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	if want("figure3") {
		ran = true
		fmt.Println("# Figure 3: committee size vs honest fraction (violation <= 5e-9)")
		fmt.Println("h\ttau\tT")
		for _, p := range experiments.Figure3(experiments.DefaultFigure3Fractions()) {
			fmt.Printf("%.2f\t%d\t%.3f\n", p.HonestFraction, p.Tau, p.Threshold)
		}
		fmt.Println()
	}
	if want("figure5") {
		ran = true
		fmt.Println("# Figure 5: round latency vs users (dedicated bandwidth)")
		printLatency(experiments.Figure5(scale, experiments.DefaultFigure5Users()), "users")
	}
	if want("figure6") {
		ran = true
		fmt.Println("# Figure 6: round latency vs users (10 users share one VM NIC)")
		printLatency(experiments.Figure6(scale, experiments.DefaultFigure5Users(), 10), "users")
	}
	if want("figure7") {
		ran = true
		fmt.Println("# Figure 7: phase breakdown vs block size")
		fmt.Println("bytes\tproposal_med\tba_med\tfinal_med\ttotal_med")
		for _, p := range experiments.Figure7(scale, experiments.DefaultFigure7Sizes()) {
			fmt.Printf("%d\t%.2f\t%.2f\t%.2f\t%.2f\n", p.BlockSize,
				p.Phases.BlockProposal.Median.Seconds(),
				p.Phases.BAWithoutFinal.Median.Seconds(),
				p.Phases.FinalStep.Median.Seconds(),
				p.Phases.RoundCompletion.Median.Seconds())
		}
		fmt.Println()
	}
	if want("figure8") {
		ran = true
		fmt.Println("# Figure 8: round latency vs malicious fraction (equivocation attack)")
		printLatency(experiments.Figure8(scale, experiments.DefaultFigure8Fractions()), "malicious%")
	}
	if want("throughput") {
		ran = true
		fmt.Println("# Throughput vs Bitcoin (§10.2)")
		fmt.Println("system\tblock_bytes\tMB_per_hour\tconfirmation_med_s")
		for _, r := range experiments.ThroughputVsBitcoin(scale, []int{1 << 20, 2 << 20, 4 << 20}) {
			fmt.Printf("%s\t%d\t%.1f\t%.1f\n", r.System, r.BlockSize,
				r.MBytesPerHour, r.ConfLatencyMedian.Seconds())
		}
		fmt.Println()
	}
	if want("costs") {
		ran = true
		rep := experiments.Costs(scale)
		fmt.Println("# Costs (§10.3)")
		fmt.Printf("cpu_core_fraction_per_user\t%.4f\n", rep.CPUCoreFraction)
		fmt.Printf("bandwidth_mbps_per_user\t%.2f\n", rep.BandwidthMbps)
		fmt.Printf("certificate_kb\t%.0f\n", rep.CertificateKB)
		fmt.Printf("sharded_storage_kb_per_user_per_block\t%.1f\n", rep.StorageKBPerBlockSharded)
		fmt.Println()
	}
	if want("timeouts") {
		ran = true
		rep := experiments.TimeoutValidation(scale)
		fmt.Println("# Timeout validation (§10.5)")
		fmt.Printf("step_time\t%v\n", rep.StepTimes)
		fmt.Printf("completion_spread_p75_p25\t%v\n", rep.StepSpread)
		fmt.Printf("priority_propagation\t%v\n", rep.PriorityPropagation)
		fmt.Printf("timeout_fraction\t%.3f\n", rep.TimeoutFraction)
		fmt.Println()
	}
	if want("steps") {
		ran = true
		fmt.Println("# BinaryBA⋆ step counts (§4/§7 efficiency)")
		for _, mal := range []float64{0, 0.2} {
			rep := experiments.StepCounts(scale, mal)
			fmt.Printf("malicious=%.0f%%\thistogram=%v\tfinal_rate=%.2f\n",
				100*mal, rep.Histogram, rep.FinalRate)
		}
		fmt.Println()
	}
	if want("ablations") {
		ran = true
		fmt.Println("# Ablations (DESIGN.md)")
		for _, res := range []experiments.AblationResult{
			experiments.AblatePriorityGossip(scale),
			experiments.AblateVoteNext3(scale),
			experiments.AblateEquivocationDiscard(scale),
		} {
			fmt.Printf("%s\tbaseline_med=%.2fs\tablated_med=%.2fs\tbytes_ratio=%.2f\tempty: %.2f -> %.2f\n",
				res.Name,
				res.Baseline.Latency.Median.Seconds(), res.Ablated.Latency.Median.Seconds(),
				res.ExtraBytesFraction, res.Baseline.EmptyRate, res.Ablated.EmptyRate)
		}
		fmt.Println()
	}
	if want("pipeline") {
		ran = true
		res := experiments.PipelineThroughput(scale)
		fmt.Println("# Final-step pipelining (§10.2 optimization)")
		fmt.Printf("baseline_round_s\t%.2f\tfinal_rate\t%.2f\n",
			res.BaselineRoundTime.Seconds(), res.BaselineFinalRate)
		fmt.Printf("pipelined_round_s\t%.2f\tfinal_rate\t%.2f\tspeedup\t%.2fx\n",
			res.PipelinedRoundTime.Seconds(), res.PipelinedFinalRate, res.Speedup)
		fmt.Println()
	}
	if want("coin") {
		ran = true
		fmt.Println("# Common-coin ablation under the §7.4 vote-splitting adversary")
		res := experiments.RunCoinAblation(8, 42)
		fmt.Println(res.Summary())
		fmt.Println()
	}
	if want("sync") {
		ran = true
		fmt.Println("# Cold-restart cost: genesis replay vs checkpoint+delta (§8.3)")
		fmt.Println("chain\tcheckpoint\tdelta\tfull_ms\tsnapshot_ms\tspeedup\theads_equal")
		rep := experiments.SyncFastRestart(scale, experiments.DefaultSyncLengths(), 10, 0)
		for _, p := range rep.Points {
			fmt.Printf("%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%v\n", p.ChainLength,
				p.CheckpointRound, p.DeltaRounds, p.FullReplayMs, p.SnapshotSyncMs,
				p.Speedup, p.HeadsEqual)
		}
		fmt.Printf("sub_linear\t%v\n", rep.SubLinear)
		fmt.Println()
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

func printLatency(pts []experiments.LatencyPoint, xName string) {
	fmt.Printf("%s\tmin_s\tp25_s\tmed_s\tp75_s\tmax_s\tfinal_rate\tempty_rate\n", xName)
	for _, p := range pts {
		fmt.Printf("%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", p.Users,
			p.Latency.Min.Seconds(), p.Latency.P25.Seconds(), p.Latency.Median.Seconds(),
			p.Latency.P75.Seconds(), p.Latency.Max.Seconds(), p.FinalRate, p.EmptyRate)
	}
	fmt.Println()
}
