// algorand-node runs one real Algorand user over TCP: the same node
// implementation the simulator drives, on a wall-clock scheduler, with
// full Ed25519 + ECVRF cryptography. Start one process per user, give
// them all the same address book and genesis seed, and watch them reach
// Byzantine agreement:
//
//	algorand-node -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -rounds 3 &
//	algorand-node -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -rounds 3 &
//	algorand-node -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -rounds 3
//
// Identities and genesis balances derive deterministically from the
// shared -genesis-seed, standing in for the paper's bootstrapping
// ceremony (§8.3); each process owns the identity at its -id.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/ledger/diskstore"
	"algorand/internal/node"
	"algorand/internal/params"
	"algorand/internal/realnet"
	"algorand/internal/txflow"
	"algorand/internal/vtime"
)

func main() {
	var (
		id       = flag.Int("id", 0, "this node's index in the address book")
		peers    = flag.String("peers", "", "comma-separated host:port address book (all nodes, in order)")
		rounds   = flag.Uint64("rounds", 3, "rounds to run before exiting")
		gseed    = flag.Uint64("genesis-seed", 1, "shared genesis seed word")
		weight   = flag.Uint64("weight", 10, "currency units per user")
		lambdaMS = flag.Int("lambda-ms", 500, "λ_step in milliseconds (other λs scale with it)")
		verbose  = flag.Bool("v", false, "log transport errors")
		stats    = flag.Bool("stats", false, "print per-peer transport statistics on exit")
		statsSec = flag.Int("stats-interval", 0, "also print transport statistics every N seconds (0 = off)")
		submit   = flag.String("submit-addr", "", "listen address for the TCP/JSON transaction submission endpoint (empty = off)")
		workers  = flag.Int("tx-workers", 4, "signature-verification workers for gossip batches (0 = verify inline)")
		dataDir  = flag.String("data-dir", "", "directory for the durable WAL archive; restarts recover the chain from it (empty = in-memory only)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 || *id < 0 || *id >= len(addrs) {
		fmt.Fprintln(os.Stderr, "need -peers with >=2 addresses and a valid -id")
		os.Exit(2)
	}

	// Protocol parameters scaled to the deployment size and the chosen
	// step timeout.
	step := time.Duration(*lambdaMS) * time.Millisecond
	prm := params.Default()
	prm.TauProposer = uint64(len(addrs))/2 + 1
	prm.TauStep = uint64(len(addrs)) * 3
	prm.TauFinal = uint64(len(addrs)) * 6
	prm.LambdaStep = step
	prm.LambdaPriority = step / 2
	prm.LambdaStepVar = step / 4
	prm.LambdaBlock = 2 * step
	prm.MaxSteps = 12
	prm.BlockSize = 8 << 10

	// Shared genesis: all identities derive from the seed word.
	provider := crypto.NewReal()
	genesis := make(map[crypto.PublicKey]uint64)
	var self crypto.Identity
	for i := range addrs {
		idty := provider.NewIdentity(crypto.SeedFromUint64(*gseed<<20 | uint64(i)))
		genesis[idty.PublicKey()] = *weight
		if i == *id {
			self = idty
		}
	}
	seed0 := crypto.HashUint64("algorand-node.genesis", *gseed)

	sim := vtime.New().Realtime()
	transport, err := realnet.New(sim, *id, addrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer transport.Close()
	if *verbose {
		transport.OnError(func(err error) {
			fmt.Fprintf(os.Stderr, "transport: %v\n", err)
		})
	}

	cfg := node.Config{Params: prm, LedgerCfg: ledger.DefaultConfig()}
	cfg.TxFlowWorkers = *workers
	// The RPC server submits from its own goroutines, so the pipeline
	// clock must be readable off the scheduler: use the wall clock.
	epoch := time.Now()
	cfg.TxFlow.Now = func() time.Duration { return time.Since(epoch) }

	// Durable archive: every commit journals through the WAL before the
	// node proceeds, and a restart recovers the chain from disk (torn
	// tails truncated, checksums and certificates re-verified) before
	// rejoining via delta catch-up.
	var archive *diskstore.Store
	if *dataDir != "" {
		archive, err = diskstore.Open(*dataDir, diskstore.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening data dir: %v\n", err)
			os.Exit(1)
		}
		defer archive.Close()
		cfg.Archive = archive
	}

	nd := node.New(*id, sim, transport, provider, self, cfg, genesis, seed0)
	nd.StopAfterRound = *rounds

	var restored uint64
	if archive != nil {
		restored, err = nd.RestoreFromArchive(archive.Recovered())
		if err != nil {
			fmt.Fprintf(os.Stderr, "archive restore: %v\n", err)
			os.Exit(1)
		}
		st := archive.Stats()
		fmt.Printf("node %d recovered %d rounds from %s (%d records, %d bytes truncated, %d dropped)\n",
			*id, restored, *dataDir, st.RecoveredRecords, st.TruncatedBytes, st.DroppedRecords)
	}

	pk := self.PublicKey()
	fmt.Printf("node %d listening on %s (pk %s), running %d rounds...\n",
		*id, transport.Addr(), pk, *rounds)

	transport.Start()
	if restored > 0 {
		nd.StartAfterSync(time.Minute)
	} else {
		nd.Start()
	}
	defer nd.TxFlow().Close()
	if *submit != "" {
		srv, err := txflow.ListenAndServe(*submit, nd.TxFlow())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("node %d accepting transactions on %s\n", *id, srv.Addr())
	}
	if *statsSec > 0 {
		every := time.Duration(*statsSec) * time.Second
		sim.Spawn("stats", func(p *vtime.Proc) {
			for {
				p.Sleep(every)
				fmt.Fprintf(os.Stderr, "%s\n", transport.Stats())
				fmt.Fprintf(os.Stderr, "%s\n", nd.TxFlow().Stats())
			}
		})
	}
	// Stop once done, lingering briefly to serve lagging peers.
	sim.Spawn("watcher", func(p *vtime.Proc) {
		for nd.Ledger().ChainLength() < *rounds {
			p.Sleep(100 * time.Millisecond)
		}
		p.Sleep(2 * prm.LambdaStep)
		sim.Stop()
	})
	start := time.Now()
	sim.Run(10 * time.Minute)

	fmt.Printf("node %d finished %d rounds in %v\n", *id, nd.Ledger().ChainLength(), time.Since(start).Round(time.Millisecond))
	for _, st := range nd.Stats {
		status := "tentative"
		if st.Final {
			status = "FINAL"
		}
		kind := "block"
		if st.Empty {
			kind = "empty"
		}
		fmt.Printf("  round %d: %s %v (%s, %d binary steps, %v)\n",
			st.Round, kind, st.Value, status, st.BinarySteps, (st.End - st.Start).Round(time.Millisecond))
	}
	head := nd.Ledger().Head()
	fmt.Printf("head: round %d hash %s\n", head.Round, head.Hash().Hex()[:16])
	if h, ok := nd.TransportHealth(); ok {
		fmt.Printf("transport: %d/%d peers connected, %d quarantined, %d queue drops, %d redials\n",
			h.Connected, h.Peers, h.Quarantined, h.QueueDrops, h.Redials)
	}
	fmt.Printf("%s\n", nd.TxFlow().Stats())
	if *stats {
		fmt.Printf("%s\n", transport.Stats())
	}
}
