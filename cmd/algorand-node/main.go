// algorand-node runs one real Algorand user over TCP: the same node
// implementation the simulator drives, on a wall-clock scheduler, with
// full Ed25519 + ECVRF cryptography. Start one process per user, give
// them all the same address book and genesis seed, and watch them reach
// Byzantine agreement:
//
//	algorand-node -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -rounds 3 &
//	algorand-node -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -rounds 3 &
//	algorand-node -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -rounds 3
//
// Identities and genesis balances derive deterministically from the
// shared -genesis-seed, standing in for the paper's bootstrapping
// ceremony (§8.3); each process owns the identity at its -id.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/ledger/diskstore"
	"algorand/internal/metrics"
	"algorand/internal/node"
	"algorand/internal/params"
	"algorand/internal/realnet"
	"algorand/internal/trace"
	"algorand/internal/txflow"
	"algorand/internal/vtime"
)

func main() {
	var (
		id       = flag.Int("id", 0, "this node's index in the address book")
		peers    = flag.String("peers", "", "comma-separated host:port address book (all nodes, in order)")
		rounds   = flag.Uint64("rounds", 3, "rounds to run before exiting")
		gseed    = flag.Uint64("genesis-seed", 1, "shared genesis seed word")
		weight   = flag.Uint64("weight", 10, "currency units per user")
		lambdaMS = flag.Int("lambda-ms", 500, "λ_step in milliseconds (other λs scale with it)")
		verbose  = flag.Bool("v", false, "log transport errors")
		stats    = flag.Bool("stats", false, "print per-peer transport statistics on exit")
		statsSec = flag.Int("stats-interval", 0, "print a unified stats snapshot (rounds, BA⋆, pipeline, transport, disk) every N seconds (0 = off)")
		metricsA = flag.String("metrics-addr", "", "listen address for the Prometheus-style text metrics endpoint (empty = off)")
		submit   = flag.String("submit-addr", "", "listen address for the TCP/JSON transaction submission endpoint (empty = off)")
		workers  = flag.Int("tx-workers", 4, "signature-verification workers for gossip batches (0 = verify inline)")
		dataDir  = flag.String("data-dir", "", "directory for the durable WAL archive; restarts recover the chain from it (empty = in-memory only)")
		chkEvery = flag.Uint64("checkpoint-interval", 0, "journal a certified state checkpoint every N finally-certified rounds; restarts re-base onto the newest verified checkpoint and replay only the delta (0 = off, needs -data-dir)")
		gateways = flag.Int("gateways", 0, "how many trailing address-book entries are access-tier gateways (run algorand-gateway there)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	// Gateways occupy the tail of the book: they are in the transport's
	// address space but hold no stake and never vote. Parameters and
	// genesis scale with the voters only.
	voters := len(addrs) - *gateways
	if voters < 2 || *id < 0 || *id >= voters {
		fmt.Fprintln(os.Stderr, "need -peers with >=2 consensus addresses and a consensus -id (gateway slots run algorand-gateway)")
		os.Exit(2)
	}

	// Protocol parameters scaled to the deployment size and the chosen
	// step timeout.
	step := time.Duration(*lambdaMS) * time.Millisecond
	prm := params.Default()
	prm.TauProposer = uint64(voters)/2 + 1
	prm.TauStep = uint64(voters) * 3
	prm.TauFinal = uint64(voters) * 6
	prm.LambdaStep = step
	prm.LambdaPriority = step / 2
	prm.LambdaStepVar = step / 4
	prm.LambdaBlock = 2 * step
	prm.MaxSteps = 12
	prm.BlockSize = 8 << 10

	// Shared genesis: all identities derive from the seed word.
	provider := crypto.NewReal()
	genesis := make(map[crypto.PublicKey]uint64)
	var self crypto.Identity
	for i := 0; i < voters; i++ {
		idty := provider.NewIdentity(crypto.SeedFromUint64(*gseed<<20 | uint64(i)))
		genesis[idty.PublicKey()] = *weight
		if i == *id {
			self = idty
		}
	}
	seed0 := crypto.HashUint64("algorand-node.genesis", *gseed)

	// One registry for the whole process: the transport, the durable
	// archive, and the node (BA⋆ counters, round outcomes, trace phase
	// histograms, the tx pipeline) all record here, so the metrics
	// endpoint and the periodic snapshot see every subsystem at once.
	reg := metrics.NewRegistry()

	sim := vtime.New().Realtime()
	ln, err := net.Listen("tcp", addrs[*id])
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen %s: %v\n", addrs[*id], err)
		os.Exit(1)
	}
	rcfg := realnet.DefaultConfig()
	rcfg.Metrics = reg
	transport := realnet.NewWithConfig(sim, *id, addrs, ln, rcfg)
	defer transport.Close()
	if *verbose {
		transport.OnError(func(err error) {
			fmt.Fprintf(os.Stderr, "transport: %v\n", err)
		})
	}

	cfg := node.Config{Params: prm, LedgerCfg: ledger.DefaultConfig()}
	cfg.TxFlowWorkers = *workers
	// With an access tier in the book, announce every commit so gateway
	// read models follow the chain (one 44-byte frame per neighbor).
	cfg.AnnounceCommits = *gateways > 0
	// The RPC server submits from its own goroutines, so the pipeline
	// clock must be readable off the scheduler: use the wall clock.
	epoch := time.Now()
	cfg.TxFlow.Now = func() time.Duration { return time.Since(epoch) }
	cfg.Metrics = reg
	// Round spans on the wall clock (readable from the final-step
	// background process as well as the scheduler).
	cfg.Tracer = trace.New(func() time.Duration { return time.Since(epoch) }, 0)

	// Durable archive: every commit journals through the WAL before the
	// node proceeds, and a restart recovers the chain from disk (torn
	// tails truncated, checksums and certificates re-verified) before
	// rejoining via delta catch-up.
	var archive *diskstore.Store
	if *dataDir != "" {
		archive, err = diskstore.Open(*dataDir, diskstore.Options{Metrics: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening data dir: %v\n", err)
			os.Exit(1)
		}
		defer archive.Close()
		cfg.Archive = archive
		cfg.CheckpointInterval = *chkEvery
	}

	nd := node.New(*id, sim, transport, provider, self, cfg, genesis, seed0)
	nd.StopAfterRound = *rounds

	var restored uint64
	if archive != nil {
		// Snapshot-first: re-base onto the newest on-disk checkpoint if
		// its Merkle root and certificate verify (the disk is trusted no
		// more than a peer), so the archive replay below covers only the
		// delta past it.
		if chk, ok := archive.Checkpoint(); ok {
			adopted, err := nd.RestoreFromCheckpoint(chk)
			if err != nil {
				fmt.Fprintf(os.Stderr, "node %d: on-disk checkpoint rejected (%v), replaying the full archive\n", *id, err)
			} else if adopted {
				fmt.Printf("node %d re-based onto checkpoint at round %d\n", *id, chk.Round())
			}
		}
		restored, err = nd.RestoreFromArchive(archive.Recovered())
		if err != nil {
			fmt.Fprintf(os.Stderr, "archive restore: %v\n", err)
			os.Exit(1)
		}
		st := archive.Stats()
		fmt.Printf("node %d recovered %d rounds from %s (%d records, %d bytes truncated, %d dropped)\n",
			*id, restored, *dataDir, st.RecoveredRecords, st.TruncatedBytes, st.DroppedRecords)
	}

	pk := self.PublicKey()
	fmt.Printf("node %d listening on %s (pk %s), running %d rounds...\n",
		*id, transport.Addr(), pk, *rounds)

	transport.Start()
	if restored > 0 || nd.Ledger().ChainLength() > 0 {
		// Anything recovered — archive replay or a checkpoint re-base —
		// starts behind the network; sync the delta before joining.
		nd.StartAfterSync(time.Minute)
	} else {
		nd.Start()
	}
	defer nd.TxFlow().Close()
	if *submit != "" {
		srv, err := txflow.ListenAndServe(*submit, nd.TxFlow())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("node %d accepting transactions on %s\n", *id, srv.Addr())
	}
	if *metricsA != "" {
		mln, err := net.Listen("tcp", *metricsA)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics listen %s: %v\n", *metricsA, err)
			os.Exit(1)
		}
		defer mln.Close()
		go http.Serve(mln, reg.Handler())
		fmt.Printf("node %d serving metrics on http://%s/\n", *id, mln.Addr())
	}
	if *statsSec > 0 {
		every := time.Duration(*statsSec) * time.Second
		sim.Spawn("stats", func(p *vtime.Proc) {
			for {
				p.Sleep(every)
				printUnifiedStats(reg, transport, nd, archive != nil)
			}
		})
	}
	// Stop once done, lingering briefly to serve lagging peers.
	sim.Spawn("watcher", func(p *vtime.Proc) {
		for nd.Ledger().ChainLength() < *rounds {
			p.Sleep(100 * time.Millisecond)
		}
		p.Sleep(2 * prm.LambdaStep)
		sim.Stop()
	})
	start := time.Now()
	sim.Run(10 * time.Minute)

	fmt.Printf("node %d finished %d rounds in %v\n", *id, nd.Ledger().ChainLength(), time.Since(start).Round(time.Millisecond))
	for _, st := range nd.Stats {
		status := "tentative"
		if st.Final {
			status = "FINAL"
		}
		kind := "block"
		if st.Empty {
			kind = "empty"
		}
		fmt.Printf("  round %d: %s %v (%s, %d binary steps, %v)\n",
			st.Round, kind, st.Value, status, st.BinarySteps, (st.End - st.Start).Round(time.Millisecond))
	}
	head := nd.Ledger().Head()
	fmt.Printf("head: round %d hash %s\n", head.Round, head.Hash().Hex()[:16])
	for _, ph := range []trace.Phase{trace.PhasePropose, trace.PhaseBAStep, trace.PhaseCommit, trace.PhasePersist} {
		if s := nd.Tracer().PhaseSummary(ph); s.N > 0 {
			fmt.Printf("phase %-8s n=%-4d p50=%.1fms p99=%.1fms max=%.1fms\n", ph, s.N, s.P50ms, s.P99ms, s.MaxMs)
		}
	}
	if h, ok := nd.TransportHealth(); ok {
		fmt.Printf("transport: %d/%d peers connected, %d quarantined, %d queue drops, %d redials\n",
			h.Connected, h.Peers, h.Quarantined, h.QueueDrops, h.Redials)
	}
	fmt.Printf("%s\n", nd.TxFlow().Stats())
	if *stats {
		fmt.Printf("%s\n", transport.Stats())
	}
}

// printUnifiedStats renders one periodic observability snapshot to
// stderr. The headline lines come from a single registry Snapshot() —
// rounds, BA⋆ steps, trace percentiles, pipeline, transport and disk
// all read at the same instant — followed by the typed per-peer
// transport detail (queues, scores, quarantine state) the registry
// does not carry.
func printUnifiedStats(reg *metrics.Registry, transport *realnet.Transport, nd *node.Node, haveDisk bool) {
	snap := reg.Snapshot()
	c := func(name string) uint64 { return uint64(snap[name].Value) }
	fmt.Fprintf(os.Stderr, "-- rounds: total=%d final=%d empty=%d | ba: steps=%d timeouts=%d votes_cast=%d votes_counted=%d\n",
		c("algorand_node_rounds_total"), c("algorand_node_rounds_final_total"), c("algorand_node_rounds_empty_total"),
		c("algorand_ba_steps_total"), c("algorand_ba_step_timeouts_total"),
		c("algorand_ba_votes_cast_total"), c("algorand_ba_votes_counted_total"))
	if v, ok := snap[metrics.Name("algorand_trace_phase_seconds", "phase", string(trace.PhaseRound))]; ok && v.Count > 0 {
		fmt.Fprintf(os.Stderr, "-- round latency: n=%d p50=%.2fs p90=%.2fs p99=%.2fs\n",
			v.Count, v.Q["p50"], v.Q["p90"], v.Q["p99"])
	}
	fmt.Fprintf(os.Stderr, "-- txflow: admitted=%d verified=%d pending=%d dups=%d cache_hits=%d\n",
		c("algorand_txflow_admitted_total"), c("algorand_txflow_verified_total"),
		c("algorand_txflow_pending"),
		c(metrics.Name("algorand_txflow_rejected_total", "reason", "duplicate")),
		c("algorand_txflow_verified_cache_hits_total"))
	if haveDisk {
		fmt.Fprintf(os.Stderr, "-- disk: appends=%d rotations=%d write_errors=%d sync_errors=%d persist_errors=%d\n",
			c("algorand_disk_appends_total"), c("algorand_disk_rotations_total"),
			c("algorand_disk_write_errors_total"), c("algorand_disk_sync_errors_total"),
			c("algorand_node_persist_errors_total"))
	}
	fmt.Fprintf(os.Stderr, "%s\n", transport.Stats())
	fmt.Fprintf(os.Stderr, "%s\n", nd.TxFlow().Stats())
}
