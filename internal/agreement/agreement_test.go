package agreement

import (
	"math/rand"
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/params"
	"algorand/internal/sortition"
	"algorand/internal/vtime"
)

// harness wires n users over an idealized broadcast medium (uniform
// small latency) so BA⋆ can be tested in isolation from the gossip
// network. Votes are validated at each receiver with ProcessVote, as
// the node layer does in production.
type harness struct {
	sim      *vtime.Sim
	provider crypto.Provider
	prm      params.Params
	ctx      *Context
	ids      []crypto.Identity
	inboxes  []map[[2]uint64]*vtime.Mailbox
	rng      *rand.Rand
	// dropVotes, when set, filters delivery (for partition tests):
	// return true to drop the vote going to receiver i.
	dropVotes func(v *ledger.Vote, receiver int) bool
}

func newHarness(t testing.TB, n int, tau uint64) *harness {
	h := &harness{
		sim:      vtime.New(),
		provider: crypto.NewFast(),
		rng:      rand.New(rand.NewSource(42)),
	}
	h.prm = params.Default()
	h.prm.TauStep = tau
	h.prm.TauFinal = tau
	h.prm.MaxSteps = 30
	weights := make(map[crypto.PublicKey]uint64, n)
	for i := 0; i < n; i++ {
		id := h.provider.NewIdentity(crypto.SeedFromUint64(uint64(i)))
		h.ids = append(h.ids, id)
		weights[id.PublicKey()] = 10
		h.inboxes = append(h.inboxes, make(map[[2]uint64]*vtime.Mailbox))
	}
	lastHash := crypto.HashBytes("last-block")
	h.ctx = &Context{
		Round:         1,
		Seed:          crypto.HashBytes("test-seed"),
		Weights:       weights,
		TotalWeight:   uint64(n) * 10,
		LastBlockHash: lastHash,
		EmptyHash:     crypto.HashBytes("empty-block"),
	}
	return h
}

func (h *harness) inbox(node int, round, step uint64) *vtime.Mailbox {
	key := [2]uint64{round, step}
	mb, ok := h.inboxes[node][key]
	if !ok {
		mb = h.sim.NewMailbox()
		h.inboxes[node][key] = mb
	}
	return mb
}

// broadcast delivers a vote to every node (including the sender) after
// a small random latency, validating at each receiver.
func (h *harness) broadcast(v *ledger.Vote) {
	for i := range h.ids {
		i := i
		if h.dropVotes != nil && h.dropVotes(v, i) {
			continue
		}
		delay := time.Duration(1+h.rng.Intn(50)) * time.Millisecond
		h.sim.After(delay, func() {
			nv := ProcessVote(h.provider, h.prm, h.ctx, v)
			if nv == 0 {
				return
			}
			h.inbox(i, v.Round, v.Step).Send(ValidatedVote{Vote: *v, NumVotes: nv})
		})
	}
}

func (h *harness) env(node int) *Env {
	return &Env{
		Provider: h.provider,
		Identity: h.ids[node],
		Params:   h.prm,
		Gossip:   h.broadcast,
		Inbox: func(round, step uint64) *vtime.Mailbox {
			return h.inbox(node, round, step)
		},
	}
}

// runAll runs BA⋆ on every node and collects outcomes.
func (h *harness) runAll(start func(i int) crypto.Digest) ([]Outcome, []error) {
	n := len(h.ids)
	outs := make([]Outcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		env := h.env(i)
		h.sim.Spawn("node", func(p *vtime.Proc) {
			env.Proc = p
			outs[i], errs[i] = Run(env, h.ctx, start(i))
		})
	}
	h.sim.Run(time.Hour)
	return outs, errs
}

func TestUnanimousFinalConsensus(t *testing.T) {
	h := newHarness(t, 40, 30)
	block := crypto.HashBytes("proposed-block")
	outs, errs := h.runAll(func(int) crypto.Digest { return block })

	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for i, o := range outs {
		if o.Value != block {
			t.Fatalf("node %d agreed on %v, want %v", i, o.Value, block)
		}
		if !o.Final {
			t.Fatalf("node %d reached only tentative consensus", i)
		}
		if o.BinarySteps != 1 {
			t.Fatalf("node %d took %d binary steps, want 1", i, o.BinarySteps)
		}
		if o.FinalCert == nil || o.Cert == nil {
			t.Fatalf("node %d missing certificates", i)
		}
	}
}

func TestSplitProposalsFallToEmpty(t *testing.T) {
	h := newHarness(t, 40, 30)
	a := crypto.HashBytes("block-A")
	b := crypto.HashBytes("block-B")
	outs, errs := h.runAll(func(i int) crypto.Digest {
		if i%2 == 0 {
			return a
		}
		return b
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for i, o := range outs {
		if o.Value != h.ctx.EmptyHash {
			t.Fatalf("node %d agreed on %v, want empty hash", i, o.Value)
		}
	}
	// All outcomes must agree with each other (safety).
	for i := 1; i < len(outs); i++ {
		if outs[i].Value != outs[0].Value {
			t.Fatal("disagreement between honest nodes")
		}
	}
}

// TestAgreementWithEquivocatingCommittee: 20% of the users (the
// paper's h=80% operating point) double-vote (for the block and for
// empty) at every step. Honest nodes must still all agree on one value.
func TestAgreementWithEquivocatingCommittee(t *testing.T) {
	h := newHarness(t, 45, 30)
	block := crypto.HashBytes("contested-block")
	nMal := 9

	// Malicious users: spawn processes that vote both values at every
	// wire step they are selected for, instead of running BA⋆.
	for i := 0; i < nMal; i++ {
		env := h.env(i)
		h.sim.Spawn("adversary", func(p *vtime.Proc) {
			env.Proc = p
			steps := []uint64{StepReduction1, StepReduction2}
			for k := 1; k <= 12; k++ {
				steps = append(steps, WireStepOfBinary(k))
			}
			steps = append(steps, StepFinal)
			for _, s := range steps {
				tau := h.prm.TauStep
				if s == StepFinal {
					tau = h.prm.TauFinal
				}
				CommitteeVote(env, h.ctx, s, tau, block)
				CommitteeVote(env, h.ctx, s, tau, h.ctx.EmptyHash)
				p.Sleep(h.prm.LambdaStep / 2)
			}
		})
	}

	// Honest users run the real protocol.
	outs := make([]Outcome, len(h.ids))
	errs := make([]error, len(h.ids))
	for i := nMal; i < len(h.ids); i++ {
		i := i
		env := h.env(i)
		h.sim.Spawn("honest", func(p *vtime.Proc) {
			env.Proc = p
			outs[i], errs[i] = Run(env, h.ctx, block)
		})
	}
	h.sim.Run(2 * time.Hour)

	var agreed *crypto.Digest
	for i := nMal; i < len(h.ids); i++ {
		if errs[i] != nil {
			t.Fatalf("honest node %d: %v", i, errs[i])
		}
		if agreed == nil {
			v := outs[i].Value
			agreed = &v
		} else if outs[i].Value != *agreed {
			t.Fatalf("safety violation: node %d on %v, others on %v", i, outs[i].Value, *agreed)
		}
	}
}

func TestCertificatesVerify(t *testing.T) {
	h := newHarness(t, 40, 30)
	block := crypto.HashBytes("certified-block")
	outs, _ := h.runAll(func(int) crypto.Digest { return block })

	o := outs[0]
	if o.Cert == nil {
		t.Fatal("no certificate")
	}
	threshold := uint64(float64(h.prm.TauStep) * h.prm.TStep)
	err := o.Cert.Verify(h.provider, h.ctx.Seed, h.ctx.Weights, h.ctx.TotalWeight,
		h.prm.TauStep, threshold, h.ctx.LastBlockHash)
	if err != nil {
		t.Fatalf("tentative certificate invalid: %v", err)
	}
	if o.FinalCert == nil {
		t.Fatal("no final certificate")
	}
	fThreshold := uint64(float64(h.prm.TauFinal) * h.prm.TFinal)
	err = o.FinalCert.Verify(h.provider, h.ctx.Seed, h.ctx.Weights, h.ctx.TotalWeight,
		h.prm.TauFinal, fThreshold, h.ctx.LastBlockHash)
	if err != nil {
		t.Fatalf("final certificate invalid: %v", err)
	}
	if !o.FinalCert.Final || o.Cert.Final {
		t.Fatal("certificate finality flags wrong")
	}
}

func TestLaggingNodeCatchesUp(t *testing.T) {
	h := newHarness(t, 40, 30)
	block := crypto.HashBytes("late-block")
	n := len(h.ids)
	outs := make([]Outcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		env := h.env(i)
		h.sim.Spawn("node", func(p *vtime.Proc) {
			env.Proc = p
			if i == 0 {
				p.Sleep(3 * time.Second) // one straggler
			}
			outs[i], errs[i] = Run(env, h.ctx, block)
		})
	}
	h.sim.Run(time.Hour)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		if outs[i].Value != block {
			t.Fatalf("node %d missed consensus", i)
		}
	}
}

// TestPartitionedStepYieldsNoSplit: drop all votes to a minority group
// during the whole run; the majority still decides, and the minority
// either agrees or hangs (no conflicting decision).
func TestPartitionedMinorityNeverDecidesDifferently(t *testing.T) {
	h := newHarness(t, 40, 30)
	block := crypto.HashBytes("partition-block")
	minority := map[int]bool{0: true, 1: true, 2: true}
	h.dropVotes = func(v *ledger.Vote, receiver int) bool {
		return minority[receiver]
	}
	outs, errs := h.runAll(func(int) crypto.Digest { return block })

	var majorityValue *crypto.Digest
	for i := range outs {
		if minority[i] {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("majority node %d: %v", i, errs[i])
		}
		if majorityValue == nil {
			v := outs[i].Value
			majorityValue = &v
		} else if outs[i].Value != *majorityValue {
			t.Fatal("majority disagreement")
		}
	}
	// Minority nodes received nothing: they must either have errored out
	// (MaxSteps) or agreed with the majority — decided different values
	// is the only forbidden outcome. With total vote loss they march
	// through steps voting alone and eventually hit MaxSteps.
	for i := range minority {
		if errs[i] == nil && outs[i].Value != *majorityValue {
			t.Fatalf("partitioned node %d decided %v against majority %v",
				i, outs[i].Value, *majorityValue)
		}
	}
}

func TestProcessVoteRejections(t *testing.T) {
	h := newHarness(t, 10, 1000)
	env := h.env(0)

	// Build a valid vote by brute force: find a selected identity.
	var valid *ledger.Vote
	for i := range h.ids {
		env := h.env(i)
		_ = env
		role := [2]uint64{1, StepReduction1}
		_ = role
		v := &ledger.Vote{
			Sender:   h.ids[i].PublicKey(),
			Round:    1,
			Step:     StepReduction1,
			PrevHash: h.ctx.LastBlockHash,
			Value:    crypto.HashBytes("v"),
		}
		res := executeSortition(h, i, StepReduction1)
		if res.j == 0 {
			continue
		}
		v.SortHash = res.out
		v.SortProof = res.proof
		v.Sign(h.ids[i])
		valid = v
		break
	}
	if valid == nil {
		t.Fatal("no selected identity found; raise tau")
	}
	if n := ProcessVote(h.provider, h.prm, h.ctx, valid); n == 0 {
		t.Fatal("valid vote rejected")
	}

	bad := *valid
	bad.Value = crypto.HashBytes("other") // breaks signature
	if n := ProcessVote(h.provider, h.prm, h.ctx, &bad); n != 0 {
		t.Fatal("tampered vote accepted")
	}

	wrongChain := *valid
	wrongChain.PrevHash = crypto.Digest{9}
	wrongChain.Sign(h.ids[0]) // signed by wrong identity anyway
	if n := ProcessVote(h.provider, h.prm, h.ctx, &wrongChain); n != 0 {
		t.Fatal("wrong-chain vote accepted")
	}

	wrongStep := *valid
	wrongStep.Step = StepReduction2 // proof no longer matches role
	// Re-sign properly with the original sender? We cannot (not our key
	// in general), so just check rejection path via signature/sortition.
	if n := ProcessVote(h.provider, h.prm, h.ctx, &wrongStep); n != 0 {
		t.Fatal("wrong-step vote accepted")
	}
	_ = env
}

type sortRes struct {
	out   crypto.VRFOutput
	proof []byte
	j     uint64
}

func sortitionExecute(id crypto.Identity, ctx *Context, step uint64, tau, w uint64) sortRes {
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: ctx.Round, Step: step}
	res := sortition.Execute(id, ctx.Seed[:], role, tau, w, ctx.TotalWeight)
	return sortRes{out: res.Output, proof: res.Proof, j: res.J}
}

func executeSortition(h *harness, node int, step uint64) sortRes {
	env := h.env(node)
	// Reuse CommitteeVote's internals via sortition package directly.
	id := env.Identity
	w := h.ctx.Weights[id.PublicKey()]
	res := sortitionExecute(id, h.ctx, step, h.prm.TauStep, w)
	return res
}

func TestCommonCoinProperties(t *testing.T) {
	// Agreement: identical vote sets give identical coins.
	mk := func(seed byte, n int) []ValidatedVote {
		var votes []ValidatedVote
		for i := 0; i < n; i++ {
			var v ledger.Vote
			v.SortHash[0] = seed
			v.SortHash[1] = byte(i)
			votes = append(votes, ValidatedVote{Vote: v, NumVotes: uint64(1 + i%3)})
		}
		return votes
	}
	a := CommonCoin(mk(1, 10))
	b := CommonCoin(mk(1, 10))
	if a != b {
		t.Fatal("coin not deterministic")
	}
	// Empty vote set defaults to 0.
	if CommonCoin(nil) != 0 {
		t.Fatal("empty coin should be 0")
	}
	// Fairness: across many vote sets, both outcomes occur.
	zeros, ones := 0, 0
	for s := 0; s < 100; s++ {
		if CommonCoin(mk(byte(s), 7)) == 0 {
			zeros++
		} else {
			ones++
		}
	}
	if zeros < 20 || ones < 20 {
		t.Fatalf("coin biased: %d zeros, %d ones", zeros, ones)
	}
}

func TestWireStepMapping(t *testing.T) {
	if WireStepOfBinary(1) != 3 {
		t.Fatalf("binary step 1 = wire %d", WireStepOfBinary(1))
	}
	seen := map[uint64]bool{StepReduction1: true, StepReduction2: true, StepFinal: true}
	for k := 1; k < 150; k++ {
		ws := WireStepOfBinary(k)
		if seen[ws] {
			t.Fatalf("wire step collision at binary step %d", k)
		}
		seen[ws] = true
	}
}

func TestStepTimerObservesEveryCount(t *testing.T) {
	h := newHarness(t, 30, 25)
	block := crypto.HashBytes("timed-block")
	var observed []uint64
	env := h.env(0)
	h.sim.Spawn("node", func(p *vtime.Proc) {
		env.Proc = p
		env.StepTimer = func(step uint64, took time.Duration, timedOut bool) {
			observed = append(observed, step)
			if took < 0 {
				t.Errorf("negative step duration")
			}
		}
		Run(env, h.ctx, block)
	})
	// The rest of the population runs without timers.
	for i := 1; i < len(h.ids); i++ {
		i := i
		e := h.env(i)
		h.sim.Spawn("node", func(p *vtime.Proc) {
			e.Proc = p
			Run(e, h.ctx, block)
		})
	}
	h.sim.Run(time.Hour)
	// Common case: reduction1, reduction2, binary step 1, final = 4 counts.
	if len(observed) != 4 {
		t.Fatalf("StepTimer fired %d times (%v), want 4", len(observed), observed)
	}
	if observed[0] != StepReduction1 || observed[1] != StepReduction2 ||
		observed[2] != WireStepOfBinary(1) || observed[3] != StepFinal {
		t.Fatalf("unexpected step order: %v", observed)
	}
}

func TestAblateNoVoteNext3SuppressesExtraVotes(t *testing.T) {
	run := func(ablate bool) int {
		h := newHarness(t, 30, 25)
		h.prm.AblateNoVoteNext3 = ablate
		block := crypto.HashBytes("vn3-block")
		votes := 0
		orig := h.broadcast
		h.dropVotes = nil
		_ = orig
		// Count votes for binary steps beyond the concluding one.
		counting := func(v *ledger.Vote) {
			if v.Step > WireStepOfBinary(1) && v.Step < StepFinal {
				votes++
			}
			orig(v)
		}
		outs := make([]Outcome, len(h.ids))
		for i := range h.ids {
			i := i
			env := h.env(i)
			env.Gossip = counting
			h.sim.Spawn("node", func(p *vtime.Proc) {
				env.Proc = p
				outs[i], _ = Run(env, h.ctx, block)
			})
		}
		h.sim.Run(time.Hour)
		return votes
	}
	withVotes := run(false)
	without := run(true)
	if withVotes == 0 {
		t.Fatal("expected next-3 votes in the unablated run")
	}
	if without != 0 {
		t.Fatalf("ablated run still cast %d next-step votes", without)
	}
}
