// Package agreement implements BA⋆, Algorand's Byzantine agreement
// protocol (§7, Algorithms 3-9). The code follows the paper's blocking
// pseudocode closely, which the vtime runtime makes possible: each user
// is a goroutine, CountVotes blocks on a per-(round,step) mailbox with
// a deadline, and committee membership is re-drawn with cryptographic
// sortition at every step so members speak only once.
//
// The package is deliberately free of networking and ledger policy: the
// host node supplies an Env with its identity, parameter set, a gossip
// function and per-step vote inboxes, and receives back the agreed
// value, its finality, and vote certificates (§8.3).
package agreement

import (
	"errors"
	"fmt"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/metrics"
	"algorand/internal/params"
	"algorand/internal/sortition"
	"algorand/internal/vtime"
)

// Metrics aggregates BA⋆'s per-step observability counters in a
// registry. All fields are registry-backed; a nil *Metrics disables
// recording (every hook checks).
type Metrics struct {
	// Steps counts CountVotes executions (one per BA⋆ step entered).
	Steps *metrics.Counter
	// StepTimeouts counts steps that expired without crossing T·tau.
	StepTimeouts *metrics.Counter
	// VotesCounted counts validated votes tallied toward a threshold.
	VotesCounted *metrics.Counter
	// VotesDeduped counts votes dropped because the sender already voted
	// in the step (the Algorithm 5 dedup rule).
	VotesDeduped *metrics.Counter
	// VotesCast counts committee votes this user signed and gossiped.
	VotesCast *metrics.Counter
	// StepSeconds observes each CountVotes duration.
	StepSeconds *metrics.Histogram
}

// NewMetrics registers the BA⋆ counter family in r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Steps:        r.Counter("algorand_ba_steps_total", "BA⋆ vote-counting steps entered"),
		StepTimeouts: r.Counter("algorand_ba_step_timeouts_total", "BA⋆ steps that timed out without a threshold winner"),
		VotesCounted: r.Counter("algorand_ba_votes_counted_total", "validated committee votes tallied"),
		VotesDeduped: r.Counter("algorand_ba_votes_deduped_total", "votes dropped by the per-step sender dedup rule"),
		VotesCast:    r.Counter("algorand_ba_votes_cast_total", "committee votes this user signed and gossiped"),
		StepSeconds:  r.Histogram("algorand_ba_step_seconds", "CountVotes duration per step", nil),
	}
}

// Wire step numbers. The two reduction steps come first; BinaryBA⋆
// steps follow; the final-confirmation step has a distinguished number
// so its committee is disjoint from every ordinary step.
const (
	StepReduction1 uint64 = 1
	StepReduction2 uint64 = 2
	// binaryWireBase + k is the wire step of BinaryBA⋆ step k (k >= 1).
	binaryWireBase uint64 = 2
	// StepFinal is the special final step (§7.4).
	StepFinal uint64 = 1 << 20
)

// WireStepOfBinary maps a BinaryBA⋆ step counter to its wire step.
func WireStepOfBinary(k int) uint64 { return binaryWireBase + uint64(k) }

// Context captures the consensus context for one round (the paper's
// ctx): the sortition seed, user weights, and the last block.
type Context struct {
	Round         uint64
	Seed          crypto.Digest
	Weights       map[crypto.PublicKey]uint64
	TotalWeight   uint64
	LastBlockHash crypto.Digest // H(ctx.last_block)
	EmptyHash     crypto.Digest // H(Empty(round, H(ctx.last_block)))
}

// ValidatedVote is a committee vote that already passed ProcessVote
// (signature, chain linkage and sortition checks); NumVotes is the
// verified number of selected sub-users.
type ValidatedVote struct {
	Vote     ledger.Vote
	NumVotes uint64
}

// Env is what BA⋆ needs from its host node.
type Env struct {
	Proc     *vtime.Proc
	Provider crypto.Provider
	Identity crypto.Identity
	Params   params.Params
	// Gossip broadcasts one of our votes.
	Gossip func(v *ledger.Vote)
	// Inbox returns the mailbox of validated votes for (round, step).
	Inbox func(round, step uint64) *vtime.Mailbox
	// StepTimer, when non-nil, observes every CountVotes call: the wire
	// step, how long the count took, and whether it timed out. Drives
	// the §10.5 timeout-validation experiment.
	StepTimer func(step uint64, took time.Duration, timedOut bool)
	// Metrics, when non-nil, receives per-step counter updates.
	Metrics *Metrics
}

// Outcome is the result of one BA⋆ execution.
type Outcome struct {
	Value crypto.Digest
	// Final reports final (vs tentative) consensus (§7.1, §7.4).
	Final bool
	// BinarySteps is how many BinaryBA⋆ steps ran (1 in the common case).
	BinarySteps int
	// Cert aggregates the votes of the concluding BinaryBA⋆ step.
	Cert *ledger.Certificate
	// FinalCert aggregates final-step votes when Final.
	FinalCert *ledger.Certificate
	// BinaryDone is the virtual time when BinaryBA⋆ concluded, before
	// the final-confirmation step (the Figure 7 "BA⋆ w/o final" mark).
	BinaryDone time.Duration
}

// ErrNoConsensus is returned when BinaryBA⋆ exceeds MaxSteps; the node
// must fall back to the recovery protocol (§8.2).
var ErrNoConsensus = errors.New("agreement: no consensus within MaxSteps")

// ProcessVote implements Algorithm 6: it validates an incoming vote
// message against a context and returns the verified number of
// sub-user votes (zero means invalid or not selected).
func ProcessVote(p crypto.Provider, prm params.Params, ctx *Context, v *ledger.Vote) uint64 {
	if !p.VerifySig(v.Sender, v.SigningBytes(), v.Sig) {
		return 0
	}
	// Discard messages that do not extend this chain.
	if v.PrevHash != ctx.LastBlockHash {
		return 0
	}
	tau := prm.TauStep
	if v.Step == StepFinal {
		tau = prm.TauFinal
	}
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: v.Round, Step: v.Step}
	out, j := sortition.Verify(p, v.Sender, v.SortProof, ctx.Seed[:], role,
		tau, ctx.Weights[v.Sender], ctx.TotalWeight)
	if j == 0 || out != v.SortHash {
		return 0
	}
	return j
}

// CommitteeVote implements Algorithm 4: check committee membership for
// (round, step) by sortition and, if selected, gossip a signed vote.
func CommitteeVote(env *Env, ctx *Context, step uint64, tau uint64, value crypto.Digest) {
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: ctx.Round, Step: step}
	w := ctx.Weights[env.Identity.PublicKey()]
	res := sortition.Execute(env.Identity, ctx.Seed[:], role, tau, w, ctx.TotalWeight)
	if !res.Selected() {
		return
	}
	v := &ledger.Vote{
		Sender:    env.Identity.PublicKey(),
		Round:     ctx.Round,
		Step:      step,
		SortHash:  res.Output,
		SortProof: res.Proof,
		PrevHash:  ctx.LastBlockHash,
		Value:     value,
	}
	v.Sign(env.Identity)
	env.Gossip(v)
	if env.Metrics != nil {
		env.Metrics.VotesCast.Inc()
	}
}

// countResult is what CountVotes observed in one step.
type countResult struct {
	// value is the winner, or timedOut is true.
	value    crypto.Digest
	timedOut bool
	// votesFor holds, per value, the validated votes received (used to
	// assemble certificates).
	votesFor map[crypto.Digest][]ValidatedVote
	// all holds every validated vote of the step (used by CommonCoin).
	all []ValidatedVote
}

// CountVotes implements Algorithm 5: read validated votes for
// (round, step) until some value exceeds T·tau sub-user votes or the
// timeout λ expires. Votes are deduplicated by sender.
func CountVotes(env *Env, ctx *Context, step uint64, T float64, tau uint64, lambda time.Duration) countResult {
	start := env.Proc.Now()
	res := countVotesInner(env, ctx, step, T, tau, lambda)
	took := env.Proc.Now() - start
	if m := env.Metrics; m != nil {
		m.Steps.Inc()
		if res.timedOut {
			m.StepTimeouts.Inc()
		}
		m.StepSeconds.ObserveDuration(took)
	}
	if env.StepTimer != nil {
		env.StepTimer(step, took, res.timedOut)
	}
	return res
}

func countVotesInner(env *Env, ctx *Context, step uint64, T float64, tau uint64, lambda time.Duration) countResult {
	res := countResult{votesFor: make(map[crypto.Digest][]ValidatedVote)}
	counts := make(map[crypto.Digest]uint64)
	voters := make(map[crypto.PublicKey]bool)
	inbox := env.Inbox(ctx.Round, step)
	deadline := env.Proc.Now() + lambda
	threshold := float64(tau) * T

	for {
		m, ok := env.Proc.RecvDeadline(inbox, deadline)
		if !ok {
			res.timedOut = true
			return res
		}
		vv := m.(ValidatedVote)
		if voters[vv.Vote.Sender] || vv.NumVotes == 0 {
			if voters[vv.Vote.Sender] && env.Metrics != nil {
				env.Metrics.VotesDeduped.Inc()
			}
			continue
		}
		voters[vv.Vote.Sender] = true
		if env.Metrics != nil {
			env.Metrics.VotesCounted.Inc()
		}
		res.all = append(res.all, vv)
		res.votesFor[vv.Vote.Value] = append(res.votesFor[vv.Vote.Value], vv)
		counts[vv.Vote.Value] += vv.NumVotes
		if float64(counts[vv.Vote.Value]) > threshold {
			res.value = vv.Vote.Value
			return res
		}
	}
}

// certificateFrom assembles the §8.3 certificate for value from the
// votes gathered in a concluding step.
func certificateFrom(ctx *Context, step uint64, value crypto.Digest, votes []ValidatedVote, final bool) *ledger.Certificate {
	c := &ledger.Certificate{Round: ctx.Round, Step: step, Value: value, Final: final}
	for _, vv := range votes {
		c.Votes = append(c.Votes, vv.Vote)
	}
	return c
}

// Reduction implements Algorithm 7: reduce agreement on an arbitrary
// block hash to agreement between one specific hash and the empty hash.
func Reduction(env *Env, ctx *Context, hblock crypto.Digest) crypto.Digest {
	prm := env.Params
	// Step 1: gossip the block hash.
	CommitteeVote(env, ctx, StepReduction1, prm.TauStep, hblock)
	// Other users might still be waiting for block proposals, so wait
	// λ_block + λ_step.
	r1 := CountVotes(env, ctx, StepReduction1, prm.TStep, prm.TauStep, prm.LambdaBlock+prm.LambdaStep)

	// Step 2: re-gossip the popular block hash.
	if r1.timedOut {
		CommitteeVote(env, ctx, StepReduction2, prm.TauStep, ctx.EmptyHash)
	} else {
		CommitteeVote(env, ctx, StepReduction2, prm.TauStep, r1.value)
	}
	r2 := CountVotes(env, ctx, StepReduction2, prm.TStep, prm.TauStep, prm.LambdaStep)
	if r2.timedOut {
		return ctx.EmptyHash
	}
	return r2.value
}

// CommonCoin implements Algorithm 9: a binary value, predominantly
// common across users, derived from the lowest sub-user hash among the
// step's votes.
func CommonCoin(votes []ValidatedVote) int {
	var minHash crypto.Digest
	have := false
	for _, vv := range votes {
		for j := uint64(1); j <= vv.NumVotes; j++ {
			h := sortition.SubUserHash(vv.Vote.SortHash, j)
			if !have || h.Less(minHash) {
				minHash = h
				have = true
			}
		}
	}
	if !have {
		return 0
	}
	return int(minHash[len(minHash)-1] & 1)
}

// BinaryResult carries BinaryBA⋆'s conclusion.
type BinaryResult struct {
	// Value is the agreed hash (block_hash or empty_hash).
	Value crypto.Digest
	// Steps is the number of binary steps executed.
	Steps int
	// LastStep is the concluding wire step.
	LastStep uint64
	// Cert aggregates the concluding step's votes.
	Cert *ledger.Certificate
	// VotedFinal reports whether this user cast a final-step vote.
	VotedFinal bool
}

// BinaryBA implements Algorithm 8: agreement between block_hash and
// empty_hash. On consensus it votes the result in the next three steps
// (so stragglers can cross the threshold) and, if consensus was reached
// in the very first step, votes in the final step to enable final
// consensus.
func BinaryBA(env *Env, ctx *Context, blockHash crypto.Digest) (BinaryResult, error) {
	prm := env.Params
	step := 1
	r := blockHash
	emptyHash := ctx.EmptyHash

	voteNext3 := func(step int, value crypto.Digest) {
		if prm.AblateNoVoteNext3 {
			return
		}
		for s := step + 1; s <= step+3; s++ {
			CommitteeVote(env, ctx, WireStepOfBinary(s), prm.TauStep, value)
		}
	}

	for step < prm.MaxSteps {
		// --- Step kind 1: bias toward block_hash on timeout.
		CommitteeVote(env, ctx, WireStepOfBinary(step), prm.TauStep, r)
		cr := CountVotes(env, ctx, WireStepOfBinary(step), prm.TStep, prm.TauStep, prm.LambdaStep)
		if cr.timedOut {
			r = blockHash
		} else if cr.value != emptyHash {
			r = cr.value
			voteNext3(step, r)
			res := BinaryResult{Value: r, Steps: step, LastStep: WireStepOfBinary(step)}
			res.Cert = certificateFrom(ctx, res.LastStep, r, cr.votesFor[r], false)
			if step == 1 {
				CommitteeVote(env, ctx, StepFinal, prm.TauFinal, r)
				res.VotedFinal = true
			}
			return res, nil
		} else {
			r = cr.value
		}
		step++
		if step >= prm.MaxSteps {
			break
		}

		// --- Step kind 2: bias toward empty_hash on timeout.
		CommitteeVote(env, ctx, WireStepOfBinary(step), prm.TauStep, r)
		cr = CountVotes(env, ctx, WireStepOfBinary(step), prm.TStep, prm.TauStep, prm.LambdaStep)
		if cr.timedOut {
			r = emptyHash
		} else if cr.value == emptyHash {
			r = cr.value
			voteNext3(step, r)
			res := BinaryResult{Value: r, Steps: step, LastStep: WireStepOfBinary(step)}
			res.Cert = certificateFrom(ctx, res.LastStep, r, cr.votesFor[r], false)
			return res, nil
		} else {
			r = cr.value
		}
		step++
		if step >= prm.MaxSteps {
			break
		}

		// --- Step kind 3: common coin breaks adversarial vote splitting.
		CommitteeVote(env, ctx, WireStepOfBinary(step), prm.TauStep, r)
		cr = CountVotes(env, ctx, WireStepOfBinary(step), prm.TStep, prm.TauStep, prm.LambdaStep)
		if cr.timedOut {
			coin := 0
			if !prm.AblateNoCommonCoin {
				coin = CommonCoin(cr.all)
			}
			if coin == 0 {
				r = blockHash
			} else {
				r = emptyHash
			}
		} else {
			r = cr.value
		}
		step++
	}

	// No consensus after MaxSteps; assume network problems and rely on
	// the §8.2 recovery protocol to recover liveness.
	return BinaryResult{Steps: step}, ErrNoConsensus
}

// Run executes BA⋆ for one round (Algorithm 3). blockHash is the hash
// of the highest-priority proposal the node received (or the empty
// hash). The returned outcome's Value is a hash; resolving it to block
// contents (BlockOfHash) is the caller's concern.
func Run(env *Env, ctx *Context, blockHash crypto.Digest) (Outcome, error) {
	bres, err := RunWithoutFinal(env, ctx, blockHash)
	if err != nil {
		return Outcome{}, err
	}
	binaryDone := env.Proc.Now()

	out := Outcome{
		Value:       bres.Value,
		BinarySteps: bres.Steps,
		Cert:        bres.Cert,
		BinaryDone:  binaryDone,
	}
	// Check if we reached "final" or "tentative" consensus.
	if fc := WaitFinal(env, ctx, bres.Value); fc != nil {
		out.Final = true
		out.FinalCert = fc
	}
	return out, nil
}

// RunWithoutFinal runs the reduction and BinaryBA⋆ phases only. The
// caller is responsible for the final confirmation step (WaitFinal),
// which it may overlap with the next round — the §10.2 pipelining
// optimization the paper describes but leaves unimplemented.
func RunWithoutFinal(env *Env, ctx *Context, blockHash crypto.Digest) (BinaryResult, error) {
	hblock := Reduction(env, ctx, blockHash)
	return BinaryBA(env, ctx, hblock)
}

// WaitFinal runs the final confirmation step (§7.4): it counts
// final-step votes for up to λ_step and, if value gathered more than
// T_final·τ_final, returns the final certificate; nil means the round
// stays tentative.
func WaitFinal(env *Env, ctx *Context, value crypto.Digest) *ledger.Certificate {
	prm := env.Params
	fr := CountVotes(env, ctx, StepFinal, prm.TFinal, prm.TauFinal, prm.LambdaStep)
	if !fr.timedOut && fr.value == value {
		return certificateFrom(ctx, StepFinal, fr.value, fr.votesFor[fr.value], true)
	}
	return nil
}

// NewContext builds a Context from a ledger for its next round.
func NewContext(l *ledger.Ledger) *Context {
	round := l.NextRound()
	weights, total := l.SortitionWeights(round)
	return &Context{
		Round:         round,
		Seed:          l.SortitionSeed(round),
		Weights:       weights,
		TotalWeight:   total,
		LastBlockHash: l.HeadHash(),
		EmptyHash:     l.NextEmptyBlock().Hash(),
	}
}

// String renders a context for debugging.
func (c *Context) String() string {
	return fmt.Sprintf("ctx{round %d, seed %v, W %d}", c.Round, c.Seed, c.TotalWeight)
}
