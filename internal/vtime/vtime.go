// Package vtime is a deterministic discrete-event simulation runtime
// with a goroutine-per-process programming model.
//
// The Algorand paper's pseudocode (Algorithms 3-8) is written in a
// blocking style: CountVotes reads messages until a vote threshold or a
// timeout λ elapses, BinaryBA⋆ loops over steps, and so on. Rather than
// contorting that logic into explicit state machines, vtime lets each
// simulated user run as an ordinary goroutine that blocks on virtual
// time: Sleep, mailbox receives with deadlines, and CPU charges.
//
// Exactly one goroutine (a process or the scheduler) executes at any
// instant; control is handed off through channels acting as a baton.
// Virtual time advances only when every process is parked, jumping to
// the earliest pending event. Simultaneous events are ordered by a
// monotonically increasing sequence number, so a run is a deterministic
// function of the program and its seeds — crucial for reproducible
// experiments (see DESIGN.md "Determinism").
//
// The cost of this fidelity is that simulations use real goroutines but
// no real parallelism; throughput is bounded by event rate, which is
// ample for the scales in EXPERIMENTS.md.
package vtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Package note: the simulation normally runs in virtual time (events
// execute back-to-back, clock jumps). Realtime() switches a Sim to
// wall-clock execution: the scheduler sleeps until each event's time
// and external goroutines feed work in through Inject. Protocol code is
// identical in both modes — this is what lets the same node
// implementation run deterministically simulated *and* as a real
// networked process (cmd/algorand-node).

// Sim is a virtual-time simulation. Create one with New, add processes
// with Spawn, then call Run.
type Sim struct {
	now    time.Duration
	seq    uint64
	events eventHeap

	running  *Proc // the currently executing process, nil if scheduler
	yield    chan struct{}
	live     int // processes spawned and not yet finished
	stopped  bool
	panicVal any

	// realtime mode (see Realtime).
	realtime bool
	inject   chan func()

	// Stats
	EventCount uint64
}

// event is a scheduled occurrence: either waking a parked process or
// running a closure in scheduler context.
type event struct {
	at        time.Duration
	seq       uint64
	proc      *Proc  // non-nil: wake this process
	fn        func() // non-nil: run this closure (must not block)
	cancelled *bool  // optional cancellation flag (shared with waiter)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Proc is a simulated process. All its methods must be called from
// within the process's own goroutine.
type Proc struct {
	sim  *Sim
	name string
	// resume is the baton handing control back to this process.
	resume chan wake
	// CPU is the total virtual CPU time charged via Charge.
	CPU  time.Duration
	done bool
}

// wake tells a parked process why it resumed.
type wake struct {
	timeout bool
}

// New returns an empty simulation at virtual time zero.
func New() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current virtual time. Valid from process goroutines
// and event closures.
func (s *Sim) Now() time.Duration { return s.now }

// schedule pushes an event.
func (s *Sim) schedule(at time.Duration, p *Proc, fn func(), cancelled *bool) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	e := &event{at: at, seq: s.seq, proc: p, fn: fn, cancelled: cancelled}
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run in scheduler context after delay d. fn must
// not block; it may send to mailboxes, spawn processes, and schedule
// further events. Callable from process goroutines and event closures.
func (s *Sim) After(d time.Duration, fn func()) {
	s.schedule(s.now+d, nil, fn, nil)
}

// Spawn creates a new process running fn, starting at the current
// virtual time. It may be called before Run or from within the
// simulation.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan wake)}
	s.live++
	s.schedule(s.now, p, nil, nil)
	go func() {
		<-p.resume // wait for the scheduler to start us
		defer func() {
			p.done = true
			s.live--
			if r := recover(); r != nil {
				s.panicVal = fmt.Sprintf("vtime: process %q panicked: %v", p.name, r)
			}
			s.running = nil
			s.yield <- struct{}{}
		}()
		fn(p)
	}()
	return p
}

// Run executes the simulation until no events remain, the optional
// horizon elapses, or Stop is called. It returns the final virtual time.
// Processes still parked when events run out are abandoned (the paper's
// HangForever is expressed this way).
func (s *Sim) Run(horizon time.Duration) time.Duration {
	if s.realtime {
		return s.runRealtime(horizon)
	}
	for !s.stopped && len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.cancelled != nil && *e.cancelled {
			continue
		}
		if horizon > 0 && e.at > horizon {
			s.now = horizon
			break
		}
		s.now = e.at
		s.EventCount++
		if e.fn != nil {
			e.fn()
			if s.panicVal != nil {
				panic(s.panicVal)
			}
			continue
		}
		// Hand the baton to the process and wait for it to park or exit.
		s.running = e.proc
		e.proc.resume <- wake{}
		<-s.yield
		if s.panicVal != nil {
			panic(s.panicVal)
		}
	}
	return s.now
}

// Realtime switches the simulation to wall-clock execution: Run sleeps
// until each event's scheduled time, and Inject feeds in work from
// other goroutines (e.g. network readers). Call before Run.
func (s *Sim) Realtime() *Sim {
	s.realtime = true
	s.inject = make(chan func(), 4096)
	return s
}

// Inject schedules fn to run in scheduler context as soon as possible.
// It is the only Sim entry point safe to call from outside the
// simulation, and only in realtime mode.
func (s *Sim) Inject(fn func()) {
	if !s.realtime {
		panic("vtime: Inject requires realtime mode")
	}
	s.inject <- fn
}

// InjectStop is Inject with an abort channel: it enqueues fn unless
// stop is closed first, and reports whether fn was enqueued. Network
// readers use it so that a full scheduler queue on a stopped or
// shutting-down simulation cannot wedge them forever (the enqueued fn
// may still never run if the simulation has already stopped; callers
// must tolerate that, as gossip tolerates loss at shutdown).
func (s *Sim) InjectStop(stop <-chan struct{}, fn func()) bool {
	if !s.realtime {
		panic("vtime: InjectStop requires realtime mode")
	}
	select {
	case s.inject <- fn:
		return true
	case <-stop:
		return false
	}
}

// runRealtime is the wall-clock event loop.
func (s *Sim) runRealtime(horizon time.Duration) time.Duration {
	start := time.Now()
	wall := func() time.Duration { return time.Since(start) }
	runInjected := func(fn func()) {
		s.now = wall()
		fn()
		if s.panicVal != nil {
			panic(s.panicVal)
		}
	}
	for !s.stopped {
		// Drain pending injections first.
		for {
			select {
			case fn := <-s.inject:
				runInjected(fn)
				continue
			default:
			}
			break
		}
		if s.stopped {
			break
		}
		if horizon > 0 && wall() >= horizon {
			break
		}
		if len(s.events) == 0 {
			// Idle: wait for external input (or the horizon).
			var timer <-chan time.Time
			if horizon > 0 {
				timer = time.After(horizon - wall())
			}
			select {
			case fn := <-s.inject:
				runInjected(fn)
			case <-timer:
				return wall()
			}
			continue
		}
		e := heap.Pop(&s.events).(*event)
		if e.cancelled != nil && *e.cancelled {
			continue
		}
		if wait := e.at - wall(); wait > 0 {
			select {
			case fn := <-s.inject:
				heap.Push(&s.events, e)
				runInjected(fn)
				continue
			case <-time.After(wait):
			}
		}
		s.now = wall()
		if s.now < e.at {
			s.now = e.at
		}
		s.EventCount++
		if e.fn != nil {
			e.fn()
			if s.panicVal != nil {
				panic(s.panicVal)
			}
			continue
		}
		s.running = e.proc
		e.proc.resume <- wake{}
		<-s.yield
		if s.panicVal != nil {
			panic(s.panicVal)
		}
	}
	return wall()
}

// Stop halts the simulation after the current event completes. Callable
// from processes and event closures.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// park yields control to the scheduler and blocks until resumed,
// reporting whether the wake was a timeout.
func (p *Proc) park() wake {
	p.sim.running = nil
	p.sim.yield <- struct{}{}
	return <-p.resume
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p, nil, nil)
	p.park()
}

// Charge models d of CPU work: virtual time the process is busy and
// cannot react to messages. It is accounted separately in p.CPU so
// experiments can report CPU utilization (§10.3).
func (p *Proc) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	p.CPU += d
	p.Sleep(d)
}
