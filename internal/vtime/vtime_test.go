package vtime

import (
	"testing"
	"time"
)

func TestSleepAdvancesTime(t *testing.T) {
	s := New()
	var woke time.Duration
	s.Spawn("a", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	end := s.Run(0)
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if end != 5*time.Second {
		t.Fatalf("sim ended at %v", end)
	}
}

func TestInterleaving(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		p.Sleep(1 * time.Second)
		order = append(order, "a1")
		p.Sleep(2 * time.Second)
		order = append(order, "a3")
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(2 * time.Second)
		order = append(order, "b2")
		p.Sleep(2 * time.Second)
		order = append(order, "b4")
	})
	s.Run(0)
	want := []string{"a1", "b2", "a3", "b4"}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsOrderedBySpawn(t *testing.T) {
	// Two procs waking at the same instant run in scheduling order,
	// deterministically.
	for trial := 0; trial < 10; trial++ {
		s := New()
		var order []string
		s.Spawn("a", func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, "a")
		})
		s.Spawn("b", func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, "b")
		})
		s.Run(0)
		if order[0] != "a" || order[1] != "b" {
			t.Fatalf("trial %d: nondeterministic order %v", trial, order)
		}
	}
}

func TestMailboxSendRecv(t *testing.T) {
	s := New()
	mb := s.NewMailbox()
	var got any
	var at time.Duration
	s.Spawn("recv", func(p *Proc) {
		got = p.Recv(mb)
		at = p.Now()
	})
	s.Spawn("send", func(p *Proc) {
		p.Sleep(3 * time.Second)
		mb.Send("hello")
	})
	s.Run(0)
	if got != "hello" {
		t.Fatalf("got %v", got)
	}
	if at != 3*time.Second {
		t.Fatalf("received at %v", at)
	}
}

func TestMailboxBufferedBeforeRecv(t *testing.T) {
	s := New()
	mb := s.NewMailbox()
	var got []any
	s.Spawn("send", func(p *Proc) {
		mb.Send(1)
		mb.Send(2)
	})
	s.Spawn("recv", func(p *Proc) {
		p.Sleep(time.Second)
		got = append(got, p.Recv(mb), p.Recv(mb))
	})
	s.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want FIFO [1 2]", got)
	}
}

func TestRecvDeadlineTimeout(t *testing.T) {
	s := New()
	mb := s.NewMailbox()
	var ok bool
	var at time.Duration
	s.Spawn("recv", func(p *Proc) {
		_, ok = p.RecvTimeout(mb, 7*time.Second)
		at = p.Now()
	})
	s.Run(0)
	if ok {
		t.Fatal("expected timeout")
	}
	if at != 7*time.Second {
		t.Fatalf("timed out at %v", at)
	}
}

func TestRecvDeadlineMessageBeatsTimeout(t *testing.T) {
	s := New()
	mb := s.NewMailbox()
	var v any
	var ok bool
	s.Spawn("recv", func(p *Proc) {
		v, ok = p.RecvTimeout(mb, 10*time.Second)
	})
	s.After(2*time.Second, func() { mb.Send(42) })
	s.Run(0)
	if !ok || v != 42 {
		t.Fatalf("got %v ok=%v", v, ok)
	}
	// The cancelled timeout event must not wake anything later.
	if s.Now() != 2*time.Second {
		t.Fatalf("sim time %v, want 2s", s.Now())
	}
}

func TestRecvAfterTimeoutStillWorks(t *testing.T) {
	s := New()
	mb := s.NewMailbox()
	var first, second bool
	var v any
	s.Spawn("recv", func(p *Proc) {
		_, first = p.RecvTimeout(mb, time.Second)
		v, second = p.RecvTimeout(mb, 10*time.Second)
	})
	s.After(5*time.Second, func() { mb.Send("late") })
	s.Run(0)
	if first {
		t.Fatal("first recv should time out")
	}
	if !second || v != "late" {
		t.Fatalf("second recv got %v ok=%v", v, second)
	}
}

func TestAfterClosure(t *testing.T) {
	s := New()
	var times []time.Duration
	s.After(3*time.Second, func() { times = append(times, s.Now()) })
	s.After(1*time.Second, func() { times = append(times, s.Now()) })
	s.Run(0)
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("times %v", times)
	}
}

func TestNestedSpawnAndAfter(t *testing.T) {
	s := New()
	var done time.Duration
	s.Spawn("outer", func(p *Proc) {
		p.Sleep(time.Second)
		p.Sim().Spawn("inner", func(q *Proc) {
			q.Sleep(2 * time.Second)
			done = q.Now()
		})
		p.Sim().After(time.Second, func() {})
	})
	s.Run(0)
	if done != 3*time.Second {
		t.Fatalf("inner finished at %v, want 3s", done)
	}
}

func TestHorizonStopsSim(t *testing.T) {
	s := New()
	ticks := 0
	s.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	end := s.Run(10 * time.Second)
	if end != 10*time.Second {
		t.Fatalf("ended at %v", end)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

func TestStop(t *testing.T) {
	s := New()
	ticks := 0
	s.Spawn("ticker", func(p *Proc) {
		for !p.Sim().Stopped() {
			p.Sleep(time.Second)
			ticks++
			if ticks == 3 {
				p.Sim().Stop()
			}
		}
	})
	s.Run(0)
	if ticks != 3 {
		t.Fatalf("ticks = %d", ticks)
	}
}

func TestChargeAccountsCPU(t *testing.T) {
	s := New()
	var p1 *Proc
	p1 = s.Spawn("worker", func(p *Proc) {
		p.Charge(100 * time.Millisecond)
		p.Sleep(time.Second)
		p.Charge(50 * time.Millisecond)
	})
	end := s.Run(0)
	if p1.CPU != 150*time.Millisecond {
		t.Fatalf("CPU = %v", p1.CPU)
	}
	if end != 1150*time.Millisecond {
		t.Fatalf("end = %v", end)
	}
}

func TestAbandonedProcessLikeHangForever(t *testing.T) {
	s := New()
	mb := s.NewMailbox()
	reached := false
	s.Spawn("hung", func(p *Proc) {
		p.Recv(mb) // never satisfied
		reached = true
	})
	s.Spawn("other", func(p *Proc) { p.Sleep(time.Second) })
	end := s.Run(0)
	if reached {
		t.Fatal("hung process should not run past Recv")
	}
	if end != time.Second {
		t.Fatalf("end = %v", end)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate from Run")
		}
	}()
	s := New()
	s.Spawn("bad", func(p *Proc) {
		p.Sleep(time.Second)
		panic("boom")
	})
	s.Run(0)
}

func TestDeterministicEventCount(t *testing.T) {
	run := func() uint64 {
		s := New()
		mb := s.NewMailbox()
		s.Spawn("recv", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Recv(mb)
			}
		})
		s.Spawn("send", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(time.Millisecond)
				mb.Send(i)
			}
		})
		s.Run(0)
		return s.EventCount
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("event counts differ: %d vs %d", a, b)
	}
}

func TestManyProcs(t *testing.T) {
	s := New()
	const n = 2000
	count := 0
	for i := 0; i < n; i++ {
		s.Spawn("p", func(p *Proc) {
			p.Sleep(time.Duration(i%10) * time.Second)
			count++
		})
	}
	s.Run(0)
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func BenchmarkSleepEvents(b *testing.B) {
	s := New()
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Millisecond)
		}
	})
	b.ResetTimer()
	s.Run(0)
}

func BenchmarkMailboxPingPong(b *testing.B) {
	s := New()
	m1 := s.NewMailbox()
	m2 := s.NewMailbox()
	s.Spawn("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			m2.Send(i)
			p.Recv(m1)
		}
	})
	s.Spawn("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Recv(m2)
			m1.Send(i)
		}
	})
	b.ResetTimer()
	s.Run(0)
}

func TestRealtimeBasics(t *testing.T) {
	s := New().Realtime()
	var order []string
	s.Spawn("worker", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		order = append(order, "slept")
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		s.Inject(func() { order = append(order, "injected") })
	}()
	start := time.Now()
	s.Run(200 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("realtime run returned too fast: %v", elapsed)
	}
	if len(order) != 2 || order[0] != "injected" || order[1] != "slept" {
		t.Fatalf("order %v", order)
	}
}

func TestRealtimeInjectWakesIdleLoop(t *testing.T) {
	s := New().Realtime()
	mb := s.NewMailbox()
	var got any
	s.Spawn("recv", func(p *Proc) {
		got = p.Recv(mb)
		s.Stop()
	})
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Inject(func() { mb.Send("external") })
	}()
	s.Run(time.Second)
	if got != "external" {
		t.Fatalf("got %v", got)
	}
}

func TestRealtimeHorizon(t *testing.T) {
	s := New().Realtime()
	start := time.Now()
	s.Run(30 * time.Millisecond) // no events: returns at horizon
	if e := time.Since(start); e < 25*time.Millisecond || e > 500*time.Millisecond {
		t.Fatalf("horizon wait %v", e)
	}
}

func TestInjectPanicsInVirtualMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Inject(func() {})
}
