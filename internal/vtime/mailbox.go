package vtime

import "time"

// Mailbox is an unbounded FIFO message queue between simulation
// participants. Sends never block; receives block the calling process
// until a message arrives or a deadline passes.
//
// A Mailbox may be sent to from process goroutines and event closures
// (e.g. the network layer delivering a message via Sim.After). It is not
// safe for use outside the simulation.
type Mailbox struct {
	sim   *Sim
	queue []any
	// waiter is the process currently parked on this mailbox, if any.
	// The paper's per-(round,step) incomingMsgs buffers map to one
	// Mailbox each, and a process only ever waits on one mailbox at a
	// time, so a single waiter suffices.
	waiter         *Proc
	waiterTimedOut *bool // cancellation flag for the waiter's deadline event
}

// NewMailbox creates a mailbox bound to s.
func (s *Sim) NewMailbox() *Mailbox {
	return &Mailbox{sim: s}
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// Send enqueues v and wakes the waiting process, if any.
func (m *Mailbox) Send(v any) {
	m.queue = append(m.queue, v)
	if m.waiter != nil {
		p := m.waiter
		// Cancel the waiter's pending deadline event and wake it now.
		if m.waiterTimedOut != nil {
			*m.waiterTimedOut = true
		}
		m.waiter = nil
		m.waiterTimedOut = nil
		m.sim.schedule(m.sim.now, p, nil, nil)
	}
}

// Recv blocks until a message is available and returns it.
func (p *Proc) Recv(m *Mailbox) any {
	v, ok := p.RecvDeadline(m, -1)
	if !ok {
		panic("vtime: Recv returned without value")
	}
	return v
}

// RecvDeadline blocks until a message is available or the absolute
// virtual deadline passes. A negative deadline means wait forever.
// It returns (message, true) or (nil, false) on timeout.
func (p *Proc) RecvDeadline(m *Mailbox, deadline time.Duration) (any, bool) {
	if len(m.queue) > 0 {
		v := m.queue[0]
		m.queue = m.queue[1:]
		return v, true
	}
	if deadline >= 0 && deadline <= p.sim.now {
		return nil, false
	}
	if m.waiter != nil {
		panic("vtime: multiple processes waiting on one mailbox")
	}
	m.waiter = p
	if deadline >= 0 {
		cancelled := false
		m.waiterTimedOut = &cancelled
		p.sim.schedule(deadline, p, nil, &cancelled)
	}
	p.park()
	if m.waiter == p {
		// Woken by the deadline event: deregister.
		m.waiter = nil
		m.waiterTimedOut = nil
		return nil, false
	}
	// Woken by Send: a message is guaranteed queued.
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v, true
}

// RecvTimeout is RecvDeadline with a relative timeout.
func (p *Proc) RecvTimeout(m *Mailbox, timeout time.Duration) (any, bool) {
	return p.RecvDeadline(m, p.sim.now+timeout)
}

// Drain removes and returns all queued messages without blocking.
func (m *Mailbox) Drain() []any {
	q := m.queue
	m.queue = nil
	return q
}

// Peek returns the queued messages without removing them. The caller
// must not retain or modify the returned slice across simulation steps.
func (m *Mailbox) Peek() []any { return m.queue }
