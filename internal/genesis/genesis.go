// Package genesis implements the bootstrap ceremony for seed₀ (§8.3):
// "the value of seed₀ specified in the genesis block is decided using
// distributed random number generation [14], after the public keys and
// weights for the initial set of participants are publicly known."
//
// We implement the classic commit–reveal protocol: every initial
// participant commits to a random contribution, then reveals it, and
// seed₀ is the hash of all revealed contributions. As long as at least
// one participant is honest (contributes true randomness and keeps it
// secret until the reveal phase), seed₀ is unpredictable to everyone —
// including an adversary who chooses its contribution last. Commitments
// are signed so contributions are attributable, and a participant who
// refuses to reveal is excluded deterministically (all honest parties
// observe the same reveal set at the ceremony deadline).
package genesis

import (
	"errors"
	"fmt"
	"sort"

	"algorand/internal/crypto"
)

// Contribution is one participant's secret randomness.
type Contribution [32]byte

// Commitment is the signed hash of a contribution, published in the
// commit phase.
type Commitment struct {
	Participant crypto.PublicKey
	Hash        crypto.Digest // H(participant || contribution)
	Sig         []byte
}

// Reveal is the published contribution from the reveal phase.
type Reveal struct {
	Participant  crypto.PublicKey
	Contribution Contribution
}

// Commit builds a participant's signed commitment for a contribution.
func Commit(id crypto.Identity, c Contribution) Commitment {
	pk := id.PublicKey()
	h := crypto.HashBytes("genesis.commit", pk[:], c[:])
	return Commitment{
		Participant: pk,
		Hash:        h,
		Sig:         id.Sign(h[:]),
	}
}

// VerifyCommitment checks the signature on a commitment.
func VerifyCommitment(p crypto.Provider, cm Commitment) bool {
	return p.VerifySig(cm.Participant, cm.Hash[:], cm.Sig)
}

// Ceremony aggregates commitments and reveals into seed₀.
type Ceremony struct {
	provider    crypto.Provider
	commitments map[crypto.PublicKey]Commitment
	reveals     map[crypto.PublicKey]Contribution
	sealed      bool
}

// NewCeremony starts an empty ceremony.
func NewCeremony(p crypto.Provider) *Ceremony {
	return &Ceremony{
		provider:    p,
		commitments: make(map[crypto.PublicKey]Commitment),
		reveals:     make(map[crypto.PublicKey]Contribution),
	}
}

// AddCommitment records a commitment during the commit phase. It
// rejects unsigned commitments and double-commits (a participant
// changing its mind after seeing others' commitments).
func (c *Ceremony) AddCommitment(cm Commitment) error {
	if c.sealed {
		return errors.New("genesis: commit phase is over")
	}
	if !VerifyCommitment(c.provider, cm) {
		return errors.New("genesis: bad commitment signature")
	}
	if _, dup := c.commitments[cm.Participant]; dup {
		return fmt.Errorf("genesis: %v committed twice", cm.Participant)
	}
	c.commitments[cm.Participant] = cm
	return nil
}

// Seal ends the commit phase; reveals are accepted afterwards.
func (c *Ceremony) Seal() {
	c.sealed = true
}

// AddReveal records a revealed contribution, checking it against the
// participant's commitment.
func (c *Ceremony) AddReveal(r Reveal) error {
	if !c.sealed {
		return errors.New("genesis: reveal before commit phase ended")
	}
	cm, ok := c.commitments[r.Participant]
	if !ok {
		return fmt.Errorf("genesis: %v never committed", r.Participant)
	}
	want := crypto.HashBytes("genesis.commit", r.Participant[:], r.Contribution[:])
	if want != cm.Hash {
		return fmt.Errorf("genesis: %v revealed a different value than committed", r.Participant)
	}
	c.reveals[r.Participant] = r.Contribution
	return nil
}

// Revealed returns how many participants have revealed.
func (c *Ceremony) Revealed() int { return len(c.reveals) }

// Seed computes seed₀ from the revealed contributions, in a canonical
// (public-key-sorted) order so every observer derives the same value.
// It requires at least one reveal. Participants who committed but never
// revealed are simply excluded — withholding cannot bias the output
// because the withholder fixed its contribution before seeing anyone
// else's, and exclusion is observable by everyone.
func (c *Ceremony) Seed() (crypto.Digest, error) {
	if !c.sealed {
		return crypto.Digest{}, errors.New("genesis: ceremony not sealed")
	}
	if len(c.reveals) == 0 {
		return crypto.Digest{}, errors.New("genesis: no reveals")
	}
	pks := make([]crypto.PublicKey, 0, len(c.reveals))
	for pk := range c.reveals {
		pks = append(pks, pk)
	}
	sort.Slice(pks, func(i, j int) bool {
		for b := range pks[i] {
			if pks[i][b] != pks[j][b] {
				return pks[i][b] < pks[j][b]
			}
		}
		return false
	})
	parts := make([][]byte, 0, 2*len(pks))
	for _, pk := range pks {
		contrib := c.reveals[pk]
		pkCopy := pk
		parts = append(parts, pkCopy[:], append([]byte(nil), contrib[:]...))
	}
	return crypto.HashBytes("genesis.seed0", parts...), nil
}
