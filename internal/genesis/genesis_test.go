package genesis

import (
	"testing"

	"algorand/internal/crypto"
)

func participants(n int) (crypto.Provider, []crypto.Identity) {
	p := crypto.NewFast()
	ids := make([]crypto.Identity, n)
	for i := range ids {
		ids[i] = p.NewIdentity(crypto.SeedFromUint64(uint64(i)))
	}
	return p, ids
}

func contribution(b byte) Contribution {
	var c Contribution
	c[0] = b
	return c
}

func TestCeremonyHappyPath(t *testing.T) {
	p, ids := participants(4)
	cer := NewCeremony(p)
	contribs := make([]Contribution, len(ids))
	for i, id := range ids {
		contribs[i] = contribution(byte(i + 1))
		if err := cer.AddCommitment(Commit(id, contribs[i])); err != nil {
			t.Fatal(err)
		}
	}
	cer.Seal()
	for i, id := range ids {
		if err := cer.AddReveal(Reveal{Participant: id.PublicKey(), Contribution: contribs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	seed, err := cer.Seed()
	if err != nil {
		t.Fatal(err)
	}
	if seed.IsZero() {
		t.Fatal("zero seed")
	}
	if cer.Revealed() != 4 {
		t.Fatalf("revealed %d", cer.Revealed())
	}
}

func TestSeedDeterministicAcrossObservers(t *testing.T) {
	// Two observers ingest the same commitments/reveals in different
	// orders and must derive the same seed₀.
	p, ids := participants(5)
	contribs := make([]Contribution, len(ids))
	var commits []Commitment
	for i, id := range ids {
		contribs[i] = contribution(byte(10 + i))
		commits = append(commits, Commit(id, contribs[i]))
	}
	build := func(order []int) crypto.Digest {
		cer := NewCeremony(p)
		for _, i := range order {
			if err := cer.AddCommitment(commits[i]); err != nil {
				t.Fatal(err)
			}
		}
		cer.Seal()
		for _, i := range order {
			if err := cer.AddReveal(Reveal{Participant: ids[i].PublicKey(), Contribution: contribs[i]}); err != nil {
				t.Fatal(err)
			}
		}
		s, err := cer.Seed()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := build([]int{0, 1, 2, 3, 4})
	b := build([]int{4, 2, 0, 3, 1})
	if a != b {
		t.Fatal("seed depends on observation order")
	}
}

func TestWithholderIsExcluded(t *testing.T) {
	p, ids := participants(3)
	cer := NewCeremony(p)
	contribs := []Contribution{contribution(1), contribution(2), contribution(3)}
	for i, id := range ids {
		if err := cer.AddCommitment(Commit(id, contribs[i])); err != nil {
			t.Fatal(err)
		}
	}
	cer.Seal()
	// Participant 2 never reveals.
	for i := 0; i < 2; i++ {
		if err := cer.AddReveal(Reveal{Participant: ids[i].PublicKey(), Contribution: contribs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	seed, err := cer.Seed()
	if err != nil {
		t.Fatal(err)
	}
	// The seed must equal the one a ceremony without the withholder
	// would produce: exclusion is deterministic.
	cer2 := NewCeremony(p)
	for i := 0; i < 2; i++ {
		cer2.AddCommitment(Commit(ids[i], contribs[i]))
	}
	cer2.Seal()
	for i := 0; i < 2; i++ {
		cer2.AddReveal(Reveal{Participant: ids[i].PublicKey(), Contribution: contribs[i]})
	}
	seed2, _ := cer2.Seed()
	if seed != seed2 {
		t.Fatal("withholder exclusion not deterministic")
	}
}

func TestRejections(t *testing.T) {
	p, ids := participants(2)
	cer := NewCeremony(p)
	c0 := contribution(1)

	// Forged signature.
	cm := Commit(ids[0], c0)
	cm.Sig = append([]byte(nil), cm.Sig...)
	cm.Sig[0] ^= 1
	if err := cer.AddCommitment(cm); err == nil {
		t.Fatal("forged commitment accepted")
	}

	// Double commit.
	if err := cer.AddCommitment(Commit(ids[0], c0)); err != nil {
		t.Fatal(err)
	}
	if err := cer.AddCommitment(Commit(ids[0], contribution(9))); err == nil {
		t.Fatal("double commit accepted")
	}

	// Reveal before seal.
	if err := cer.AddReveal(Reveal{Participant: ids[0].PublicKey(), Contribution: c0}); err == nil {
		t.Fatal("early reveal accepted")
	}
	cer.Seal()

	// Commit after seal.
	if err := cer.AddCommitment(Commit(ids[1], contribution(2))); err == nil {
		t.Fatal("late commitment accepted")
	}

	// Reveal not matching commitment (a participant trying to change its
	// contribution after seeing others').
	if err := cer.AddReveal(Reveal{Participant: ids[0].PublicKey(), Contribution: contribution(42)}); err == nil {
		t.Fatal("mismatched reveal accepted")
	}
	// Reveal from a stranger.
	if err := cer.AddReveal(Reveal{Participant: ids[1].PublicKey(), Contribution: contribution(2)}); err == nil {
		t.Fatal("uncommitted reveal accepted")
	}

	// No reveals: no seed.
	if _, err := cer.Seed(); err == nil {
		t.Fatal("seed without reveals")
	}
	// Unsealed ceremony: no seed.
	if _, err := NewCeremony(p).Seed(); err == nil {
		t.Fatal("seed from unsealed ceremony")
	}
}

// TestLastRevealerCannotSteer: the adversary sees everyone else's
// contributions before deciding whether to reveal — its only choices
// are "reveal what it committed" or "be excluded". Both candidate seeds
// are fixed before its decision, so it can pick between exactly two
// known values, never steer to an arbitrary one. We verify both
// candidate seeds differ from each other and are fixed.
func TestLastRevealerCannotSteer(t *testing.T) {
	p, ids := participants(3)
	contribs := []Contribution{contribution(1), contribution(2), contribution(3)}

	run := func(adversaryReveals bool) crypto.Digest {
		cer := NewCeremony(p)
		for i, id := range ids {
			cer.AddCommitment(Commit(id, contribs[i]))
		}
		cer.Seal()
		for i := 0; i < 2; i++ {
			cer.AddReveal(Reveal{Participant: ids[i].PublicKey(), Contribution: contribs[i]})
		}
		if adversaryReveals {
			cer.AddReveal(Reveal{Participant: ids[2].PublicKey(), Contribution: contribs[2]})
		}
		s, err := cer.Seed()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	withReveal := run(true)
	withoutReveal := run(false)
	if withReveal == withoutReveal {
		t.Fatal("adversary's reveal decision has no effect? test broken")
	}
	// Determinism of both branches (the adversary gets the same two
	// options every time; there is nothing to grind).
	if run(true) != withReveal || run(false) != withoutReveal {
		t.Fatal("candidate seeds not fixed")
	}
}
