package baseline

import (
	"math"
	"testing"
	"time"
)

func TestBitcoinThroughputAndLatency(t *testing.T) {
	cfg := Bitcoin()
	res := Run(cfg, 30*24*time.Hour)

	// ~6 blocks/hour → ~6 MB/hour committed (the §10.2 comparison point).
	mbPerHour := res.ThroughputBytesPerHour / (1 << 20)
	if mbPerHour < 4.5 || mbPerHour > 7.5 {
		t.Fatalf("throughput %.2f MB/h, expected ≈6", mbPerHour)
	}

	// 6-confirmation latency ≈ 1 hour median.
	if res.ConfLatencyMedian < 30*time.Minute || res.ConfLatencyMedian > 2*time.Hour {
		t.Fatalf("median confirmation latency %v, expected ≈1h", res.ConfLatencyMedian)
	}

	// Stale rate should be small but nonzero over a month.
	if res.StaleBlocks == 0 {
		t.Log("no stale blocks in this run (possible but unusual over 30 days)")
	}
	total := res.MainChainBlocks + res.StaleBlocks
	staleRate := float64(res.StaleBlocks) / float64(total)
	if staleRate > 0.10 {
		t.Fatalf("stale rate %.3f too high for 10s/10min", staleRate)
	}
}

func TestStaleRateGrowsWithPropagationDelay(t *testing.T) {
	slow := Bitcoin()
	slow.PropagationDelay = 2 * time.Minute
	slow.Seed = 7
	fast := Bitcoin()
	fast.PropagationDelay = time.Second
	fast.Seed = 7

	dur := 60 * 24 * time.Hour
	rSlow := Run(slow, dur)
	rFast := Run(fast, dur)
	slowRate := float64(rSlow.StaleBlocks) / float64(rSlow.MainChainBlocks+rSlow.StaleBlocks)
	fastRate := float64(rFast.StaleBlocks) / float64(rFast.MainChainBlocks+rFast.StaleBlocks)
	if slowRate <= fastRate {
		t.Fatalf("stale rate should grow with delay: slow %.4f fast %.4f", slowRate, fastRate)
	}
	// And roughly track the analytic approximation.
	want := StaleRateAnalytic(slow)
	if math.Abs(slowRate-want) > 0.1 {
		t.Fatalf("slow stale rate %.4f vs analytic %.4f", slowRate, want)
	}
}

func TestAnalyticHelpers(t *testing.T) {
	cfg := Bitcoin()
	if got := ExpectedThroughputBytesPerHour(cfg); math.Abs(got-6*(1<<20)) > 1 {
		t.Fatalf("expected throughput %v", got)
	}
	if r := StaleRateAnalytic(cfg); r < 0.01 || r > 0.03 {
		t.Fatalf("analytic stale rate %v", r)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Run(Bitcoin(), 24*time.Hour)
	b := Run(Bitcoin(), 24*time.Hour)
	if a != b {
		t.Fatal("same seed produced different results")
	}
	c := Bitcoin()
	c.Seed = 2
	if Run(c, 24*time.Hour) == a {
		t.Fatal("different seed produced identical results")
	}
}

func TestShortRunDoesNotPanic(t *testing.T) {
	res := Run(Bitcoin(), time.Minute)
	if res.MainChainBlocks < 0 {
		t.Fatal("negative blocks")
	}
}

func BenchmarkRunMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(Bitcoin(), 30*24*time.Hour)
	}
}
