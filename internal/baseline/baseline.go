// Package baseline simulates Nakamoto (proof-of-work) consensus — the
// Bitcoin-style protocol Algorand's evaluation compares against (§2,
// §10.2). It models exponential block arrivals, propagation-induced
// stale blocks, the longest-chain rule, and k-confirmation latency, so
// the repository can regenerate the paper's "125× Bitcoin's throughput"
// comparison from first principles instead of quoting constants.
package baseline

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Config describes a proof-of-work network.
type Config struct {
	// Miners is the number of mining pools; hash power is split evenly.
	Miners int
	// BlockInterval is the expected time between blocks (Bitcoin: 10m).
	BlockInterval time.Duration
	// BlockSize in bytes (Bitcoin: 1 MB).
	BlockSize int
	// PropagationDelay is how long a block takes to reach the other
	// miners (≈10s for 1MB per Decker & Wattenhofer [18]).
	PropagationDelay time.Duration
	// Confirmations required before a transaction is accepted (6 in
	// Bitcoin's standard recommendation [7]).
	Confirmations int
	// Seed for the simulation's randomness.
	Seed int64
}

// Bitcoin returns the standard Bitcoin parameters.
func Bitcoin() Config {
	return Config{
		Miners:           16,
		BlockInterval:    10 * time.Minute,
		BlockSize:        1 << 20,
		PropagationDelay: 10 * time.Second,
		Confirmations:    6,
		Seed:             1,
	}
}

// Result summarizes a simulated run.
type Result struct {
	// Duration of simulated time.
	Duration time.Duration
	// MainChainBlocks is the length of the final longest chain.
	MainChainBlocks int
	// StaleBlocks were mined but ended up off the main chain (forks).
	StaleBlocks int
	// ThroughputBytesPerHour of payload committed to the main chain.
	ThroughputBytesPerHour float64
	// ConfirmationLatency percentiles: time from a transaction entering
	// a block until that block has Confirmations successors.
	ConfLatencyMedian time.Duration
	ConfLatencyP90    time.Duration
}

// block is one mined block.
type block struct {
	id      int
	parent  int
	height  int
	minedAt time.Duration
	byMiner int
	// confirmedAt is when the block's k-th successor appeared (computed
	// after the run).
	confirmedAt time.Duration
}

// Run simulates PoW mining for the given duration.
//
// Model: block discovery is a Poisson process with rate 1/BlockInterval
// shared across miners. Each miner mines on the tip it currently knows;
// a newly found block reaches other miners PropagationDelay later, so a
// competing block found within that window forks the chain. Ties are
// broken by first arrival (longest chain, first-seen rule).
func Run(cfg Config, duration time.Duration) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Miners <= 0 {
		cfg.Miners = 1
	}

	blocks := []block{{id: 0, parent: -1, height: 0}}
	// view[m] = id of the tip miner m mines on; updates propagate late.
	view := make([]int, cfg.Miners)

	type arrival struct {
		at    time.Duration
		blk   int
		miner int
	}
	var pending []arrival

	now := time.Duration(0)
	for now < duration {
		// Next block found anywhere: exponential with the global rate.
		wait := time.Duration(rng.ExpFloat64() * float64(cfg.BlockInterval))
		now += wait
		miner := rng.Intn(cfg.Miners)

		// Deliver queued arrivals up to now.
		sort.Slice(pending, func(i, j int) bool { return pending[i].at < pending[j].at })
		keep := pending[:0]
		for _, a := range pending {
			if a.at <= now {
				if blocks[a.blk].height > blocks[view[a.miner]].height {
					view[a.miner] = a.blk
				}
			} else {
				keep = append(keep, a)
			}
		}
		pending = keep

		// The miner extends its current view.
		parent := view[miner]
		nb := block{
			id:      len(blocks),
			parent:  parent,
			height:  blocks[parent].height + 1,
			minedAt: now,
			byMiner: miner,
		}
		blocks = append(blocks, nb)
		view[miner] = nb.id
		for m := 0; m < cfg.Miners; m++ {
			if m == miner {
				continue
			}
			pending = append(pending, arrival{at: now + cfg.PropagationDelay, blk: nb.id, miner: m})
		}
	}

	// Find the longest chain.
	best := 0
	for i := range blocks {
		if blocks[i].height > blocks[best].height {
			best = i
		}
	}
	onMain := make(map[int]bool)
	mainBlocks := make([]int, 0, blocks[best].height)
	for b := best; b != -1; b = blocks[b].parent {
		onMain[b] = true
		mainBlocks = append(mainBlocks, b)
	}
	// mainBlocks is tip-first; reverse to genesis-first.
	for i, j := 0, len(mainBlocks)-1; i < j; i, j = i+1, j-1 {
		mainBlocks[i], mainBlocks[j] = mainBlocks[j], mainBlocks[i]
	}

	stale := len(blocks) - len(mainBlocks)

	// Confirmation latency: for each main-chain block b at index i, a
	// transaction in b is confirmed when block i+Confirmations appears.
	var lat []time.Duration
	for i := 1; i+cfg.Confirmations < len(mainBlocks); i++ {
		b := mainBlocks[i]
		conf := mainBlocks[i+cfg.Confirmations]
		lat = append(lat, blocks[conf].minedAt-blocks[b].minedAt)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var med, p90 time.Duration
	if len(lat) > 0 {
		med = lat[len(lat)/2]
		p90 = lat[int(0.9*float64(len(lat)-1))]
	}

	committed := float64((len(mainBlocks) - 1) * cfg.BlockSize)
	hours := duration.Hours()

	return Result{
		Duration:               duration,
		MainChainBlocks:        len(mainBlocks) - 1,
		StaleBlocks:            stale,
		ThroughputBytesPerHour: committed / hours,
		ConfLatencyMedian:      med,
		ConfLatencyP90:         p90,
	}
}

// ExpectedThroughputBytesPerHour is the analytic throughput ignoring
// stale blocks: BlockSize per BlockInterval.
func ExpectedThroughputBytesPerHour(cfg Config) float64 {
	blocksPerHour := float64(time.Hour) / float64(cfg.BlockInterval)
	return blocksPerHour * float64(cfg.BlockSize)
}

// StaleRateAnalytic approximates the stale-block fraction 1-e^(-Δ/T)
// for propagation delay Δ and block interval T.
func StaleRateAnalytic(cfg Config) float64 {
	return 1 - math.Exp(-cfg.PropagationDelay.Seconds()/cfg.BlockInterval.Seconds())
}
