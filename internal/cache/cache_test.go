package cache

import (
	"sync"
	"testing"
	"time"

	"algorand/internal/metrics"
)

func TestPutGetTTL(t *testing.T) {
	c := New[string, int](10 * time.Second)
	c.Put("a", 1, 0)

	if v, ok := c.Get("a", 5*time.Second); !ok || v != 1 {
		t.Fatalf("Get within TTL = %v,%v", v, ok)
	}
	// One rotation: entry survives in the previous generation.
	if v, ok := c.Get("a", 12*time.Second); !ok || v != 1 {
		t.Fatalf("Get within 2×TTL = %v,%v", v, ok)
	}
	// A fresh write and another rotation expires the original.
	c.Put("b", 2, 13*time.Second)
	if _, ok := c.Get("a", 23*time.Second); ok {
		t.Fatal("entry survived past 2×TTL")
	}
	if v, ok := c.Get("b", 23*time.Second); !ok || v != 2 {
		t.Fatalf("b lost after one rotation = %v,%v", v, ok)
	}
}

func TestIdleGapDropsBothGenerations(t *testing.T) {
	c := New[string, int](time.Second)
	c.Put("a", 1, 0)
	// After a long idle gap, nothing should be live — the entry must not
	// leak into prev and get an extra TTL of life.
	if _, ok := c.Get("a", 10*time.Second); ok {
		t.Fatal("entry survived a >2×TTL idle gap")
	}
}

func TestFreshWriteOutlivesRotation(t *testing.T) {
	c := New[crKey, bool](time.Second)
	c.Put(crKey{1}, true, 900*time.Millisecond)
	// Rotation at 1s moves it to prev; still live until 2s-ish.
	if !c.Contains(crKey{1}, 1900*time.Millisecond) {
		t.Fatal("entry dropped after one rotation")
	}
}

type crKey struct{ n int }

func TestUpdateRelayLimitPattern(t *testing.T) {
	// The realnet relay-limit idiom: allow at most `limit` relays per
	// key per ~TTL window, counting across both generations.
	c := New[string, int](time.Minute)
	const limit = 3
	relay := func(now time.Duration) bool {
		return c.Update("k", now, func(cur int, curOK bool, prev int, prevOK bool) (int, bool) {
			if cur+prev >= limit {
				return cur, false
			}
			return cur + 1, true
		})
	}
	for i := 0; i < limit; i++ {
		if !relay(0) {
			t.Fatalf("relay %d refused under limit", i)
		}
	}
	if relay(0) {
		t.Fatal("relay allowed over limit")
	}
	// Counts carried across one rotation still enforce the limit.
	if relay(90 * time.Second) {
		t.Fatal("relay allowed over limit across generations")
	}
	// After both generations age out the budget resets.
	if !relay(5 * time.Minute) {
		t.Fatal("relay refused after budget expiry")
	}
}

func TestInstrumentCounters(t *testing.T) {
	r := metrics.NewRegistry()
	c := New[string, struct{}](time.Second)
	c.Instrument(r, "algorand_txflow_verified_cache")

	c.Put("x", struct{}{}, 0)
	c.Get("x", 0) // hit
	c.Get("y", 0) // miss
	c.Get("x", 0) // hit

	snap := r.Snapshot()
	if got := snap["algorand_txflow_verified_cache_hits_total"].Value; got != 2 {
		t.Fatalf("hits = %v, want 2", got)
	}
	if got := snap["algorand_txflow_verified_cache_misses_total"].Value; got != 1 {
		t.Fatalf("misses = %v, want 1", got)
	}
}

func TestLen(t *testing.T) {
	c := New[int, int](time.Second)
	c.Put(1, 1, 0)
	c.Put(2, 2, 0)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	c.Put(3, 3, 1100*time.Millisecond) // rotates; 1,2 now in prev
	if c.Len() != 3 {
		t.Fatalf("len after rotation = %d, want 3", c.Len())
	}
}

// TestConcurrent races writers, readers, and updaters; meaningful under
// -race.
func TestConcurrent(t *testing.T) {
	r := metrics.NewRegistry()
	c := New[int, int](time.Millisecond)
	c.Instrument(r, "hammer_cache")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				now := time.Duration(i) * 10 * time.Microsecond
				c.Put(i%64, w, now)
				c.Get((i+1)%64, now)
				c.Update(i%64, now, func(cur int, curOK bool, prev int, prevOK bool) (int, bool) {
					return cur + 1, true
				})
				c.Len()
			}
		}(w)
	}
	wg.Wait()
}
