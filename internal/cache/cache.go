// Package cache provides the two-generation TTL'd map the gossip layer
// and the transaction pipeline both depend on, as one shared generic.
//
// The scheme: entries are written into a current generation; every TTL
// the current generation becomes the previous one and the previous one
// is dropped, so an entry survives between TTL and 2×TTL and expiry is
// O(1) amortized — no per-entry timers, no background sweeper. This is
// the classic gossip dedup structure (a message digest only needs to be
// remembered for about one network diameter's worth of propagation),
// and it previously existed twice in this repo with the same shape and
// different element types: realnet's seen/relay-limit caches
// (crypto.Digest→bool, string→int) and txflow's verified-digest cache
// (crypto.Digest→struct{}). TwoGen replaces both.
//
// Time is a caller-supplied time.Duration reading — virtual time under
// the simulator, wall-clock offsets in real deployments — passed into
// every operation, which keeps the cache free of clock policy and lets
// rotation happen lazily on access. Hit/miss counters can be teed into
// an observability registry via Instrument.
package cache

import (
	"sync"
	"time"

	"algorand/internal/metrics"
)

// TwoGen is a two-generation TTL'd cache. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type TwoGen[K comparable, V any] struct {
	mu      sync.Mutex
	ttl     time.Duration
	cur     map[K]V
	prev    map[K]V
	rotated time.Duration

	hits, misses *metrics.Counter // optional; nil until Instrument
}

// New creates a cache whose entries live between ttl and 2×ttl. A
// ttl <= 0 disables expiry: entries live forever.
func New[K comparable, V any](ttl time.Duration) *TwoGen[K, V] {
	return &TwoGen[K, V]{
		ttl: ttl,
		cur: make(map[K]V),
	}
}

// Instrument tees lookup outcomes into hit/miss counters registered
// under name_hits_total / name_misses_total in r.
func (c *TwoGen[K, V]) Instrument(r *metrics.Registry, name string) {
	// Register before taking c.mu: gauge functions may read this cache
	// under the registry lock, so the registry lock must never be
	// acquired while holding c.mu.
	hits := r.Counter(name+"_hits_total", "cache lookups served from a live generation")
	misses := r.Counter(name+"_misses_total", "cache lookups that found no live entry")
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses = hits, misses
}

// rotateLocked ages the generations if a TTL has elapsed. A zero or
// negative TTL disables expiry entirely (realnet's SeenTTL=0 mode).
func (c *TwoGen[K, V]) rotateLocked(now time.Duration) {
	if c.ttl <= 0 || now-c.rotated < c.ttl {
		return
	}
	// If more than two TTLs passed idle, both generations are stale.
	if now-c.rotated >= 2*c.ttl {
		c.prev = nil
	} else {
		c.prev = c.cur
	}
	c.cur = make(map[K]V)
	c.rotated = now
}

// countLocked records a lookup outcome if instrumented.
func (c *TwoGen[K, V]) countLocked(hit bool) {
	if hit {
		if c.hits != nil {
			c.hits.Inc()
		}
	} else if c.misses != nil {
		c.misses.Inc()
	}
}

// Get returns the freshest live value for k.
func (c *TwoGen[K, V]) Get(k K, now time.Duration) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rotateLocked(now)
	if v, ok := c.cur[k]; ok {
		c.countLocked(true)
		return v, true
	}
	if v, ok := c.prev[k]; ok {
		c.countLocked(true)
		return v, true
	}
	c.countLocked(false)
	var zero V
	return zero, false
}

// Contains reports whether k is live in either generation.
func (c *TwoGen[K, V]) Contains(k K, now time.Duration) bool {
	_, ok := c.Get(k, now)
	return ok
}

// Put writes k into the current generation.
func (c *TwoGen[K, V]) Put(k K, v V, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rotateLocked(now)
	c.cur[k] = v
}

// Update runs a compound read-modify-write atomically under the cache
// lock: f sees the value from each live generation (with presence
// flags) and returns the value to store in the current generation plus
// whether to store it. Update returns f's store decision, which lets
// callers fold a policy check into the same critical section — e.g.
// realnet's relay limit increments a per-key count only while the
// two-generation total is under the cap, and relays iff it stored.
// Lookups via Update are not counted as hits/misses.
func (c *TwoGen[K, V]) Update(k K, now time.Duration, f func(cur V, curOK bool, prev V, prevOK bool) (V, bool)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rotateLocked(now)
	cur, curOK := c.cur[k]
	prev, prevOK := c.prev[k]
	v, store := f(cur, curOK, prev, prevOK)
	if store {
		c.cur[k] = v
	}
	return store
}

// Len returns the number of live entries across both generations
// (counting a key present in both twice — generations are disjoint for
// writers that always Put into current, so in practice this is the
// entry count).
func (c *TwoGen[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cur) + len(c.prev)
}
