package txflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"algorand/internal/crypto"
)

// counters is the pipeline's atomic instrumentation; Stats() snapshots
// it.
type counters struct {
	admitted    atomic.Uint64
	invalid     atomic.Uint64
	badSig      atomic.Uint64
	duplicate   atomic.Uint64
	stale       atomic.Uint64
	senderLimit atomic.Uint64
	rateLimited atomic.Uint64
	poolFull    atomic.Uint64
	queueFull   atomic.Uint64
	outboxDrop  atomic.Uint64
	evicted     atomic.Uint64
	replaced    atomic.Uint64
	verified    atomic.Uint64
	cacheHits   atomic.Uint64
}

// count attributes a rejection to its counter.
func (c *counters) count(err error) {
	switch err {
	case ErrDuplicate:
		c.duplicate.Add(1)
	case ErrStaleNonce:
		c.stale.Add(1)
	case ErrSenderLimit:
		c.senderLimit.Add(1)
	case ErrPoolFull:
		c.poolFull.Add(1)
	}
}

// Stats is a point-in-time snapshot of the pipeline, following the
// same surfacing pattern as realnet's transport stats.
type Stats struct {
	// Pending occupancy.
	Pending      int
	PendingBytes int

	// Admission outcomes.
	Admitted    uint64
	Invalid     uint64
	BadSig      uint64
	Duplicate   uint64
	StaleNonce  uint64
	SenderLimit uint64
	RateLimited uint64
	PoolFull    uint64
	QueueFull   uint64

	// Pool churn.
	Evicted  uint64
	Replaced uint64

	// Verification economics: Verified signatures actually checked,
	// CacheHits re-deliveries served from the TTL'd digest cache.
	Verified  uint64
	CacheHits uint64
}

// Rejected sums every rejection reason.
func (s Stats) Rejected() uint64 {
	return s.Invalid + s.BadSig + s.Duplicate + s.StaleNonce +
		s.SenderLimit + s.RateLimited + s.PoolFull
}

// String renders a one-line operator summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"txflow: pending %d (%d B) | admitted %d rejected %d (dup %d stale %d badsig %d rate %d full %d) | evicted %d replaced %d | verified %d cache-hits %d",
		s.Pending, s.PendingBytes, s.Admitted, s.Rejected(),
		s.Duplicate, s.StaleNonce, s.BadSig, s.RateLimited, s.PoolFull,
		s.Evicted, s.Replaced, s.Verified, s.CacheHits)
}

// Stats snapshots the pipeline counters. Safe to call from any
// goroutine.
func (f *Flow) Stats() Stats {
	return Stats{
		Pending:      f.Len(),
		PendingBytes: f.PendingBytes(),
		Admitted:     f.c.admitted.Load(),
		Invalid:      f.c.invalid.Load(),
		BadSig:       f.c.badSig.Load(),
		Duplicate:    f.c.duplicate.Load(),
		StaleNonce:   f.c.stale.Load(),
		SenderLimit:  f.c.senderLimit.Load(),
		RateLimited:  f.c.rateLimited.Load(),
		PoolFull:     f.c.poolFull.Load(),
		QueueFull:    f.c.queueFull.Load(),
		Evicted:      f.c.evicted.Load(),
		Replaced:     f.c.replaced.Load(),
		Verified:     f.c.verified.Load(),
		CacheHits:    f.c.cacheHits.Load(),
	}
}

// digestCache remembers recently verified transaction digests for a
// TTL, so every relayed copy of a transaction costs at most one
// signature verification. Two generations rotate at TTL granularity
// (the same scheme as the gossip seen-cache): entries live between TTL
// and 2×TTL, and rotation is O(1).
type digestCache struct {
	mu        sync.Mutex
	ttl       time.Duration
	cur, prev map[crypto.Digest]struct{}
	rotated   time.Duration
}

func newDigestCache(ttl time.Duration) *digestCache {
	return &digestCache{
		ttl: ttl,
		cur: make(map[crypto.Digest]struct{}),
	}
}

func (c *digestCache) rotateLocked(now time.Duration) {
	if now-c.rotated < c.ttl {
		return
	}
	c.prev = c.cur
	c.cur = make(map[crypto.Digest]struct{})
	c.rotated = now
}

func (c *digestCache) has(id crypto.Digest, now time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rotateLocked(now)
	if _, ok := c.cur[id]; ok {
		return true
	}
	_, ok := c.prev[id]
	return ok
}

func (c *digestCache) add(id crypto.Digest, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rotateLocked(now)
	c.cur[id] = struct{}{}
}
