package txflow

import (
	"errors"
	"fmt"

	"algorand/internal/metrics"
)

// counters is the pipeline's instrumentation, registered under
// algorand_txflow_* in the node's metrics registry. Rejection reasons
// share one family, split by a reason label, so an operator's first
// query ("why is admission failing?") is one family wide.
type counters struct {
	admitted    *metrics.Counter
	invalid     *metrics.Counter
	badSig      *metrics.Counter
	duplicate   *metrics.Counter
	stale       *metrics.Counter
	senderLimit *metrics.Counter
	rateLimited *metrics.Counter
	poolFull    *metrics.Counter
	queueFull   *metrics.Counter
	shed        *metrics.Counter
	outboxDrop  *metrics.Counter
	evicted     *metrics.Counter
	replaced    *metrics.Counter
	verified    *metrics.Counter
}

func newCounters(r *metrics.Registry) counters {
	reject := func(reason string) *metrics.Counter {
		return r.Counter(metrics.Name("algorand_txflow_rejected_total", "reason", reason),
			"transactions rejected at admission by reason")
	}
	return counters{
		admitted:    r.Counter("algorand_txflow_admitted_total", "transactions admitted to the mempool"),
		invalid:     reject("invalid"),
		badSig:      reject("bad_sig"),
		duplicate:   reject("duplicate"),
		stale:       reject("stale_nonce"),
		senderLimit: reject("sender_limit"),
		rateLimited: reject("rate_limited"),
		poolFull:    reject("pool_full"),
		queueFull:   r.Counter("algorand_txflow_queue_full_total", "gossip batches dropped because the async ingest queue was full"),
		shed:        r.Counter("algorand_txflow_shed_total", "load-shedding rejects (rate limit, sender cap, pool full) carrying retry-after hints"),
		outboxDrop:  r.Counter("algorand_txflow_outbox_drop_total", "admitted transactions dropped from the gossip outbox"),
		evicted:     r.Counter("algorand_txflow_evicted_total", "pending transactions evicted to admit higher-fee ones"),
		replaced:    r.Counter("algorand_txflow_replaced_total", "pending transactions replaced by same-nonce higher-fee ones"),
		verified:    r.Counter("algorand_txflow_verified_total", "signatures actually verified (cache misses)"),
	}
}

// count attributes a rejection to its counter. errors.Is, not ==:
// load-shedding reasons may arrive wrapped in a Reject backoff hint.
func (c *counters) count(err error) {
	switch {
	case errors.Is(err, ErrDuplicate):
		c.duplicate.Inc()
	case errors.Is(err, ErrStaleNonce):
		c.stale.Inc()
	case errors.Is(err, ErrSenderLimit):
		c.senderLimit.Inc()
		c.shed.Inc()
	case errors.Is(err, ErrPoolFull):
		c.poolFull.Inc()
		c.shed.Inc()
	}
}

// Stats is a point-in-time snapshot of the pipeline — a typed view
// over the registry-backed counters, kept for programmatic consumers
// (tests, experiments) that want fields rather than metric names.
type Stats struct {
	// Pending occupancy.
	Pending      int
	PendingBytes int

	// Admission outcomes.
	Admitted    uint64
	Invalid     uint64
	BadSig      uint64
	Duplicate   uint64
	StaleNonce  uint64
	SenderLimit uint64
	RateLimited uint64
	PoolFull    uint64
	QueueFull   uint64
	// Shed sums the load-shedding subset of rejects (sender limit, rate
	// limit, pool full) — the ones that carry retry-after hints.
	Shed uint64

	// Pool churn.
	Evicted  uint64
	Replaced uint64

	// Verification economics: Verified signatures actually checked,
	// CacheHits re-deliveries served from the TTL'd digest cache.
	Verified  uint64
	CacheHits uint64
}

// Rejected sums every rejection reason.
func (s Stats) Rejected() uint64 {
	return s.Invalid + s.BadSig + s.Duplicate + s.StaleNonce +
		s.SenderLimit + s.RateLimited + s.PoolFull
}

// String renders a one-line operator summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"txflow: pending %d (%d B) | admitted %d rejected %d (dup %d stale %d badsig %d rate %d full %d) | evicted %d replaced %d | verified %d cache-hits %d",
		s.Pending, s.PendingBytes, s.Admitted, s.Rejected(),
		s.Duplicate, s.StaleNonce, s.BadSig, s.RateLimited, s.PoolFull,
		s.Evicted, s.Replaced, s.Verified, s.CacheHits)
}

// Stats snapshots the pipeline counters. Safe to call from any
// goroutine.
func (f *Flow) Stats() Stats {
	return Stats{
		Pending:      f.Len(),
		PendingBytes: f.PendingBytes(),
		Admitted:     f.c.admitted.Load(),
		Invalid:      f.c.invalid.Load(),
		BadSig:       f.c.badSig.Load(),
		Duplicate:    f.c.duplicate.Load(),
		StaleNonce:   f.c.stale.Load(),
		SenderLimit:  f.c.senderLimit.Load(),
		RateLimited:  f.c.rateLimited.Load(),
		PoolFull:     f.c.poolFull.Load(),
		QueueFull:    f.c.queueFull.Load(),
		Shed:         f.c.shed.Load(),
		Evicted:      f.c.evicted.Load(),
		Replaced:     f.c.replaced.Load(),
		Verified:     f.c.verified.Load(),
		CacheHits:    f.cacheHits.Load(),
	}
}
