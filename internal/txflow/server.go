package txflow

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"algorand/internal/ledger"
)

// Server is the TCP/JSON submission front door exposed by
// cmd/algorand-node -submit-addr. Clients connect, write
// newline-delimited JSON — a single transaction object or an array for
// a batch — and read one JSON reply per request:
//
//	{"from":"<64 hex>","to":"<64 hex>","amount":5,"fee":1,"nonce":0,"sig":"<128 hex>"}
//	→ {"ok":true}
//	[{...},{...}]
//	→ {"ok":false,"results":[{"ok":true},{"ok":false,"error":"txflow: stale nonce"}]}
//
// Each connection is served by its own goroutine, so independent
// clients verify signatures in parallel; rejections are immediate
// (admission never blocks on a full pool).
type Server struct {
	ln   net.Listener
	flow *Flow
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// TxJSON is the submission wire format: fixed-size fields in hex,
// integers in decimal.
type TxJSON struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Amount uint64 `json:"amount"`
	Fee    uint64 `json:"fee,omitempty"`
	Nonce  uint64 `json:"nonce"`
	Sig    string `json:"sig"`
}

// Result is the per-transaction reply. RetryAfterMs, when non-zero, is
// the backoff hint for load-shedding rejects: the milliseconds the
// sender should wait before resubmitting.
type Result struct {
	Ok           bool   `json:"ok"`
	Error        string `json:"error,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

type batchReply struct {
	Ok           bool     `json:"ok"`
	Error        string   `json:"error,omitempty"`
	RetryAfterMs int64    `json:"retry_after_ms,omitempty"`
	Results      []Result `json:"results,omitempty"`
}

// rejectResult renders a submission error, attaching the retry-after
// hint when admission shed load.
func rejectResult(err error) Result {
	res := Result{Error: err.Error()}
	if retry, ok := RetryAfterHint(err); ok {
		res.RetryAfterMs = retry.Milliseconds()
	}
	return res
}

// Transaction converts the JSON form to the ledger type.
func (j *TxJSON) Transaction() (*ledger.Transaction, error) {
	tx := &ledger.Transaction{Amount: j.Amount, Fee: j.Fee, Nonce: j.Nonce}
	if err := hexKey(j.From, tx.From[:]); err != nil {
		return nil, fmt.Errorf("from: %w", err)
	}
	if err := hexKey(j.To, tx.To[:]); err != nil {
		return nil, fmt.Errorf("to: %w", err)
	}
	sig, err := hex.DecodeString(j.Sig)
	if err != nil || len(sig) == 0 || len(sig) > 128 {
		return nil, errors.New("sig: bad hex or length")
	}
	tx.Sig = sig
	return tx, nil
}

// FromTransaction renders a signed transaction for submission.
func FromTransaction(tx *ledger.Transaction) TxJSON {
	return TxJSON{
		From:   hex.EncodeToString(tx.From[:]),
		To:     hex.EncodeToString(tx.To[:]),
		Amount: tx.Amount,
		Fee:    tx.Fee,
		Nonce:  tx.Nonce,
		Sig:    hex.EncodeToString(tx.Sig),
	}
}

func hexKey(s string, dst []byte) error {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(dst) {
		return errors.New("bad hex key")
	}
	copy(dst, b)
	return nil
}

// ListenAndServe opens the submission endpoint feeding flow.
func ListenAndServe(addr string, flow *Flow) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, flow: flow, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(c)
	}
}

func (s *Server) serve(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	dec := json.NewDecoder(c)
	enc := json.NewEncoder(c)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err != io.EOF {
				enc.Encode(batchReply{Ok: false, Error: "bad request: " + err.Error()})
			}
			return
		}
		if err := enc.Encode(s.handle(raw)); err != nil {
			return
		}
	}
}

func (s *Server) handle(raw json.RawMessage) batchReply {
	if len(raw) > 0 && raw[0] == '[' {
		var batch []TxJSON
		if err := json.Unmarshal(raw, &batch); err != nil {
			return batchReply{Ok: false, Error: "bad batch: " + err.Error()}
		}
		txs := make([]*ledger.Transaction, len(batch))
		results := make([]Result, len(batch))
		for i := range batch {
			tx, err := batch[i].Transaction()
			if err != nil {
				results[i] = Result{Error: err.Error()}
				continue
			}
			txs[i] = tx
		}
		ok := true
		errs := s.flow.SubmitBatch(txs)
		for i, err := range errs {
			if txs[i] == nil {
				ok = false
				continue // decode error already recorded
			}
			if err != nil {
				ok = false
				results[i] = rejectResult(err)
			} else {
				results[i] = Result{Ok: true}
			}
		}
		return batchReply{Ok: ok, Results: results}
	}
	var one TxJSON
	if err := json.Unmarshal(raw, &one); err != nil {
		return batchReply{Ok: false, Error: "bad tx: " + err.Error()}
	}
	tx, err := one.Transaction()
	if err != nil {
		return batchReply{Ok: false, Error: err.Error()}
	}
	if err := s.flow.Submit(tx); err != nil {
		rep := batchReply{Ok: false, Error: err.Error()}
		if retry, ok := RetryAfterHint(err); ok {
			rep.RetryAfterMs = retry.Milliseconds()
		}
		return rep
	}
	return batchReply{Ok: true}
}

// SubmitJSON is a tiny client for the endpoint, used by the payments
// load driver and tests: it dials addr, submits txs (singly or as one
// batch), and returns the per-transaction results.
func SubmitJSON(addr string, txs []*ledger.Transaction) ([]Result, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	enc := json.NewEncoder(c)
	dec := json.NewDecoder(c)
	batch := make([]TxJSON, len(txs))
	for i, tx := range txs {
		batch[i] = FromTransaction(tx)
	}
	if err := enc.Encode(batch); err != nil {
		return nil, err
	}
	var rep batchReply
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Results == nil && rep.Error != "" {
		return nil, errors.New(rep.Error)
	}
	return rep.Results, nil
}
