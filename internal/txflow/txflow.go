// Package txflow is the node's transaction ingestion pipeline: the
// path a payment takes from a user's submission (or a peer's gossip)
// to a proposer's block. It replaces the unsynchronized map that
// preceded it with a staged design sized for the paper's throughput
// claims (§10, Figure 8: ~750 MByte/h of committed payload):
//
//	Submit/SubmitBatch ─┐
//	                    ├─ admission (bounds, rate caps, stale-nonce
//	gossip (TxBatch) ───┘   and duplicate filters; explicit rejects)
//	                        │
//	                        ▼
//	               signature verification
//	               (worker pool over crypto.Provider,
//	                TTL'd verified-digest cache)
//	                        │
//	                        ▼
//	               sharded mempool (fee-then-nonce)
//	                        │           │
//	                        ▼           ▼
//	               DrainBatches     Assemble
//	               (batched gossip) (proposer's block)
//
// Every stage is safe for concurrent use; nothing in the pipeline ever
// blocks the caller. Admission either accepts a transaction or rejects
// it immediately with a typed reason — backpressure is explicit, so
// the scheduler goroutine and RPC handlers are never stalled by a full
// pool.
package txflow

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"algorand/internal/cache"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/metrics"
)

// Rejection reasons returned by Submit/SubmitBatch. Each maps to a
// counter in Stats.
var (
	// ErrInvalid: structurally invalid (zero amount, amount+fee
	// overflow, oversized signature).
	ErrInvalid = errors.New("txflow: invalid transaction")
	// ErrBadSig: signature verification failed.
	ErrBadSig = errors.New("txflow: bad signature")
	// ErrDuplicate: the exact transaction is already pending, or a
	// transaction with the same (sender, nonce) and an equal-or-higher
	// fee is.
	ErrDuplicate = errors.New("txflow: duplicate transaction")
	// ErrStaleNonce: the nonce is below the sender's committed nonce;
	// the transaction can never apply.
	ErrStaleNonce = errors.New("txflow: stale nonce")
	// ErrSenderLimit: the sender already has MaxPerSender transactions
	// pending.
	ErrSenderLimit = errors.New("txflow: per-sender pending limit")
	// ErrRateLimited: the sender exceeded RateLimit admissions within
	// RateWindow.
	ErrRateLimited = errors.New("txflow: sender rate limit")
	// ErrPoolFull: the pool is at its global bound and the transaction's
	// fee is too low to evict anything.
	ErrPoolFull = errors.New("txflow: pool full, fee too low")
	// ErrQueueFull: the async ingest queue is full (EnqueueBatch only).
	ErrQueueFull = errors.New("txflow: ingest queue full")
)

// Reject wraps a load-shedding rejection reason with a per-sender
// backoff hint: how long the sender should wait before resubmitting.
// errors.Is against the sentinel reasons still matches (Unwrap), so
// existing callers keep working; callers that want the hint use
// RetryAfterHint.
type Reject struct {
	Err        error
	RetryAfter time.Duration
}

func (r *Reject) Error() string {
	return fmt.Sprintf("%v (retry after %v)", r.Err, r.RetryAfter)
}

func (r *Reject) Unwrap() error { return r.Err }

// RetryAfterHint extracts the backoff hint from a rejection, reporting
// whether one was attached. Rate-limit rejects carry the exact
// remainder of the sender's window; pool-full and per-sender-cap
// rejects carry the configured ShedBackoff.
func RetryAfterHint(err error) (time.Duration, bool) {
	var rej *Reject
	if errors.As(err, &rej) {
		return rej.RetryAfter, true
	}
	return 0, false
}

// Config sizes the pipeline. The zero value gets sensible defaults.
type Config struct {
	// Shards is the number of mempool shards (senders are distributed
	// by key hash). Default 16.
	Shards int
	// MaxTxs and MaxBytes bound the pool globally; past either bound
	// admission evicts the lowest-fee pending transaction (or rejects
	// the incoming one if its own fee is lowest). Defaults 1<<16 txs,
	// 32 MiB.
	MaxTxs   int
	MaxBytes int
	// MaxPerSender caps one sender's pending transactions. Default 512.
	MaxPerSender int
	// RateLimit caps admissions per sender per RateWindow; 0 disables.
	// Default 0. RateWindow defaults to 1s.
	RateLimit  int
	RateWindow time.Duration
	// ShedBackoff is the retry-after hint attached to load-shedding
	// rejects that have no natural deadline (pool full, per-sender cap).
	// Rate-limit rejects instead carry the exact remainder of the
	// sender's window. Default 500ms.
	ShedBackoff time.Duration
	// VerifiedTTL is how long a verified transaction digest is
	// remembered, so relayed copies are never re-verified. Entries live
	// between TTL and 2×TTL. Default 2 minutes.
	VerifiedTTL time.Duration
	// QueueDepth bounds the async ingest queue consumed by the worker
	// pool. Default 4096.
	QueueDepth int
	// Now supplies the pipeline clock (TTL rotation, rate windows). The
	// simulator passes virtual time; real deployments leave it nil and
	// get wall-clock time since construction. The function must be safe
	// to call from any goroutine that calls into the Flow.
	Now func() time.Duration
	// Metrics receives the pipeline's counters and occupancy gauges
	// (algorand_txflow_*). Nil gets a private registry, so standalone
	// pipelines stay fully instrumented for Stats().
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.MaxTxs <= 0 {
		c.MaxTxs = 1 << 16
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 32 << 20
	}
	if c.MaxPerSender <= 0 {
		c.MaxPerSender = 512
	}
	if c.RateWindow <= 0 {
		c.RateWindow = time.Second
	}
	if c.ShedBackoff <= 0 {
		c.ShedBackoff = 500 * time.Millisecond
	}
	if c.VerifiedTTL <= 0 {
		c.VerifiedTTL = 2 * time.Minute
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	return c
}

// Flow is the transaction pipeline. All methods are safe for
// concurrent use from any goroutine.
type Flow struct {
	cfg      Config
	provider crypto.Provider

	shards []*shard
	// Global occupancy, maintained with atomics so shards only contend
	// on their own locks.
	count atomic.Int64
	bytes atomic.Int64

	// verified remembers recently verified transaction digests for
	// VerifiedTTL, so every relayed copy of a transaction costs at most
	// one signature verification.
	verified *cache.TwoGen[crypto.Digest, struct{}]

	rateMu    sync.Mutex
	rates     map[crypto.PublicKey]rateSlot
	rateSweep time.Duration

	// outbox holds freshly admitted transactions awaiting batched
	// gossip (drained by the node's flush process).
	outMu  sync.Mutex
	outbox []*ledger.Transaction

	// epoch anchors the default wall clock.
	epoch time.Time

	c counters
	// cacheHits aliases the verified cache's instrumented hit counter
	// for the Stats() view.
	cacheHits *metrics.Counter

	// Worker pool (Start/Close). queue carries gossip batches whose
	// verification is offloaded from the scheduler goroutine.
	queue   chan []ledger.Transaction
	done    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
}

type rateSlot struct {
	window time.Duration
	n      int
}

// New builds a pipeline verifying signatures against provider.
func New(provider crypto.Provider, cfg Config) *Flow {
	cfg = cfg.withDefaults()
	f := &Flow{
		cfg:      cfg,
		provider: provider,
		shards:   make([]*shard, cfg.Shards),
		rates:    make(map[crypto.PublicKey]rateSlot),
		epoch:    time.Now(),
	}
	if f.cfg.Now == nil {
		f.cfg.Now = func() time.Duration { return time.Since(f.epoch) }
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	f.c = newCounters(reg)
	f.verified = cache.New[crypto.Digest, struct{}](cfg.VerifiedTTL)
	f.verified.Instrument(reg, "algorand_txflow_verified_cache")
	// Instrument registered the hit counter; registration is idempotent,
	// so this fetches the same instance.
	f.cacheHits = reg.Counter("algorand_txflow_verified_cache_hits_total", "")
	reg.GaugeFunc("algorand_txflow_pending", "pending transactions in the mempool",
		func() float64 { return float64(f.Len()) })
	reg.GaugeFunc("algorand_txflow_pending_bytes", "encoded size of pending transactions",
		func() float64 { return float64(f.PendingBytes()) })
	for i := range f.shards {
		f.shards[i] = newShard()
	}
	return f
}

// Start launches workers verification goroutines consuming the async
// ingest queue (EnqueueBatch). With workers <= 0 it is a no-op: the
// pipeline stays fully synchronous, which the deterministic simulator
// relies on.
func (f *Flow) Start(workers int) {
	if workers <= 0 || !f.started.CompareAndSwap(false, true) {
		return
	}
	f.queue = make(chan []ledger.Transaction, f.cfg.QueueDepth)
	f.done = make(chan struct{})
	for i := 0; i < workers; i++ {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			for {
				select {
				case batch := <-f.queue:
					for i := range batch {
						f.ingest(&batch[i])
					}
				case <-f.done:
					return
				}
			}
		}()
	}
}

// Close stops the worker pool. The pipeline remains usable
// synchronously.
func (f *Flow) Close() {
	if !f.started.CompareAndSwap(true, false) {
		return
	}
	close(f.done)
	f.wg.Wait()
}

// Submit runs one transaction through the full pipeline synchronously:
// admission, signature verification, mempool insertion, and gossip
// staging. It returns nil on admission or a typed rejection reason.
func (f *Flow) Submit(tx *ledger.Transaction) error {
	res := f.ingest(tx)
	return res.err
}

// SubmitBatch admits a batch, returning one result per transaction in
// order (nil entries get ErrInvalid). When the worker pool is running,
// signature verification for the batch is fanned out first; admission
// and insertion stay ordered.
func (f *Flow) SubmitBatch(txs []*ledger.Transaction) []error {
	errs := make([]error, len(txs))
	if f.started.Load() && len(txs) > 1 {
		f.verifyParallel(txs)
	}
	for i, tx := range txs {
		if tx == nil {
			errs[i] = ErrInvalid
			continue
		}
		errs[i] = f.Submit(tx)
	}
	return errs
}

// verifyParallel pre-warms the verified-digest cache for a batch by
// checking signatures concurrently on the calling goroutine plus the
// batch's own span of goroutines. Invalid signatures are left out of
// the cache and fail again (cheaply, by then cached as nothing) in the
// ordered pass.
func (f *Flow) verifyParallel(txs []*ledger.Transaction) {
	type job struct{ tx *ledger.Transaction }
	jobs := make(chan job, len(txs))
	for _, tx := range txs {
		if tx != nil {
			jobs <- job{tx}
		}
	}
	close(jobs)
	workers := 4
	if len(txs) < workers {
		workers = len(txs)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				key := verifiedKey(j.tx)
				if f.verified.Contains(key, f.cfg.Now()) {
					continue
				}
				if j.tx.VerifySig(f.provider) {
					f.c.verified.Inc()
					f.verified.Put(key, struct{}{}, f.cfg.Now())
				}
			}
		}()
	}
	wg.Wait()
}

// IngestGossip runs one relayed transaction through the pipeline
// synchronously and reports whether it was freshly admitted (so the
// caller can decide to propagate it) and whether a signature was
// actually verified (so the simulator can charge CPU for it).
func (f *Flow) IngestGossip(tx *ledger.Transaction) (fresh, sigChecked bool) {
	res := f.ingest(tx)
	return res.err == nil, res.sigChecked
}

// EnqueueBatch hands a gossip batch to the worker pool without
// blocking. It must only be used after Start; when the queue is full
// the batch is dropped and counted, never blocked on — upstream gossip
// redundancy re-delivers.
func (f *Flow) EnqueueBatch(txs []ledger.Transaction) error {
	if !f.started.Load() {
		for i := range txs {
			f.ingest(&txs[i])
		}
		return nil
	}
	select {
	case f.queue <- txs:
		return nil
	default:
		f.c.queueFull.Inc()
		return ErrQueueFull
	}
}

type ingestResult struct {
	err        error
	sigChecked bool
}

// ingest is the single admission path shared by every entry point.
// verifiedKey is the digest-cache key for a verified transaction. It
// binds the signature bytes to the signed core: tx.ID() covers only
// the signed prefix, so two transactions with the same core but
// different signature bytes must not share a cache entry.
func verifiedKey(tx *ledger.Transaction) crypto.Digest {
	id := tx.ID()
	return crypto.HashBytes("txflow.verified", id[:], tx.Sig)
}

func (f *Flow) ingest(tx *ledger.Transaction) ingestResult {
	now := f.cfg.Now()

	// Structural checks: reject garbage before touching crypto.
	if tx.Amount == 0 || tx.Amount+tx.Fee < tx.Amount || len(tx.Sig) > 128 {
		f.c.invalid.Inc()
		return ingestResult{err: ErrInvalid}
	}

	sh := f.shardFor(tx.From)

	// Cheap stateful pre-checks under the shard lock: stale nonce,
	// duplicate, per-sender cap. All of these reject without a
	// signature verification.
	if err := sh.precheck(f, tx); err != nil {
		f.c.count(err)
		if errors.Is(err, ErrSenderLimit) {
			err = &Reject{Err: err, RetryAfter: f.cfg.ShedBackoff}
		}
		return ingestResult{err: err}
	}

	if f.cfg.RateLimit > 0 {
		if ok, retry := f.admitRate(tx.From, now); !ok {
			f.c.rateLimited.Inc()
			f.c.shed.Inc()
			return ingestResult{err: &Reject{Err: ErrRateLimited, RetryAfter: retry}}
		}
	}

	// Signature verification, skipped when the TTL'd cache has already
	// seen this exact transaction (relayed copies of a tx we verified).
	// The cache key covers the signature bytes, not just the signed
	// core: tx.ID() alone would let a same-core copy with a corrupted
	// signature ride a previous verification into the pool.
	id := tx.ID()
	key := verifiedKey(tx)
	sigChecked := false
	// Contains counts the hit/miss in the cache's instrumented counters.
	if !f.verified.Contains(key, now) {
		sigChecked = true
		if !tx.VerifySig(f.provider) {
			f.c.badSig.Inc()
			return ingestResult{err: ErrBadSig, sigChecked: true}
		}
		f.c.verified.Inc()
		f.verified.Put(key, struct{}{}, now)
	}

	// Insert, evicting the lowest-fee pending transaction if the pool
	// is over its global bounds.
	if err := f.insert(sh, tx, id); err != nil {
		f.c.count(err)
		if errors.Is(err, ErrPoolFull) {
			err = &Reject{Err: err, RetryAfter: f.cfg.ShedBackoff}
		}
		return ingestResult{err: err, sigChecked: sigChecked}
	}
	f.c.admitted.Inc()

	// Stage for batched gossip.
	f.outMu.Lock()
	if len(f.outbox) < f.cfg.MaxTxs {
		f.outbox = append(f.outbox, tx)
	} else {
		f.c.outboxDrop.Inc()
	}
	f.outMu.Unlock()
	return ingestResult{sigChecked: sigChecked}
}

// admitRate charges one admission against the sender's rate window. On
// refusal it returns how long until the sender's window rolls over —
// the exact moment a resubmission can succeed.
func (f *Flow) admitRate(from crypto.PublicKey, now time.Duration) (bool, time.Duration) {
	f.rateMu.Lock()
	defer f.rateMu.Unlock()
	// Periodically drop senders whose window has passed, bounding the
	// map.
	if now-f.rateSweep >= f.cfg.RateWindow {
		for pk, s := range f.rates {
			if now-s.window >= f.cfg.RateWindow {
				delete(f.rates, pk)
			}
		}
		f.rateSweep = now
	}
	s := f.rates[from]
	if now-s.window >= f.cfg.RateWindow {
		s = rateSlot{window: now}
	}
	if s.n >= f.cfg.RateLimit {
		return false, s.window + f.cfg.RateWindow - now
	}
	s.n++
	f.rates[from] = s
	return true, 0
}

// DrainOutbox returns the staged transactions packed into batches of
// at most maxBatchBytes of encoded payload each, clearing the stage.
// The node's flush process gossips each batch as one TxBatch message.
func (f *Flow) DrainOutbox(maxBatchBytes int) [][]ledger.Transaction {
	f.outMu.Lock()
	staged := f.outbox
	f.outbox = nil
	f.outMu.Unlock()
	if len(staged) == 0 {
		return nil
	}
	var batches [][]ledger.Transaction
	var cur []ledger.Transaction
	size := 0
	for _, tx := range staged {
		w := tx.WireSize()
		if size+w > maxBatchBytes && len(cur) > 0 {
			batches = append(batches, cur)
			cur, size = nil, 0
		}
		cur = append(cur, *tx)
		size += w
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// Len returns the number of pending transactions.
func (f *Flow) Len() int { return int(f.count.Load()) }

// PendingBytes returns the encoded size of all pending transactions.
func (f *Flow) PendingBytes() int { return int(f.bytes.Load()) }
