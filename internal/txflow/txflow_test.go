package txflow

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
)

// harness builds a Flow over the Fast provider with a controllable
// clock and a set of funded identities.
type harness struct {
	provider crypto.Provider
	flow     *Flow
	ids      []crypto.Identity
	balances *ledger.Balances
	now      time.Duration
	mu       sync.Mutex
}

func newHarness(t testing.TB, users int, cfg Config) *harness {
	t.Helper()
	h := &harness{provider: crypto.NewFast()}
	cfg.Now = func() time.Duration {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.now
	}
	h.flow = New(h.provider, cfg)
	initial := make(map[crypto.PublicKey]uint64)
	for i := 0; i < users; i++ {
		id := h.provider.NewIdentity(crypto.SeedFromUint64(uint64(i)))
		h.ids = append(h.ids, id)
		initial[id.PublicKey()] = 1_000_000
	}
	h.balances = ledger.NewBalances(initial)
	return h
}

func (h *harness) advance(d time.Duration) {
	h.mu.Lock()
	h.now += d
	h.mu.Unlock()
}

// tx builds a signed payment from user i to user j.
func (h *harness) tx(i, j int, amount, fee, nonce uint64) *ledger.Transaction {
	tx := &ledger.Transaction{
		From:   h.ids[i].PublicKey(),
		To:     h.ids[j].PublicKey(),
		Amount: amount,
		Fee:    fee,
		Nonce:  nonce,
	}
	tx.Sign(h.ids[i])
	return tx
}

func TestSubmitAdmitsAndStages(t *testing.T) {
	h := newHarness(t, 4, Config{})
	tx := h.tx(0, 1, 5, 0, 0)
	if err := h.flow.Submit(tx); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if got := h.flow.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if got := h.flow.PendingBytes(); got != tx.WireSize() {
		t.Fatalf("PendingBytes = %d, want %d", got, tx.WireSize())
	}
	batches := h.flow.DrainOutbox(1 << 20)
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("outbox batches = %v, want one batch of one tx", batches)
	}
	if again := h.flow.DrainOutbox(1 << 20); again != nil {
		t.Fatal("outbox not cleared by drain")
	}
	s := h.flow.Stats()
	if s.Admitted != 1 || s.Verified != 1 || s.Rejected() != 0 {
		t.Fatalf("stats after one admit: %+v", s)
	}
}

func TestRejectionReasons(t *testing.T) {
	h := newHarness(t, 4, Config{MaxPerSender: 2})
	f := h.flow

	// Structurally invalid: zero amount.
	if err := f.Submit(h.tx(0, 1, 0, 0, 0)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("zero amount: %v, want ErrInvalid", err)
	}
	// Bad signature.
	bad := h.tx(0, 1, 5, 0, 0)
	bad.Sig[0] ^= 1
	if err := f.Submit(bad); !errors.Is(err, ErrBadSig) {
		t.Fatalf("tampered sig: %v, want ErrBadSig", err)
	}
	// Admit, then duplicate.
	tx := h.tx(0, 1, 5, 1, 0)
	if err := f.Submit(tx); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := f.Submit(tx); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v, want ErrDuplicate", err)
	}
	// Same nonce, lower fee: still duplicate.
	if err := f.Submit(h.tx(0, 1, 5, 0, 0)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("lower-fee same-nonce: %v, want ErrDuplicate", err)
	}
	// Same nonce, higher fee: replacement.
	if err := f.Submit(h.tx(0, 1, 5, 9, 0)); err != nil {
		t.Fatalf("replacement: %v", err)
	}
	if got := f.Len(); got != 1 {
		t.Fatalf("Len after replacement = %d, want 1", got)
	}
	// Per-sender cap: nonce 1 fits (2 pending), nonce 2 does not.
	if err := f.Submit(h.tx(0, 1, 5, 0, 1)); err != nil {
		t.Fatalf("nonce 1: %v", err)
	}
	if err := f.Submit(h.tx(0, 1, 5, 0, 2)); !errors.Is(err, ErrSenderLimit) {
		t.Fatalf("over sender cap: %v, want ErrSenderLimit", err)
	}
	s := f.Stats()
	if s.Invalid != 1 || s.BadSig != 1 || s.Duplicate != 2 || s.SenderLimit != 1 || s.Replaced != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestVerifiedCacheSkipsReverification(t *testing.T) {
	h := newHarness(t, 2, Config{VerifiedTTL: time.Minute})
	tx := h.tx(0, 1, 5, 0, 0)
	if fresh, sig := h.flow.IngestGossip(tx); !fresh || !sig {
		t.Fatalf("first ingest: fresh=%v sigChecked=%v", fresh, sig)
	}
	// A relayed copy: rejected as duplicate without a verification.
	if fresh, sig := h.flow.IngestGossip(tx); fresh || sig {
		t.Fatalf("relayed copy: fresh=%v sigChecked=%v, want false/false", fresh, sig)
	}
	// Commit it, then replay: stale, still no re-verification.
	blk := &ledger.Block{Round: 1, Txns: []ledger.Transaction{*tx}}
	h.balances.ApplyTx(tx)
	h.flow.Committed(blk, h.balances)
	if fresh, sig := h.flow.IngestGossip(tx); fresh || sig {
		t.Fatalf("replayed after commit: fresh=%v sigChecked=%v", fresh, sig)
	}
	s := h.flow.Stats()
	if s.Verified != 1 {
		t.Fatalf("verified %d signatures, want exactly 1", s.Verified)
	}
	// After 2×TTL the cache forgets; a replay (still stale) is rejected
	// before verification anyway.
	h.advance(3 * time.Minute)
	if fresh, sig := h.flow.IngestGossip(tx); fresh || sig {
		t.Fatalf("stale replay after TTL: fresh=%v sigChecked=%v", fresh, sig)
	}
}

// TestCorruptSigCannotRideCache pins the cache key down to the
// signature bytes: a transaction whose signed core was verified
// earlier (and then evicted from the pool) must not smuggle a
// corrupted signature past verification via the digest cache —
// tx.ID() covers only the signed prefix.
func TestCorruptSigCannotRideCache(t *testing.T) {
	h := newHarness(t, 4, Config{Shards: 1, MaxTxs: 2, VerifiedTTL: time.Minute})
	victim := h.tx(0, 1, 1, 0, 0) // fee 0: first eviction victim
	if err := h.flow.Submit(victim); err != nil {
		t.Fatalf("victim submit: %v", err)
	}
	// Two higher-fee transactions from other senders evict it.
	for i := 1; i <= 2; i++ {
		if err := h.flow.Submit(h.tx(i, 3, 1, 10, 0)); err != nil {
			t.Fatalf("filler %d: %v", i, err)
		}
	}
	if got := h.flow.Stats().Evicted; got == 0 {
		t.Fatal("setup failed: victim was not evicted")
	}
	// Same signed core, corrupted signature. The verified cache still
	// remembers the core's digest — admission must re-verify and reject.
	corrupt := *victim
	corrupt.Sig = append([]byte{}, victim.Sig...)
	corrupt.Sig[0] ^= 0xff
	if err := h.flow.Submit(&corrupt); err != ErrBadSig {
		t.Fatalf("corrupt-sig copy: err=%v, want ErrBadSig", err)
	}
}

func TestStaleNonceAfterCommit(t *testing.T) {
	h := newHarness(t, 2, Config{})
	tx0 := h.tx(0, 1, 5, 0, 0)
	tx1 := h.tx(0, 1, 5, 0, 1)
	for _, tx := range []*ledger.Transaction{tx0, tx1} {
		if err := h.flow.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	// Commit a block containing only nonce 0; nonce 1 stays pending.
	blk := &ledger.Block{Round: 1, Txns: []ledger.Transaction{*tx0}}
	h.balances.ApplyTx(tx0)
	h.flow.Committed(blk, h.balances)
	if got := h.flow.Len(); got != 1 {
		t.Fatalf("Len after commit = %d, want 1 (nonce 1 pending)", got)
	}
	// Nonce 0 from anyone is now stale at admission.
	if err := h.flow.Submit(h.tx(0, 1, 7, 3, 0)); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("stale resubmit: %v, want ErrStaleNonce", err)
	}
}

func TestRateLimiting(t *testing.T) {
	h := newHarness(t, 2, Config{RateLimit: 3, RateWindow: time.Second})
	for n := uint64(0); n < 3; n++ {
		if err := h.flow.Submit(h.tx(0, 1, 1, 0, n)); err != nil {
			t.Fatalf("within budget (nonce %d): %v", n, err)
		}
	}
	if err := h.flow.Submit(h.tx(0, 1, 1, 0, 3)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over budget: %v, want ErrRateLimited", err)
	}
	// A different sender is unaffected.
	if err := h.flow.Submit(h.tx(1, 0, 1, 0, 0)); err != nil {
		t.Fatalf("other sender: %v", err)
	}
	// The window rolls over.
	h.advance(time.Second)
	if err := h.flow.Submit(h.tx(0, 1, 1, 0, 3)); err != nil {
		t.Fatalf("next window: %v", err)
	}
}

func TestLowestFeeEviction(t *testing.T) {
	// Pool bounded to 8 txs, one shard so eviction pressure is exact.
	h := newHarness(t, 12, Config{Shards: 1, MaxTxs: 8})
	for i := 0; i < 8; i++ {
		if err := h.flow.Submit(h.tx(i, 11, 1, uint64(10+i), 0)); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// A higher-fee tx evicts the cheapest (fee 10, sender 0).
	if err := h.flow.Submit(h.tx(8, 11, 1, 100, 0)); err != nil {
		t.Fatalf("evicting submit: %v", err)
	}
	if got := h.flow.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8 (bound held)", got)
	}
	txs := h.flow.Assemble(h.balances, 1<<20)
	for _, tx := range txs {
		if tx.Fee == 10 {
			t.Fatal("lowest-fee tx still pending after eviction")
		}
	}
	// A fee below everything pending is rejected outright.
	if err := h.flow.Submit(h.tx(9, 11, 1, 0, 0)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("lowest-fee submit to full pool: %v, want ErrPoolFull", err)
	}
	s := h.flow.Stats()
	if s.Evicted != 1 || s.PoolFull != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestAssemblePriorityAndValidity(t *testing.T) {
	h := newHarness(t, 6, Config{})
	// Sender 0: a nonce run 0,1,2 at fee 5.
	for n := uint64(0); n < 3; n++ {
		if err := h.flow.Submit(h.tx(0, 5, 10, 5, n)); err != nil {
			t.Fatal(err)
		}
	}
	// Sender 1: fee 50 (should lead the block).
	if err := h.flow.Submit(h.tx(1, 5, 10, 50, 0)); err != nil {
		t.Fatal(err)
	}
	// Sender 2: a nonce gap — nonce 1 without nonce 0: must be skipped.
	if err := h.flow.Submit(h.tx(2, 5, 10, 80, 1)); err != nil {
		t.Fatal(err)
	}
	// Sender 3: insufficient funds for the amount.
	over := h.tx(3, 5, 2_000_000, 90, 0)
	if err := h.flow.Submit(over); err != nil {
		t.Fatal(err)
	}

	txs := h.flow.Assemble(h.balances, 1<<20)
	if len(txs) != 4 {
		t.Fatalf("assembled %d txs, want 4 (run of 3 + fee 50)", len(txs))
	}
	if txs[0].Fee != 50 {
		t.Fatalf("first tx fee %d, want 50 (highest fee first)", txs[0].Fee)
	}
	// The run must be in nonce order.
	var got []uint64
	for _, tx := range txs[1:] {
		if tx.From == h.ids[0].PublicKey() {
			got = append(got, tx.Nonce)
		}
	}
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Fatalf("sender 0 nonces in block: %v, want [0 1 2]", got)
	}
	// Every assembled tx applies cleanly in order.
	check := h.balances.Clone()
	for i := range txs {
		if err := check.ApplyTx(&txs[i]); err != nil {
			t.Fatalf("assembled tx %d does not apply: %v", i, err)
		}
	}

	// Byte bound: with room for two transactions, exactly two come out.
	txs = h.flow.Assemble(h.balances, 2*ledger.TxWireSize+10)
	if len(txs) != 2 {
		t.Fatalf("assembled %d txs under 2-tx byte bound, want 2", len(txs))
	}
}

func TestAssembleDeterministic(t *testing.T) {
	build := func() []ledger.Transaction {
		h := newHarness(t, 8, Config{Shards: 4})
		for i := 0; i < 8; i++ {
			for n := uint64(0); n < 3; n++ {
				h.flow.Submit(h.tx(i, (i+1)%8, 1, uint64(i%3), n))
			}
		}
		return h.flow.Assemble(h.balances, 1<<20)
	}
	a, b := build(), build()
	if len(a) != len(b) || len(a) != 24 {
		t.Fatalf("assembled %d vs %d txs, want 24 both", len(a), len(b))
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("assembly order diverges at %d", i)
		}
	}
}

func TestDrainOutboxBatchCap(t *testing.T) {
	h := newHarness(t, 10, Config{})
	for i := 0; i < 10; i++ {
		if err := h.flow.Submit(h.tx(i, (i+1)%10, 1, 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Cap of 3 transactions' worth: ceil(10/3) = 4 batches.
	batches := h.flow.DrainOutbox(3 * ledger.TxWireSize)
	if len(batches) != 4 {
		t.Fatalf("%d batches, want 4", len(batches))
	}
	total := 0
	for _, b := range batches {
		size := 0
		for i := range b {
			size += b[i].WireSize()
		}
		if size > 3*ledger.TxWireSize {
			t.Fatalf("batch of %d bytes exceeds cap", size)
		}
		total += len(b)
	}
	if total != 10 {
		t.Fatalf("%d txs drained, want 10", total)
	}
}

// TestConcurrentIngest is the race test the old pool could never pass:
// submitters, gossip ingest, assembly, commits, drains, and stats all
// run concurrently. Run under -race; correctness here is "no race, no
// panic, bounds hold".
func TestConcurrentIngest(t *testing.T) {
	h := newHarness(t, 16, Config{Shards: 4, MaxTxs: 256, RateLimit: 0})
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// 8 submitters, each its own sender.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := uint64(0); n < 200; n++ {
				h.flow.Submit(h.tx(w, 15, 1, n%7, n))
			}
		}(w)
	}
	// Gossip ingest of overlapping traffic (duplicates on purpose).
	for w := 8; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := uint64(0); n < 200; n++ {
				h.flow.IngestGossip(h.tx(w%10, 14, 1, 0, n))
			}
		}(w)
	}
	// Readers: assembly, drains, stats, commits.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			txs := h.flow.Assemble(h.balances, 64<<10)
			if len(txs) > 0 {
				blk := &ledger.Block{Round: 1, Txns: txs[:1]}
				bal := h.balances.Clone()
				bal.ApplyTx(&txs[0])
				h.flow.Committed(blk, bal)
			}
			h.flow.DrainOutbox(8 << 10)
			_ = h.flow.Stats().String()
		}
	}()

	wg.Wait()
	close(stop)
	<-readerDone

	if got := h.flow.Len(); got > 256 {
		t.Fatalf("pool bound violated: %d pending > 256", got)
	}
	if h.flow.Len() < 0 || h.flow.PendingBytes() < 0 {
		t.Fatalf("negative occupancy: %d txs %d bytes", h.flow.Len(), h.flow.PendingBytes())
	}
}

// TestWorkerPoolIngest drives batches through the async queue.
func TestWorkerPoolIngest(t *testing.T) {
	h := newHarness(t, 8, Config{})
	h.flow.Start(4)
	defer h.flow.Close()

	var batch []ledger.Transaction
	for i := 0; i < 8; i++ {
		for n := uint64(0); n < 4; n++ {
			batch = append(batch, *h.tx(i, (i+1)%8, 1, 0, n))
		}
	}
	if err := h.flow.EnqueueBatch(batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.flow.Len() < 32 {
		if time.Now().After(deadline) {
			t.Fatalf("worker pool admitted %d/32 txs", h.flow.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitBatchMixedResults(t *testing.T) {
	h := newHarness(t, 4, Config{})
	h.flow.Start(2)
	defer h.flow.Close()
	good := h.tx(0, 1, 5, 0, 0)
	bad := h.tx(1, 2, 5, 0, 0)
	bad.Sig[3] ^= 0xFF
	errs := h.flow.SubmitBatch([]*ledger.Transaction{good, bad, nil, good})
	if errs[0] != nil {
		t.Fatalf("good tx rejected: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrBadSig) {
		t.Fatalf("bad sig: %v", errs[1])
	}
	if !errors.Is(errs[2], ErrInvalid) {
		t.Fatalf("nil tx: %v", errs[2])
	}
	if !errors.Is(errs[3], ErrDuplicate) {
		t.Fatalf("duplicate: %v", errs[3])
	}
}
