package txflow

import (
	"container/heap"
	"sort"
	"sync"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
)

// entry is one pending transaction.
type entry struct {
	tx *ledger.Transaction
	id crypto.Digest
}

// senderQueue holds one sender's pending transactions in ascending
// nonce order. Nonces are unique within a queue; a strictly
// higher-fee transaction for the same nonce displaces the incumbent.
type senderQueue struct {
	txs []entry
}

// find locates the queue index holding nonce, or its insertion point.
func (q *senderQueue) find(nonce uint64) (int, bool) {
	i := sort.Search(len(q.txs), func(i int) bool { return q.txs[i].tx.Nonce >= nonce })
	return i, i < len(q.txs) && q.txs[i].tx.Nonce == nonce
}

// shard is one lock domain of the mempool. Senders are distributed
// across shards by key bytes, so submitters for different senders
// rarely contend, and every operation — insert, evict, commit-time
// removal — only locks the shards it touches.
type shard struct {
	mu      sync.Mutex
	senders map[crypto.PublicKey]*senderQueue
	// floor[s] is s's account nonce as of the last committed block that
	// contained one of s's transactions; anything below it can never
	// apply and is rejected at admission. Maintained by Committed so
	// admission never reads the (scheduler-owned) ledger state.
	floor map[crypto.PublicKey]uint64
}

func newShard() *shard {
	return &shard{
		senders: make(map[crypto.PublicKey]*senderQueue),
		floor:   make(map[crypto.PublicKey]uint64),
	}
}

func (f *Flow) shardFor(pk crypto.PublicKey) *shard {
	// The low key bytes are hash-derived and uniformly distributed for
	// both providers, so a simple modulus spreads senders evenly.
	idx := (uint64(pk[0]) | uint64(pk[1])<<8 | uint64(pk[2])<<16 | uint64(pk[3])<<24) % uint64(len(f.shards))
	return f.shards[idx]
}

// checkLocked implements the stateful admission rules. Caller holds
// sh.mu.
func (f *Flow) checkLocked(sh *shard, tx *ledger.Transaction) error {
	if tx.Nonce < sh.floor[tx.From] {
		return ErrStaleNonce
	}
	q := sh.senders[tx.From]
	if q == nil {
		return nil
	}
	if i, ok := q.find(tx.Nonce); ok {
		// Same (sender, nonce) already pending: an identical or
		// lower/equal-fee copy is a duplicate; a strictly higher fee is
		// a replacement and takes the incumbent's slot (so the cap
		// below does not apply).
		if q.txs[i].tx.Fee >= tx.Fee {
			return ErrDuplicate
		}
		return nil
	}
	if len(q.txs) >= f.cfg.MaxPerSender {
		return ErrSenderLimit
	}
	return nil
}

// precheck rejects transactions that cannot be admitted, before the
// caller spends a signature verification on them. It is advisory —
// insert re-runs the same checks authoritatively.
func (sh *shard) precheck(f *Flow, tx *ledger.Transaction) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return f.checkLocked(sh, tx)
}

// insert places a verified transaction into the shard, then enforces
// the global byte/count bounds by evicting the lowest-fee tail in the
// shard (possibly the incoming transaction itself, in which case the
// caller gets ErrPoolFull).
func (f *Flow) insert(sh *shard, tx *ledger.Transaction, id crypto.Digest) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := f.checkLocked(sh, tx); err != nil {
		return err
	}
	q := sh.senders[tx.From]
	if q == nil {
		q = &senderQueue{}
		sh.senders[tx.From] = q
	}
	i, replace := q.find(tx.Nonce)
	if replace {
		old := q.txs[i]
		q.txs[i] = entry{tx: tx, id: id}
		f.bytes.Add(int64(tx.WireSize() - old.tx.WireSize()))
		f.c.replaced.Inc()
	} else {
		q.txs = append(q.txs, entry{})
		copy(q.txs[i+1:], q.txs[i:])
		q.txs[i] = entry{tx: tx, id: id}
		f.count.Add(1)
		f.bytes.Add(int64(tx.WireSize()))
	}

	// Enforce the global bounds. Eviction is shard-local: the victim is
	// the lowest-fee *tail* transaction (each sender's highest pending
	// nonce — the least immediately usable) among this shard's senders.
	// This approximates global lowest-fee eviction without taking every
	// shard's lock; over time inserts land in every shard, so pressure
	// is applied everywhere.
	for int(f.count.Load()) > f.cfg.MaxTxs || int(f.bytes.Load()) > f.cfg.MaxBytes {
		victim, vq := sh.lowestFeeTailLocked()
		if vq == nil {
			// Nothing left to evict here but still over the global
			// bound (other shards hold the mass): admit anyway — the
			// next insert into a loaded shard rebalances.
			break
		}
		ve := vq.txs[len(vq.txs)-1]
		vq.txs = vq.txs[:len(vq.txs)-1]
		if len(vq.txs) == 0 {
			delete(sh.senders, victim)
		}
		f.count.Add(-1)
		f.bytes.Add(int64(-ve.tx.WireSize()))
		if ve.id == id {
			// The incoming transaction was itself the cheapest: the
			// pool is full and its fee too low.
			return ErrPoolFull
		}
		f.c.evicted.Inc()
	}
	return nil
}

// lowestFeeTailLocked returns the sender owning the lowest-fee tail
// entry in the shard (ties broken by key order for determinism).
func (sh *shard) lowestFeeTailLocked() (crypto.PublicKey, *senderQueue) {
	var (
		bestPK crypto.PublicKey
		bestQ  *senderQueue
	)
	for pk, q := range sh.senders {
		tail := q.txs[len(q.txs)-1].tx
		if bestQ == nil {
			bestPK, bestQ = pk, q
			continue
		}
		btail := bestQ.txs[len(bestQ.txs)-1].tx
		if tail.Fee < btail.Fee || (tail.Fee == btail.Fee && bestPK.Less(pk)) {
			bestPK, bestQ = pk, q
		}
	}
	return bestPK, bestQ
}

// Committed removes a committed block's transactions from the pool and
// garbage-collects anything each affected sender can no longer apply.
// Cost is O(committed senders), not a scan of the pool: only shards of
// senders that appear in the block are touched. balances must reflect
// the state after the commit; it is read on the calling goroutine.
func (f *Flow) Committed(b *ledger.Block, balances *ledger.Balances) {
	// Group by sender so each shard/queue is visited once.
	type senderCommit struct {
		ids []crypto.Digest
	}
	bySender := make(map[crypto.PublicKey]*senderCommit)
	for i := range b.Txns {
		tx := &b.Txns[i]
		sc := bySender[tx.From]
		if sc == nil {
			sc = &senderCommit{}
			bySender[tx.From] = sc
		}
		sc.ids = append(sc.ids, tx.ID())
	}
	for from := range bySender {
		floor := balances.Nonce[from]
		sh := f.shardFor(from)
		sh.mu.Lock()
		if sh.floor[from] < floor {
			sh.floor[from] = floor
		}
		if q := sh.senders[from]; q != nil {
			// Everything below the committed nonce is spent or stale.
			cut, _ := q.find(floor)
			for _, e := range q.txs[:cut] {
				f.count.Add(-1)
				f.bytes.Add(int64(-e.tx.WireSize()))
			}
			q.txs = append(q.txs[:0], q.txs[cut:]...)
			if len(q.txs) == 0 {
				delete(sh.senders, from)
			}
		}
		sh.mu.Unlock()
	}
}

// --- Block assembly ---------------------------------------------------------

// feeHeap orders sender queues by their head transaction's fee,
// highest first; ties break on sender key so assembly is deterministic
// across nodes and runs.
type feeHeap []assemblyRun

type assemblyRun struct {
	sender crypto.PublicKey
	txs    []entry // pending run, ascending nonce
	pos    int     // next index to consider
}

func (h feeHeap) Len() int { return len(h) }
func (h feeHeap) Less(i, j int) bool {
	fi, fj := h[i].txs[h[i].pos].tx.Fee, h[j].txs[h[j].pos].tx.Fee
	if fi != fj {
		return fi > fj
	}
	return h[i].sender.Less(h[j].sender)
}
func (h feeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *feeHeap) Push(x interface{}) { *h = append(*h, x.(assemblyRun)) }
func (h *feeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// overlay tracks the balance deltas of transactions tentatively placed
// in the block, reading through to the base table — assembly never
// clones the full balance map.
type overlay struct {
	base  *ledger.Balances
	money map[crypto.PublicKey]uint64
	nonce map[crypto.PublicKey]uint64
}

func newOverlay(base *ledger.Balances) *overlay {
	return &overlay{
		base:  base,
		money: make(map[crypto.PublicKey]uint64),
		nonce: make(map[crypto.PublicKey]uint64),
	}
}

func (o *overlay) moneyOf(pk crypto.PublicKey) uint64 {
	if m, ok := o.money[pk]; ok {
		return m
	}
	return o.base.Money[pk]
}

func (o *overlay) nonceOf(pk crypto.PublicKey) uint64 {
	if n, ok := o.nonce[pk]; ok {
		return n
	}
	return o.base.Nonce[pk]
}

// apply validates tx against the overlaid state and applies it,
// mirroring ledger.Balances.ApplyTx (fee burned).
func (o *overlay) apply(tx *ledger.Transaction) bool {
	if tx.Amount == 0 || tx.Amount+tx.Fee < tx.Amount {
		return false
	}
	if o.moneyOf(tx.From) < tx.Amount+tx.Fee {
		return false
	}
	if tx.Nonce != o.nonceOf(tx.From) {
		return false
	}
	o.money[tx.From] = o.moneyOf(tx.From) - tx.Amount - tx.Fee
	o.money[tx.To] = o.moneyOf(tx.To) + tx.Amount
	o.nonce[tx.From] = tx.Nonce + 1
	return true
}

// Assemble drains the pool by priority into a block's transaction
// list: senders are merged highest-head-fee first, each sender's run
// applied in nonce order against an overlay of balances, stopping at
// maxBytes of encoded transactions. balances is only read (on the
// calling goroutine); pool state is not mutated — commit-time cleanup
// happens in Committed.
func (f *Flow) Assemble(balances *ledger.Balances, maxBytes int) []ledger.Transaction {
	// Snapshot each shard's queues under its own lock. The entries are
	// immutable once inserted; only the slices need copying.
	h := make(feeHeap, 0, 64)
	for _, sh := range f.shards {
		sh.mu.Lock()
		for pk, q := range sh.senders {
			run := make([]entry, len(q.txs))
			copy(run, q.txs)
			h = append(h, assemblyRun{sender: pk, txs: run})
		}
		sh.mu.Unlock()
	}
	heap.Init(&h)

	ov := newOverlay(balances)
	var out []ledger.Transaction
	size := 0
	for h.Len() > 0 && size < maxBytes {
		run := h[0]
		tx := run.txs[run.pos].tx
		w := tx.WireSize()
		if size+w > maxBytes {
			// This sender's head does not fit; with uniform transaction
			// sizes nothing else will either.
			break
		}
		if ov.apply(tx) {
			out = append(out, *tx)
			size += w
			run.pos++
			if run.pos < len(run.txs) {
				h[0] = run
				heap.Fix(&h, 0)
			} else {
				heap.Pop(&h)
			}
		} else {
			// Head not applicable (nonce gap, stale, or insufficient
			// funds): the rest of the run is nonce-blocked behind it.
			heap.Pop(&h)
		}
	}
	return out
}
