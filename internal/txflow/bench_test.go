package txflow

import (
	"fmt"
	"testing"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
)

// benchTxs pre-signs n transactions from distinct senders with the
// given provider.
func benchTxs(b *testing.B, provider crypto.Provider, senders, perSender int) []*ledger.Transaction {
	b.Helper()
	txs := make([]*ledger.Transaction, 0, senders*perSender)
	for s := 0; s < senders; s++ {
		id := provider.NewIdentity(crypto.SeedFromUint64(uint64(s)))
		for n := 0; n < perSender; n++ {
			tx := &ledger.Transaction{
				From:   id.PublicKey(),
				To:     crypto.PublicKey{1},
				Amount: 1,
				Fee:    uint64(s % 17),
				Nonce:  uint64(n),
			}
			tx.Sign(id)
			txs = append(txs, tx)
		}
	}
	return txs
}

// BenchmarkSubmitVerify measures the full admission path — admission
// checks, one real Ed25519 verification, sharded insert — per
// transaction, single-goroutine.
func BenchmarkSubmitVerify(b *testing.B) {
	provider := crypto.NewReal()
	txs := benchTxs(b, provider, 64, (b.N+63)/64+1)
	f := New(provider, Config{MaxTxs: b.N + 64, MaxPerSender: b.N + 1})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := f.Submit(txs[i]); err != nil {
			b.Fatalf("submit %d: %v", i, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkSubmitVerifyParallel is the same path with GOMAXPROCS
// submitters — the number the RPC front door sees under concurrent
// clients.
func BenchmarkSubmitVerifyParallel(b *testing.B) {
	provider := crypto.NewReal()
	f := New(provider, Config{MaxTxs: b.N + 1024, MaxPerSender: b.N + 1})
	var workerSeq atomic32
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		w := workerSeq.next()
		id := provider.NewIdentity(crypto.SeedFromUint64(uint64(1000 + w)))
		nonce := uint64(0)
		for pb.Next() {
			tx := &ledger.Transaction{
				From: id.PublicKey(), To: crypto.PublicKey{1},
				Amount: 1, Nonce: nonce,
			}
			tx.Sign(id)
			if err := f.Submit(tx); err != nil {
				b.Fatalf("submit: %v", err)
			}
			nonce++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

type atomic32 struct{ v chan int }

func (a *atomic32) next() int {
	if a.v == nil {
		a.v = make(chan int, 1)
		a.v <- 0
	}
	n := <-a.v
	a.v <- n + 1
	return n
}

// BenchmarkVerifyCacheHit measures re-delivery of an already verified
// transaction: the TTL'd digest cache must make it far cheaper than a
// verification.
func BenchmarkVerifyCacheHit(b *testing.B) {
	provider := crypto.NewReal()
	f := New(provider, Config{})
	txs := benchTxs(b, provider, 1, 1)
	f.Submit(txs[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.IngestGossip(txs[0]) // duplicate: rejected pre-verification
	}
}

// BenchmarkAssemble measures block assembly from a loaded pool at
// paper scale: pools of 2k/8k/32k pending transactions drained into a
// 1 MB block (Params.Default().BlockSize).
func BenchmarkAssemble(b *testing.B) {
	for _, pending := range []int{2048, 8192, 32768} {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			provider := crypto.NewFast()
			senders := 256
			txs := benchTxs(b, provider, senders, pending/senders)
			f := New(provider, Config{MaxTxs: pending * 2, MaxPerSender: pending})
			initial := make(map[crypto.PublicKey]uint64)
			for _, tx := range txs {
				initial[tx.From] = 1 << 30
			}
			for _, tx := range txs {
				if err := f.Submit(tx); err != nil {
					b.Fatal(err)
				}
			}
			balances := ledger.NewBalances(initial)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := f.Assemble(balances, 1<<20)
				if len(out) == 0 {
					b.Fatal("assembled empty block from loaded pool")
				}
			}
		})
	}
}
