package realnet

import (
	"bufio"
	"math/rand"
	"net"
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	nodepkg "algorand/internal/node"
	"algorand/internal/wire"
)

// rawPeer is a hand-driven TCP client speaking (or abusing) the realnet
// frame protocol, for hostile-stream tests.
type rawPeer struct {
	t *testing.T
	c net.Conn
	w *bufio.Writer
}

func dialRaw(t *testing.T, addr string) *rawPeer {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawPeer{t: t, c: c, w: bufio.NewWriter(c)}
}

func (r *rawPeer) frame(tag byte, payload []byte) {
	r.t.Helper()
	if err := wire.WriteFrame(r.w, tag, payload); err != nil {
		r.t.Fatal(err)
	}
	if err := r.w.Flush(); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawPeer) hello(id int) { r.frame(tagHello, helloPayload(id)) }

// vote builds a valid frame carrying a unique message from the given
// sender id.
func voteFrame(t *testing.T, from int, nonce uint64) (byte, []byte) {
	t.Helper()
	tag, payload, err := encodeFrame(from, &nodepkg.BlockRequest{
		Hash: crypto.HashBytes("hostile"), Requester: from, Nonce: nonce,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tag, payload
}

// closedWithin reports whether the remote closes the connection within
// the deadline (the reader sees EOF or a reset).
func closedWithin(c net.Conn, d time.Duration) bool {
	c.SetReadDeadline(time.Now().Add(d))
	var buf [64]byte
	for {
		if _, err := c.Read(buf[:]); err != nil {
			ne, ok := err.(net.Error)
			return !(ok && ne.Timeout())
		}
	}
}

// assertAlive proves the transport still works end to end: a fresh
// legitimate connection delivers a message.
func assertAlive(t *testing.T, m *miniTransport, from int, nonce uint64) {
	t.Helper()
	before := m.count()
	r := dialRaw(t, m.tr.Addr())
	r.hello(from)
	tag, payload := voteFrame(t, from, nonce)
	r.frame(tag, payload)
	deadline := time.Now().Add(5 * time.Second)
	for m.count() <= before {
		if time.Now().After(deadline) {
			t.Fatalf("transport wedged: legitimate message not delivered; stats:\n%s", m.tr.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHostileGarbageStream throws seeded random garbage at the
// listener: every connection must be dropped without wedging the
// transport, and a legitimate peer must still get through afterwards.
func TestHostileGarbageStream(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	m := newMiniNet(t, 2, nil, 20*time.Second)[0]
	rng := rand.New(rand.NewSource(0xBAD))
	iters := 8 * soakScale()
	for i := 0; i < iters; i++ {
		buf := make([]byte, 1+rng.Intn(4096))
		rng.Read(buf)
		c, err := net.DialTimeout("tcp", m.tr.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(buf)
		if !closedWithin(c, 5*time.Second) {
			c.Close()
			t.Fatalf("iteration %d: garbage connection not dropped", i)
		}
		c.Close()
	}
	assertAlive(t, m, 1, 1)
	if got := m.tr.Stats().InboundConns; got > 2 {
		t.Fatalf("%d inbound conns still registered after garbage churn (reap failed)", got)
	}
}

// TestHostileTruncatedFrame sends a frame header promising more bytes
// than ever arrive, then disconnects mid-frame: the reader must reap
// the connection and keep serving others.
func TestHostileTruncatedFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	m := newMiniNet(t, 2, nil, 20*time.Second)[0]

	// A torn frame: the header promises the full body, half arrives,
	// then the peer vanishes.
	r := dialRaw(t, m.tr.Addr())
	r.hello(1)
	tag, payload := voteFrame(t, 1, 8)
	buf := frameBytes(tag, payload)
	r.c.Write(buf[:len(buf)/2])
	r.c.Close()

	// And a frame whose header promises more than the peer ever sends,
	// with the connection left open: the read deadline must reap it.
	cfgShort := testConfig()
	cfgShort.IdleTimeout = 300 * time.Millisecond
	m2 := newMiniNet(t, 2, func(int) Config { return cfgShort }, 20*time.Second)[0]
	r2 := dialRaw(t, m2.tr.Addr())
	r2.hello(1)
	tag2, payload2 := voteFrame(t, 1, 9)
	buf2 := frameBytes(tag2, payload2)
	r2.c.Write(buf2[:len(buf2)-3])
	if !closedWithin(r2.c, 5*time.Second) {
		t.Fatal("half-open torn frame not reaped by the idle deadline")
	}

	// Both transports survive and still deliver.
	assertAlive(t, m, 1, 10)
	assertAlive(t, m2, 1, 11)
}

// frameBytes renders one frame to raw bytes.
func frameBytes(tag byte, payload []byte) []byte {
	var b []byte
	n := len(payload) + 1
	b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24), tag)
	return append(b, payload...)
}

// TestHostileBadHello pins the handshake gate: a first frame that is
// not a hello, or a hello claiming an out-of-range or self id, drops
// the connection before any message reaches the scheduler.
func TestHostileBadHello(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	m := newMiniNet(t, 2, nil, 20*time.Second)[0]

	// Not a hello.
	r := dialRaw(t, m.tr.Addr())
	tag, payload := voteFrame(t, 1, 1)
	r.frame(tag, payload)
	if !closedWithin(r.c, 5*time.Second) {
		t.Fatal("non-hello first frame not rejected")
	}
	// Out-of-range id.
	r2 := dialRaw(t, m.tr.Addr())
	r2.hello(99)
	if !closedWithin(r2.c, 5*time.Second) {
		t.Fatal("out-of-range hello not rejected")
	}
	// Our own id.
	r3 := dialRaw(t, m.tr.Addr())
	r3.hello(0)
	if !closedWithin(r3.c, 5*time.Second) {
		t.Fatal("self-id hello not rejected")
	}
	if got := m.count(); got != 0 {
		t.Fatalf("%d messages delivered through rejected handshakes", got)
	}
	assertAlive(t, m, 1, 2)
}

// TestSpoofQuarantineAndParole drives the misbehavior ladder end to
// end: spoofed sender ids score the peer, the score crosses the
// threshold into quarantine (inbound refused, frames dropped), and
// after the parole period the peer is accepted again with a clean
// slate.
func TestSpoofQuarantineAndParole(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	cfg := testConfig()
	cfg.QuarantineThreshold = 8 // two spoofs (5+5) cross it
	cfg.QuarantineDuration = 600 * time.Millisecond
	m := newMiniNet(t, 3, func(int) Config { return cfg }, 30*time.Second)[0]

	// Two spoofing connections: hello as peer 1, frames claiming peer 2.
	for i := 0; i < 2; i++ {
		r := dialRaw(t, m.tr.Addr())
		r.hello(1)
		tag, payload := voteFrame(t, 2, uint64(100+i))
		r.frame(tag, payload)
		if !closedWithin(r.c, 5*time.Second) {
			t.Fatalf("spoof %d: connection not dropped", i)
		}
	}
	s := m.tr.Stats()
	ps := s.Peers[0] // peer 1
	if ps.Spoofed < 2 {
		t.Fatalf("spoofed count %d, want >= 2", ps.Spoofed)
	}
	if !ps.Quarantined || ps.Quarantines != 1 {
		t.Fatalf("peer 1 not quarantined after crossing threshold: %+v", ps)
	}

	// While quarantined, even a clean connection is refused.
	r := dialRaw(t, m.tr.Addr())
	r.hello(1)
	if !closedWithin(r.c, 5*time.Second) {
		t.Fatal("quarantined peer's connection not refused")
	}
	if got := m.count(); got != 0 {
		t.Fatalf("%d messages delivered from quarantined peer", got)
	}

	// After parole, the peer is welcome again.
	time.Sleep(cfg.QuarantineDuration + 100*time.Millisecond)
	assertAlive(t, m, 1, 200)
	ps = m.tr.Stats().Peers[0]
	if ps.Quarantined {
		t.Fatal("peer still quarantined after parole")
	}
	if ps.Score != 0 {
		t.Fatalf("score %d after parole, want clean slate", ps.Score)
	}
}

// TestRateAbuseShedsAndQuarantines floods the transport beyond the
// per-peer rate budget: the excess is shed before the scheduler sees
// it, and sustained abuse quarantines the flooder.
func TestRateAbuseShedsAndQuarantines(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	cfg := testConfig()
	cfg.RateLimit = 20
	cfg.RateWindow = 5 * time.Second // one window for the whole flood
	cfg.QuarantineThreshold = 6      // three over-budget frames (2+2+2)
	cfg.QuarantineDuration = 10 * time.Second
	m := newMiniNet(t, 2, func(int) Config { return cfg }, 30*time.Second)[0]

	r := dialRaw(t, m.tr.Addr())
	r.hello(1)
	for i := 0; i < 60; i++ {
		tag, payload := voteFrame(t, 1, uint64(i))
		if err := wire.WriteFrame(r.w, tag, payload); err != nil {
			break // quarantine may reset the conn mid-flood; that's the point
		}
	}
	r.w.Flush()

	deadline := time.Now().Add(5 * time.Second)
	for {
		ps := m.tr.Stats().Peers[0]
		if ps.RateAbuse > 0 && ps.Quarantines > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood not shed/quarantined: %+v", ps)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Everything past the budget was shed before delivery: the handler
	// saw at most RateLimit messages (the hello is not a message).
	time.Sleep(200 * time.Millisecond)
	if got := m.count(); got > cfg.RateLimit {
		t.Fatalf("handler saw %d messages, rate budget is %d", got, cfg.RateLimit)
	}
}

// txBatchFrame hand-crafts a TxBatch frame from the given sender with
// an arbitrary message body (valid or hostile).
func txBatchFrame(from int, body []byte) (byte, []byte) {
	e := wire.NewEncoderSize(4 + len(body))
	e.Int(from)
	e.Fixed(body)
	return nodepkg.TagTxBatch, e.Data()
}

// TestHostileTxBatch throws malformed transaction batches at the
// transport: a count promising 2^30 transactions, a cumulative payload
// above MaxTxBatchBytes, and a batch truncated mid-transaction. Each
// must score the peer as malformed and drop the connection — never
// crash or wedge the transport — and a legitimate peer must still get
// through afterwards.
func TestHostileTxBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	// Keep the misbehavior score below the quarantine threshold so all
	// three cases are observed on live connections (quarantine itself
	// is pinned by TestSpoofQuarantineAndParole).
	cfg := testConfig()
	cfg.QuarantineThreshold = 100
	m := newMiniNet(t, 2, func(int) Config { return cfg }, 30*time.Second)[0]

	// An honestly encoded oversized batch: enough max-signature
	// transactions to cross MaxTxBatchBytes.
	tx := ledger.Transaction{From: crypto.PublicKey{1}, Amount: 1, Sig: make([]byte, 120)}
	n := nodepkg.MaxTxBatchBytes/tx.WireSize() + 2
	over := &nodepkg.TxBatch{Txns: make([]ledger.Transaction, n)}
	for i := range over.Txns {
		over.Txns[i] = tx
	}
	_, overBody, err := nodepkg.EncodeMessage(over)
	if err != nil {
		t.Fatal(err)
	}
	// A valid single-tx batch to truncate.
	_, okBody, err := nodepkg.EncodeMessage(&nodepkg.TxBatch{Txns: []ledger.Transaction{tx}})
	if err != nil {
		t.Fatal(err)
	}

	hostile := [][]byte{
		{0x00, 0x00, 0x00, 0x40}, // count = 2^30, no payload
		overBody,                 // cumulative size above the cap
		okBody[:len(okBody)-9],   // truncated mid-transaction
	}
	var malformed uint64
	for i, body := range hostile {
		r := dialRaw(t, m.tr.Addr())
		r.hello(1)
		tag, payload := txBatchFrame(1, body)
		r.frame(tag, payload)
		if !closedWithin(r.c, 5*time.Second) {
			t.Fatalf("hostile batch %d: connection not dropped", i)
		}
		ps := m.tr.Stats().Peers[0]
		if ps.Malformed <= malformed {
			t.Fatalf("hostile batch %d: malformed score did not increase (%d)", i, ps.Malformed)
		}
		malformed = ps.Malformed
	}
	if got := m.count(); got != 0 {
		t.Fatalf("%d messages delivered from hostile batches", got)
	}
	assertAlive(t, m, 1, 300)
}

// TestReportMisbehaviorQuarantines drives the application-level offense
// path: a node that catches a peer serving forged data (e.g. a snapshot
// whose account table breaks its certified Merkle commitment) reports
// it to the transport, the reports score the peer like any wire-level
// offense, and enough of them quarantine it — inbound connections
// refused until parole.
func TestReportMisbehaviorQuarantines(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	cfg := testConfig()
	cfg.QuarantineThreshold = 8 // two reports (4+4) cross it
	cfg.QuarantineDuration = 600 * time.Millisecond
	m := newMiniNet(t, 3, func(int) Config { return cfg }, 30*time.Second)[0]

	// Reports against self and unknown ids are dropped, not scored.
	m.tr.ReportMisbehavior(0, "self-report must be ignored")
	m.tr.ReportMisbehavior(99, "unknown peer must be ignored")
	if ps := m.tr.Stats().Peers; ps[0].Reported != 0 || ps[1].Reported != 0 {
		t.Fatalf("bogus reports scored a real peer: %+v", ps)
	}

	m.tr.ReportMisbehavior(1, "forged snapshot: state root mismatch")
	ps := m.tr.Stats().Peers[0] // peer 1
	if ps.Reported != 1 {
		t.Fatalf("reported count %d, want 1", ps.Reported)
	}
	if ps.Quarantined {
		t.Fatal("one report below threshold already quarantined the peer")
	}

	m.tr.ReportMisbehavior(1, "forged snapshot: state root mismatch")
	ps = m.tr.Stats().Peers[0]
	if ps.Reported != 2 {
		t.Fatalf("reported count %d, want 2", ps.Reported)
	}
	if !ps.Quarantined || ps.Quarantines != 1 {
		t.Fatalf("peer 1 not quarantined after crossing threshold: %+v", ps)
	}

	// While quarantined, even a clean connection is refused.
	r := dialRaw(t, m.tr.Addr())
	r.hello(1)
	if !closedWithin(r.c, 5*time.Second) {
		t.Fatal("quarantined peer's connection not refused")
	}

	// The other peer is untouched and the transport still works.
	assertAlive(t, m, 2, 400)

	// After parole, the reported peer is welcome again.
	time.Sleep(cfg.QuarantineDuration + 100*time.Millisecond)
	assertAlive(t, m, 1, 401)
	if ps = m.tr.Stats().Peers[0]; ps.Quarantined {
		t.Fatal("peer still quarantined after parole")
	}
}
