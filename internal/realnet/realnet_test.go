package realnet

import (
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	nodepkg "algorand/internal/node"
)

// TestRealTCPConsensus runs a real multi-node Algorand deployment over
// loopback TCP with full Ed25519+ECVRF crypto and wall-clock timeouts,
// and checks that every node commits the same chain.
func TestRealTCPConsensus(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	const n = 6
	const rounds = 2
	c := newRealCluster(t, n, rounds)
	c.run(60 * time.Second)
	c.checkAgreement(n - 1)

	// Safety: per round, all committed values agree.
	values := map[uint64]crypto.Digest{}
	for i := 0; i < n; i++ {
		for _, st := range c.nodes[i].Stats {
			if prev, ok := values[st.Round]; ok && prev != st.Value {
				t.Fatalf("round %d: node %d disagrees", st.Round, i)
			} else {
				values[st.Round] = st.Value
			}
		}
	}

	// The health surface reports full connectivity and no quarantines
	// after a clean run.
	h, ok := c.nodes[0].TransportHealth()
	if !ok {
		t.Fatal("realnet transport must report health")
	}
	if h.Peers != n-1 || h.Quarantined != 0 {
		t.Fatalf("health %+v, want %d peers and no quarantines", h, n-1)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	// Frames must round-trip through the wire codec with the sender id
	// intact, and the framed size must be the canonical WireSize plus
	// the fixed envelope overhead (5-byte frame header + 4-byte sender).
	// The per-type encoding round-trip lives in internal/wire's
	// universal test; this covers the transport envelope.
	provider := crypto.NewReal()
	id := provider.NewIdentity(crypto.SeedFromUint64(1))
	vote := &nodepkg.VoteMsg{Vote: ledger.Vote{
		Sender: id.PublicKey(), Round: 3, Step: 1,
		PrevHash: crypto.HashBytes("p"), Value: crypto.HashBytes("v"),
		SortProof: []byte{1, 2, 3}, Sig: []byte{4, 5},
	}}
	blk := &ledger.Block{Round: 3, PayloadPadding: 128}
	msgs := []network.Message{
		vote,
		&nodepkg.BlockRequest{Hash: crypto.HashBytes("h"), Requester: 2, Nonce: 7},
		&nodepkg.BlockFill{Block: blk, Recipient: 1},
		&nodepkg.TxMsg{Tx: ledger.Transaction{From: id.PublicKey(), Amount: 5}},
	}
	const nPeers = 16
	for _, m := range msgs {
		if sz := encodeSize(m); sz != m.WireSize()+9 {
			t.Fatalf("%T framed size %d, want WireSize %d + 9", m, sz, m.WireSize())
		}
		tag, payload, err := encodeFrame(7, m)
		if err != nil {
			t.Fatalf("%T encode: %v", m, err)
		}
		from, back, err := decodeFrame(tag, payload, nPeers)
		if err != nil {
			t.Fatalf("%T decode: %v", m, err)
		}
		if from != 7 {
			t.Fatalf("%T sender %d, want 7", m, from)
		}
		if back.ID() != m.ID() {
			t.Fatalf("%T round-trip changed message identity", m)
		}
	}
}

// TestDecodeFrameRejectsAlienSender pins the address-book validation: a
// frame whose claimed sender id falls outside [0, nPeers) must fail to
// decode rather than flow into relay bookkeeping with a bogus id.
func TestDecodeFrameRejectsAlienSender(t *testing.T) {
	msg := &nodepkg.BlockRequest{Hash: crypto.HashBytes("x"), Requester: 1, Nonce: 1}
	// (The encoder clamps negatives to 0, so out-of-range means >= nPeers
	// on the wire.)
	for _, from := range []int{5, 100} {
		tag, payload, err := encodeFrame(from, msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := decodeFrame(tag, payload, 5); err == nil {
			t.Fatalf("sender id %d accepted against a 5-entry address book", from)
		}
	}
	// Boundary: the largest valid id decodes.
	tag, payload, err := encodeFrame(4, msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeFrame(tag, payload, 5); err != nil {
		t.Fatalf("sender id 4 rejected against a 5-entry address book: %v", err)
	}
}

func TestTransportDedupAndRelayLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	// Three transports; nodes 1 and 2 count deliveries.
	nets := newMiniNet(t, 3, nil, 3*time.Second)

	msg := &nodepkg.BlockRequest{Hash: crypto.HashBytes("dup"), Requester: 0, Nonce: 1}
	nets[0].tr.Gossip(0, msg)
	nets[0].tr.Gossip(0, msg) // duplicate: receivers must drop it

	time.Sleep(700 * time.Millisecond)
	c1, c2 := nets[1].count(), nets[2].count()
	if c1 != 1 || c2 != 1 {
		t.Fatalf("deliveries %d/%d, want exactly 1 each (dedup)", c1, c2)
	}
}
