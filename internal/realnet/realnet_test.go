package realnet

import (
	"net"
	"sync"
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	nodepkg "algorand/internal/node"
	"algorand/internal/params"
	"algorand/internal/vtime"
)

// realCluster boots n full Algorand nodes, each with its own wall-clock
// scheduler and TCP transport on 127.0.0.1.
type realCluster struct {
	n          int
	addrs      []string
	sims       []*vtime.Sim
	transports []*Transport
	nodes      []*nodepkg.Node
	provider   crypto.Provider
}

// fast wall-clock parameters so tests finish in a few seconds.
func realParams() params.Params {
	p := params.Default()
	p.TauProposer = 6
	p.TauStep = 30
	p.TauFinal = 60
	p.LambdaPriority = 150 * time.Millisecond
	p.LambdaStepVar = 100 * time.Millisecond
	p.LambdaBlock = time.Second
	p.LambdaStep = 500 * time.Millisecond
	p.MaxSteps = 12
	p.BlockSize = 8 << 10
	return p
}

func newRealCluster(t *testing.T, n int, rounds uint64) *realCluster {
	c := &realCluster{n: n, provider: crypto.NewReal()}

	// Bind ephemeral ports first to build the address book.
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		c.addrs = append(c.addrs, ln.Addr().String())
	}

	genesis := make(map[crypto.PublicKey]uint64)
	ids := make([]crypto.Identity, n)
	for i := 0; i < n; i++ {
		ids[i] = c.provider.NewIdentity(crypto.SeedFromUint64(uint64(7000 + i)))
		genesis[ids[i].PublicKey()] = 10
	}
	seed0 := crypto.HashBytes("realnet-genesis")

	cfg := nodepkg.Config{
		Params:    realParams(),
		LedgerCfg: ledger.DefaultConfig(),
	}
	for i := 0; i < n; i++ {
		sim := vtime.New().Realtime()
		tr := NewWithListener(sim, i, c.addrs, listeners[i])
		nd := nodepkg.New(i, sim, tr, c.provider, ids[i], cfg, genesis, seed0)
		nd.StopAfterRound = rounds
		c.sims = append(c.sims, sim)
		c.transports = append(c.transports, tr)
		c.nodes = append(c.nodes, nd)
	}
	return c
}

// run starts everything and blocks until all nodes finish their rounds
// or the wall-clock deadline passes.
func (c *realCluster) run(t *testing.T, rounds uint64, deadline time.Duration) {
	var wg sync.WaitGroup
	for i := 0; i < c.n; i++ {
		i := i
		c.transports[i].Start()
		c.nodes[i].Start()
		// A watcher inside each scheduler stops its sim once the node is
		// done (race-free: it runs in scheduler context).
		c.sims[i].Spawn("watcher", func(p *vtime.Proc) {
			for c.nodes[i].Ledger().ChainLength() < rounds {
				p.Sleep(100 * time.Millisecond)
			}
			// Linger briefly so we keep serving blocks/votes to peers
			// that are a step behind.
			p.Sleep(time.Second)
			p.Sim().Stop()
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.sims[i].Run(deadline)
		}()
	}
	wg.Wait()
	for _, tr := range c.transports {
		tr.Close()
	}
}

// TestRealTCPConsensus runs a real multi-node Algorand deployment over
// loopback TCP with full Ed25519+ECVRF crypto and wall-clock timeouts,
// and checks that every node commits the same chain.
func TestRealTCPConsensus(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	const n = 6
	const rounds = 2
	c := newRealCluster(t, n, rounds)
	c.run(t, rounds, 60*time.Second)

	done := 0
	for i := 0; i < n; i++ {
		if c.nodes[i].Ledger().ChainLength() >= rounds {
			done++
		}
	}
	if done < n-1 {
		t.Fatalf("only %d/%d nodes completed %d rounds", done, n, rounds)
	}

	// Safety: per round, all committed values agree.
	values := map[uint64]crypto.Digest{}
	for i := 0; i < n; i++ {
		for _, st := range c.nodes[i].Stats {
			if prev, ok := values[st.Round]; ok && prev != st.Value {
				t.Fatalf("round %d: node %d disagrees", st.Round, i)
			} else {
				values[st.Round] = st.Value
			}
		}
	}
	// And chains match block-for-block across nodes that finished.
	ref := c.nodes[0].Ledger()
	for i := 1; i < n; i++ {
		l := c.nodes[i].Ledger()
		upTo := l.ChainLength()
		if ref.ChainLength() < upTo {
			upTo = ref.ChainLength()
		}
		for r := uint64(1); r <= upTo; r++ {
			a, _ := ref.BlockAt(r)
			b, _ := l.BlockAt(r)
			if a.Hash() != b.Hash() {
				t.Fatalf("round %d: chain mismatch between node 0 and %d", r, i)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	// Frames must round-trip through the wire codec with the sender id
	// intact, and the framed size must be the canonical WireSize plus
	// the fixed envelope overhead (5-byte frame header + 4-byte sender).
	// The per-type encoding round-trip lives in internal/wire's
	// universal test; this covers the transport envelope.
	provider := crypto.NewReal()
	id := provider.NewIdentity(crypto.SeedFromUint64(1))
	vote := &nodepkg.VoteMsg{Vote: ledger.Vote{
		Sender: id.PublicKey(), Round: 3, Step: 1,
		PrevHash: crypto.HashBytes("p"), Value: crypto.HashBytes("v"),
		SortProof: []byte{1, 2, 3}, Sig: []byte{4, 5},
	}}
	blk := &ledger.Block{Round: 3, PayloadPadding: 128}
	msgs := []network.Message{
		vote,
		&nodepkg.BlockRequest{Hash: crypto.HashBytes("h"), Requester: 2, Nonce: 7},
		&nodepkg.BlockFill{Block: blk, Recipient: 1},
		&nodepkg.TxMsg{Tx: ledger.Transaction{From: id.PublicKey(), Amount: 5}},
	}
	for _, m := range msgs {
		if sz := encodeSize(m); sz != m.WireSize()+9 {
			t.Fatalf("%T framed size %d, want WireSize %d + 9", m, sz, m.WireSize())
		}
		tag, payload, err := encodeFrame(7, m)
		if err != nil {
			t.Fatalf("%T encode: %v", m, err)
		}
		from, back, err := decodeFrame(tag, payload)
		if err != nil {
			t.Fatalf("%T decode: %v", m, err)
		}
		if from != 7 {
			t.Fatalf("%T sender %d, want 7", m, from)
		}
		if back.ID() != m.ID() {
			t.Fatalf("%T round-trip changed message identity", m)
		}
	}
}

func TestTransportDedupAndRelayLimit(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	// Three transports; node 1 counts deliveries.
	var lns []net.Listener
	var addrs []string
	for i := 0; i < 3; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	var sims []*vtime.Sim
	var trs []*Transport
	counts := make([]int, 3)
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		i := i
		sim := vtime.New().Realtime()
		tr := NewWithListener(sim, i, addrs, lns[i])
		tr.SetHandler(i, network.HandlerFunc(func(from int, m network.Message) network.Verdict {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return network.Verdict{Relay: true}
		}))
		tr.Start()
		sims = append(sims, sim)
		trs = append(trs, tr)
	}
	for i := range sims {
		i := i
		go sims[i].Run(2 * time.Second)
	}

	msg := &nodepkg.BlockRequest{Hash: crypto.HashBytes("dup"), Requester: 0, Nonce: 1}
	trs[0].Gossip(0, msg)
	trs[0].Gossip(0, msg) // duplicate: receivers must drop it

	time.Sleep(500 * time.Millisecond)
	mu.Lock()
	c1, c2 := counts[1], counts[2]
	mu.Unlock()
	if c1 != 1 || c2 != 1 {
		t.Fatalf("deliveries %d/%d, want exactly 1 each (dedup)", c1, c2)
	}
	for _, tr := range trs {
		tr.Close()
	}
}
