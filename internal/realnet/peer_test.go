package realnet

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"algorand/internal/crypto"
	nodepkg "algorand/internal/node"
	"algorand/internal/vtime"
)

// deadAddr binds a loopback port and immediately closes it, yielding an
// address nobody listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestQueueDropOldest pins the backpressure policy: a down peer's queue
// holds the newest QueueCap frames and counts what it shed, instead of
// growing without bound or blocking the sender.
func TestQueueDropOldest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.QueueCap = 4
	sim := vtime.New().Realtime()
	tr := NewWithConfig(sim, 0, []string{ln.Addr().String(), deadAddr(t)}, ln, cfg)
	defer tr.Close()

	for i := 0; i < 10; i++ {
		tr.Unicast(0, 1, &nodepkg.BlockRequest{Hash: crypto.HashBytes("q"), Requester: 0, Nonce: uint64(i)})
	}
	s := tr.Stats()
	ps := s.Peers[0]
	if ps.Peer != 1 {
		t.Fatalf("stats peer %d, want 1", ps.Peer)
	}
	if ps.QueueDepth > 4 {
		t.Fatalf("queue depth %d exceeds cap 4", ps.QueueDepth)
	}
	if ps.QueueDrops < 6 {
		t.Fatalf("queue drops %d, want >= 6", ps.QueueDrops)
	}
}

// TestQueueBytesBound pins the byte-denominated bound: many large
// frames queued to a down peer stay within QueueBytes (while a single
// oversized frame is still accepted, since blocks must transit).
func TestQueueBytesBound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.QueueCap = 1024
	cfg.QueueBytes = 4096
	sim := vtime.New().Realtime()
	tr := NewWithConfig(sim, 0, []string{ln.Addr().String(), deadAddr(t)}, ln, cfg)
	defer tr.Close()

	for i := 0; i < 50; i++ {
		tr.enqueue(1, frame{tag: tagPing, payload: make([]byte, 1024)})
	}
	ps := tr.Stats().Peers[0]
	if ps.QueueBytes > 4096 {
		t.Fatalf("queued bytes %d exceed bound 4096", ps.QueueBytes)
	}
	if ps.QueueDrops < 40 {
		t.Fatalf("queue drops %d, want >= 40", ps.QueueDrops)
	}

	// A single frame larger than the whole byte budget still queues.
	tr2ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr2 := NewWithConfig(vtime.New().Realtime(), 0, []string{tr2ln.Addr().String(), deadAddr(t)}, tr2ln, cfg)
	defer tr2.Close()
	tr2.enqueue(1, frame{tag: tagPing, payload: make([]byte, 64<<10)})
	if got := tr2.Stats().Peers[0].QueueDepth; got != 1 {
		t.Fatalf("oversized frame not queued (depth %d)", got)
	}
}

// TestSupervisorRedialsAndFlushesQueue is the self-healing core: sends
// to a down peer queue under the supervisor, the supervisor keeps
// redialing with backoff, and once the peer comes up the queued frames
// are delivered — a catch-up request survives the outage.
func TestSupervisorRedialsAndFlushesQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Reserve B's address, then free it so the first dials fail.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lnB.Addr().String()
	lnB.Close()
	addrs := []string{lnA.Addr().String(), addrB}

	cfg := testConfig()
	cfg.DialTimeout = 200 * time.Millisecond
	simA := vtime.New().Realtime()
	trA := NewWithConfig(simA, 0, addrs, lnA, cfg)
	defer trA.Close()
	go simA.Run(10 * time.Second)

	msg := &nodepkg.BlockRequest{Hash: crypto.HashBytes("catchup"), Requester: 0, Nonce: 42}
	trA.Unicast(0, 1, msg)

	// Let the supervisor fail a few dials first.
	time.Sleep(300 * time.Millisecond)
	if fails := trA.Stats().Peers[0].ConnectFails; fails == 0 {
		t.Fatal("supervisor recorded no dial failures against a down peer")
	}

	// Bring B up on the reserved address; the queued frame must arrive.
	var lnB2 net.Listener
	for i := 0; i < 100; i++ {
		lnB2, err = net.Listen("tcp", addrB)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	mb := newMiniAt(t, 1, addrs, lnB2, testConfig(), 10*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for mb.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queued unicast never delivered after peer came up; stats:\n%s", trA.Stats())
		}
		time.Sleep(25 * time.Millisecond)
	}
	ps := trA.Stats().Peers[0]
	if ps.Dials == 0 {
		t.Fatal("no successful dial recorded")
	}
}

// TestBackoffJitterBounds pins the jitter envelope: [d/2, 3d/2).
func TestBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := withJitter(d, rng)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("jitter %v outside [%v, %v)", j, d/2, d+d/2)
		}
	}
	if withJitter(0, rng) != 0 {
		t.Fatal("zero backoff must stay zero")
	}
}
