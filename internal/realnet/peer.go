package realnet

import (
	"bufio"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"algorand/internal/metrics"
	"algorand/internal/wire"
)

// peer holds everything the transport knows about one address-book
// entry: the supervised outbound connection with its bounded send
// queue, and the inbound accounting that drives misbehavior scoring.
//
// Lock order: t.mu may be held while taking p.mu, never the reverse.
type peer struct {
	t    *Transport
	id   int
	addr string

	// started is guarded by t.mu (see Transport.enqueue).
	started bool

	// ready wakes the writer: capacity 1, best-effort signal.
	ready chan struct{}
	// rng drives backoff jitter; only the writer goroutine uses it.
	rng *rand.Rand

	mu          sync.Mutex
	queue       []frame
	queuedBytes int
	connected   bool
	everDialed  bool

	// Counters registered under algorand_realnet_*_total{peer="N"}.
	// Address books are small (§9's address book file), so one series
	// per peer is cheap; monotonic counts live in the registry while
	// mutable state (score, queue, window) stays under p.mu.
	c peerCounters

	// misbehavior scoring
	score       int
	windowStart time.Time
	windowCount int

	quarantinedUntil time.Time
}

// peerCounters is one peer's registry-backed instrumentation.
type peerCounters struct {
	drops        *metrics.Counter // frames dropped by the queue's drop-oldest policy
	dials        *metrics.Counter // successful connects
	redials      *metrics.Counter // successful connects after a previous connect
	connectFails *metrics.Counter // failed dial attempts
	framesOut    *metrics.Counter
	bytesOut     *metrics.Counter
	framesIn     *metrics.Counter
	bytesIn      *metrics.Counter
	malformed    *metrics.Counter
	spoofed      *metrics.Counter
	rateAbuse    *metrics.Counter
	reported     *metrics.Counter
	quarantines  *metrics.Counter
}

func newPeerCounters(r *metrics.Registry, id int) peerCounters {
	peerC := func(base, help string) *metrics.Counter {
		return r.Counter(metrics.Name(base, "peer", strconv.Itoa(id)), help)
	}
	return peerCounters{
		drops:        peerC("algorand_realnet_queue_drops_total", "frames dropped by the drop-oldest send queue"),
		dials:        peerC("algorand_realnet_dials_total", "successful connects"),
		redials:      peerC("algorand_realnet_redials_total", "successful connects after a previous connect"),
		connectFails: peerC("algorand_realnet_connect_fails_total", "failed dial attempts"),
		framesOut:    peerC("algorand_realnet_frames_out_total", "frames written"),
		bytesOut:     peerC("algorand_realnet_bytes_out_total", "bytes written"),
		framesIn:     peerC("algorand_realnet_frames_in_total", "frames received"),
		bytesIn:      peerC("algorand_realnet_bytes_in_total", "bytes received"),
		malformed:    peerC("algorand_realnet_malformed_total", "undecodable frames received"),
		spoofed:      peerC("algorand_realnet_spoofed_total", "frames whose sender id contradicted the hello"),
		rateAbuse:    peerC("algorand_realnet_rate_abuse_total", "frames shed over the per-peer rate budget"),
		reported:     peerC("algorand_realnet_reported_total", "application-reported protocol offenses"),
		quarantines:  peerC("algorand_realnet_quarantines_total", "times the peer was quarantined"),
	}
}

func newPeer(t *Transport, id int, addr string) *peer {
	return &peer{
		t:     t,
		id:    id,
		addr:  addr,
		ready: make(chan struct{}, 1),
		rng:   rand.New(rand.NewSource(t.cfg.Seed ^ int64(id)<<32 ^ int64(t.id))),
		c:     newPeerCounters(t.reg, id),
	}
}

// wake nudges the writer without blocking.
func (p *peer) wake() {
	select {
	case p.ready <- struct{}{}:
	default:
	}
}

// pushBack queues a frame, enforcing the drop-oldest bounds.
func (p *peer) pushBack(f frame) {
	p.mu.Lock()
	p.queue = append(p.queue, f)
	p.queuedBytes += len(f.payload)
	p.trimLocked()
	p.mu.Unlock()
	p.wake()
}

// pushFront requeues a frame whose write failed, so it rides the next
// connection instead of being lost. If the queue is at capacity the
// frame is dropped (it is the oldest by definition).
func (p *peer) pushFront(f frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cap := p.t.cfg.QueueCap; cap > 0 && len(p.queue) >= cap {
		p.c.drops.Inc()
		return
	}
	p.queue = append([]frame{f}, p.queue...)
	p.queuedBytes += len(f.payload)
}

// trimLocked drops oldest frames until the queue is within both bounds,
// always keeping at least the newest frame.
func (p *peer) trimLocked() {
	maxN, maxB := p.t.cfg.QueueCap, p.t.cfg.QueueBytes
	for len(p.queue) > 1 &&
		((maxN > 0 && len(p.queue) > maxN) || (maxB > 0 && p.queuedBytes > maxB)) {
		p.queuedBytes -= len(p.queue[0].payload)
		p.queue = append(p.queue[:0], p.queue[1:]...)
		p.c.drops.Inc()
	}
}

func (p *peer) pop() (frame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return frame{}, false
	}
	f := p.queue[0]
	p.queue = append(p.queue[:0], p.queue[1:]...)
	p.queuedBytes -= len(f.payload)
	return f, true
}

func (p *peer) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// wait blocks until work is signaled (work=true), the timeout elapses
// (work=false), or the transport closes (alive=false). d<=0 waits
// without a timeout.
func (p *peer) wait(d time.Duration) (work, alive bool) {
	var timer <-chan time.Time
	if d > 0 {
		tm := time.NewTimer(d)
		defer tm.Stop()
		timer = tm.C
	}
	select {
	case <-p.ready:
		return true, true
	case <-timer:
		return false, true
	case <-p.t.closed:
		return false, false
	}
}

// sleepClosed sleeps for d, returning false if the transport closed.
func (p *peer) sleepClosed(d time.Duration) bool {
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return true
	case <-p.t.closed:
		return false
	}
}

// withJitter spreads a backoff delay uniformly over [d/2, 3d/2) so
// peers redialing a restarted node do not arrive in lockstep.
func withJitter(d time.Duration, rng *rand.Rand) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}

// loop is the peer's writer and connection supervisor: it dials when
// there is something to send, redials failed peers with exponential
// backoff plus jitter (reset on success), flushes the queue, and sends
// keepalive pings while idle. It exits when the transport closes.
func (p *peer) loop() {
	defer p.t.wg.Done()
	cfg := &p.t.cfg
	backoff := cfg.RedialMin
	var conn net.Conn
	var bw *bufio.Writer
	drop := func() {
		if conn != nil {
			conn.Close()
			conn, bw = nil, nil
			p.setConnected(false)
		}
	}
	defer drop()
	for {
		select {
		case <-p.t.closed:
			return
		default:
		}
		// Quarantined peers get no traffic from us either: park until
		// parole. Queued frames wait (drop-oldest keeps them fresh).
		if d := p.quarantineRemaining(time.Now()); d > 0 {
			drop()
			if !p.sleepClosed(d) {
				return
			}
			continue
		}
		if conn == nil {
			if p.depth() == 0 {
				// Nothing to say: no point holding a connection open.
				if _, alive := p.wait(0); !alive {
					return
				}
				continue
			}
			c, err := p.t.dialPeer(p.addr)
			if err != nil {
				p.noteConnectFail()
				if !p.sleepClosed(withJitter(backoff, p.rng)) {
					return
				}
				backoff *= 2
				if backoff > cfg.RedialMax {
					backoff = cfg.RedialMax
				}
				continue
			}
			p.noteDial()
			conn, bw = c, bufio.NewWriter(c)
			backoff = cfg.RedialMin
			p.setConnected(true)
			if err := p.writeFrame(conn, bw, frame{tag: tagHello, payload: helloPayload(p.t.id)}); err != nil {
				p.t.reportErr(err)
				drop()
				continue
			}
		}
		f, ok := p.pop()
		if !ok {
			work, alive := p.wait(cfg.KeepaliveInterval)
			if !alive {
				return
			}
			if !work {
				// Idle: ping so the peer's read deadline stays ahead.
				if err := p.writeFrame(conn, bw, frame{tag: tagPing}); err != nil {
					drop()
				}
			}
			continue
		}
		if err := p.writeFrame(conn, bw, f); err != nil {
			p.t.reportErr(err)
			p.pushFront(f) // retried on the next connection
			drop()
		}
	}
}

// writeFrame writes and flushes one frame under the write deadline.
func (p *peer) writeFrame(c net.Conn, w *bufio.Writer, f frame) error {
	if wt := p.t.cfg.WriteTimeout; wt > 0 {
		c.SetWriteDeadline(time.Now().Add(wt))
	}
	if err := wire.WriteFrame(w, f.tag, f.payload); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	p.c.framesOut.Inc()
	p.c.bytesOut.Add(uint64(5 + len(f.payload)))
	return nil
}

func (p *peer) setConnected(v bool) {
	p.mu.Lock()
	p.connected = v
	p.mu.Unlock()
}

func (p *peer) noteDial() {
	p.mu.Lock()
	p.c.dials.Inc()
	if p.everDialed {
		p.c.redials.Inc()
	}
	p.everDialed = true
	p.mu.Unlock()
}

func (p *peer) noteConnectFail() {
	p.mu.Lock()
	p.c.connectFails.Inc()
	p.everDialed = true
	p.mu.Unlock()
}

// --- Inbound accounting and misbehavior scoring -----------------------------

// noteFrame accounts one inbound frame and reports whether it is within
// the peer's rate budget; frames over budget are shed by the caller and
// score the peer.
func (p *peer) noteFrame(bytes int, now time.Time) bool {
	p.mu.Lock()
	p.c.framesIn.Inc()
	p.c.bytesIn.Add(uint64(bytes))
	ok := true
	if lim := p.t.cfg.RateLimit; lim > 0 {
		if now.Sub(p.windowStart) > p.t.cfg.RateWindow {
			p.windowStart = now
			p.windowCount = 0
		}
		p.windowCount++
		if p.windowCount > lim {
			p.c.rateAbuse.Inc()
			ok = false
		}
	}
	var quarantined bool
	if !ok {
		quarantined = p.offendLocked(scoreRate, now)
	}
	p.mu.Unlock()
	if quarantined {
		p.t.quarantineEnacted(p.id)
	}
	return ok
}

// offend records a misbehavior observation (counter tracks the kind)
// and quarantines the peer when the score crosses the threshold.
func (p *peer) offend(pts int, counter *metrics.Counter) {
	now := time.Now()
	counter.Inc()
	p.mu.Lock()
	quarantined := p.offendLocked(pts, now)
	p.mu.Unlock()
	if quarantined {
		p.t.quarantineEnacted(p.id)
	}
}

// offendLocked adds score and imposes quarantine at the threshold,
// returning whether a new quarantine began. Parole wipes the score: the
// peer restarts with a clean slate. Caller holds p.mu.
func (p *peer) offendLocked(pts int, now time.Time) bool {
	if now.Before(p.quarantinedUntil) {
		return false // already serving
	}
	p.score += pts
	if th := p.t.cfg.QuarantineThreshold; th > 0 && p.score >= th {
		p.quarantinedUntil = now.Add(p.t.cfg.QuarantineDuration)
		p.score = 0
		p.c.quarantines.Inc()
		return true
	}
	return false
}

func (p *peer) isQuarantined(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return now.Before(p.quarantinedUntil)
}

func (p *peer) quarantineRemaining(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now.Before(p.quarantinedUntil) {
		return p.quarantinedUntil.Sub(now)
	}
	return 0
}
