package realnet

import (
	"net"
	"testing"
	"time"

	"algorand/internal/realnet/netfault"
)

// waitChain polls node i's chain length (through its scheduler, so the
// read is race-free) until it reaches target or the timeout passes.
func (c *realCluster) waitChain(i int, target uint64, timeout time.Duration) uint64 {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		got := c.chainLen(i)
		if got >= target || time.Now().After(deadline) {
			return got
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// chainLen reads node i's chain length in scheduler context (or
// directly once its scheduler has stopped).
func (c *realCluster) chainLen(i int) uint64 {
	reply := make(chan uint64, 1)
	c.sims[i].Inject(func() { reply <- c.nodes[i].Ledger().ChainLength() })
	select {
	case v := <-reply:
		return v
	case <-c.done[i]:
		// Scheduler stopped: nothing else touches the ledger now.
		return c.nodes[i].Ledger().ChainLength()
	}
}

// TestRealTCPCrashRestart is internal/node/restart_test.go over real
// sockets (§8.3): one node of a 5-node TCP cluster is killed mid-round,
// restarted on the same address from its surviving archive, and must
// reconnect, catch up, and finish the run with everyone else.
func TestRealTCPCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP test")
	}
	const n = 5
	const rounds = 6
	const victim = 4
	c := newRealCluster(t, n, rounds)
	c.startAll(240 * time.Second)

	// Crash once the victim has certified a couple of rounds.
	if got := c.waitChain(victim, 2, 120*time.Second); got < 2 {
		t.Fatalf("victim reached only %d rounds before crash window", got)
	}
	c.crash(victim)
	chainAtCrash := c.nodes[victim].Ledger().ChainLength()
	if chainAtCrash >= rounds {
		t.Fatal("crash happened after the run finished; test premise broken")
	}

	// The survivors' supervisors are now redialing a dead address.
	time.Sleep(500 * time.Millisecond)

	restartAt := time.Now()
	c.restart(victim, 120*time.Second, 240*time.Second)
	c.waitAll()
	recovered := c.nodes[victim].Ledger().ChainLength()
	t.Logf("crash at %d rounds; reconnect-to-recovery: %v to reach %d rounds",
		chainAtCrash, time.Since(restartAt).Round(time.Millisecond), recovered)

	c.checkAgreement(n)

	// Supervision is what got us here: at least one survivor must have
	// observed the outage (failed dials) and re-established (redials).
	var fails, redials uint64
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		for _, ps := range c.transports[i].Stats().Peers {
			if ps.Peer == victim {
				fails += ps.ConnectFails
				redials += ps.Redials
			}
		}
	}
	if fails == 0 && redials == 0 {
		t.Fatal("no survivor recorded dial failures or redials toward the crashed peer")
	}
}

// TestSelfHealingUnderFaults is the acceptance scenario: a 5-node
// realnet cluster runs with scripted connection resets, write stalls,
// and partial writes injected on both dial and accept paths, plus one
// full peer crash/restart — and still certifies >= 10 consecutive
// rounds, race-clean. Every resilience path (redial with backoff,
// requeue-on-failure, write deadlines, torn-frame reaping) is exercised
// deterministically by the netfault scripts.
func TestSelfHealingUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP fault-injection test")
	}
	const n = 5
	const rounds = 12 // >= 10 consecutive certified rounds
	const victim = 3
	c := newRealCluster(t, n, rounds)

	// Outbound: every connection a node dials gets a fault script chosen
	// by its ordinal — periodic resets, a stall (long enough to be felt,
	// short of the write deadline), or a partial write that tears a
	// frame mid-stream.
	c.cfg = func(i int) Config {
		cfg := testConfig()
		cfg.Seed = int64(i + 1)
		cfg.QueueCap = 512
		cfg.Dial = netfault.WrapDial(nil, func(ord int) netfault.Script {
			switch ord % 3 {
			case 0:
				return netfault.Periodic(32<<10, netfault.Reset, 0, 64)
			case 1:
				s := netfault.Script{{After: 16 << 10, Act: netfault.Stall, Dur: 150 * time.Millisecond}}
				return append(s, netfault.Periodic(64<<10, netfault.Reset, 0, 32)...)
			default:
				return netfault.Script{{After: 24 << 10, Act: netfault.PartialWrite}}
			}
		})
		return cfg
	}
	// Inbound: every fourth accepted connection is reset after 40 KiB.
	c.wrapListener = func(i int, ln net.Listener) net.Listener {
		return netfault.WrapListener(ln, func(ord int) netfault.Script {
			if ord%4 == 3 {
				return netfault.Periodic(40<<10, netfault.Reset, 0, 32)
			}
			return nil
		})
	}

	c.startAll(600 * time.Second)

	// Let the cluster certify a few rounds under fire, then kill and
	// resurrect one node.
	if got := c.waitChain(victim, 3, 240*time.Second); got < 3 {
		t.Fatalf("cluster reached only %d rounds under faults", got)
	}
	c.crash(victim)
	time.Sleep(500 * time.Millisecond)
	restartAt := time.Now()
	c.restart(victim, 240*time.Second, 600*time.Second)
	c.waitAll()
	t.Logf("reconnect-to-recovery under faults: %v (victim at %d rounds)",
		time.Since(restartAt).Round(time.Millisecond), c.nodes[victim].Ledger().ChainLength())

	c.checkAgreement(n)

	// The run must actually have healed through faults, not dodged them.
	var redials, drops uint64
	for i := 0; i < n; i++ {
		for _, ps := range c.transports[i].Stats().Peers {
			redials += ps.Redials
			drops += ps.QueueDrops
		}
	}
	if redials == 0 {
		t.Fatal("no redials recorded: fault injection did not bite")
	}
	t.Logf("healing stats: %d redials, %d queue drops across the cluster", redials, drops)
}
