// Package realnet is a real TCP gossip transport for the Algorand node:
// the same node implementation that runs under the deterministic
// simulator (internal/network) runs here as an actual networked
// process, with the vtime runtime in wall-clock mode (vtime.Realtime).
//
// The transport keeps the §8.4 gossip discipline — every message is
// validated by the node's handler before relaying, exact duplicates are
// dropped, and per-(sender,round,step) relay limits apply — but trades
// the simulator's modeled latency/bandwidth for real sockets. Messages
// travel as internal/wire frames: a length prefix, a one-byte type tag,
// the sender id and the message's canonical encoding.
//
// Unlike the simulator, real sockets fail: dials are refused, peers
// crash and restart, writes stall. The paper's safety and liveness
// argument leans on the network healing (§3's strong synchrony is
// assumed to hold "most of the time", and BA⋆'s timeouts absorb the
// rest), so the transport heals itself rather than degrading silently:
//
//   - Every peer has a dedicated writer goroutine behind a bounded
//     drop-oldest send queue. Scheduler context (sim.Inject closures,
//     node processes) never touches a socket: Gossip/Unicast only
//     enqueue. A down peer costs queue memory, not scheduler stalls.
//   - The writer doubles as a connection supervisor: it redials failed
//     peers with exponential backoff plus jitter, resets the backoff on
//     success, and flushes whatever queued while the peer was down —
//     a catch-up request to a rebooting peer waits instead of vanishing.
//   - Connections carry read/write deadlines and idle keepalive pings,
//     so a dead peer is detected and reaped rather than leaking.
//   - The duplicate-suppression and relay-limit caches are generational
//     with a TTL (mirroring internal/network.Config.SeenTTL), bounding
//     their memory over long runs.
//   - Inbound connections must open with a hello frame declaring the
//     dialer's address-book id. Per-peer inbound accounting scores
//     misbehavior — malformed frames, sender ids that contradict the
//     hello, frame-rate abuse — and quarantines an offending peer for a
//     parole period. The id claim is transport-level bookkeeping only;
//     message authenticity still rests on the signatures every gossip
//     message carries (§8.4).
//
// Stats() snapshots all of it (queue depths, drops, redials, quarantine
// state, bytes in/out) for operators; cmd/algorand-node prints it.
package realnet

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"algorand/internal/cache"
	"algorand/internal/crypto"
	"algorand/internal/metrics"
	"algorand/internal/network"
	nodepkg "algorand/internal/node"
	"algorand/internal/vtime"
	"algorand/internal/wire"
)

// Control-plane frame tags. They live far above the node's message tags
// (internal/node.TagVote...) and never reach the handler.
const (
	tagHello byte = 0xF0 // first frame on every connection: sender's id
	tagPing  byte = 0xF1 // idle keepalive, empty payload
)

// Misbehavior scores. A peer whose score reaches
// Config.QuarantineThreshold is quarantined.
const (
	scoreMalformed = 4 // frame that fails to decode
	scoreSpoofed   = 5 // frame sender id contradicting the hello
	scoreRate      = 2 // frames above the per-window rate budget
	scoreReported  = 4 // application-reported offense (e.g. forged snapshot)
)

// DialFunc opens a connection to addr. Tests substitute fault-injecting
// dialers (internal/realnet/netfault).
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Config tunes the transport's self-healing behavior. The zero value is
// not useful; start from DefaultConfig.
type Config struct {
	// QueueCap bounds each peer's send queue in frames; QueueBytes
	// bounds it in payload bytes. When either bound is exceeded the
	// oldest frames are dropped first — gossip tolerates loss, and newer
	// consensus messages supersede older ones. A frame larger than
	// QueueBytes on its own is still queued (blocks must transit).
	QueueCap   int
	QueueBytes int

	// DialTimeout bounds one connection attempt. RedialMin/RedialMax
	// bound the supervisor's exponential backoff between attempts; the
	// actual wait is jittered to ±50% so a cluster restarting together
	// does not thundering-herd one peer.
	DialTimeout time.Duration
	RedialMin   time.Duration
	RedialMax   time.Duration

	// WriteTimeout is the deadline for writing one frame (a stalled
	// peer's TCP buffer fills; the write times out and the supervisor
	// redials). IdleTimeout is the read deadline: a connection that
	// delivers nothing for this long is reaped. KeepaliveInterval makes
	// idle writers send ping frames so healthy-but-quiet connections
	// stay ahead of the peer's IdleTimeout; keep it well under the
	// peers' IdleTimeout.
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	KeepaliveInterval time.Duration

	// SeenTTL rotates the duplicate-suppression and relay-limit caches:
	// an entry lives between one and two TTLs, bounding cache memory
	// over long runs (mirrors internal/network.Config.SeenTTL, which PR
	// 2's chaos swarm showed is also a liveness requirement for retried
	// rounds). Zero disables expiry.
	SeenTTL time.Duration

	// RateLimit bounds inbound frames per peer per RateWindow; frames
	// over budget are shed before reaching the scheduler and score the
	// peer. Zero disables rate accounting.
	RateLimit  int
	RateWindow time.Duration

	// QuarantineThreshold is the misbehavior score at which a peer is
	// quarantined: its inbound connections are closed and refused, its
	// frames dropped, and our writer to it parked. After
	// QuarantineDuration the peer is paroled with a clean score.
	QuarantineThreshold int
	QuarantineDuration  time.Duration

	// MaxInbound caps simultaneously accepted connections (a hostile
	// dialer cannot hold unbounded goroutines/fds).
	MaxInbound int

	// Dial overrides the dialer (tests inject faults); nil uses
	// net.Dialer.
	Dial DialFunc

	// Seed drives the backoff jitter.
	Seed int64

	// Metrics receives the transport's counters and gauges
	// (algorand_realnet_*, per-peer series labeled peer="N"). Nil gets a
	// private registry, so Stats() works standalone.
	Metrics *metrics.Registry
}

// DefaultConfig returns production-leaning defaults.
func DefaultConfig() Config {
	return Config{
		QueueCap:            256,
		QueueBytes:          8 << 20,
		DialTimeout:         3 * time.Second,
		RedialMin:           100 * time.Millisecond,
		RedialMax:           5 * time.Second,
		WriteTimeout:        10 * time.Second,
		IdleTimeout:         90 * time.Second,
		KeepaliveInterval:   25 * time.Second,
		SeenTTL:             time.Minute,
		RateLimit:           20000,
		RateWindow:          time.Second,
		QuarantineThreshold: 10,
		QuarantineDuration:  30 * time.Second,
		MaxInbound:          256,
		Seed:                1,
	}
}

// Transport implements node.Transport over TCP.
type Transport struct {
	id    int
	sim   *vtime.Sim
	addrs []string
	cfg   Config

	handler network.Handler
	ln      net.Listener

	// dialCtx is canceled at Close so in-flight dials abort.
	dialCtx    context.Context
	cancelDial context.CancelFunc

	mu    sync.Mutex
	peers map[int]*peer
	// inbound maps accepted connections to the peer id their hello
	// claimed (-1 before the handshake). Entries are reaped when the
	// read loop exits, so the registry tracks live connections only.
	inbound map[net.Conn]int
	// Generational duplicate-suppression and relay-limit caches; see
	// Config.SeenTTL. Lookups consult both generations. Both run on
	// wall time relative to epoch.
	seen  *cache.TwoGen[crypto.Digest, struct{}]
	limit *cache.TwoGen[string, int]
	epoch time.Time

	// Transport-wide counters, registered under algorand_realnet_*.
	inboundRejected *metrics.Counter
	quarantineDrops *metrics.Counter
	dupDropped      *metrics.Counter
	relayLimited    *metrics.Counter
	reg             *metrics.Registry

	closed  chan struct{}
	wg      sync.WaitGroup
	onError func(err error)
}

// New creates a transport for node id, listening on addrs[id]. The
// addrs slice is the shared address book (§9: "we currently provide
// each user with an address book file listing the IP address and port
// for every user").
func New(sim *vtime.Sim, id int, addrs []string) (*Transport, error) {
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("realnet: listen %s: %w", addrs[id], err)
	}
	return NewWithListener(sim, id, addrs, ln), nil
}

// NewWithListener is New with a pre-bound listener (tests bind :0 first
// to learn their ports) and default configuration.
func NewWithListener(sim *vtime.Sim, id int, addrs []string, ln net.Listener) *Transport {
	return NewWithConfig(sim, id, addrs, ln, DefaultConfig())
}

// NewWithConfig is NewWithListener with explicit tuning.
func NewWithConfig(sim *vtime.Sim, id int, addrs []string, ln net.Listener, cfg Config) *Transport {
	ctx, cancel := context.WithCancel(context.Background())
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	t := &Transport{
		id:         id,
		sim:        sim,
		addrs:      append([]string(nil), addrs...),
		cfg:        cfg,
		ln:         ln,
		dialCtx:    ctx,
		cancelDial: cancel,
		peers:      make(map[int]*peer),
		inbound:    make(map[net.Conn]int),
		seen:       cache.New[crypto.Digest, struct{}](cfg.SeenTTL),
		limit:      cache.New[string, int](cfg.SeenTTL),
		epoch:      time.Now(),
		reg:        reg,
		closed:     make(chan struct{}),

		inboundRejected: reg.Counter("algorand_realnet_inbound_rejected_total", "inbound connections refused at the MaxInbound cap"),
		quarantineDrops: reg.Counter("algorand_realnet_quarantine_drops_total", "frames and connections refused due to peer quarantine"),
		dupDropped:      reg.Counter("algorand_realnet_dup_dropped_total", "gossip messages suppressed as exact duplicates"),
		relayLimited:    reg.Counter("algorand_realnet_relay_limited_total", "relays suppressed by per-(sender,round,step) limits"),
	}
	reg.GaugeFunc("algorand_realnet_seen_entries", "live entries in the duplicate-suppression cache",
		func() float64 { return float64(t.seen.Len()) })
	reg.GaugeFunc("algorand_realnet_limit_entries", "live entries in the relay-limit cache",
		func() float64 { return float64(t.limit.Len()) })
	reg.GaugeFunc("algorand_realnet_inbound_conns", "live accepted inbound connections",
		func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(len(t.inbound))
		})
	for i := range t.addrs {
		if i != id {
			t.peers[i] = newPeer(t, i, t.addrs[i])
		}
	}
	return t
}

// cacheNow is the suppression caches' clock: wall time since the
// transport was built.
func (t *Transport) cacheNow() time.Duration { return time.Since(t.epoch) }

// Addr returns the listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetHandler implements node.Transport.
func (t *Transport) SetHandler(id int, h network.Handler) { t.handler = h }

// Neighbors implements node.Transport: every other address-book entry.
// (The simulator models sparse random peering; a small real deployment
// simply talks to everyone, which is the dense special case.)
func (t *Transport) Neighbors(id int) []int {
	out := make([]int, 0, len(t.addrs)-1)
	for i := range t.addrs {
		if i != t.id {
			out = append(out, i)
		}
	}
	return out
}

// Start begins accepting connections. Call after the node installed its
// handler.
func (t *Transport) Start() {
	t.wg.Add(1)
	go t.acceptLoop()
}

// Close shuts the transport down: the listener, every inbound
// connection, and every peer writer. It blocks until all transport
// goroutines have exited.
func (t *Transport) Close() {
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		return
	default:
	}
	close(t.closed)
	t.cancelDial()
	t.ln.Close()
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// OnError installs an optional error observer (logging).
func (t *Transport) OnError(f func(error)) { t.onError = f }

func (t *Transport) reportErr(err error) {
	select {
	case <-t.closed:
		return
	default:
	}
	if t.onError != nil {
		t.onError(err)
	}
}

// dialPeer opens one connection, honoring Config.Dial and DialTimeout,
// and aborting if the transport closes mid-dial.
func (t *Transport) dialPeer(addr string) (net.Conn, error) {
	ctx := t.dialCtx
	if t.cfg.DialTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.cfg.DialTimeout)
		defer cancel()
	}
	if t.cfg.Dial != nil {
		return t.cfg.Dial(ctx, addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
				t.reportErr(err)
				return
			}
		}
		t.mu.Lock()
		if t.cfg.MaxInbound > 0 && len(t.inbound) >= t.cfg.MaxInbound {
			t.inboundRejected.Inc()
			t.mu.Unlock()
			c.Close()
			continue
		}
		t.inbound[c] = -1
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(c)
	}
}

// reapInbound removes a finished connection from the registry.
func (t *Transport) reapInbound(c net.Conn) {
	t.mu.Lock()
	delete(t.inbound, c)
	t.mu.Unlock()
}

// bindInbound records the hello-claimed peer id for a connection,
// refusing it if the peer is quarantined or the transport closed.
func (t *Transport) bindInbound(c net.Conn, id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
		return false
	default:
	}
	if p := t.peers[id]; p == nil || p.isQuarantined(time.Now()) {
		t.quarantineDrops.Inc()
		return false
	}
	t.inbound[c] = id
	return true
}

// closeInboundOf drops every live inbound connection bound to peer id
// (quarantine enforcement).
func (t *Transport) closeInboundOf(id int) {
	t.mu.Lock()
	var victims []net.Conn
	for c, pid := range t.inbound {
		if pid == id {
			victims = append(victims, c)
		}
	}
	t.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// ReportMisbehavior feeds an application-level offense into the
// transport's peer misbehavior scoring, alongside the wire-level
// offenses the transport detects itself. The node calls this when a
// peer serves it provably bad protocol data — e.g. a state snapshot
// whose certificate or Merkle root fails verification — so repeat
// offenders cross the quarantine threshold and lose their audience.
// Implements node.MisbehaviorReporter.
func (t *Transport) ReportMisbehavior(id int, reason string) {
	p := t.peers[id]
	if p == nil || id == t.id {
		return
	}
	p.offend(scoreReported, p.c.reported)
	t.reportErr(fmt.Errorf("realnet: peer %d reported for misbehavior: %s", id, reason))
}

// quarantineEnacted enforces a freshly-imposed quarantine and surfaces
// it to the error observer.
func (t *Transport) quarantineEnacted(id int) {
	t.closeInboundOf(id)
	if p := t.peers[id]; p != nil {
		p.wake()
	}
	t.reportErr(fmt.Errorf("realnet: peer %d quarantined for %v (misbehavior)", id, t.cfg.QuarantineDuration))
}

// readLoop decodes frames from one inbound connection and injects
// deliveries into the node's scheduler. The first frame must be a hello
// declaring the dialer's address-book id; after that, every frame's
// sender id must match it. A malformed frame drops the connection — the
// peer is either broken or hostile; either way the stream cannot be
// resynchronized.
func (t *Transport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	defer t.reapInbound(c)
	r := bufio.NewReader(c)
	peerID := -1
	var p *peer
	for {
		if t.cfg.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(t.cfg.IdleTimeout))
		}
		tag, payload, err := wire.ReadFrame(r)
		if err != nil {
			return // EOF, reset, or idle expiry: reap the connection
		}
		if peerID < 0 {
			id, err := decodeHello(tag, payload, len(t.addrs), t.id)
			if err != nil {
				t.reportErr(fmt.Errorf("realnet: bad handshake from %s: %w", c.RemoteAddr(), err))
				return
			}
			if !t.bindInbound(c, id) {
				return
			}
			peerID, p = id, t.peers[id]
			continue
		}
		if !p.noteFrame(5+len(payload), time.Now()) {
			continue // over rate budget: shed before the scheduler sees it
		}
		if tag == tagPing {
			continue
		}
		from, msg, err := decodeFrame(tag, payload, len(t.addrs))
		if err != nil {
			p.offend(scoreMalformed, p.c.malformed)
			t.reportErr(fmt.Errorf("realnet: bad frame from peer %d (%s): %w", peerID, c.RemoteAddr(), err))
			return
		}
		if from != peerID {
			p.offend(scoreSpoofed, p.c.spoofed)
			t.reportErr(fmt.Errorf("realnet: peer %d spoofed sender id %d", peerID, from))
			return
		}
		if !t.sim.InjectStop(t.closed, func() { t.deliver(from, msg) }) {
			return
		}
	}
}

// deliver runs in scheduler context: dedup, handle, relay per verdict.
// The suppression caches rotate themselves lazily on each access (see
// internal/cache); entries live between one and two SeenTTLs.
func (t *Transport) deliver(from int, m network.Message) {
	if p := t.peers[from]; p != nil && p.isQuarantined(time.Now()) {
		t.quarantineDrops.Inc()
		return
	}
	// Atomic check-and-mark across both cache generations: only the
	// first delivery of a message id proceeds.
	fresh := t.seen.Update(m.ID(), t.cacheNow(),
		func(_ struct{}, curOK bool, _ struct{}, prevOK bool) (struct{}, bool) {
			return struct{}{}, !curOK && !prevOK
		})
	if !fresh {
		t.dupDropped.Inc()
		return
	}

	var verdict network.Verdict
	if t.handler != nil {
		verdict = t.handler.HandleMessage(from, m)
	}
	if !verdict.Relay {
		return
	}
	if k := m.LimitKey(); k != "" {
		limit := 1
		if mr, ok := m.(network.MultiRelay); ok {
			limit = mr.RelayLimit()
		}
		// Count the relay against the key's budget iff it is still under
		// the two-generation total; relay iff it was counted.
		allowed := t.limit.Update(k, t.cacheNow(),
			func(cur int, _ bool, prev int, _ bool) (int, bool) {
				if cur+prev >= limit {
					return cur, false
				}
				return cur + 1, true
			})
		if !allowed {
			t.relayLimited.Inc()
			return
		}
	}
	for _, peer := range t.Neighbors(t.id) {
		if peer == from {
			continue
		}
		t.send(peer, m)
	}
}

// Gossip implements node.Transport.
func (t *Transport) Gossip(origin int, m network.Message) {
	now := t.cacheNow()
	t.seen.Put(m.ID(), struct{}{}, now)
	if k := m.LimitKey(); k != "" {
		t.limit.Update(k, now, func(cur int, _ bool, _ int, _ bool) (int, bool) {
			return cur + 1, true
		})
	}
	for _, peer := range t.Neighbors(t.id) {
		t.send(peer, m)
	}
}

// Unicast implements node.Transport. The frame is queued under the
// peer's supervisor: if the peer is down, it is retried after the
// redial instead of being dropped — a catch-up request to a rebooting
// peer survives the outage (bounded by the queue's drop-oldest policy).
func (t *Transport) Unicast(from, to int, m network.Message) {
	t.send(to, m)
}

// send encodes one frame and hands it to the peer's writer queue. It
// never blocks and never touches a socket: safe from scheduler context.
func (t *Transport) send(peer int, m network.Message) {
	tag, payload, err := encodeFrame(t.id, m)
	if err != nil {
		t.reportErr(err)
		return
	}
	t.enqueue(peer, frame{tag: tag, payload: payload})
}

// enqueue queues a frame for a peer, starting its writer on first use.
// The started flag is guarded by t.mu so a writer is never started
// after Close began waiting on the WaitGroup.
func (t *Transport) enqueue(id int, f frame) {
	t.mu.Lock()
	select {
	case <-t.closed:
		t.mu.Unlock()
		return
	default:
	}
	p := t.peers[id]
	if p == nil {
		t.mu.Unlock()
		return
	}
	if !p.started {
		p.started = true
		t.wg.Add(1)
		go p.loop()
	}
	t.mu.Unlock()
	p.pushBack(f)
}

// --- Frame codec ------------------------------------------------------------

// frame is one encoded transport frame awaiting transmission.
type frame struct {
	tag     byte
	payload []byte
}

// helloPayload encodes the handshake body: the dialer's address-book id.
func helloPayload(id int) []byte {
	e := wire.NewEncoderSize(4)
	e.Int(id)
	return e.Data()
}

// decodeHello validates a handshake frame: tag, length, and an id that
// is inside the address book and not our own slot.
func decodeHello(tag byte, payload []byte, nPeers, self int) (int, error) {
	if tag != tagHello {
		return 0, fmt.Errorf("first frame tag %#x, want hello", tag)
	}
	if len(payload) != 4 {
		return 0, fmt.Errorf("hello payload of %d bytes", len(payload))
	}
	d := wire.NewDecoder(payload)
	id := d.Int()
	if id < 0 || id >= nPeers {
		return 0, fmt.Errorf("hello id %d outside address book [0,%d)", id, nPeers)
	}
	if id == self {
		return 0, fmt.Errorf("hello claims our own id %d", id)
	}
	return id, nil
}

// encodeFrame builds a frame payload: the sender id followed by the
// message's canonical wire encoding.
func encodeFrame(from int, m network.Message) (tag byte, payload []byte, err error) {
	tag, body, err := nodepkg.EncodeMessage(m)
	if err != nil {
		return 0, nil, err
	}
	e := wire.NewEncoderSize(4 + len(body))
	e.Int(from)
	e.Fixed(body)
	return tag, e.Data(), nil
}

// decodeFrame is the inverse of encodeFrame. The claimed sender id is
// validated against the address book: an out-of-range id is a protocol
// violation, not a deliverable message.
func decodeFrame(tag byte, payload []byte, nPeers int) (from int, m network.Message, err error) {
	if len(payload) < 4 {
		return 0, nil, fmt.Errorf("realnet: frame payload of %d bytes", len(payload))
	}
	d := wire.NewDecoder(payload[:4])
	from = d.Int()
	if from < 0 || from >= nPeers {
		return 0, nil, fmt.Errorf("realnet: sender id %d outside address book [0,%d)", from, nPeers)
	}
	m, err = nodepkg.DecodeMessage(tag, payload[4:])
	return from, m, err
}

// encodeSize reports a message's framed wire size (diagnostics): the
// canonical encoding plus the sender id and the 5-byte frame header.
func encodeSize(m network.Message) int {
	_, payload, err := nodepkg.EncodeMessage(m)
	if err != nil {
		return -1
	}
	return 5 + 4 + len(payload)
}
