// Package realnet is a real TCP gossip transport for the Algorand node:
// the same node implementation that runs under the deterministic
// simulator (internal/network) runs here as an actual networked
// process, with the vtime runtime in wall-clock mode (vtime.Realtime).
//
// The transport keeps the §8.4 gossip discipline — every message is
// validated by the node's handler before relaying, exact duplicates are
// dropped, and per-(sender,round,step) relay limits apply — but trades
// the simulator's modeled latency/bandwidth for real sockets. Messages
// travel as internal/wire frames: a length prefix, a one-byte type tag,
// the sender id and the message's canonical encoding. That encoding is
// the same byte layout the simulator's bandwidth model counts and the
// signing paths cover — no reflection, and ledger.Block.PayloadPadding
// is materialized by the codec so large blocks cost real bandwidth.
package realnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"algorand/internal/crypto"
	"algorand/internal/network"
	nodepkg "algorand/internal/node"
	"algorand/internal/vtime"
	"algorand/internal/wire"
)

// Transport implements node.Transport over TCP.
type Transport struct {
	id    int
	sim   *vtime.Sim
	addrs []string

	handler network.Handler
	ln      net.Listener

	mu       sync.Mutex
	conns    map[int]*wireConn
	accepted []net.Conn
	seen     map[crypto.Digest]bool
	limit    map[string]int

	closed  chan struct{}
	wg      sync.WaitGroup
	onError func(err error)
}

// wireConn is one outgoing connection with a buffered, serialized
// writer.
type wireConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

// New creates a transport for node id, listening on addrs[id]. The
// addrs slice is the shared address book (§9: "we currently provide
// each user with an address book file listing the IP address and port
// for every user").
func New(sim *vtime.Sim, id int, addrs []string) (*Transport, error) {
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("realnet: listen %s: %w", addrs[id], err)
	}
	return NewWithListener(sim, id, addrs, ln), nil
}

// NewWithListener is New with a pre-bound listener (tests bind :0 first
// to learn their ports).
func NewWithListener(sim *vtime.Sim, id int, addrs []string, ln net.Listener) *Transport {
	return &Transport{
		id:     id,
		sim:    sim,
		addrs:  append([]string(nil), addrs...),
		ln:     ln,
		conns:  make(map[int]*wireConn),
		seen:   make(map[crypto.Digest]bool),
		limit:  make(map[string]int),
		closed: make(chan struct{}),
	}
}

// Addr returns the listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetHandler implements node.Transport.
func (t *Transport) SetHandler(id int, h network.Handler) { t.handler = h }

// Neighbors implements node.Transport: every other address-book entry.
// (The simulator models sparse random peering; a small real deployment
// simply talks to everyone, which is the dense special case.)
func (t *Transport) Neighbors(id int) []int {
	out := make([]int, 0, len(t.addrs)-1)
	for i := range t.addrs {
		if i != t.id {
			out = append(out, i)
		}
	}
	return out
}

// Start begins accepting connections. Call after the node installed its
// handler.
func (t *Transport) Start() {
	t.wg.Add(1)
	go t.acceptLoop()
}

// Close shuts the transport down.
func (t *Transport) Close() {
	close(t.closed)
	t.ln.Close()
	t.mu.Lock()
	for _, wc := range t.conns {
		wc.c.Close()
	}
	for _, c := range t.accepted {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// OnError installs an optional error observer (logging).
func (t *Transport) OnError(f func(error)) { t.onError = f }

func (t *Transport) reportErr(err error) {
	select {
	case <-t.closed:
		return
	default:
	}
	if t.onError != nil {
		t.onError(err)
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
				t.reportErr(err)
				return
			}
		}
		t.mu.Lock()
		t.accepted = append(t.accepted, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop decodes frames from one connection and injects deliveries
// into the node's scheduler. A malformed frame drops the connection —
// the peer is either broken or hostile; either way the stream cannot be
// resynchronized.
func (t *Transport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	r := bufio.NewReader(c)
	for {
		tag, payload, err := wire.ReadFrame(r)
		if err != nil {
			return
		}
		from, msg, err := decodeFrame(tag, payload)
		if err != nil {
			t.reportErr(fmt.Errorf("realnet: bad frame from %s: %w", c.RemoteAddr(), err))
			return
		}
		t.sim.Inject(func() { t.deliver(from, msg) })
	}
}

// deliver runs in scheduler context: dedup, handle, relay per verdict.
func (t *Transport) deliver(from int, m network.Message) {
	t.mu.Lock()
	if t.seen[m.ID()] {
		t.mu.Unlock()
		return
	}
	t.seen[m.ID()] = true
	t.mu.Unlock()

	var verdict network.Verdict
	if t.handler != nil {
		verdict = t.handler.HandleMessage(from, m)
	}
	if !verdict.Relay {
		return
	}
	if k := m.LimitKey(); k != "" {
		limit := 1
		if mr, ok := m.(network.MultiRelay); ok {
			limit = mr.RelayLimit()
		}
		t.mu.Lock()
		over := t.limit[k] >= limit
		if !over {
			t.limit[k]++
		}
		t.mu.Unlock()
		if over {
			return
		}
	}
	for _, peer := range t.Neighbors(t.id) {
		if peer == from {
			continue
		}
		t.send(peer, m)
	}
}

// Gossip implements node.Transport.
func (t *Transport) Gossip(origin int, m network.Message) {
	t.mu.Lock()
	t.seen[m.ID()] = true
	if k := m.LimitKey(); k != "" {
		t.limit[k]++
	}
	t.mu.Unlock()
	for _, peer := range t.Neighbors(t.id) {
		t.send(peer, m)
	}
}

// Unicast implements node.Transport.
func (t *Transport) Unicast(from, to int, m network.Message) {
	t.send(to, m)
}

// conn returns (dialing if needed) the connection to a peer.
func (t *Transport) conn(peer int) (*wireConn, error) {
	t.mu.Lock()
	wc, ok := t.conns[peer]
	t.mu.Unlock()
	if ok {
		return wc, nil
	}
	c, err := net.Dial("tcp", t.addrs[peer])
	if err != nil {
		return nil, err
	}
	wc = &wireConn{c: c, w: bufio.NewWriter(c)}
	t.mu.Lock()
	if prev, raced := t.conns[peer]; raced {
		t.mu.Unlock()
		c.Close()
		return prev, nil
	}
	t.conns[peer] = wc
	t.mu.Unlock()
	return wc, nil
}

func (t *Transport) dropConn(peer int, wc *wireConn) {
	t.mu.Lock()
	if t.conns[peer] == wc {
		delete(t.conns, peer)
	}
	t.mu.Unlock()
	wc.c.Close()
}

// send encodes and transmits one frame; failures drop the message
// (gossip tolerates loss; BA⋆'s timeouts absorb it).
func (t *Transport) send(peer int, m network.Message) {
	wc, err := t.conn(peer)
	if err != nil {
		t.reportErr(err)
		return
	}
	tag, payload, err := encodeFrame(t.id, m)
	if err != nil {
		t.reportErr(err)
		return
	}
	wc.mu.Lock()
	err = wire.WriteFrame(wc.w, tag, payload)
	if err == nil {
		err = wc.w.Flush()
	}
	wc.mu.Unlock()
	if err != nil {
		t.dropConn(peer, wc)
		t.reportErr(err)
	}
}

// encodeFrame builds a frame payload: the sender id followed by the
// message's canonical wire encoding.
func encodeFrame(from int, m network.Message) (tag byte, payload []byte, err error) {
	tag, body, err := nodepkg.EncodeMessage(m)
	if err != nil {
		return 0, nil, err
	}
	e := wire.NewEncoderSize(4 + len(body))
	e.Int(from)
	e.Fixed(body)
	return tag, e.Data(), nil
}

// decodeFrame is the inverse of encodeFrame.
func decodeFrame(tag byte, payload []byte) (from int, m network.Message, err error) {
	if len(payload) < 4 {
		return 0, nil, fmt.Errorf("realnet: frame payload of %d bytes", len(payload))
	}
	d := wire.NewDecoder(payload[:4])
	from = d.Int()
	m, err = nodepkg.DecodeMessage(tag, payload[4:])
	return from, m, err
}

// encodeSize reports a message's framed wire size (diagnostics): the
// canonical encoding plus the sender id and the 5-byte frame header.
func encodeSize(m network.Message) int {
	_, payload, err := nodepkg.EncodeMessage(m)
	if err != nil {
		return -1
	}
	return 5 + 4 + len(payload)
}
