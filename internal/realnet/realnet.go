// Package realnet is a real TCP gossip transport for the Algorand node:
// the same node implementation that runs under the deterministic
// simulator (internal/network) runs here as an actual networked
// process, with the vtime runtime in wall-clock mode (vtime.Realtime).
//
// The transport keeps the §8.4 gossip discipline — every message is
// validated by the node's handler before relaying, exact duplicates are
// dropped, and per-(sender,round,step) relay limits apply — but trades
// the simulator's modeled latency/bandwidth for real sockets. Messages
// are encoded with encoding/gob; PayloadPadding is materialized as real
// bytes so large blocks cost real bandwidth.
package realnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	nodepkg "algorand/internal/node"
	"algorand/internal/vtime"
)

func init() {
	gob.Register(&nodepkg.VoteMsg{})
	gob.Register(&nodepkg.PriorityGossip{})
	gob.Register(&nodepkg.BlockAnnounce{})
	gob.Register(&nodepkg.BlockRequest{})
	gob.Register(&nodepkg.BlockGossip{})
	gob.Register(&nodepkg.BlockFill{})
	gob.Register(&nodepkg.TxMsg{})
	gob.Register(&nodepkg.ChainRequest{})
	gob.Register(&nodepkg.ChainReply{})
	gob.Register(&ledger.Block{})
	gob.Register(blockprop.PriorityMsg{})
}

// wireFrame is what travels on a connection.
type wireFrame struct {
	From int
	// Padding materializes ledger.Block.PayloadPadding as real bytes so
	// block transfers cost real bandwidth (the simulator only accounts
	// for them). Filled by send, discarded by the receiver.
	Padding []byte
	Msg     network.Message
}

// Transport implements node.Transport over TCP.
type Transport struct {
	id    int
	sim   *vtime.Sim
	addrs []string

	handler network.Handler
	ln      net.Listener

	mu       sync.Mutex
	conns    map[int]*gobConn
	accepted []net.Conn
	seen     map[crypto.Digest]bool
	limit    map[string]int

	closed  chan struct{}
	wg      sync.WaitGroup
	onError func(err error)
}

type gobConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// New creates a transport for node id, listening on addrs[id]. The
// addrs slice is the shared address book (§9: "we currently provide
// each user with an address book file listing the IP address and port
// for every user").
func New(sim *vtime.Sim, id int, addrs []string) (*Transport, error) {
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("realnet: listen %s: %w", addrs[id], err)
	}
	return NewWithListener(sim, id, addrs, ln), nil
}

// NewWithListener is New with a pre-bound listener (tests bind :0 first
// to learn their ports).
func NewWithListener(sim *vtime.Sim, id int, addrs []string, ln net.Listener) *Transport {
	return &Transport{
		id:     id,
		sim:    sim,
		addrs:  append([]string(nil), addrs...),
		ln:     ln,
		conns:  make(map[int]*gobConn),
		seen:   make(map[crypto.Digest]bool),
		limit:  make(map[string]int),
		closed: make(chan struct{}),
	}
}

// Addr returns the listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetHandler implements node.Transport.
func (t *Transport) SetHandler(id int, h network.Handler) { t.handler = h }

// Neighbors implements node.Transport: every other address-book entry.
// (The simulator models sparse random peering; a small real deployment
// simply talks to everyone, which is the dense special case.)
func (t *Transport) Neighbors(id int) []int {
	out := make([]int, 0, len(t.addrs)-1)
	for i := range t.addrs {
		if i != t.id {
			out = append(out, i)
		}
	}
	return out
}

// Start begins accepting connections. Call after the node installed its
// handler.
func (t *Transport) Start() {
	t.wg.Add(1)
	go t.acceptLoop()
}

// Close shuts the transport down.
func (t *Transport) Close() {
	close(t.closed)
	t.ln.Close()
	t.mu.Lock()
	for _, gc := range t.conns {
		gc.c.Close()
	}
	for _, c := range t.accepted {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// OnError installs an optional error observer (logging).
func (t *Transport) OnError(f func(error)) { t.onError = f }

func (t *Transport) reportErr(err error) {
	select {
	case <-t.closed:
		return
	default:
	}
	if t.onError != nil {
		t.onError(err)
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
				t.reportErr(err)
				return
			}
		}
		t.mu.Lock()
		t.accepted = append(t.accepted, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop decodes frames from one connection and injects deliveries
// into the node's scheduler.
func (t *Transport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	dec := gob.NewDecoder(c)
	for {
		var f wireFrame
		if err := dec.Decode(&f); err != nil {
			return
		}
		from, msg := f.From, f.Msg
		if msg == nil {
			continue
		}
		t.sim.Inject(func() { t.deliver(from, msg) })
	}
}

// deliver runs in scheduler context: dedup, handle, relay per verdict.
func (t *Transport) deliver(from int, m network.Message) {
	t.mu.Lock()
	if t.seen[m.ID()] {
		t.mu.Unlock()
		return
	}
	t.seen[m.ID()] = true
	t.mu.Unlock()

	var verdict network.Verdict
	if t.handler != nil {
		verdict = t.handler.HandleMessage(from, m)
	}
	if !verdict.Relay {
		return
	}
	if k := m.LimitKey(); k != "" {
		limit := 1
		if mr, ok := m.(network.MultiRelay); ok {
			limit = mr.RelayLimit()
		}
		t.mu.Lock()
		over := t.limit[k] >= limit
		if !over {
			t.limit[k]++
		}
		t.mu.Unlock()
		if over {
			return
		}
	}
	for _, peer := range t.Neighbors(t.id) {
		if peer == from {
			continue
		}
		t.send(peer, m)
	}
}

// Gossip implements node.Transport.
func (t *Transport) Gossip(origin int, m network.Message) {
	t.mu.Lock()
	t.seen[m.ID()] = true
	if k := m.LimitKey(); k != "" {
		t.limit[k]++
	}
	t.mu.Unlock()
	for _, peer := range t.Neighbors(t.id) {
		t.send(peer, m)
	}
}

// Unicast implements node.Transport.
func (t *Transport) Unicast(from, to int, m network.Message) {
	t.send(to, m)
}

// conn returns (dialing if needed) the connection to a peer.
func (t *Transport) conn(peer int) (*gobConn, error) {
	t.mu.Lock()
	gc, ok := t.conns[peer]
	t.mu.Unlock()
	if ok {
		return gc, nil
	}
	c, err := net.Dial("tcp", t.addrs[peer])
	if err != nil {
		return nil, err
	}
	gc = &gobConn{c: c, enc: gob.NewEncoder(c)}
	t.mu.Lock()
	if prev, raced := t.conns[peer]; raced {
		t.mu.Unlock()
		c.Close()
		return prev, nil
	}
	t.conns[peer] = gc
	t.mu.Unlock()
	return gc, nil
}

func (t *Transport) dropConn(peer int, gc *gobConn) {
	t.mu.Lock()
	if t.conns[peer] == gc {
		delete(t.conns, peer)
	}
	t.mu.Unlock()
	gc.c.Close()
}

// send encodes and transmits one frame; failures drop the message
// (gossip tolerates loss; BA⋆'s timeouts absorb it).
func (t *Transport) send(peer int, m network.Message) {
	gc, err := t.conn(peer)
	if err != nil {
		t.reportErr(err)
		return
	}
	frame := wireFrame{From: t.id, Msg: m}
	if pad := paddingOf(m); pad > 0 {
		frame.Padding = make([]byte, pad)
	}
	gc.mu.Lock()
	err = gc.enc.Encode(&frame)
	gc.mu.Unlock()
	if err != nil {
		t.dropConn(peer, gc)
		t.reportErr(err)
	}
}

// paddingOf returns the block padding a message models, so that it is
// materialized on the wire.
func paddingOf(m network.Message) int {
	switch msg := m.(type) {
	case *nodepkg.BlockGossip:
		return msg.M.Block.PayloadPadding
	case *nodepkg.BlockFill:
		return msg.Block.PayloadPadding
	}
	return 0
}

// encodeSize reports a message's gob size (diagnostics).
func encodeSize(m network.Message) int {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	f := wireFrame{Msg: m}
	if err := enc.Encode(&f); err != nil {
		return -1
	}
	return buf.Len()
}
