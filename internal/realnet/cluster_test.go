package realnet

import (
	"net"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	nodepkg "algorand/internal/node"
	"algorand/internal/params"
	"algorand/internal/vtime"
)

// soakScale reads the REALNET_SOAK env knob (like chaos's
// CHAOS_SCENARIOS): CI and soak runs scale iteration counts up with it.
func soakScale() int {
	if s := os.Getenv("REALNET_SOAK"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1
}

// fast wall-clock parameters so tests finish in a few seconds.
func realParams() params.Params {
	p := params.Default()
	p.TauProposer = 6
	p.TauStep = 30
	p.TauFinal = 60
	p.LambdaPriority = 150 * time.Millisecond
	p.LambdaStepVar = 100 * time.Millisecond
	p.LambdaBlock = time.Second
	p.LambdaStep = 500 * time.Millisecond
	p.MaxSteps = 12
	p.BlockSize = 8 << 10
	return p
}

// testConfig returns transport tuning suited to fast loopback tests:
// quick redials and short deadlines, so healing happens on the test's
// timescale rather than production's.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.DialTimeout = time.Second
	cfg.RedialMin = 25 * time.Millisecond
	cfg.RedialMax = 500 * time.Millisecond
	cfg.WriteTimeout = 2 * time.Second
	cfg.IdleTimeout = 10 * time.Second
	cfg.KeepaliveInterval = 2 * time.Second
	return cfg
}

// realCluster boots n full Algorand nodes, each with its own wall-clock
// scheduler and TCP transport on 127.0.0.1. Nodes can be crashed,
// restarted on the same address, and run under fault-injecting
// listeners/dialers.
type realCluster struct {
	t      *testing.T
	n      int
	rounds uint64
	prm    params.Params
	// cfg returns node i's transport config (fault-injecting dialers go
	// here); nil means testConfig().
	cfg func(i int) Config
	// wrapListener decorates node i's listener (inbound faults); nil
	// means identity.
	wrapListener func(i int, ln net.Listener) net.Listener

	addrs      []string
	sims       []*vtime.Sim
	transports []*Transport
	nodes      []*nodepkg.Node
	done       []chan struct{} // closed when node i's sim.Run returns
	provider   crypto.Provider
	ids        []crypto.Identity
	genesis    map[crypto.PublicKey]uint64
	seed0      crypto.Digest
	nodeCfg    nodepkg.Config

	// pendingListeners carries the pre-bound listeners from construction
	// to startAll (so option hooks set after newRealCluster still apply).
	pendingListeners []net.Listener

	// doneCount tracks how many nodes have reached the round target;
	// watchers keep their schedulers alive until everyone has, so a
	// restarted straggler can still sync blocks from finished peers.
	doneCount atomic.Int32
}

func newRealCluster(t *testing.T, n int, rounds uint64) *realCluster {
	c := &realCluster{
		t:        t,
		n:        n,
		rounds:   rounds,
		prm:      realParams(),
		provider: crypto.NewReal(),
		genesis:  make(map[crypto.PublicKey]uint64),
		seed0:    crypto.HashBytes("realnet-genesis"),
	}
	c.sims = make([]*vtime.Sim, n)
	c.transports = make([]*Transport, n)
	c.nodes = make([]*nodepkg.Node, n)
	c.done = make([]chan struct{}, n)

	// Bind ephemeral ports first to build the address book.
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, c.provider.NewIdentity(crypto.SeedFromUint64(uint64(7000+i))))
		c.genesis[c.ids[i].PublicKey()] = 10
	}
	c.nodeCfg = nodepkg.Config{Params: c.prm, LedgerCfg: ledger.DefaultConfig()}
	// Defer transport/node construction until startAll so tests can
	// install cfg/wrapListener hooks first; stash the listeners.
	c.pendingListeners = listeners
	return c
}

func (c *realCluster) transportConfig(i int) Config {
	if c.cfg != nil {
		return c.cfg(i)
	}
	return testConfig()
}

// build constructs sim+transport+node for slot i on the given listener.
func (c *realCluster) build(i int, ln net.Listener) {
	if c.wrapListener != nil {
		ln = c.wrapListener(i, ln)
	}
	sim := vtime.New().Realtime()
	tr := NewWithConfig(sim, i, c.addrs, ln, c.transportConfig(i))
	nd := nodepkg.New(i, sim, tr, c.provider, c.ids[i], c.nodeCfg, c.genesis, c.seed0)
	nd.StopAfterRound = c.rounds
	c.sims[i] = sim
	c.transports[i] = tr
	c.nodes[i] = nd
	c.done[i] = make(chan struct{})
}

// watch spawns the in-scheduler watcher that stops node i's sim once
// its chain reaches the target — but only after every node has: a
// finished node must stay up to serve blocks to a lagging or restarted
// peer (the paper's network-healing assumption cuts both ways).
func (c *realCluster) watch(i int) {
	nd, sim := c.nodes[i], c.sims[i]
	rounds, n := c.rounds, int32(c.n)
	sim.Spawn("watcher", func(p *vtime.Proc) {
		reached := false
		for {
			if !reached && nd.Ledger().ChainLength() >= rounds {
				reached = true
				c.doneCount.Add(1)
			}
			if reached && c.doneCount.Load() >= n {
				// Serve any in-flight final fills, then stop.
				p.Sleep(500 * time.Millisecond)
				p.Sim().Stop()
				return
			}
			p.Sleep(100 * time.Millisecond)
		}
	})
}

// runAsync launches node i's scheduler in a goroutine; done[i] closes
// when it returns.
func (c *realCluster) runAsync(i int, deadline time.Duration) {
	sim, ch := c.sims[i], c.done[i]
	go func() {
		defer close(ch)
		sim.Run(deadline)
	}()
}

// startAll builds and starts every node and returns; callers wait via
// waitAll (or orchestrate crashes in between).
func (c *realCluster) startAll(deadline time.Duration) {
	for i := 0; i < c.n; i++ {
		c.build(i, c.pendingListeners[i])
	}
	for i := 0; i < c.n; i++ {
		c.transports[i].Start()
		c.nodes[i].Start()
		c.watch(i)
		c.runAsync(i, deadline)
	}
}

// waitAll blocks until every node's scheduler has returned, then closes
// the transports.
func (c *realCluster) waitAll() {
	for i := 0; i < c.n; i++ {
		<-c.done[i]
	}
	for _, tr := range c.transports {
		if tr != nil {
			tr.Close()
		}
	}
}

// run is startAll+waitAll for tests without mid-run orchestration.
func (c *realCluster) run(deadline time.Duration) {
	c.startAll(deadline)
	c.waitAll()
}

// crash kills node i the way a process dies: the node goes silent, its
// scheduler stops, and its sockets close. The node's Store survives
// (the machine's disk). Safe to call from the test goroutine.
func (c *realCluster) crash(i int) {
	sim, nd := c.sims[i], c.nodes[i]
	sim.Inject(func() {
		nd.Halt()
		sim.Stop()
	})
	<-c.done[i]
	c.transports[i].Close()
}

// restart replaces crashed node i with a fresh process on the same
// address: it rebinds the listener, replays the crashed node's archive,
// syncs the rest from peers, and rejoins consensus (mirrors
// internal/sim.Cluster.RestartNode over real sockets).
func (c *realCluster) restart(i int, syncBudget, deadline time.Duration) {
	oldStore := c.nodes[i].Store()
	ln := c.rebind(i)
	c.build(i, ln)
	if _, err := c.nodes[i].RestoreFromArchive(oldStore); err != nil {
		c.t.Fatalf("restart node %d: archive replay: %v", i, err)
	}
	c.transports[i].Start()
	c.nodes[i].StartAfterSync(syncBudget)
	c.watch(i)
	c.runAsync(i, deadline)
}

// rebind re-listens on node i's original address, retrying briefly (the
// old socket may still be tearing down).
func (c *realCluster) rebind(i int) net.Listener {
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		var ln net.Listener
		ln, err = net.Listen("tcp", c.addrs[i])
		if err == nil {
			return ln
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.t.Fatalf("rebind %s: %v", c.addrs[i], err)
	return nil
}

// checkAgreement asserts that all completed chains agree block for
// block and that at least minDone nodes reached the full round target.
func (c *realCluster) checkAgreement(minDone int) {
	c.t.Helper()
	done := 0
	for i := 0; i < c.n; i++ {
		if c.nodes[i].Ledger().ChainLength() >= c.rounds {
			done++
		}
	}
	if done < minDone {
		c.t.Fatalf("only %d/%d nodes completed %d rounds", done, c.n, c.rounds)
	}
	ref := c.nodes[0].Ledger()
	for i := 1; i < c.n; i++ {
		l := c.nodes[i].Ledger()
		upTo := l.ChainLength()
		if ref.ChainLength() < upTo {
			upTo = ref.ChainLength()
		}
		for r := uint64(1); r <= upTo; r++ {
			a, _ := ref.BlockAt(r)
			b, _ := l.BlockAt(r)
			if a.Hash() != b.Hash() {
				c.t.Fatalf("round %d: chain mismatch between node 0 and %d", r, i)
			}
		}
	}
}

// --- transport-only fixtures -------------------------------------------------

// miniTransport is a transport with a counting handler and a running
// realtime scheduler, for tests that exercise the transport without a
// full node on top.
type miniTransport struct {
	tr    *Transport
	sim   *vtime.Sim
	count func() int
}

// newMiniAt builds one transport at slot id of addrs with a counting
// handler, starts it, and runs its scheduler for the horizon.
func newMiniAt(t *testing.T, id int, addrs []string, ln net.Listener, conf Config, horizon time.Duration) *miniTransport {
	t.Helper()
	sim := vtime.New().Realtime()
	tr := NewWithConfig(sim, id, addrs, ln, conf)
	var got []network.Message
	ch := make(chan network.Message, 4096)
	tr.SetHandler(id, network.HandlerFunc(func(from int, m network.Message) network.Verdict {
		select {
		case ch <- m:
		default:
		}
		return network.Verdict{Relay: true}
	}))
	// count drains the delivery channel; call it from one goroutine only
	// (the test's).
	count := func() int {
		for {
			select {
			case m := <-ch:
				got = append(got, m)
				continue
			default:
			}
			break
		}
		return len(got)
	}
	tr.Start()
	go sim.Run(horizon)
	t.Cleanup(tr.Close)
	return &miniTransport{tr: tr, sim: sim, count: count}
}

// newMiniNet builds n connected transports with counting handlers and
// starts their schedulers for the given horizon.
func newMiniNet(t *testing.T, n int, cfg func(i int) Config, horizon time.Duration) []*miniTransport {
	t.Helper()
	var lns []net.Listener
	var addrs []string
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	out := make([]*miniTransport, n)
	for i := 0; i < n; i++ {
		conf := testConfig()
		if cfg != nil {
			conf = cfg(i)
		}
		out[i] = newMiniAt(t, i, addrs, lns[i], conf, horizon)
	}
	return out
}
