package realnet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	nodepkg "algorand/internal/node"
)

// The transport exposes its misbehavior scoring to the node layer:
// application-level offenses (forged snapshots) feed the same
// quarantine machinery as wire-level ones.
var _ nodepkg.MisbehaviorReporter = (*Transport)(nil)

// PeerStats is one peer's transport-level state snapshot.
type PeerStats struct {
	Peer      int
	Connected bool // outbound connection currently established

	// Outbound queue and supervisor.
	QueueDepth   int
	QueueBytes   int
	QueueDrops   uint64 // frames dropped by the drop-oldest policy
	Dials        uint64 // successful connects
	Redials      uint64 // successful connects after a previous connect
	ConnectFails uint64 // failed dial attempts
	FramesOut    uint64
	BytesOut     uint64

	// Inbound accounting and misbehavior.
	FramesIn    uint64
	BytesIn     uint64
	Malformed   uint64
	Spoofed     uint64
	RateAbuse   uint64
	Reported    uint64 // application-reported offenses (node layer)
	Score       int
	Quarantined bool
	Quarantines uint64 // times this peer has been quarantined
}

// Stats is a point-in-time snapshot of the whole transport.
type Stats struct {
	Peers []PeerStats // sorted by peer id, self excluded

	SeenEntries     int // both generations of the dedup cache
	LimitEntries    int // both generations of the relay-limit cache
	InboundConns    int // live accepted connections
	InboundRejected uint64
	QuarantineDrops uint64 // frames/conns refused due to quarantine
}

// Stats snapshots the transport — a typed view over the registry-backed
// counters plus the mutable per-peer state (queues, scores, quarantine
// clocks) the registry does not hold. Safe from any goroutine.
func (t *Transport) Stats() Stats {
	now := time.Now()
	t.mu.Lock()
	s := Stats{
		SeenEntries:     t.seen.Len(),
		LimitEntries:    t.limit.Len(),
		InboundConns:    len(t.inbound),
		InboundRejected: t.inboundRejected.Load(),
		QuarantineDrops: t.quarantineDrops.Load(),
	}
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].id < peers[j].id })
	for _, p := range peers {
		p.mu.Lock()
		s.Peers = append(s.Peers, PeerStats{
			Peer:         p.id,
			Connected:    p.connected,
			QueueDepth:   len(p.queue),
			QueueBytes:   p.queuedBytes,
			QueueDrops:   p.c.drops.Load(),
			Dials:        p.c.dials.Load(),
			Redials:      p.c.redials.Load(),
			ConnectFails: p.c.connectFails.Load(),
			FramesOut:    p.c.framesOut.Load(),
			BytesOut:     p.c.bytesOut.Load(),
			FramesIn:     p.c.framesIn.Load(),
			BytesIn:      p.c.bytesIn.Load(),
			Malformed:    p.c.malformed.Load(),
			Spoofed:      p.c.spoofed.Load(),
			RateAbuse:    p.c.rateAbuse.Load(),
			Reported:     p.c.reported.Load(),
			Score:        p.score,
			Quarantined:  now.Before(p.quarantinedUntil),
			Quarantines:  p.c.quarantines.Load(),
		})
		p.mu.Unlock()
	}
	return s
}

// Health implements node.TransportHealthReporter: the coarse liveness
// summary the node (and its operator) watches.
func (t *Transport) Health() nodepkg.TransportHealth {
	s := t.Stats()
	h := nodepkg.TransportHealth{Peers: len(s.Peers)}
	for _, p := range s.Peers {
		if p.Connected {
			h.Connected++
		}
		if p.Quarantined {
			h.Quarantined++
		}
		h.QueueDrops += p.QueueDrops
		h.Redials += p.Redials
	}
	return h
}

// String renders a compact operator-facing summary, one line per peer.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transport: %d inbound conns (%d rejected), seen %d, limits %d, quarantine drops %d\n",
		s.InboundConns, s.InboundRejected, s.SeenEntries, s.LimitEntries, s.QuarantineDrops)
	for _, p := range s.Peers {
		state := "down"
		if p.Connected {
			state = "up"
		}
		if p.Quarantined {
			state = "quarantined"
		}
		fmt.Fprintf(&b, "  peer %d [%s]: q=%d/%dB drops=%d dials=%d redials=%d fails=%d out=%d/%dB in=%d/%dB bad=%d/%d/%d\n",
			p.Peer, state, p.QueueDepth, p.QueueBytes, p.QueueDrops,
			p.Dials, p.Redials, p.ConnectFails,
			p.FramesOut, p.BytesOut, p.FramesIn, p.BytesIn,
			p.Malformed, p.Spoofed, p.RateAbuse)
	}
	return b.String()
}
