package realnet

import (
	"net"
	"testing"
	"time"

	"algorand/internal/crypto"
	nodepkg "algorand/internal/node"
)

// TestSoakBoundedTransportState pins the no-unbounded-state guarantee:
// under sustained gossip of unique messages, a permanently-down peer,
// and inbound connection churn, the seen/limit caches rotate away old
// generations, closed inbound conns are reaped, and the down peer's
// queue stays within its bounds. Scale duration with REALNET_SOAK.
func TestSoakBoundedTransportState(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock TCP soak test")
	}
	cfg := testConfig()
	cfg.SeenTTL = 100 * time.Millisecond
	cfg.QueueCap = 8

	// Three-slot address book: slot 0 is the transport under soak,
	// slot 1 a live transport, slot 2 permanently down.
	lnLive, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), lnLive.Addr().String(), deadAddr(t)}
	horizon := time.Duration(30*soakScale()) * time.Second
	m := newMiniAt(t, 0, addrs, ln0, cfg, horizon)
	newMiniAt(t, 1, addrs, lnLive, testConfig(), horizon)

	iters := 600 * soakScale()
	for i := 0; i < iters; i++ {
		m.tr.Gossip(0, &nodepkg.BlockRequest{
			Hash: crypto.HashBytes("soak"), Requester: 0, Nonce: uint64(i),
		})
		// Inbound churn: short-lived raw connections that hello and die.
		if i%20 == 0 {
			r := dialRaw(t, m.tr.Addr())
			r.hello(1)
			tag, payload := voteFrame(t, 1, uint64(1_000_000+i))
			r.frame(tag, payload)
			r.c.Close()
		}
		time.Sleep(time.Millisecond)
	}
	// Let the last generation age out, then trigger a rotation.
	time.Sleep(3 * cfg.SeenTTL)
	m.tr.Gossip(0, &nodepkg.BlockRequest{
		Hash: crypto.HashBytes("soak"), Requester: 0, Nonce: uint64(iters + 1),
	})
	time.Sleep(100 * time.Millisecond)

	s := m.tr.Stats()
	// Seen entries are bounded by ~two TTL windows of traffic, not by the
	// total number of unique messages gossiped (the pre-PR behavior).
	if s.SeenEntries >= iters/2 {
		t.Fatalf("seen cache grew to %d entries over %d unique messages (no rotation)", s.SeenEntries, iters)
	}
	if s.LimitEntries >= iters/2 {
		t.Fatalf("limit cache grew to %d entries (no rotation)", s.LimitEntries)
	}
	// Dead inbound conns were reaped, not accumulated.
	if s.InboundConns > 3 {
		t.Fatalf("%d inbound conns registered after churn of %d short-lived conns", s.InboundConns, iters/20)
	}
	// The down peer's queue honored drop-oldest.
	for _, ps := range s.Peers {
		if ps.Peer != 2 {
			continue
		}
		if ps.QueueDepth > cfg.QueueCap {
			t.Fatalf("down peer queue depth %d exceeds cap %d", ps.QueueDepth, cfg.QueueCap)
		}
		if ps.QueueDrops < uint64(iters/2) {
			t.Fatalf("down peer shed only %d of ~%d frames", ps.QueueDrops, iters)
		}
	}
	t.Logf("soak stats after %d msgs: %s", iters, s)
}
