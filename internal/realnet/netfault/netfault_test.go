package netfault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	c, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestResetAtOffset(t *testing.T) {
	c, s := tcpPair(t)
	fc := Wrap(c, Script{{After: 10, Act: Reset}})
	n, err := fc.Write(make([]byte, 20))
	if err != ErrInjected {
		t.Fatalf("write error %v, want ErrInjected", err)
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes before reset, want exactly 10", n)
	}
	// The remote sees the bytes, then EOF/reset.
	buf := make([]byte, 32)
	got := 0
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		n, err := s.Read(buf[got:])
		got += n
		if err != nil {
			break
		}
	}
	if got != 10 {
		t.Fatalf("remote received %d bytes, want 10", got)
	}
}

func TestPartialWriteTearsFrame(t *testing.T) {
	c, s := tcpPair(t)
	fc := Wrap(c, Script{{After: 5, Act: PartialWrite}})
	n, err := fc.Write(make([]byte, 20))
	if err != ErrInjected {
		t.Fatalf("write error %v, want ErrInjected", err)
	}
	// One byte past the offset is delivered: a torn, not truncated-at-
	// boundary, stream.
	if n != 6 {
		t.Fatalf("wrote %d bytes, want 6 (offset 5 + 1 torn byte)", n)
	}
	fc.Close()
	got, _ := io.ReadAll(s)
	if len(got) != 6 {
		t.Fatalf("remote received %d bytes, want 6", len(got))
	}
}

func TestStallDelaysWrite(t *testing.T) {
	c, s := tcpPair(t)
	fc := Wrap(c, Script{{After: 4, Act: Stall, Dur: 120 * time.Millisecond}})
	go io.Copy(io.Discard, s)
	start := time.Now()
	if _, err := fc.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("write completed in %v, stall did not fire", d)
	}
}

func TestCorruptReadFlipsByte(t *testing.T) {
	c, s := tcpPair(t)
	fc := Wrap(c, Script{{After: 3, Act: CorruptRead}})
	want := []byte{0, 1, 2, 3, 4, 5}
	if _, err := s.Write(want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	fc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatal(err)
	}
	exp := append([]byte(nil), want...)
	exp[3] ^= 0xFF
	if !bytes.Equal(buf, exp) {
		t.Fatalf("read %v, want byte 3 flipped: %v", buf, exp)
	}
}

func TestPeriodicScript(t *testing.T) {
	s := Periodic(100, Reset, 0, 3)
	if len(s) != 3 || s[0].After != 100 || s[2].After != 300 {
		t.Fatalf("unexpected periodic script: %+v", s)
	}
}
