// Package netfault wraps net.Conn, net.Listener, and dial functions
// with deterministic, scripted fault injection: connection resets,
// write stalls, partial writes, and in-stream byte corruption, each
// fired at an exact byte offset of the connection's traffic.
//
// The point is to exercise every resilience path of the realnet
// transport (redial with backoff, write deadlines, requeue-on-failure,
// malformed-frame handling) without real network flakiness: a test that
// scripts "reset this connection after 32 KiB" fails the same way every
// run. Scripts are explicit event lists — no clocks, no randomness —
// so a failing run replays exactly.
package netfault

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// Action is one kind of injected fault.
type Action int

const (
	// Reset closes the connection at the scripted offset; the in-flight
	// Write (or Read) returns an error, like a TCP RST.
	Reset Action = iota
	// Stall sleeps for Event.Dur at the scripted offset before letting
	// the traffic proceed (exercises write deadlines and keepalives).
	Stall
	// PartialWrite delivers one byte past the scripted offset and then
	// fails the Write, leaving a torn frame on the wire.
	PartialWrite
	// CorruptRead flips the byte at the scripted offset of the inbound
	// stream (exercises malformed-frame scoring at the reader).
	CorruptRead
)

// Event is one scripted fault: Act fires once the connection has
// carried After bytes in the event's direction (writes for
// Reset/Stall/PartialWrite, reads for CorruptRead).
type Event struct {
	After int64
	Act   Action
	Dur   time.Duration // Stall only
}

// Script is an ordered fault sequence for one connection. Events fire
// in offset order per direction; a Reset ends the connection, so later
// events never fire.
type Script []Event

// Periodic builds a Script of n copies of the same fault, at offsets
// every, 2*every, ... — "reset every 48 KiB" style scripts.
func Periodic(every int64, act Action, dur time.Duration, n int) Script {
	s := make(Script, 0, n)
	for i := 1; i <= n; i++ {
		s = append(s, Event{After: every * int64(i), Act: act, Dur: dur})
	}
	return s
}

// ErrInjected is the error returned by faulted operations.
var ErrInjected = errors.New("netfault: injected fault")

// Conn wraps a net.Conn with a fault script. Safe for one concurrent
// reader plus one concurrent writer (the usual net.Conn contract).
type Conn struct {
	net.Conn

	mu     sync.Mutex
	wrote  int64
	readN  int64
	wQueue []Event // Reset/Stall/PartialWrite, offset order
	rQueue []Event // CorruptRead (and read-side Reset/Stall), offset order
}

// Wrap applies a script to a connection. Write-direction and
// read-direction events are split internally; each direction fires its
// events in order.
func Wrap(c net.Conn, s Script) *Conn {
	fc := &Conn{Conn: c}
	for _, ev := range s {
		if ev.Act == CorruptRead {
			fc.rQueue = append(fc.rQueue, ev)
		} else {
			fc.wQueue = append(fc.wQueue, ev)
		}
	}
	return fc
}

// nextW peeks the next write-side event, if any.
func (c *Conn) nextW() (Event, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.wQueue) == 0 {
		return Event{}, false
	}
	return c.wQueue[0], true
}

func (c *Conn) popW() {
	c.mu.Lock()
	c.wQueue = c.wQueue[1:]
	c.mu.Unlock()
}

func (c *Conn) addWrote(n int) {
	c.mu.Lock()
	c.wrote += int64(n)
	c.mu.Unlock()
}

// Write transmits p, firing any scripted write-side faults whose
// offsets fall inside it.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for {
		ev, ok := c.nextW()
		c.mu.Lock()
		boundary := int64(-1)
		if ok {
			boundary = ev.After - c.wrote
		}
		c.mu.Unlock()
		if !ok || boundary > int64(len(p)) {
			n, err := c.Conn.Write(p)
			c.addWrote(n)
			return total + n, err
		}
		if boundary > 0 {
			n, err := c.Conn.Write(p[:boundary])
			c.addWrote(n)
			total += n
			if err != nil {
				return total, err
			}
			p = p[boundary:]
		}
		c.popW()
		switch ev.Act {
		case Reset:
			c.Conn.Close()
			return total, ErrInjected
		case Stall:
			time.Sleep(ev.Dur)
		case PartialWrite:
			if len(p) > 0 {
				n, _ := c.Conn.Write(p[:1])
				c.addWrote(n)
				total += n
			}
			return total, ErrInjected
		}
	}
}

// Read receives into p, firing read-side faults whose offsets fall
// inside the received chunk.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.mu.Lock()
		start := c.readN
		c.readN += int64(n)
		for len(c.rQueue) > 0 {
			ev := c.rQueue[0]
			off := ev.After - start
			if off < 0 {
				off = 0
			}
			if off >= int64(n) {
				break
			}
			c.rQueue = c.rQueue[1:]
			p[off] ^= 0xFF
		}
		c.mu.Unlock()
	}
	return n, err
}

// Listener wraps Accept so each accepted connection gets the script
// returned by gen for its ordinal (0, 1, 2, ...). A nil script leaves
// that connection clean.
type Listener struct {
	net.Listener
	gen func(i int) Script

	mu sync.Mutex
	i  int
}

// WrapListener builds a fault-injecting listener.
func WrapListener(ln net.Listener, gen func(i int) Script) *Listener {
	return &Listener{Listener: ln, gen: gen}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.i
	l.i++
	l.mu.Unlock()
	if s := l.gen(i); len(s) > 0 {
		return Wrap(c, s), nil
	}
	return c, nil
}

// WrapDial decorates a dial function so each established connection
// gets the script for its ordinal. A nil base uses net.Dialer.
func WrapDial(base func(ctx context.Context, addr string) (net.Conn, error), gen func(i int) Script) func(ctx context.Context, addr string) (net.Conn, error) {
	if base == nil {
		base = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	var mu sync.Mutex
	i := 0
	return func(ctx context.Context, addr string) (net.Conn, error) {
		c, err := base(ctx, addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		n := i
		i++
		mu.Unlock()
		if s := gen(n); len(s) > 0 {
			return Wrap(c, s), nil
		}
		return c, nil
	}
}
