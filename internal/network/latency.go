package network

import (
	"math"
	"time"
)

// The paper models network latency by assigning each machine to one of
// 20 major cities and using measured inter-city latency and jitter [53]
// (WonderNetwork pings). We reproduce that model from city coordinates:
// one-way latency = distance / (fiber propagation ≈ 200 km/ms) plus a
// fixed last-mile overhead, which tracks the measured numbers well
// (e.g. New York–London ≈ 33 ms one-way here vs ~35 ms measured).
// Intra-city latency is a small constant, per the paper ("latency
// within the same city is modeled as negligible").

// city is a named location.
type city struct {
	name     string
	lat, lon float64 // degrees
}

// cities are 20 major cities spread across the continents, matching the
// paper's methodology.
var cities = []city{
	{"NewYork", 40.71, -74.01},
	{"London", 51.51, -0.13},
	{"Tokyo", 35.68, 139.69},
	{"Singapore", 1.35, 103.82},
	{"Sydney", -33.87, 151.21},
	{"Frankfurt", 50.11, 8.68},
	{"SanFrancisco", 37.77, -122.42},
	{"SaoPaulo", -23.55, -46.63},
	{"Mumbai", 19.08, 72.88},
	{"Toronto", 43.65, -79.38},
	{"Amsterdam", 52.37, 4.90},
	{"Seoul", 37.57, 126.98},
	{"Dallas", 32.78, -96.80},
	{"Paris", 48.86, 2.35},
	{"Johannesburg", -26.20, 28.05},
	{"HongKong", 22.32, 114.17},
	{"Moscow", 55.76, 37.62},
	{"Stockholm", 59.33, 18.07},
	{"Seattle", 47.61, -122.33},
	{"Madrid", 40.42, -3.70},
}

// NumCities is the number of modeled cities.
const NumCities = 20

const (
	earthRadiusKm  = 6371.0
	kmPerMs        = 200.0 // light in fiber, ~2/3 c
	lastMileMs     = 4.0   // fixed per-path overhead
	intraCityMs    = 1.0
	routeInflation = 1.25 // paths are not great circles
)

// haversineKm returns the great-circle distance between two cities.
func haversineKm(a, b city) float64 {
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := toRad(b.lat - a.lat)
	dLon := toRad(b.lon - a.lon)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(toRad(a.lat))*math.Cos(toRad(b.lat))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// latencyTable[a][b] is the one-way latency between cities a and b.
var latencyTable [NumCities][NumCities]time.Duration

func init() {
	if len(cities) != NumCities {
		panic("network: city table size mismatch")
	}
	for i := range cities {
		for j := range cities {
			if i == j {
				latencyTable[i][j] = time.Duration(intraCityMs * float64(time.Millisecond))
				continue
			}
			km := haversineKm(cities[i], cities[j]) * routeInflation
			ms := km/kmPerMs + lastMileMs
			latencyTable[i][j] = time.Duration(ms * float64(time.Millisecond))
		}
	}
}

// CityLatency returns the modeled one-way latency between two cities.
func CityLatency(a, b int) time.Duration {
	return latencyTable[a%NumCities][b%NumCities]
}

// CityName returns a city's name for logs.
func CityName(i int) string { return cities[i%NumCities].name }
