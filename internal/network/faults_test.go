package network

import (
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/vtime"
)

// directMsg builds a unique unicast payload.
func directMsg(tag string, size int) *testMsg {
	return &testMsg{id: crypto.HashBytes("fault.msg", []byte(tag)), size: size}
}

// runUnicast sends one message from->to and reports whether it arrived.
func runUnicast(nw *Network, sim *vtime.Sim, from, to int, tag string) bool {
	got := false
	nw.SetHandler(to, HandlerFunc(func(src int, m Message) Verdict {
		got = true
		return Verdict{}
	}))
	sim.Spawn("u-"+tag, func(p *vtime.Proc) { nw.Unicast(from, to, directMsg(tag, 100)) })
	sim.Run(time.Minute)
	return got
}

func TestPartitionsCompose(t *testing.T) {
	// Two independently installed faults — a world split and a targeted
	// DoS — must both apply at once. Before AddPartition the second
	// SetPartition call silently erased the first.
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 10)

	cut := 5
	nw.AddPartition(func(a, b int) bool { return (a < cut) != (b < cut) }) // split {0..4} | {5..9}
	nw.AddPartition(func(a, b int) bool { return a == 2 || b == 2 })      // silence node 2

	if !nw.Partitioned(1, 7) || !nw.Partitioned(7, 1) {
		t.Fatal("world split not applied while DoS filter installed")
	}
	if !nw.Partitioned(2, 3) || !nw.Partitioned(3, 2) {
		t.Fatal("targeted DoS not applied while split filter installed")
	}
	if nw.Partitioned(0, 1) || nw.Partitioned(8, 9) {
		t.Fatal("intra-half traffic between unaffected nodes wrongly blocked")
	}

	// End-to-end: a message across the cut is dropped, one inside a half
	// (avoiding node 2) is delivered.
	if runUnicast(nw, sim, 1, 7, "cross") {
		t.Fatal("message crossed the world split")
	}
	if runUnicast(nw, sim, 3, 4, "intra") != true {
		t.Fatal("message between unaffected nodes dropped")
	}
	if runUnicast(nw, sim, 2, 3, "dos") {
		t.Fatal("silenced node's message delivered")
	}

	// SetPartition(nil) heals everything at once.
	nw.SetPartition(nil)
	if nw.Partitioned(1, 7) || nw.Partitioned(2, 3) {
		t.Fatal("heal did not clear all filters")
	}
}

func TestSetPartitionReplacesFilters(t *testing.T) {
	// Backward compatibility: SetPartition(f) installs f as the only
	// filter, discarding previous ones.
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 4)
	nw.AddPartition(func(a, b int) bool { return true })
	nw.SetPartition(func(a, b int) bool { return a == 0 })
	if nw.Partitioned(1, 2) {
		t.Fatal("old filter survived SetPartition")
	}
	if !nw.Partitioned(0, 1) {
		t.Fatal("new filter not installed")
	}
}

// lossTrace runs a fixed unicast workload under a 30% loss fault seeded
// with the given value, returning which sends were dropped.
func lossTrace(t *testing.T, seed int64) []bool {
	t.Helper()
	sim := vtime.New()
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	nw := New(sim, cfg, 4)
	nw.SeedFaults(seed)
	nw.AddLinkFault(LinkFault{LossProb: 0.3})

	const sends = 64
	delivered := make([]bool, sends)
	nw.SetHandler(1, HandlerFunc(func(from int, m Message) Verdict { return Verdict{} }))
	sim.Spawn("o", func(p *vtime.Proc) {
		for i := 0; i < sends; i++ {
			before := nw.TotalLost()
			nw.Unicast(0, 1, directMsg(string(rune('a'+i%26))+string(rune('0'+i/26)), 100))
			delivered[i] = nw.TotalLost() == before
			p.Sleep(time.Second)
		}
	})
	sim.Run(5 * time.Minute)
	return delivered
}

func TestLinkFaultLossReproducible(t *testing.T) {
	a := lossTrace(t, 42)
	b := lossTrace(t, 42)
	c := lossTrace(t, 43)

	lostA := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at send %d", i)
		}
		if !a[i] {
			lostA++
		}
	}
	if lostA == 0 || lostA == len(a) {
		t.Fatalf("loss fault degenerate: %d/%d dropped", lostA, len(a))
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical loss pattern")
	}
}

// delayTrace measures per-message delivery times under an extra-delay
// fault with jitter, for a fixed seed.
func delayTrace(t *testing.T, seed int64) []time.Duration {
	t.Helper()
	sim := vtime.New()
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	nw := New(sim, cfg, 4)
	nw.SeedFaults(seed)
	nw.AddLinkFault(LinkFault{
		ExtraDelay:  200 * time.Millisecond,
		ExtraJitter: 300 * time.Millisecond,
	})

	const sends = 16
	var times []time.Duration
	var sentAt []time.Duration
	nw.SetHandler(1, HandlerFunc(func(from int, m Message) Verdict {
		times = append(times, sim.Now()-sentAt[len(times)])
		return Verdict{}
	}))
	sim.Spawn("o", func(p *vtime.Proc) {
		for i := 0; i < sends; i++ {
			sentAt = append(sentAt, sim.Now())
			nw.Unicast(0, 1, directMsg("d"+string(rune('a'+i)), 100))
			p.Sleep(5 * time.Second)
		}
	})
	sim.Run(5 * time.Minute)
	if len(times) != sends {
		t.Fatalf("delivered %d of %d delayed messages", len(times), sends)
	}
	return times
}

func TestLinkFaultDelayReproducible(t *testing.T) {
	a := delayTrace(t, 7)
	b := delayTrace(t, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed delay diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 200*time.Millisecond {
			t.Fatalf("message %d arrived in %v, below the 200ms floor", i, a[i])
		}
		if a[i] > 600*time.Millisecond {
			t.Fatalf("message %d took %v, above floor+jitter+latency bound", i, a[i])
		}
	}
	// Jitter must actually vary across messages.
	allSame := true
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("jitter produced identical delays for every message")
	}
}

func TestLinkFaultWindowAndMatch(t *testing.T) {
	// A fault gated to [10s, 20s) on the 0->1 link only: sends outside
	// the window or on other links are untouched.
	sim := vtime.New()
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	nw := New(sim, cfg, 4)
	nw.SeedFaults(99)
	nw.AddLinkFault(LinkFault{
		Match:    func(from, to int) bool { return from == 0 && to == 1 },
		Active:   func(now time.Duration) bool { return now >= 10*time.Second && now < 20*time.Second },
		LossProb: 1.0,
	})

	got01, got02 := 0, 0
	nw.SetHandler(1, HandlerFunc(func(from int, m Message) Verdict { got01++; return Verdict{} }))
	nw.SetHandler(2, HandlerFunc(func(from int, m Message) Verdict { got02++; return Verdict{} }))
	sim.Spawn("o", func(p *vtime.Proc) {
		nw.Unicast(0, 1, directMsg("pre", 100)) // t=0: before window
		nw.Unicast(0, 2, directMsg("x1", 100))
		p.Sleep(15 * time.Second) // t=15: inside window
		nw.Unicast(0, 1, directMsg("mid", 100))
		nw.Unicast(0, 2, directMsg("x2", 100))
		p.Sleep(10 * time.Second) // t=25: after window
		nw.Unicast(0, 1, directMsg("post", 100))
	})
	sim.Run(time.Minute)

	if got01 != 2 {
		t.Fatalf("0->1 deliveries = %d, want 2 (window send dropped)", got01)
	}
	if got02 != 2 {
		t.Fatalf("0->2 deliveries = %d, want 2 (unmatched link untouched)", got02)
	}
	if nw.TotalLost() != 1 {
		t.Fatalf("TotalLost = %d, want 1", nw.TotalLost())
	}
	if nw.NodeStats(0).MsgsLost != 1 {
		t.Fatalf("sender MsgsLost = %d, want 1", nw.NodeStats(0).MsgsLost)
	}
}
