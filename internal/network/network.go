// Package network simulates Algorand's gossip network (§4, §8.4) on the
// vtime runtime: each user picks a small set of random peers (weighted
// by money to resist pollution attacks), signs every message, validates
// before relaying, never relays the same message twice, and relays at
// most one message per (sender, round, step).
//
// The transport model reproduces the paper's evaluation setup (§10):
// per-process bandwidth caps (20 Mbit/s), inter-city propagation
// latency with jitter, and optionally a shared per-VM NIC for the
// Figure 6 bottleneck experiment. Message transmission serializes on
// the sender's uplink — gossiping a 1 MB block to four peers costs four
// back-to-back transmissions — and on the receiver's downlink, which is
// what makes block propagation time grow linearly with block size
// (Figure 7).
package network

import (
	"math/rand"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/metrics"
	"algorand/internal/vtime"
)

// Message is anything gossiped on the network.
type Message interface {
	// WireSize is the serialized size in bytes, for bandwidth modeling.
	WireSize() int
	// ID uniquely identifies the message for duplicate suppression.
	ID() crypto.Digest
	// LimitKey groups messages for the per-(sender,round,step) relay
	// limit of §8.4; empty string disables the limit for this message.
	LimitKey() string
}

// MultiRelay is an optional Message extension raising the relay limit
// for a LimitKey above one — e.g. block announcements allow two per
// proposer per round so that equivocation evidence still propagates.
type MultiRelay interface {
	RelayLimit() int
}

// Verdict is a node's decision about a received message.
type Verdict struct {
	// Relay: forward to our peers (after validation, §8.4).
	Relay bool
	// CPU is the modeled verification cost; it is charged to the node's
	// CPU accounting and delays the node's subsequent processing.
	CPU time.Duration
}

// Handler receives messages delivered to a node. It runs in scheduler
// context and must not block; typical implementations verify the
// message and enqueue it into vtime mailboxes for the node's process.
type Handler interface {
	HandleMessage(from int, m Message) Verdict
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from int, m Message) Verdict

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from int, m Message) Verdict {
	return f(from, m)
}

// Config tunes the transport and gossip topology.
type Config struct {
	// Fanout is the number of outgoing gossip peers per node (paper: 4
	// outgoing, ~8 total with incoming).
	Fanout int
	// UplinkBps / DownlinkBps cap each process's bandwidth (paper: 20
	// Mbit/s per process).
	UplinkBps   int64
	DownlinkBps int64
	// ProcsPerVM > 1 groups that many consecutive nodes onto one virtual
	// machine sharing a single NIC (VMBps up/down), reproducing the
	// Figure 6 bottleneck. Zero or one disables sharing.
	ProcsPerVM int
	VMBps      int64
	// JitterFrac adds ±JitterFrac×latency of uniform jitter per message.
	JitterFrac float64
	// SeenTTL bounds the duplicate-suppression and relay-limit caches in
	// time: an entry suppresses matching messages for between one and two
	// TTLs, then is forgotten. Real gossip implementations time-bound
	// these caches to bound memory; here expiry is also what keeps a
	// *retried* BA⋆ round live — the §8.4 relay limit is keyed by
	// (sender, round, step), and if a failed attempt's keys never expired,
	// the retry's fresh votes would reach direct peers but never be
	// relayed, wedging the round forever. Zero disables expiry.
	SeenTTL time.Duration
	// Seed drives all of the network's randomness.
	Seed int64
	// Metrics receives the network's aggregate counters
	// (algorand_net_*). Per-endpoint counters stay unregistered — at the
	// paper's 500k-user scale, per-node registry series would dominate
	// memory — and are read through NodeStats. Nil gets a private
	// registry.
	Metrics *metrics.Registry
}

// DefaultConfig matches the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		Fanout:      4,
		UplinkBps:   20_000_000,
		DownlinkBps: 20_000_000,
		JitterFrac:  0.10,
		SeenTTL:     time.Minute,
		Seed:        1,
	}
}

// link models a bandwidth-limited queue (an uplink or downlink).
type link struct {
	bps  int64
	free time.Duration // time at which the link becomes idle
}

// transmit reserves the link for msg starting no earlier than now and
// returns the completion time.
func (l *link) transmit(now time.Duration, bytes int) time.Duration {
	start := now
	if l.free > start {
		start = l.free
	}
	tx := time.Duration(float64(bytes*8) / float64(l.bps) * float64(time.Second))
	l.free = start + tx
	return l.free
}

// endpoint is the per-node network state.
type endpoint struct {
	id    int
	city  int
	peers []int // outgoing connections
	// neighbors is the union of outgoing and incoming connections; like
	// the paper's prototype ("each user connects to 4 random peers,
	// accepts incoming connections ... and gossips messages to all of
	// them. This gives us 8 peers on average"), messages are relayed on
	// every connection.
	neighbors []int
	handler   Handler

	up, down *link // possibly shared across a VM

	// seen/limitSeen are the current generation of the duplicate and
	// relay-limit caches; seenOld/limitOld the previous one. Lookups
	// consult both, inserts go to the current, and rotation (driven by
	// Config.SeenTTL) drops the old generation — giving every entry a
	// lifetime between one and two TTLs.
	seen      map[crypto.Digest]bool
	seenOld   map[crypto.Digest]bool
	limitSeen map[string]int
	limitOld  map[string]int
	cpuFree   time.Duration

	// Per-endpoint counters. Standalone metrics primitives, not
	// registered anywhere: a registry series per endpoint would not
	// scale to the paper's 500k users. NodeStats reads them.
	bytesSent     metrics.Counter
	bytesReceived metrics.Counter
	msgsReceived  metrics.Counter
	dupsDropped   metrics.Counter
	msgsLost      metrics.Counter // outgoing transfers dropped by link faults
	cpuUsedNs     metrics.Counter
}

// LinkFault is a scripted per-link impairment (chaos testing): matched
// transfers are dropped with probability LossProb and/or delayed by
// ExtraDelay plus a uniform draw in [0, ExtraJitter). Loss and jitter
// draws come from the network's dedicated fault RNG (see SeedFaults),
// so a run with a fixed seed replays the exact same drops and delays.
type LinkFault struct {
	// Match selects the links the fault applies to; nil matches every
	// link.
	Match func(from, to int) bool
	// Active gates the fault by virtual time; nil means always active.
	Active func(now time.Duration) bool
	// LossProb is the per-transfer drop probability in [0, 1].
	LossProb float64
	// ExtraDelay is added to the link's propagation latency.
	ExtraDelay time.Duration
	// ExtraJitter adds a further uniform delay in [0, ExtraJitter).
	ExtraJitter time.Duration
}

// LimboFault scripts the "undecidable message" adversary of Conti et
// al. (PAPERS.md): captured transfers are neither delivered on schedule
// nor provably dropped — they sit in limbo past the receiver's step
// timeouts and are released at an instant of the adversary's choosing
// (HoldFor plus a uniform draw in [0, HoldJitter)). BA⋆ must treat the
// silence as a timeout and still terminate; the late release then tests
// that stale messages from long-decided steps cannot unwind anything.
// Draws come from the network's dedicated fault RNG (SeedFaults), so a
// fixed seed replays the exact same captures and release instants.
type LimboFault struct {
	// Match selects the links the fault applies to; nil matches every
	// link.
	Match func(from, to int) bool
	// Active gates capture by virtual time; nil means always active.
	// Only capture is gated — a message captured inside the window is
	// still released after it.
	Active func(now time.Duration) bool
	// HoldProb is the per-transfer capture probability in [0, 1].
	HoldProb float64
	// HoldFor is the minimum limbo duration before release; choose it
	// larger than the protocol's step timeout to make the message
	// genuinely undecidable for the receiver.
	HoldFor time.Duration
	// HoldJitter adds a uniform extra hold in [0, HoldJitter).
	HoldJitter time.Duration
}

// Network is the simulated gossip network.
type Network struct {
	sim *vtime.Sim
	cfg Config
	rng *rand.Rand
	eps []*endpoint
	// weights drives money-weighted peer selection.
	weights []uint64

	// partitions holds the installed message filters; a transfer is
	// dropped when ANY filter returns true (the OR composition lets
	// independently scripted faults — a world split and a targeted DoS,
	// say — apply simultaneously).
	partitions []func(from, to int) bool

	// faults are the installed link impairments; faultRng drives their
	// loss and jitter draws, separate from the topology RNG so that
	// installing a fault never perturbs peer selection.
	faults   []LinkFault
	faultRng *rand.Rand

	// limbos are the installed undecidable-message schedules (capture
	// draws also come from faultRng).
	limbos []LimboFault

	// lastRotate is the virtual time of the last seen-cache rotation.
	lastRotate time.Duration

	// Aggregate counters, registered under algorand_net_* (see
	// Config.Metrics); read through TotalBytes/TotalMsgs/TotalLost.
	totalBytes *metrics.Counter
	totalMsgs  *metrics.Counter
	totalLost  *metrics.Counter
	totalDups  *metrics.Counter
	totalLimbo *metrics.Counter
}

// New creates a network of n nodes on sim. Handlers start nil; call
// SetHandler before gossiping to a node.
func New(sim *vtime.Sim, cfg Config, n int) *Network {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	nw := &Network{
		sim:     sim,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		weights: make([]uint64, n),

		totalBytes: reg.Counter("algorand_net_bytes_total", "bytes sent across the simulated network"),
		totalMsgs:  reg.Counter("algorand_net_msgs_total", "first-copy messages delivered across the network"),
		totalLost:  reg.Counter("algorand_net_lost_total", "transfers dropped by link faults (not partitions)"),
		totalDups:  reg.Counter("algorand_net_dups_total", "deliveries suppressed as exact duplicates"),
		totalLimbo: reg.Counter("algorand_net_limbo_total", "transfers held in undecidable-message limbo"),
	}
	var vmUp, vmDown *link
	for i := 0; i < n; i++ {
		ep := &endpoint{
			id:        i,
			city:      i % NumCities,
			seen:      make(map[crypto.Digest]bool),
			limitSeen: make(map[string]int),
		}
		if cfg.ProcsPerVM > 1 {
			if i%cfg.ProcsPerVM == 0 {
				bps := cfg.VMBps
				if bps == 0 {
					bps = cfg.UplinkBps
				}
				vmUp = &link{bps: bps}
				vmDown = &link{bps: bps}
			}
			ep.up, ep.down = vmUp, vmDown
		} else {
			ep.up = &link{bps: cfg.UplinkBps}
			ep.down = &link{bps: cfg.DownlinkBps}
		}
		nw.weights[i] = 1
		nw.eps = append(nw.eps, ep)
	}
	nw.ReshufflePeers()
	return nw
}

// SetHandler installs the message handler for node id.
func (nw *Network) SetHandler(id int, h Handler) {
	nw.eps[id].handler = h
}

// SetWeights updates the money weights used for peer selection.
func (nw *Network) SetWeights(w []uint64) {
	copy(nw.weights, w)
	nw.ReshufflePeers()
}

// ReshufflePeers re-draws every node's outgoing peers, weighted by
// money (§4). The paper replaces gossip peers each round to heal
// disconnected components (§8.4).
func (nw *Network) ReshufflePeers() {
	n := len(nw.eps)
	if n <= 1 {
		return
	}
	var total uint64
	for _, w := range nw.weights {
		total += w
	}
	for _, ep := range nw.eps {
		k := nw.cfg.Fanout
		if k > n-1 {
			k = n - 1
		}
		ep.peers = ep.peers[:0]
		chosen := map[int]bool{ep.id: true}
		for len(ep.peers) < k {
			var pick int
			if total > 0 {
				target := uint64(nw.rng.Int63n(int64(total)))
				var acc uint64
				for i, w := range nw.weights {
					acc += w
					if target < acc {
						pick = i
						break
					}
				}
			} else {
				pick = nw.rng.Intn(n)
			}
			if chosen[pick] {
				// Fall back to uniform scanning to terminate even under
				// extreme weight skew.
				pick = nw.rng.Intn(n)
				if chosen[pick] {
					continue
				}
			}
			chosen[pick] = true
			ep.peers = append(ep.peers, pick)
		}
	}
	// Build the undirected neighbor sets (outgoing ∪ incoming).
	sets := make([]map[int]bool, n)
	for i := range sets {
		sets[i] = make(map[int]bool, 2*nw.cfg.Fanout)
	}
	for _, ep := range nw.eps {
		for _, p := range ep.peers {
			sets[ep.id][p] = true
			sets[p][ep.id] = true
		}
	}
	for _, ep := range nw.eps {
		ep.neighbors = ep.neighbors[:0]
		// Deterministic order.
		for i := 0; i < n; i++ {
			if sets[ep.id][i] {
				ep.neighbors = append(ep.neighbors, i)
			}
		}
	}
}

// Peers returns node id's current outgoing peers (for tests).
func (nw *Network) Peers(id int) []int { return nw.eps[id].peers }

// Neighbors returns node id's full relay set (outgoing ∪ incoming).
func (nw *Network) Neighbors(id int) []int { return nw.eps[id].neighbors }

// SetPartition replaces all installed partition filters with f: when it
// returns true for (from, to), the transfer is silently dropped. Used to
// script network partitions (weak synchrony, §3). Pass nil to heal
// everything. Use AddPartition to compose several concurrent faults.
func (nw *Network) SetPartition(f func(from, to int) bool) {
	if f == nil {
		nw.partitions = nil
		return
	}
	nw.partitions = []func(from, to int) bool{f}
}

// AddPartition installs an additional message filter alongside the
// existing ones; a transfer is dropped when any installed filter matches
// it. Filters that script a bounded window should gate on virtual time
// internally (they are cheap to keep installed after expiry).
func (nw *Network) AddPartition(f func(from, to int) bool) {
	nw.partitions = append(nw.partitions, f)
}

// Partitioned reports whether the installed filters would currently drop
// a transfer from one node to another.
func (nw *Network) Partitioned(from, to int) bool {
	for _, f := range nw.partitions {
		if f(from, to) {
			return true
		}
	}
	return false
}

// SeedFaults (re)seeds the RNG that drives link-fault loss and jitter
// draws. Chaos harnesses call it with the scenario seed so that a run is
// an exact function of (program, scenario). Without an explicit call the
// fault RNG is seeded from the network config's Seed.
func (nw *Network) SeedFaults(seed int64) {
	nw.faultRng = rand.New(rand.NewSource(seed))
}

// AddLinkFault installs a link impairment. Faults accumulate; a transfer
// suffers every matching fault (losses compound, delays add).
func (nw *Network) AddLinkFault(f LinkFault) {
	if nw.faultRng == nil {
		nw.SeedFaults(nw.cfg.Seed)
	}
	nw.faults = append(nw.faults, f)
}

// ClearLinkFaults removes every installed link fault.
func (nw *Network) ClearLinkFaults() { nw.faults = nil }

// AddLimboFault installs an undecidable-message schedule. Limbo faults
// accumulate; a transfer captured by several holds for the longest of
// their draws.
func (nw *Network) AddLimboFault(f LimboFault) {
	if nw.faultRng == nil {
		nw.SeedFaults(nw.cfg.Seed)
	}
	nw.limbos = append(nw.limbos, f)
}

// ClearLimboFaults removes every installed limbo fault. Messages already
// captured stay captured — their release events are scheduled.
func (nw *Network) ClearLimboFaults() { nw.limbos = nil }

// applyLimbo runs the installed limbo faults for one transfer. It
// reports the extra hold to apply and whether the transfer was captured.
func (nw *Network) applyLimbo(from, to int, now time.Duration) (time.Duration, bool) {
	var hold time.Duration
	captured := false
	for i := range nw.limbos {
		f := &nw.limbos[i]
		if f.Active != nil && !f.Active(now) {
			continue
		}
		if f.Match != nil && !f.Match(from, to) {
			continue
		}
		if f.HoldProb < 1 && nw.faultRng.Float64() >= f.HoldProb {
			continue
		}
		h := f.HoldFor
		if f.HoldJitter > 0 {
			h += time.Duration(nw.faultRng.Int63n(int64(f.HoldJitter)))
		}
		if h > hold {
			hold = h
		}
		captured = true
	}
	return hold, captured
}

// applyFaults runs the installed link faults for one transfer at the
// given virtual time. It reports whether the transfer is dropped and, if
// not, the total extra latency to add.
func (nw *Network) applyFaults(from, to int, now time.Duration) (bool, time.Duration) {
	var extra time.Duration
	for i := range nw.faults {
		f := &nw.faults[i]
		if f.Active != nil && !f.Active(now) {
			continue
		}
		if f.Match != nil && !f.Match(from, to) {
			continue
		}
		if f.LossProb > 0 && nw.faultRng.Float64() < f.LossProb {
			return true, 0
		}
		extra += f.ExtraDelay
		if f.ExtraJitter > 0 {
			extra += time.Duration(nw.faultRng.Int63n(int64(f.ExtraJitter)))
		}
	}
	return false, extra
}

// NumNodes returns the network size.
func (nw *Network) NumNodes() int { return len(nw.eps) }

// City returns the city a node is assigned to.
func (nw *Network) City(id int) int { return nw.eps[id].city }

// sawID reports whether the endpoint already processed the message, in
// either cache generation.
func (ep *endpoint) sawID(id crypto.Digest) bool {
	return ep.seen[id] || ep.seenOld[id]
}

// limitCount is the §8.4 relay count for a LimitKey across both cache
// generations.
func (ep *endpoint) limitCount(k string) int {
	return ep.limitSeen[k] + ep.limitOld[k]
}

// maybeRotate ages the suppression caches once per SeenTTL of virtual
// time: the current generation becomes the old one and the previous
// old generation is forgotten.
func (nw *Network) maybeRotate() {
	ttl := nw.cfg.SeenTTL
	if ttl <= 0 {
		return
	}
	if now := nw.sim.Now(); now-nw.lastRotate >= ttl {
		nw.lastRotate = now
		for _, ep := range nw.eps {
			ep.seenOld, ep.seen = ep.seen, make(map[crypto.Digest]bool)
			ep.limitOld, ep.limitSeen = ep.limitSeen, make(map[string]int)
		}
	}
}

// Gossip injects a message originated by node origin: it is sent to all
// of origin's peers and relayed onward per the gossip rules.
func (nw *Network) Gossip(origin int, m Message) {
	nw.maybeRotate()
	ep := nw.eps[origin]
	ep.seen[m.ID()] = true
	if k := m.LimitKey(); k != "" {
		ep.limitSeen[k]++
	}
	nw.relay(origin, -1, m)
}

// Unicast sends a message directly from one node to another (used for
// catch-up fetches, not gossip). Delivery respects bandwidth/latency
// but skips relay.
func (nw *Network) Unicast(from, to int, m Message) {
	nw.send(from, to, m)
}

// relay forwards m from node `from` to all its neighbors except `skip`.
func (nw *Network) relay(from, skip int, m Message) {
	ep := nw.eps[from]
	for _, peer := range ep.neighbors {
		if peer == skip {
			continue
		}
		nw.send(from, peer, m)
	}
}

// send models one point-to-point transfer and schedules delivery.
func (nw *Network) send(from, to int, m Message) {
	now := nw.sim.Now()
	if nw.Partitioned(from, to) {
		return
	}
	var faultDelay time.Duration
	if len(nw.faults) > 0 {
		drop, extra := nw.applyFaults(from, to, now)
		if drop {
			nw.eps[from].msgsLost.Inc()
			nw.totalLost.Inc()
			return
		}
		faultDelay = extra
	}
	// Undecidable-message limbo (Conti et al.): the transfer leaves the
	// sender normally — it is not dropped, and the sender cannot tell —
	// but the adversary withholds delivery until the release instant.
	var limboHold time.Duration
	if len(nw.limbos) > 0 {
		if hold, captured := nw.applyLimbo(from, to, now); captured {
			limboHold = hold
			nw.totalLimbo.Inc()
		}
	}
	src, dst := nw.eps[from], nw.eps[to]
	size := m.WireSize()

	src.bytesSent.Add(uint64(size))
	nw.totalBytes.Add(uint64(size))

	upDone := src.up.transmit(now, size)
	lat := CityLatency(src.city, dst.city)
	if nw.cfg.JitterFrac > 0 {
		j := nw.cfg.JitterFrac * (2*nw.rng.Float64() - 1)
		lat += time.Duration(float64(lat) * j)
	}
	lat += faultDelay
	arrive := upDone + lat
	// Downlink reservation is made against its state at send time; with
	// event-driven delivery this is a standard approximation.
	deliverAt := dst.down.transmit(arrive, size)
	if release := now + limboHold; limboHold > 0 && release > deliverAt {
		deliverAt = release
	}

	nw.sim.After(deliverAt-now, func() {
		nw.deliver(from, to, m)
	})
}

// deliver runs at the receiver when the message finishes arriving.
func (nw *Network) deliver(from, to int, m Message) {
	nw.maybeRotate()
	ep := nw.eps[to]
	ep.bytesReceived.Add(uint64(m.WireSize()))
	if ep.sawID(m.ID()) {
		ep.dupsDropped.Inc()
		nw.totalDups.Inc()
		return
	}
	ep.seen[m.ID()] = true
	ep.msgsReceived.Inc()
	nw.totalMsgs.Inc()

	var verdict Verdict
	if ep.handler != nil {
		verdict = ep.handler.HandleMessage(from, m)
	}
	// Model verification CPU: it occupies the node and delays its relay.
	busyFrom := nw.sim.Now()
	if ep.cpuFree > busyFrom {
		busyFrom = ep.cpuFree
	}
	ep.cpuFree = busyFrom + verdict.CPU
	ep.cpuUsedNs.Add(uint64(verdict.CPU))

	if !verdict.Relay {
		return
	}
	// Per-(sender,round,step) relay limit (§8.4). Messages may allow a
	// higher limit (equivocation evidence needs two copies to travel).
	if k := m.LimitKey(); k != "" {
		limit := 1
		if mr, ok := m.(MultiRelay); ok {
			limit = mr.RelayLimit()
		}
		if ep.limitCount(k) >= limit {
			return
		}
		ep.limitSeen[k]++
	}
	relayDelay := ep.cpuFree - nw.sim.Now()
	if relayDelay < 0 {
		relayDelay = 0
	}
	nw.sim.After(relayDelay, func() {
		nw.relay(to, from, m)
	})
}

// Stats aggregates per-node statistics.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	MsgsReceived  int64
	DupsDropped   int64
	MsgsLost      int64
	CPUUsed       time.Duration
}

// NodeStats returns node id's counters.
func (nw *Network) NodeStats(id int) Stats {
	ep := nw.eps[id]
	return Stats{
		BytesSent:     int64(ep.bytesSent.Load()),
		BytesReceived: int64(ep.bytesReceived.Load()),
		MsgsReceived:  int64(ep.msgsReceived.Load()),
		DupsDropped:   int64(ep.dupsDropped.Load()),
		MsgsLost:      int64(ep.msgsLost.Load()),
		CPUUsed:       time.Duration(ep.cpuUsedNs.Load()),
	}
}

// TotalBytes is the aggregate of bytes sent across the whole network.
func (nw *Network) TotalBytes() int64 { return int64(nw.totalBytes.Load()) }

// TotalMsgs is the aggregate count of first-copy deliveries.
func (nw *Network) TotalMsgs() int64 { return int64(nw.totalMsgs.Load()) }

// TotalLost is the aggregate count of transfers dropped by link faults
// (not partitions).
func (nw *Network) TotalLost() int64 { return int64(nw.totalLost.Load()) }

// TotalLimbo is the aggregate count of transfers held in
// undecidable-message limbo.
func (nw *Network) TotalLimbo() int64 { return int64(nw.totalLimbo.Load()) }

// ResetSeen clears all duplicate-suppression state at once — the
// forced version of what SeenTTL rotation does gradually.
func (nw *Network) ResetSeen() {
	for _, ep := range nw.eps {
		ep.seen = make(map[crypto.Digest]bool)
		ep.seenOld = nil
		ep.limitSeen = make(map[string]int)
		ep.limitOld = nil
	}
}
