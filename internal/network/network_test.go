package network

import (
	"fmt"
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/vtime"
)

// testMsg is a trivial gossip message.
type testMsg struct {
	id    crypto.Digest
	size  int
	limit string
}

func (m *testMsg) WireSize() int     { return m.size }
func (m *testMsg) ID() crypto.Digest { return m.id }
func (m *testMsg) LimitKey() string  { return m.limit }

func msg(tag string, size int) *testMsg {
	return &testMsg{id: crypto.HashBytes("test.msg", []byte(tag)), size: size}
}

// install a relay-everything handler on all nodes, recording receipt times.
func installRecorders(nw *Network, cpu time.Duration) []time.Duration {
	n := nw.NumNodes()
	recv := make([]time.Duration, n)
	for i := range recv {
		recv[i] = -1
	}
	for i := 0; i < n; i++ {
		i := i
		nw.SetHandler(i, HandlerFunc(func(from int, m Message) Verdict {
			if recv[i] < 0 {
				recv[i] = nw.sim.Now()
			}
			return Verdict{Relay: true, CPU: cpu}
		}))
	}
	return recv
}

func TestLatencyTableSane(t *testing.T) {
	// NY <-> London should be tens of ms; symmetric; intra-city small.
	nyLon := CityLatency(0, 1)
	if nyLon < 20*time.Millisecond || nyLon > 60*time.Millisecond {
		t.Fatalf("NY-London latency %v", nyLon)
	}
	if CityLatency(0, 1) != CityLatency(1, 0) {
		t.Fatal("latency not symmetric")
	}
	if CityLatency(3, 3) > 5*time.Millisecond {
		t.Fatal("intra-city latency too high")
	}
	// Antipodal pairs should be slower than nearby ones.
	if CityLatency(0, 4) <= CityLatency(0, 9) { // NY-Sydney vs NY-Toronto
		t.Fatal("distance ordering violated")
	}
	if CityName(0) != "NewYork" {
		t.Fatal("city name lookup broken")
	}
}

func TestGossipReachesEveryone(t *testing.T) {
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 100)
	recv := installRecorders(nw, 0)

	sim.Spawn("origin", func(p *vtime.Proc) {
		nw.Gossip(0, msg("hello", 200))
	})
	sim.Run(time.Minute)

	missing := 0
	for i := 1; i < nw.NumNodes(); i++ {
		if recv[i] < 0 {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d of 99 nodes never received the message", missing)
	}
}

func TestSmallMessagePropagationTime(t *testing.T) {
	// §10.5 / §9: ~200-byte priority messages propagate in about a
	// second; well under λ_priority = 5s.
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 200)
	recv := installRecorders(nw, 0)
	sim.Spawn("origin", func(p *vtime.Proc) {
		nw.Gossip(0, msg("priority", 200))
	})
	sim.Run(time.Minute)

	var worst time.Duration
	for i := 1; i < nw.NumNodes(); i++ {
		if recv[i] > worst {
			worst = recv[i]
		}
	}
	if worst <= 0 || worst > 5*time.Second {
		t.Fatalf("small message worst-case propagation %v", worst)
	}
}

func TestLargeBlockPropagationScalesWithSize(t *testing.T) {
	// Gossiping a 1 MB block at 20 Mbit/s takes ~0.4s per hop per copy;
	// the paper measures ~10s to reach the whole network.
	measure := func(size int) time.Duration {
		sim := vtime.New()
		cfg := DefaultConfig()
		nw := New(sim, cfg, 100)
		recv := installRecorders(nw, 0)
		sim.Spawn("origin", func(p *vtime.Proc) {
			nw.Gossip(0, msg(fmt.Sprintf("block-%d", size), size))
		})
		sim.Run(10 * time.Minute)
		var worst time.Duration
		for i := 1; i < nw.NumNodes(); i++ {
			if recv[i] > worst {
				worst = recv[i]
			}
		}
		return worst
	}
	t1 := measure(1 << 20)
	t10 := measure(10 << 20)
	if t1 < 2*time.Second || t1 > 60*time.Second {
		t.Fatalf("1MB propagation %v, expected ~10s scale", t1)
	}
	if t10 < 3*t1 {
		t.Fatalf("10MB (%v) should be much slower than 1MB (%v)", t10, t1)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 30)
	deliveries := 0
	for i := 0; i < 30; i++ {
		nw.SetHandler(i, HandlerFunc(func(from int, m Message) Verdict {
			deliveries++
			return Verdict{Relay: true}
		}))
	}
	sim.Spawn("origin", func(p *vtime.Proc) {
		nw.Gossip(0, msg("once", 100))
	})
	sim.Run(time.Minute)
	// Each node handles the message at most once (origin never handles).
	if deliveries > 29 {
		t.Fatalf("deliveries = %d, want <= 29", deliveries)
	}
	// And dups must actually have been dropped (the graph has cycles).
	var dups int64
	for i := 0; i < 30; i++ {
		dups += nw.NodeStats(i).DupsDropped
	}
	if dups == 0 {
		t.Fatal("expected duplicate drops in a cyclic gossip graph")
	}
}

func TestNoRelayVerdictStopsPropagation(t *testing.T) {
	sim := vtime.New()
	cfg := DefaultConfig()
	nw := New(sim, cfg, 50)
	received := make([]bool, 50)
	for i := 0; i < 50; i++ {
		i := i
		nw.SetHandler(i, HandlerFunc(func(from int, m Message) Verdict {
			received[i] = true
			return Verdict{Relay: false} // invalid message: do not relay
		}))
	}
	sim.Spawn("origin", func(p *vtime.Proc) {
		nw.Gossip(7, msg("junk", 100))
	})
	sim.Run(time.Minute)
	count := 0
	for _, r := range received {
		if r {
			count++
		}
	}
	// Only the origin's direct neighbors can have seen it.
	if count > 2*cfg.Fanout+4 {
		t.Fatalf("junk reached %d nodes despite no-relay verdicts", count)
	}
}

func TestRelayLimitPerSenderRoundStep(t *testing.T) {
	// Two *different* messages sharing a LimitKey (equivocation): both
	// are delivered to apps that see them, but each node relays only the
	// first, so the second spreads much less.
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 80)
	type seen struct{ a, b bool }
	got := make([]seen, 80)
	for i := 0; i < 80; i++ {
		i := i
		nw.SetHandler(i, HandlerFunc(func(from int, m Message) Verdict {
			tm := m.(*testMsg)
			if tm.size == 111 {
				got[i].a = true
			} else {
				got[i].b = true
			}
			return Verdict{Relay: true}
		}))
	}
	a := &testMsg{id: crypto.HashBytes("ek", []byte("a")), size: 111, limit: "pk5|r1|s1"}
	b := &testMsg{id: crypto.HashBytes("ek", []byte("b")), size: 112, limit: "pk5|r1|s1"}
	sim.Spawn("origin", func(p *vtime.Proc) {
		nw.Gossip(5, a)
		nw.Gossip(5, b)
	})
	sim.Run(time.Minute)

	countA, countB := 0, 0
	for _, s := range got {
		if s.a {
			countA++
		}
		if s.b {
			countB++
		}
	}
	if countA < 70 {
		t.Fatalf("first message reached only %d nodes", countA)
	}
	if countB >= countA {
		t.Fatalf("limited message reached %d >= %d", countB, countA)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// A sender with 8 neighbors pushing a 1MB message must serialize
	// ~8 copies: ~0.42s each at 20 Mbit/s, so the last copy leaves
	// several seconds after the first.
	sim := vtime.New()
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	nw := New(sim, cfg, 20)
	recv := installRecorders(nw, 0)
	sim.Spawn("origin", func(p *vtime.Proc) {
		nw.Gossip(0, msg("big", 1<<20))
	})
	sim.Run(time.Minute)

	neighbors := nw.eps[0].neighbors
	if len(neighbors) < 4 {
		t.Fatalf("origin has %d neighbors", len(neighbors))
	}
	var first, last time.Duration = time.Hour, 0
	for _, p := range neighbors {
		if recv[p] < 0 {
			continue
		}
		if recv[p] < first {
			first = recv[p]
		}
		if recv[p] > last {
			last = recv[p]
		}
	}
	txTime := 420 * time.Millisecond
	if last-first < time.Duration(len(neighbors)-2)*txTime/2 {
		t.Fatalf("uplink not serialized: first %v last %v over %d peers", first, last, len(neighbors))
	}
}

func TestSharedVMBandwidthSlowsDelivery(t *testing.T) {
	run := func(shared bool) time.Duration {
		sim := vtime.New()
		cfg := DefaultConfig()
		cfg.JitterFrac = 0
		if shared {
			cfg.ProcsPerVM = 10
			cfg.VMBps = cfg.UplinkBps // 10 procs share one 20 Mbit/s NIC
		}
		nw := New(sim, cfg, 60)
		recv := installRecorders(nw, 0)
		sim.Spawn("origins", func(p *vtime.Proc) {
			// Several origins transmit large messages at once.
			for o := 0; o < 10; o++ {
				nw.Gossip(o, msg(fmt.Sprintf("m%d", o), 1<<20))
			}
		})
		sim.Run(10 * time.Minute)
		var worst time.Duration
		for _, r := range recv {
			if r > worst {
				worst = r
			}
		}
		return worst
	}
	solo := run(false)
	shared := run(true)
	if shared < 2*solo {
		t.Fatalf("shared-VM run (%v) should be much slower than dedicated (%v)", shared, solo)
	}
}

func TestCPUChargingDelaysRelay(t *testing.T) {
	run := func(cpu time.Duration) time.Duration {
		sim := vtime.New()
		cfg := DefaultConfig()
		cfg.JitterFrac = 0
		nw := New(sim, cfg, 60)
		recv := installRecorders(nw, cpu)
		sim.Spawn("origin", func(p *vtime.Proc) {
			nw.Gossip(0, msg("cpu", 300))
		})
		sim.Run(time.Minute)
		var worst time.Duration
		for i := 1; i < 60; i++ {
			if recv[i] > worst {
				worst = recv[i]
			}
		}
		return worst
	}
	fast := run(0)
	slow := run(50 * time.Millisecond)
	if slow <= fast {
		t.Fatalf("CPU cost should delay propagation: %v vs %v", slow, fast)
	}
	// CPU accounting recorded.
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 10)
	installRecorders(nw, 5*time.Millisecond)
	sim.Spawn("o", func(p *vtime.Proc) { nw.Gossip(0, msg("x", 100)) })
	sim.Run(time.Minute)
	var cpu time.Duration
	for i := 0; i < 10; i++ {
		cpu += nw.NodeStats(i).CPUUsed
	}
	if cpu == 0 {
		t.Fatal("no CPU recorded")
	}
}

func TestWeightedPeerSelection(t *testing.T) {
	sim := vtime.New()
	cfg := DefaultConfig()
	nw := New(sim, cfg, 100)
	w := make([]uint64, 100)
	for i := range w {
		w[i] = 1
	}
	w[7] = 1000 // a whale
	nw.SetWeights(w)

	inDegree := make([]int, 100)
	for i := 0; i < 100; i++ {
		for _, p := range nw.Peers(i) {
			inDegree[p]++
		}
	}
	avg := 0
	for i, d := range inDegree {
		if i != 7 {
			avg += d
		}
	}
	if inDegree[7] < 3*avg/99 {
		t.Fatalf("whale in-degree %d vs average %d/99", inDegree[7], avg)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		sim := vtime.New()
		nw := New(sim, DefaultConfig(), 50)
		installRecorders(nw, time.Millisecond)
		sim.Spawn("o", func(p *vtime.Proc) {
			nw.Gossip(0, msg("d1", 500))
			nw.Gossip(3, msg("d2", 700))
		})
		sim.Run(time.Minute)
		return nw.TotalBytes(), sim.EventCount
	}
	b1, e1 := run()
	b2, e2 := run()
	if b1 != b2 || e1 != e2 {
		t.Fatalf("nondeterministic: bytes %d/%d events %d/%d", b1, b2, e1, e2)
	}
}

func TestStatsAccounting(t *testing.T) {
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 20)
	installRecorders(nw, 0)
	sim.Spawn("o", func(p *vtime.Proc) { nw.Gossip(0, msg("s", 1000)) })
	sim.Run(time.Minute)
	if nw.TotalMsgs() == 0 || nw.TotalBytes() == 0 {
		t.Fatal("global stats empty")
	}
	st := nw.NodeStats(0)
	if st.BytesSent == 0 {
		t.Fatal("origin sent nothing")
	}
	var recvTotal int64
	for i := 0; i < 20; i++ {
		recvTotal += nw.NodeStats(i).BytesReceived
	}
	if recvTotal == 0 {
		t.Fatal("nothing received")
	}
}

func TestResetSeenAllowsReGossip(t *testing.T) {
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 20)
	count := 0
	for i := 0; i < 20; i++ {
		nw.SetHandler(i, HandlerFunc(func(from int, m Message) Verdict {
			count++
			return Verdict{Relay: true}
		}))
	}
	m := msg("repeat", 100)
	sim.Spawn("o", func(p *vtime.Proc) {
		nw.Gossip(0, m)
		p.Sleep(10 * time.Second)
		first := count
		nw.ResetSeen()
		nw.Gossip(0, m)
		p.Sleep(10 * time.Second)
		if count <= first {
			t.Errorf("re-gossip after reset delivered nothing (%d then %d)", first, count)
		}
	})
	sim.Run(time.Minute)
}

func TestUnicast(t *testing.T) {
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 10)
	got := false
	relayedTo := 0
	for i := 0; i < 10; i++ {
		i := i
		nw.SetHandler(i, HandlerFunc(func(from int, m Message) Verdict {
			if i == 4 {
				got = true
			} else {
				relayedTo++
			}
			return Verdict{Relay: false}
		}))
	}
	sim.Spawn("o", func(p *vtime.Proc) { nw.Unicast(1, 4, msg("uni", 100)) })
	sim.Run(time.Minute)
	if !got {
		t.Fatal("unicast not delivered")
	}
	if relayedTo != 0 {
		t.Fatal("unicast leaked to other nodes")
	}
}

func BenchmarkGossip1000Nodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := vtime.New()
		nw := New(sim, DefaultConfig(), 1000)
		installRecorders(nw, 0)
		sim.Spawn("o", func(p *vtime.Proc) { nw.Gossip(0, msg(fmt.Sprint(i), 300)) })
		sim.Run(time.Minute)
	}
}

// multiMsg allows two relays per limit key (equivocation evidence).
type multiMsg struct {
	testMsg
}

func (m *multiMsg) RelayLimit() int { return 2 }

func TestMultiRelayLimit(t *testing.T) {
	sim := vtime.New()
	nw := New(sim, DefaultConfig(), 60)
	got := make(map[int]int) // size -> nodes that saw it
	for i := 0; i < 60; i++ {
		nw.SetHandler(i, HandlerFunc(func(from int, m Message) Verdict {
			got[m.WireSize()]++
			return Verdict{Relay: true}
		}))
	}
	mk := func(tag string, size int) *multiMsg {
		return &multiMsg{testMsg{id: crypto.HashBytes("mr", []byte(tag)), size: size, limit: "same-key"}}
	}
	sim.Spawn("o", func(p *vtime.Proc) {
		nw.Gossip(3, mk("a", 101))
		nw.Gossip(3, mk("b", 102))
		nw.Gossip(3, mk("c", 103))
	})
	sim.Run(time.Minute)

	// With a relay limit of 2 per key, the first two variants flood; the
	// third reaches only the origin's direct neighbors.
	if got[101] < 50 || got[102] < 50 {
		t.Fatalf("first two variants under-delivered: %d/%d", got[101], got[102])
	}
	if got[103] >= got[101]/2 {
		t.Fatalf("third variant should be suppressed: %d vs %d", got[103], got[101])
	}
}
