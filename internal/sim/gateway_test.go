package sim

import (
	"testing"
	"time"

	"algorand/internal/gateway"
	"algorand/internal/vtime"
)

// TestGatewayTierFollowsChain is the basic access-tier scenario: a
// consensus cluster plus two gateways, all client load entering
// through the gateways. Consensus nodes see zero client submissions;
// the gateways' read models follow the committed chain via
// CommitAnnounce quorums; routed transactions commit.
func TestGatewayTierFollowsChain(t *testing.T) {
	cfg := DefaultConfig(20, 6)
	cfg.WeightEach = 1 << 16
	cfg.Gateways = 2
	cfg.GatewayCfg = gateway.Config{
		FlushInterval:  100 * time.Millisecond,
		ResendInterval: 5 * time.Second,
	}
	c := NewCluster(cfg)
	c.GatewayWorkload(40, 7)
	c.Run()

	if err := c.AgreementCheck(); err != nil {
		t.Fatalf("agreement: %v", err)
	}
	committed := c.CommittedTxCount(cfg.Rounds)
	if committed == 0 {
		t.Fatal("no gateway-routed transactions committed")
	}
	ws := c.WorkloadStats()
	if ws.Admitted == 0 {
		t.Fatal("workload admitted nothing")
	}
	t.Logf("workload: %+v, committed %d", ws, committed)
	for i := 0; i < c.NumGateways(); i++ {
		st := c.Gateway(i).Stats()
		t.Logf("gateway %d: head=%d applied=%d announces=%d routed=%d pending=%d",
			i, st.HeadRound, st.BlocksApplied, st.Announces, st.TxsRouted, st.Pending)
		if st.HeadRound+2 < cfg.Rounds {
			t.Errorf("gateway %d read model stalled at round %d of %d", i, st.HeadRound, cfg.Rounds)
		}
		if st.Announces == 0 {
			t.Errorf("gateway %d heard no commit announces", i)
		}
		if i == 0 && st.Admitted == 0 {
			t.Errorf("gateway %d admitted nothing", i)
		}
		// Bounded state: the mempool drains as blocks commit.
		if st.Pending > int(st.Admitted) {
			t.Errorf("gateway %d pending %d exceeds admitted %d", i, st.Pending, st.Admitted)
		}
	}
}

// TestGatewayPartitionRecovery isolates one gateway mid-run: clients
// keep submitting to it (admission still works), nothing routes out,
// and after the heal the gateway must gap-fill its read model and
// re-send its still-pending transactions so they commit.
func TestGatewayPartitionRecovery(t *testing.T) {
	const n = 20
	cfg := DefaultConfig(n, 10)
	cfg.WeightEach = 1 << 16
	cfg.Gateways = 2
	cfg.GatewayCfg = gateway.Config{
		FlushInterval:  100 * time.Millisecond,
		ResendInterval: 3 * time.Second,
	}
	c := NewCluster(cfg)
	c.GatewayWorkload(40, 11)

	// Cut gateway 0 (network id n) off from everyone for a window long
	// enough to span complete rounds, then heal.
	gwID := n
	c.Sim.Spawn("partitioner", func(p *vtime.Proc) {
		p.Sleep(20 * time.Second)
		c.Net.AddPartition(func(from, to int) bool {
			return from == gwID || to == gwID
		})
		p.Sleep(60 * time.Second)
		c.Net.SetPartition(nil)
	})
	c.Run()

	if err := c.AgreementCheck(); err != nil {
		t.Fatalf("agreement: %v", err)
	}
	st := c.Gateway(0).Stats()
	t.Logf("partitioned gateway: head=%d applied=%d chainFills=%d resent=%d pending=%d",
		st.HeadRound, st.BlocksApplied, st.ChainFills, st.Resent, st.Pending)
	if st.HeadRound+3 < cfg.Rounds {
		t.Errorf("partitioned gateway stalled at round %d of %d after heal", st.HeadRound, cfg.Rounds)
	}
	if st.Resent == 0 {
		t.Error("no pending transactions were re-sent after the partition")
	}
	if committed := c.CommittedTxCount(cfg.Rounds); committed == 0 {
		t.Error("nothing committed")
	}
	if err := c.AgreementCheck(); err != nil {
		t.Fatalf("agreement after heal: %v", err)
	}
}

// TestGatewayCrashDoesNotTouchConsensus halts a gateway outright; the
// consensus cluster and the surviving gateway must be unaffected.
func TestGatewayCrashDoesNotTouchConsensus(t *testing.T) {
	cfg := DefaultConfig(16, 6)
	cfg.WeightEach = 1 << 16
	cfg.Gateways = 2
	cfg.GatewayCfg = gateway.Config{FlushInterval: 100 * time.Millisecond}
	c := NewCluster(cfg)
	c.GatewayWorkload(30, 13)
	c.Sim.Spawn("gateway-killer", func(p *vtime.Proc) {
		p.Sleep(15 * time.Second)
		c.Gateway(1).Halt()
	})
	c.Run()

	if err := c.AgreementCheck(); err != nil {
		t.Fatalf("agreement: %v", err)
	}
	final, _ := c.FinalityRate()
	if final == 0 {
		t.Error("no final rounds with a crashed gateway")
	}
	st := c.Gateway(0).Stats()
	if st.HeadRound+2 < cfg.Rounds {
		t.Errorf("surviving gateway stalled at round %d of %d", st.HeadRound, cfg.Rounds)
	}
}
