// Package sim builds whole Algorand deployments on the virtual-time
// runtime and measures them: N users on the simulated gossip network,
// each running the full node stack, with optional adversaries. It is
// the workhorse behind every experiment in EXPERIMENTS.md.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/diskfault"
	"algorand/internal/gateway"
	"algorand/internal/ledger"
	"algorand/internal/ledger/diskstore"
	"algorand/internal/metrics"
	"algorand/internal/network"
	"algorand/internal/node"
	"algorand/internal/params"
	"algorand/internal/trace"
	"algorand/internal/txflow"
	"algorand/internal/vtime"
)

// Config describes a deployment.
type Config struct {
	// N is the number of users.
	N int
	// WeightEach gives every user this many currency units (the paper's
	// evaluation assigns equal shares, maximizing message load).
	WeightEach uint64
	// Weights, when non-nil, assigns per-user balances instead of
	// WeightEach (len must equal N). Lets experiments model skewed
	// wealth distributions.
	Weights []uint64
	// Params are the protocol parameters (scaled for simulation size).
	Params params.Params
	// Net configures the gossip network.
	Net network.Config
	// LedgerCfg configures seed rotation and look-back.
	LedgerCfg ledger.Config
	// UseRealCrypto switches from the Fast provider (with modeled CPU
	// costs) to full Ed25519+ECVRF.
	UseRealCrypto bool
	// ChargeCrypto charges the provider's modeled CPU costs on message
	// validation (recommended with Fast).
	ChargeCrypto bool
	// Rounds to run before stopping.
	Rounds uint64
	// Seed drives all randomness.
	Seed int64
	// RecoveryInterval for §8.2 (default 1h).
	RecoveryInterval time.Duration
	// ShardCount for §8.3 storage sharding (0 = store everything).
	ShardCount uint64
	// PipelineFinalStep enables the §10.2 final-step pipelining
	// optimization on every node.
	PipelineFinalStep bool
	// CheckpointInterval makes every node write a state checkpoint
	// (full account table + Merkle root + certificate) each time its
	// chain commits a round on this grid (0 = no checkpoints). A
	// restarted node then re-bases onto the newest verified checkpoint
	// and replays only the delta — see RestartNodeViaSnapshotSync and
	// the snapshot-first path in RestartNode. Fast sync verifies
	// checkpoint certificates from genesis context alone, so the
	// checkpointed round must fall inside the first seed-refresh epoch:
	// keep LedgerCfg.SeedRefreshInterval above the chain length a
	// snapshot test expects to checkpoint.
	CheckpointInterval uint64
	// TxFlow overrides every node's ingestion-pipeline configuration
	// (zero value = txflow defaults). Chaos runs shrink the pool bounds
	// here to force eviction churn.
	TxFlow txflow.Config
	// Horizon bounds virtual time (0 = generous default).
	Horizon time.Duration
	// DataDir, when non-empty, gives every node a durable on-disk
	// archive (internal/ledger/diskstore) under DataDir/node-<i>.
	// CrashNode then models a SIGKILL that loses memory but keeps the
	// data directory, and RestartNode recovers from the disk — torn-tail
	// truncation, checksum checks and certificate re-verification
	// included — before delta catch-up from peers.
	DataDir string
	// DiskFS overrides the filesystem the archives write through (nil =
	// the real one). Tests pass a diskfault.Injector to script torn
	// writes, fsync failures and corrupt-sector reads.
	DiskFS diskfault.FS
	// Diskless, with DataDir set, marks nodes that nevertheless run
	// without a durable archive (len must equal N): a mixed
	// durable/diskless fleet, as churn scenarios use. A diskless node's
	// restart recovers from its crashed process's in-memory store, like
	// every node does when DataDir is empty.
	Diskless []bool
	// Gateways adds that many access-tier gateway nodes (see
	// internal/gateway) to the deployment, at network ids N..N+G-1.
	// They hold zero stake — the money-weighted peer selection keeps
	// them out of the consensus gossip core while the undirected
	// neighbor union still connects each of them to several consensus
	// nodes — and every consensus node announces its commits
	// (node.Config.AnnounceCommits) so the gateways' read models can
	// follow the chain.
	Gateways int
	// GatewayCfg overrides gateway sizing (Consensus and per-gateway
	// Metrics/Done are always filled in by NewCluster).
	GatewayCfg gateway.Config
}

// DefaultConfig returns a simulation with the paper's structure at
// reduced absolute scale: committee sizes are *constant in the number
// of users* — exactly the property that makes BA⋆ scale (§8.4) — but
// smaller than the paper's 2,000/10,000 so that a laptop can simulate
// whole networks. The thresholds and timeouts are the paper's. Note
// the smaller committees keep proportionally more selection variance
// than τ_step = 2,000 (quantified in internal/committee), so scaled
// runs see occasional tentative or slow rounds where the paper's
// parameters would not.
func DefaultConfig(n int, rounds uint64) Config {
	p := params.Default()
	p.TauStep = 40
	p.TauFinal = 80
	p.TauProposer = 8
	if p.TauProposer > uint64(n)/2 {
		p.TauProposer = uint64(n)/2 + 1
	}
	return Config{
		N:          n,
		WeightEach: 10,
		Params:     p,
		Net:        network.DefaultConfig(),
		LedgerCfg: ledger.Config{
			SeedRefreshInterval: 10,
			LookbackRounds:      0,
			MaxTimestampSkew:    time.Hour,
		},
		ChargeCrypto: true,
		Rounds:       rounds,
		Seed:         1,
	}
}

// Cluster is a running deployment.
type Cluster struct {
	Cfg      Config
	Sim      *vtime.Sim
	Net      *network.Network
	Provider crypto.Provider
	Nodes    []*node.Node
	ids      []crypto.Identity
	Genesis  map[crypto.PublicKey]uint64
	Seed0    crypto.Digest
	nodeCfg  node.Config
	archives []*diskstore.Store
	// Per-node observability: every node gets its own metrics registry
	// and round tracer (a restarted slot gets fresh ones, as a fresh
	// process would). Access via Registry(i)/Tracer(i).
	registries []*metrics.Registry
	tracers    []*trace.Tracer
	// Access tier (Config.Gateways). Gateway i has network id N+i;
	// access it via Gateway(i). gwRegistries parallels it.
	gateways     []*gateway.Gateway
	gwRegistries []*metrics.Registry
	// workload retry/backoff bookkeeping (see Workload).
	workStats *WorkloadStats
}

// NumGateways reports the access-tier size.
func (c *Cluster) NumGateways() int { return len(c.gateways) }

// Gateway returns access-tier node i (0-based; its network id is N+i).
func (c *Cluster) Gateway(i int) *gateway.Gateway { return c.gateways[i] }

// GatewayRegistry returns gateway i's metrics registry.
func (c *Cluster) GatewayRegistry(i int) *metrics.Registry { return c.gwRegistries[i] }

// Registry returns node i's metrics registry: the single place that
// node's BA⋆, txflow, trace and round counters are recorded.
func (c *Cluster) Registry(i int) *metrics.Registry { return c.registries[i] }

// Tracer returns node i's per-round phase tracer.
func (c *Cluster) Tracer(i int) *trace.Tracer { return c.tracers[i] }

// NewCluster builds the deployment (without starting node processes).
func NewCluster(cfg Config) *Cluster {
	if cfg.N <= 0 {
		panic("sim: N must be positive")
	}
	if cfg.WeightEach == 0 {
		cfg.WeightEach = 10
	}
	c := &Cluster{
		Cfg:   cfg,
		Sim:   vtime.New(),
		Seed0: crypto.HashUint64("sim.genesis.seed", uint64(cfg.Seed)),
	}
	if cfg.UseRealCrypto {
		c.Provider = crypto.NewReal()
	} else {
		c.Provider = crypto.NewFast()
	}
	netCfg := cfg.Net
	netCfg.Seed = cfg.Seed
	// The network carries consensus nodes at ids 0..N-1 and gateways at
	// N..N+G-1. Gateways get weight zero: money-weighted peer selection
	// then keeps the consensus core's topology essentially unchanged
	// while each gateway still picks (and is therefore neighbored with)
	// several weighted consensus nodes.
	c.Net = network.New(c.Sim, netCfg, cfg.N+cfg.Gateways)

	if cfg.Weights != nil && len(cfg.Weights) != cfg.N {
		panic("sim: len(Weights) must equal N")
	}
	if cfg.Diskless != nil && len(cfg.Diskless) != cfg.N {
		panic("sim: len(Diskless) must equal N")
	}
	c.Genesis = make(map[crypto.PublicKey]uint64, cfg.N)
	weights := make([]uint64, cfg.N+cfg.Gateways)
	for i := 0; i < cfg.N; i++ {
		id := c.Provider.NewIdentity(crypto.SeedFromUint64(uint64(cfg.Seed)<<32 | uint64(i)))
		c.ids = append(c.ids, id)
		w := cfg.WeightEach
		if cfg.Weights != nil {
			w = cfg.Weights[i]
		}
		c.Genesis[id.PublicKey()] = w
		weights[i] = w
	}
	c.Net.SetWeights(weights)

	c.nodeCfg = node.Config{
		Params:             cfg.Params,
		LedgerCfg:          cfg.LedgerCfg,
		ChargeCrypto:       cfg.ChargeCrypto,
		Fetch:              c.fetch,
		RecoveryInterval:   cfg.RecoveryInterval,
		ShardCount:         cfg.ShardCount,
		PipelineFinalStep:  cfg.PipelineFinalStep,
		CheckpointInterval: cfg.CheckpointInterval,
		TxFlow:             cfg.TxFlow,
		AnnounceCommits:    cfg.Gateways > 0,
	}
	c.archives = make([]*diskstore.Store, cfg.N)
	c.registries = make([]*metrics.Registry, cfg.N)
	c.tracers = make([]*trace.Tracer, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodeCfg := c.instrumentedNodeCfg(i)
		if cfg.DataDir != "" && !(cfg.Diskless != nil && cfg.Diskless[i]) {
			ds, err := diskstore.Open(c.nodeDataDir(i), c.archiveOptions(i))
			if err != nil {
				panic(fmt.Sprintf("sim: opening archive for node %d: %v", i, err))
			}
			c.archives[i] = ds
			nodeCfg.Archive = ds
		}
		n := node.New(i, c.Sim, c.Net, c.Provider, c.ids[i], nodeCfg, c.Genesis, c.Seed0)
		n.StopAfterRound = cfg.Rounds
		c.Nodes = append(c.Nodes, n)
	}
	for i := 0; i < cfg.Gateways; i++ {
		gwCfg := cfg.GatewayCfg
		if gwCfg.Consensus == nil {
			gwCfg.Consensus = make([]int, cfg.N)
			for j := range gwCfg.Consensus {
				gwCfg.Consensus[j] = j
			}
		}
		if gwCfg.Flow.Now == nil {
			gwCfg.Flow.Now = c.Sim.Now
		}
		// The read model verifies certificates under the same protocol
		// and ledger parameters the consensus nodes run.
		gwCfg.Committee = node.CommitteeParamsFor(cfg.Params)
		gwCfg.LedgerCfg = cfg.LedgerCfg
		reg := metrics.NewRegistry()
		gwCfg.Metrics = reg
		gwCfg.Flow.Metrics = nil // New fills it with reg
		gwCfg.Done = c.allNodesDone
		gw := gateway.New(cfg.N+i, c.Sim, c.Net, c.Provider, gwCfg, c.Genesis, c.Seed0)
		c.gateways = append(c.gateways, gw)
		c.gwRegistries = append(c.gwRegistries, reg)
	}
	return c
}

// allNodesDone reports whether every consensus node has finished its
// configured rounds (or halted) — the gateways' wind-down signal.
func (c *Cluster) allNodesDone() bool {
	for _, n := range c.Nodes {
		if !n.Done() {
			return false
		}
	}
	return true
}

// instrumentedNodeCfg clones the cluster node config with a fresh
// registry and tracer for slot i (also replacing any previous ones —
// a restarted slot starts its observability from zero, like a fresh
// process).
func (c *Cluster) instrumentedNodeCfg(i int) node.Config {
	nodeCfg := c.nodeCfg
	c.registries[i] = metrics.NewRegistry()
	c.tracers[i] = trace.New(c.Sim.Now, 0)
	nodeCfg.Metrics = c.registries[i]
	nodeCfg.Tracer = c.tracers[i]
	return nodeCfg
}

// nodeDataDir is node i's archive directory under Config.DataDir.
func (c *Cluster) nodeDataDir(i int) string {
	return filepath.Join(c.Cfg.DataDir, fmt.Sprintf("node-%d", i))
}

func (c *Cluster) archiveOptions(i int) diskstore.Options {
	return diskstore.Options{
		FS:         c.Cfg.DiskFS,
		ShardIndex: uint64(i),
		ShardCount: c.Cfg.ShardCount,
	}
}

// Archive returns node i's durable store (nil without Config.DataDir).
func (c *Cluster) Archive(i int) *diskstore.Store { return c.archives[i] }

// OpenArchiveOffline re-opens node i's data directory with a fresh
// recovery scan, independent of the node's live handle (close that
// first via CloseArchives). The caller owns Close on the result.
func (c *Cluster) OpenArchiveOffline(i int) (*diskstore.Store, error) {
	if c.Cfg.DataDir == "" {
		return nil, fmt.Errorf("sim: no DataDir configured")
	}
	return diskstore.Open(c.nodeDataDir(i), c.archiveOptions(i))
}

// CloseArchives closes every open archive (end of a durable run, before
// inspecting the data directories offline).
func (c *Cluster) CloseArchives() error {
	var first error
	for _, ds := range c.archives {
		if ds == nil {
			continue
		}
		if err := ds.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CrashNode simulates a crash of node i: it goes silent immediately and
// its process winds down. The node's Store survives (the machine's
// disk); RestartNode builds a replacement from it.
func (c *Cluster) CrashNode(i int) { c.Nodes[i].Halt() }

// RestartNode replaces a crashed node i with a fresh node in the same
// network slot: the replacement replays the crashed node's archive
// (validating every certificate), catches the rest up from peers, and
// rejoins consensus. syncBudget bounds the rejoin phase. It returns the
// replacement (also installed in c.Nodes) and how many rounds were
// restored from the archive.
func (c *Cluster) RestartNode(i int, syncBudget time.Duration) (*node.Node, uint64, error) {
	if c.archives[i] != nil {
		// True disk recovery: drop the crashed process's in-memory state
		// entirely, close its archive handle, and re-open the data
		// directory — running the full recovery scan (torn-tail
		// truncation, checksum checks) before certificate re-verification.
		c.archives[i].Close()
		ds, err := diskstore.Open(c.nodeDataDir(i), c.archiveOptions(i))
		if err != nil {
			return nil, 0, err
		}
		c.archives[i] = ds
		return c.restartWith(i, ds.Recovered(), ds, syncBudget)
	}
	return c.restartWith(i, c.Nodes[i].Store(), nil, syncBudget)
}

// RestartNodeFromStore is RestartNode with an explicit archive to
// restore from (e.g. a tampered copy, for adversarial tests); the
// replacement gets no durable archive. If the archive fails validation
// the replacement is installed but not started.
func (c *Cluster) RestartNodeFromStore(i int, src *ledger.Store, syncBudget time.Duration) (*node.Node, uint64, error) {
	return c.restartWith(i, src, nil, syncBudget)
}

func (c *Cluster) restartWith(i int, src *ledger.Store, archive *diskstore.Store, syncBudget time.Duration) (*node.Node, uint64, error) {
	old := c.Nodes[i]
	if !old.Halted() {
		old.Halt()
	}
	nodeCfg := c.instrumentedNodeCfg(i)
	nodeCfg.Archive = archive
	n := node.New(i, c.Sim, c.Net, c.Provider, c.ids[i], nodeCfg, c.Genesis, c.Seed0)
	n.StopAfterRound = c.Cfg.Rounds
	c.Nodes[i] = n
	// Snapshot-first: when the recovered archive carries a state
	// checkpoint, re-base onto it (after re-verifying its certificate
	// and Merkle root — the disk is trusted no more than a peer) so the
	// block replay below covers only the delta. A checkpoint failing
	// verification is simply ignored: the ledger is untouched and the
	// full genesis replay beneath remains the fallback.
	if archive != nil {
		if chk, ok := archive.Checkpoint(); ok {
			n.RestoreFromCheckpoint(chk)
		}
	}
	restored, err := n.RestoreFromArchive(src)
	if err != nil {
		return n, restored, err
	}
	n.StartAfterSync(syncBudget)
	return n, restored, nil
}

// RestartNodeViaSnapshotSync replaces node i with a fresh diskless
// replacement that rejoins snapshot-first: it fetches the newest state
// checkpoint from peers, verifies certificate and Merkle root against
// genesis-derived committee context, re-bases, and replays only the
// delta through §8.3 catch-up — falling back transparently to full
// genesis catch-up when no peer serves a usable snapshot.
func (c *Cluster) RestartNodeViaSnapshotSync(i int, syncBudget time.Duration) *node.Node {
	old := c.Nodes[i]
	if !old.Halted() {
		old.Halt()
	}
	nodeCfg := c.instrumentedNodeCfg(i)
	n := node.New(i, c.Sim, c.Net, c.Provider, c.ids[i], nodeCfg, c.Genesis, c.Seed0)
	n.StopAfterRound = c.Cfg.Rounds
	c.Nodes[i] = n
	n.StartAfterSnapshotSync(syncBudget)
	return n
}

// fetch resolves a block hash from any node in the deployment,
// modeling the paper's "obtain it from other users" (§7.1).
func (c *Cluster) fetch(h crypto.Digest) (*ledger.Block, bool) {
	for _, n := range c.Nodes {
		if b, ok := n.Ledger().BlockOfHash(h); ok {
			return b, true
		}
	}
	return nil, false
}

// Identity exposes user i's identity (for crafting transactions).
func (c *Cluster) Identity(i int) crypto.Identity { return c.ids[i] }

// Run starts every node and runs the simulation to completion (all
// nodes stopped) or the horizon.
func (c *Cluster) Run() time.Duration {
	for _, n := range c.Nodes {
		n.Start()
	}
	for _, gw := range c.gateways {
		gw.Start()
	}
	horizon := c.Cfg.Horizon
	if horizon == 0 {
		perRound := c.Cfg.Params.LambdaBlock + c.Cfg.Params.LambdaStep*time.Duration(c.Cfg.Params.MaxSteps+6)
		horizon = time.Duration(c.Cfg.Rounds+2)*perRound + time.Hour
	}
	return c.Sim.Run(horizon)
}

// --- Measurement helpers -------------------------------------------------

// Percentiles summarizes a sample the way the paper's figures do:
// min / 25th / median / 75th / max.
type Percentiles struct {
	Min, P25, Median, P75, Max time.Duration
	N                          int
}

// String formats the summary.
func (p Percentiles) String() string {
	return fmt.Sprintf("min %v p25 %v med %v p75 %v max %v (n=%d)",
		p.Min.Round(time.Millisecond), p.P25.Round(time.Millisecond),
		p.Median.Round(time.Millisecond), p.P75.Round(time.Millisecond),
		p.Max.Round(time.Millisecond), p.N)
}

// Summarize computes percentile statistics over a sample.
func Summarize(sample []time.Duration) Percentiles {
	if len(sample) == 0 {
		return Percentiles{}
	}
	s := append([]time.Duration(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		idx := int(q * float64(len(s)-1))
		return s[idx]
	}
	return Percentiles{
		Min: s[0], P25: at(0.25), Median: at(0.5), P75: at(0.75), Max: s[len(s)-1],
		N: len(s),
	}
}

// RoundLatencies returns, for the given round, every node's round
// completion time (End - Start), the quantity the paper's Figures 5, 6
// and 8 plot.
func (c *Cluster) RoundLatencies(round uint64) []time.Duration {
	var out []time.Duration
	for _, n := range c.Nodes {
		for _, st := range n.Stats {
			if st.Round == round && st.End > st.Start {
				out = append(out, st.End-st.Start)
			}
		}
	}
	return out
}

// AllRoundLatencies pools completion times across rounds [from, to].
func (c *Cluster) AllRoundLatencies(from, to uint64) []time.Duration {
	var out []time.Duration
	for r := from; r <= to; r++ {
		out = append(out, c.RoundLatencies(r)...)
	}
	return out
}

// PhaseBreakdown is the Figure 7 decomposition of a round.
type PhaseBreakdown struct {
	BlockProposal   Percentiles // time to obtain the proposed block
	BAWithoutFinal  Percentiles // reduction + BinaryBA⋆
	FinalStep       Percentiles // the final confirmation step
	RoundCompletion Percentiles
}

// Phases computes the per-phase timing distribution for a round.
func (c *Cluster) Phases(round uint64) PhaseBreakdown {
	var prop, ba, fin, all []time.Duration
	for _, n := range c.Nodes {
		for _, st := range n.Stats {
			if st.Round != round || st.End == 0 {
				continue
			}
			prop = append(prop, st.ProposalDone-st.Start)
			ba = append(ba, st.BinaryDone-st.ProposalDone)
			fin = append(fin, st.End-st.BinaryDone)
			all = append(all, st.End-st.Start)
		}
	}
	return PhaseBreakdown{
		BlockProposal:   Summarize(prop),
		BAWithoutFinal:  Summarize(ba),
		FinalStep:       Summarize(fin),
		RoundCompletion: Summarize(all),
	}
}

// AgreementCheck verifies the safety property across the deployment:
// at every round all nodes that completed it committed the same block.
// It returns an error describing the first divergence.
func (c *Cluster) AgreementCheck() error {
	byRound := make(map[uint64]crypto.Digest)
	for _, n := range c.Nodes {
		for _, st := range n.Stats {
			if st.End == 0 {
				continue
			}
			if prev, ok := byRound[st.Round]; ok {
				if prev != st.Value {
					return fmt.Errorf("round %d: node %d committed %v, others %v",
						st.Round, n.ID, st.Value, prev)
				}
			} else {
				byRound[st.Round] = st.Value
			}
		}
	}
	return nil
}

// FinalityRate returns the fraction of completed rounds that reached
// final consensus, and the fraction committing empty blocks.
func (c *Cluster) FinalityRate() (final, empty float64) {
	var total, fin, emp int
	for _, n := range c.Nodes {
		for _, st := range n.Stats {
			if st.End == 0 {
				continue
			}
			total++
			if st.Final {
				fin++
			}
			if st.Empty {
				emp++
			}
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(fin) / float64(total), float64(emp) / float64(total)
}

// CommittedPayloadBytes returns the total transaction payload committed
// on node 0's chain through the given round (for throughput numbers).
func (c *Cluster) CommittedPayloadBytes(through uint64) int64 {
	l := c.Nodes[0].Ledger()
	var total int64
	for r := uint64(1); r <= through; r++ {
		if b, ok := l.BlockAt(r); ok {
			total += int64(len(b.Txns)*ledger.TxWireSize + b.PayloadPadding)
		}
	}
	return total
}

// BandwidthPerNode returns each node's average send rate in bits/sec
// over the run (§10.3 reports ~10 Mbit/s at 50k users and 1MB blocks).
func (c *Cluster) BandwidthPerNode(elapsed time.Duration) []float64 {
	out := make([]float64, len(c.Nodes))
	for i := range c.Nodes {
		st := c.Net.NodeStats(i)
		out[i] = float64(st.BytesSent*8) / elapsed.Seconds()
	}
	return out
}

// --- Transaction workload --------------------------------------------------

// WorkloadStats counts what the load driver did. It exists because
// the first version of the driver blind-resubmitted on every reject —
// burning a nonce per attempt and flooding the duplicate filter (the
// txflow bench once recorded 64k duplicates against 6.5k admissions).
// The driver now advances a sender's nonce only on admission, honors
// RetryAfterHint backoff per sender, and resyncs a desynced nonce
// from the chain; these counters prove it.
type WorkloadStats struct {
	Submitted int64 // submission attempts
	Admitted  int64 // accepted at the edge
	Duplicate int64 // rejected as already-pending (counts as delivered)
	StaleSync int64 // nonce resyncs after a stale-nonce reject
	Backoffs  int64 // rejects that armed a per-sender retry timer
	Retries   int64 // resubmissions after a backoff expired
	Dropped   int64 // ticks skipped because the sender was backing off
}

// WorkloadStats returns the load driver's counters (zero value before
// Workload/GatewayWorkload ran).
func (c *Cluster) WorkloadStats() WorkloadStats {
	if c.workStats == nil {
		return WorkloadStats{}
	}
	return *c.workStats
}

// senderState is the driver's per-sender retry machinery.
type senderState struct {
	nonce   uint64
	pending *ledger.Transaction // admitted=false tx awaiting retry
	readyAt time.Duration       // virtual time the retry may fire
	backoff time.Duration       // doubling fallback when no hint came
}

// workloadDriver runs the common submit loop: pick a random sender
// each tick, submit its next payment (or retry its backed-off one)
// through submit, and keep per-sender nonces honest via resync.
func (c *Cluster) workloadDriver(p *vtime.Proc, rng *rand.Rand, interval time.Duration,
	submit func(sender int, tx *ledger.Transaction) error,
	resync func(pk crypto.PublicKey) uint64) {
	senders := make([]senderState, len(c.ids))
	st := c.workStats
	for !c.Sim.Stopped() {
		p.Sleep(interval)
		if c.allNodesDone() {
			// Nothing can commit this traffic anymore; let the sim drain.
			return
		}
		from := rng.Intn(len(c.ids))
		to := rng.Intn(len(c.ids))
		if to == from {
			to = (to + 1) % len(c.ids)
		}
		s := &senders[from]
		var tx *ledger.Transaction
		retrying := false
		if s.pending != nil {
			if p.Now() < s.readyAt {
				st.Dropped++
				continue
			}
			tx, retrying = s.pending, true
		} else {
			tx = &ledger.Transaction{
				From:   c.ids[from].PublicKey(),
				To:     c.ids[to].PublicKey(),
				Amount: 1,
				Nonce:  s.nonce,
			}
			tx.Sign(c.ids[from])
		}
		st.Submitted++
		if retrying {
			st.Retries++
		}
		err := submit(from, tx)
		switch {
		case err == nil:
			st.Admitted++
			s.nonce = tx.Nonce + 1
			s.pending, s.backoff = nil, 0
		case errors.Is(err, txflow.ErrDuplicate):
			// Already pending (a retry raced its own earlier admission):
			// the payment is in flight, move on.
			st.Duplicate++
			s.nonce = tx.Nonce + 1
			s.pending, s.backoff = nil, 0
		case errors.Is(err, txflow.ErrStaleNonce):
			// Our nonce trails the chain (e.g. driver restarted or the
			// resync raced a commit): re-read it and rebuild next tick.
			st.StaleSync++
			s.nonce = resync(c.ids[from].PublicKey())
			s.pending, s.backoff = nil, 0
		default:
			// Load shed (rate window, pool bound, sender cap): honor the
			// typed retry hint instead of blind-resubmitting, falling
			// back to a doubling per-sender backoff.
			st.Backoffs++
			wait, ok := txflow.RetryAfterHint(err)
			if !ok || wait <= 0 {
				if s.backoff == 0 {
					s.backoff = 250 * time.Millisecond
				} else if s.backoff < 8*time.Second {
					s.backoff *= 2
				}
				wait = s.backoff
			}
			s.pending, s.readyAt = tx, p.Now()+wait
		}
	}
}

// Workload continuously submits signed payments between random users at
// the given rate (transactions per virtual second), modeling Figure 1's
// transaction flow, directly against each sender's own node. Rejects
// back off per sender (see WorkloadStats). Call before Run.
func (c *Cluster) Workload(txPerSecond float64, seed int64) {
	if txPerSecond <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	interval := time.Duration(float64(time.Second) / txPerSecond)
	c.workStats = &WorkloadStats{}
	c.Sim.Spawn("workload", func(p *vtime.Proc) {
		c.workloadDriver(p, rng, interval,
			func(sender int, tx *ledger.Transaction) error {
				return c.Nodes[sender].SubmitTx(tx)
			},
			func(pk crypto.PublicKey) uint64 {
				return c.Nodes[0].Ledger().Balances().Nonce[pk]
			})
	})
}

// GatewayWorkload drives the same payment stream through the access
// tier: every submission goes to a gateway (round-robin per sender,
// so a sender sticks to one gateway and its duplicate filter), and
// nonce resyncs read the gateway read model — consensus nodes see
// zero client traffic. Call before Run, with Config.Gateways > 0.
func (c *Cluster) GatewayWorkload(txPerSecond float64, seed int64) {
	if txPerSecond <= 0 || len(c.gateways) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	interval := time.Duration(float64(time.Second) / txPerSecond)
	c.workStats = &WorkloadStats{}
	c.Sim.Spawn("gateway-workload", func(p *vtime.Proc) {
		c.workloadDriver(p, rng, interval,
			func(sender int, tx *ledger.Transaction) error {
				gw := c.gateways[sender%len(c.gateways)]
				gw.CountSession()
				return gw.Submit(tx)
			},
			func(pk crypto.PublicKey) uint64 {
				_, nonce, _ := c.gateways[0].ReadModel().Balance(pk)
				return nonce
			})
	})
}

// QueryWorkload simulates a large read-only client population against
// the access tier: sessionsPerSecond client sessions per virtual
// second, spread evenly over the gateways. Each session connects,
// queries the chain head and a random account's balance on the
// gateway read model, and disconnects — consensus nodes serve none of
// it. Sessions are multiplexed onto a 10 ms driver tick per gateway so
// millions of them stay cheap under the virtual clock. Call before
// Run, with Config.Gateways > 0.
func (c *Cluster) QueryWorkload(sessionsPerSecond float64, seed int64) {
	if sessionsPerSecond <= 0 || len(c.gateways) == 0 {
		return
	}
	const tick = 10 * time.Millisecond
	perGateway := sessionsPerSecond / float64(len(c.gateways))
	for gi, gw := range c.gateways {
		gw := gw
		rng := rand.New(rand.NewSource(seed + int64(gi)))
		// Accumulate fractional sessions so any rate is hit exactly in
		// expectation.
		c.Sim.Spawn("query-workload-"+fmt.Sprint(gi), func(p *vtime.Proc) {
			carry := 0.0
			for {
				p.Sleep(tick)
				if c.Sim.Stopped() || c.allNodesDone() {
					return
				}
				carry += perGateway * tick.Seconds()
				n := int(carry)
				carry -= float64(n)
				for i := 0; i < n; i++ {
					pk := c.ids[rng.Intn(len(c.ids))].PublicKey()
					gw.QuerySession(pk)
				}
			}
		})
	}
}

// CommittedTxCount returns how many real transactions node 0's chain
// committed through the given round.
func (c *Cluster) CommittedTxCount(through uint64) int {
	l := c.Nodes[0].Ledger()
	count := 0
	for r := uint64(1); r <= through; r++ {
		if b, ok := l.BlockAt(r); ok {
			count += len(b.Txns)
		}
	}
	return count
}

// StartPeerReshuffling re-draws every node's gossip peers at the given
// interval, as the paper does each round to heal disconnected
// components (§8.4). Call before Run.
func (c *Cluster) StartPeerReshuffling(interval time.Duration) {
	if interval <= 0 {
		return
	}
	c.Sim.Spawn("reshuffler", func(p *vtime.Proc) {
		for !c.Sim.Stopped() {
			p.Sleep(interval)
			c.Net.ReshufflePeers()
		}
	})
}
