package sim

import (
	"algorand/internal/blockprop"
	"algorand/internal/ledger"
	"algorand/internal/node"
)

// MakeEquivocatingProposers turns the first k nodes into the §10.4
// attackers: when selected as (highest-priority) proposer, each sends
// one version of its block to half of its peers and a different version
// to the other half; and whenever selected for a BA⋆ committee, it
// votes for both the proposed block and the empty block.
func (c *Cluster) MakeEquivocatingProposers(k int) {
	for i := 0; i < k && i < len(c.Nodes); i++ {
		n := c.Nodes[i]
		n.Misbehave = func(n *node.Node, prop *blockprop.Proposal) {
			// Craft a second, conflicting block (different timestamp) and
			// sign a matching announce with the same sortition credentials
			// — only the proposer itself can do this, which is why honest
			// proposers cannot be framed (the hash is under the signature).
			alt := *prop.Block.Block
			alt.Timestamp++
			altAnnounce := prop.Priority
			altAnnounce.BlockHash = alt.Hash()
			altAnnounce.Sig = c.ids[n.ID].Sign(altAnnounce.SigningBytes())
			altMsg := blockprop.BlockMsg{Block: &alt, Announce: altAnnounce}

			// Send one version of the block to half the peers and the
			// other version to the rest (§10.4), pushing the bodies
			// directly so each victim holds one version before the
			// conflicting announcements expose the equivocation.
			neighbors := c.Net.Neighbors(n.ID)
			for idx, peer := range neighbors {
				if idx%2 == 0 {
					c.Net.Gossip(n.ID, &node.PriorityGossip{M: prop.Priority})
					c.Net.Unicast(n.ID, peer, &node.BlockGossip{M: prop.Block, Recipient: peer})
				} else {
					c.Net.Gossip(n.ID, &node.PriorityGossip{M: altAnnounce})
					c.Net.Unicast(n.ID, peer, &node.BlockGossip{M: altMsg, Recipient: peer})
				}
			}
		}
		n.VoteSaboteur = func(n *node.Node, v *ledger.Vote) []*ledger.Vote {
			// Vote for the original value and also for the empty block
			// (or, when already voting empty, any proposal we know).
			alt := *v
			empty := n.Ledger().NextEmptyBlock().Hash()
			if v.Value == empty {
				return []*ledger.Vote{v} // nothing else to equivocate to
			}
			alt.Value = empty
			alt.Sign(c.ids[n.ID])
			return []*ledger.Vote{v, &alt}
		}
	}
}

// SplitWorld partitions the network into two halves for the given
// virtual-time window [from, to): no messages cross the cut. This is
// the weak-synchrony adversary of §3 used to exercise §8.2 recovery.
// The filter composes with other installed faults (AddPartition), so a
// world split and a targeted DoS can be scripted on the same run.
func (c *Cluster) SplitWorld(from, to int64) {
	cut := len(c.Nodes) / 2
	c.Net.AddPartition(func(a, b int) bool {
		now := int64(c.Sim.Now().Seconds())
		if now < from || now >= to {
			return false
		}
		return (a < cut) != (b < cut)
	})
}

// SilenceNodes drops all traffic from the given nodes (modeling a
// targeted DoS on known participants). Composes with other faults.
func (c *Cluster) SilenceNodes(ids map[int]bool) {
	c.Net.AddPartition(func(a, b int) bool {
		return ids[a] || ids[b]
	})
}

// SilenceNodesDuring drops all traffic touching the given nodes for the
// virtual-time window [from, to) seconds.
func (c *Cluster) SilenceNodesDuring(ids map[int]bool, from, to int64) {
	c.Net.AddPartition(func(a, b int) bool {
		now := int64(c.Sim.Now().Seconds())
		if now < from || now >= to {
			return false
		}
		return ids[a] || ids[b]
	})
}
