package sim

import (
	"time"

	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/node"
	"algorand/internal/sortition"
)

// MakeEquivocatingProposers turns the first k nodes into the §10.4
// attackers: when selected as (highest-priority) proposer, each sends
// one version of its block to half of its peers and a different version
// to the other half; and whenever selected for a BA⋆ committee, it
// votes for both the proposed block and the empty block.
func (c *Cluster) MakeEquivocatingProposers(k int) {
	for i := 0; i < k && i < len(c.Nodes); i++ {
		n := c.Nodes[i]
		n.Misbehave = func(n *node.Node, prop *blockprop.Proposal) {
			// Craft a second, conflicting block (different timestamp) and
			// sign a matching announce with the same sortition credentials
			// — only the proposer itself can do this, which is why honest
			// proposers cannot be framed (the hash is under the signature).
			alt := *prop.Block.Block
			alt.Timestamp++
			altAnnounce := prop.Priority
			altAnnounce.BlockHash = alt.Hash()
			altAnnounce.Sig = c.ids[n.ID].Sign(altAnnounce.SigningBytes())
			altMsg := blockprop.BlockMsg{Block: &alt, Announce: altAnnounce}

			// Send one version of the block to half the peers and the
			// other version to the rest (§10.4), pushing the bodies
			// directly so each victim holds one version before the
			// conflicting announcements expose the equivocation.
			neighbors := c.Net.Neighbors(n.ID)
			for idx, peer := range neighbors {
				if idx%2 == 0 {
					c.Net.Gossip(n.ID, &node.PriorityGossip{M: prop.Priority})
					c.Net.Unicast(n.ID, peer, &node.BlockGossip{M: prop.Block, Recipient: peer})
				} else {
					c.Net.Gossip(n.ID, &node.PriorityGossip{M: altAnnounce})
					c.Net.Unicast(n.ID, peer, &node.BlockGossip{M: altMsg, Recipient: peer})
				}
			}
		}
		n.VoteSaboteur = func(n *node.Node, v *ledger.Vote) []*ledger.Vote {
			// Vote for the original value and also for the empty block
			// (or, when already voting empty, any proposal we know).
			alt := *v
			empty := n.Ledger().NextEmptyBlock().Hash()
			if v.Value == empty {
				return []*ledger.Vote{v} // nothing else to equivocate to
			}
			alt.Value = empty
			alt.Sign(c.ids[n.ID])
			return []*ledger.Vote{v, &alt}
		}
	}
}

// GrindStats counts a seed-grinding attacker's decisions across a run,
// so harnesses can assert the attack actually fired.
type GrindStats struct {
	// Published counts proposals the attacker released (re-timed by the
	// configured hold-back).
	Published int
	// Withheld counts proposals the attacker suppressed to steer the
	// chain onto the fallback seed.
	Withheld int
}

// MakeGrindingProposers turns the given nodes into the seed-grinding
// attackers of Wang's "Another Look at ALGORAND" critique: a selected
// Byzantine proposer holds a binary choice over the §5.2 seed chain —
// publish its block (the next seed is then its VRF output, fixed by the
// chain) or withhold it (the network falls back to H(prevSeed‖round)) —
// and picks whichever candidate seed gives it more sortition luck next
// round. When it does publish, it re-times the release by holdBack,
// landing the proposal near the edge of peers' λ_priority windows so
// distant nodes see a different highest priority than nearby ones.
// Everything else (votes, catch-up) stays honest, which makes this the
// sharpest *covert* bias attack: nothing it emits is protocol-invalid.
//
// The returned stats record every publish/withhold decision. Grinding
// only pays when the ledger refreshes sortition seeds every round
// (Config.LedgerCfg.SeedRefreshInterval = 1); with longer refresh
// intervals the choice rarely matters inside a short run, but the
// machinery — withheld proposals, re-timed gossip — still exercises the
// §6 empty-block fallback.
func (c *Cluster) MakeGrindingProposers(ids []int, holdBack time.Duration) *GrindStats {
	st := &GrindStats{}
	for _, i := range ids {
		if i < 0 || i >= len(c.Nodes) {
			continue
		}
		i := i
		c.Nodes[i].Misbehave = func(n *node.Node, prop *blockprop.Proposal) {
			round := prop.Block.Block.Round
			prevSeed := n.Ledger().PrevSeed()
			published := prop.Block.Block.Seed
			fallback := ledger.FallbackSeed(prevSeed, round)
			if c.grindScore(i, fallback, round) > c.grindScore(i, published, round) {
				st.Withheld++
				return // silence: the network commits empty on the fallback seed
			}
			st.Published++
			release := func() {
				if n.Halted() {
					return
				}
				c.Net.Gossip(n.ID, &node.PriorityGossip{M: prop.Priority})
				c.Net.Gossip(n.ID, &node.BlockAnnounce{M: prop.Priority, Announcer: n.ID})
				// Push the body directly (the honest path serves pulls, but a
				// withholder never stored the block for serving).
				for _, peer := range c.Net.Neighbors(n.ID) {
					c.Net.Unicast(n.ID, peer, &node.BlockGossip{M: prop.Block, Recipient: peer})
				}
			}
			if holdBack > 0 {
				c.Sim.After(holdBack, release)
			} else {
				release()
			}
		}
	}
	return st
}

// grindScore rates a candidate next-round sortition seed from attacker
// i's point of view: how many proposer sub-users (weighted heavily — a
// proposer slot is worth far more than a committee seat) plus committee
// seats the seed would hand it in round+1. Deterministic, so replays
// grind identically.
func (c *Cluster) grindScore(i int, seed crypto.Digest, round uint64) uint64 {
	id := c.ids[i]
	w := c.Genesis[id.PublicKey()]
	var total uint64
	for _, v := range c.Genesis {
		total += v
	}
	prop := sortition.Execute(id, seed[:],
		sortition.Role{Kind: sortition.RoleProposer, Round: round + 1},
		c.Cfg.Params.TauProposer, w, total)
	comm := sortition.Execute(id, seed[:],
		sortition.Role{Kind: sortition.RoleCommittee, Round: round + 1, Step: 1},
		c.Cfg.Params.TauStep, w, total)
	return prop.J*16 + comm.J
}

// SplitWorld partitions the network into two halves for the given
// virtual-time window [from, to): no messages cross the cut. This is
// the weak-synchrony adversary of §3 used to exercise §8.2 recovery.
// The filter composes with other installed faults (AddPartition), so a
// world split and a targeted DoS can be scripted on the same run.
func (c *Cluster) SplitWorld(from, to int64) {
	cut := len(c.Nodes) / 2
	c.Net.AddPartition(func(a, b int) bool {
		now := int64(c.Sim.Now().Seconds())
		if now < from || now >= to {
			return false
		}
		return (a < cut) != (b < cut)
	})
}

// SilenceNodes drops all traffic from the given nodes (modeling a
// targeted DoS on known participants). Composes with other faults.
func (c *Cluster) SilenceNodes(ids map[int]bool) {
	c.Net.AddPartition(func(a, b int) bool {
		return ids[a] || ids[b]
	})
}

// SilenceNodesDuring drops all traffic touching the given nodes for the
// virtual-time window [from, to) seconds.
func (c *Cluster) SilenceNodesDuring(ids map[int]bool, from, to int64) {
	c.Net.AddPartition(func(a, b int) bool {
		now := int64(c.Sim.Now().Seconds())
		if now < from || now >= to {
			return false
		}
		return ids[a] || ids[b]
	})
}
