package sim

import (
	"testing"
	"time"

	"algorand/internal/ledger"
	"algorand/internal/node"
)

func TestSmallClusterReachesConsensus(t *testing.T) {
	cfg := DefaultConfig(30, 3)
	c := NewCluster(cfg)
	c.Run()

	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	for r := uint64(1); r <= 3; r++ {
		lat := c.RoundLatencies(r)
		if len(lat) < cfg.N*9/10 {
			t.Fatalf("round %d completed on only %d/%d nodes", r, len(lat), cfg.N)
		}
	}
	final, empty := c.FinalityRate()
	if final < 0.9 {
		t.Fatalf("finality rate %.2f, want ≈1 in the honest case", final)
	}
	if empty > 0.5 {
		t.Fatalf("empty-block rate %.2f too high for honest run", empty)
	}
}

func TestHeadsConverge(t *testing.T) {
	c := NewCluster(DefaultConfig(25, 3))
	c.Run()
	head := c.Nodes[0].Ledger().HeadHash()
	for i, n := range c.Nodes {
		if n.Ledger().HeadHash() != head {
			// A node may legitimately lag by a round at the horizon; only
			// identical or ancestor heads are acceptable.
			if n.Ledger().ChainLength()+1 < c.Nodes[0].Ledger().ChainLength() {
				t.Fatalf("node %d head diverged", i)
			}
		}
	}
}

func TestRoundLatencyUnderAMinute(t *testing.T) {
	// The headline: with paper timeouts and a 1 MB block, rounds
	// complete in well under a minute (paper: ~22s at 50k users).
	cfg := DefaultConfig(50, 2)
	c := NewCluster(cfg)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	p := Summarize(c.AllRoundLatencies(1, 2))
	if p.N == 0 {
		t.Fatal("no completed rounds")
	}
	if p.Median > time.Minute {
		t.Fatalf("median round latency %v, want < 1m", p.Median)
	}
	if p.Median < 5*time.Second {
		t.Fatalf("median %v implausibly fast given λ_priority+λ_stepvar=10s", p.Median)
	}
}

func TestTransactionsConfirm(t *testing.T) {
	cfg := DefaultConfig(25, 3)
	c := NewCluster(cfg)

	// Submit a payment from user 1 to user 2 before starting.
	tx := &ledger.Transaction{
		From:   c.Identity(1).PublicKey(),
		To:     c.Identity(2).PublicKey(),
		Amount: 3,
		Nonce:  0,
	}
	tx.Sign(c.Identity(1))
	c.Sim.After(0, func() {
		if err := c.Nodes[1].SubmitTx(tx); err != nil {
			t.Errorf("submit: %v", err)
		}
	})

	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	// The payment must be reflected in (nearly) everyone's balances.
	confirmed := 0
	for _, n := range c.Nodes {
		if n.Ledger().Balances().Money[tx.To] == cfg.WeightEach+3 {
			confirmed++
		}
	}
	if confirmed < len(c.Nodes)*8/10 {
		t.Fatalf("tx confirmed on only %d/%d nodes", confirmed, len(c.Nodes))
	}
}

func TestPhaseBreakdownSane(t *testing.T) {
	cfg := DefaultConfig(30, 2)
	c := NewCluster(cfg)
	c.Run()
	ph := c.Phases(1)
	if ph.RoundCompletion.N == 0 {
		t.Fatal("no phase data")
	}
	// Block proposal takes at least λ_priority + λ_stepvar.
	min := cfg.Params.LambdaPriority + cfg.Params.LambdaStepVar
	if ph.BlockProposal.Median < min {
		t.Fatalf("proposal phase %v < %v", ph.BlockProposal.Median, min)
	}
	if ph.BAWithoutFinal.Median <= 0 || ph.FinalStep.Median <= 0 {
		t.Fatalf("phases not positive: %+v", ph)
	}
}

func TestEquivocationAttackPreservesAgreement(t *testing.T) {
	cfg := DefaultConfig(40, 3)
	c := NewCluster(cfg)
	c.MakeEquivocatingProposers(8) // 20% malicious

	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatalf("safety violated under equivocation attack: %v", err)
	}
	// Honest majority must still complete rounds.
	lat := c.AllRoundLatencies(1, 3)
	if len(lat) < 2*cfg.N {
		t.Fatalf("too few completed rounds under attack: %d", len(lat))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, int64) {
		c := NewCluster(DefaultConfig(20, 2))
		c.Run()
		return c.Sim.EventCount, c.Net.TotalBytes()
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 != e2 || b1 != b2 {
		t.Fatalf("nondeterministic: events %d/%d bytes %d/%d", e1, e2, b1, b2)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	cfg := DefaultConfig(25, 2)
	c := NewCluster(cfg)
	end := c.Run()
	bw := c.BandwidthPerNode(end)
	var nonzero int
	for _, b := range bw {
		if b > 0 {
			nonzero++
		}
	}
	if nonzero < len(bw)/2 {
		t.Fatalf("only %d nodes sent traffic", nonzero)
	}
	if c.CommittedPayloadBytes(2) <= 0 {
		t.Fatal("no payload committed")
	}
}

func TestStorageSharding(t *testing.T) {
	cfg := DefaultConfig(20, 3)
	cfg.ShardCount = 4
	c := NewCluster(cfg)
	c.Run()
	var bytes int64
	for _, n := range c.Nodes {
		bytes += n.Store().Bytes
	}
	// Compare against an unsharded run.
	cfg2 := DefaultConfig(20, 3)
	c2 := NewCluster(cfg2)
	c2.Run()
	var fullBytes int64
	for _, n := range c2.Nodes {
		fullBytes += n.Store().Bytes
	}
	if bytes*2 > fullBytes {
		t.Fatalf("sharded storage %d not ≪ full %d", bytes, fullBytes)
	}
}

func TestSkewedWeightDistribution(t *testing.T) {
	// The paper's evaluation gives everyone an equal share ("maximizes
	// the number of messages"); real deployments are skewed. Consensus
	// must work identically when one user holds 30% of the money and
	// the rest follow a long tail.
	cfg := DefaultConfig(30, 3)
	weights := make([]uint64, cfg.N)
	var total uint64
	for i := range weights {
		weights[i] = uint64(1 + i) // long tail
		total += weights[i]
	}
	weights[0] = total / 2 // a whale with ~1/3 of the supply
	cfg.Weights = weights
	c := NewCluster(cfg)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	lat := c.AllRoundLatencies(1, 3)
	if len(lat) < cfg.N*2 {
		t.Fatalf("only %d round completions", len(lat))
	}
	// The whale's ledger weight matches its genesis share.
	whale := c.Nodes[0].PublicKey()
	if got := c.Nodes[0].Ledger().Balances().Money[whale]; got != weights[0] {
		t.Fatalf("whale balance %d, want %d", got, weights[0])
	}
}

func TestPullGossipBoundsBlockTraffic(t *testing.T) {
	// With inv/getdata dissemination, each node downloads each block
	// body roughly once; total block traffic must be O(N · blocksize),
	// not O(N · fanout · blocksize).
	cfg := DefaultConfig(40, 2)
	cfg.Params.BlockSize = 1 << 20
	c := NewCluster(cfg)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	perNode := float64(c.Net.TotalBytes()) / float64(cfg.N) / float64(cfg.Rounds)
	// Expect roughly one block download per node per round plus some
	// proposer/loser overlap; 9 copies each would be ~9 MB.
	if perNode > 4*float64(cfg.Params.BlockSize) {
		t.Fatalf("per-node traffic %.1f MB/round; pull gossip should bound this near 1-2 blocks",
			perNode/(1<<20))
	}
	if perNode < float64(cfg.Params.BlockSize)/2 {
		t.Fatalf("per-node traffic %.1f MB/round implausibly low", perNode/(1<<20))
	}
}

func TestWithholdingCommitteeMembers(t *testing.T) {
	// 20% of users are selected for committees but never speak (a
	// fail-stop / DoS'd population). h=80% honest online is exactly the
	// paper's operating assumption: rounds must still complete.
	cfg := DefaultConfig(40, 3)
	c := NewCluster(cfg)
	for i := 0; i < 8; i++ {
		c.Nodes[i].VoteSaboteur = func(n *node.Node, v *ledger.Vote) []*ledger.Vote {
			return nil // withhold every vote
		}
	}
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	completions := len(c.AllRoundLatencies(1, 3))
	if completions < 32*3*8/10 {
		t.Fatalf("only %d round completions with 20%% silent users", completions)
	}
}

func TestPipelinedClusterAgreement(t *testing.T) {
	cfg := DefaultConfig(30, 4)
	cfg.PipelineFinalStep = true
	c := NewCluster(cfg)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	final, _ := c.FinalityRate()
	if final < 0.7 {
		t.Fatalf("pipelined finality rate %.2f", final)
	}
	if c.Nodes[0].Ledger().ChainLength() != 4 {
		t.Fatalf("chain length %d", c.Nodes[0].Ledger().ChainLength())
	}
}

func TestWorkloadTransactionsGetCommitted(t *testing.T) {
	cfg := DefaultConfig(25, 3)
	c := NewCluster(cfg)
	c.Workload(2.0, 99) // 2 tx/s of virtual time
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	got := c.CommittedTxCount(3)
	// Three rounds ≈ 33s of virtual time at 2 tx/s ≈ ~60 submitted; most
	// should land in blocks (those submitted before the last proposal).
	if got < 10 {
		t.Fatalf("only %d workload transactions committed", got)
	}
	// Conservation: total money is unchanged.
	if c.Nodes[0].Ledger().TotalMoney() != uint64(cfg.N)*cfg.WeightEach {
		t.Fatal("money supply changed")
	}
}

func TestPeerReshufflingKeepsConsensus(t *testing.T) {
	cfg := DefaultConfig(25, 3)
	c := NewCluster(cfg)
	c.StartPeerReshuffling(8 * time.Second) // ≈ per round, as in the paper
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	if len(c.AllRoundLatencies(1, 3)) < 2*cfg.N {
		t.Fatal("rounds did not complete under reshuffling")
	}
}

// TestSoakManyRounds is a longer deterministic run: 40 users, 12
// rounds, continuous transaction workload and per-round peer
// reshuffling, checking agreement, finality and state consistency at
// the end.
func TestSoakManyRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := DefaultConfig(40, 12)
	c := NewCluster(cfg)
	c.Workload(1.0, 7)
	c.StartPeerReshuffling(20 * time.Second)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[0].Ledger().ChainLength(); got != 12 {
		t.Fatalf("chain length %d", got)
	}
	final, _ := c.FinalityRate()
	if final < 0.8 {
		t.Fatalf("finality rate %.2f over 12 rounds", final)
	}
	// All nodes that finished agree on the head block-for-block.
	ref := c.Nodes[0].Ledger()
	for i, n := range c.Nodes {
		l := n.Ledger()
		upTo := min(l.ChainLength(), ref.ChainLength())
		for r := uint64(1); r <= upTo; r++ {
			a, _ := ref.BlockAt(r)
			b, _ := l.BlockAt(r)
			if a.Hash() != b.Hash() {
				t.Fatalf("node %d disagrees at round %d", i, r)
			}
		}
	}
	// Balances are consistent and conserve the supply.
	var sum uint64
	for _, m := range ref.Balances().Money {
		sum += m
	}
	if sum != uint64(cfg.N)*cfg.WeightEach {
		t.Fatalf("money supply drifted: %d", sum)
	}
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
