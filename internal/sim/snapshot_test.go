package sim

import (
	"bytes"
	"testing"
	"time"

	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/node"
	"algorand/internal/vtime"
	"algorand/internal/wire"
)

// snapshotConfig is a deployment that checkpoints every `interval`
// rounds, with the seed-refresh interval pushed past the chain length
// so fast sync can verify checkpoint certificates from genesis context
// alone (see Config.CheckpointInterval).
func snapshotConfig(n int, rounds, interval uint64) Config {
	cfg := DefaultConfig(n, rounds)
	cfg.CheckpointInterval = interval
	cfg.LedgerCfg.SeedRefreshInterval = 1000
	return cfg
}

// snapshotBase returns the snapshot anchor round of a re-based ledger:
// the first round holding a block when round 1 does not (0 for a full
// genesis-rooted chain).
func snapshotBase(l *ledger.Ledger) uint64 {
	if l.ChainLength() == 0 {
		return 0
	}
	if _, ok := l.BlockAt(1); ok {
		return 0
	}
	for r := uint64(2); r <= l.ChainLength(); r++ {
		if _, ok := l.BlockAt(r); ok {
			return r
		}
	}
	return l.ChainLength()
}

// TestSnapshotFastSync is the fast-sync happy path: a node crashes
// diskless, and its replacement fetches the newest state checkpoint
// from a peer, verifies certificate and Merkle root against genesis
// committee context, re-bases, and replays only the delta — ending on
// exactly the ledger state a never-crashed node holds.
func TestSnapshotFastSync(t *testing.T) {
	const rounds = 8
	const victim = 3
	cfg := snapshotConfig(12, rounds+2, 4)
	c := NewCluster(cfg)

	var synced *node.Node
	c.Sim.Spawn("snapshot-sync-test", func(p *vtime.Proc) {
		for c.Nodes[victim].Ledger().ChainLength() < rounds {
			p.Sleep(200 * time.Millisecond)
		}
		c.CrashNode(victim)
		p.Sleep(2 * time.Second)
		synced = c.RestartNodeViaSnapshotSync(victim, time.Hour)
		target := c.Nodes[0].Ledger().ChainLength()
		for c.Nodes[victim].Ledger().ChainLength() < target {
			p.Sleep(50 * time.Millisecond)
		}
	})
	c.Run()

	if synced == nil {
		t.Fatal("replacement never started")
	}
	if synced.SnapshotSyncs != 1 {
		t.Fatalf("SnapshotSyncs = %d, want 1 (rejects %d)", synced.SnapshotSyncs, synced.SnapshotRejects)
	}
	if synced.SnapshotRejects != 0 {
		t.Errorf("%d honest snapshots rejected", synced.SnapshotRejects)
	}
	l := synced.Ledger()
	base := snapshotBase(l)
	if base == 0 {
		t.Fatal("replacement holds a genesis-rooted chain; the snapshot re-base never happened")
	}
	if base%cfg.CheckpointInterval != 0 {
		t.Errorf("re-based onto round %d, off the checkpoint grid", base)
	}
	// Identical chain and state versus a never-crashed node, over every
	// round both hold.
	ref := c.Nodes[0].Ledger()
	last := l.ChainLength()
	if refLen := ref.ChainLength(); refLen < last {
		last = refLen
	}
	if last < rounds {
		t.Fatalf("common chain only reaches round %d, want >= %d", last, rounds)
	}
	for r := base; r <= last; r++ {
		mine, ok1 := l.BlockAt(r)
		theirs, ok2 := ref.BlockAt(r)
		if !ok1 || !ok2 {
			t.Fatalf("round %d missing (synced %v, ref %v)", r, ok1, ok2)
		}
		if mine.Hash() != theirs.Hash() {
			t.Fatalf("round %d diverged after snapshot sync", r)
		}
	}
	b, _ := l.BlockAt(last)
	mineBal, ok1 := l.BalancesAt(b.Hash())
	refBal, ok2 := ref.BalancesAt(b.Hash())
	if !ok1 || !ok2 {
		t.Fatalf("state at round %d missing (synced %v, ref %v)", last, ok1, ok2)
	}
	if mineBal.Root() != refBal.Root() {
		t.Fatalf("state roots diverged at round %d", last)
	}
	t.Logf("snapshot sync: re-based onto round %d, chain %d, %d rounds replayed as delta",
		base, l.ChainLength(), l.ChainLength()-base)
}

// TestSnapshotPoisoningFallback pins the adversarial claim: a node
// whose every peer serves a tampered snapshot (account table inflated,
// so the Merkle commitment in the certified header no longer matches)
// rejects them all and falls back to full genesis replay — the poison
// delays the join but can neither corrupt nor wedge it.
func TestSnapshotPoisoningFallback(t *testing.T) {
	const rounds = 8
	const victim = 3
	cfg := snapshotConfig(12, rounds+2, 4)
	c := NewCluster(cfg)

	poisoned := 0
	for i := range c.Nodes {
		if i == victim {
			continue
		}
		i := i
		orig := c.Nodes[i]
		c.Net.SetHandler(i, network.HandlerFunc(func(from int, m network.Message) network.Verdict {
			if req, ok := m.(*node.SnapshotRequest); ok {
				if chk, okC := orig.Checkpoint(); okC {
					evil := &ledger.Checkpoint{
						Block:    chk.Block,
						Cert:     chk.Cert,
						Accounts: append([]ledger.AccountRecord(nil), chk.Accounts...),
					}
					evil.Accounts[0].Money += 1 << 40
					poisoned++
					c.Net.Unicast(i, req.Requester, &node.SnapshotReply{
						Checkpoint: evil, Recipient: req.Requester, Nonce: req.Nonce,
					})
					return network.Verdict{}
				}
			}
			return orig.HandleMessage(from, m)
		}))
	}

	var synced *node.Node
	c.Sim.Spawn("snapshot-poison-test", func(p *vtime.Proc) {
		for c.Nodes[victim].Ledger().ChainLength() < rounds {
			p.Sleep(200 * time.Millisecond)
		}
		c.CrashNode(victim)
		p.Sleep(2 * time.Second)
		synced = c.RestartNodeViaSnapshotSync(victim, time.Hour)
		target := c.Nodes[0].Ledger().ChainLength()
		for c.Nodes[victim].Ledger().ChainLength() < target {
			p.Sleep(50 * time.Millisecond)
		}
	})
	c.Run()

	if synced == nil {
		t.Fatal("replacement never started")
	}
	if poisoned == 0 {
		t.Fatal("no tampered snapshot was ever served; scenario premise broken")
	}
	if synced.SnapshotSyncs != 0 {
		t.Fatalf("a tampered snapshot was adopted (%d syncs)", synced.SnapshotSyncs)
	}
	if synced.SnapshotRejects == 0 {
		t.Fatal("tampered snapshots were never rejected")
	}
	l := synced.Ledger()
	if base := snapshotBase(l); base != 0 {
		t.Fatalf("ledger re-based onto round %d despite poisoned snapshots", base)
	}
	// Fallback correctness: the full genesis replay converged onto the
	// honest chain.
	ref := c.Nodes[0].Ledger()
	if l.ChainLength() < rounds {
		t.Fatalf("fallback replay stuck at round %d, want >= %d", l.ChainLength(), rounds)
	}
	for r := uint64(1); r <= rounds; r++ {
		mine, ok1 := l.BlockAt(r)
		theirs, ok2 := ref.BlockAt(r)
		if !ok1 || !ok2 || mine.Hash() != theirs.Hash() {
			t.Fatalf("round %d diverged after fallback replay", r)
		}
	}
	t.Logf("poisoning: %d tampered snapshots served, %d rejected, fallback chain %d",
		poisoned, synced.SnapshotRejects, l.ChainLength())
}

// TestColdRestartCheckpointByteIdentity pins the recovery equivalence
// the checkpoint design rests on: re-basing onto the on-disk
// checkpoint and replaying only the delta yields a ledger whose head
// and full account state are byte-identical (canonical checkpoint
// encoding) to replaying the whole archive from genesis.
func TestColdRestartCheckpointByteIdentity(t *testing.T) {
	const rounds = 8
	cfg := snapshotConfig(10, rounds, 4)
	cfg.DataDir = t.TempDir()
	c := NewCluster(cfg)
	c.Run()
	if got := c.Nodes[0].Ledger().ChainLength(); got < rounds {
		t.Fatalf("run only reached round %d", got)
	}
	if err := c.CloseArchives(); err != nil {
		t.Fatal(err)
	}
	ds, err := c.OpenArchiveOffline(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	chk, ok := ds.Checkpoint()
	if !ok {
		t.Fatal("cold recovery scan surfaced no checkpoint")
	}
	img := ds.Recovered()

	// Genesis replay of the full archive.
	full := ledger.New(c.Provider, cfg.LedgerCfg, c.Genesis, c.Seed0)
	replay := func(l *ledger.Ledger, from uint64) {
		t.Helper()
		for r := from; ; r++ {
			b, okB := img.Block(r)
			if !okB {
				return
			}
			cert, _ := img.Cert(r)
			if err := l.Commit(b, cert); err != nil {
				t.Fatalf("replaying round %d: %v", r, err)
			}
		}
	}
	replay(full, 1)

	// Checkpoint-first: re-base, then replay only the delta.
	fast, err := ledger.NewFromCheckpoint(c.Provider, cfg.LedgerCfg, c.Genesis, c.Seed0, chk)
	if err != nil {
		t.Fatal(err)
	}
	replay(fast, chk.Round()+1)

	if fast.HeadHash() != full.HeadHash() {
		t.Fatalf("heads diverge: checkpoint path %x, genesis replay %x",
			fast.HeadHash(), full.HeadHash())
	}
	head, _ := full.BlockAt(full.ChainLength())
	cert, _ := img.Cert(full.ChainLength())
	fastState := wire.Encode(ledger.CheckpointOf(head, cert, fast.Balances()))
	fullState := wire.Encode(ledger.CheckpointOf(head, cert, full.Balances()))
	if !bytes.Equal(fastState, fullState) {
		t.Fatal("checkpoint-path state is not byte-identical to genesis replay")
	}
	t.Logf("byte-identity: checkpoint at round %d, head round %d, state %d bytes",
		chk.Round(), full.ChainLength(), len(fastState))
}
