package sim

import (
	"fmt"
	"testing"
	"time"

	"algorand/internal/ledger"
	"algorand/internal/vtime"
)

// TestRestartRecoveryTiming measures, in virtual time, how long a
// restarted node takes to rejoin the network — recovering its chain
// from the on-disk archive versus rebuilding from genesis via peer
// catch-up — at a few chain lengths. The durability table in
// EXPERIMENTS.md is this test's -v output; the assertions only pin the
// qualitative claim (disk recovery restores the chain locally, genesis
// catch-up fetches every round).
func TestRestartRecoveryTiming(t *testing.T) {
	for _, rounds := range []uint64{4, 8, 16} {
		rounds := rounds
		t.Run(fmt.Sprintf("rounds=%d", rounds), func(t *testing.T) {
			diskRestored, diskRejoin := measureRejoin(t, rounds, true)
			genRestored, genRejoin := measureRejoin(t, rounds, false)
			if diskRestored == 0 {
				t.Error("disk recovery restored nothing")
			}
			if genRestored != 0 {
				t.Errorf("genesis restart claims %d rounds restored from an empty store", genRestored)
			}
			t.Logf("chain=%d: disk restored %d rounds, rejoined in %v; genesis restored 0, rejoined in %v",
				rounds, diskRestored, diskRejoin, genRejoin)
		})
	}
}

// measureRejoin runs a durable cluster until the victim's chain reaches
// `rounds`, crashes it, restarts it two virtual seconds later — from
// its data dir or from an empty store — and returns how many rounds the
// restart restored locally plus the virtual time from restart until the
// victim caught back up to the network head observed at restart.
func measureRejoin(t *testing.T, rounds uint64, fromDisk bool) (restored uint64, rejoin time.Duration) {
	t.Helper()
	cfg := DefaultConfig(12, rounds+2)
	cfg.DataDir = t.TempDir()
	const victim = 3
	c := NewCluster(cfg)
	defer c.CloseArchives()

	var restartAt, rejoinedAt time.Duration
	c.Sim.Spawn("recovery-timing", func(p *vtime.Proc) {
		for c.Nodes[victim].Ledger().ChainLength() < rounds {
			p.Sleep(200 * time.Millisecond)
		}
		c.CrashNode(victim)
		p.Sleep(2 * time.Second)
		restartAt = c.Sim.Now()
		var err error
		if fromDisk {
			_, restored, err = c.RestartNode(victim, time.Hour)
		} else {
			_, restored, err = c.RestartNodeFromStore(victim, ledger.NewStore(0, 1), time.Hour)
		}
		if err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		target := c.Nodes[0].Ledger().ChainLength()
		for c.Nodes[victim].Ledger().ChainLength() < target {
			p.Sleep(50 * time.Millisecond)
		}
		rejoinedAt = c.Sim.Now()
	})
	c.Run()

	if rejoinedAt == 0 {
		t.Fatalf("victim never rejoined (restart at %v)", restartAt)
	}
	return restored, rejoinedAt - restartAt
}
