package sim

import (
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/vtime"
)

// churnConfig accelerates the protocol timeouts the way the chaos
// harness does, so churn lifecycle tests measure recovery logic rather
// than the paper's wall-clock λ values.
func churnConfig(nodes int, rounds uint64) Config {
	cfg := DefaultConfig(nodes, rounds)
	cfg.Params.LambdaPriority = time.Second
	cfg.Params.LambdaStepVar = time.Second
	cfg.Params.LambdaBlock = 5 * time.Second
	cfg.Params.LambdaStep = 2 * time.Second
	cfg.Params.MaxSteps = 8
	cfg.RecoveryInterval = 90 * time.Second
	return cfg
}

// TestChurnRestartDuringRestart crashes a node, restarts it, and then
// crashes the replacement while it is still inside its rejoin phase —
// the lifecycle continuous churn produces whenever the inter-arrival
// time undercuts the rejoin time. The second replacement must inherit
// whatever partial state the first one accumulated and still reach the
// end of the run in agreement with the network.
func TestChurnRestartDuringRestart(t *testing.T) {
	cfg := churnConfig(12, 6)
	const victim = 4
	c := NewCluster(cfg)
	restarts := 0
	c.Sim.Spawn("churn-script", func(p *vtime.Proc) {
		for c.Nodes[victim].Ledger().ChainLength() < 2 {
			p.Sleep(100 * time.Millisecond)
		}
		c.CrashNode(victim)
		p.Sleep(2 * time.Second)
		if _, _, err := c.RestartNode(victim, time.Hour); err != nil {
			t.Errorf("first restart: %v", err)
			return
		}
		restarts++
		// Kill the replacement before its rejoin can plausibly finish
		// (sync alone needs at least one request/reply exchange).
		p.Sleep(500 * time.Millisecond)
		c.CrashNode(victim)
		p.Sleep(2 * time.Second)
		if _, _, err := c.RestartNode(victim, time.Hour); err != nil {
			t.Errorf("second restart: %v", err)
			return
		}
		restarts++
	})
	c.Run()
	if restarts != 2 {
		t.Fatalf("script completed %d of 2 restarts", restarts)
	}
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[victim].Ledger().ChainLength(); got < cfg.Rounds {
		t.Errorf("victim chain reached %d of %d rounds", got, cfg.Rounds)
	}
}

// TestChurnJoinMidRound models a brand-new machine joining the network
// in the middle of a round: the slot's crashed predecessor leaves
// nothing behind (empty store, no archive), so the joiner must fetch
// and certificate-validate the whole chain from peers while a round is
// in flight, then fall into lockstep.
func TestChurnJoinMidRound(t *testing.T) {
	cfg := churnConfig(12, 6)
	const joiner = 7
	c := NewCluster(cfg)
	var restored uint64
	joined := false
	c.Sim.Spawn("join-script", func(p *vtime.Proc) {
		for c.Nodes[0].Ledger().ChainLength() < 2 {
			p.Sleep(100 * time.Millisecond)
		}
		c.CrashNode(joiner)
		// Re-enter off the round grid: an odd offset lands the join in
		// the middle of the network's current round.
		p.Sleep(1300 * time.Millisecond)
		var err error
		_, restored, err = c.RestartNodeFromStore(joiner, ledger.NewStore(0, 1), time.Hour)
		if err != nil {
			t.Errorf("join: %v", err)
			return
		}
		joined = true
	})
	c.Run()
	if !joined {
		t.Fatal("join script never ran")
	}
	if restored != 0 {
		t.Fatalf("joiner restored %d rounds from an empty store", restored)
	}
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[joiner].Ledger().ChainLength(); got < cfg.Rounds {
		t.Errorf("joiner chain reached %d of %d rounds", got, cfg.Rounds)
	}
}

// TestChurnScriptedDeterministic runs one scripted churn sequence (two
// crash/restart cycles at fixed virtual times) twice and demands
// bit-identical outcomes: same elapsed virtual time, same head hash on
// every node. Replayability is what makes a churned chaos seed
// debuggable, and it holds only if restarts introduce no randomness of
// their own.
func TestChurnScriptedDeterministic(t *testing.T) {
	run := func() (time.Duration, []crypto.Digest) {
		cfg := churnConfig(10, 5)
		c := NewCluster(cfg)
		c.Sim.Spawn("churn-script", func(p *vtime.Proc) {
			p.Sleep(8 * time.Second)
			c.CrashNode(5)
			p.Sleep(4 * time.Second)
			if _, _, err := c.RestartNode(5, time.Hour); err != nil {
				t.Errorf("restart 5: %v", err)
			}
			p.Sleep(3 * time.Second)
			c.CrashNode(2)
			p.Sleep(5 * time.Second)
			if _, _, err := c.RestartNode(2, time.Hour); err != nil {
				t.Errorf("restart 2: %v", err)
			}
		})
		elapsed := c.Run()
		heads := make([]crypto.Digest, len(c.Nodes))
		for i, n := range c.Nodes {
			heads[i] = n.Ledger().HeadHash()
		}
		return elapsed, heads
	}
	elapsedA, headsA := run()
	elapsedB, headsB := run()
	if elapsedA != elapsedB {
		t.Fatalf("elapsed diverged across identical runs: %v vs %v", elapsedA, elapsedB)
	}
	for i := range headsA {
		if headsA[i] != headsB[i] {
			t.Fatalf("node %d head diverged across identical churned runs", i)
		}
	}
}
