// Package txpool holds pending transactions a user has heard about via
// gossip, and assembles blocks from them when the user is selected as a
// proposer (§4, Figure 1).
package txpool

import (
	"sort"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
)

// Pool is a single user's set of pending transactions.
type Pool struct {
	pending map[crypto.Digest]*ledger.Transaction
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{pending: make(map[crypto.Digest]*ledger.Transaction)}
}

// Add inserts a transaction (deduplicated by ID).
func (p *Pool) Add(tx *ledger.Transaction) {
	p.pending[tx.ID()] = tx
}

// Len returns the number of pending transactions.
func (p *Pool) Len() int { return len(p.pending) }

// Assemble picks a set of pending transactions that apply cleanly to
// the given balances, up to maxBytes of payload, ordered by (sender,
// nonce) so that nonce sequences apply in order. padTo, if positive,
// sets PayloadPadding on the caller's behalf by returning the padding
// needed to reach that block size given the chosen transactions.
func (p *Pool) Assemble(balances *ledger.Balances, maxBytes int) []ledger.Transaction {
	txs := make([]*ledger.Transaction, 0, len(p.pending))
	for _, tx := range p.pending {
		txs = append(txs, tx)
	}
	sort.Slice(txs, func(i, j int) bool {
		a, b := txs[i], txs[j]
		if a.From != b.From {
			return lessPK(a.From, b.From)
		}
		return a.Nonce < b.Nonce
	})

	tmp := balances.Clone()
	var chosen []ledger.Transaction
	bytes := 0
	for _, tx := range txs {
		if bytes+ledger.TxWireSize > maxBytes {
			break
		}
		if err := tmp.ApplyTx(tx); err != nil {
			continue // stale or conflicting; leave for later GC
		}
		chosen = append(chosen, *tx)
		bytes += ledger.TxWireSize
	}
	return chosen
}

func lessPK(a, b crypto.PublicKey) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Committed removes transactions that appear in a committed block and
// drops any that have become permanently invalid (stale nonce).
func (p *Pool) Committed(b *ledger.Block, balances *ledger.Balances) {
	for i := range b.Txns {
		delete(p.pending, b.Txns[i].ID())
	}
	for id, tx := range p.pending {
		if tx.Nonce < balances.Nonce[tx.From] {
			delete(p.pending, id)
		}
	}
}
