package txpool

import (
	"testing"
	"testing/quick"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
)

func setup() (*Pool, *ledger.Balances, []crypto.Identity) {
	p := crypto.NewFast()
	var ids []crypto.Identity
	accounts := make(map[crypto.PublicKey]uint64)
	for i := 0; i < 4; i++ {
		id := p.NewIdentity(crypto.SeedFromUint64(uint64(i)))
		ids = append(ids, id)
		accounts[id.PublicKey()] = 100
	}
	return New(), ledger.NewBalances(accounts), ids
}

func tx(from, to crypto.Identity, amount, nonce uint64) *ledger.Transaction {
	t := &ledger.Transaction{From: from.PublicKey(), To: to.PublicKey(), Amount: amount, Nonce: nonce}
	t.Sign(from)
	return t
}

func TestAddDeduplicates(t *testing.T) {
	pool, _, ids := setup()
	a := tx(ids[0], ids[1], 5, 0)
	pool.Add(a)
	pool.Add(a)
	if pool.Len() != 1 {
		t.Fatalf("len = %d", pool.Len())
	}
}

func TestAssembleNonceOrder(t *testing.T) {
	pool, bal, ids := setup()
	// Insert out of order; assembly must apply them in nonce order.
	pool.Add(tx(ids[0], ids[1], 5, 2))
	pool.Add(tx(ids[0], ids[1], 5, 0))
	pool.Add(tx(ids[0], ids[1], 5, 1))
	chosen := pool.Assemble(bal, 1<<20)
	if len(chosen) != 3 {
		t.Fatalf("chose %d txs, want 3", len(chosen))
	}
	for i, c := range chosen {
		if c.Nonce != uint64(i) {
			t.Fatalf("tx %d has nonce %d", i, c.Nonce)
		}
	}
}

func TestAssembleSkipsInvalid(t *testing.T) {
	pool, bal, ids := setup()
	pool.Add(tx(ids[0], ids[1], 1000, 0)) // overdraft
	pool.Add(tx(ids[1], ids[2], 10, 0))   // fine
	pool.Add(tx(ids[2], ids[3], 10, 5))   // nonce gap
	chosen := pool.Assemble(bal, 1<<20)
	if len(chosen) != 1 {
		t.Fatalf("chose %d, want 1", len(chosen))
	}
	if chosen[0].From != ids[1].PublicKey() {
		t.Fatal("wrong tx chosen")
	}
}

func TestAssembleRespectsSize(t *testing.T) {
	pool, bal, ids := setup()
	for i := uint64(0); i < 20; i++ {
		pool.Add(tx(ids[0], ids[1], 1, i))
	}
	max := 5 * ledger.TxWireSize
	chosen := pool.Assemble(bal, max)
	if len(chosen) != 5 {
		t.Fatalf("chose %d, want 5", len(chosen))
	}
}

func TestAssembleDoesNotMutateBalances(t *testing.T) {
	pool, bal, ids := setup()
	pool.Add(tx(ids[0], ids[1], 50, 0))
	pool.Assemble(bal, 1<<20)
	if bal.Money[ids[0].PublicKey()] != 100 {
		t.Fatal("Assemble mutated balances")
	}
}

func TestCommittedRemovesAndGCs(t *testing.T) {
	pool, bal, ids := setup()
	a := tx(ids[0], ids[1], 5, 0)
	b := tx(ids[0], ids[1], 5, 1)
	stale := tx(ids[1], ids[2], 5, 0)
	pool.Add(a)
	pool.Add(b)
	pool.Add(stale)

	// Block commits a and also a tx from ids[1] with nonce 0, making
	// "stale" permanently invalid.
	other := tx(ids[1], ids[3], 7, 0)
	block := &ledger.Block{Round: 1, Txns: []ledger.Transaction{*a, *other}}
	if err := bal.ApplyTx(a); err != nil {
		t.Fatal(err)
	}
	if err := bal.ApplyTx(other); err != nil {
		t.Fatal(err)
	}
	pool.Committed(block, bal)

	if pool.Len() != 1 {
		t.Fatalf("len = %d, want just the nonce-1 tx", pool.Len())
	}
	chosen := pool.Assemble(bal, 1<<20)
	if len(chosen) != 1 || chosen[0].Nonce != 1 {
		t.Fatalf("remaining pool wrong: %v", chosen)
	}
}

// Property: whatever the pool holds, Assemble's output applies cleanly
// in order to the given balances and fits the byte budget.
func TestAssembleAlwaysValidQuick(t *testing.T) {
	pool, bal, ids := setup()
	f := func(ops [16]struct {
		From, To uint8
		Amount   uint8
		Nonce    uint8
	}, maxKB uint8) bool {
		pool = New()
		for _, op := range ops {
			from := ids[int(op.From)%len(ids)]
			to := ids[int(op.To)%len(ids)]
			pool.Add(tx(from, to, uint64(op.Amount)%40+1, uint64(op.Nonce)%4))
		}
		budget := int(maxKB%8) * ledger.TxWireSize
		chosen := pool.Assemble(bal, budget)
		if len(chosen)*ledger.TxWireSize > budget {
			return false
		}
		check := bal.Clone()
		for i := range chosen {
			if err := check.ApplyTx(&chosen[i]); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
