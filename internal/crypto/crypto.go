// Package crypto defines the cryptographic interface used by every
// protocol component (signatures, VRFs, hashing) and provides two
// implementations:
//
//   - Real: Ed25519 signatures (stdlib) and our ECVRF over edwards25519
//     (internal/crypto/vrf). This is the faithful construction from the
//     paper (§9: Curve25519 signatures and the VRF of Goldberg et al.).
//   - Fast: keyed-hash stand-ins with an explicit CPU-cost model, used
//     for large simulations. The paper itself replaces signature/VRF
//     verification with equal-duration sleeps for its 500,000-user
//     experiment (§10.1); Fast is the systematic version of that trick.
//
// All protocol code is written against Provider, so experiments choose
// fidelity per run.
package crypto

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Digest is a 32-byte SHA-256 hash value, used for block hashes, message
// hashes and seeds. The paper uses SHA-256 as its hash function H (§9).
type Digest [32]byte

// String returns a short hex prefix for logging.
func (d Digest) String() string {
	return hex.EncodeToString(d[:4])
}

// Hex returns the full hex encoding.
func (d Digest) Hex() string {
	return hex.EncodeToString(d[:])
}

// IsZero reports whether d is the all-zero digest.
func (d Digest) IsZero() bool {
	return d == Digest{}
}

// Compare orders digests lexicographically by their canonical byte
// encoding, the tie-break order used by the protocol (common-coin
// min-hash selection, deterministic fork-tip ordering).
func (d Digest) Compare(o Digest) int {
	return bytes.Compare(d[:], o[:])
}

// Less reports whether d sorts before o in canonical byte order.
func (d Digest) Less(o Digest) bool {
	return d.Compare(o) < 0
}

// HashBytes hashes the concatenation of the given byte slices with a
// domain-separation label, modeling the random oracle H of the paper.
func HashBytes(domain string, parts ...[]byte) Digest {
	h := sha256.New()
	// Length-prefix the domain and every part so concatenation is
	// unambiguous.
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(domain)))
	h.Write(lenBuf[:])
	h.Write([]byte(domain))
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// HashUint64 is a convenience for hashing integers along with byte parts.
func HashUint64(domain string, x uint64, parts ...[]byte) Digest {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	all := make([][]byte, 0, len(parts)+1)
	all = append(all, buf[:])
	all = append(all, parts...)
	return HashBytes(domain, all...)
}

// PublicKey identifies a user. Both providers emit 32-byte keys, so a
// PublicKey is usable as a map key throughout the ledger and protocol.
type PublicKey [32]byte

// String returns a short hex prefix for logging.
func (pk PublicKey) String() string {
	return hex.EncodeToString(pk[:4])
}

// Compare orders public keys lexicographically by their canonical byte
// encoding, the order used wherever senders must be sorted
// deterministically (block assembly, mempool sharding).
func (pk PublicKey) Compare(o PublicKey) int {
	return bytes.Compare(pk[:], o[:])
}

// Less reports whether pk sorts before o in canonical byte order.
func (pk PublicKey) Less(o PublicKey) bool {
	return pk.Compare(o) < 0
}

// VRFOutput is the 64-byte pseudorandom output of the VRF ("hash" in
// Algorithms 1-2 of the paper).
type VRFOutput [64]byte

// Seed is the 32-byte secret seed from which an identity is derived.
type Seed [32]byte

// SeedFromUint64 derives a deterministic test/simulation seed.
func SeedFromUint64(x uint64) Seed {
	d := HashUint64("algorand.seed", x)
	return Seed(d)
}
