package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/sha512"
	"sync"
	"time"
)

// Fast is a simulation-grade provider: signatures and VRF outputs are
// keyed hashes, verified through an in-process registry mapping public
// keys back to their seeds. It preserves the *statistical* properties
// sortition and BA⋆ need (deterministic, uniformly distributed, unique
// per (key, input)) but is NOT unforgeable across processes: anyone with
// the registry can sign for anyone. It exists so that experiments with
// tens of thousands of users are tractable on one machine, exactly as
// the paper replaces verification with equal-cost sleeps for its
// largest runs (§10.1). The CPU cost of the displaced real operations is
// preserved via the CostModel, which the simulator charges to the
// virtual clock.
//
// Adversarial tests that rely on unforgeability must use Real.
type Fast struct {
	mu    sync.RWMutex
	seeds map[PublicKey]Seed

	// Cost is the modeled CPU cost, calibrated by default from the Real
	// provider's measured performance (see DefaultFastCosts).
	Cost CostModel
}

// DefaultFastCosts approximates the cost of libsodium-class Ed25519 and
// ECVRF operations on a 2017 server core, which is what the paper's
// prototype used. (Our own pure-Go Real provider is within a small
// factor of these numbers; see the crypto benchmarks.)
func DefaultFastCosts() CostModel {
	return CostModel{
		Sign:      60 * time.Microsecond,
		VerifySig: 160 * time.Microsecond,
		VRFProve:  255 * time.Microsecond,
		VRFVerify: 330 * time.Microsecond,
	}
}

// NewFast returns a Fast provider with DefaultFastCosts.
func NewFast() *Fast {
	return &Fast{
		seeds: make(map[PublicKey]Seed),
		Cost:  DefaultFastCosts(),
	}
}

func (*Fast) Name() string { return "fast" }

// fastPK derives the public key for a seed.
func fastPK(seed Seed) PublicKey {
	d := HashBytes("fastcrypto.pk", seed[:])
	return PublicKey(d)
}

type fastIdentity struct {
	seed Seed
	pk   PublicKey
}

func (id *fastIdentity) PublicKey() PublicKey { return id.pk }

func fastSign(seed Seed, msg []byte) []byte {
	mac := hmac.New(sha256.New, append([]byte("fastcrypto.sig"), seed[:]...))
	mac.Write(msg)
	return mac.Sum(nil)
}

func fastVRF(seed Seed, alpha []byte) VRFOutput {
	mac := hmac.New(sha512.New, append([]byte("fastcrypto.vrf"), seed[:]...))
	mac.Write(alpha)
	var out VRFOutput
	copy(out[:], mac.Sum(nil))
	return out
}

func (id *fastIdentity) Sign(msg []byte) []byte {
	return fastSign(id.seed, msg)
}

func (id *fastIdentity) VRFProve(alpha []byte) (VRFOutput, []byte) {
	out := fastVRF(id.seed, alpha)
	// The proof is the output itself; the verifier recomputes it from the
	// registry. Its 64-byte size stands in for the real 80-byte proof in
	// bandwidth accounting (close enough; message size constants add the
	// difference explicitly, see network wire sizes).
	return out, out[:]
}

func (f *Fast) NewIdentity(seed Seed) Identity {
	pk := fastPK(seed)
	f.mu.Lock()
	f.seeds[pk] = seed
	f.mu.Unlock()
	return &fastIdentity{seed: seed, pk: pk}
}

func (f *Fast) lookup(pk PublicKey) (Seed, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s, ok := f.seeds[pk]
	return s, ok
}

func (f *Fast) VerifySig(pk PublicKey, msg, sig []byte) bool {
	seed, ok := f.lookup(pk)
	if !ok {
		return false
	}
	want := fastSign(seed, msg)
	return hmac.Equal(want, sig)
}

func (f *Fast) VRFVerify(pk PublicKey, alpha, proof []byte) (VRFOutput, bool) {
	seed, ok := f.lookup(pk)
	if !ok {
		return VRFOutput{}, false
	}
	want := fastVRF(seed, alpha)
	if !hmac.Equal(want[:], proof) {
		return VRFOutput{}, false
	}
	return want, true
}

func (f *Fast) Costs() CostModel { return f.Cost }
