package crypto

import (
	"bytes"
	"crypto/ed25519"
	"time"

	"algorand/internal/crypto/vrf"
)

// Identity is one user's secret-key handle. Algorand users keep no
// private state other than their private keys (§1), and Identity is
// exactly that state.
type Identity interface {
	// PublicKey returns the user's public key. For the Real provider the
	// signing and VRF public keys coincide (same RFC 8032 derivation).
	PublicKey() PublicKey
	// Sign signs msg and returns the signature.
	Sign(msg []byte) []byte
	// VRFProve evaluates the VRF on alpha, returning the pseudorandom
	// output and a proof verifiable with VRFVerify.
	VRFProve(alpha []byte) (VRFOutput, []byte)
}

// CostModel gives the modeled CPU time of each operation. The network
// simulator charges these to the virtual clock so that large FastCrypto
// runs still account for verification CPU, mirroring the paper's
// replace-verification-with-sleep methodology (§10.1).
type CostModel struct {
	Sign      time.Duration
	VerifySig time.Duration
	VRFProve  time.Duration
	VRFVerify time.Duration
}

// Provider bundles verification and identity creation.
type Provider interface {
	// Name identifies the provider in logs and experiment metadata.
	Name() string
	// NewIdentity derives an identity from a seed, deterministically.
	NewIdentity(seed Seed) Identity
	// VerifySig reports whether sig is a valid signature on msg by pk.
	VerifySig(pk PublicKey, msg, sig []byte) bool
	// VRFVerify checks a VRF proof and returns the output on success.
	VRFVerify(pk PublicKey, alpha, proof []byte) (VRFOutput, bool)
	// Costs returns the modeled CPU cost of each operation.
	Costs() CostModel
}

// realIdentity implements Identity with Ed25519 + ECVRF.
type realIdentity struct {
	signKey ed25519.PrivateKey
	vrfKey  *vrf.PrivateKey
	pk      PublicKey
}

func (id *realIdentity) PublicKey() PublicKey { return id.pk }

func (id *realIdentity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.signKey, msg)
}

func (id *realIdentity) VRFProve(alpha []byte) (VRFOutput, []byte) {
	beta, pi, err := id.vrfKey.Prove(alpha)
	if err != nil {
		// encode-to-curve failing 256 times has probability ~2^-256.
		panic("crypto: VRF prove failed: " + err.Error())
	}
	return VRFOutput(beta), pi[:]
}

// Real is the full-fidelity provider: Ed25519 signatures and
// ECVRF-EDWARDS25519-SHA512-TAI proofs.
type Real struct {
	// CPU costs default to zero: with Real crypto the operations
	// actually execute, so the simulator may measure them instead.
	CostOverride *CostModel
}

// NewReal returns the full-fidelity provider.
func NewReal() *Real { return &Real{} }

func (*Real) Name() string { return "real" }

func (r *Real) NewIdentity(seed Seed) Identity {
	signKey := ed25519.NewKeyFromSeed(seed[:])
	vrfKey, err := vrf.GenerateKey(seed[:])
	if err != nil {
		panic("crypto: " + err.Error())
	}
	var pk PublicKey
	copy(pk[:], signKey.Public().(ed25519.PublicKey))
	// Consistency: the VRF public key is derived identically.
	if !bytes.Equal(pk[:], vrfKey.Public()) {
		panic("crypto: signing/VRF public key mismatch")
	}
	return &realIdentity{signKey: signKey, vrfKey: vrfKey, pk: pk}
}

func (r *Real) VerifySig(pk PublicKey, msg, sig []byte) bool {
	if len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pk[:]), msg, sig)
}

func (r *Real) VRFVerify(pk PublicKey, alpha, proof []byte) (VRFOutput, bool) {
	beta, err := vrf.Verify(vrf.PublicKey(pk[:]), alpha, proof)
	if err != nil {
		return VRFOutput{}, false
	}
	return VRFOutput(beta), true
}

func (r *Real) Costs() CostModel {
	if r.CostOverride != nil {
		return *r.CostOverride
	}
	return CostModel{}
}
