package crypto

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Key files hold a user's 32-byte identity seed — the only private
// state an Algorand user keeps (§1). The format is one hex line with a
// tag, restrictive permissions, nothing else:
//
//	algorand-seed:9f86d081884c7d65...
const keyFileTag = "algorand-seed:"

// SaveSeed writes a seed to path with 0600 permissions, refusing to
// overwrite an existing file (losing a key means losing the money).
func SaveSeed(path string, seed Seed) error {
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("crypto: key file %s already exists", path)
	}
	data := keyFileTag + hex.EncodeToString(seed[:]) + "\n"
	return os.WriteFile(path, []byte(data), 0o600)
}

// LoadSeed reads a seed written by SaveSeed.
func LoadSeed(path string) (Seed, error) {
	var seed Seed
	data, err := os.ReadFile(path)
	if err != nil {
		return seed, err
	}
	line := strings.TrimSpace(string(data))
	if !strings.HasPrefix(line, keyFileTag) {
		return seed, errors.New("crypto: not an algorand key file")
	}
	raw, err := hex.DecodeString(strings.TrimPrefix(line, keyFileTag))
	if err != nil {
		return seed, fmt.Errorf("crypto: corrupt key file: %w", err)
	}
	if len(raw) != len(seed) {
		return seed, fmt.Errorf("crypto: key file holds %d bytes, want %d", len(raw), len(seed))
	}
	copy(seed[:], raw)
	return seed, nil
}

// RandomSeed returns a fresh seed from the OS entropy source.
func RandomSeed() (Seed, error) {
	var seed Seed
	f, err := os.Open("/dev/urandom")
	if err != nil {
		return seed, err
	}
	defer f.Close()
	if _, err := f.Read(seed[:]); err != nil {
		return seed, err
	}
	return seed, nil
}
