package crypto

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Key files hold a user's 32-byte identity seed — the only private
// state an Algorand user keeps (§1). The format is one hex line with a
// tag, restrictive permissions, nothing else:
//
//	algorand-seed:9f86d081884c7d65...
const keyFileTag = "algorand-seed:"

// SaveSeed writes a seed to path with 0600 permissions, refusing to
// overwrite an existing file (losing a key means losing the money).
// O_EXCL makes the claim on the path atomic — two concurrent saves can
// never both succeed, and there is no stat-then-write window for one to
// silently clobber the other — and the file is fsynced before close so
// a crash just after key generation cannot leave a truncated key on
// disk with the caller believing it saved.
func SaveSeed(path string, seed Seed) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		if os.IsExist(err) {
			return fmt.Errorf("crypto: key file %s already exists", path)
		}
		return err
	}
	data := keyFileTag + hex.EncodeToString(seed[:]) + "\n"
	if _, err := f.Write([]byte(data)); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// LoadSeed reads a seed written by SaveSeed.
func LoadSeed(path string) (Seed, error) {
	var seed Seed
	data, err := os.ReadFile(path)
	if err != nil {
		return seed, err
	}
	line := strings.TrimSpace(string(data))
	if !strings.HasPrefix(line, keyFileTag) {
		return seed, errors.New("crypto: not an algorand key file")
	}
	raw, err := hex.DecodeString(strings.TrimPrefix(line, keyFileTag))
	if err != nil {
		return seed, fmt.Errorf("crypto: corrupt key file: %w", err)
	}
	if len(raw) != len(seed) {
		return seed, fmt.Errorf("crypto: key file holds %d bytes, want %d", len(raw), len(seed))
	}
	copy(seed[:], raw)
	return seed, nil
}

// RandomSeed returns a fresh seed from the OS entropy source.
// crypto/rand.Read fills the whole seed or errors — a bare Read on
// /dev/urandom may legally return fewer bytes than asked, which would
// leave the seed's tail zeroed and silently shrink the keyspace.
func RandomSeed() (Seed, error) {
	var seed Seed
	if _, err := rand.Read(seed[:]); err != nil {
		return seed, err
	}
	return seed, nil
}
