// Package fe implements arithmetic in GF(2^255-19), the base field of
// edwards25519, using five unsaturated 51-bit limbs in uint64s.
//
// The representation and reduction strategy follow the well-known ref10
// design: limbs are allowed to grow slightly past 51 bits between
// operations and are brought back by carry propagation. Operations are
// written to be correct for any reduced inputs; they are not guaranteed
// to be constant-time, which is acceptable for this research
// implementation (see DESIGN.md).
package fe

import (
	"errors"
	"math/bits"
)

// Element is an element of GF(2^255-19). The zero value is a valid zero
// element.
//
// Internally, an element is represented as v = l0 + l1*2^51 + l2*2^102 +
// l3*2^153 + l4*2^204, with each limb kept below roughly 2^52.
type Element struct {
	l0, l1, l2, l3, l4 uint64
}

const maskLow51Bits uint64 = (1 << 51) - 1

var (
	feZero = &Element{}
	feOne  = &Element{l0: 1}
)

// Zero sets v = 0 and returns v.
func (v *Element) Zero() *Element {
	*v = *feZero
	return v
}

// One sets v = 1 and returns v.
func (v *Element) One() *Element {
	*v = *feOne
	return v
}

// Set sets v = a and returns v.
func (v *Element) Set(a *Element) *Element {
	*v = *a
	return v
}

// IsZero reports whether v == 0.
func (v *Element) IsZero() bool {
	b := v.Bytes()
	var acc byte
	for _, x := range b {
		acc |= x
	}
	return acc == 0
}

// Equal reports whether v == u.
func (v *Element) Equal(u *Element) bool {
	return v.Bytes() == u.Bytes()
}

// IsNegative reports whether v is "negative", defined as the least
// significant bit of the canonical encoding (RFC 8032 convention).
func (v *Element) IsNegative() bool {
	b := v.Bytes()
	return b[0]&1 == 1
}

// carryPropagate brings the limbs below 52 bits by performing one round
// of carry propagation, folding the top carry back via 19.
func (v *Element) carryPropagate() *Element {
	c0 := v.l0 >> 51
	c1 := v.l1 >> 51
	c2 := v.l2 >> 51
	c3 := v.l3 >> 51
	c4 := v.l4 >> 51

	v.l0 = v.l0&maskLow51Bits + c4*19
	v.l1 = v.l1&maskLow51Bits + c0
	v.l2 = v.l2&maskLow51Bits + c1
	v.l3 = v.l3&maskLow51Bits + c2
	v.l4 = v.l4&maskLow51Bits + c3
	return v
}

// reduce fully reduces v modulo 2^255-19 to its canonical representative.
func (v *Element) reduce() *Element {
	v.carryPropagate()

	// After the light reduction we know that all limbs are below 2^52 and
	// the value is below 2^256. Determine whether v >= p by adding 19 and
	// checking for a carry out of bit 255.
	c := (v.l0 + 19) >> 51
	c = (v.l1 + c) >> 51
	c = (v.l2 + c) >> 51
	c = (v.l3 + c) >> 51
	c = (v.l4 + c) >> 51

	// If v >= p, subtract p by adding 19 and dropping bit 255 and above.
	v.l0 += 19 * c
	v.l1 += v.l0 >> 51
	v.l0 &= maskLow51Bits
	v.l2 += v.l1 >> 51
	v.l1 &= maskLow51Bits
	v.l3 += v.l2 >> 51
	v.l2 &= maskLow51Bits
	v.l4 += v.l3 >> 51
	v.l3 &= maskLow51Bits
	v.l4 &= maskLow51Bits // discard the 2^255 bit

	return v
}

// Add sets v = a + b and returns v.
func (v *Element) Add(a, b *Element) *Element {
	v.l0 = a.l0 + b.l0
	v.l1 = a.l1 + b.l1
	v.l2 = a.l2 + b.l2
	v.l3 = a.l3 + b.l3
	v.l4 = a.l4 + b.l4
	return v.carryPropagate()
}

// Subtract sets v = a - b and returns v.
func (v *Element) Subtract(a, b *Element) *Element {
	// Add 2p to keep limbs positive before subtracting.
	v.l0 = (a.l0 + 0xFFFFFFFFFFFDA) - b.l0
	v.l1 = (a.l1 + 0xFFFFFFFFFFFFE) - b.l1
	v.l2 = (a.l2 + 0xFFFFFFFFFFFFE) - b.l2
	v.l3 = (a.l3 + 0xFFFFFFFFFFFFE) - b.l3
	v.l4 = (a.l4 + 0xFFFFFFFFFFFFE) - b.l4
	return v.carryPropagate()
}

// Negate sets v = -a and returns v.
func (v *Element) Negate(a *Element) *Element {
	return v.Subtract(feZero, a)
}

// uint128 holds the 128-bit accumulator used during multiplication.
type uint128 struct {
	lo, hi uint64
}

func mul64(a, b uint64) uint128 {
	hi, lo := bits.Mul64(a, b)
	return uint128{lo, hi}
}

func addMul64(v uint128, a, b uint64) uint128 {
	hi, lo := bits.Mul64(a, b)
	lo, c := bits.Add64(lo, v.lo, 0)
	hi, _ = bits.Add64(hi, v.hi, c)
	return uint128{lo, hi}
}

// shiftRightBy51 returns a >> 51. a is assumed to be at most 115 bits.
func shiftRightBy51(a uint128) uint64 {
	return a.hi<<(64-51) | a.lo>>51
}

// Multiply sets v = a * b and returns v.
func (v *Element) Multiply(a, b *Element) *Element {
	a0, a1, a2, a3, a4 := a.l0, a.l1, a.l2, a.l3, a.l4
	b0, b1, b2, b3, b4 := b.l0, b.l1, b.l2, b.l3, b.l4

	a1_19 := a1 * 19
	a2_19 := a2 * 19
	a3_19 := a3 * 19
	a4_19 := a4 * 19

	// r0 = a0×b0 + 19×(a1×b4 + a2×b3 + a3×b2 + a4×b1)
	r0 := mul64(a0, b0)
	r0 = addMul64(r0, a1_19, b4)
	r0 = addMul64(r0, a2_19, b3)
	r0 = addMul64(r0, a3_19, b2)
	r0 = addMul64(r0, a4_19, b1)

	// r1 = a0×b1 + a1×b0 + 19×(a2×b4 + a3×b3 + a4×b2)
	r1 := mul64(a0, b1)
	r1 = addMul64(r1, a1, b0)
	r1 = addMul64(r1, a2_19, b4)
	r1 = addMul64(r1, a3_19, b3)
	r1 = addMul64(r1, a4_19, b2)

	// r2 = a0×b2 + a1×b1 + a2×b0 + 19×(a3×b4 + a4×b3)
	r2 := mul64(a0, b2)
	r2 = addMul64(r2, a1, b1)
	r2 = addMul64(r2, a2, b0)
	r2 = addMul64(r2, a3_19, b4)
	r2 = addMul64(r2, a4_19, b3)

	// r3 = a0×b3 + a1×b2 + a2×b1 + a3×b0 + 19×a4×b4
	r3 := mul64(a0, b3)
	r3 = addMul64(r3, a1, b2)
	r3 = addMul64(r3, a2, b1)
	r3 = addMul64(r3, a3, b0)
	r3 = addMul64(r3, a4_19, b4)

	// r4 = a0×b4 + a1×b3 + a2×b2 + a3×b1 + a4×b0
	r4 := mul64(a0, b4)
	r4 = addMul64(r4, a1, b3)
	r4 = addMul64(r4, a2, b2)
	r4 = addMul64(r4, a3, b1)
	r4 = addMul64(r4, a4, b0)

	c0 := shiftRightBy51(r0)
	c1 := shiftRightBy51(r1)
	c2 := shiftRightBy51(r2)
	c3 := shiftRightBy51(r3)
	c4 := shiftRightBy51(r4)

	v.l0 = r0.lo&maskLow51Bits + c4*19
	v.l1 = r1.lo&maskLow51Bits + c0
	v.l2 = r2.lo&maskLow51Bits + c1
	v.l3 = r3.lo&maskLow51Bits + c2
	v.l4 = r4.lo&maskLow51Bits + c3
	return v.carryPropagate()
}

// Square sets v = a * a and returns v.
func (v *Element) Square(a *Element) *Element {
	l0, l1, l2, l3, l4 := a.l0, a.l1, a.l2, a.l3, a.l4

	l0_2 := l0 * 2
	l1_2 := l1 * 2
	l1_38 := l1 * 38
	l2_38 := l2 * 38
	l3_38 := l3 * 38
	l3_19 := l3 * 19
	l4_19 := l4 * 19

	// r0 = l0×l0 + 19×2×(l1×l4 + l2×l3)
	r0 := mul64(l0, l0)
	r0 = addMul64(r0, l1_38, l4)
	r0 = addMul64(r0, l2_38, l3)

	// r1 = 2×l0×l1 + 19×2×l2×l4 + 19×l3×l3
	r1 := mul64(l0_2, l1)
	r1 = addMul64(r1, l2_38, l4)
	r1 = addMul64(r1, l3_19, l3)

	// r2 = 2×l0×l2 + l1×l1 + 19×2×l3×l4
	r2 := mul64(l0_2, l2)
	r2 = addMul64(r2, l1, l1)
	r2 = addMul64(r2, l3_38, l4)

	// r3 = 2×l0×l3 + 2×l1×l2 + 19×l4×l4
	r3 := mul64(l0_2, l3)
	r3 = addMul64(r3, l1_2, l2)
	r3 = addMul64(r3, l4_19, l4)

	// r4 = 2×l0×l4 + 2×l1×l3 + l2×l2
	r4 := mul64(l0_2, l4)
	r4 = addMul64(r4, l1_2, l3)
	r4 = addMul64(r4, l2, l2)

	c0 := shiftRightBy51(r0)
	c1 := shiftRightBy51(r1)
	c2 := shiftRightBy51(r2)
	c3 := shiftRightBy51(r3)
	c4 := shiftRightBy51(r4)

	v.l0 = r0.lo&maskLow51Bits + c4*19
	v.l1 = r1.lo&maskLow51Bits + c0
	v.l2 = r2.lo&maskLow51Bits + c1
	v.l3 = r3.lo&maskLow51Bits + c2
	v.l4 = r4.lo&maskLow51Bits + c3
	return v.carryPropagate()
}

// Mult32 sets v = a * x for a small scalar x and returns v.
func (v *Element) Mult32(a *Element, x uint32) *Element {
	x0lo, x0hi := mul51(a.l0, x)
	x1lo, x1hi := mul51(a.l1, x)
	x2lo, x2hi := mul51(a.l2, x)
	x3lo, x3hi := mul51(a.l3, x)
	x4lo, x4hi := mul51(a.l4, x)
	v.l0 = x0lo + 19*x4hi
	v.l1 = x1lo + x0hi
	v.l2 = x2lo + x1hi
	v.l3 = x3lo + x2hi
	v.l4 = x4lo + x3hi
	return v.carryPropagate()
}

// mul51 returns lo + hi*2^51 = a * b where a is below 2^52.
func mul51(a uint64, b uint32) (lo, hi uint64) {
	mh, ml := bits.Mul64(a, uint64(b))
	lo = ml & maskLow51Bits
	hi = (mh << 13) | (ml >> 51)
	return
}

// pow2k sets v = a^(2^k) by squaring k times. k must be positive.
func (v *Element) pow2k(a *Element, k int) *Element {
	v.Square(a)
	for i := 1; i < k; i++ {
		v.Square(v)
	}
	return v
}

// Invert sets v = 1/a mod p and returns v. If a == 0, v is set to 0.
func (v *Element) Invert(a *Element) *Element {
	// Inversion via exponentiation by p-2 = 2^255-21, using the classic
	// ref10 addition chain.
	var z2, z9, z11, z2_5_0, z2_10_0, z2_20_0, z2_50_0, z2_100_0, t Element

	z2.Square(a)             // 2
	t.pow2k(&z2, 2)          // 8
	z9.Multiply(&t, a)       // 9
	z11.Multiply(&z9, &z2)   // 11
	t.Square(&z11)           // 22
	z2_5_0.Multiply(&t, &z9) // 31 = 2^5 - 1

	t.pow2k(&z2_5_0, 5)            // 2^10 - 2^5
	z2_10_0.Multiply(&t, &z2_5_0)  // 2^10 - 1
	t.pow2k(&z2_10_0, 10)          // 2^20 - 2^10
	z2_20_0.Multiply(&t, &z2_10_0) // 2^20 - 1
	t.pow2k(&z2_20_0, 20)          // 2^40 - 2^20
	t.Multiply(&t, &z2_20_0)       // 2^40 - 1
	t.pow2k(&t, 10)                // 2^50 - 2^10
	z2_50_0.Multiply(&t, &z2_10_0) // 2^50 - 1
	t.pow2k(&z2_50_0, 50)          // 2^100 - 2^50
	z2_100_0.Multiply(&t, &z2_50_0)
	t.pow2k(&z2_100_0, 100)   // 2^200 - 2^100
	t.Multiply(&t, &z2_100_0) // 2^200 - 1
	t.pow2k(&t, 50)           // 2^250 - 2^50
	t.Multiply(&t, &z2_50_0)  // 2^250 - 1
	t.pow2k(&t, 5)            // 2^255 - 2^5
	return v.Multiply(&t, &z11)
}

// Pow22523 sets v = a^((p-5)/8) = a^(2^252-3) and returns v. This is the
// exponent used when extracting square roots.
func (v *Element) Pow22523(a *Element) *Element {
	var t0, t1, t2 Element

	t0.Square(a)              // 2
	t1.pow2k(&t0, 2)          // 8
	t1.Multiply(a, &t1)       // 9
	t0.Multiply(&t0, &t1)     // 11
	t0.Square(&t0)            // 22
	t0.Multiply(&t1, &t0)     // 31 = 2^5 - 1
	t1.pow2k(&t0, 5)          // 2^10 - 2^5
	t0.Multiply(&t1, &t0)     // 2^10 - 1
	t1.pow2k(&t0, 10)         // 2^20 - 2^10
	t1.Multiply(&t1, &t0)     // 2^20 - 1
	t2.pow2k(&t1, 20)         // 2^40 - 2^20
	t1.Multiply(&t2, &t1)     // 2^40 - 1
	t1.pow2k(&t1, 10)         // 2^50 - 2^10
	t0.Multiply(&t1, &t0)     // 2^50 - 1
	t1.pow2k(&t0, 50)         // 2^100 - 2^50
	t1.Multiply(&t1, &t0)     // 2^100 - 1
	t2.pow2k(&t1, 100)        // 2^200 - 2^100
	t1.Multiply(&t2, &t1)     // 2^200 - 1
	t1.pow2k(&t1, 50)         // 2^250 - 2^50
	t0.Multiply(&t1, &t0)     // 2^250 - 1
	t0.pow2k(&t0, 2)          // 2^252 - 4
	return v.Multiply(&t0, a) // 2^252 - 3
}

// SqrtRatio sets v to a square root of u/w, and returns wasSquare
// reporting whether u/w was a quadratic residue. The chosen root is the
// non-negative one (per IsNegative). If u/w is not square, v is set to
// sqrt(i*u/w) where i = sqrt(-1); callers that only care about the
// square case should check wasSquare.
func (v *Element) SqrtRatio(u, w *Element) (wasSquare bool) {
	var t0, t1 Element

	// r = u * w^3 * (u * w^7)^((p-5)/8)
	var w2, w3, w7, r, check Element
	w2.Square(w)
	w3.Multiply(&w2, w)
	w7.Multiply(&w3, &w2)
	w7.Multiply(&w7, &w2)
	t0.Multiply(u, &w7)
	t0.Pow22523(&t0)
	r.Multiply(u, &w3)
	r.Multiply(&r, &t0)

	check.Square(&r)
	check.Multiply(&check, w) // check = w * r^2

	var negU, negUi Element
	negU.Negate(u)
	negUi.Multiply(&negU, sqrtM1())

	switch {
	case check.Equal(u):
		wasSquare = true
	case check.Equal(&negU):
		// r is off by a factor of sqrt(-1).
		r.Multiply(&r, sqrtM1())
		wasSquare = true
	case check.Equal(&negUi):
		r.Multiply(&r, sqrtM1())
		wasSquare = false
	default:
		wasSquare = false
	}

	// Choose the non-negative root.
	if r.IsNegative() {
		t1.Negate(&r)
		r.Set(&t1)
	}
	v.Set(&r)
	return wasSquare
}

// SetBytes sets v to the 32-byte little-endian encoding x, ignoring the
// most significant bit (as in RFC 8032 field element decoding), and
// returns v. An error is returned if len(x) != 32.
func (v *Element) SetBytes(x []byte) (*Element, error) {
	if len(x) != 32 {
		return nil, errors.New("fe: invalid field element length")
	}
	v.l0 = le64(x[0:8]) & maskLow51Bits
	v.l1 = (le64(x[6:14]) >> 3) & maskLow51Bits
	v.l2 = (le64(x[12:20]) >> 6) & maskLow51Bits
	v.l3 = (le64(x[19:27]) >> 1) & maskLow51Bits
	v.l4 = (le64(x[24:32]) >> 12) & maskLow51Bits
	return v, nil
}

// SetCanonicalBytes is like SetBytes but rejects non-canonical encodings
// (values >= p, or with the high bit set).
func (v *Element) SetCanonicalBytes(x []byte) (*Element, error) {
	if _, err := v.SetBytes(x); err != nil {
		return nil, err
	}
	if x[31]&0x80 != 0 {
		return nil, errors.New("fe: non-canonical encoding (high bit set)")
	}
	b := v.Bytes()
	for i := range b {
		if b[i] != x[i] {
			return nil, errors.New("fe: non-canonical encoding")
		}
	}
	return v, nil
}

// Bytes returns the canonical 32-byte little-endian encoding of v.
func (v *Element) Bytes() [32]byte {
	t := *v
	t.reduce()

	var out [32]byte
	putLE64(out[0:8], t.l0|t.l1<<51)
	putLE64(out[8:16], t.l1>>13|t.l2<<38)
	putLE64(out[16:24], t.l2>>26|t.l3<<25)
	putLE64(out[24:32], t.l3>>39|t.l4<<12)
	return out
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, x uint64) {
	_ = b[7]
	b[0] = byte(x)
	b[1] = byte(x >> 8)
	b[2] = byte(x >> 16)
	b[3] = byte(x >> 24)
	b[4] = byte(x >> 32)
	b[5] = byte(x >> 40)
	b[6] = byte(x >> 48)
	b[7] = byte(x >> 56)
}

// Select sets v = a if cond == 1 and v = b if cond == 0.
func (v *Element) Select(a, b *Element, cond int) *Element {
	if cond != 0 {
		return v.Set(a)
	}
	return v.Set(b)
}
