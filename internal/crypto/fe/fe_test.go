package fe

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// randElement returns a uniformly random reduced element along with its
// big.Int value.
func randElement(rng *rand.Rand) (*Element, *big.Int) {
	x := new(big.Int).Rand(rng, P())
	var e Element
	e.FromBig(x)
	return &e, x
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		e, x := randElement(rng)
		b := e.Bytes()
		var e2 Element
		if _, err := e2.SetBytes(b[:]); err != nil {
			t.Fatal(err)
		}
		if !e.Equal(&e2) {
			t.Fatalf("round trip mismatch for %v", x)
		}
		if e2.Big().Cmp(x) != 0 {
			t.Fatalf("big round trip mismatch: got %v want %v", e2.Big(), x)
		}
	}
}

func TestSetBytesIgnoresHighBit(t *testing.T) {
	var b [32]byte
	b[0] = 5
	b[31] = 0x80
	var e, want Element
	if _, err := e.SetBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	want.FromBig(big.NewInt(5))
	if !e.Equal(&want) {
		t.Fatalf("high bit not ignored: got %v", e.Big())
	}
}

func TestSetCanonicalBytesRejects(t *testing.T) {
	// p itself encodes non-canonically.
	p := P()
	var buf [32]byte
	p.FillBytes(buf[:])
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	var e Element
	if _, err := e.SetCanonicalBytes(buf[:]); err == nil {
		t.Fatal("expected rejection of p")
	}
	// High-bit set must be rejected too.
	var hb [32]byte
	hb[31] = 0x80
	if _, err := e.SetCanonicalBytes(hb[:]); err == nil {
		t.Fatal("expected rejection of high bit")
	}
	// A canonical value must be accepted.
	var one [32]byte
	one[0] = 1
	if _, err := e.SetCanonicalBytes(one[:]); err != nil {
		t.Fatal(err)
	}
}

// TestArithAgainstBig cross-checks limb arithmetic against math/big.
func TestArithAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := P()
	for i := 0; i < 1000; i++ {
		a, ab := randElement(rng)
		b, bb := randElement(rng)

		var sum, diff, prod, sq, neg Element
		sum.Add(a, b)
		diff.Subtract(a, b)
		prod.Multiply(a, b)
		sq.Square(a)
		neg.Negate(a)

		wantSum := new(big.Int).Add(ab, bb)
		wantSum.Mod(wantSum, p)
		if sum.Big().Cmp(wantSum) != 0 {
			t.Fatalf("add mismatch: %v + %v", ab, bb)
		}
		wantDiff := new(big.Int).Sub(ab, bb)
		wantDiff.Mod(wantDiff, p)
		if diff.Big().Cmp(wantDiff) != 0 {
			t.Fatalf("sub mismatch: %v - %v", ab, bb)
		}
		wantProd := new(big.Int).Mul(ab, bb)
		wantProd.Mod(wantProd, p)
		if prod.Big().Cmp(wantProd) != 0 {
			t.Fatalf("mul mismatch: %v * %v", ab, bb)
		}
		wantSq := new(big.Int).Mul(ab, ab)
		wantSq.Mod(wantSq, p)
		if sq.Big().Cmp(wantSq) != 0 {
			t.Fatalf("square mismatch: %v", ab)
		}
		wantNeg := new(big.Int).Neg(ab)
		wantNeg.Mod(wantNeg, p)
		if neg.Big().Cmp(wantNeg) != 0 {
			t.Fatalf("neg mismatch: %v", ab)
		}
	}
}

func TestMult32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := P()
	for i := 0; i < 200; i++ {
		a, ab := randElement(rng)
		x := rng.Uint32()
		var got Element
		got.Mult32(a, x)
		want := new(big.Int).Mul(ab, big.NewInt(int64(x)))
		want.Mod(want, p)
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("mult32 mismatch: %v * %d", ab, x)
		}
	}
}

func TestInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var one Element
	one.One()
	for i := 0; i < 100; i++ {
		a, _ := randElement(rng)
		if a.IsZero() {
			continue
		}
		var inv, prod Element
		inv.Invert(a)
		prod.Multiply(a, &inv)
		if !prod.Equal(&one) {
			t.Fatalf("a * a^-1 != 1 for %v", a.Big())
		}
	}
	// Invert(0) == 0 by convention.
	var zero, invZero Element
	invZero.Invert(&zero)
	if !invZero.IsZero() {
		t.Fatal("Invert(0) != 0")
	}
}

func TestSqrtM1(t *testing.T) {
	i := SqrtM1()
	var sq, minusOne Element
	sq.Square(&i)
	minusOne.Negate(new(Element).One())
	if !sq.Equal(&minusOne) {
		t.Fatal("sqrt(-1)^2 != -1")
	}
}

func TestSqrtRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	squares, nonSquares := 0, 0
	for i := 0; i < 300; i++ {
		u, _ := randElement(rng)
		w, _ := randElement(rng)
		if w.IsZero() {
			continue
		}
		var r Element
		wasSquare := r.SqrtRatio(u, w)
		if wasSquare {
			squares++
			// Check r^2 * w == u.
			var chk Element
			chk.Square(&r)
			chk.Multiply(&chk, w)
			if !chk.Equal(u) {
				t.Fatalf("sqrt check failed (square case)")
			}
			if r.IsNegative() && !r.IsZero() {
				t.Fatal("SqrtRatio returned negative root")
			}
		} else {
			nonSquares++
		}
	}
	// Roughly half the ratios should be squares.
	if squares == 0 || nonSquares == 0 {
		t.Fatalf("implausible split: %d squares, %d non-squares", squares, nonSquares)
	}
}

func TestPow22523(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := P()
	e := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(5)), 3) // (p-5)/8
	for i := 0; i < 50; i++ {
		a, ab := randElement(rng)
		var got Element
		got.Pow22523(a)
		want := new(big.Int).Exp(ab, e, p)
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("pow22523 mismatch for %v", ab)
		}
	}
}

// Property: (a+b)*c == a*c + b*c (distributivity) on the limb
// implementation alone, via testing/quick over raw byte encodings.
func TestDistributivityQuick(t *testing.T) {
	f := func(ab, bb, cb [32]byte) bool {
		var a, b, c Element
		a.SetBytes(ab[:])
		b.SetBytes(bb[:])
		c.SetBytes(cb[:])
		var l, r1, r2, r Element
		l.Add(&a, &b)
		l.Multiply(&l, &c)
		r1.Multiply(&a, &c)
		r2.Multiply(&b, &c)
		r.Add(&r1, &r2)
		return l.Equal(&r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Multiply is commutative and associative.
func TestMulPropertiesQuick(t *testing.T) {
	comm := func(ab, bb [32]byte) bool {
		var a, b, x, y Element
		a.SetBytes(ab[:])
		b.SetBytes(bb[:])
		x.Multiply(&a, &b)
		y.Multiply(&b, &a)
		return x.Equal(&y)
	}
	if err := quick.Check(comm, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("commutativity: %v", err)
	}
	assoc := func(ab, bb, cb [32]byte) bool {
		var a, b, c, x, y Element
		a.SetBytes(ab[:])
		b.SetBytes(bb[:])
		c.SetBytes(cb[:])
		x.Multiply(&a, &b)
		x.Multiply(&x, &c)
		y.Multiply(&b, &c)
		y.Multiply(&a, &y)
		return x.Equal(&y)
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("associativity: %v", err)
	}
}

func TestAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a, ab := randElement(rng)
		b, bb := randElement(rng)
		p := P()

		// v.Multiply(v, b) where v aliases a.
		v := *a
		v.Multiply(&v, b)
		want := new(big.Int).Mul(ab, bb)
		want.Mod(want, p)
		if v.Big().Cmp(want) != 0 {
			t.Fatal("aliased Multiply(v, v, b) wrong")
		}

		// v.Square(v)
		v = *a
		v.Square(&v)
		want = new(big.Int).Mul(ab, ab)
		want.Mod(want, p)
		if v.Big().Cmp(want) != 0 {
			t.Fatal("aliased Square wrong")
		}

		// v.Add(v, v)
		v = *a
		v.Add(&v, &v)
		want = new(big.Int).Lsh(ab, 1)
		want.Mod(want, p)
		if v.Big().Cmp(want) != 0 {
			t.Fatal("aliased Add wrong")
		}
	}
}

func TestIsNegative(t *testing.T) {
	var two Element
	two.FromBig(big.NewInt(2))
	if two.IsNegative() {
		t.Fatal("2 should be non-negative")
	}
	var one Element
	one.One()
	if !one.IsNegative() {
		t.Fatal("1 has LSB set, should be negative by convention")
	}
}

func TestEqualDifferentRepresentations(t *testing.T) {
	// 2^255 - 19 + 5 should equal 5 despite different limb contents.
	var a Element
	a.FromBig(big.NewInt(5))
	b := a
	// Push b into a denormalized representation: b += p (limbwise).
	b.l0 += maskLow51Bits - 18 // 2^51 - 19
	b.l1 += maskLow51Bits
	b.l2 += maskLow51Bits
	b.l3 += maskLow51Bits
	b.l4 += maskLow51Bits
	if !a.Equal(&b) {
		t.Fatal("denormalized equality failed")
	}
	if !bytes.Equal(firstBytes(a), firstBytes(b)) {
		t.Fatal("encodings differ")
	}
}

func firstBytes(e Element) []byte {
	b := e.Bytes()
	return b[:]
}

func BenchmarkMultiply(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x, _ := randElement(rng)
	y, _ := randElement(rng)
	var v Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Multiply(x, y)
	}
}

func BenchmarkSquare(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x, _ := randElement(rng)
	var v Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Square(x)
	}
}

func BenchmarkInvert(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x, _ := randElement(rng)
	var v Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Invert(x)
	}
}
