package fe

import (
	"math/big"
	"sync"
)

// P returns the field prime 2^255 - 19 as a new big.Int.
func P() *big.Int {
	p := new(big.Int).Lsh(big.NewInt(1), 255)
	return p.Sub(p, big.NewInt(19))
}

// FromBig sets v to x mod p and returns v.
func (v *Element) FromBig(x *big.Int) *Element {
	m := new(big.Int).Mod(x, P())
	var buf [32]byte
	m.FillBytes(buf[:])
	// FillBytes is big-endian; SetBytes wants little-endian.
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	if _, err := v.SetBytes(buf[:]); err != nil {
		panic("fe: internal conversion error: " + err.Error())
	}
	return v
}

// Big returns v as a new big.Int in [0, p).
func (v *Element) Big() *big.Int {
	b := v.Bytes()
	// Reverse little-endian to big-endian for big.Int.
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return new(big.Int).SetBytes(b[:])
}

var sqrtM1Once struct {
	sync.Once
	v Element
}

// sqrtM1 returns sqrt(-1) mod p, computed once as 2^((p-1)/4) mod p.
func sqrtM1() *Element {
	sqrtM1Once.Do(func() {
		p := P()
		e := new(big.Int).Sub(p, big.NewInt(1))
		e.Rsh(e, 2)
		r := new(big.Int).Exp(big.NewInt(2), e, p)
		sqrtM1Once.v.FromBig(r)
	})
	return &sqrtM1Once.v
}

// SqrtM1 returns sqrt(-1) mod p as an Element (a copy).
func SqrtM1() Element {
	return *sqrtM1()
}
