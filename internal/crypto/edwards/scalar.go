package edwards

import (
	"errors"
	"math/big"
)

// Scalar is an integer modulo the prime group order
// l = 2^252 + 27742317777372353535851937790883648493, stored as a
// canonical 32-byte little-endian value.
//
// One exception: SetClampedBytes stores an Ed25519-style clamped secret
// scalar, which may exceed l; point multiplication accepts this, and
// arithmetic methods reduce it mod l first.
type Scalar struct {
	b [32]byte
}

// order is l as a big.Int.
var order *big.Int

func init() {
	l, ok := new(big.Int).SetString(
		"7237005577332262213973186563042994240857116359379907606001950938285454250989", 10)
	if !ok {
		panic("edwards: bad group order constant")
	}
	// Sanity-check against the structural definition 2^252 + c.
	c, _ := new(big.Int).SetString("27742317777372353535851937790883648493", 10)
	want := new(big.Int).Lsh(big.NewInt(1), 252)
	want.Add(want, c)
	if l.Cmp(want) != 0 {
		panic("edwards: inconsistent group order constants")
	}
	order = l
}

// Order returns the group order l as a new big.Int.
func Order() *big.Int {
	return new(big.Int).Set(order)
}

func bigInt(x int64) *big.Int { return big.NewInt(x) }

// big returns the scalar value as a big.Int.
func (s *Scalar) big() *big.Int {
	var be [32]byte
	for i := 0; i < 32; i++ {
		be[i] = s.b[31-i]
	}
	return new(big.Int).SetBytes(be[:])
}

// setBig sets s = x mod l.
func (s *Scalar) setBig(x *big.Int) *Scalar {
	m := new(big.Int).Mod(x, order)
	var be [32]byte
	m.FillBytes(be[:])
	for i := 0; i < 32; i++ {
		s.b[i] = be[31-i]
	}
	return s
}

// SetUniformBytes sets s to the 64-byte little-endian value x reduced
// mod l, as used for nonce generation. It returns an error if
// len(x) != 64.
func (s *Scalar) SetUniformBytes(x []byte) (*Scalar, error) {
	if len(x) != 64 {
		return nil, errors.New("edwards: SetUniformBytes input must be 64 bytes")
	}
	var be [64]byte
	for i := 0; i < 64; i++ {
		be[i] = x[63-i]
	}
	return s.setBig(new(big.Int).SetBytes(be[:])), nil
}

// SetCanonicalBytes sets s to the 32-byte little-endian value x, and
// returns an error if x is not canonical (x >= l).
func (s *Scalar) SetCanonicalBytes(x []byte) (*Scalar, error) {
	if len(x) != 32 {
		return nil, errors.New("edwards: scalar must be 32 bytes")
	}
	var be [32]byte
	for i := 0; i < 32; i++ {
		be[i] = x[31-i]
	}
	v := new(big.Int).SetBytes(be[:])
	if v.Cmp(order) >= 0 {
		return nil, errors.New("edwards: non-canonical scalar")
	}
	copy(s.b[:], x)
	return s, nil
}

// SetClampedBytes sets s to the 32-byte value x with Ed25519 clamping
// applied (clear the low 3 bits and bit 255, set bit 254). The stored
// value is the clamped integer itself, NOT reduced mod l, so that
// ScalarBaseMult(s) matches RFC 8032 public key derivation exactly.
func (s *Scalar) SetClampedBytes(x []byte) (*Scalar, error) {
	if len(x) != 32 {
		return nil, errors.New("edwards: scalar must be 32 bytes")
	}
	copy(s.b[:], x)
	s.b[0] &= 248
	s.b[31] &= 127
	s.b[31] |= 64
	return s, nil
}

// SetBigInt sets s = x mod l and returns s.
func (s *Scalar) SetBigInt(x *big.Int) *Scalar {
	return s.setBig(x)
}

// Bytes returns the 32-byte little-endian encoding of s.
func (s *Scalar) Bytes() [32]byte {
	return s.b
}

// Equal reports whether s == t (comparing the stored representations
// reduced mod l).
func (s *Scalar) Equal(t *Scalar) bool {
	return s.big().Cmp(t.big()) == 0 &&
		new(big.Int).Mod(s.big(), order).Cmp(new(big.Int).Mod(t.big(), order)) == 0
}

// MultiplyAdd sets s = a*b + c mod l and returns s.
func (s *Scalar) MultiplyAdd(a, b, c *Scalar) *Scalar {
	v := new(big.Int).Mul(a.big(), b.big())
	v.Add(v, c.big())
	return s.setBig(v)
}

// Add sets s = a + b mod l and returns s.
func (s *Scalar) Add(a, b *Scalar) *Scalar {
	return s.setBig(new(big.Int).Add(a.big(), b.big()))
}

// Multiply sets s = a * b mod l and returns s.
func (s *Scalar) Multiply(a, b *Scalar) *Scalar {
	return s.setBig(new(big.Int).Mul(a.big(), b.big()))
}

// Negate sets s = -a mod l and returns s.
func (s *Scalar) Negate(a *Scalar) *Scalar {
	return s.setBig(new(big.Int).Neg(a.big()))
}

// IsZero reports whether s == 0 mod l.
func (s *Scalar) IsZero() bool {
	return new(big.Int).Mod(s.big(), order).Sign() == 0
}
