// Package edwards implements the edwards25519 group: the twisted Edwards
// curve -x^2 + y^2 = 1 + d*x^2*y^2 over GF(2^255-19), with d =
// -121665/121666, as used by Ed25519 (RFC 8032) and the ECVRF suites of
// RFC 9381.
//
// Points use extended homogeneous coordinates (X : Y : Z : T) with
// x = X/Z, y = Y/Z, x*y = T/Z. The addition law is the strongly unified
// add-2008-hwcd-3 formula set, valid for all curve points since d is a
// non-square, so it doubles correctly as well.
//
// Scalar multiplication is variable-time double-and-add; this library
// targets simulation and research use, not side-channel resistance
// (see DESIGN.md).
package edwards

import (
	"errors"

	"algorand/internal/crypto/fe"
)

// Point is a point on edwards25519. The zero value is invalid; obtain
// points from NewIdentityPoint, NewGeneratorPoint, or SetBytes.
type Point struct {
	x, y, z, t fe.Element
}

// d is the curve constant -121665/121666 mod p, and d2 = 2*d.
var curveD, curveD2 fe.Element

// basePoint is the standard generator B with y = 4/5 and x even.
var basePoint Point

func init() {
	// d = -121665 / 121666 mod p
	var num, den fe.Element
	num.FromBig(bigInt(-121665))
	den.FromBig(bigInt(121666))
	den.Invert(&den)
	curveD.Multiply(&num, &den)
	curveD2.Add(&curveD, &curveD)

	// B: y = 4/5, sign bit 0 (x even).
	var y fe.Element
	var four, five fe.Element
	four.FromBig(bigInt(4))
	five.FromBig(bigInt(5))
	five.Invert(&five)
	y.Multiply(&four, &five)
	enc := y.Bytes()
	if _, err := basePoint.SetBytes(enc[:]); err != nil {
		panic("edwards: cannot construct base point: " + err.Error())
	}
}

// NewIdentityPoint returns the neutral element (0, 1).
func NewIdentityPoint() *Point {
	p := &Point{}
	p.x.Zero()
	p.y.One()
	p.z.One()
	p.t.Zero()
	return p
}

// NewGeneratorPoint returns a copy of the standard base point B.
func NewGeneratorPoint() *Point {
	p := &Point{}
	*p = basePoint
	return p
}

// Set sets v = u and returns v.
func (v *Point) Set(u *Point) *Point {
	*v = *u
	return v
}

// Bytes returns the canonical 32-byte compressed encoding of v: the
// little-endian encoding of y with the sign of x in the top bit.
func (v *Point) Bytes() [32]byte {
	var zInv, x, y fe.Element
	zInv.Invert(&v.z)
	x.Multiply(&v.x, &zInv)
	y.Multiply(&v.y, &zInv)

	out := y.Bytes()
	if x.IsNegative() {
		out[31] |= 0x80
	}
	return out
}

// SetBytes decompresses the 32-byte encoding in, setting v and returning
// it, or returns an error if in is not a valid point encoding. Following
// RFC 8032, the y coordinate must decode to an element below p, and
// x = 0 with sign bit 1 is rejected.
func (v *Point) SetBytes(in []byte) (*Point, error) {
	if len(in) != 32 {
		return nil, errors.New("edwards: invalid point encoding length")
	}
	var yBytes [32]byte
	copy(yBytes[:], in)
	signBit := yBytes[31]&0x80 != 0
	yBytes[31] &= 0x7f

	var y fe.Element
	if _, err := y.SetCanonicalBytes(yBytes[:]); err != nil {
		return nil, errors.New("edwards: non-canonical y coordinate")
	}

	// x^2 = (y^2 - 1) / (d*y^2 + 1)
	var y2, u, w fe.Element
	y2.Square(&y)
	u.Subtract(&y2, new(fe.Element).One())
	w.Multiply(&y2, &curveD)
	w.Add(&w, new(fe.Element).One())

	var x fe.Element
	if wasSquare := x.SqrtRatio(&u, &w); !wasSquare {
		return nil, errors.New("edwards: not a point on the curve")
	}

	if x.IsZero() && signBit {
		return nil, errors.New("edwards: invalid encoding of -0")
	}
	if x.IsNegative() != signBit {
		x.Negate(&x)
	}

	v.x.Set(&x)
	v.y.Set(&y)
	v.z.One()
	v.t.Multiply(&x, &y)
	return v, nil
}

// Equal reports whether v == u as group elements.
func (v *Point) Equal(u *Point) bool {
	var a, b fe.Element
	a.Multiply(&v.x, &u.z)
	b.Multiply(&u.x, &v.z)
	if !a.Equal(&b) {
		return false
	}
	a.Multiply(&v.y, &u.z)
	b.Multiply(&u.y, &v.z)
	return a.Equal(&b)
}

// IsIdentity reports whether v is the neutral element.
func (v *Point) IsIdentity() bool {
	return v.Equal(NewIdentityPoint())
}

// Add sets v = p + q and returns v. The formulas are strongly unified:
// they are correct for p == q as well.
func (v *Point) Add(p, q *Point) *Point {
	var a, b, c, d, e, f, g, h fe.Element
	var t1, t2 fe.Element

	t1.Subtract(&p.y, &p.x) // Y1 - X1
	t2.Subtract(&q.y, &q.x) // Y2 - X2
	a.Multiply(&t1, &t2)

	t1.Add(&p.y, &p.x) // Y1 + X1
	t2.Add(&q.y, &q.x) // Y2 + X2
	b.Multiply(&t1, &t2)

	c.Multiply(&p.t, &q.t)
	c.Multiply(&c, &curveD2)

	d.Multiply(&p.z, &q.z)
	d.Add(&d, &d)

	e.Subtract(&b, &a)
	f.Subtract(&d, &c)
	g.Add(&d, &c)
	h.Add(&b, &a)

	v.x.Multiply(&e, &f)
	v.y.Multiply(&g, &h)
	v.t.Multiply(&e, &h)
	v.z.Multiply(&f, &g)
	return v
}

// Double sets v = 2*p and returns v.
func (v *Point) Double(p *Point) *Point {
	return v.Add(p, p)
}

// Negate sets v = -p and returns v.
func (v *Point) Negate(p *Point) *Point {
	v.x.Negate(&p.x)
	v.y.Set(&p.y)
	v.z.Set(&p.z)
	v.t.Negate(&p.t)
	return v
}

// Subtract sets v = p - q and returns v.
func (v *Point) Subtract(p, q *Point) *Point {
	var negQ Point
	negQ.Negate(q)
	return v.Add(p, &negQ)
}

// MultByCofactor sets v = 8*p and returns v.
func (v *Point) MultByCofactor(p *Point) *Point {
	v.Double(p)
	v.Double(v)
	return v.Double(v)
}

// IsSmallOrder reports whether p is in the small-order (8-torsion)
// subgroup, i.e. whether 8*p is the identity.
func (p *Point) IsSmallOrder() bool {
	var v Point
	v.MultByCofactor(p)
	return v.IsIdentity()
}

// ScalarMult sets v = s*q where s is interpreted as a 256-bit
// little-endian integer (it need not be reduced mod the group order),
// and returns v. Variable time.
func (v *Point) ScalarMult(s *Scalar, q *Point) *Point {
	sb := s.Bytes()
	return v.scalarMultBytes(sb[:], q)
}

func (v *Point) scalarMultBytes(sb []byte, q *Point) *Point {
	acc := NewIdentityPoint()
	base := *q
	started := false
	// MSB-first double-and-add.
	for i := len(sb) - 1; i >= 0; i-- {
		for bit := 7; bit >= 0; bit-- {
			if started {
				acc.Double(acc)
			}
			if (sb[i]>>uint(bit))&1 == 1 {
				acc.Add(acc, &base)
				started = true
			}
		}
	}
	return v.Set(acc)
}

// ScalarBaseMult sets v = s*B and returns v.
func (v *Point) ScalarBaseMult(s *Scalar) *Point {
	return v.ScalarMult(s, &basePoint)
}

// VarTimeDoubleScalarBaseMult sets v = a*A + b*B and returns v.
func (v *Point) VarTimeDoubleScalarBaseMult(a *Scalar, pA *Point, b *Scalar) *Point {
	var t1, t2 Point
	t1.ScalarMult(a, pA)
	t2.ScalarBaseMult(b)
	return v.Add(&t1, &t2)
}
