package edwards

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha512"
	"encoding/hex"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasePointEncoding(t *testing.T) {
	// The canonical compressed encoding of the Ed25519 base point.
	want, _ := hex.DecodeString("5866666666666666666666666666666666666666666666666666666666666666")
	b := NewGeneratorPoint().Bytes()
	if !bytes.Equal(b[:], want) {
		t.Fatalf("base point encoding mismatch:\n got %x\nwant %x", b, want)
	}
}

func TestIdentity(t *testing.T) {
	id := NewIdentityPoint()
	if !id.IsIdentity() {
		t.Fatal("identity is not identity")
	}
	b := NewGeneratorPoint()
	var sum Point
	sum.Add(b, id)
	if !sum.Equal(b) {
		t.Fatal("B + 0 != B")
	}
	var diff Point
	diff.Subtract(b, b)
	if !diff.IsIdentity() {
		t.Fatal("B - B != 0")
	}
}

func TestBasePointOrder(t *testing.T) {
	var s Scalar
	s.SetBigInt(Order()) // = 0 mod l, but exercise via explicit bytes below
	var lBytes [32]byte
	be := Order().Bytes()
	for i := 0; i < len(be); i++ {
		lBytes[i] = be[len(be)-1-i]
	}
	var p Point
	p.scalarMultBytes(lBytes[:], NewGeneratorPoint())
	if !p.IsIdentity() {
		t.Fatal("l*B != identity")
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := randomPoint(rng)
		enc := p.Bytes()
		var q Point
		if _, err := q.SetBytes(enc[:]); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("decompress(compress(p)) != p")
		}
		enc2 := q.Bytes()
		if enc != enc2 {
			t.Fatal("re-encoding differs")
		}
	}
}

func TestSetBytesRejectsInvalid(t *testing.T) {
	// An x-coordinate that is not on the curve: y = 2 gives a non-square
	// ratio for this curve... find one by scanning.
	found := 0
	for y := int64(0); y < 50 && found == 0; y++ {
		var enc [32]byte
		enc[0] = byte(y)
		var p Point
		if _, err := p.SetBytes(enc[:]); err != nil {
			found++
		}
	}
	if found == 0 {
		t.Fatal("expected at least one invalid small-y encoding")
	}
	// Wrong length.
	var p Point
	if _, err := p.SetBytes(make([]byte, 31)); err == nil {
		t.Fatal("expected length error")
	}
	// Non-canonical y (y = p).
	pBytes, _ := hex.DecodeString("edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f")
	if _, err := p.SetBytes(pBytes); err == nil {
		t.Fatal("expected rejection of y = p")
	}
}

// randomPoint returns r*B for random r.
func randomPoint(rng *rand.Rand) *Point {
	var s Scalar
	s.SetBigInt(new(big.Int).Rand(rng, Order()))
	var p Point
	p.ScalarBaseMult(&s)
	return &p
}

func TestScalarMultDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		a := new(big.Int).Rand(rng, Order())
		b := new(big.Int).Rand(rng, Order())
		var sa, sb, sab Scalar
		sa.SetBigInt(a)
		sb.SetBigInt(b)
		sab.SetBigInt(new(big.Int).Add(a, b))

		var pa, pb, sum, direct Point
		pa.ScalarBaseMult(&sa)
		pb.ScalarBaseMult(&sb)
		sum.Add(&pa, &pb)
		direct.ScalarBaseMult(&sab)
		if !sum.Equal(&direct) {
			t.Fatalf("(a+b)B != aB + bB for a=%v b=%v", a, b)
		}
	}
}

func TestScalarMultAssociates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		a := new(big.Int).Rand(rng, Order())
		b := new(big.Int).Rand(rng, Order())
		var sa, sb, sab Scalar
		sa.SetBigInt(a)
		sb.SetBigInt(b)
		sab.SetBigInt(new(big.Int).Mul(a, b))

		var pb, papb, direct Point
		pb.ScalarBaseMult(&sb)
		papb.ScalarMult(&sa, &pb)
		direct.ScalarBaseMult(&sab)
		if !papb.Equal(&direct) {
			t.Fatalf("a(bB) != (ab)B")
		}
	}
}

// TestEd25519PublicKeyAgreement cross-checks our scalar multiplication
// and compression against the standard library's Ed25519 key derivation:
// pk = clamp(SHA512(seed)[:32]) * B.
func TestEd25519PublicKeyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		seed := make([]byte, ed25519.SeedSize)
		rng.Read(seed)
		priv := ed25519.NewKeyFromSeed(seed)
		wantPK := priv.Public().(ed25519.PublicKey)

		h := sha512.Sum512(seed)
		var s Scalar
		if _, err := s.SetClampedBytes(h[:32]); err != nil {
			t.Fatal(err)
		}
		var p Point
		p.ScalarBaseMult(&s)
		got := p.Bytes()
		if !bytes.Equal(got[:], wantPK) {
			t.Fatalf("public key mismatch:\n got %x\nwant %x", got, []byte(wantPK))
		}
	}
}

func TestCofactorAndSmallOrder(t *testing.T) {
	id := NewIdentityPoint()
	if !id.IsSmallOrder() {
		t.Fatal("identity should be small order")
	}
	b := NewGeneratorPoint()
	if b.IsSmallOrder() {
		t.Fatal("B should not be small order")
	}
	var e Point
	e.MultByCofactor(b)
	// 8B should equal scalar 8 times B.
	var s Scalar
	s.SetBigInt(big.NewInt(8))
	var want Point
	want.ScalarBaseMult(&s)
	if !e.Equal(&want) {
		t.Fatal("MultByCofactor != 8*B")
	}
}

func TestVarTimeDoubleScalarBaseMult(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		a := new(big.Int).Rand(rng, Order())
		b := new(big.Int).Rand(rng, Order())
		var sa, sb Scalar
		sa.SetBigInt(a)
		sb.SetBigInt(b)
		pA := randomPoint(rng)

		var got Point
		got.VarTimeDoubleScalarBaseMult(&sa, pA, &sb)

		var t1, t2, want Point
		t1.ScalarMult(&sa, pA)
		t2.ScalarBaseMult(&sb)
		want.Add(&t1, &t2)
		if !got.Equal(&want) {
			t.Fatal("double scalar mult mismatch")
		}
	}
}

func TestNegate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randomPoint(rng)
	var n, sum Point
	n.Negate(p)
	sum.Add(p, &n)
	if !sum.IsIdentity() {
		t.Fatal("p + (-p) != identity")
	}
}

func TestScalarSetUniformBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		var buf [64]byte
		rng.Read(buf[:])
		var s Scalar
		if _, err := s.SetUniformBytes(buf[:]); err != nil {
			t.Fatal(err)
		}
		// Compare against big.Int little-endian interpretation mod l.
		var be [64]byte
		for j := 0; j < 64; j++ {
			be[j] = buf[63-j]
		}
		want := new(big.Int).SetBytes(be[:])
		want.Mod(want, Order())
		if s.big().Cmp(want) != 0 {
			t.Fatal("SetUniformBytes reduction mismatch")
		}
	}
	var s Scalar
	if _, err := s.SetUniformBytes(make([]byte, 32)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestScalarCanonical(t *testing.T) {
	// l itself must be rejected.
	var lLE [32]byte
	be := Order().Bytes()
	for i := 0; i < len(be); i++ {
		lLE[i] = be[len(be)-1-i]
	}
	var s Scalar
	if _, err := s.SetCanonicalBytes(lLE[:]); err == nil {
		t.Fatal("expected rejection of l")
	}
	// l-1 must be accepted.
	lm1 := new(big.Int).Sub(Order(), big.NewInt(1))
	be = lm1.Bytes()
	var lm1LE [32]byte
	for i := 0; i < len(be); i++ {
		lm1LE[i] = be[len(be)-1-i]
	}
	if _, err := s.SetCanonicalBytes(lm1LE[:]); err != nil {
		t.Fatal(err)
	}
	if s.big().Cmp(lm1) != 0 {
		t.Fatal("canonical round trip mismatch")
	}
}

func TestScalarArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := Order()
	for i := 0; i < 100; i++ {
		a := new(big.Int).Rand(rng, l)
		b := new(big.Int).Rand(rng, l)
		c := new(big.Int).Rand(rng, l)
		var sa, sb, sc, got Scalar
		sa.SetBigInt(a)
		sb.SetBigInt(b)
		sc.SetBigInt(c)

		got.MultiplyAdd(&sa, &sb, &sc)
		want := new(big.Int).Mul(a, b)
		want.Add(want, c)
		want.Mod(want, l)
		if got.big().Cmp(want) != 0 {
			t.Fatal("MultiplyAdd mismatch")
		}

		got.Add(&sa, &sb)
		want = new(big.Int).Add(a, b)
		want.Mod(want, l)
		if got.big().Cmp(want) != 0 {
			t.Fatal("Add mismatch")
		}

		got.Negate(&sa)
		want = new(big.Int).Neg(a)
		want.Mod(want, l)
		if got.big().Cmp(want) != 0 {
			t.Fatal("Negate mismatch")
		}
	}
}

// Property test via testing/quick: addition on the curve is commutative
// and associative for random multiples of B.
func TestGroupLawsQuick(t *testing.T) {
	mk := func(seed int64) *Point {
		rng := rand.New(rand.NewSource(seed))
		return randomPoint(rng)
	}
	comm := func(s1, s2 int64) bool {
		p, q := mk(s1), mk(s2)
		var a, b Point
		a.Add(p, q)
		b.Add(q, p)
		return a.Equal(&b)
	}
	if err := quick.Check(comm, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatalf("commutativity: %v", err)
	}
	assoc := func(s1, s2, s3 int64) bool {
		p, q, r := mk(s1), mk(s2), mk(s3)
		var a, b Point
		a.Add(p, q)
		a.Add(&a, r)
		b.Add(q, r)
		b.Add(p, &b)
		return a.Equal(&b)
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatalf("associativity: %v", err)
	}
}

func BenchmarkScalarBaseMult(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var s Scalar
	s.SetBigInt(new(big.Int).Rand(rng, Order()))
	var p Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ScalarBaseMult(&s)
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	p := randomPoint(rng)
	q := randomPoint(rng)
	var v Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Add(p, q)
	}
}

func BenchmarkDecompress(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	enc := randomPoint(rng).Bytes()
	var p Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SetBytes(enc[:])
	}
}
