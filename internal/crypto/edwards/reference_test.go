package edwards

// An independent reference model of edwards25519 built directly on
// math/big affine arithmetic. It shares no code with the production
// implementation (different coordinate system, different reduction
// strategy, different scalar-multiplication algorithm), so agreement
// between the two is strong evidence against subtle limb or formula
// bugs that algebraic property tests could miss.

import (
	"math/big"
	"math/rand"
	"testing"

	"algorand/internal/crypto/fe"
)

// refPoint is an affine point (x, y) with big.Int coordinates; the
// identity is (0, 1).
type refPoint struct {
	x, y *big.Int
}

var (
	refP *big.Int // field prime
	refD *big.Int // curve constant d
)

func refInit() {
	if refP != nil {
		return
	}
	refP = fe.P()
	// d = -121665/121666 mod p
	num := new(big.Int).Mod(big.NewInt(-121665), refP)
	den := new(big.Int).ModInverse(big.NewInt(121666), refP)
	refD = new(big.Int).Mul(num, den)
	refD.Mod(refD, refP)
}

func refIdentity() refPoint {
	return refPoint{x: big.NewInt(0), y: big.NewInt(1)}
}

// refAdd implements the affine twisted Edwards addition law
//
//	x3 = (x1*y2 + x2*y1) / (1 + d*x1*x2*y1*y2)
//	y3 = (y1*y2 + x1*x2) / (1 - d*x1*x2*y1*y2)
//
// (a = -1 variant: y3 numerator is y1*y2 + x1*x2).
func refAdd(a, b refPoint) refPoint {
	refInit()
	mod := func(z *big.Int) *big.Int { return z.Mod(z, refP) }
	x1y2 := mod(new(big.Int).Mul(a.x, b.y))
	x2y1 := mod(new(big.Int).Mul(b.x, a.y))
	y1y2 := mod(new(big.Int).Mul(a.y, b.y))
	x1x2 := mod(new(big.Int).Mul(a.x, b.x))
	dxy := mod(new(big.Int).Mul(refD, new(big.Int).Mul(x1x2, y1y2)))

	one := big.NewInt(1)
	denX := mod(new(big.Int).Add(one, dxy))
	denY := mod(new(big.Int).Sub(one, dxy))

	x3 := mod(new(big.Int).Add(x1y2, x2y1))
	x3.Mul(x3, new(big.Int).ModInverse(denX, refP))
	mod(x3)
	y3 := mod(new(big.Int).Add(y1y2, x1x2))
	y3.Mul(y3, new(big.Int).ModInverse(denY, refP))
	mod(y3)
	return refPoint{x: x3, y: y3}
}

// refScalarMult is plain double-and-add on the reference model.
func refScalarMult(k *big.Int, p refPoint) refPoint {
	acc := refIdentity()
	base := p
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = refAdd(acc, acc)
		if k.Bit(i) == 1 {
			acc = refAdd(acc, base)
		}
	}
	return acc
}

// toRef converts a production point to the reference representation.
func toRef(t *testing.T, p *Point) refPoint {
	refInit()
	enc := p.Bytes()
	sign := enc[31] >> 7
	enc[31] &= 0x7f
	// Little-endian to big.Int.
	var be [32]byte
	for i := 0; i < 32; i++ {
		be[i] = enc[31-i]
	}
	y := new(big.Int).SetBytes(be[:])
	// Recover x from the curve equation: x^2 = (y^2-1)/(d y^2+1).
	y2 := new(big.Int).Mul(y, y)
	y2.Mod(y2, refP)
	num := new(big.Int).Sub(y2, big.NewInt(1))
	num.Mod(num, refP)
	den := new(big.Int).Mul(refD, y2)
	den.Add(den, big.NewInt(1))
	den.Mod(den, refP)
	x2 := new(big.Int).Mul(num, new(big.Int).ModInverse(den, refP))
	x2.Mod(x2, refP)
	x := new(big.Int).ModSqrt(x2, refP)
	if x == nil {
		t.Fatal("reference: not a square — invalid point")
	}
	if x.Bit(0) != uint(sign) {
		x.Sub(refP, x)
	}
	return refPoint{x: x, y: y}
}

// refEqualsPoint checks a production point against a reference point.
func refEqualsPoint(t *testing.T, got *Point, want refPoint) bool {
	g := toRef(t, got)
	return g.x.Cmp(want.x) == 0 && g.y.Cmp(want.y) == 0
}

func TestAddMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 40; i++ {
		p := randomPoint(rng)
		q := randomPoint(rng)
		var sum Point
		sum.Add(p, q)
		want := refAdd(toRef(t, p), toRef(t, q))
		if !refEqualsPoint(t, &sum, want) {
			t.Fatalf("Add diverges from reference at trial %d", i)
		}
	}
}

func TestDoubleMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < 40; i++ {
		p := randomPoint(rng)
		var dbl Point
		dbl.Double(p)
		want := refAdd(toRef(t, p), toRef(t, p))
		if !refEqualsPoint(t, &dbl, want) {
			t.Fatalf("Double diverges from reference at trial %d", i)
		}
	}
}

func TestScalarMultMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 12; i++ {
		p := randomPoint(rng)
		k := new(big.Int).Rand(rng, Order())
		var s Scalar
		s.SetBigInt(k)
		var got Point
		got.ScalarMult(&s, p)
		want := refScalarMult(k, toRef(t, p))
		if !refEqualsPoint(t, &got, want) {
			t.Fatalf("ScalarMult diverges from reference at trial %d (k=%v)", i, k)
		}
	}
}

func TestBasePointMatchesReferenceModel(t *testing.T) {
	refInit()
	// Reference base point: y = 4/5 mod p, x even.
	y := new(big.Int).Mul(big.NewInt(4), new(big.Int).ModInverse(big.NewInt(5), refP))
	y.Mod(y, refP)
	b := toRef(t, NewGeneratorPoint())
	if b.y.Cmp(y) != 0 {
		t.Fatal("base point y != 4/5")
	}
	if b.x.Bit(0) != 0 {
		t.Fatal("base point x not even")
	}
	// And it satisfies the curve equation -x^2 + y^2 = 1 + d x^2 y^2.
	x2 := new(big.Int).Mul(b.x, b.x)
	x2.Mod(x2, refP)
	y2 := new(big.Int).Mul(b.y, b.y)
	y2.Mod(y2, refP)
	lhs := new(big.Int).Sub(y2, x2)
	lhs.Mod(lhs, refP)
	rhs := new(big.Int).Mul(refD, new(big.Int).Mul(x2, y2))
	rhs.Add(rhs, big.NewInt(1))
	rhs.Mod(rhs, refP)
	if lhs.Cmp(rhs) != 0 {
		t.Fatal("base point not on the curve per reference equation")
	}
}

func TestSmallMultiplesMatchReference(t *testing.T) {
	// 1B, 2B, ..., 16B against the reference, catching off-by-one
	// scalar handling.
	b := NewGeneratorPoint()
	ref := toRef(t, b)
	acc := refIdentity()
	for k := 1; k <= 16; k++ {
		acc = refAdd(acc, ref)
		var s Scalar
		s.SetBigInt(big.NewInt(int64(k)))
		var got Point
		got.ScalarBaseMult(&s)
		if !refEqualsPoint(t, &got, acc) {
			t.Fatalf("%d*B diverges from reference", k)
		}
	}
}
