// Package vrf implements the elliptic-curve verifiable random function
// ECVRF-EDWARDS25519-SHA512-TAI, following the construction of Goldberg
// et al. that the Algorand paper cites [28] and that was later
// standardized as RFC 9381 ciphersuite 3.
//
// A VRF keypair is derived exactly like an Ed25519 keypair (RFC 8032):
// the secret scalar x is the clamped low half of SHA-512(seed) and the
// public key is Y = x*B. On input alpha, Prove returns an 80-byte proof
// pi; ProofToHash(pi) and Verify both yield the 64-byte pseudorandom
// output beta. The crucial properties for Algorand's sortition are:
//
//   - Uniqueness: for a fixed public key and alpha there is exactly one
//     beta that verifies (Gamma = x*H is a deterministic function).
//   - Pseudorandomness: beta is indistinguishable from random without
//     the secret key.
//   - Public verifiability: anyone holding pi and the public key checks
//     beta without interaction.
package vrf

import (
	"crypto/ed25519"
	"crypto/sha512"
	"errors"

	"algorand/internal/crypto/edwards"
)

const (
	// ProofSize is the size of a VRF proof pi: Gamma (32) || c (16) || s (32).
	ProofSize = 80
	// OutputSize is the size of the VRF output beta.
	OutputSize = 64
	// PublicKeySize is the size of a VRF public key.
	PublicKeySize = 32
	// SeedSize is the size of the secret seed.
	SeedSize = 32

	suiteID       = 0x03 // ECVRF-EDWARDS25519-SHA512-TAI
	domainEncode  = 0x01
	domainChal    = 0x02
	domainProof   = 0x03
	domainBack    = 0x00
	challengeSize = 16
)

// PublicKey is a VRF public key (a compressed edwards25519 point).
type PublicKey []byte

// PrivateKey holds the expanded VRF secret: the seed, the clamped secret
// scalar, the nonce-derivation prefix, and the public key.
type PrivateKey struct {
	seed   []byte
	x      edwards.Scalar
	prefix [32]byte
	pub    PublicKey
}

// GenerateKey derives a VRF keypair from a 32-byte seed. The derivation
// matches Ed25519, so the same seed yields a VRF public key equal to the
// Ed25519 public key.
func GenerateKey(seed []byte) (*PrivateKey, error) {
	if len(seed) != SeedSize {
		return nil, errors.New("vrf: seed must be 32 bytes")
	}
	h := sha512.Sum512(seed)
	priv := &PrivateKey{seed: append([]byte(nil), seed...)}
	if _, err := priv.x.SetClampedBytes(h[:32]); err != nil {
		return nil, err
	}
	copy(priv.prefix[:], h[32:])
	var y edwards.Point
	y.ScalarBaseMult(&priv.x)
	enc := y.Bytes()
	priv.pub = enc[:]
	return priv, nil
}

// Public returns the VRF public key.
func (sk *PrivateKey) Public() PublicKey {
	return sk.pub
}

// Seed returns the seed the key was generated from.
func (sk *PrivateKey) Seed() []byte {
	return append([]byte(nil), sk.seed...)
}

// encodeToCurveTAI hashes alpha to a curve point using the
// try-and-increment method with the public key as the salt.
func encodeToCurveTAI(salt PublicKey, alpha []byte) (*edwards.Point, error) {
	var p edwards.Point
	for ctr := 0; ctr < 256; ctr++ {
		h := sha512.New()
		h.Write([]byte{suiteID, domainEncode})
		h.Write(salt)
		h.Write(alpha)
		h.Write([]byte{byte(ctr), domainBack})
		digest := h.Sum(nil)
		if _, err := p.SetBytes(digest[:32]); err != nil {
			continue
		}
		// Clear the cofactor so H is in the prime-order subgroup.
		p.MultByCofactor(&p)
		if p.IsIdentity() {
			continue
		}
		return &p, nil
	}
	return nil, errors.New("vrf: encode-to-curve failed after 256 attempts")
}

// generateNonce derives the deterministic nonce k from the secret prefix
// and the encoded input point, as in RFC 8032 / RFC 9381 §5.4.2.2.
func (sk *PrivateKey) generateNonce(hBytes []byte) *edwards.Scalar {
	h := sha512.New()
	h.Write(sk.prefix[:])
	h.Write(hBytes)
	digest := h.Sum(nil)
	var k edwards.Scalar
	if _, err := k.SetUniformBytes(digest); err != nil {
		panic("vrf: internal nonce error: " + err.Error())
	}
	return &k
}

// challenge computes the 16-byte challenge c from the five points.
func challenge(points ...[]byte) *edwards.Scalar {
	h := sha512.New()
	h.Write([]byte{suiteID, domainChal})
	for _, p := range points {
		h.Write(p)
	}
	h.Write([]byte{domainBack})
	digest := h.Sum(nil)

	var cBytes [32]byte
	copy(cBytes[:challengeSize], digest[:challengeSize])
	var c edwards.Scalar
	if _, err := c.SetCanonicalBytes(cBytes[:]); err != nil {
		// A 128-bit value is always canonical mod l.
		panic("vrf: internal challenge error: " + err.Error())
	}
	return &c
}

// Prove computes the VRF proof pi and output beta for input alpha.
func (sk *PrivateKey) Prove(alpha []byte) (beta [OutputSize]byte, pi [ProofSize]byte, err error) {
	hPoint, err := encodeToCurveTAI(sk.pub, alpha)
	if err != nil {
		return beta, pi, err
	}
	hBytes := hPoint.Bytes()

	var gamma edwards.Point
	gamma.ScalarMult(&sk.x, hPoint)
	gammaBytes := gamma.Bytes()

	k := sk.generateNonce(hBytes[:])
	var u, v edwards.Point
	u.ScalarBaseMult(k)
	v.ScalarMult(k, hPoint)
	uBytes := u.Bytes()
	vBytes := v.Bytes()

	c := challenge(sk.pub, hBytes[:], gammaBytes[:], uBytes[:], vBytes[:])

	var s edwards.Scalar
	s.MultiplyAdd(c, &sk.x, k)

	copy(pi[:32], gammaBytes[:])
	cb := c.Bytes()
	copy(pi[32:48], cb[:challengeSize])
	sb := s.Bytes()
	copy(pi[48:], sb[:])

	beta = gammaToHash(&gamma)
	return beta, pi, nil
}

// gammaToHash computes beta from the Gamma point.
func gammaToHash(gamma *edwards.Point) [OutputSize]byte {
	var cg edwards.Point
	cg.MultByCofactor(gamma)
	enc := cg.Bytes()
	h := sha512.New()
	h.Write([]byte{suiteID, domainProof})
	h.Write(enc[:])
	h.Write([]byte{domainBack})
	var beta [OutputSize]byte
	copy(beta[:], h.Sum(nil))
	return beta
}

// ProofToHash returns beta for a syntactically valid proof pi, without
// verifying it against a public key. Use Verify for untrusted proofs.
func ProofToHash(pi []byte) (beta [OutputSize]byte, err error) {
	gamma, _, _, err := decodeProof(pi)
	if err != nil {
		return beta, err
	}
	return gammaToHash(gamma), nil
}

// decodeProof splits pi into its Gamma point, challenge and response.
func decodeProof(pi []byte) (gamma *edwards.Point, c, s *edwards.Scalar, err error) {
	if len(pi) != ProofSize {
		return nil, nil, nil, errors.New("vrf: invalid proof length")
	}
	gamma = new(edwards.Point)
	if _, err := gamma.SetBytes(pi[:32]); err != nil {
		return nil, nil, nil, errors.New("vrf: invalid Gamma point: " + err.Error())
	}
	var cBytes [32]byte
	copy(cBytes[:challengeSize], pi[32:48])
	c = new(edwards.Scalar)
	if _, err := c.SetCanonicalBytes(cBytes[:]); err != nil {
		return nil, nil, nil, err
	}
	s = new(edwards.Scalar)
	if _, err := s.SetCanonicalBytes(pi[48:80]); err != nil {
		return nil, nil, nil, errors.New("vrf: non-canonical s")
	}
	return gamma, c, s, nil
}

// Verify checks proof pi for public key pk and input alpha. On success
// it returns the VRF output beta.
func Verify(pk PublicKey, alpha, pi []byte) (beta [OutputSize]byte, err error) {
	if len(pk) != PublicKeySize {
		return beta, errors.New("vrf: invalid public key length")
	}
	var y edwards.Point
	if _, err := y.SetBytes(pk); err != nil {
		return beta, errors.New("vrf: invalid public key: " + err.Error())
	}
	// Key validation: reject small-order public keys ("full validation"
	// in RFC 9381 terms), which could otherwise make outputs predictable.
	if y.IsSmallOrder() {
		return beta, errors.New("vrf: small-order public key")
	}

	gamma, c, s, err := decodeProof(pi)
	if err != nil {
		return beta, err
	}

	hPoint, err := encodeToCurveTAI(pk, alpha)
	if err != nil {
		return beta, err
	}
	hBytes := hPoint.Bytes()

	// U = s*B - c*Y
	var cY, u edwards.Point
	cY.ScalarMult(c, &y)
	u.ScalarBaseMult(s)
	u.Subtract(&u, &cY)

	// V = s*H - c*Gamma
	var sH, cGamma, v edwards.Point
	sH.ScalarMult(s, hPoint)
	cGamma.ScalarMult(c, gamma)
	v.Subtract(&sH, &cGamma)

	gammaBytes := gamma.Bytes()
	uBytes := u.Bytes()
	vBytes := v.Bytes()
	cPrime := challenge(pk, hBytes[:], gammaBytes[:], uBytes[:], vBytes[:])

	if !cPrime.Equal(c) {
		return beta, errors.New("vrf: proof verification failed")
	}
	return gammaToHash(gamma), nil
}

// Ed25519PublicKeyMatches reports whether the VRF public key equals the
// Ed25519 public key derived from the same seed; used in tests and to
// document that one seed can serve both roles.
func Ed25519PublicKeyMatches(seed []byte, pk PublicKey) bool {
	if len(seed) != SeedSize {
		return false
	}
	epk := ed25519.NewKeyFromSeed(seed).Public().(ed25519.PublicKey)
	if len(pk) != len(epk) {
		return false
	}
	for i := range pk {
		if pk[i] != epk[i] {
			return false
		}
	}
	return true
}
