package vrf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testKey(t testing.TB, seedByte byte) *PrivateKey {
	seed := make([]byte, SeedSize)
	for i := range seed {
		seed[i] = seedByte
	}
	sk, err := GenerateKey(seed)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestProveVerifyRoundTrip(t *testing.T) {
	sk := testKey(t, 1)
	for _, alpha := range [][]byte{nil, {}, []byte("a"), []byte("hello vrf"), bytes.Repeat([]byte{0xff}, 1000)} {
		beta, pi, err := sk.Prove(alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Verify(sk.Public(), alpha, pi[:])
		if err != nil {
			t.Fatalf("verify failed for alpha=%q: %v", alpha, err)
		}
		if got != beta {
			t.Fatal("verify returned different beta than prove")
		}
		h, err := ProofToHash(pi[:])
		if err != nil {
			t.Fatal(err)
		}
		if h != beta {
			t.Fatal("ProofToHash mismatch")
		}
	}
}

func TestDeterminism(t *testing.T) {
	sk := testKey(t, 2)
	alpha := []byte("round-7:committee:3")
	b1, p1, err := sk.Prove(alpha)
	if err != nil {
		t.Fatal(err)
	}
	b2, p2, err := sk.Prove(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 || p1 != p2 {
		t.Fatal("prove is not deterministic")
	}
}

func TestDistinctInputsDistinctOutputs(t *testing.T) {
	sk := testKey(t, 3)
	seen := make(map[[OutputSize]byte]bool)
	for i := 0; i < 64; i++ {
		alpha := []byte{byte(i)}
		beta, _, err := sk.Prove(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if seen[beta] {
			t.Fatal("collision in VRF outputs")
		}
		seen[beta] = true
	}
}

func TestDistinctKeysDistinctOutputs(t *testing.T) {
	alpha := []byte("same input")
	seen := make(map[[OutputSize]byte]bool)
	for i := byte(0); i < 16; i++ {
		sk := testKey(t, i)
		beta, _, err := sk.Prove(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if seen[beta] {
			t.Fatal("collision across keys")
		}
		seen[beta] = true
	}
}

func TestVerifyRejectsWrongAlpha(t *testing.T) {
	sk := testKey(t, 4)
	_, pi, err := sk.Prove([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(sk.Public(), []byte("beta"), pi[:]); err == nil {
		t.Fatal("verification should fail for a different alpha")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	sk := testKey(t, 5)
	other := testKey(t, 6)
	alpha := []byte("alpha")
	_, pi, err := sk.Prove(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(other.Public(), alpha, pi[:]); err == nil {
		t.Fatal("verification should fail for a different key")
	}
}

func TestVerifyRejectsTamperedProof(t *testing.T) {
	sk := testKey(t, 7)
	alpha := []byte("alpha")
	_, pi, err := sk.Prove(alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Flip each byte in turn; every tampering must be rejected (or, if it
	// produces an undecodable point, error out).
	for i := 0; i < ProofSize; i++ {
		bad := pi
		bad[i] ^= 0x40
		if _, err := Verify(sk.Public(), alpha, bad[:]); err == nil {
			t.Fatalf("tampered proof accepted (byte %d)", i)
		}
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	sk := testKey(t, 8)
	if _, err := Verify(sk.Public(), nil, make([]byte, ProofSize-1)); err == nil {
		t.Fatal("short proof accepted")
	}
	if _, err := Verify(make([]byte, 5), nil, make([]byte, ProofSize)); err == nil {
		t.Fatal("short public key accepted")
	}
	// All-zero public key is the identity encoding... y=0 is not a small
	// order point encoding; use the canonical identity encoding (y=1).
	ident := make([]byte, 32)
	ident[0] = 1
	_, pi, err := sk.Prove([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(ident, []byte("x"), pi[:]); err == nil {
		t.Fatal("small-order public key accepted")
	}
}

func TestUniquenessAcrossProofEncodings(t *testing.T) {
	// Uniqueness: any proof that verifies for (pk, alpha) must yield the
	// same beta. We can't enumerate proofs, but we can at least check that
	// changing the (c, s) part of the proof breaks verification rather
	// than producing a different accepted beta with the same Gamma.
	sk := testKey(t, 9)
	alpha := []byte("unique")
	beta, pi, err := sk.Prove(alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		bad := pi
		// Random tweak of c||s only; Gamma (hence candidate beta) fixed.
		bad[32+rng.Intn(48)] ^= byte(1 + rng.Intn(255))
		got, err := Verify(sk.Public(), alpha, bad[:])
		if err == nil && got != beta {
			t.Fatal("uniqueness violated: different beta accepted")
		}
	}
}

func TestEd25519KeyCompatibility(t *testing.T) {
	seed := bytes.Repeat([]byte{0xab}, SeedSize)
	sk, err := GenerateKey(seed)
	if err != nil {
		t.Fatal(err)
	}
	if !Ed25519PublicKeyMatches(seed, sk.Public()) {
		t.Fatal("VRF public key does not match Ed25519 derivation")
	}
	if !bytes.Equal(sk.Seed(), seed) {
		t.Fatal("seed round trip failed")
	}
}

func TestGenerateKeyRejectsBadSeed(t *testing.T) {
	if _, err := GenerateKey(make([]byte, 31)); err == nil {
		t.Fatal("short seed accepted")
	}
}

// Property: for random seeds and inputs, Prove/Verify round-trips.
func TestProveVerifyQuick(t *testing.T) {
	f := func(seed [32]byte, alpha []byte) bool {
		sk, err := GenerateKey(seed[:])
		if err != nil {
			return false
		}
		beta, pi, err := sk.Prove(alpha)
		if err != nil {
			return false
		}
		got, err := Verify(sk.Public(), alpha, pi[:])
		return err == nil && got == beta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// TestOutputBitUniformity sanity-checks that the low bits of beta look
// unbiased, which the common-coin construction (Algorithm 9) relies on.
func TestOutputBitUniformity(t *testing.T) {
	sk := testKey(t, 10)
	n := 400
	ones := 0
	for i := 0; i < n; i++ {
		beta, _, err := sk.Prove([]byte{byte(i), byte(i >> 8)})
		if err != nil {
			t.Fatal(err)
		}
		ones += int(beta[0] & 1)
	}
	// Loose 5-sigma style bound around n/2 for a fair coin.
	if ones < n/2-50 || ones > n/2+50 {
		t.Fatalf("low bit looks biased: %d/%d ones", ones, n)
	}
}

func BenchmarkProve(b *testing.B) {
	sk := testKey(b, 11)
	alpha := []byte("benchmark-input")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sk.Prove(alpha); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	sk := testKey(b, 12)
	alpha := []byte("benchmark-input")
	_, pi, err := sk.Prove(alpha)
	if err != nil {
		b.Fatal(err)
	}
	pk := sk.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Verify(pk, alpha, pi[:]); err != nil {
			b.Fatal(err)
		}
	}
}
