package crypto

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "user.key")
	seed := SeedFromUint64(42)
	if err := SaveSeed(path, seed); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSeed(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != seed {
		t.Fatal("seed round trip mismatch")
	}
	// Permissions must be owner-only.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("permissions %v, want 0600", info.Mode().Perm())
	}
	// Never overwrite.
	if err := SaveSeed(path, SeedFromUint64(43)); err == nil {
		t.Fatal("overwrite allowed")
	}
	// The identity derived from the reloaded seed matches.
	p := NewReal()
	if p.NewIdentity(seed).PublicKey() != p.NewIdentity(got).PublicKey() {
		t.Fatal("identities differ")
	}
}

func TestLoadSeedRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.key")
	cases := []string{
		"not a key file",
		"algorand-seed:zzzz",
		"algorand-seed:aabb", // too short
	}
	for _, c := range cases {
		os.WriteFile(bad, []byte(c), 0o600)
		if _, err := LoadSeed(bad); err == nil {
			t.Fatalf("accepted %q", c)
		}
		os.Remove(bad)
	}
	if _, err := LoadSeed(filepath.Join(dir, "missing.key")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRandomSeed(t *testing.T) {
	a, err := RandomSeed()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSeed()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two random seeds identical")
	}
}

// TestRandomSeedFullEntropy guards the short-read regression: a bare
// Read on the entropy device may return fewer bytes than asked, leaving
// the seed's tail zeroed. Across a batch of seeds, every byte position
// must take a nonzero value at least once — a zeroed tail would fail
// the trailing positions with overwhelming probability.
func TestRandomSeedFullEntropy(t *testing.T) {
	var nonzero [32]bool
	for i := 0; i < 64; i++ {
		s, err := RandomSeed()
		if err != nil {
			t.Fatal(err)
		}
		for j, b := range s {
			if b != 0 {
				nonzero[j] = true
			}
		}
	}
	for j, ok := range nonzero {
		if !ok {
			t.Fatalf("seed byte %d was zero in all 64 draws; entropy not filling the seed", j)
		}
	}
}

// TestSaveSeedConcurrent pins the O_EXCL claim: many goroutines racing
// to save different seeds at one path yield exactly one winner, and the
// file afterwards holds the winner's seed intact — no interleaved or
// truncated key file.
func TestSaveSeedConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "user.key")
	const racers = 16
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = SaveSeed(path, SeedFromUint64(uint64(i)))
		}()
	}
	wg.Wait()

	winners := 0
	winner := -1
	for i, err := range errs {
		if err == nil {
			winners++
			winner = i
		}
	}
	if winners != 1 {
		t.Fatalf("%d of %d concurrent saves succeeded, want exactly 1", winners, racers)
	}
	got, err := LoadSeed(path)
	if err != nil {
		t.Fatalf("key file unreadable after the race: %v", err)
	}
	if got != SeedFromUint64(uint64(winner)) {
		t.Fatal("key file does not hold the winning save's seed")
	}
}
