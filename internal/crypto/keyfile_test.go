package crypto

import (
	"os"
	"path/filepath"
	"testing"
)

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "user.key")
	seed := SeedFromUint64(42)
	if err := SaveSeed(path, seed); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSeed(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != seed {
		t.Fatal("seed round trip mismatch")
	}
	// Permissions must be owner-only.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("permissions %v, want 0600", info.Mode().Perm())
	}
	// Never overwrite.
	if err := SaveSeed(path, SeedFromUint64(43)); err == nil {
		t.Fatal("overwrite allowed")
	}
	// The identity derived from the reloaded seed matches.
	p := NewReal()
	if p.NewIdentity(seed).PublicKey() != p.NewIdentity(got).PublicKey() {
		t.Fatal("identities differ")
	}
}

func TestLoadSeedRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.key")
	cases := []string{
		"not a key file",
		"algorand-seed:zzzz",
		"algorand-seed:aabb", // too short
	}
	for _, c := range cases {
		os.WriteFile(bad, []byte(c), 0o600)
		if _, err := LoadSeed(bad); err == nil {
			t.Fatalf("accepted %q", c)
		}
		os.Remove(bad)
	}
	if _, err := LoadSeed(filepath.Join(dir, "missing.key")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRandomSeed(t *testing.T) {
	a, err := RandomSeed()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSeed()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two random seeds identical")
	}
}
