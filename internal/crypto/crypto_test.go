package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func providers() []Provider {
	return []Provider{NewReal(), NewFast()}
}

func TestSignVerifyAllProviders(t *testing.T) {
	for _, p := range providers() {
		t.Run(p.Name(), func(t *testing.T) {
			id := p.NewIdentity(SeedFromUint64(1))
			msg := []byte("vote: round 3 step 1")
			sig := id.Sign(msg)
			if !p.VerifySig(id.PublicKey(), msg, sig) {
				t.Fatal("valid signature rejected")
			}
			if p.VerifySig(id.PublicKey(), []byte("other"), sig) {
				t.Fatal("signature accepted for wrong message")
			}
			other := p.NewIdentity(SeedFromUint64(2))
			if p.VerifySig(other.PublicKey(), msg, sig) {
				t.Fatal("signature accepted for wrong key")
			}
			bad := append([]byte(nil), sig...)
			bad[0] ^= 1
			if p.VerifySig(id.PublicKey(), msg, bad) {
				t.Fatal("tampered signature accepted")
			}
		})
	}
}

func TestVRFAllProviders(t *testing.T) {
	for _, p := range providers() {
		t.Run(p.Name(), func(t *testing.T) {
			id := p.NewIdentity(SeedFromUint64(3))
			alpha := []byte("seed||role")
			out, proof := id.VRFProve(alpha)
			got, ok := p.VRFVerify(id.PublicKey(), alpha, proof)
			if !ok {
				t.Fatal("valid VRF proof rejected")
			}
			if got != out {
				t.Fatal("VRF verify output differs from prove output")
			}
			if _, ok := p.VRFVerify(id.PublicKey(), []byte("different"), proof); ok {
				t.Fatal("VRF proof accepted for wrong alpha")
			}
			other := p.NewIdentity(SeedFromUint64(4))
			if _, ok := p.VRFVerify(other.PublicKey(), alpha, proof); ok {
				t.Fatal("VRF proof accepted for wrong key")
			}
			// Determinism.
			out2, _ := id.VRFProve(alpha)
			if out != out2 {
				t.Fatal("VRF not deterministic")
			}
		})
	}
}

func TestIdentityDeterministic(t *testing.T) {
	for _, p := range providers() {
		a := p.NewIdentity(SeedFromUint64(7))
		b := p.NewIdentity(SeedFromUint64(7))
		if a.PublicKey() != b.PublicKey() {
			t.Fatalf("%s: same seed produced different keys", p.Name())
		}
	}
}

func TestFastUnknownKey(t *testing.T) {
	f := NewFast()
	var pk PublicKey
	pk[0] = 9
	if f.VerifySig(pk, []byte("m"), []byte("s")) {
		t.Fatal("unknown key verified")
	}
	if _, ok := f.VRFVerify(pk, []byte("a"), []byte("p")); ok {
		t.Fatal("unknown key VRF verified")
	}
}

func TestHashBytesDomainSeparation(t *testing.T) {
	a := HashBytes("domA", []byte("x"))
	b := HashBytes("domB", []byte("x"))
	if a == b {
		t.Fatal("domains not separated")
	}
	// Length-prefixing must prevent concatenation ambiguity:
	// ("ab","c") != ("a","bc").
	x := HashBytes("d", []byte("ab"), []byte("c"))
	y := HashBytes("d", []byte("a"), []byte("bc"))
	if x == y {
		t.Fatal("concatenation ambiguity")
	}
}

func TestHashUint64(t *testing.T) {
	if HashUint64("d", 1) == HashUint64("d", 2) {
		t.Fatal("different ints collide")
	}
	if HashUint64("d", 1, []byte("x")) == HashUint64("d", 1, []byte("y")) {
		t.Fatal("different parts collide")
	}
}

func TestDigestHelpers(t *testing.T) {
	var d Digest
	if !d.IsZero() {
		t.Fatal("zero digest not zero")
	}
	d[0] = 1
	if d.IsZero() {
		t.Fatal("nonzero digest is zero")
	}
	if len(d.Hex()) != 64 || len(d.String()) != 8 {
		t.Fatal("unexpected hex lengths")
	}
}

// Property: across random seeds, providers agree that each identity's
// own signatures and proofs verify.
func TestProvidersQuick(t *testing.T) {
	for _, p := range providers() {
		f := func(seedWord uint64, msg []byte) bool {
			id := p.NewIdentity(SeedFromUint64(seedWord))
			sig := id.Sign(msg)
			out, proof := id.VRFProve(msg)
			got, ok := p.VRFVerify(id.PublicKey(), msg, proof)
			return p.VerifySig(id.PublicKey(), msg, sig) && ok && got == out
		}
		cfg := &quick.Config{MaxCount: 8}
		if p.Name() == "fast" {
			cfg.MaxCount = 64
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestCostModels(t *testing.T) {
	f := NewFast()
	if f.Costs().VRFVerify <= 0 {
		t.Fatal("fast provider must model VRF verification cost")
	}
	r := NewReal()
	if r.Costs() != (CostModel{}) {
		t.Fatal("real provider should default to zero modeled cost")
	}
	r.CostOverride = &CostModel{VerifySig: 1}
	if r.Costs().VerifySig != 1 {
		t.Fatal("cost override ignored")
	}
}

func TestSeedFromUint64Distinct(t *testing.T) {
	seen := make(map[Seed]bool)
	for i := uint64(0); i < 100; i++ {
		s := SeedFromUint64(i)
		if seen[s] {
			t.Fatal("seed collision")
		}
		seen[s] = true
	}
}

func BenchmarkRealSign(b *testing.B) {
	p := NewReal()
	id := p.NewIdentity(SeedFromUint64(1))
	msg := bytes.Repeat([]byte{1}, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id.Sign(msg)
	}
}

func BenchmarkRealVerifySig(b *testing.B) {
	p := NewReal()
	id := p.NewIdentity(SeedFromUint64(1))
	msg := bytes.Repeat([]byte{1}, 200)
	sig := id.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.VerifySig(id.PublicKey(), msg, sig)
	}
}

func BenchmarkRealVRFProve(b *testing.B) {
	p := NewReal()
	id := p.NewIdentity(SeedFromUint64(1))
	alpha := []byte("alpha")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id.VRFProve(alpha)
	}
}

func BenchmarkRealVRFVerify(b *testing.B) {
	p := NewReal()
	id := p.NewIdentity(SeedFromUint64(1))
	alpha := []byte("alpha")
	_, proof := id.VRFProve(alpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.VRFVerify(id.PublicKey(), alpha, proof)
	}
}

func BenchmarkFastVRFVerify(b *testing.B) {
	p := NewFast()
	id := p.NewIdentity(SeedFromUint64(1))
	alpha := []byte("alpha")
	_, proof := id.VRFProve(alpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.VRFVerify(id.PublicKey(), alpha, proof)
	}
}

// TestCanonicalOrdering pins Digest/PublicKey ordering to lexicographic
// byte order (bytes.Compare semantics): the protocol's deterministic
// tie-breaks (common-coin min-hash, fork-tip ordering, sender sorting)
// all rely on this one definition.
func TestCanonicalOrdering(t *testing.T) {
	cases := []struct {
		a, b [32]byte
		want int // sign of Compare(a, b)
	}{
		{[32]byte{}, [32]byte{}, 0},
		{[32]byte{0x01}, [32]byte{0x02}, -1},
		{[32]byte{0x02}, [32]byte{0x01}, 1},
		// Differ only in the last byte: the whole array matters.
		{[32]byte{31: 0x01}, [32]byte{31: 0x02}, -1},
		// Unsigned comparison: 0x80 > 0x7f.
		{[32]byte{0x80}, [32]byte{0x7f}, 1},
		// Earlier byte dominates later ones.
		{[32]byte{0, 0xff, 0xff}, [32]byte{1, 0, 0}, -1},
	}
	sign := func(x int) int {
		switch {
		case x < 0:
			return -1
		case x > 0:
			return 1
		}
		return 0
	}
	for i, c := range cases {
		if got := sign(Digest(c.a).Compare(Digest(c.b))); got != c.want {
			t.Errorf("case %d: Digest.Compare = %d, want %d", i, got, c.want)
		}
		if got := Digest(c.a).Less(Digest(c.b)); got != (c.want < 0) {
			t.Errorf("case %d: Digest.Less = %v, want %v", i, got, c.want < 0)
		}
		if got := sign(PublicKey(c.a).Compare(PublicKey(c.b))); got != c.want {
			t.Errorf("case %d: PublicKey.Compare = %d, want %d", i, got, c.want)
		}
		if got := PublicKey(c.a).Less(PublicKey(c.b)); got != (c.want < 0) {
			t.Errorf("case %d: PublicKey.Less = %v, want %v", i, got, c.want < 0)
		}
	}
	// Agreement with the stdlib on random inputs.
	for i := 0; i < 200; i++ {
		a := HashUint64("order-test-a", uint64(i))
		b := HashUint64("order-test-b", uint64(i))
		if got, want := a.Compare(b), bytes.Compare(a[:], b[:]); got != want {
			t.Fatalf("iter %d: Compare = %d, bytes.Compare = %d", i, got, want)
		}
	}
}
