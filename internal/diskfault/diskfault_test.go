package diskfault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func openForWrite(t *testing.T, fs FS, path string) File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func readBack(t *testing.T, fs FS, path string) []byte {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestOSPassthrough(t *testing.T) {
	fs := OS()
	dir := filepath.Join(t.TempDir(), "a", "b")
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f.dat")
	f := openForWrite(t, fs, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil || len(names) != 1 || names[0] != "f.dat" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if got := readBack(t, fs, path); string(got) != "hello" {
		t.Fatalf("read back %q", got)
	}
	if err := fs.Remove(path); err != nil {
		t.Fatal(err)
	}
}

// TestTornWrite pins the core semantics: the write that crosses the
// scripted offset delivers exactly the bytes up to it, then fails, and
// later writes through the same injector proceed normally.
func TestTornWrite(t *testing.T) {
	in := New(nil)
	in.Script("wal", Script{{After: 6, Act: TornWrite}})
	path := filepath.Join(t.TempDir(), "wal")

	f := openForWrite(t, in, path)
	if n, err := f.Write([]byte("aaaa")); n != 4 || err != nil {
		t.Fatalf("clean write: n=%d err=%v", n, err)
	}
	// This write spans offsets [4, 10): tears at 6 → 2 bytes land.
	n, err := f.Write([]byte("bbbbbb"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != 2 {
		t.Fatalf("torn write delivered %d bytes, want 2", n)
	}
	// The fault is consumed: subsequent writes succeed.
	if _, err := f.Write([]byte("cc")); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
	f.Close()

	if got := readBack(t, in, path); !bytes.Equal(got, []byte("aaaabbcc")) {
		t.Fatalf("on-disk bytes %q, want %q", got, "aaaabbcc")
	}
	if in.Fired() != 1 {
		t.Fatalf("fired %d events, want 1", in.Fired())
	}
}

// TestFailWriteAndSync: FailWrite delivers nothing; FailSync fails the
// fsync only once the armed offset has been written, and leaves the
// data itself on disk.
func TestFailWriteAndSync(t *testing.T) {
	in := New(nil)
	in.Script("wal", Script{
		{After: 4, Act: FailWrite},
		{After: 8, Act: FailSync},
	})
	path := filepath.Join(t.TempDir(), "wal")
	f := openForWrite(t, in, path)

	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if n, err := f.Write([]byte("xx")); !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("fail-write: n=%d err=%v", n, err)
	}
	// Sync before the fail-sync offset is armed: passes.
	if err := f.Sync(); err != nil {
		t.Fatalf("early sync: %v", err)
	}
	if _, err := f.Write([]byte("bbbb")); err != nil {
		t.Fatalf("second write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("fail-sync err = %v", err)
	}
	// Consumed: the retry sync succeeds.
	if err := f.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
	f.Close()
	if got := readBack(t, in, path); !bytes.Equal(got, []byte("aaaabbbb")) {
		t.Fatalf("on-disk bytes %q", got)
	}
}

// TestCorruptRead flips exactly the scripted byte on read-back, across
// read chunk boundaries, without touching the file itself.
func TestCorruptRead(t *testing.T) {
	in := New(nil)
	in.Script("seg", Script{{After: 5, Act: CorruptRead}})
	path := filepath.Join(t.TempDir(), "seg")
	if err := os.WriteFile(path, []byte("0123456789"), 0o600); err != nil {
		t.Fatal(err)
	}

	f, err := in.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	buf := make([]byte, 3) // forces the corrupt offset mid-chunk
	for {
		n, err := f.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	want := []byte("0123456789")
	want[5] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
	// The underlying file is untouched (bit rot is injected on the read
	// path, as a bad sector would surface).
	if disk, _ := os.ReadFile(path); !bytes.Equal(disk, []byte("0123456789")) {
		t.Fatalf("file mutated on disk: %q", disk)
	}
	// A fresh handle re-reads cleanly: the event is consumed.
	clean := readBack(t, in, path)
	if !bytes.Equal(clean, []byte("0123456789")) {
		t.Fatalf("second read corrupted: %q", clean)
	}
}

// TestWriteOffsetsSpanReopens: write-side offsets are cumulative per
// name, so a script can target a record written after a rotation-style
// close-and-reopen.
func TestWriteOffsetsSpanReopens(t *testing.T) {
	in := New(nil)
	in.Script("wal", Script{{After: 6, Act: TornWrite}})
	path := filepath.Join(t.TempDir(), "wal")

	f := openForWrite(t, in, path)
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	f2, err := in.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f2.Write([]byte("bbbb")) // cumulative [4, 8): tears at 6
	f2.Close()
	if !errors.Is(werr, ErrInjected) || n != 2 {
		t.Fatalf("reopened write: n=%d err=%v", n, werr)
	}
	if got := readBack(t, in, path); !bytes.Equal(got, []byte("aaaabb")) {
		t.Fatalf("on-disk bytes %q", got)
	}
}

// TestPathScopedScript: a key with a directory component targets one
// file among same-named siblings (one node's segment in a cluster
// data dir).
func TestPathScopedScript(t *testing.T) {
	in := New(nil)
	in.Script("node-1/wal", Script{{After: 0, Act: FailWrite}})
	dir := t.TempDir()
	for _, sub := range []string{"node-0", "node-1"} {
		if err := in.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}

	ok := openForWrite(t, in, filepath.Join(dir, "node-0", "wal"))
	if _, err := ok.Write([]byte("fine")); err != nil {
		t.Fatalf("node-0 write: %v", err)
	}
	ok.Close()

	bad := openForWrite(t, in, filepath.Join(dir, "node-1", "wal"))
	if _, err := bad.Write([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("node-1 write err = %v", err)
	}
	bad.Close()
}

// TestUnscriptedFilesUntouched: only the named file is faulted.
func TestUnscriptedFilesUntouched(t *testing.T) {
	in := New(nil)
	in.Script("victim", Script{{After: 0, Act: FailWrite}})
	dir := t.TempDir()

	ok := openForWrite(t, in, filepath.Join(dir, "bystander"))
	if _, err := ok.Write([]byte("fine")); err != nil {
		t.Fatalf("bystander write: %v", err)
	}
	ok.Close()

	bad := openForWrite(t, in, filepath.Join(dir, "victim"))
	if _, err := bad.Write([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("victim write err = %v", err)
	}
	bad.Close()
}
