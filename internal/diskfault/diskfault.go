// Package diskfault wraps the file operations the durable ledger
// performs with deterministic, scripted fault injection: torn writes,
// outright write failures, fsync errors, and corrupt-sector reads, each
// fired at an exact byte offset of a named file's traffic.
//
// It is the disk analogue of internal/realnet/netfault: every
// crash-recovery path of internal/ledger/diskstore (torn-tail
// truncation, checksum discard, rotate-and-retry after a failed fsync)
// must be exercisable without real power loss or flaky hardware. A test
// that scripts "tear the write that crosses offset 4096 of seg-00000001"
// fails the same way every run. Scripts are explicit event lists — no
// clocks, no randomness — so a failing run replays exactly.
package diskfault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the slice of a filesystem the durable ledger needs. The real
// implementation is OS(); tests interpose an Injector.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir fsyncs a directory, making freshly created files durable
	// (a crash between creating a segment and syncing its directory can
	// otherwise lose the file name itself).
	SyncDir(dir string) error
}

// File is the handle interface the ledger writes through.
type File interface {
	io.Reader
	io.Writer
	Truncate(size int64) error
	Sync() error
	Close() error
}

// --- Real filesystem --------------------------------------------------------

type osFS struct{}

// OS returns the passthrough FS over the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- Fault injection --------------------------------------------------------

// Action is one kind of injected disk fault.
type Action int

const (
	// TornWrite delivers the in-flight write only up to the scripted
	// offset and then fails it — the on-disk state a power loss
	// mid-write leaves behind (a torn record tail).
	TornWrite Action = iota
	// FailWrite fails the first write at or past the scripted offset
	// outright; nothing of it reaches the disk (EIO / disk full).
	FailWrite
	// FailSync fails the first Sync call once the file has absorbed the
	// scripted offset's worth of writes (fsync reporting EIO — the
	// write may or may not be durable, and the writer must not assume).
	FailSync
	// CorruptRead flips the byte at the exact scripted offset of the
	// file as it is read back (bit rot / a bad sector surfacing at
	// recovery time).
	CorruptRead
)

func (a Action) String() string {
	switch a {
	case TornWrite:
		return "torn-write"
	case FailWrite:
		return "fail-write"
	case FailSync:
		return "fail-sync"
	case CorruptRead:
		return "corrupt-read"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Event is one scripted fault against one file. After is a byte offset:
// for TornWrite it is the absolute offset (in bytes written through the
// injector) at which the write tears; for FailWrite/FailSync the fault
// arms once that many bytes have been written; for CorruptRead it is
// the absolute file offset of the byte to flip on read-back.
type Event struct {
	After int64
	Act   Action
}

// Script is an ordered fault sequence for one file name. Write-side
// events fire in offset order; each event fires exactly once.
type Script []Event

// ErrInjected is the error returned by faulted operations.
var ErrInjected = errors.New("diskfault: injected fault")

// fileState is the per-name fault bookkeeping, shared across every open
// handle of that name (and across re-opens: offsets are cumulative for
// writes, absolute for reads).
type fileState struct {
	wQueue []Event // TornWrite/FailWrite/FailSync, offset order
	rQueue []Event // CorruptRead, offset order
	wrote  int64   // cumulative bytes written through the injector
}

// Injector is an FS decorator applying per-file-name fault scripts.
// Files without a script pass through untouched. Safe for concurrent
// use.
type Injector struct {
	base FS

	mu    sync.Mutex
	files map[string]*fileState
	fired int
}

// New wraps base (nil = the real filesystem) with fault injection.
func New(base FS) *Injector {
	if base == nil {
		base = OS()
	}
	return &Injector{base: base, files: make(map[string]*fileState)}
}

// Script registers a fault script for a file. The key is matched as a
// path suffix on component boundaries: "seg-00000001.wal" hits that
// segment in any directory, while "node-3/seg-00000001.wal" targets one
// node's archive in a multi-node data dir. The longest matching key
// wins. Replaces any prior script for that key.
func (in *Injector) Script(name string, s Script) {
	st := &fileState{}
	for _, ev := range s {
		if ev.Act == CorruptRead {
			st.rQueue = append(st.rQueue, ev)
		} else {
			st.wQueue = append(st.wQueue, ev)
		}
	}
	sort.SliceStable(st.wQueue, func(i, j int) bool { return st.wQueue[i].After < st.wQueue[j].After })
	sort.SliceStable(st.rQueue, func(i, j int) bool { return st.rQueue[i].After < st.rQueue[j].After })
	in.mu.Lock()
	in.files[name] = st
	in.mu.Unlock()
}

// Fired reports how many scripted events have triggered so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// OpenFile implements FS, attaching the name's script if one exists.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	st := in.lookup(name)
	if st == nil {
		return f, nil
	}
	return &faultFile{File: f, in: in, st: st}, nil
}

// lookup finds the longest script key that is a component-boundary
// suffix of path.
func (in *Injector) lookup(path string) *fileState {
	path = filepath.ToSlash(path)
	in.mu.Lock()
	defer in.mu.Unlock()
	var best *fileState
	bestLen := -1
	for key, st := range in.files {
		k := filepath.ToSlash(key)
		if len(k) > bestLen &&
			(path == k || strings.HasSuffix(path, "/"+k)) {
			best, bestLen = st, len(k)
		}
	}
	return best
}

// ReadDir implements FS.
func (in *Injector) ReadDir(dir string) ([]string, error) { return in.base.ReadDir(dir) }

// MkdirAll implements FS.
func (in *Injector) MkdirAll(dir string, perm os.FileMode) error { return in.base.MkdirAll(dir, perm) }

// Remove implements FS.
func (in *Injector) Remove(name string) error { return in.base.Remove(name) }

// SyncDir implements FS.
func (in *Injector) SyncDir(dir string) error { return in.base.SyncDir(dir) }

// faultFile applies one file's script. Read position is tracked per
// handle (recovery reads each file once, sequentially, from zero);
// write offsets are cumulative per name so scripts survive re-opens.
type faultFile struct {
	File
	in  *Injector
	st  *fileState
	pos int64 // read position of this handle
}

// Write transmits p, firing any scripted write-side fault whose offset
// falls inside it.
func (f *faultFile) Write(p []byte) (int, error) {
	f.in.mu.Lock()
	st := f.st
	var ev Event
	armed := false
	if len(st.wQueue) > 0 {
		next := st.wQueue[0]
		switch next.Act {
		case TornWrite:
			if next.After < st.wrote+int64(len(p)) {
				ev, armed = next, true
				st.wQueue = st.wQueue[1:]
			}
		case FailWrite, FailSync:
			if st.wrote >= next.After {
				if next.Act == FailWrite {
					ev, armed = next, true
					st.wQueue = st.wQueue[1:]
				}
				// FailSync arms here but fires in Sync.
			}
		}
	}
	f.in.mu.Unlock()

	if !armed {
		n, err := f.File.Write(p)
		f.addWrote(n)
		return n, err
	}
	switch ev.Act {
	case TornWrite:
		keep := ev.After - f.wroteNow()
		if keep < 0 {
			keep = 0
		}
		if keep > int64(len(p)) {
			keep = int64(len(p))
		}
		n, _ := f.File.Write(p[:keep])
		f.addWrote(n)
		f.in.bump()
		return n, fmt.Errorf("%w: torn write at offset %d", ErrInjected, ev.After)
	default: // FailWrite
		f.in.bump()
		return 0, fmt.Errorf("%w: write failed at offset %d", ErrInjected, ev.After)
	}
}

// Sync fires a pending FailSync once the armed offset has been written.
func (f *faultFile) Sync() error {
	f.in.mu.Lock()
	st := f.st
	if len(st.wQueue) > 0 {
		next := st.wQueue[0]
		if next.Act == FailSync && st.wrote >= next.After {
			st.wQueue = st.wQueue[1:]
			f.in.fired++
			f.in.mu.Unlock()
			return fmt.Errorf("%w: fsync failed after offset %d", ErrInjected, next.After)
		}
	}
	f.in.mu.Unlock()
	return f.File.Sync()
}

// Read receives into p, flipping scripted corrupt bytes whose absolute
// offsets fall inside the chunk.
func (f *faultFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	if n > 0 {
		f.in.mu.Lock()
		start := f.pos
		f.pos += int64(n)
		st := f.st
		for len(st.rQueue) > 0 {
			off := st.rQueue[0].After - start
			if off >= int64(n) {
				break
			}
			st.rQueue = st.rQueue[1:]
			if off >= 0 {
				p[off] ^= 0xFF
				f.in.fired++
			}
		}
		f.in.mu.Unlock()
	}
	return n, err
}

func (f *faultFile) addWrote(n int) {
	if n <= 0 {
		return
	}
	f.in.mu.Lock()
	f.st.wrote += int64(n)
	f.in.mu.Unlock()
}

func (f *faultFile) wroteNow() int64 {
	f.in.mu.Lock()
	defer f.in.mu.Unlock()
	return f.st.wrote
}

func (in *Injector) bump() {
	in.mu.Lock()
	in.fired++
	in.mu.Unlock()
}
