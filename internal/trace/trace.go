// Package trace records per-round span timelines for the node: every
// phase a round passes through — sortition/assembly, proposal wait,
// each BA⋆ step, certification, commit, persist — as a (start, end)
// span on the node's clock, which is virtual time under the simulator
// and wall time in real deployments.
//
// The motivation is the same as internal/metrics: the paper's claims
// are about *where the time goes* (Figure 7 decomposes a round into
// proposal, BA⋆ and final confirmation; §10.2's pipelining argument is
// entirely about overlapping phases), and the CADP-style formal work on
// BA⋆ models rounds as sequences of timed steps. A per-round,
// per-phase event record is the substrate both need: experiments pull
// percentile tables out of it, the e2e benchmark writes
// phase-latency percentiles into BENCH_txflow.json from it, and an
// operator can diff a slow round against a healthy one span by span.
//
// A Tracer is cheap and bounded: recording is one mutex-guarded append
// (rounds arrive at human timescales — hundreds of spans per second at
// the very most), memory is capped by a ring of the most recent rounds,
// and aggregate per-phase histograms can be teed into a
// metrics.Registry so long-horizon percentiles survive ring eviction.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"algorand/internal/metrics"
)

// Phase names one stage of a round's lifecycle. The canonical sequence
// is Sortition → Propose → BAStep* → Certify → Commit → Persist,
// though empty or recovered rounds may skip stages.
type Phase string

const (
	// PhaseSortition covers proposer sortition plus block assembly (the
	// work a would-be proposer does before gossiping anything).
	PhaseSortition Phase = "sortition"
	// PhasePropose covers waiting for block proposals (§6): from round
	// start until the highest-priority block is in hand.
	PhasePropose Phase = "propose"
	// PhaseBAStep is one BA⋆ vote-counting step (reduction, binary, or
	// final); the span's Step field carries the wire step number.
	PhaseBAStep Phase = "ba_step"
	// PhaseCertify covers BA⋆ conclusion to certificate in hand (the
	// final confirmation wait in unpipelined runs).
	PhaseCertify Phase = "certify"
	// PhaseCommit covers applying the agreed block to the ledger.
	PhaseCommit Phase = "commit"
	// PhasePersist covers journaling the commit to the durable archive.
	PhasePersist Phase = "persist"
	// PhaseRound covers the whole round, start to committed.
	PhaseRound Phase = "round"
	// PhaseAssemble covers proposer block assembly alone (a sub-span of
	// sortition, reported separately because block assembly is the
	// txflow pipeline's hand-off point).
	PhaseAssemble Phase = "assemble"
)

// Span is one timed phase of one round.
type Span struct {
	Phase Phase         `json:"phase"`
	Step  uint64        `json:"step,omitempty"` // BA⋆ wire step for ba_step spans
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// Duration is the span's length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// RoundTrace is the recorded timeline of one round.
type RoundTrace struct {
	Round uint64 `json:"round"`
	Spans []Span `json:"spans"`
}

// Tracer collects round traces on a caller-supplied clock. All methods
// are safe for concurrent use (the pipelined final step records from a
// background process while the next round records from the scheduler).
type Tracer struct {
	mu      sync.Mutex
	now     func() time.Duration
	wall    func() time.Duration
	cap     int
	order   []uint64 // ring of round numbers, oldest first
	rounds  map[uint64]*RoundTrace
	byPhase map[Phase]*metrics.Histogram
}

// New creates a tracer on the given clock keeping at most capRounds
// round traces (0 means a default of 1024). The clock must be safe to
// call from any goroutine that records.
func New(now func() time.Duration, capRounds int) *Tracer {
	if capRounds <= 0 {
		capRounds = 1024
	}
	epoch := time.Now()
	return &Tracer{
		now:     now,
		wall:    func() time.Duration { return time.Since(epoch) },
		cap:     capRounds,
		rounds:  make(map[uint64]*RoundTrace),
		byPhase: make(map[Phase]*metrics.Histogram),
	}
}

// Now reads the tracer's clock.
func (t *Tracer) Now() time.Duration { return t.now() }

// WallNow reads the tracer's wall clock. Synchronous compute phases
// (block assembly, commit, persist) cost zero *virtual* time — the
// simulator only advances the clock for modeled waits — so recording
// them on the round clock collapses every span to 0. Spans recorded on
// WallNow instead measure real CPU time at microsecond resolution,
// making sub-millisecond phases visible in the percentile digests.
// Under a real deployment's wall-clock tracer the two clocks coincide.
func (t *Tracer) WallNow() time.Duration { return t.wall() }

// SetWallClock overrides the wall clock (deterministic tests pin it).
func (t *Tracer) SetWallClock(wall func() time.Duration) { t.wall = wall }

// RegisterMetrics tees every recorded span into per-phase duration
// histograms (algorand_trace_phase_seconds{phase="..."}) in r, so
// long-horizon percentiles survive the trace ring's eviction.
func (t *Tracer) RegisterMetrics(r *metrics.Registry) {
	// Register before taking t.mu so the registry lock is never
	// acquired while a tracer lock is held.
	hists := make(map[Phase]*metrics.Histogram)
	for _, ph := range []Phase{PhaseSortition, PhaseAssemble, PhasePropose, PhaseBAStep, PhaseCertify, PhaseCommit, PhasePersist, PhaseRound} {
		hists[ph] = r.Histogram(
			metrics.Name("algorand_trace_phase_seconds", "phase", string(ph)),
			"per-round phase latency by trace phase", nil)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for ph, h := range hists {
		t.byPhase[ph] = h
	}
}

// Record adds a completed span to a round's trace.
func (t *Tracer) Record(round uint64, phase Phase, step uint64, start, end time.Duration) {
	if end < start {
		end = start
	}
	t.mu.Lock()
	rt, ok := t.rounds[round]
	if !ok {
		rt = &RoundTrace{Round: round}
		t.rounds[round] = rt
		t.order = append(t.order, round)
		if len(t.order) > t.cap {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.rounds, evict)
		}
	}
	rt.Spans = append(rt.Spans, Span{Phase: phase, Step: step, Start: start, End: end})
	h := t.byPhase[phase]
	t.mu.Unlock()
	if h != nil {
		h.ObserveDuration(end - start)
	}
}

// Begin opens a span at the clock's current reading and returns a
// closure that records it when called.
func (t *Tracer) Begin(round uint64, phase Phase, step uint64) func() {
	start := t.now()
	return func() {
		t.Record(round, phase, step, start, t.now())
	}
}

// Rounds returns a copy of every retained round trace, ordered by
// round.
func (t *Tracer) Rounds() []RoundTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RoundTrace, 0, len(t.order))
	for _, r := range t.order {
		rt := t.rounds[r]
		cp := RoundTrace{Round: rt.Round, Spans: append([]Span(nil), rt.Spans...)}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

// Durations returns the lengths of every retained span of a phase.
func (t *Tracer) Durations(phase Phase) []time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []time.Duration
	for _, r := range t.order {
		for _, s := range t.rounds[r].Spans {
			if s.Phase == phase {
				out = append(out, s.Duration())
			}
		}
	}
	return out
}

// Summary is a percentile digest of a span population, in the shape
// BENCH artifacts embed: milliseconds for readability at round scale,
// plus microsecond fields so sub-millisecond phases (block assembly,
// commit→persist) don't flatten to 0 in the artifact.
type Summary struct {
	N     int     `json:"n"`
	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	P50us float64 `json:"p50_us"`
	P90us float64 `json:"p90_us"`
	P99us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// Summarize digests a sample of durations.
func Summarize(sample []time.Duration) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := append([]time.Duration(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		idx := int(q * float64(len(s)-1))
		return s[idx]
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	p50, p90, p99, max := at(0.50), at(0.90), at(0.99), s[len(s)-1]
	return Summary{
		N:     len(s),
		P50ms: ms(p50), P90ms: ms(p90), P99ms: ms(p99), MaxMs: ms(max),
		P50us: us(p50), P90us: us(p90), P99us: us(p99), MaxUs: us(max),
	}
}

// PhaseSummary digests every retained span of a phase.
func (t *Tracer) PhaseSummary(phase Phase) Summary {
	return Summarize(t.Durations(phase))
}

// ChainedDurations returns, per retained round, the time from the
// start of the first `from` span to the end of the last `to` span —
// e.g. commit-to-persist latency — skipping rounds missing either.
func (t *Tracer) ChainedDurations(from, to Phase) []time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []time.Duration
	for _, r := range t.order {
		var start, end time.Duration
		haveStart, haveEnd := false, false
		for _, s := range t.rounds[r].Spans {
			if s.Phase == from && (!haveStart || s.Start < start) {
				start, haveStart = s.Start, true
			}
			if s.Phase == to && (!haveEnd || s.End > end) {
				end, haveEnd = s.End, true
			}
		}
		if haveStart && haveEnd && end >= start {
			out = append(out, end-start)
		}
	}
	return out
}

// MarshalJSON exports the retained traces as a JSON array of rounds.
func (t *Tracer) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Rounds())
}

// String renders a compact one-line-per-round digest for operators.
func (t *Tracer) String() string {
	rounds := t.Rounds()
	if len(rounds) == 0 {
		return "trace: no rounds recorded"
	}
	var out string
	for _, rt := range rounds {
		out += fmt.Sprintf("round %d:", rt.Round)
		for _, s := range rt.Spans {
			if s.Phase == PhaseBAStep {
				out += fmt.Sprintf(" %s[%d]=%v", s.Phase, s.Step, s.Duration().Round(time.Millisecond))
			} else {
				out += fmt.Sprintf(" %s=%v", s.Phase, s.Duration().Round(time.Millisecond))
			}
		}
		out += "\n"
	}
	return out
}
