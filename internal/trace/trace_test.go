package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"algorand/internal/metrics"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestRecordAndQuery(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, 0)

	tr.Record(1, PhasePropose, 0, 0, 100*time.Millisecond)
	tr.Record(1, PhaseBAStep, 1, 100*time.Millisecond, 150*time.Millisecond)
	tr.Record(1, PhaseBAStep, 2, 150*time.Millisecond, 250*time.Millisecond)
	tr.Record(1, PhaseCommit, 0, 250*time.Millisecond, 260*time.Millisecond)
	tr.Record(1, PhasePersist, 0, 260*time.Millisecond, 300*time.Millisecond)

	rounds := tr.Rounds()
	if len(rounds) != 1 || rounds[0].Round != 1 || len(rounds[0].Spans) != 5 {
		t.Fatalf("rounds = %+v", rounds)
	}

	ba := tr.Durations(PhaseBAStep)
	if len(ba) != 2 || ba[0] != 50*time.Millisecond || ba[1] != 100*time.Millisecond {
		t.Fatalf("ba durations = %v", ba)
	}

	// commit-to-persist: start of commit to end of persist.
	c2p := tr.ChainedDurations(PhaseCommit, PhasePersist)
	if len(c2p) != 1 || c2p[0] != 50*time.Millisecond {
		t.Fatalf("commit-to-persist = %v", c2p)
	}
	// Rounds missing either endpoint are skipped.
	tr.Record(2, PhaseCommit, 0, 0, time.Millisecond)
	if got := tr.ChainedDurations(PhaseCommit, PhasePersist); len(got) != 1 {
		t.Fatalf("chained with missing persist = %v", got)
	}
}

func TestBegin(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, 0)
	end := tr.Begin(7, PhaseCommit, 0)
	clk.Advance(25 * time.Millisecond)
	end()

	rounds := tr.Rounds()
	if len(rounds) != 1 || rounds[0].Spans[0].Duration() != 25*time.Millisecond {
		t.Fatalf("rounds = %+v", rounds)
	}
}

func TestRingEviction(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, 4)
	for r := uint64(1); r <= 10; r++ {
		tr.Record(r, PhaseRound, 0, 0, time.Second)
	}
	rounds := tr.Rounds()
	if len(rounds) != 4 {
		t.Fatalf("retained %d rounds, want 4", len(rounds))
	}
	if rounds[0].Round != 7 || rounds[3].Round != 10 {
		t.Fatalf("retained rounds %d..%d, want 7..10", rounds[0].Round, rounds[3].Round)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.P99ms != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	var sample []time.Duration
	for i := 1; i <= 100; i++ {
		sample = append(sample, time.Duration(i)*time.Millisecond)
	}
	s := Summarize(sample)
	if s.N != 100 || s.MaxMs != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50ms < 49 || s.P50ms > 51 {
		t.Fatalf("p50 = %v, want ≈50", s.P50ms)
	}
	if s.P99ms < 98 || s.P99ms > 100 {
		t.Fatalf("p99 = %v, want ≈99", s.P99ms)
	}
}

func TestRegisterMetricsTee(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, 0)
	reg := metrics.NewRegistry()
	tr.RegisterMetrics(reg)

	tr.Record(1, PhaseCommit, 0, 0, 10*time.Millisecond)
	tr.Record(2, PhaseCommit, 0, 0, 20*time.Millisecond)

	h := reg.Histogram(metrics.Name("algorand_trace_phase_seconds", "phase", "commit"), "", nil)
	if h.Count() != 2 {
		t.Fatalf("teed histogram count = %d, want 2", h.Count())
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `algorand_trace_phase_seconds_count{phase="commit"} 2`) {
		t.Fatalf("exposition missing teed series:\n%s", b.String())
	}
}

func TestJSONExport(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, 0)
	tr.Record(3, PhaseBAStep, 4, 0, time.Second)

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back []RoundTrace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Round != 3 || back[0].Spans[0].Step != 4 {
		t.Fatalf("round-trip = %+v", back)
	}
}

func TestStringDigest(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, 0)
	if s := tr.String(); !strings.Contains(s, "no rounds") {
		t.Fatalf("empty digest = %q", s)
	}
	tr.Record(5, PhasePropose, 0, 0, 40*time.Millisecond)
	tr.Record(5, PhaseBAStep, 2, 40*time.Millisecond, 90*time.Millisecond)
	s := tr.String()
	if !strings.Contains(s, "round 5:") || !strings.Contains(s, "ba_step[2]=50ms") {
		t.Fatalf("digest = %q", s)
	}
}

// TestConcurrentRecord races recorders against readers; meaningful
// under -race.
func TestConcurrentRecord(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.Now, 64)
	reg := metrics.NewRegistry()
	tr.RegisterMetrics(reg)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r := uint64(w*500 + i)
				tr.Record(r, PhaseRound, 0, 0, time.Duration(i)*time.Microsecond)
				end := tr.Begin(r, PhaseCommit, 0)
				end()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = tr.Rounds()
			_ = tr.PhaseSummary(PhaseRound)
			_ = tr.ChainedDurations(PhaseRound, PhaseCommit)
		}
	}()
	wg.Wait()
	<-done

	h := reg.Histogram(metrics.Name("algorand_trace_phase_seconds", "phase", "round"), "", nil)
	if h.Count() != 8*500 {
		t.Fatalf("teed round count = %d, want %d", h.Count(), 8*500)
	}
	if got := len(tr.Rounds()); got != 64 {
		t.Fatalf("retained %d rounds, want 64 (ring cap)", got)
	}
}
