package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestChaosAdversarialDirected pins the critique-paper attack classes
// and the degradation scenarios to named, hand-built runs, one per
// attack, so a regression in any defense fails a scenario bearing its
// name. Each case asserts its *premise* fired (the attack actually
// happened) on top of the full invariant suite.
func TestChaosAdversarialDirected(t *testing.T) {
	zipf := Scenario{Seed: 113, Nodes: 16, Rounds: 6,
		StakeDist: StakeZipf, StakeAlpha: 1.2, Equivocators: 3}
	// The §2 bound is on weight, not count: under Zipf wealth the
	// three-node prefix may hold far more than 20%, so clamp by weight
	// exactly as RandomScenario does.
	zipf.Equivocators = clampByzantinePrefix(zipf.Equivocators, zipf.StakeWeights())

	cases := []struct {
		name string
		s    Scenario
		post func(t *testing.T, res *Result)
	}{
		{
			// Wang's critique: two proposers grind the §5.2 seed chain —
			// withholding blocks to force the fallback seed, or re-timing
			// releases to the λ_priority window edge — for a long run, with
			// the seed refreshed every round so the choice reaches
			// sortition. The bias invariant bounds what the grinding buys.
			name: "seed-grinding",
			s: Scenario{Seed: 110, Nodes: 16, Rounds: 20,
				Grinders: []int{3, 11}, GrindHoldBack: 800 * time.Millisecond},
			post: func(t *testing.T, res *Result) {
				if res.Grind == nil || res.Grind.Published+res.Grind.Withheld == 0 {
					t.Fatalf("grinders never got a proposal decision: %+v", res.Grind)
				}
				t.Logf("grind decisions: published %d, withheld %d",
					res.Grind.Published, res.Grind.Withheld)
			},
		},
		{
			// Conti et al.: a quarter of all transfers are captured into
			// limbo — neither delivered nor dropped — and released 3–5s
			// later, past every 2s step timeout. BA⋆ must still terminate
			// and the chain must stay consistent.
			name: "undecidable-messages",
			s: Scenario{Seed: 111, Nodes: 16, Rounds: 6,
				Limbo: []LimboFault{{Start: 2 * time.Second, End: 30 * time.Second,
					HoldProb: 0.25, HoldFor: 3 * time.Second, HoldJitter: 2 * time.Second,
					From: -1, To: -1}}},
			post: func(t *testing.T, res *Result) {
				if res.Cluster.Net.TotalLimbo() == 0 {
					t.Fatal("no transfer was ever captured into limbo; scenario premise broken")
				}
			},
		},
		{
			// Continuous Poisson churn for most of the run: nodes keep
			// crashing and restarting (full §8.3 recovery each time) while
			// consensus proceeds.
			name: "continuous-churn",
			s: Scenario{Seed: 112, Nodes: 16, Rounds: 6,
				Churn: &ChurnFault{Start: 2 * time.Second, End: 45 * time.Second,
					EventsPerMin: 12, MinDown: 3 * time.Second, MaxDown: 10 * time.Second,
					MaxConcurrent: 2}},
			post: func(t *testing.T, res *Result) {
				if res.ChurnEvents == 0 {
					t.Fatal("churn process never crashed a node; scenario premise broken")
				}
				t.Logf("churn events: %d", res.ChurnEvents)
			},
		},
		{
			// Zipf-distributed stake with the equivocator prefix clamped by
			// weight: sortition must stay proportional to stake, and the
			// whales' committees must still satisfy every certificate.
			name: "heavy-tailed-stake",
			s:    zipf,
			post: func(t *testing.T, res *Result) {
				if f := res.Scenario.ByzantineWeightFrac(); f > 0.2 {
					t.Fatalf("Byzantine weight fraction %.2f exceeds the §2 bound", f)
				}
				w := res.Scenario.StakeWeights()
				if len(w) != res.Scenario.Nodes {
					t.Fatalf("stake vector has %d entries for %d nodes", len(w), res.Scenario.Nodes)
				}
			},
		},
		{
			// Overload: 200 tx/s offered against a pool of 96 txs, a
			// 10/s-per-sender rate cap and tiny byte bounds. Graceful
			// degradation (typed rejects, bounded queues, liveness) is
			// asserted by CheckDegradation; here we also demand the shed
			// counters and backoff machinery actually engaged.
			name: "overload-shed",
			s:    Scenario{Seed: 114, Nodes: 12, Rounds: 5, Overload: true, TxLoad: 200},
			post: func(t *testing.T, res *Result) {
				var shed uint64
				for _, n := range res.Cluster.Nodes {
					shed += n.TxFlow().Stats().Shed
				}
				if shed == 0 {
					t.Fatal("overload never shed load; scenario premise broken")
				}
				if res.TxCfg.RateLimit == 0 {
					t.Fatalf("overload run kept the default admission config: %+v", res.TxCfg)
				}
				committed := res.Cluster.CommittedTxCount(res.Scenario.Rounds)
				if committed == 0 {
					t.Error("no transactions committed under overload; shedding starved consensus")
				}
				t.Logf("shed %d submissions, committed %d txs", shed, committed)
			},
		},
		{
			// Churn across a mixed durable/diskless fleet: nodes 2 and 7
			// have no on-disk archive, so their restarts recover from the
			// memory image while everyone else replays a WAL; the
			// durability invariant audits only the nodes that own disks.
			name: "churn-durable-diskless",
			s: Scenario{Seed: 115, Nodes: 14, Rounds: 6, Durable: true,
				Diskless: []int{2, 7},
				Churn: &ChurnFault{Start: 2 * time.Second, End: 40 * time.Second,
					EventsPerMin: 10, MinDown: 3 * time.Second, MaxDown: 8 * time.Second,
					MaxConcurrent: 2}},
			post: func(t *testing.T, res *Result) {
				if res.ChurnEvents == 0 {
					t.Fatal("churn process never crashed a node; scenario premise broken")
				}
				if res.Cluster.Archive(2) != nil || res.Cluster.Archive(7) != nil {
					t.Fatal("diskless nodes were given archives")
				}
				if res.Cluster.Archive(0) == nil {
					t.Fatal("durable node 0 has no archive")
				}
			},
		},
		{
			// Every adversarial family at once: a grinder, heavy-tailed
			// stake, limbo holds, churn, and transaction load.
			name: "adversarial-kitchen-sink",
			s: Scenario{Seed: 116, Nodes: 16, Rounds: 6, TxLoad: 25,
				StakeDist: StakePareto, StakeAlpha: 1.4,
				Grinders: []int{6}, GrindHoldBack: time.Second,
				Limbo: []LimboFault{{Start: 4 * time.Second, End: 25 * time.Second,
					HoldProb: 0.15, HoldFor: 3 * time.Second, HoldJitter: time.Second,
					From: -1, To: -1}},
				Churn: &ChurnFault{Start: 3 * time.Second, End: 35 * time.Second,
					EventsPerMin: 8, MinDown: 3 * time.Second, MaxDown: 8 * time.Second,
					MaxConcurrent: 1}},
			post: func(t *testing.T, res *Result) {
				if f := res.Scenario.ByzantineWeightFrac(); f > 0.2 {
					t.Fatalf("Byzantine weight fraction %.2f exceeds the §2 bound", f)
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := runScenario(t, tc.s)
			if tc.post != nil {
				tc.post(t, res)
			}
		})
	}
}

// TestChaosTentativeForkStraggler pins the one failure the first
// 220-seed adversarial soak found (seed 20120): churn + a partition +
// Zipf stake, under the sim's scaled-down committees, produced a
// genuine tentative fork at full thresholds — a churn-restarted node
// crossed a step threshold for the empty block while the network's
// majority certified a proposal one step later. The straggler could
// neither catch up (peer data conflicted with its own commit) nor
// finish §8.2 recovery alone (a minority never reaches the recovery
// vote threshold against a healthy majority), so it stalled forever.
// Fork-aware catch-up (node.tryAdoptFork) must walk it onto the longer
// certified chain; the run must end with consistent chains and
// restored liveness.
func TestChaosTentativeForkStraggler(t *testing.T) {
	res := runScenario(t, RandomScenario(20120))
	adoptions := 0
	for _, n := range res.Cluster.Nodes {
		adoptions += n.ForkAdoptions
	}
	// The exact trajectory is seed- and code-path-sensitive; the hard
	// assertions are the invariants above. Log whether the fork actually
	// formed so a premise drift is visible in -v output.
	t.Logf("catch-up fork adoptions across the run: %d", adoptions)
}

// TestChaosChurnDeterministic runs one churn-heavy scenario twice and
// demands identical outcomes — churn draws (victims, downtimes,
// inter-arrivals) must come entirely from the scenario seed for
// -chaos.seed replay to stay trustworthy.
func TestChaosChurnDeterministic(t *testing.T) {
	s := Scenario{Seed: 117, Nodes: 12, Rounds: 5,
		Churn: &ChurnFault{Start: 2 * time.Second, End: 35 * time.Second,
			EventsPerMin: 10, MinDown: 3 * time.Second, MaxDown: 8 * time.Second,
			MaxConcurrent: 2}}
	a, b := Run(s), Run(s)
	t.Cleanup(a.Cleanup)
	t.Cleanup(b.Cleanup)
	if a.ChurnEvents == 0 {
		t.Fatal("churn never fired; determinism test exercises nothing")
	}
	if a.ChurnEvents != b.ChurnEvents {
		t.Fatalf("churn events diverged: %d vs %d", a.ChurnEvents, b.ChurnEvents)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("elapsed diverged: %v vs %v", a.Elapsed, b.Elapsed)
	}
	for i := range a.Cluster.Nodes {
		ha := a.Cluster.Nodes[i].Ledger().HeadHash()
		hb := b.Cluster.Nodes[i].Ledger().HeadHash()
		if ha != hb {
			t.Fatalf("node %d head diverged across identical churned runs", i)
		}
	}
}

// TestChaosAdversarialSwarm is the seed-matrix soak for the adversarial
// generator: CHAOS_ADV_SOAK=N runs N consecutive seeds (drawing from
// the full fault vocabulary, adversarial families included) and demands
// zero violations. Skipped without the env var — the per-commit CI job
// runs the directed scenarios above instead.
func TestChaosAdversarialSwarm(t *testing.T) {
	env := os.Getenv("CHAOS_ADV_SOAK")
	if env == "" {
		t.Skip("set CHAOS_ADV_SOAK=N to soak N adversarial seeds")
	}
	count, err := strconv.Atoi(env)
	if err != nil {
		t.Fatalf("CHAOS_ADV_SOAK=%q: %v", env, err)
	}
	const base = int64(20000)
	for i := 0; i < count; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runScenario(t, RandomScenario(seed))
		})
	}
}
