package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/params"
	"algorand/internal/sim"
	"algorand/internal/txflow"
	"algorand/internal/vtime"
)

// livenessBudget is how much virtual time a run gets after its last
// fault clears. It covers the worst §8.2 path — a failed in-flight
// round, the sync probe, the sleep to the next recovery checkpoint,
// a full recovery attempt, and re-running every remaining round — with
// slack. Liveness is asserted *within this window* (§3's weak-synchrony
// promise: progress resumes within bounded time of the network healing).
const livenessBudget = 15 * time.Minute

// recoveryInterval for chaos runs: short enough that §8.2 recovery
// fires several times inside the liveness window.
const recoveryInterval = 90 * time.Second

// Result is a completed chaos run, ready for invariant checking.
type Result struct {
	Scenario Scenario
	Cluster  *sim.Cluster
	Elapsed  time.Duration
	// HealAt is the virtual time the last fault cleared; HealChains[i]
	// is node i's chain length at that moment (the liveness baseline).
	HealAt     time.Duration
	HealChains []uint64
	// Down marks nodes crashed without restart; Byzantine marks §10.4
	// equivocators. Both are exempt from liveness (but not safety —
	// whatever they committed while honest must still be consistent).
	Down      map[int]bool
	Byzantine map[int]bool
	// RestartErrs records archive-restore failures during scheduled
	// restarts (always violations: scenarios never tamper archives).
	RestartErrs []error
	// CheckParams are the weakest protocol parameters any node ran with
	// during the run — certificates are re-verified against these.
	CheckParams params.Params
	// DataDir is the scratch directory holding every node's on-disk
	// archive for Durable scenarios ("" otherwise). Call Cleanup when
	// done with the Result to release it.
	DataDir string
	// Grind records the seed-grinding attackers' publish/withhold
	// decisions (nil when the scenario has no grinders).
	Grind *sim.GrindStats
	// ChurnEvents counts crash/restart cycles driven by the continuous
	// churn process (0 when the scenario has no churn).
	ChurnEvents int
	// TxCfg is the effective per-node ingestion configuration — the
	// degradation invariant checks queue bounds against it.
	TxCfg txflow.Config
}

// Cleanup closes any open archives and removes the Durable scratch
// directory. Safe to call on non-durable results and more than once.
func (r *Result) Cleanup() {
	if r.DataDir == "" {
		return
	}
	r.Cluster.CloseArchives()
	os.RemoveAll(r.DataDir)
}

// Run compiles the scenario onto a fresh cluster and runs it to
// completion or the liveness horizon.
func Run(s Scenario) *Result { return RunWith(s, nil) }

// RunWith is Run with a pre-start hook, letting tests sabotage the
// deployment (e.g. install broken parameters on one node) before
// virtual time starts.
func RunWith(s Scenario, preStart func(c *sim.Cluster)) *Result {
	cfg := sim.DefaultConfig(s.Nodes, s.Rounds)
	// The accelerated timeouts every node test uses: rounds complete in
	// a few virtual seconds, so fault windows of tens of seconds span
	// multiple rounds.
	cfg.Params.LambdaPriority = time.Second
	cfg.Params.LambdaStepVar = time.Second
	cfg.Params.LambdaBlock = 5 * time.Second
	cfg.Params.LambdaStep = 2 * time.Second
	cfg.Params.MaxSteps = 8
	cfg.Params.BlockSize = 4096
	cfg.RecoveryInterval = recoveryInterval
	cfg.Seed = s.Seed
	cfg.CheckpointInterval = s.Checkpoint

	honest := cfg.Params
	if s.TStepOverride > 0 {
		cfg.Params.TStep = s.TStepOverride
	}
	if len(s.Grinders) > 0 {
		// Grinding only biases sortition when the seed chain reaches it:
		// refresh every round (§5.2 with R = 1) so the publish/withhold
		// choice over round r's seed matters at round r+1.
		cfg.LedgerCfg.SeedRefreshInterval = 1
	}
	cfg.Weights = s.StakeWeights()
	if s.Durable && len(s.Diskless) > 0 {
		mask := make([]bool, s.Nodes)
		for _, i := range s.Diskless {
			if i >= 0 && i < s.Nodes {
				mask[i] = true
			}
		}
		cfg.Diskless = mask
	}
	if s.TxLoad > 0 {
		// Deliberately small pool bounds: at these rates the lowest-fee
		// eviction path fires constantly, which is the point.
		cfg.TxFlow = txflow.Config{Shards: 4, MaxTxs: 256, MaxBytes: 64 << 10, MaxPerSender: 48}
	}
	if s.Overload {
		// Overload scenarios shrink admission hard below the offered
		// TxLoad: pool, bytes, per-sender caps and a rate limiter all
		// saturate, and the degradation invariant demands the pipeline
		// shed with typed rejects instead of growing without bound.
		cfg.TxFlow = txflow.Config{
			Shards: 4, MaxTxs: 96, MaxBytes: 24 << 10, MaxPerSender: 12,
			RateLimit: 10, RateWindow: time.Second,
		}
	}
	healAt := s.LastFaultClear()
	cfg.Horizon = healAt + livenessBudget
	if s.Durable {
		// Every node journals commits to a WAL archive under a scratch
		// dir; crashes keep the disk, so restarts recover through the
		// full diskstore scan rather than the crashed process's memory.
		dir, err := os.MkdirTemp("", "algorand-chaos-")
		if err != nil {
			panic(fmt.Sprintf("chaos: durable scratch dir: %v", err))
		}
		cfg.DataDir = dir
	}

	c := sim.NewCluster(cfg)
	c.Net.SeedFaults(s.Seed)

	res := &Result{
		Scenario:    s,
		Cluster:     c,
		HealAt:      healAt,
		HealChains:  make([]uint64, s.Nodes),
		Down:        make(map[int]bool),
		Byzantine:   make(map[int]bool),
		CheckParams: cfg.Params,
		DataDir:     cfg.DataDir,
		TxCfg:       cfg.TxFlow,
	}

	// --- Compile faults into network hooks and scheduled events.
	for i := 0; i < s.Equivocators; i++ {
		res.Byzantine[i] = true
	}
	c.MakeEquivocatingProposers(s.Equivocators)
	if len(s.Grinders) > 0 {
		for _, g := range s.Grinders {
			res.Byzantine[g] = true
		}
		res.Grind = c.MakeGrindingProposers(s.Grinders, s.GrindHoldBack)
	}

	for _, p := range s.Partitions {
		p := p
		c.Net.AddPartition(func(a, b int) bool {
			now := c.Sim.Now()
			if now < p.Start || now >= p.End {
				return false
			}
			return (a < p.Cut) != (b < p.Cut)
		})
	}
	for _, d := range s.DoS {
		d := d
		c.Net.AddPartition(func(a, b int) bool {
			now := c.Sim.Now()
			if now < d.Start || now >= d.End {
				return false
			}
			for _, v := range d.Nodes {
				if a == v || b == v {
					return true
				}
			}
			return false
		})
	}
	for _, lf := range s.Limbo {
		lf := lf
		c.Net.AddLimboFault(network.LimboFault{
			Match: func(from, to int) bool {
				if lf.From >= 0 && from != lf.From {
					return false
				}
				if lf.To >= 0 && to != lf.To {
					return false
				}
				return true
			},
			Active:     func(now time.Duration) bool { return now >= lf.Start && now < lf.End },
			HoldProb:   lf.HoldProb,
			HoldFor:    lf.HoldFor,
			HoldJitter: lf.HoldJitter,
		})
	}
	for _, lf := range s.LinkFaults {
		lf := lf
		c.Net.AddLinkFault(network.LinkFault{
			Match: func(from, to int) bool {
				if lf.From >= 0 && from != lf.From {
					return false
				}
				if lf.To >= 0 && to != lf.To {
					return false
				}
				return true
			},
			Active:      func(now time.Duration) bool { return now >= lf.Start && now < lf.End },
			LossProb:    lf.LossProb,
			ExtraDelay:  lf.ExtraDelay,
			ExtraJitter: lf.ExtraJitter,
		})
	}
	for _, cr := range s.Crashes {
		cr := cr
		c.Sim.After(cr.At, func() { c.CrashNode(cr.Node) })
		if cr.RestartAt > 0 {
			c.Sim.After(cr.RestartAt, func() {
				if _, _, err := c.RestartNode(cr.Node, livenessBudget); err != nil {
					res.RestartErrs = append(res.RestartErrs,
						fmt.Errorf("node %d restart at %v: %w", cr.Node, cr.RestartAt, err))
				}
			})
		} else {
			res.Down[cr.Node] = true
		}
	}
	if s.TStepOverride > 0 {
		c.Sim.After(s.TStepRestoreAt, func() {
			for _, n := range c.Nodes {
				n.SetParams(honest)
			}
		})
	}
	if healAt > 0 {
		// Snapshot chain lengths just after the heal instant (restarts
		// scheduled at the same time have installed their replacements).
		c.Sim.After(healAt+time.Millisecond, func() {
			for i, n := range c.Nodes {
				res.HealChains[i] = n.Ledger().ChainLength()
			}
		})
	}

	if s.TxLoad > 0 {
		startTxLoad(c, s.TxLoad, s.Seed)
	}
	if s.Churn != nil {
		startChurn(c, res, s)
	}

	if preStart != nil {
		preStart(c)
	}
	res.Elapsed = c.Run()
	return res
}

// startChurn runs the continuous Poisson crash/restart process of a
// ChurnFault: exponential inter-arrivals at EventsPerMin, each event
// crashing one eligible node and restarting it after a bounded downtime
// (no later than the churn window's end, so LastFaultClear covers every
// cycle). Scripted-crash and Byzantine nodes are exempt — a restart
// would silently heal an attacker, and double-crashing a scripted node
// would entangle two schedules. A restarted node becomes eligible
// again immediately, so churn naturally produces crash-during-catch-up
// (restart-during-restart) interleavings. Every draw comes from one
// sub-seeded RNG, so churned runs replay exactly.
func startChurn(c *sim.Cluster, res *Result, s Scenario) {
	ch := s.Churn
	rng := rand.New(rand.NewSource(s.Seed ^ 0x636875726e)) // "churn"
	scripted := map[int]bool{}
	for _, cr := range s.Crashes {
		scripted[cr.Node] = true
	}
	downNow := map[int]bool{}
	c.Sim.Spawn("chaos-churn", func(p *vtime.Proc) {
		if start := ch.Start - c.Sim.Now(); start > 0 {
			p.Sleep(start)
		}
		for !c.Sim.Stopped() {
			gap := time.Duration(rng.ExpFloat64() * float64(time.Minute) / ch.EventsPerMin)
			p.Sleep(gap)
			now := c.Sim.Now()
			if now >= ch.End {
				return
			}
			if len(downNow) >= ch.MaxConcurrent {
				continue
			}
			span := int64(ch.MaxDown - ch.MinDown)
			down := ch.MinDown
			if span > 0 {
				down += time.Duration(rng.Int63n(span + 1))
			}
			restartAt := now + down
			if restartAt > ch.End {
				restartAt = ch.End
			}
			var eligible []int
			for i, n := range c.Nodes {
				if scripted[i] || res.Byzantine[i] || downNow[i] || res.Down[i] ||
					n.Halted() || n.Done() {
					continue
				}
				eligible = append(eligible, i)
			}
			if len(eligible) == 0 {
				continue
			}
			v := eligible[rng.Intn(len(eligible))]
			downNow[v] = true
			res.ChurnEvents++
			c.CrashNode(v)
			at := restartAt
			c.Sim.After(at-now, func() {
				delete(downNow, v)
				if _, _, err := c.RestartNode(v, livenessBudget); err != nil {
					res.RestartErrs = append(res.RestartErrs,
						fmt.Errorf("churned node %d restart at %v: %w", v, at, err))
				}
			})
		}
	})
}

// startTxLoad drives a seeded, deliberately messy payment stream
// through the ingestion pipeline for the whole run: fresh transactions
// with randomized fees (eviction churn against the shrunken pool
// bounds), duplicate submissions of earlier transactions — often at a
// different node — and stale nonce re-use. Rejections are expected and
// ignored; what matters is the invariant that none of the garbage ever
// reaches a committed block.
func startTxLoad(c *sim.Cluster, txPerSecond float64, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x74786c6f6164)) // "txload"
	interval := time.Duration(float64(time.Second) / txPerSecond)
	nonces := make(map[int]uint64)
	var history []*ledger.Transaction
	c.Sim.Spawn("chaos-txload", func(p *vtime.Proc) {
		for !c.Sim.Stopped() {
			p.Sleep(interval)
			via := rng.Intn(len(c.Nodes))
			var tx *ledger.Transaction
			switch draw := rng.Float64(); {
			case draw < 0.20 && len(history) > 0:
				// Duplicate submission of an already-sent transaction.
				tx = history[rng.Intn(len(history))]
			case draw < 0.30:
				// Stale nonce: re-use the sender's first nonce forever.
				from := rng.Intn(len(c.Nodes))
				tx = &ledger.Transaction{
					From:   c.Identity(from).PublicKey(),
					To:     c.Identity((from + 1) % len(c.Nodes)).PublicKey(),
					Amount: 1,
					Nonce:  0,
				}
				tx.Sign(c.Identity(from))
			default:
				from := rng.Intn(len(c.Nodes))
				to := rng.Intn(len(c.Nodes))
				if to == from {
					to = (to + 1) % len(c.Nodes)
				}
				tx = &ledger.Transaction{
					From:   c.Identity(from).PublicKey(),
					To:     c.Identity(to).PublicKey(),
					Amount: 1,
					Fee:    uint64(rng.Intn(8)),
					Nonce:  nonces[from],
				}
				nonces[from]++
				tx.Sign(c.Identity(from))
				history = append(history, tx)
			}
			if err := c.Nodes[via].SubmitTx(tx); err != nil {
				// Wind down once every node has stopped, so the sim can
				// drain instead of running to the horizon.
				done := true
				for _, n := range c.Nodes {
					if !n.Done() {
						done = false
						break
					}
				}
				if done {
					return
				}
			}
		}
	})
}

// Check runs the full invariant suite against the finished run.
func (r *Result) Check() []Violation {
	opt := CheckOptions{
		Params:              r.CheckParams,
		Rounds:              r.Scenario.Rounds,
		AllowTentativeForks: r.Scenario.TStepOverride > 0,
		RequireProgress:     r.Scenario.TStepOverride == 0,
		Byzantine:           r.Byzantine,
		Down:                r.Down,
		HealChains:          r.HealChains,
	}
	vs := CheckInvariants(r.Cluster, opt)
	for _, err := range r.RestartErrs {
		vs = append(vs, Violation{Kind: "restart-failed", Node: -1, Detail: err.Error()})
	}
	vs = append(vs, CheckDurability(r)...)
	vs = append(vs, CheckSortitionBias(r)...)
	vs = append(vs, CheckDegradation(r)...)
	return vs
}

// Trace renders the per-round history of the run — what every honest
// node committed and when — plus the fault schedule. It is printed on
// invariant violations so a failure is diagnosable from the test log
// alone, and the leading seed line makes the run replayable with
// `go test ./internal/chaos -run TestChaosReplay -chaos.seed=N`.
func (r *Result) Trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s\n", r.Scenario.String())
	fmt.Fprintf(&b, "replay:   go test ./internal/chaos -run TestChaosReplay -chaos.seed=%d\n", r.Scenario.Seed)
	fmt.Fprintf(&b, "elapsed:  %v virtual (heal at %v)\n", r.Elapsed, r.HealAt)

	// Aggregate Stats per round: value → committing nodes.
	type commit struct {
		nodes []int
		final int
		empty bool
		last  time.Duration
	}
	rounds := map[uint64]map[string]*commit{}
	for _, n := range r.Cluster.Nodes {
		for _, st := range n.Stats {
			if st.End == 0 || st.Round >= recoveryRoundBase {
				continue
			}
			byVal := rounds[st.Round]
			if byVal == nil {
				byVal = map[string]*commit{}
				rounds[st.Round] = byVal
			}
			key := fmt.Sprintf("%x", st.Value[:4])
			cm := byVal[key]
			if cm == nil {
				cm = &commit{}
				byVal[key] = cm
			}
			cm.nodes = append(cm.nodes, n.ID)
			if st.Final {
				cm.final++
			}
			cm.empty = st.Empty
			if st.End > cm.last {
				cm.last = st.End
			}
		}
	}
	var order []uint64
	for rd := range rounds {
		order = append(order, rd)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, rd := range order {
		fmt.Fprintf(&b, "round %d:", rd)
		var keys []string
		for k := range rounds[rd] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cm := rounds[rd][k]
			tag := ""
			if cm.empty {
				tag = " empty"
			}
			fmt.Fprintf(&b, " [%s×%d final=%d%s by %v]", k, len(cm.nodes), cm.final, tag, cm.nodes)
		}
		fmt.Fprintf(&b, " done@%v\n", rounds[rd][keys[len(keys)-1]].last)
	}
	fmt.Fprintf(&b, "chains:  ")
	for i, n := range r.Cluster.Nodes {
		mark := ""
		if r.Byzantine[i] {
			mark = "b"
		}
		if r.Down[i] {
			mark += "d"
		}
		fmt.Fprintf(&b, " n%d%s=%d", i, mark, n.Ledger().ChainLength())
	}
	b.WriteString("\n")
	return b.String()
}
