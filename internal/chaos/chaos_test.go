package chaos

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/sim"
)

var chaosSeed = flag.Int64("chaos.seed", 0, "replay one randomized chaos scenario by seed")

// report fails the test with every violation plus the full replayable
// trace; with none it logs a one-line summary.
func report(t *testing.T, res *Result, vs []Violation) {
	t.Helper()
	if len(vs) == 0 {
		return
	}
	for _, v := range vs {
		t.Errorf("invariant violated: %s", v)
	}
	t.Errorf("run trace:\n%s", res.Trace())
}

func runScenario(t *testing.T, s Scenario) *Result {
	t.Helper()
	res := Run(s)
	t.Cleanup(res.Cleanup)
	report(t, res, res.Check())
	return res
}

// TestChaosReplay re-runs a single randomized scenario under its seed,
// exactly as the swarm would have: the debugging entry point printed in
// every violation trace.
func TestChaosReplay(t *testing.T) {
	if *chaosSeed == 0 {
		t.Skip("pass -chaos.seed=N to replay a randomized scenario")
	}
	s := RandomScenario(*chaosSeed)
	t.Logf("replaying scenario: %s", s.String())
	runScenario(t, s)
}

// TestChaosSwarm runs a batch of randomized fault scenarios and checks
// every invariant on each. The batch is seeded deterministically so CI
// results are reproducible; CHAOS_SCENARIOS overrides the batch size
// (for long soak runs) and CHAOS_BASE_SEED shifts the seed range.
func TestChaosSwarm(t *testing.T) {
	count := 20
	if env := os.Getenv("CHAOS_SCENARIOS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("CHAOS_SCENARIOS=%q: %v", env, err)
		}
		count = v
	}
	base := int64(1000)
	if env := os.Getenv("CHAOS_BASE_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_BASE_SEED=%q: %v", env, err)
		}
		base = v
	}
	if testing.Short() {
		count = 6
	}
	for i := 0; i < count; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runScenario(t, RandomScenario(seed))
		})
	}
}

// TestChaosDirected pins the attack classes the paper analyses to named,
// hand-built scenarios, so a regression in any one protocol defense
// fails a scenario bearing its name.
func TestChaosDirected(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		post func(t *testing.T, res *Result)
	}{
		{
			// §10.4: 3/16 of the network equivocates on proposals and votes.
			name: "equivocating-proposers",
			s:    Scenario{Seed: 101, Nodes: 16, Rounds: 5, Equivocators: 3},
		},
		{
			// §3 weak synchrony: an even split stalls BA⋆ outright at the
			// paper's thresholds; after healing the network must finish.
			name: "partition-stall-heal",
			s: Scenario{Seed: 102, Nodes: 16, Rounds: 6,
				Partitions: []PartitionFault{{Start: 8 * time.Second, End: 40 * time.Second, Cut: 8}}},
		},
		{
			// §8.3 crash path inside a live run.
			name: "crash-restart",
			s: Scenario{Seed: 103, Nodes: 16, Rounds: 8,
				Crashes: []CrashFault{{Node: 5, At: 6 * time.Second, RestartAt: 16 * time.Second}}},
		},
		{
			// Gossip must survive a lossy, jittery network (§8.4 redundancy).
			name: "lossy-network",
			s: Scenario{Seed: 104, Nodes: 12, Rounds: 6,
				LinkFaults: []LinkFault{{End: 30 * time.Second, LossProb: 0.20,
					ExtraDelay: 50 * time.Millisecond, ExtraJitter: 100 * time.Millisecond,
					From: -1, To: -1}}},
		},
		{
			// Targeted DoS on two known participants (§10.4): the network
			// proceeds without them; they catch up once the attack ends.
			name: "targeted-dos",
			s: Scenario{Seed: 105, Nodes: 16, Rounds: 6,
				DoS: []DoSFault{{Nodes: []int{2, 9}, Start: 5 * time.Second, End: 25 * time.Second}}},
		},
		{
			// Figure 1's transaction flow under fire: a messy payment
			// stream (duplicate submissions, stale nonces, fee churn
			// against tiny pool bounds) rides through a partition and a
			// crash. The committed-transaction invariant demands only
			// valid, unique payments ever land in blocks — and the run
			// must still commit real traffic.
			name: "tx-load-under-faults",
			s: Scenario{Seed: 108, Nodes: 12, Rounds: 6, TxLoad: 25,
				Partitions: []PartitionFault{{Start: 6 * time.Second, End: 20 * time.Second, Cut: 6}},
				Crashes:    []CrashFault{{Node: 3, At: 5 * time.Second, RestartAt: 15 * time.Second}}},
			post: func(t *testing.T, res *Result) {
				committed := res.Cluster.CommittedTxCount(res.Scenario.Rounds)
				if committed == 0 {
					t.Error("no transactions committed under load; the pipeline stalled")
				}
				st := res.Cluster.Nodes[0].TxFlow().Stats()
				if st.Duplicate == 0 && st.StaleNonce == 0 {
					t.Errorf("load generator's garbage never reached node 0's pipeline: %v", st)
				}
			},
		},
		{
			// §8.3 durable storage: every node journals to an on-disk WAL.
			// One node dies mid-run and its replacement recovers from the
			// data dir alone (full torn-tail/checksum recovery scan) before
			// catching up; a second node stays down, leaving a frozen
			// archive. The durability invariant then re-opens every data
			// dir cold and demands each disk chain equal the network's,
			// byte for byte.
			name: "durable-crash-restart",
			s: Scenario{Seed: 109, Nodes: 14, Rounds: 7, Durable: true,
				Crashes: []CrashFault{
					{Node: 4, At: 6 * time.Second, RestartAt: 16 * time.Second},
					{Node: 9, At: 10 * time.Second}}},
			post: func(t *testing.T, res *Result) {
				if res.DataDir == "" {
					t.Fatal("durable scenario ran without a data dir")
				}
				st := res.Cluster.Archive(4).Stats()
				if st.RecoveredRounds == 0 {
					t.Error("node 4's restart recovered nothing from disk; the replacement started from genesis")
				}
			},
		},
		{
			// Checkpointed fast recovery: every node snapshots its account
			// state on a 2-round grid; the crashed node's replacement
			// re-bases onto its newest on-disk checkpoint (certificate and
			// Merkle root re-verified — the disk is trusted no more than a
			// peer) and replays only the delta. The invariant suite then
			// cross-checks every checkpoint against chain replay, and the
			// durability check validates the recovered checkpoint records.
			name: "checkpointed-crash-restart",
			s: Scenario{Seed: 110, Nodes: 14, Rounds: 8, Durable: true, Checkpoint: 2,
				Crashes: []CrashFault{{Node: 6, At: 30 * time.Second, RestartAt: 40 * time.Second}}},
			post: func(t *testing.T, res *Result) {
				n := res.Cluster.Nodes[6]
				if _, ok := n.Checkpoint(); !ok {
					t.Error("restarted node holds no checkpoint")
				}
				if base := chainBase(n.Ledger()); base == 0 {
					t.Error("restart took the full-replay path; the snapshot-first re-base never happened")
				} else {
					t.Logf("node 6 re-based onto checkpoint at round %d, chain %d",
						base, n.Ledger().ChainLength())
				}
			},
		},
		{
			// Everything at once: equivocators, a partition, background
			// loss, a DoS'd node, and a crash spanning the heal.
			name: "kitchen-sink",
			s: Scenario{Seed: 106, Nodes: 16, Rounds: 6, Equivocators: 2,
				Partitions: []PartitionFault{{Start: 10 * time.Second, End: 30 * time.Second, Cut: 8}},
				LinkFaults: []LinkFault{{End: 20 * time.Second, LossProb: 0.10, From: -1, To: -1}},
				DoS:        []DoSFault{{Nodes: []int{7}, Start: 12 * time.Second, End: 28 * time.Second}},
				Crashes:    []CrashFault{{Node: 11, At: 8 * time.Second, RestartAt: 35 * time.Second}}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := runScenario(t, tc.s)
			if tc.post != nil {
				tc.post(t, res)
			}
		})
	}
}

// TestChaosPartitionForks is the §8.2 scenario: with the ordinary-step
// threshold weakened during a partition, both halves commit tentative
// blocks — real forks — and the recovery protocol must reconcile them
// after the heal without ever allowing a final fork.
func TestChaosPartitionForks(t *testing.T) {
	s := Scenario{
		Seed: 107, Nodes: 20, Rounds: 30,
		Partitions:     []PartitionFault{{End: 60 * time.Second, Cut: 10}},
		TStepOverride:  0.40,
		TStepRestoreAt: 70 * time.Second,
	}
	res := runScenario(t, s)

	// Premise: the weakened threshold must actually have forked the
	// halves, otherwise this test exercises nothing.
	forked := false
	seen := map[uint64]crypto.Digest{}
	for _, n := range res.Cluster.Nodes {
		for _, st := range n.Stats {
			if st.End == 0 || st.Round >= recoveryRoundBase {
				continue
			}
			if prev, ok := seen[st.Round]; ok && prev != st.Value {
				forked = true
			} else {
				seen[st.Round] = st.Value
			}
		}
	}
	if !forked {
		t.Fatal("partition did not produce tentative forks; scenario premise broken")
	}
}

// TestChaosDeterministic runs the same scenario twice and demands
// bit-identical outcomes — the property that makes -chaos.seed replay
// trustworthy.
func TestChaosDeterministic(t *testing.T) {
	s := RandomScenario(77)
	a, b := Run(s), Run(s)
	t.Cleanup(a.Cleanup)
	t.Cleanup(b.Cleanup)
	if a.Elapsed != b.Elapsed {
		t.Fatalf("elapsed diverged: %v vs %v", a.Elapsed, b.Elapsed)
	}
	for i := range a.Cluster.Nodes {
		ha := a.Cluster.Nodes[i].Ledger().HeadHash()
		hb := b.Cluster.Nodes[i].Ledger().HeadHash()
		if ha != hb {
			t.Fatalf("node %d head diverged across identical runs", i)
		}
	}
	if !reflect.DeepEqual(RandomScenario(77), s) {
		t.Fatal("RandomScenario is not a pure function of its seed")
	}
}

// TestBrokenNodeCaught is the checker's own regression test: a node
// whose vote thresholds are quietly lowered (it certifies blocks on far
// too few votes) must be caught by the certificate-validity invariant,
// and the failure output must carry the replayable seed.
func TestBrokenNodeCaught(t *testing.T) {
	s := Scenario{Seed: 4242, Nodes: 16, Rounds: 5}
	const broken = 13
	res := RunWith(s, func(c *sim.Cluster) {
		bad := c.Cfg.Params
		bad.TStep = 0.25
		bad.TFinal = 0.30
		c.Nodes[broken].SetParams(bad)
	})
	vs := res.Check()
	caught := false
	for _, v := range vs {
		if v.Kind == "bad-cert" && v.Node == broken {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("checker missed the under-voted certificates; violations: %v", vs)
	}
	if !strings.Contains(res.Trace(), "-chaos.seed=4242") {
		t.Fatal("trace does not include the replayable seed")
	}
}
