package chaos

import (
	"fmt"

	"algorand/internal/committee"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/sortition"
)

// biasLogThreshold is ln(1e-9): a Chernoff bound below it means the
// observed adversary luck had probability under one in a billion in an
// unbiased run — far past noise, so we call it a violation. Short runs
// cannot reach the threshold (five rounds of perfect luck at 20% stake
// bound at ln P ≈ -8), which keeps the swarm free of false positives;
// the long directed grinding scenario is where the bound has teeth.
const biasLogThreshold = -20.7

// CheckSortitionBias asserts the §5.2 claim that seed grinding cannot
// buy the adversary more than its stake's share of power, on three
// fronts over the longest honest chain:
//
//  1. committed seeds never repeat (a repeat means the seed chain
//     collapsed — the strongest possible grinding outcome);
//  2. the fraction of proposed (non-empty) rounds won by Byzantine
//     proposers stays within a Chernoff binomial bound of the Byzantine
//     stake fraction;
//  3. Byzantine committee seats across all ordinary certificates —
//     recomputed from each vote's sortition proof, never trusted — stay
//     within a Poisson bound of the expected Σ f_byz·τ.
//
// A grinder's binary publish/withhold choice roughly doubles one
// round's options, nowhere near the 1e-9 tails; a *bugged* sortition
// or seed pipeline (seed reuse, weight misaccounting) blows past them
// immediately, which is what the invariant is for.
func CheckSortitionBias(r *Result) []Violation {
	c := r.Cluster
	var ref *ledger.Ledger
	for _, n := range c.Nodes {
		if r.Byzantine[n.ID] {
			continue
		}
		if ref == nil || n.Ledger().ChainLength() > ref.ChainLength() {
			ref = n.Ledger()
		}
	}
	if ref == nil {
		return nil
	}

	byzPK := map[crypto.PublicKey]bool{}
	for i := range r.Byzantine {
		byzPK[c.Identity(i).PublicKey()] = true
	}
	byzFrac := r.Scenario.ByzantineWeightFrac()

	var vs []Violation

	// Seed distinctness: every committed seed — VRF or fallback — hashes
	// in its round and an unpredictable predecessor, so a repeat anywhere
	// in one chain is a (cryptographically impossible) grinding win.
	seenSeed := map[crypto.Digest]uint64{}
	nonEmpty, byzWins := 0, 0
	for rd := uint64(1); rd <= ref.ChainLength(); rd++ {
		b, ok := ref.BlockAt(rd)
		if !ok {
			continue // chain-gap is CheckInvariants' to report
		}
		if first, dup := seenSeed[b.Seed]; dup {
			vs = append(vs, Violation{Kind: "seed-repeat", Node: -1, Round: rd,
				Detail: fmt.Sprintf("seed %x already committed in round %d", b.Seed[:4], first)})
		} else {
			seenSeed[b.Seed] = rd
		}
		if len(b.SeedProof) > 0 {
			nonEmpty++
			if byzPK[b.Proposer] {
				byzWins++
			}
		}
	}

	if lb := committee.BinomialUpperTailLog(nonEmpty, byzFrac, byzWins); lb < biasLogThreshold {
		vs = append(vs, Violation{Kind: "sortition-bias", Node: -1,
			Detail: fmt.Sprintf(
				"Byzantine stake (%.1f%% of weight) proposed %d of %d non-empty rounds (Chernoff ln P ≤ %.1f < ln 1e-9)",
				byzFrac*100, byzWins, nonEmpty, lb)})
	}

	// Committee seats: recompute every Byzantine voter's sub-user count
	// from its sortition proof across all ordinary certificates, and
	// compare against the Poisson expectation Σ f_byz·τ (one term per
	// certificate, with the stake fraction taken from that round's own
	// §5.3 look-back snapshot).
	var lambda, byzSeats float64
	for rd := uint64(1); rd <= ref.ChainLength(); rd++ {
		b, ok := ref.BlockAt(rd)
		if !ok {
			continue
		}
		cert, okC := ref.Certificate(b.Hash())
		if !okC || cert.Round >= recoveryRoundBase {
			continue // recovery certs use their own self-describing context
		}
		tau := r.CheckParams.TauStep
		if cert.Final {
			tau = r.CheckParams.TauFinal
		}
		seed := ref.SortitionSeed(cert.Round)
		weights, total := ref.SortitionWeights(cert.Round)
		if total == 0 {
			continue
		}
		var byzW uint64
		for pk, w := range weights {
			if byzPK[pk] {
				byzW += w
			}
		}
		lambda += float64(byzW) / float64(total) * float64(tau)
		role := sortition.Role{Kind: sortition.RoleCommittee, Round: cert.Round, Step: cert.Step}
		for i := range cert.Votes {
			v := &cert.Votes[i]
			if !byzPK[v.Sender] {
				continue
			}
			_, j := sortition.Verify(c.Provider, v.Sender, v.SortProof, seed[:], role,
				tau, weights[v.Sender], total)
			byzSeats += float64(j)
		}
	}
	if lb := committee.PoissonUpperTailLog(lambda, byzSeats); lb < biasLogThreshold {
		vs = append(vs, Violation{Kind: "sortition-bias", Node: -1,
			Detail: fmt.Sprintf(
				"Byzantine committee seats %.0f across certificates, expected %.1f (Chernoff ln P ≤ %.1f < ln 1e-9)",
				byzSeats, lambda, lb)})
	}
	return vs
}

// CheckDegradation asserts graceful degradation of the ingestion
// pipeline after a run with transaction load: pending pools stay within
// their configured bounds (plus the per-shard eviction overshoot the
// sharded design permits), and — for Overload scenarios, where the
// offered load provably exceeds admission capacity — the pipeline must
// have shed with *typed* rejects rather than absorbed everything. The
// memory bound is the point: a pipeline that "survives" overload by
// queueing without limit fails here even though every other invariant
// (safety, liveness) still passes.
func CheckDegradation(r *Result) []Violation {
	if r.Scenario.TxLoad <= 0 {
		return nil
	}
	cfg := r.TxCfg
	var vs []Violation
	var shed uint64
	for _, n := range r.Cluster.Nodes {
		f := n.TxFlow()
		if f == nil {
			continue
		}
		st := f.Stats()
		if st.Pending > cfg.MaxTxs+cfg.Shards {
			vs = append(vs, Violation{Kind: "queue-bound", Node: n.ID,
				Detail: fmt.Sprintf("pending %d txs exceeds pool bound %d (+%d shard overshoot)",
					st.Pending, cfg.MaxTxs, cfg.Shards)})
		}
		if st.PendingBytes > cfg.MaxBytes+cfg.Shards*ledger.TxWireSize {
			vs = append(vs, Violation{Kind: "queue-bound", Node: n.ID,
				Detail: fmt.Sprintf("pending %d bytes exceeds byte bound %d (+%d shard overshoot)",
					st.PendingBytes, cfg.MaxBytes, cfg.Shards*ledger.TxWireSize)})
		}
		shed += st.SenderLimit + st.RateLimited + st.PoolFull + st.Evicted
	}
	if r.Scenario.Overload && shed == 0 {
		vs = append(vs, Violation{Kind: "overload-no-shed", Node: -1,
			Detail: "overload run shed nothing: admission never pushed back against load past capacity"})
	}
	return vs
}
