// Package chaos is the repo's systematic correctness layer: it runs
// scenario-driven fault injection against whole simulated deployments
// and machine-checks the paper's core claims — BA⋆ safety (§9,
// Theorems 1–3), certificate validity (§8.3), liveness after faults
// clear (§3 weak synchrony, §8.2 recovery), and seed-chain integrity
// (§5.2). A Scenario is pure data derived from a single RNG seed, so
// every run — including every fault draw inside it — replays exactly
// from that seed.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"
)

// PartitionFault splits the network into [0,Cut) vs [Cut,N) for the
// virtual-time window [Start, End): no messages cross the cut.
type PartitionFault struct {
	Start, End time.Duration
	Cut        int
}

// LinkFault impairs matching links for [Start, End): transfers drop
// with probability LossProb and are delayed by ExtraDelay plus uniform
// jitter in [0, ExtraJitter). From/To select one ordered node pair;
// -1 matches any sender/receiver.
type LinkFault struct {
	Start, End  time.Duration
	LossProb    float64
	ExtraDelay  time.Duration
	ExtraJitter time.Duration
	From, To    int
}

// CrashFault halts a node at At; if RestartAt > 0 a replacement is
// started then, restoring the crashed node's archive and catching up
// from peers (§8.3). RestartAt == 0 means the node stays down.
type CrashFault struct {
	Node      int
	At        time.Duration
	RestartAt time.Duration
}

// DoSFault silences the given nodes (all their traffic dropped, both
// directions) for [Start, End) — a targeted denial of service on known
// participants (§10.4 discusses why sortition makes this hard in
// practice; here we model the attacker succeeding and demand recovery).
type DoSFault struct {
	Nodes      []int
	Start, End time.Duration
}

// LimboFault holds matching transfers in the undecidable-message limbo
// of Conti et al. (PAPERS.md): captured messages are neither delivered
// on schedule nor provably dropped, and are released HoldFor plus up to
// HoldJitter after capture — past the step timeouts, at instants the
// adversary picks. Captures happen inside [Start, End); From/To select
// one ordered node pair, -1 matching any sender/receiver.
type LimboFault struct {
	Start, End time.Duration
	// HoldProb is the per-transfer capture probability.
	HoldProb float64
	// HoldFor/HoldJitter shape the limbo duration; make HoldFor larger
	// than λ_step so the receiver's step genuinely times out first.
	HoldFor    time.Duration
	HoldJitter time.Duration
	From, To   int
}

// ChurnFault runs a continuous Poisson join/leave/restart process over
// [Start, End): crash events arrive at EventsPerMin (exponential
// inter-arrivals), each victim staying down for a uniform draw in
// [MinDown, MaxDown] before a full §8.3 restart (archive replay for
// durable nodes, memory-image recovery for diskless ones). At most
// MaxConcurrent nodes are churned down at once, and every churned node
// is restarted by End — the fault is bounded, per weak synchrony (§3).
type ChurnFault struct {
	Start, End       time.Duration
	EventsPerMin     float64
	MinDown, MaxDown time.Duration
	MaxConcurrent    int
}

// Stake distribution names for Scenario.StakeDist.
const (
	// StakeZipf assigns weight ∝ 1/rank^α over a seed-derived rank
	// permutation of the nodes.
	StakeZipf = "zipf"
	// StakePareto draws i.i.d. Pareto(α) weights.
	StakePareto = "pareto"
)

// Scenario is a pure-data description of one adversarial run.
type Scenario struct {
	// Seed drives every random choice: topology, sortition identities,
	// fault draws. Same seed, same run.
	Seed int64
	// Nodes is the deployment size; Rounds how many rounds honest nodes
	// aim to complete.
	Nodes  int
	Rounds uint64

	// Equivocators turns nodes 0..k-1 into the §10.4 attackers
	// (conflicting block versions to different peers, double votes).
	// Bounded by the paper's 20% Byzantine-weight assumption.
	Equivocators int

	// Grinders lists nodes (outside the equivocator prefix) running the
	// §5.2 seed-grinding strategy from Wang's critique: withhold or
	// re-time proposals to steer the next sortition seed. Their combined
	// weight with the equivocators stays under the 20% Byzantine bound.
	// Grinding scenarios refresh the sortition seed every round so the
	// binary publish/withhold choice actually reaches sortition.
	Grinders []int
	// GrindHoldBack is how long a grinder delays a proposal it does
	// publish (landing it at the edge of peers' λ_priority windows).
	GrindHoldBack time.Duration

	Partitions []PartitionFault
	LinkFaults []LinkFault
	Crashes    []CrashFault
	DoS        []DoSFault
	// Limbo holds messages in a neither-delivered-nor-dropped state past
	// step timeouts (undecidable-message schedules).
	Limbo []LimboFault
	// Churn, when non-nil, replaces fixed crash lists with a continuous
	// Poisson crash/restart process over the whole window.
	Churn *ChurnFault

	// StakeDist selects the genesis stake distribution ("" = equal
	// stakes, StakeZipf, StakePareto); StakeAlpha is the tail exponent.
	// Weights derive deterministically from Seed (see StakeWeights), with
	// any single stake capped at 20% of the total so no lone crash can
	// take the paper's honest-majority-online assumption with it.
	StakeDist  string
	StakeAlpha float64

	// Diskless lists nodes that run without an on-disk archive even
	// under Durable — the mixed durable/diskless fleet churn exercises.
	Diskless []int

	// Overload shrinks every node's admission bounds (pool, bytes,
	// per-sender caps, rate limits) while TxLoad is cranked far past
	// them: the graceful-degradation invariant then demands typed
	// shedding and bounded queues rather than collapse.
	Overload bool

	// TxLoad, when > 0, drives a seeded payment stream (transactions per
	// virtual second) through every node's ingestion pipeline for the
	// whole run — fresh fee-paying transactions plus deliberate garbage:
	// duplicate submissions, stale nonce re-use, and fee churn against
	// deliberately small pool bounds so eviction fires constantly. The
	// committed-transaction invariant demands none of the garbage lands
	// in a block.
	TxLoad float64

	// Durable gives every node an on-disk WAL archive in a scratch data
	// directory. Crashes then lose the process but keep the disk:
	// restarts recover through the full diskstore scan (torn-tail
	// truncation, checksums, certificate re-verification) instead of the
	// crashed process's memory image, and the durability invariant
	// re-opens every data dir cold after the run and demands the disk
	// chain equal the network's, byte for byte.
	Durable bool

	// Checkpoint, when > 0, makes every node write a state checkpoint
	// (full account table + Merkle root + certificate) each time its
	// chain commits a round on this grid. Durable restarts then take the
	// snapshot-first recovery path — re-base onto the newest verified
	// on-disk checkpoint, replay only the delta — and the invariant
	// suite cross-checks every checkpoint against chain replay.
	Checkpoint uint64

	// TStepOverride, when > 0, weakens every node's ordinary-step vote
	// threshold until TStepRestoreAt — the §8.2 fork generator: during a
	// partition both halves can then commit *tentative* blocks, and the
	// recovery protocol must reconcile them after healing. The final-step
	// threshold is never weakened, so no forked block can become final.
	TStepOverride  float64
	TStepRestoreAt time.Duration
}

// StakeWeights derives the genesis stake vector from the scenario seed
// and distribution — nil for equal stakes. Deterministic: the same
// scenario always deals the same wealth. Any single stake is capped at
// 20% of the total (iteratively, so the cap holds against the capped
// total too): the liveness invariant assumes a strong honest majority
// of weight stays online, and the generator may crash any single node
// permanently.
func (s *Scenario) StakeWeights() []uint64 {
	if s.StakeDist == "" {
		return nil
	}
	alpha := s.StakeAlpha
	if alpha <= 0 {
		alpha = 1.2
	}
	rng := rand.New(rand.NewSource(s.Seed ^ 0x7374616b65)) // "stake"
	w := make([]uint64, s.Nodes)
	switch s.StakeDist {
	case StakeZipf:
		perm := rng.Perm(s.Nodes)
		for i, rank := range perm {
			v := math.Round(1000 / math.Pow(float64(rank+1), alpha))
			if v < 1 {
				v = 1
			}
			w[i] = uint64(v)
		}
	case StakePareto:
		for i := range w {
			v := math.Round(10 * math.Pow(1-rng.Float64(), -1/alpha))
			if v < 10 {
				v = 10
			}
			w[i] = uint64(v)
		}
	default:
		panic(fmt.Sprintf("chaos: unknown stake distribution %q", s.StakeDist))
	}
	for changed := true; changed; {
		changed = false
		var total uint64
		for _, v := range w {
			total += v
		}
		for i, v := range w {
			if v*5 > total {
				w[i] = total / 5
				changed = true
			}
		}
	}
	return w
}

// ByzantineNodes returns every node under adversarial control: the
// equivocator prefix plus the grinders.
func (s *Scenario) ByzantineNodes() []int {
	var ids []int
	for i := 0; i < s.Equivocators; i++ {
		ids = append(ids, i)
	}
	ids = append(ids, s.Grinders...)
	return ids
}

// ByzantineWeightFrac returns the fraction of total genesis stake held
// by Byzantine nodes — the quantity the paper's 20% assumption (§2)
// actually bounds. RandomScenario keeps it ≤ 0.2 on every draw.
func (s *Scenario) ByzantineWeightFrac() float64 {
	w := s.StakeWeights()
	var total, byz float64
	weight := func(i int) float64 {
		if w == nil {
			return 1
		}
		return float64(w[i])
	}
	for i := 0; i < s.Nodes; i++ {
		total += weight(i)
	}
	for _, i := range s.ByzantineNodes() {
		byz += weight(i)
	}
	if total == 0 {
		return 0
	}
	return byz / total
}

// clampByzantinePrefix shrinks an equivocator count until the prefix
// holds at most 20% of total stake. With equal stakes (w nil) the
// count-based draw already satisfies the bound.
func clampByzantinePrefix(k int, w []uint64) int {
	if k <= 0 || w == nil {
		return k
	}
	var total, pre uint64
	for _, v := range w {
		total += v
	}
	for i := 0; i < k; i++ {
		pre += w[i]
	}
	for k > 0 && pre*5 > total {
		k--
		pre -= w[k]
	}
	return k
}

// LastFaultClear returns the virtual time at which the last scheduled
// fault has cleared; the §8.2 liveness demand starts there.
func (s *Scenario) LastFaultClear() time.Duration {
	var t time.Duration
	max := func(d time.Duration) {
		if d > t {
			t = d
		}
	}
	for _, p := range s.Partitions {
		max(p.End)
	}
	for _, l := range s.LinkFaults {
		max(l.End)
	}
	for _, c := range s.Crashes {
		if c.RestartAt > 0 {
			max(c.RestartAt)
		} else {
			max(c.At) // permanent: the *fault event* is over at the crash
		}
	}
	for _, d := range s.DoS {
		max(d.End)
	}
	for _, lf := range s.Limbo {
		// The last capture can happen just before End and is held for up
		// to HoldFor+HoldJitter past that instant.
		max(lf.End + lf.HoldFor + lf.HoldJitter)
	}
	if s.Churn != nil {
		max(s.Churn.End)
	}
	max(s.TStepRestoreAt)
	return t
}

// String summarizes the scenario for trace output.
func (s *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d n=%d rounds=%d", s.Seed, s.Nodes, s.Rounds)
	if s.Equivocators > 0 {
		fmt.Fprintf(&b, " equivocators=%d", s.Equivocators)
	}
	if len(s.Grinders) > 0 {
		fmt.Fprintf(&b, " grinders=%v holdback=%v", s.Grinders, s.GrindHoldBack)
	}
	for _, p := range s.Partitions {
		fmt.Fprintf(&b, " split[%v,%v)cut=%d", p.Start, p.End, p.Cut)
	}
	for _, l := range s.LinkFaults {
		fmt.Fprintf(&b, " link[%v,%v)loss=%.2f delay=%v+%v from=%d to=%d",
			l.Start, l.End, l.LossProb, l.ExtraDelay, l.ExtraJitter, l.From, l.To)
	}
	for _, c := range s.Crashes {
		if c.RestartAt > 0 {
			fmt.Fprintf(&b, " crash(n%d@%v,restart@%v)", c.Node, c.At, c.RestartAt)
		} else {
			fmt.Fprintf(&b, " crash(n%d@%v,down)", c.Node, c.At)
		}
	}
	for _, d := range s.DoS {
		fmt.Fprintf(&b, " dos(%v@[%v,%v))", d.Nodes, d.Start, d.End)
	}
	for _, lf := range s.Limbo {
		fmt.Fprintf(&b, " limbo[%v,%v)p=%.2f hold=%v+%v from=%d to=%d",
			lf.Start, lf.End, lf.HoldProb, lf.HoldFor, lf.HoldJitter, lf.From, lf.To)
	}
	if c := s.Churn; c != nil {
		fmt.Fprintf(&b, " churn[%v,%v)rate=%.1f/min down=[%v,%v] conc=%d",
			c.Start, c.End, c.EventsPerMin, c.MinDown, c.MaxDown, c.MaxConcurrent)
	}
	if s.StakeDist != "" {
		fmt.Fprintf(&b, " stake=%s(a=%.2f)", s.StakeDist, s.StakeAlpha)
	}
	if len(s.Diskless) > 0 {
		fmt.Fprintf(&b, " diskless=%v", s.Diskless)
	}
	if s.Overload {
		b.WriteString(" overload")
	}
	if s.TStepOverride > 0 {
		fmt.Fprintf(&b, " tstep=%.2f until %v", s.TStepOverride, s.TStepRestoreAt)
	}
	if s.TxLoad > 0 {
		fmt.Fprintf(&b, " txload=%.0f/s", s.TxLoad)
	}
	if s.Durable {
		b.WriteString(" durable")
	}
	if s.Checkpoint > 0 {
		fmt.Fprintf(&b, " checkpoint=%d", s.Checkpoint)
	}
	return b.String()
}

// RandomScenario derives a scenario entirely from one seed: node count,
// fault mix, windows, and targets. The draws keep every scenario inside
// the paper's assumptions — Byzantine weight ≤ 20% (§2), all faults
// bounded in time (weak synchrony, §3), at most one permanent crash —
// so the invariants must hold on every generated run.
func RandomScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{
		Seed:   seed,
		Nodes:  10 + rng.Intn(7),        // 10..16
		Rounds: uint64(3 + rng.Intn(3)), // 3..5
	}
	sec := func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Second
	}

	// ≤ 20% equivocating weight (all users hold equal stakes here).
	s.Equivocators = rng.Intn(s.Nodes/5 + 1)

	if rng.Float64() < 0.6 {
		start := sec(2, 10)
		s.Partitions = append(s.Partitions, PartitionFault{
			Start: start,
			End:   start + sec(10, 30),
			Cut:   s.Nodes/4 + rng.Intn(s.Nodes/2),
		})
	}
	if rng.Float64() < 0.5 {
		start := sec(0, 8)
		f := LinkFault{
			Start:    start,
			End:      start + sec(10, 25),
			LossProb: 0.05 + 0.20*rng.Float64(),
			From:     -1,
			To:       -1,
		}
		if rng.Float64() < 0.5 {
			f.ExtraDelay = time.Duration(rng.Intn(300)) * time.Millisecond
			f.ExtraJitter = time.Duration(1+rng.Intn(200)) * time.Millisecond
		}
		if rng.Float64() < 0.3 { // sometimes impair a single ordered pair only
			f.From = rng.Intn(s.Nodes)
			f.To = rng.Intn(s.Nodes)
		}
		s.LinkFaults = append(s.LinkFaults, f)
	}
	if rng.Float64() < 0.5 {
		at := sec(2, 12)
		c := CrashFault{Node: rng.Intn(s.Nodes), At: at}
		if rng.Float64() < 0.75 {
			c.RestartAt = at + sec(5, 20)
		}
		s.Crashes = append(s.Crashes, c)
	}
	if rng.Float64() < 0.4 {
		k := 1 + rng.Intn(s.Nodes/8+1)
		victims := make([]int, 0, k)
		for len(victims) < k {
			v := rng.Intn(s.Nodes)
			dup := false
			for _, w := range victims {
				if w == v {
					dup = true
				}
			}
			if !dup {
				victims = append(victims, v)
			}
		}
		start := sec(3, 10)
		s.DoS = append(s.DoS, DoSFault{Nodes: victims, Start: start, End: start + sec(8, 20)})
	}
	// Drawn last so fault schedules for pre-existing seeds are unchanged.
	if rng.Float64() < 0.5 {
		s.TxLoad = float64(5 + rng.Intn(26)) // 5..30 tx/s
	}
	// Drawn after TxLoad, same reason: earlier seeds keep their schedules.
	if rng.Float64() < 0.4 {
		s.Durable = true
	}

	// Adversarial-resilience families. Appended strictly after every
	// pre-existing draw so old seeds keep their exact fault schedules.

	// Heavy-tailed stake. Once wealth is concentrated, the equivocator
	// *count* drawn above may exceed the 20% Byzantine *weight* bound the
	// paper actually assumes — clamp by weight, never by count.
	if rng.Float64() < 0.35 {
		if rng.Float64() < 0.5 {
			s.StakeDist = StakeZipf
		} else {
			s.StakeDist = StakePareto
		}
		s.StakeAlpha = 1.0 + 0.6*rng.Float64() // 1.0..1.6
	}
	s.Equivocators = clampByzantinePrefix(s.Equivocators, s.StakeWeights())

	// Seed grinders: 1-2 non-equivocator nodes, admitted only while the
	// combined Byzantine weight stays ≤ 20%.
	if rng.Float64() < 0.35 {
		k := 1 + rng.Intn(2)
		for i := 0; i < k; i++ {
			cand := s.Equivocators + rng.Intn(s.Nodes-s.Equivocators)
			dup := false
			for _, g := range s.Grinders {
				if g == cand {
					dup = true
				}
			}
			if dup {
				continue
			}
			trial := s
			trial.Grinders = append(append([]int(nil), s.Grinders...), cand)
			if trial.ByzantineWeightFrac() <= 0.2 {
				s.Grinders = trial.Grinders
			}
		}
		if len(s.Grinders) > 0 {
			s.GrindHoldBack = time.Duration(500+rng.Intn(1201)) * time.Millisecond
		}
	}

	// Undecidable-message limbo: hold past λ_step (2s accelerated), so
	// receivers' steps time out before the adversary releases.
	if rng.Float64() < 0.4 {
		start := sec(1, 8)
		lf := LimboFault{
			Start:      start,
			End:        start + sec(8, 20),
			HoldProb:   0.05 + 0.25*rng.Float64(),
			HoldFor:    time.Duration(2500+rng.Intn(4000)) * time.Millisecond,
			HoldJitter: time.Duration(500+rng.Intn(2000)) * time.Millisecond,
			From:       -1,
			To:         -1,
		}
		if rng.Float64() < 0.3 { // sometimes target one ordered pair only
			lf.From = rng.Intn(s.Nodes)
			lf.To = rng.Intn(s.Nodes)
		}
		s.Limbo = append(s.Limbo, lf)
	}

	// Continuous churn over most of the run; mixed durable/diskless
	// fleets when the scenario has disks at all.
	if rng.Float64() < 0.35 {
		start := sec(1, 5)
		s.Churn = &ChurnFault{
			Start:         start,
			End:           start + sec(20, 45),
			EventsPerMin:  2 + 6*rng.Float64(), // 2..8 events/min
			MinDown:       sec(2, 4),
			MaxDown:       sec(6, 14),
			MaxConcurrent: 1 + rng.Intn(2),
		}
		if s.Durable {
			for i := 0; i < s.Nodes; i++ {
				if rng.Float64() < 0.3 {
					s.Diskless = append(s.Diskless, i)
				}
			}
		}
	}

	// Overload: crank TxLoad far past the shrunken admission bounds the
	// harness installs for Overload scenarios.
	if rng.Float64() < 0.3 {
		s.Overload = true
		s.TxLoad = float64(150 + rng.Intn(150)) // 150..299 tx/s
	}

	// State checkpoints (drawn last, so pre-existing seeds keep their
	// fault schedules): a small grid, so short runs still cross it and
	// durable restarts exercise the snapshot-first recovery path.
	if rng.Float64() < 0.4 {
		s.Checkpoint = uint64(2 + rng.Intn(3)) // every 2..4 rounds
	}
	return s
}
