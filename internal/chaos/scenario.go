// Package chaos is the repo's systematic correctness layer: it runs
// scenario-driven fault injection against whole simulated deployments
// and machine-checks the paper's core claims — BA⋆ safety (§9,
// Theorems 1–3), certificate validity (§8.3), liveness after faults
// clear (§3 weak synchrony, §8.2 recovery), and seed-chain integrity
// (§5.2). A Scenario is pure data derived from a single RNG seed, so
// every run — including every fault draw inside it — replays exactly
// from that seed.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// PartitionFault splits the network into [0,Cut) vs [Cut,N) for the
// virtual-time window [Start, End): no messages cross the cut.
type PartitionFault struct {
	Start, End time.Duration
	Cut        int
}

// LinkFault impairs matching links for [Start, End): transfers drop
// with probability LossProb and are delayed by ExtraDelay plus uniform
// jitter in [0, ExtraJitter). From/To select one ordered node pair;
// -1 matches any sender/receiver.
type LinkFault struct {
	Start, End  time.Duration
	LossProb    float64
	ExtraDelay  time.Duration
	ExtraJitter time.Duration
	From, To    int
}

// CrashFault halts a node at At; if RestartAt > 0 a replacement is
// started then, restoring the crashed node's archive and catching up
// from peers (§8.3). RestartAt == 0 means the node stays down.
type CrashFault struct {
	Node      int
	At        time.Duration
	RestartAt time.Duration
}

// DoSFault silences the given nodes (all their traffic dropped, both
// directions) for [Start, End) — a targeted denial of service on known
// participants (§10.4 discusses why sortition makes this hard in
// practice; here we model the attacker succeeding and demand recovery).
type DoSFault struct {
	Nodes      []int
	Start, End time.Duration
}

// Scenario is a pure-data description of one adversarial run.
type Scenario struct {
	// Seed drives every random choice: topology, sortition identities,
	// fault draws. Same seed, same run.
	Seed int64
	// Nodes is the deployment size; Rounds how many rounds honest nodes
	// aim to complete.
	Nodes  int
	Rounds uint64

	// Equivocators turns nodes 0..k-1 into the §10.4 attackers
	// (conflicting block versions to different peers, double votes).
	// Bounded by the paper's 20% Byzantine-weight assumption.
	Equivocators int

	Partitions []PartitionFault
	LinkFaults []LinkFault
	Crashes    []CrashFault
	DoS        []DoSFault

	// TxLoad, when > 0, drives a seeded payment stream (transactions per
	// virtual second) through every node's ingestion pipeline for the
	// whole run — fresh fee-paying transactions plus deliberate garbage:
	// duplicate submissions, stale nonce re-use, and fee churn against
	// deliberately small pool bounds so eviction fires constantly. The
	// committed-transaction invariant demands none of the garbage lands
	// in a block.
	TxLoad float64

	// Durable gives every node an on-disk WAL archive in a scratch data
	// directory. Crashes then lose the process but keep the disk:
	// restarts recover through the full diskstore scan (torn-tail
	// truncation, checksums, certificate re-verification) instead of the
	// crashed process's memory image, and the durability invariant
	// re-opens every data dir cold after the run and demands the disk
	// chain equal the network's, byte for byte.
	Durable bool

	// TStepOverride, when > 0, weakens every node's ordinary-step vote
	// threshold until TStepRestoreAt — the §8.2 fork generator: during a
	// partition both halves can then commit *tentative* blocks, and the
	// recovery protocol must reconcile them after healing. The final-step
	// threshold is never weakened, so no forked block can become final.
	TStepOverride  float64
	TStepRestoreAt time.Duration
}

// LastFaultClear returns the virtual time at which the last scheduled
// fault has cleared; the §8.2 liveness demand starts there.
func (s *Scenario) LastFaultClear() time.Duration {
	var t time.Duration
	max := func(d time.Duration) {
		if d > t {
			t = d
		}
	}
	for _, p := range s.Partitions {
		max(p.End)
	}
	for _, l := range s.LinkFaults {
		max(l.End)
	}
	for _, c := range s.Crashes {
		if c.RestartAt > 0 {
			max(c.RestartAt)
		} else {
			max(c.At) // permanent: the *fault event* is over at the crash
		}
	}
	for _, d := range s.DoS {
		max(d.End)
	}
	max(s.TStepRestoreAt)
	return t
}

// String summarizes the scenario for trace output.
func (s *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d n=%d rounds=%d", s.Seed, s.Nodes, s.Rounds)
	if s.Equivocators > 0 {
		fmt.Fprintf(&b, " equivocators=%d", s.Equivocators)
	}
	for _, p := range s.Partitions {
		fmt.Fprintf(&b, " split[%v,%v)cut=%d", p.Start, p.End, p.Cut)
	}
	for _, l := range s.LinkFaults {
		fmt.Fprintf(&b, " link[%v,%v)loss=%.2f delay=%v+%v from=%d to=%d",
			l.Start, l.End, l.LossProb, l.ExtraDelay, l.ExtraJitter, l.From, l.To)
	}
	for _, c := range s.Crashes {
		if c.RestartAt > 0 {
			fmt.Fprintf(&b, " crash(n%d@%v,restart@%v)", c.Node, c.At, c.RestartAt)
		} else {
			fmt.Fprintf(&b, " crash(n%d@%v,down)", c.Node, c.At)
		}
	}
	for _, d := range s.DoS {
		fmt.Fprintf(&b, " dos(%v@[%v,%v))", d.Nodes, d.Start, d.End)
	}
	if s.TStepOverride > 0 {
		fmt.Fprintf(&b, " tstep=%.2f until %v", s.TStepOverride, s.TStepRestoreAt)
	}
	if s.TxLoad > 0 {
		fmt.Fprintf(&b, " txload=%.0f/s", s.TxLoad)
	}
	if s.Durable {
		b.WriteString(" durable")
	}
	return b.String()
}

// RandomScenario derives a scenario entirely from one seed: node count,
// fault mix, windows, and targets. The draws keep every scenario inside
// the paper's assumptions — Byzantine weight ≤ 20% (§2), all faults
// bounded in time (weak synchrony, §3), at most one permanent crash —
// so the invariants must hold on every generated run.
func RandomScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{
		Seed:   seed,
		Nodes:  10 + rng.Intn(7),        // 10..16
		Rounds: uint64(3 + rng.Intn(3)), // 3..5
	}
	sec := func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Second
	}

	// ≤ 20% equivocating weight (all users hold equal stakes here).
	s.Equivocators = rng.Intn(s.Nodes/5 + 1)

	if rng.Float64() < 0.6 {
		start := sec(2, 10)
		s.Partitions = append(s.Partitions, PartitionFault{
			Start: start,
			End:   start + sec(10, 30),
			Cut:   s.Nodes/4 + rng.Intn(s.Nodes/2),
		})
	}
	if rng.Float64() < 0.5 {
		start := sec(0, 8)
		f := LinkFault{
			Start:    start,
			End:      start + sec(10, 25),
			LossProb: 0.05 + 0.20*rng.Float64(),
			From:     -1,
			To:       -1,
		}
		if rng.Float64() < 0.5 {
			f.ExtraDelay = time.Duration(rng.Intn(300)) * time.Millisecond
			f.ExtraJitter = time.Duration(1+rng.Intn(200)) * time.Millisecond
		}
		if rng.Float64() < 0.3 { // sometimes impair a single ordered pair only
			f.From = rng.Intn(s.Nodes)
			f.To = rng.Intn(s.Nodes)
		}
		s.LinkFaults = append(s.LinkFaults, f)
	}
	if rng.Float64() < 0.5 {
		at := sec(2, 12)
		c := CrashFault{Node: rng.Intn(s.Nodes), At: at}
		if rng.Float64() < 0.75 {
			c.RestartAt = at + sec(5, 20)
		}
		s.Crashes = append(s.Crashes, c)
	}
	if rng.Float64() < 0.4 {
		k := 1 + rng.Intn(s.Nodes/8+1)
		victims := make([]int, 0, k)
		for len(victims) < k {
			v := rng.Intn(s.Nodes)
			dup := false
			for _, w := range victims {
				if w == v {
					dup = true
				}
			}
			if !dup {
				victims = append(victims, v)
			}
		}
		start := sec(3, 10)
		s.DoS = append(s.DoS, DoSFault{Nodes: victims, Start: start, End: start + sec(8, 20)})
	}
	// Drawn last so fault schedules for pre-existing seeds are unchanged.
	if rng.Float64() < 0.5 {
		s.TxLoad = float64(5 + rng.Intn(26)) // 5..30 tx/s
	}
	// Drawn after TxLoad, same reason: earlier seeds keep their schedules.
	if rng.Float64() < 0.4 {
		s.Durable = true
	}
	return s
}
