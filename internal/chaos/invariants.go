package chaos

import (
	"fmt"

	"algorand/internal/agreement"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/node"
	"algorand/internal/params"
	"algorand/internal/sim"
)

// recoveryRoundBase mirrors the node package's recovery round offset:
// Stats entries at or above it belong to §8.2 recovery consensus, not
// to chain rounds.
const recoveryRoundBase = 1 << 40

// Violation is one broken invariant. Node is -1 when the violation is
// not attributable to a single node.
type Violation struct {
	Kind   string
	Node   int
	Round  uint64
	Detail string
}

func (v Violation) String() string {
	where := ""
	if v.Node >= 0 {
		where = fmt.Sprintf(" node %d", v.Node)
	}
	if v.Round > 0 {
		where += fmt.Sprintf(" round %d", v.Round)
	}
	return fmt.Sprintf("[%s]%s: %s", v.Kind, where, v.Detail)
}

// CheckOptions configures the invariant suite.
type CheckOptions struct {
	// Params are the weakest parameters any node ran with; certificates
	// are re-verified against these thresholds.
	Params params.Params
	// Rounds is the run's target chain length (0 = open-ended).
	Rounds uint64
	// AllowTentativeForks relaxes the checks to §8.2's actual guarantee
	// for runs that deliberately generate tentative forks (weakened
	// TStep): no final forks ever, and ≥ 80% of live honest nodes
	// converged onto one chain by the end (the bound TestForkRecovery
	// established empirically for scaled-down committees).
	AllowTentativeForks bool
	// RequireProgress asserts §3 liveness: every live honest node's
	// chain reached Rounds by the horizon.
	RequireProgress bool
	// Byzantine nodes are exempt from every per-node check. Down nodes
	// (crashed, never restarted) are exempt from liveness only — their
	// frozen chains must still be consistent and fully certified.
	Byzantine map[int]bool
	Down      map[int]bool
	// HealChains, when set, gives each node's chain length at the
	// moment the last fault cleared (context for liveness failures).
	HealChains []uint64
}

// chainBase returns the round a node's committed-chain walk can start
// after: 0 for a full chain, or the snapshot anchor round when the
// ledger was re-based by checkpoint fast sync and holds no blocks
// below it. Rounds at or below the base are vouched for by the
// verified checkpoint (certificate + Merkle root), not by replay.
func chainBase(l *ledger.Ledger) uint64 {
	if l.ChainLength() == 0 {
		return 0
	}
	if _, ok := l.BlockAt(1); ok {
		return 0
	}
	for r := uint64(2); r <= l.ChainLength(); r++ {
		if _, ok := l.BlockAt(r); ok {
			return r
		}
	}
	return l.ChainLength()
}

// CheckInvariants walks every node's ledger after the run and asserts
// the paper's core properties. It returns all violations found (empty
// means the run upheld every invariant).
func CheckInvariants(c *sim.Cluster, opt CheckOptions) []Violation {
	var vs []Violation
	honest := func(i int) bool { return !opt.Byzantine[i] }

	// --- Safety (§9, Theorems 1 and 3): no two honest nodes reach
	// FINAL consensus on different blocks in the same round.
	finalVal := map[uint64]crypto.Digest{}
	finalBy := map[uint64]int{}
	for _, n := range c.Nodes {
		if !honest(n.ID) {
			continue
		}
		for _, st := range n.Stats {
			if st.End == 0 || !st.Final || st.Round >= recoveryRoundBase {
				continue
			}
			if prev, ok := finalVal[st.Round]; ok {
				if prev != st.Value {
					vs = append(vs, Violation{Kind: "final-fork", Node: n.ID, Round: st.Round,
						Detail: fmt.Sprintf("committed FINAL %x but node %d committed FINAL %x",
							st.Value[:4], finalBy[st.Round], prev[:4])})
				}
			} else {
				finalVal[st.Round] = st.Value
				finalBy[st.Round] = n.ID
			}
		}
	}

	// --- Chain consistency. Tentative forks that §8.2 recovery already
	// reconciled are within spec; what must hold at the end of the run
	// is that honest chains (including crashed nodes' frozen prefixes)
	// are prefixes of one common chain.
	// The reference chain prefers genesis-rooted history over raw
	// length: a snapshot-rebased ledger holds nothing below its anchor,
	// so electing one as reference would make every full node look like
	// it had extra, uncheckable rounds.
	var ref *ledger.Ledger
	refID := -1
	refBase := uint64(0)
	for _, n := range c.Nodes {
		if !honest(n.ID) {
			continue
		}
		l := n.Ledger()
		b := chainBase(l)
		if ref == nil || b < refBase || (b == refBase && l.ChainLength() > ref.ChainLength()) {
			ref, refID, refBase = l, n.ID, b
		}
	}
	if ref != nil && !opt.AllowTentativeForks {
		for _, n := range c.Nodes {
			if !honest(n.ID) || n.ID == refID {
				continue
			}
			l := n.Ledger()
			// A snapshot-synced ledger holds nothing below its checkpoint
			// anchor; the walk starts there (the anchor block itself is
			// present and must match the reference chain). If even the
			// reference is re-based, rounds below its anchor exist on
			// neither side and cannot be compared.
			start := chainBase(l)
			if refBase > start {
				start = refBase
			}
			if start == 0 {
				start = 1
			}
			for r := start; r <= l.ChainLength(); r++ {
				mine, ok1 := l.BlockAt(r)
				theirs, ok2 := ref.BlockAt(r)
				if !ok1 || !ok2 {
					vs = append(vs, Violation{Kind: "chain-gap", Node: n.ID, Round: r,
						Detail: fmt.Sprintf("block missing (self %v, ref node %d %v)", ok1, refID, ok2)})
					break
				}
				if mh, th := mine.Hash(), theirs.Hash(); mh != th {
					vs = append(vs, Violation{Kind: "fork", Node: n.ID, Round: r,
						Detail: fmt.Sprintf("committed %x, ref node %d has %x",
							mh[:4], refID, th[:4])})
					break
				}
			}
		}
	}
	if ref != nil && opt.AllowTentativeForks {
		live, converged := 0, 0
		for _, n := range c.Nodes {
			if !honest(n.ID) || opt.Down[n.ID] {
				continue
			}
			live++
			l := n.Ledger()
			if b, ok := ref.BlockAt(l.ChainLength()); ok && b.Hash() == l.HeadHash() {
				converged++
			}
		}
		if converged < live*8/10 {
			vs = append(vs, Violation{Kind: "no-convergence", Node: -1,
				Detail: fmt.Sprintf("only %d/%d live honest nodes converged after recovery", converged, live)})
		}
	}

	// --- Certificate validity (§8.3) and seed-chain integrity (§5.2),
	// walked over every honest node's committed chain.
	maxStep := agreement.WireStepOfBinary(opt.Params.MaxSteps)
	for _, n := range c.Nodes {
		if !honest(n.ID) {
			continue
		}
		l := n.Ledger()
		// Rounds this node committed via BA⋆ itself (vs adopted during
		// recovery, which legitimately carries no certificate).
		baCommitted := map[uint64]crypto.Digest{}
		for _, st := range n.Stats {
			if st.End > 0 && st.Round < recoveryRoundBase {
				baCommitted[st.Round] = st.Value
			}
		}
		// On a snapshot-synced ledger the anchor round's proof is its
		// checkpoint (validated in the replay section below); the
		// per-round walk covers everything past it.
		base := chainBase(l)
		for r := base + 1; r <= l.ChainLength(); r++ {
			b, ok := l.BlockAt(r)
			prev, okPrev := l.BlockAt(r - 1)
			if !ok || !okPrev {
				vs = append(vs, Violation{Kind: "chain-gap", Node: n.ID, Round: r,
					Detail: "head chain has a hole"})
				continue
			}

			// Seed chain: empty/fallback blocks hash the previous seed;
			// proposed blocks prove theirs with the proposer's VRF.
			if len(b.SeedProof) == 0 {
				if want := ledger.FallbackSeed(prev.Seed, r); b.Seed != want {
					vs = append(vs, Violation{Kind: "seed-chain", Node: n.ID, Round: r,
						Detail: fmt.Sprintf("fallback seed %x, want %x", b.Seed[:4], want[:4])})
				}
			} else {
				out, okV := c.Provider.VRFVerify(b.Proposer, ledger.SeedAlpha(prev.Seed, r), b.SeedProof)
				if !okV || ledger.SeedFromVRF(out) != b.Seed {
					vs = append(vs, Violation{Kind: "seed-chain", Node: n.ID, Round: r,
						Detail: "seed VRF proof does not verify"})
				}
			}

			// Certificates: every block this node BA⋆-committed must have
			// one, and every certificate present must re-verify from the
			// chain state — sortition proofs, no double-counted voters,
			// vote weight above the committee threshold.
			cert, okC := l.Certificate(b.Hash())
			if !okC {
				if v, did := baCommitted[r]; did && v == b.Hash() {
					vs = append(vs, Violation{Kind: "missing-cert", Node: n.ID, Round: r,
						Detail: "BA⋆-committed block has no certificate"})
				}
				continue
			}
			if cert.Round >= recoveryRoundBase {
				// A §8.2 recovery adoption: its proof is the recovery
				// round's certificate, re-verified from the self-describing
				// recovery context.
				cp := ledger.CommitteeParams{
					TauStep:        opt.Params.TauStep,
					StepThreshold:  opt.Params.StepThreshold(),
					TauFinal:       opt.Params.TauFinal,
					FinalThreshold: opt.Params.FinalThreshold(),
					MaxStep:        maxStep,
				}
				if err := node.VerifyRecoveryCert(c.Provider, l, b, cert, cp); err != nil {
					vs = append(vs, Violation{Kind: "bad-cert", Node: n.ID, Round: r,
						Detail: fmt.Sprintf("recovery cert: %v", err)})
				}
				continue
			}
			if cert.Round != r || cert.Value != b.Hash() {
				vs = append(vs, Violation{Kind: "bad-cert", Node: n.ID, Round: r,
					Detail: fmt.Sprintf("certificate is for round %d value %x", cert.Round, cert.Value[:4])})
				continue
			}
			tau, threshold := opt.Params.TauStep, opt.Params.StepThreshold()
			if cert.Final {
				tau, threshold = opt.Params.TauFinal, opt.Params.FinalThreshold()
			} else if cert.Step > maxStep {
				vs = append(vs, Violation{Kind: "bad-cert", Node: n.ID, Round: r,
					Detail: fmt.Sprintf("certificate step %d beyond MaxSteps", cert.Step)})
				continue
			}
			seed := l.SortitionSeed(r)
			weights, total := l.SortitionWeights(r)
			if err := cert.Verify(c.Provider, seed, weights, total, tau, threshold, prev.Hash()); err != nil {
				vs = append(vs, Violation{Kind: "bad-cert", Node: n.ID, Round: r,
					Detail: err.Error()})
			}
		}
	}

	// --- Committed transactions (Figure 1 / ingestion pipeline): every
	// transaction in an honest node's chain must carry a valid signature
	// and apply cleanly in chain order from genesis — sufficient balance
	// for amount+fee, exactly sequential nonce — and no transaction may
	// appear twice anywhere in the chain. This is what makes the tx-load
	// garbage (duplicates, stale nonces, unfunded spenders left behind by
	// fee churn) safe: the pipeline may mis-reject, but a block that
	// *commits* any of it is a violation.
	for _, n := range c.Nodes {
		if !honest(n.ID) {
			continue
		}
		l := n.Ledger()
		bal := ledger.NewBalances(c.Genesis)
		seen := map[crypto.Digest]uint64{}
		start := uint64(1)
		chk, hasChk := n.Checkpoint()
		if hasChk {
			if _, err := chk.VerifyState(); err != nil {
				vs = append(vs, Violation{Kind: "checkpoint", Node: n.ID, Round: chk.Round(),
					Detail: fmt.Sprintf("held checkpoint fails verification: %v", err)})
				hasChk = false
			}
		}
		if base := chainBase(l); base > 0 {
			if ref != nil && chainBase(ref) == 0 {
				// A genesis-rooted reference exists: replay its prefix to
				// rebuild the state at the anchor independently, then
				// demand the node's anchor state root match it. (The
				// prefix check above already pinned the anchor block to
				// the reference chain.)
				ok := true
				for r := uint64(1); ok && r <= base; r++ {
					b, okB := ref.BlockAt(r)
					if !okB {
						ok = false
						break
					}
					for i := range b.Txns {
						seen[b.Txns[i].ID()] = r
						if bal.ApplyTx(&b.Txns[i]) != nil {
							ok = false
							break
						}
					}
				}
				if !ok {
					vs = append(vs, Violation{Kind: "checkpoint", Node: n.ID, Round: base,
						Detail: "cannot rebuild snapshot anchor state from the reference chain"})
					continue
				}
				if b, okB := l.BlockAt(base); okB {
					if got := bal.Root(); got != b.StateRoot {
						vs = append(vs, Violation{Kind: "checkpoint", Node: n.ID, Round: base,
							Detail: fmt.Sprintf("anchor state root %x, chain replay gives %x",
								b.StateRoot[:4], got[:4])})
						continue
					}
				}
				start = base + 1
			} else if hasChk && chk.Round() >= base {
				// No honest node kept the full prefix (the reference is
				// itself re-based), so the anchor cannot be rebuilt
				// independently; the verified checkpoint's table is the
				// state baseline, after pinning its block to this chain.
				// Duplicates against pre-anchor history are undetectable
				// here — that information left the network with the
				// prefix.
				b, okB := l.BlockAt(chk.Round())
				if !okB || b.Hash() != chk.Block.Hash() {
					vs = append(vs, Violation{Kind: "checkpoint", Node: n.ID, Round: chk.Round(),
						Detail: "checkpoint does not match the committed chain at its round"})
					continue
				}
				bal = chk.Balances()
				start = chk.Round() + 1
			} else {
				// Re-based with no usable baseline: nothing to replay
				// against. The structural checks above still ran.
				continue
			}
		}
		// A checkpoint below the walk's start still has to be for the
		// chain's own block (the walk only covers start..end).
		if hasChk && chk.Round() < start {
			if b, okB := l.BlockAt(chk.Round()); okB && b.Hash() != chk.Block.Hash() {
				vs = append(vs, Violation{Kind: "checkpoint", Node: n.ID, Round: chk.Round(),
					Detail: "checkpoint does not match the committed chain at its round"})
			}
		}
		for r := start; r <= l.ChainLength(); r++ {
			b, ok := l.BlockAt(r)
			if !ok {
				continue // chain-gap already reported above
			}
			// Every checkpoint a node holds must be exactly the state the
			// committed chain replays to at that round — a checkpoint that
			// diverges from its own chain would poison every peer that
			// fast-syncs from it.
			if hasChk && r == chk.Round() {
				if bh, ch := b.Hash(), chk.Block.Hash(); bh != ch {
					vs = append(vs, Violation{Kind: "checkpoint", Node: n.ID, Round: r,
						Detail: fmt.Sprintf("checkpoint block %x, chain block %x", ch[:4], bh[:4])})
				}
			}
			for i := range b.Txns {
				tx := &b.Txns[i]
				id := tx.ID()
				if first, dup := seen[id]; dup {
					vs = append(vs, Violation{Kind: "dup-tx", Node: n.ID, Round: r,
						Detail: fmt.Sprintf("transaction %x also committed in round %d", id[:4], first)})
					continue
				}
				seen[id] = r
				if !tx.VerifySig(c.Provider) {
					vs = append(vs, Violation{Kind: "invalid-tx", Node: n.ID, Round: r,
						Detail: fmt.Sprintf("transaction %x: bad signature", id[:4])})
					continue
				}
				if err := bal.ApplyTx(tx); err != nil {
					vs = append(vs, Violation{Kind: "invalid-tx", Node: n.ID, Round: r,
						Detail: fmt.Sprintf("transaction %x does not apply: %v", id[:4], err)})
				}
			}
		}
	}

	// --- Liveness (§3, §8.2): once the last fault clears, every live
	// honest node finishes the run within the liveness window (the
	// horizon the harness set).
	if opt.RequireProgress && opt.Rounds > 0 {
		for _, n := range c.Nodes {
			if !honest(n.ID) || opt.Down[n.ID] {
				continue
			}
			got := n.Ledger().ChainLength()
			if got >= opt.Rounds {
				continue
			}
			base := ""
			if opt.HealChains != nil {
				base = fmt.Sprintf(" (chain was %d when faults cleared)", opt.HealChains[n.ID])
			}
			vs = append(vs, Violation{Kind: "liveness", Node: n.ID,
				Detail: fmt.Sprintf("chain stuck at %d of %d at horizon%s", got, opt.Rounds, base)})
		}
	}
	return vs
}
