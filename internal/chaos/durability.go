package chaos

import (
	"bytes"
	"fmt"

	"algorand/internal/ledger"
	"algorand/internal/wire"
)

// CheckDurability is the §8.3 storage invariant for Durable scenarios:
// after the run it closes every live archive handle, re-opens each
// node's data directory cold — the exact recovery scan a process
// restart performs, torn-tail truncation and checksums included — and
// demands the disk-recovered chain equal the network-caught-up chain
// byte for byte. Every round a node committed must be on its disk
// (commits journal before the node proceeds, so nothing the network
// saw may be missing), every archived block must encode identically to
// the reference chain's block, and every archived certificate must
// certify its own block.
//
// Byzantine nodes are skipped entirely. Under AllowTentativeForks-style
// scenarios a node's own chain is the comparison target (its archive
// must mirror whatever it converged to); otherwise the longest honest
// chain is, which makes the disk-equals-network claim direct.
func CheckDurability(r *Result) []Violation {
	if r.DataDir == "" {
		return nil
	}
	c := r.Cluster
	var vs []Violation
	if err := c.CloseArchives(); err != nil {
		vs = append(vs, Violation{Kind: "durability", Node: -1,
			Detail: fmt.Sprintf("closing archives: %v", err)})
	}

	// The network-caught-up reference: the longest honest chain, the
	// same selection the fork check uses.
	var ref *ledger.Ledger
	for _, n := range c.Nodes {
		if r.Byzantine[n.ID] {
			continue
		}
		if ref == nil || n.Ledger().ChainLength() > ref.ChainLength() {
			ref = n.Ledger()
		}
	}
	allowForks := r.Scenario.TStepOverride > 0

	for _, n := range c.Nodes {
		i := n.ID
		if r.Byzantine[i] {
			continue
		}
		if c.Archive(i) == nil {
			continue // diskless node: nothing on disk to hold to account
		}
		ds, err := c.OpenArchiveOffline(i)
		if err != nil {
			vs = append(vs, Violation{Kind: "durability", Node: i,
				Detail: fmt.Sprintf("cold re-open failed: %v", err)})
			continue
		}
		img := ds.Recovered()
		target := n.Ledger()
		// On-disk checkpoints survive the same cold recovery scan; the
		// newest one must verify internally (certificate for its block,
		// account table hashing to the header's state root — diskstore
		// recovery already drops records that don't), lie on the
		// scenario's checkpoint grid, and checkpoint a block that is
		// byte-identical to the chain a network-caught-up peer holds.
		if chk, okC := ds.Checkpoint(); okC {
			if _, err := chk.VerifyState(); err != nil {
				vs = append(vs, Violation{Kind: "durability", Node: i, Round: chk.Round(),
					Detail: fmt.Sprintf("recovered checkpoint fails verification: %v", err)})
			} else {
				if interval := r.Scenario.Checkpoint; interval == 0 || chk.Round()%interval != 0 {
					vs = append(vs, Violation{Kind: "durability", Node: i, Round: chk.Round(),
						Detail: fmt.Sprintf("checkpoint off the configured grid (interval %d)", interval)})
				}
				if want, okW := n.Ledger().BlockAt(chk.Round()); okW && chk.Block.Hash() != want.Hash() {
					vs = append(vs, Violation{Kind: "durability", Node: i, Round: chk.Round(),
						Detail: "recovered checkpoint is not for the committed chain's block"})
				}
			}
		}
		if !allowForks && ref != nil {
			// Prefix consistency (checked separately) makes the node's
			// chain a prefix of ref, so comparing the archive against ref
			// states the invariant in its strongest form: disk equals the
			// chain a network-caught-up peer holds.
			target = ref
		}
		chain := n.Ledger().ChainLength()
		for rd := uint64(1); rd <= chain; rd++ {
			if img.ShardCount > 1 && rd%img.ShardCount != img.ShardIndex {
				continue // §8.3 sharding: not this archive's round
			}
			want, ok := target.BlockAt(rd)
			if !ok {
				continue // a chain-gap violation is already reported
			}
			got, okD := img.Block(rd)
			if !okD {
				vs = append(vs, Violation{Kind: "durability", Node: i, Round: rd,
					Detail: "committed round missing from the on-disk archive"})
				continue
			}
			if !bytes.Equal(wire.Encode(got), wire.Encode(want)) {
				vs = append(vs, Violation{Kind: "durability", Node: i, Round: rd,
					Detail: "archived block is not byte-identical to the network chain"})
				continue
			}
			if cert, okC := img.Cert(rd); okC && cert.Value != got.Hash() {
				vs = append(vs, Violation{Kind: "durability", Node: i, Round: rd,
					Detail: fmt.Sprintf("archived certificate is for value %x, not the archived block",
						cert.Value[:4])})
			}
		}
		if err := ds.Close(); err != nil {
			vs = append(vs, Violation{Kind: "durability", Node: i,
				Detail: fmt.Sprintf("closing re-opened archive: %v", err)})
		}
	}
	return vs
}
