// Package committee reproduces the committee-sizing analysis of §7.5
// and Appendix B of the Algorand paper (Figure 3): how large must the
// expected committee τ be, and what vote threshold T should be used, so
// that the probability of drawing a committee that violates BA⋆'s
// safety/liveness constraints is below a target (5·10⁻⁹ in the paper)?
//
// The constraints, from §7.5, on the number of honest committee seats g
// and malicious seats b in a step are:
//
//	liveness:  g > T·τ            (honest users alone can cross the threshold)
//	safety:    g/2 + b ≤ T·τ      (adversary + split honest votes cannot
//	                               push two different values past it)
//
// Sortition assigns each of the W currency units an independent
// Bernoulli(τ/W) trial, so with W ≫ τ the seat counts are Poisson:
// g ~ Poisson(h·τ) and b ~ Poisson((1-h)·τ), independent. We evaluate
// the violation probability exactly in that limit, in log space, which
// is accurate far beyond the 10⁻⁹ scale of interest.
package committee

import "math"

// logPoisPMF returns log P[Poisson(lambda) = k].
func logPoisPMF(k int, lambda float64) float64 {
	if lambda <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return -lambda + float64(k)*math.Log(lambda) - lg
}

// poisCDF returns the CDF array F[k] = P[X <= k] for k in [0, max].
func poisCDF(lambda float64, max int) []float64 {
	cdf := make([]float64, max+1)
	sum := 0.0
	for k := 0; k <= max; k++ {
		sum += math.Exp(logPoisPMF(k, lambda))
		if sum > 1 {
			sum = 1
		}
		cdf[k] = sum
	}
	return cdf
}

// StepViolationProb returns the probability that a committee of expected
// size tau, with honest weighted fraction h and threshold fraction T,
// violates either BA⋆ constraint.
func StepViolationProb(tau float64, h, T float64) float64 {
	lambdaG := h * tau
	lambdaB := (1 - h) * tau
	thresh := T * tau

	// P[viol] = P[g <= T·τ] + Σ_{g > T·τ} P(g)·P[b > T·τ - g/2].
	gCut := int(math.Floor(thresh))
	// Upper summation limit: mean + 20σ covers far beyond 1e-9.
	gMax := int(lambdaG + 20*math.Sqrt(lambdaG) + 50)
	bMax := int(thresh) + 1
	bCDF := poisCDF(lambdaB, bMax)

	viol := 0.0
	// First term: g too small. Sum the lower tail directly.
	for g := 0; g <= gCut; g++ {
		viol += math.Exp(logPoisPMF(g, lambdaG))
	}
	// Second term: g fine but adversary can equivocate.
	for g := gCut + 1; g <= gMax; g++ {
		bLimitF := thresh - float64(g)/2
		var pBviol float64
		if bLimitF < 0 {
			pBviol = 1 // even b = 0 violates g/2 <= T·τ... g/2 > T·τ means violation regardless of b
		} else {
			bLimit := int(math.Floor(bLimitF))
			if bLimit >= len(bCDF) {
				pBviol = 0
			} else {
				pBviol = 1 - bCDF[bLimit]
			}
		}
		viol += math.Exp(logPoisPMF(g, lambdaG)) * pBviol
	}
	if viol > 1 {
		viol = 1
	}
	return viol
}

// BestThreshold scans thresholds T in (2/3, tMax] and returns the T
// minimizing the violation probability for the given tau and h, along
// with that probability.
func BestThreshold(tau float64, h float64) (bestT, bestViol float64) {
	bestViol = math.Inf(1)
	for T := 0.67; T <= 0.95; T += 0.0025 {
		v := StepViolationProb(tau, h, T)
		if v < bestViol {
			bestViol = v
			bestT = T
		}
	}
	return bestT, bestViol
}

// MinTau returns the smallest expected committee size (searched to the
// given granularity) whose best-threshold violation probability is at
// most target, together with the threshold achieving it. This is the
// Figure 3 computation: MinTau(h, 5e-9) as h varies.
func MinTau(h, target float64) (tau uint64, T float64) {
	lo, hi := uint64(50), uint64(50)
	// Exponential search for an upper bound.
	for {
		if _, v := BestThreshold(float64(hi), h); v <= target {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<20 {
			return 0, 0 // unreachable target
		}
	}
	// Binary search on the (monotone in practice) predicate.
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if _, v := BestThreshold(float64(mid), h); v <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	bestT, _ := BestThreshold(float64(hi), h)
	return hi, bestT
}

// Figure3Point is one point of the Figure 3 curve.
type Figure3Point struct {
	HonestFraction float64
	Tau            uint64
	Threshold      float64
}

// Figure3 computes the committee-size curve for the given honest
// fractions at the paper's violation target 5·10⁻⁹.
func Figure3(fractions []float64) []Figure3Point {
	pts := make([]Figure3Point, 0, len(fractions))
	for _, h := range fractions {
		tau, T := MinTau(h, 5e-9)
		pts = append(pts, Figure3Point{HonestFraction: h, Tau: tau, Threshold: T})
	}
	return pts
}

// logSumExp adds probabilities given in log space.
func logSumExp(logs []float64) float64 {
	max := math.Inf(-1)
	for _, l := range logs {
		if l > max {
			max = l
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp(l - max)
	}
	return max + math.Log(sum)
}

// PoissonUpperTailLog returns a Chernoff upper bound on
// ln P[Poisson(λ) ≥ k]: for k > λ the bound is
// exp(-λ) (eλ/k)^k, i.e. k - λ - k·ln(k/λ) in log space; for k ≤ λ the
// tail is not small and the bound is 0 (ln 1). The chaos harness uses
// it to ask "how surprising is this many Byzantine committee seats?"
// without enumerating PMFs: committee sortition gives a party with
// weight fraction f an expected f·τ seats per step (the binomial is
// Poisson to within the paper's own approximation), so observed seats
// far above Σ f·τ across certificates betray a biased seed chain.
func PoissonUpperTailLog(lambda float64, k float64) float64 {
	if k <= lambda || k <= 0 {
		return 0
	}
	if lambda <= 0 {
		return math.Inf(-1) // impossible: any seat from a zero-weight party
	}
	return k - lambda - k*math.Log(k/lambda)
}

// BinomialUpperTailLog returns a Chernoff upper bound on
// ln P[Binomial(n, p) ≥ k] via the relative-entropy form
// exp(-n·D(k/n ‖ p)); 0 (ln 1) when k ≤ n·p. Used to bound how many
// rounds a Byzantine stake fraction p may win block proposal.
func BinomialUpperTailLog(n int, p float64, k int) float64 {
	if n <= 0 || k <= 0 || float64(k) <= float64(n)*p {
		return 0
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	if k > n {
		return math.Inf(-1) // impossible outcome
	}
	a := float64(k) / float64(n)
	d := a * math.Log(a/p)
	if a < 1 {
		d += (1 - a) * math.Log((1-a)/(1-p))
	}
	return -float64(n) * d
}

// AdversaryCertificateLog2Prob returns log₂ P[Poisson((1-h)·τ) > T·τ]:
// the probability that adversary-controlled committee seats alone
// exceed the vote threshold in a single step, which is what an attacker
// would need to forge a block certificate (§8.3). The paper reports
// this is below 2⁻¹⁶⁶ per step for τ_step > 1000.
func AdversaryCertificateLog2Prob(tau float64, h, T float64) float64 {
	lambdaB := (1 - h) * tau
	thresh := int(math.Floor(T * tau))
	// Sum the upper tail in log space. Terms decay geometrically past
	// the threshold (ratio λ/k < 1), so a few hundred terms suffice.
	var logs []float64
	for k := thresh + 1; k <= thresh+2000; k++ {
		logs = append(logs, logPoisPMF(k, lambdaB))
	}
	return logSumExp(logs) / math.Ln2
}
