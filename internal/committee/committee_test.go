package committee

import (
	"math"
	"testing"
)

func TestPoissonPMFSanity(t *testing.T) {
	// P[Pois(1) = 0] = e^-1.
	if got := math.Exp(logPoisPMF(0, 1)); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("pmf(0;1) = %v", got)
	}
	// PMF sums to 1.
	sum := 0.0
	for k := 0; k < 100; k++ {
		sum += math.Exp(logPoisPMF(k, 10))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sum = %v", sum)
	}
	// Zero lambda.
	if logPoisPMF(0, 0) != 0 || !math.IsInf(logPoisPMF(1, 0), -1) {
		t.Fatal("lambda=0 cases wrong")
	}
}

func TestPoisCDFMonotone(t *testing.T) {
	cdf := poisCDF(50, 200)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if math.Abs(cdf[199]-1) > 1e-9 {
		t.Fatalf("CDF tail = %v", cdf[199])
	}
}

func TestViolationDecreasesWithTau(t *testing.T) {
	h := 0.8
	prev := 1.0
	for _, tau := range []float64{100, 500, 1000, 2000, 4000} {
		_, v := BestThreshold(tau, h)
		if v > prev*1.001 {
			t.Fatalf("violation not decreasing at tau=%v: %v > %v", tau, v, prev)
		}
		prev = v
	}
}

func TestViolationImprovesWithHonestyCoarsely(t *testing.T) {
	// At fixed tau the violation probability is NOT strictly monotone in
	// h (more honest users also add g/2 weight against the safety
	// constraint), but coarsely, low honesty must be far worse.
	tau := 2000.0
	_, vLow := BestThreshold(tau, 0.70)
	_, vHigh := BestThreshold(tau, 0.85)
	if vLow < vHigh*1e3 {
		t.Fatalf("h=0.70 (%v) should be orders of magnitude worse than h=0.85 (%v)", vLow, vHigh)
	}
}

// TestPaperOperatingPoint reproduces the headline of Figure 3: at
// h = 80%, an expected committee of 2,000 with threshold ≈ 0.685 keeps
// the violation probability at or below 5·10⁻⁹.
func TestPaperOperatingPoint(t *testing.T) {
	v := StepViolationProb(2000, 0.80, 0.685)
	if v > 5e-9 {
		t.Fatalf("violation at paper's parameters = %v, want <= 5e-9", v)
	}
	// And the bound should be tight-ish: a drastically smaller committee
	// must not reach it.
	if v2 := StepViolationProb(500, 0.80, 0.685); v2 <= 5e-9 {
		t.Fatalf("tau=500 should violate: %v", v2)
	}
}

func TestMinTauAtPaperPoint(t *testing.T) {
	tau, T := MinTau(0.80, 5e-9)
	// The paper picks 2,000 at h=80%; our Poisson evaluation should land
	// in the same neighborhood.
	if tau < 1200 || tau > 2600 {
		t.Fatalf("MinTau(0.80) = %d, want ≈2000", tau)
	}
	if T <= 2.0/3 || T >= 0.95 {
		t.Fatalf("threshold %v out of range", T)
	}
	// Verify the returned pair actually meets the target.
	if v := StepViolationProb(float64(tau), 0.80, T); v > 5e-9 {
		t.Fatalf("returned parameters violate target: %v", v)
	}
}

func TestFigure3Shape(t *testing.T) {
	pts := Figure3([]float64{0.76, 0.80, 0.85, 0.90})
	// Committee size must shrink as honesty grows (the figure's shape).
	for i := 1; i < len(pts); i++ {
		if pts[i].Tau >= pts[i-1].Tau {
			t.Fatalf("tau not decreasing: %+v", pts)
		}
	}
	// Blow-up toward h = 2/3: the lowest h must need a much larger
	// committee than h=0.9.
	if pts[0].Tau < 3*pts[len(pts)-1].Tau {
		t.Fatalf("expected steep growth near 2/3: %+v", pts)
	}
}

func TestAdversaryCertificateBound(t *testing.T) {
	// §8.3: for τ_step > 1000 the per-step certificate-forging
	// probability is below 2^-166. Check our number at the paper's
	// operating point is at least that small.
	log2p := AdversaryCertificateLog2Prob(2000, 0.80, 0.685)
	if log2p > -166 {
		t.Fatalf("log2 P = %v, want <= -166", log2p)
	}
	// And that it is not absurdly small (sanity of the computation):
	if log2p < -5000 || math.IsInf(log2p, -1) {
		t.Fatalf("log2 P = %v implausible", log2p)
	}
	// At τ = 1000 the bound should also hold (paper: "for τ_step > 1,000").
	if l := AdversaryCertificateLog2Prob(1000, 0.80, 0.685); l > -166 {
		t.Fatalf("tau=1000: log2 P = %v", l)
	}
}

func TestLogSumExp(t *testing.T) {
	got := logSumExp([]float64{math.Log(0.25), math.Log(0.5), math.Log(0.25)})
	if math.Abs(got) > 1e-12 {
		t.Fatalf("logSumExp = %v, want 0", got)
	}
	if !math.IsInf(logSumExp([]float64{math.Inf(-1)}), -1) {
		t.Fatal("all -inf should stay -inf")
	}
}

func BenchmarkStepViolationProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StepViolationProb(2000, 0.80, 0.685)
	}
}

func BenchmarkMinTau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MinTau(0.80, 5e-9)
	}
}
