package experiments

import (
	"math/rand"
	"time"

	"algorand/internal/agreement"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/params"
	"algorand/internal/sortition"
	"algorand/internal/vtime"
)

// CoinAttack reproduces the §7.4 "getting unstuck" scenario against the
// real BinaryBA⋆ implementation. The setup is the paper's: a malicious
// highest-priority proposer has split the honest users out of the
// reduction stage — group A enters BinaryBA⋆ with the block's hash,
// group B with the empty hash — and the adversary's committee weight b
// satisfies the attack precondition g/2 + b > T·τ (deliberately
// violating the §7.5 committee constraints, whose whole point is to
// make this state astronomically unlikely at τ_step = 2000).
//
// Honest votes propagate reliably (strong synchrony); the adversary's
// only power is releasing its own votes selectively and late. Group B
// is inert: every one of its fallbacks resolves to the empty hash. The
// adversary keeps group A on the block hash by pushing its votes for it
// (g_A + b > T·τ) to group A alone, just before the step-kind-2
// deadline whose timeout fallback would otherwise flip A to empty; in
// step-kind-1 A's timeout fallback is already the block hash, and in
// the coin step (kind 3) the adversary withholds, betting on the
// fallback.
//
// Without the coin the kind-3 fallback is the deterministic block hash,
// so the split persists to MaxSteps. With Algorithm 9, group A's
// fallback is the least-significant bit of the lowest sortition hash it
// saw — unpredictable and common across A — so with probability ≈1/2
// per loop A flips to empty, the groups unify, and consensus follows
// two steps later.
func CoinAttack(trials int, withCoin bool, seedBase int64) CoinAblationResult {
	res := CoinAblationResult{MaxSteps: 24}
	for t := 0; t < trials; t++ {
		steps, stuck := coinAttackTrial(withCoin, seedBase+int64(t), res.MaxSteps)
		if withCoin {
			res.WithCoin = append(res.WithCoin, steps)
			if stuck {
				res.StuckWith++
			}
		} else {
			res.WithoutCoin = append(res.WithoutCoin, steps)
			if stuck {
				res.StuckWithout++
			}
		}
	}
	return res
}

// RunCoinAblation runs both arms.
func RunCoinAblation(trials int, seedBase int64) CoinAblationResult {
	with := CoinAttack(trials, true, seedBase)
	without := CoinAttack(trials, false, seedBase)
	with.WithoutCoin = without.WithoutCoin
	with.StuckWithout = without.StuckWithout
	return with
}

// coinAttackTrial runs one BinaryBA⋆ execution under the splitting
// adversary and returns the (max over honest users) binary step count,
// plus whether anyone hit MaxSteps.
func coinAttackTrialDebug(withCoin bool, seed int64, maxSteps int) (int, bool) {
	coinDebug = true
	defer func() { coinDebug = false }()
	return coinAttackTrial(withCoin, seed, maxSteps)
}

// coinDebug enables tracing in the attack harness.
var coinDebug = false

func coinAttackTrial(withCoin bool, seed int64, maxSteps int) (int, bool) {
	// h = 0.7 sits inside the attack-feasible window (T < h and
	// h/2 + (1-h) > T), and τ = 1600 gives the binomial margins enough
	// room that the adversary's threshold pushes almost never miss —
	// mirroring how the paper's τ_step = 2000 makes the *defense*
	// reliable when the constraints point the other way.
	const (
		nHonest   = 20
		honestW   = 350
		advW      = 3000
		tau       = 1600
		threshold = 0.60
	)
	s := vtime.New()
	provider := crypto.NewFast()
	rng := rand.New(rand.NewSource(seed))

	prm := params.Default()
	prm.TauStep = tau
	prm.TauFinal = tau
	prm.TStep = threshold
	prm.MaxSteps = maxSteps
	prm.LambdaStep = coinAttackLambda
	prm.AblateNoCommonCoin = !withCoin

	weights := make(map[crypto.PublicKey]uint64)
	var honest []crypto.Identity
	for i := 0; i < nHonest; i++ {
		id := provider.NewIdentity(crypto.SeedFromUint64(uint64(seed)<<20 | uint64(i)))
		honest = append(honest, id)
		weights[id.PublicKey()] = honestW
	}
	adv := provider.NewIdentity(crypto.SeedFromUint64(uint64(seed)<<20 | 999))
	weights[adv.PublicKey()] = advW
	total := uint64(nHonest*honestW + advW)

	blockHash := crypto.HashBytes("attack.block", []byte{byte(seed)})
	ctx := &agreement.Context{
		Round:         1,
		Seed:          crypto.HashUint64("attack.seed", uint64(seed)),
		Weights:       weights,
		TotalWeight:   total,
		LastBlockHash: crypto.HashBytes("attack.last"),
		EmptyHash:     crypto.HashBytes("attack.empty"),
	}

	// Per-honest-node vote inboxes.
	inboxes := make([]map[uint64]*vtime.Mailbox, nHonest)
	for i := range inboxes {
		inboxes[i] = make(map[uint64]*vtime.Mailbox)
	}
	inbox := func(node int, step uint64) *vtime.Mailbox {
		mb, ok := inboxes[node][step]
		if !ok {
			mb = s.NewMailbox()
			inboxes[node][step] = mb
		}
		return mb
	}

	groupA := func(i int) bool { return i < nHonest/2 }

	// Honest gossip: deliver to every honest node quickly. The adversary
	// watches group A's first vote of each step to time its injections.
	stepSeen := make(map[uint64]bool)
	var injectAt func(step uint64)
	gossipFrom := func(v *ledger.Vote) {
		for i := 0; i < nHonest; i++ {
			i := i
			vc := *v
			delay := time.Duration(1+rng.Intn(20)) * time.Millisecond
			s.After(delay, func() {
				nv := agreement.ProcessVote(provider, prm, ctx, &vc)
				if nv == 0 {
					return
				}
				inbox(i, vc.Step).Send(agreement.ValidatedVote{Vote: vc, NumVotes: nv})
			})
		}
		if !stepSeen[v.Step] {
			stepSeen[v.Step] = true
			injectAt(v.Step)
		}
	}

	// The adversary's selective delivery: in step-kind-2 (timeout→empty
	// for everyone), push block votes to group A just before its
	// deadline so A continues on the block hash instead of unifying
	// with B on empty. All other steps need no adversary action: A's
	// kind-1 fallback is already the block hash, and in the coin step
	// the adversary withholds and bets on the fallback.
	injectAt = func(wireStep uint64) {
		if wireStep <= 2 { // only binary steps are attacked
			return
		}
		k := int(wireStep - 2) // binary step counter
		if (k-1)%3 != 1 {      // only the timeout→empty step kind
			return
		}
		push := blockHash
		role := sortition.Role{Kind: sortition.RoleCommittee, Round: ctx.Round, Step: wireStep}
		res := sortition.Execute(adv, ctx.Seed[:], role, prm.TauStep, weights[adv.PublicKey()], total)
		if res.J == 0 {
			return
		}
		v := &ledger.Vote{
			Sender:    adv.PublicKey(),
			Round:     ctx.Round,
			Step:      wireStep,
			SortHash:  res.Output,
			SortProof: res.Proof,
			PrevHash:  ctx.LastBlockHash,
			Value:     push,
		}
		v.Sign(adv)
		s.After(prm.LambdaStep*9/10, func() {
			for i := 0; i < nHonest; i++ {
				if !groupA(i) {
					continue
				}
				nv := agreement.ProcessVote(provider, prm, ctx, v)
				if nv == 0 {
					return
				}
				inbox(i, wireStep).Send(agreement.ValidatedVote{Vote: *v, NumVotes: nv})
			}
		})
	}

	stepsTaken := make([]int, nHonest)
	anyStuck := false
	for i := 0; i < nHonest; i++ {
		i := i
		env := &agreement.Env{
			Provider: provider,
			Identity: honest[i],
			Params:   prm,
			Gossip:   gossipFrom,
			Inbox:    func(_, step uint64) *vtime.Mailbox { return inbox(i, step) },
		}
		// Skip the reduction stage: the scenario starts from an already
		// split population, which is exactly the state the reduction can
		// leave behind under a dishonest highest-priority proposer.
		start := blockHash
		if !groupA(i) {
			start = ctx.EmptyHash
		}
		s.Spawn("honest", func(p *vtime.Proc) {
			env.Proc = p
			if coinDebug && i == 0 {
				env.StepTimer = func(step uint64, took time.Duration, timedOut bool) {
					println("node0 step", int(step-2), "took(ms)", int(took.Milliseconds()), "timeout:", timedOut)
				}
			}
			out, err := agreement.BinaryBA(env, ctx, start)
			if err != nil {
				stepsTaken[i] = maxSteps
				anyStuck = true
				return
			}
			stepsTaken[i] = out.Steps
			if coinDebug && i < 3 {
				println("node", i, "consensus at step", out.Steps, "empty:", out.Value == ctx.EmptyHash)
			}
		})
	}

	s.Run(time.Duration(maxSteps+8) * prm.LambdaStep * 4)

	maxTaken := 0
	for _, st := range stepsTaken {
		if st > maxTaken {
			maxTaken = st
		}
	}
	return maxTaken, anyStuck
}
