package experiments

import (
	"fmt"
	"os"
	"time"

	"algorand/internal/ledger"
	"algorand/internal/sim"
)

// SyncPoint is one chain length of the fast-sync experiment: the
// wall-clock cost of rebuilding a node's ledger from genesis replay
// versus re-basing onto the newest on-disk checkpoint and replaying
// only the delta.
type SyncPoint struct {
	ChainLength     uint64  `json:"chain_length"`
	CheckpointRound uint64  `json:"checkpoint_round"`
	DeltaRounds     uint64  `json:"delta_rounds"`
	FullReplayMs    float64 `json:"full_replay_ms"`
	SnapshotSyncMs  float64 `json:"snapshot_sync_ms"`
	// Speedup = full replay time / snapshot-sync time.
	Speedup float64 `json:"speedup"`
	// HeadsEqual pins the correctness half of the claim: both paths
	// must end on the identical head block hash.
	HeadsEqual bool `json:"heads_equal"`
}

// SyncReport is the §8.3 recovery-cost experiment behind
// BENCH_sync.json: full genesis replay is O(chain) while
// checkpoint+delta recovery is O(delta) — the snapshot-sync column
// must stay flat as the chain grows.
type SyncReport struct {
	Users              int         `json:"users"`
	CheckpointInterval uint64      `json:"checkpoint_interval"`
	Points             []SyncPoint `json:"points"`
	// SubLinear is the acceptance gate: at the longest chain measured,
	// snapshot sync must cost well under half of full replay.
	SubLinear bool `json:"sub_linear"`
}

// SyncFastRestart measures cold-restart cost at several chain lengths.
// For each length it runs a durable cluster that checkpoints on the
// configured grid, then rebuilds node 0's state twice from the cold
// archive image: once by committing every block from genesis, once by
// verifying the newest checkpoint (Merkle root against the certified
// header — the disk is trusted no more than a peer), re-basing, and
// committing only the rounds past it. Both rebuilds replay real
// certificate-checked commits; only the starting point differs, which
// is exactly the O(chain) vs O(delta) claim.
func SyncFastRestart(scale Scale, lengths []uint64, interval uint64, seed int64) SyncReport {
	n := scale.users(20)
	rep := SyncReport{Users: n, CheckpointInterval: interval}
	for _, L := range lengths {
		cfg := sim.DefaultConfig(n, L)
		cfg.Seed = seed + int64(L) + 13
		cfg.CheckpointInterval = interval
		// Fast sync verifies checkpoint certificates from genesis
		// committee context, so the whole chain must sit inside the
		// first seed epoch (see node.VerifyCheckpoint).
		cfg.LedgerCfg.SeedRefreshInterval = 4 * L
		dir, err := os.MkdirTemp("", "syncbench")
		if err != nil {
			panic(fmt.Sprintf("experiments: temp dir: %v", err))
		}
		cfg.DataDir = dir
		c := sim.NewCluster(cfg)
		c.Run()
		if err := c.AgreementCheck(); err != nil {
			panic(fmt.Sprintf("experiments: agreement violated at %d rounds: %v", L, err))
		}
		if err := c.CloseArchives(); err != nil {
			panic(fmt.Sprintf("experiments: closing archives: %v", err))
		}
		ds, err := c.OpenArchiveOffline(0)
		if err != nil {
			panic(fmt.Sprintf("experiments: cold re-open: %v", err))
		}
		img := ds.Recovered()
		chk, ok := ds.Checkpoint()
		if !ok {
			panic(fmt.Sprintf("experiments: no checkpoint on disk after %d rounds", L))
		}

		replay := func(l *ledger.Ledger, from uint64) {
			for r := from; ; r++ {
				b, okB := img.Block(r)
				if !okB {
					return
				}
				cert, _ := img.Cert(r)
				if err := l.Commit(b, cert); err != nil {
					panic(fmt.Sprintf("experiments: replaying round %d: %v", r, err))
				}
			}
		}

		start := time.Now()
		full := ledger.New(c.Provider, cfg.LedgerCfg, c.Genesis, c.Seed0)
		replay(full, 1)
		fullDur := time.Since(start)

		start = time.Now()
		if _, err := chk.VerifyState(); err != nil {
			panic(fmt.Sprintf("experiments: checkpoint failed verification: %v", err))
		}
		fast, err := ledger.NewFromCheckpoint(c.Provider, cfg.LedgerCfg, c.Genesis, c.Seed0, chk)
		if err != nil {
			panic(fmt.Sprintf("experiments: re-base failed: %v", err))
		}
		replay(fast, chk.Round()+1)
		fastDur := time.Since(start)

		ds.Close()
		os.RemoveAll(dir)

		p := SyncPoint{
			ChainLength:     full.ChainLength(),
			CheckpointRound: chk.Round(),
			DeltaRounds:     full.ChainLength() - chk.Round(),
			FullReplayMs:    float64(fullDur) / float64(time.Millisecond),
			SnapshotSyncMs:  float64(fastDur) / float64(time.Millisecond),
			HeadsEqual:      fast.HeadHash() == full.HeadHash(),
		}
		if fastDur > 0 {
			p.Speedup = float64(fullDur) / float64(fastDur)
		}
		if !p.HeadsEqual {
			panic(fmt.Sprintf("experiments: snapshot sync diverged from genesis replay at %d rounds", L))
		}
		rep.Points = append(rep.Points, p)
	}
	if len(rep.Points) > 0 {
		last := rep.Points[len(rep.Points)-1]
		rep.SubLinear = last.SnapshotSyncMs < last.FullReplayMs/2
	}
	return rep
}

// DefaultSyncLengths are the chain lengths of the BENCH_sync.json
// sweep; the acceptance criterion demands the ≥64 point.
func DefaultSyncLengths() []uint64 { return []uint64{16, 64, 256} }
