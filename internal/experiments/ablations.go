package experiments

import (
	"fmt"
	"time"

	"algorand/internal/sim"
)

// AblationResult compares a design choice on and off.
type AblationResult struct {
	Name     string
	Baseline LatencyPoint
	Ablated  LatencyPoint
	// ExtraBytesFraction is ablated/baseline total network bytes.
	ExtraBytesFraction float64
}

// AblatePriorityGossip measures the §6 priority pre-gossip: without the
// small priority announcements, every proposed block travels further
// before being discarded, costing bandwidth and block-proposal latency.
func AblatePriorityGossip(scale Scale) AblationResult {
	n := scale.users(100)
	run := func(disable bool) (LatencyPoint, int64) {
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = 99
		c := sim.NewCluster(cfg)
		if disable {
			for _, nd := range c.Nodes {
				nd.SetDisablePriorityGossip(true)
			}
		}
		c.Run()
		if err := c.AgreementCheck(); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		final, empty := c.FinalityRate()
		return LatencyPoint{
			Users:     n,
			Latency:   sim.Summarize(c.AllRoundLatencies(1, cfg.Rounds)),
			FinalRate: final,
			EmptyRate: empty,
		}, c.Net.TotalBytes()
	}
	base, baseBytes := run(false)
	abl, ablBytes := run(true)
	return AblationResult{
		Name:               "priority-pre-gossip",
		Baseline:           base,
		Ablated:            abl,
		ExtraBytesFraction: float64(ablBytes) / float64(baseBytes),
	}
}

// AblateVoteNext3 disables Algorithm 8's vote-in-next-3-steps and runs
// the §10.4 adversary: without the extra votes, nodes that finish a
// step late rely on the common coin to catch up, increasing empty
// rounds and latency tails.
func AblateVoteNext3(scale Scale) AblationResult {
	n := scale.users(100)
	run := func(ablate bool) (LatencyPoint, int64) {
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = 77
		cfg.Params.AblateNoVoteNext3 = ablate
		c := sim.NewCluster(cfg)
		c.MakeEquivocatingProposers(n / 5)
		c.Run()
		if err := c.AgreementCheck(); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		final, empty := c.FinalityRate()
		return LatencyPoint{
			Users:     n,
			Latency:   sim.Summarize(c.AllRoundLatencies(1, cfg.Rounds)),
			FinalRate: final,
			EmptyRate: empty,
		}, c.Net.TotalBytes()
	}
	base, bb := run(false)
	abl, ab := run(true)
	return AblationResult{
		Name:               "vote-next-3-steps",
		Baseline:           base,
		Ablated:            abl,
		ExtraBytesFraction: float64(ab) / float64(bb),
	}
}

// AblateEquivocationDiscard compares the §10.4 discard-both policy with
// keep-first under the equivocation attack: keep-first lets different
// users adopt different versions of the attacker's block, sending more
// rounds through the slow (empty-block) path.
func AblateEquivocationDiscard(scale Scale) AblationResult {
	n := scale.users(100)
	run := func(keepFirst bool) (LatencyPoint, int64) {
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = 55
		c := sim.NewCluster(cfg)
		if keepFirst {
			for _, nd := range c.Nodes {
				nd.SetKeepFirstOnEquivocation(true)
			}
		}
		c.MakeEquivocatingProposers(n / 5)
		c.Run()
		if err := c.AgreementCheck(); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		final, empty := c.FinalityRate()
		return LatencyPoint{
			Users:     n,
			Latency:   sim.Summarize(c.AllRoundLatencies(1, cfg.Rounds)),
			FinalRate: final,
			EmptyRate: empty,
		}, c.Net.TotalBytes()
	}
	base, bb := run(false)
	abl, ab := run(true)
	return AblationResult{
		Name:               "equivocation-discard-both",
		Baseline:           base,
		Ablated:            abl,
		ExtraBytesFraction: float64(ab) / float64(bb),
	}
}

// CoinAblationResult reports the vote-splitting experiment.
type CoinAblationResult struct {
	WithCoin    []int // binary steps to consensus per trial
	WithoutCoin []int
	MaxSteps    int
	// StuckWithout counts trials that hit MaxSteps without the coin.
	StuckWithout int
	StuckWith    int
}

// Mean returns the average steps of a trial set (MaxSteps for stuck).
func mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// Summary renders the result.
func (r CoinAblationResult) Summary() string {
	return fmt.Sprintf("with coin: mean %.1f steps (%d/%d stuck); without: mean %.1f steps (%d/%d stuck)",
		mean(r.WithCoin), r.StuckWith, len(r.WithCoin),
		mean(r.WithoutCoin), r.StuckWithout, len(r.WithoutCoin))
}

// durationScale for the attack harness.
const coinAttackLambda = 2 * time.Second
