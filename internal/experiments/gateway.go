package experiments

import (
	"fmt"

	"algorand/internal/gateway"
	"algorand/internal/sim"
)

// GatewayReport is the access-tier scaling experiment: the same
// payment stream as TxflowThroughput, but every byte of client
// traffic — submissions and a large read-only query population —
// enters through a handful of gateway nodes instead of touching the
// consensus cluster. Two runs back the report: a direct-submission
// baseline (clients talk straight to consensus nodes, the PR-8 path)
// and the gateway run. The access tier earns its keep if the
// committed throughput stays within a few percent of the baseline
// while consensus nodes serve zero client sessions.
type GatewayReport struct {
	Users      int     `json:"users"`
	Gateways   int     `json:"gateways"`
	Rounds     uint64  `json:"rounds"`
	OfferedTPS float64 `json:"offered_tx_per_sec"`

	ElapsedSeconds float64 `json:"elapsed_virtual_seconds"`

	// Client-population evidence: total sessions served by the access
	// tier (submission sessions + read-only query sessions) and the
	// count of client sessions that reached a consensus node. The
	// latter is computed, not asserted: total workload submissions
	// minus submissions accounted for by gateway edge admission.
	ClientSessions           int64 `json:"client_sessions_total"`
	QuerySessionsPerSec      int   `json:"query_sessions_per_sec"`
	ConsensusClientSessions  int64 `json:"consensus_client_sessions"`
	GatewaySubmissionsTotal  int64 `json:"gateway_submissions_total"`
	WorkloadSubmissionsTotal int64 `json:"workload_submissions_total"`

	CommittedTxs  int     `json:"committed_txs"`
	CommittedTPS  float64 `json:"committed_tx_per_sec"`
	PayloadBytes  int64   `json:"committed_payload_bytes"`
	MBytesPerHour float64 `json:"committed_mbytes_per_hour"`

	// The direct-submission baseline from an identical cluster without
	// the access tier, and the gateway run's fraction of it.
	BaselineMBytesPerHour float64 `json:"baseline_mbytes_per_hour"`
	ThroughputRatio       float64 `json:"throughput_ratio_vs_direct"`

	// Load-driver retry behaviour (the PR-9 backoff fix: duplicates
	// come from deliberate retries, not from a driver ignoring typed
	// rejects).
	Workload sim.WorkloadStats `json:"workload"`

	// Per-gateway books at the end of the run. Pending/PendingBytes are
	// the bounded-memory evidence: the mempool drains as commits land.
	GatewayStats []gateway.Stats `json:"gateway_stats"`

	Phases PhaseLatencies `json:"phase_latency_ms"`
}

// GatewayClientScale runs the access-tier experiment: scale.users(50)
// consensus nodes behind four gateways, offeredTPS signed payments per
// virtual second through the gateways, and querySessionsPerSec
// simulated read-only client sessions against the gateway read models.
// A second, gateway-free run of the identical cluster provides the
// direct-submission throughput baseline.
func GatewayClientScale(scale Scale, offeredTPS float64, querySessionsPerSec int) GatewayReport {
	n := scale.users(50)
	rounds := scale.Rounds + 3

	// Direct-submission baseline: same cluster, same seed, same offered
	// load, clients talking straight to consensus nodes.
	base := TxflowThroughput(scale, offeredTPS)

	cfg := sim.DefaultConfig(n, rounds)
	cfg.Seed = 9
	cfg.WeightEach = 1 << 20
	cfg.Gateways = 4

	c := sim.NewCluster(cfg)
	c.GatewayWorkload(offeredTPS, cfg.Seed)
	c.QueryWorkload(float64(querySessionsPerSec), cfg.Seed+1)
	elapsed := c.Run()
	if err := c.AgreementCheck(); err != nil {
		panic(fmt.Sprintf("experiments: agreement violated behind gateways: %v", err))
	}

	committed := c.CommittedTxCount(rounds)
	payload := c.CommittedPayloadBytes(rounds)
	ws := c.WorkloadStats()
	rep := GatewayReport{
		Users:                    n,
		Gateways:                 c.NumGateways(),
		Rounds:                   rounds,
		OfferedTPS:               offeredTPS,
		ElapsedSeconds:           elapsed.Seconds(),
		QuerySessionsPerSec:      querySessionsPerSec,
		WorkloadSubmissionsTotal: int64(ws.Submitted),
		CommittedTxs:             committed,
		PayloadBytes:             payload,
		BaselineMBytesPerHour:    base.MBytesPerHour,
		Workload:                 ws,
		Phases:                   clusterPhaseLatencies(c),
	}
	for i := 0; i < c.NumGateways(); i++ {
		st := c.Gateway(i).Stats()
		rep.ClientSessions += st.Sessions
		rep.GatewaySubmissionsTotal += st.Submitted
		rep.GatewayStats = append(rep.GatewayStats, st)
	}
	// Every workload submission must be accounted for at a gateway
	// edge; anything unaccounted for would have been a client session
	// on a consensus node.
	rep.ConsensusClientSessions = rep.WorkloadSubmissionsTotal - rep.GatewaySubmissionsTotal
	if rep.ConsensusClientSessions < 0 {
		rep.ConsensusClientSessions = 0
	}
	if elapsed > 0 {
		rep.CommittedTPS = float64(committed) / elapsed.Seconds()
		rep.MBytesPerHour = float64(payload) / (1 << 20) / (elapsed.Seconds() / 3600)
	}
	if base.MBytesPerHour > 0 {
		rep.ThroughputRatio = rep.MBytesPerHour / base.MBytesPerHour
	}
	return rep
}
