package experiments

import (
	"testing"
	"time"
)

// The experiment tests assert the *shape* claims of the paper's
// evaluation (who wins, what is flat, what grows — see EXPERIMENTS.md),
// not absolute numbers. All runs are deterministic given their seeds.

func TestFigure3OperatingPoint(t *testing.T) {
	pts := Figure3([]float64{0.80})
	if len(pts) != 1 {
		t.Fatal("missing point")
	}
	if pts[0].Tau < 1200 || pts[0].Tau > 2600 {
		t.Fatalf("τ(h=0.8) = %d, paper picks 2000", pts[0].Tau)
	}
}

func TestFigure5LatencyFlat(t *testing.T) {
	pts := Figure5(DefaultScale(), []int{50, 200, 400})
	var min, max time.Duration
	for i, p := range pts {
		if p.Latency.N == 0 {
			t.Fatalf("users=%d: no data", p.Users)
		}
		if p.Latency.Median > time.Minute {
			t.Fatalf("users=%d: median %v exceeds a minute", p.Users, p.Latency.Median)
		}
		if i == 0 || p.Latency.Median < min {
			min = p.Latency.Median
		}
		if p.Latency.Median > max {
			max = p.Latency.Median
		}
	}
	// Near-constant latency: medians within 2x across an 8x user range.
	if max > 2*min {
		t.Fatalf("latency not flat: min median %v, max median %v", min, max)
	}
}

func TestFigure6SharedVMSlower(t *testing.T) {
	scale := DefaultScale()
	users := []int{100}
	dedicated := Figure5(scale, users)
	shared := Figure6(scale, users, 10)
	if shared[0].Latency.Median <= dedicated[0].Latency.Median {
		t.Fatalf("shared-VM median %v not slower than dedicated %v",
			shared[0].Latency.Median, dedicated[0].Latency.Median)
	}
}

func TestFigure7Shape(t *testing.T) {
	pts := Figure7(DefaultScale(), []int{256 << 10, 1 << 20, 4 << 20})
	// Block proposal time grows substantially with block size...
	first := pts[0].Phases.BlockProposal.Median
	last := pts[len(pts)-1].Phases.BlockProposal.Median
	if last <= first {
		t.Fatalf("proposal time did not grow with block size: %v -> %v", first, last)
	}
	// ...while BA⋆ stays bounded near the paper's ~12s at every size
	// (the paper's own 10 MB point keeps BA⋆ at 12s while proposal
	// dominates the round).
	var baMin, baMax time.Duration = time.Hour, 0
	for _, p := range pts {
		ba := p.Phases.BAWithoutFinal.Median
		if ba > 13*time.Second {
			t.Fatalf("BA⋆ median %v at %d bytes exceeds the paper's ~12s regime", ba, p.BlockSize)
		}
		if ba < baMin {
			baMin = ba
		}
		if ba > baMax {
			baMax = ba
		}
	}
	// Proposal growth must dominate any BA⋆ drift.
	if last-first < baMax-baMin {
		t.Fatalf("proposal growth (%v) does not dominate BA⋆ drift (%v)",
			last-first, baMax-baMin)
	}
}

func TestFigure8AttackTolerated(t *testing.T) {
	pts := Figure8(DefaultScale(), []float64{0, 0.20})
	honest, attacked := pts[0], pts[1]
	if attacked.Latency.N == 0 {
		t.Fatal("no completed rounds under attack")
	}
	// The paper's figure: latency under 20% malicious users stays in the
	// same regime (small constant factor), and safety holds (checked by
	// Figure8 itself via AgreementCheck).
	if attacked.Latency.Median > 4*honest.Latency.Median {
		t.Fatalf("attack inflated latency too much: %v vs %v",
			attacked.Latency.Median, honest.Latency.Median)
	}
}

func TestThroughputBeatsBitcoin(t *testing.T) {
	rows := ThroughputVsBitcoin(DefaultScale(), []int{1 << 20, 2 << 20})
	var algoBest, btc float64
	for _, r := range rows {
		switch r.System {
		case "algorand":
			if r.MBytesPerHour > algoBest {
				algoBest = r.MBytesPerHour
			}
		case "bitcoin":
			btc = r.MBytesPerHour
		}
	}
	if btc < 4 || btc > 8 {
		t.Fatalf("bitcoin baseline %v MB/h, expected ≈6", btc)
	}
	// Paper: 327 MB/h at 2 MB blocks (≈50x Bitcoin); at simulation scale
	// the factor should still be large.
	if algoBest < 20*btc {
		t.Fatalf("algorand %v MB/h not ≫ bitcoin %v MB/h", algoBest, btc)
	}
}

func TestCostsMatchPaperShape(t *testing.T) {
	rep := Costs(DefaultScale())
	// Certificate ≈ 300 KB (§10.3).
	if rep.CertificateKB < 250 || rep.CertificateKB > 450 {
		t.Fatalf("certificate %v KB, paper ~300", rep.CertificateKB)
	}
	if rep.BandwidthMbps <= 0 {
		t.Fatal("no bandwidth recorded")
	}
	if rep.CPUCoreFraction <= 0 || rep.CPUCoreFraction > 1 {
		t.Fatalf("CPU fraction %v implausible", rep.CPUCoreFraction)
	}
	if rep.StorageKBPerBlockSharded <= 0 {
		t.Fatal("no sharded storage recorded")
	}
}

func TestTimeoutParametersValidated(t *testing.T) {
	rep := TimeoutValidation(DefaultScale())
	// §10.5: BA⋆ steps complete well under λ_step = 20s.
	if rep.StepTimes.Median >= 20*time.Second {
		t.Fatalf("median step time %v not under λ_step", rep.StepTimes.Median)
	}
	// Priority propagation well under λ_priority = 5s (paper: ~1s).
	if rep.PriorityPropagation.N == 0 || rep.PriorityPropagation.Median >= 5*time.Second {
		t.Fatalf("priority propagation %v not under λ_priority", rep.PriorityPropagation.Median)
	}
	// Most steps should not time out in the honest case.
	if rep.TimeoutFraction > 0.40 {
		t.Fatalf("timeout fraction %v too high", rep.TimeoutFraction)
	}
}

func TestStepCountsCommonCase(t *testing.T) {
	rep := StepCounts(DefaultScale(), 0)
	total := 0
	for _, c := range rep.Histogram {
		total += c
	}
	if total == 0 {
		t.Fatal("no rounds measured")
	}
	// With honest proposers, BA⋆ concludes in one binary step nearly
	// always (the paper's "4 interactive steps" common case).
	if rep.Histogram[1]*10 < total*9 {
		t.Fatalf("binary-step histogram not dominated by 1: %v", rep.Histogram)
	}
}

func TestCoinAttackAblation(t *testing.T) {
	res := RunCoinAblation(6, 42)
	t.Log(res.Summary())
	// Without the coin the adversary keeps the network split until
	// MaxSteps nearly always; with the coin it converges quickly.
	if res.StuckWithout < len(res.WithoutCoin)/2 {
		t.Fatalf("vote-splitting attack ineffective without coin: %d/%d stuck — harness broken?",
			res.StuckWithout, len(res.WithoutCoin))
	}
	if res.StuckWith > len(res.WithCoin)/3 {
		t.Fatalf("common coin failed to rescue: %d/%d stuck", res.StuckWith, len(res.WithCoin))
	}
	if mean(res.WithCoin) >= mean(res.WithoutCoin) {
		t.Fatalf("coin did not reduce steps: %.1f vs %.1f", mean(res.WithCoin), mean(res.WithoutCoin))
	}
}

func TestAblationPriorityGossip(t *testing.T) {
	res := AblatePriorityGossip(DefaultScale())
	if res.Ablated.Latency.N == 0 {
		t.Fatal("ablated run produced no data")
	}
	// Liveness must survive without the optimization; we expect the
	// block-proposal path to consume at least as much bandwidth.
	if res.ExtraBytesFraction < 0.9 {
		t.Fatalf("unexpected byte reduction without priority gossip: %.2f", res.ExtraBytesFraction)
	}
}

func TestAblationEquivocationPolicy(t *testing.T) {
	res := AblateEquivocationDiscard(DefaultScale())
	if res.Ablated.Latency.N == 0 || res.Baseline.Latency.N == 0 {
		t.Fatal("missing data")
	}
	// Both policies preserve agreement (checked inside); the discard
	// policy should not be slower than keep-first.
	if res.Baseline.Latency.Median > res.Ablated.Latency.Median*3 {
		t.Fatalf("discard-both dramatically slower: %v vs %v",
			res.Baseline.Latency.Median, res.Ablated.Latency.Median)
	}
}

func TestAblationVoteNext3(t *testing.T) {
	res := AblateVoteNext3(DefaultScale())
	if res.Ablated.Latency.N == 0 {
		t.Fatal("missing data")
	}
	// The protocol still works overall (agreement asserted inside); the
	// point of the bench is the latency/empty-rate comparison recorded
	// in EXPERIMENTS.md.
}

func TestPipelineFinalStep(t *testing.T) {
	res := PipelineThroughput(DefaultScale())
	t.Logf("baseline %v/round (final %.2f), pipelined %v/round (%.2fx, final %.2f)",
		res.BaselineRoundTime, res.BaselineFinalRate,
		res.PipelinedRoundTime, res.Speedup, res.PipelinedFinalRate)
	if res.Speedup <= 1.0 {
		t.Fatalf("pipelining did not speed rounds up: %.2fx", res.Speedup)
	}
	// Pipelining must not lose finality relative to the baseline (both
	// runs share committee draws via the seed).
	if res.PipelinedFinalRate < res.BaselineFinalRate-0.01 {
		t.Fatalf("pipelining lost finality: %.2f vs baseline %.2f",
			res.PipelinedFinalRate, res.BaselineFinalRate)
	}
}

func TestSyncFastRestartSubLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	// Short chains keep the test fast; the shape claim — snapshot sync
	// flat while full replay grows — shows up already at 8 vs 32.
	rep := SyncFastRestart(DefaultScale(), []uint64{8, 32}, 5, 0)
	if len(rep.Points) != 2 {
		t.Fatalf("missing points: %+v", rep.Points)
	}
	for _, p := range rep.Points {
		if !p.HeadsEqual {
			t.Fatalf("chain %d: snapshot path diverged from genesis replay", p.ChainLength)
		}
		if p.CheckpointRound == 0 || p.CheckpointRound%5 != 0 {
			t.Fatalf("chain %d: checkpoint at %d, off the 5-round grid", p.ChainLength, p.CheckpointRound)
		}
	}
	long := rep.Points[1]
	if long.SnapshotSyncMs >= long.FullReplayMs {
		t.Fatalf("snapshot sync (%.2fms) not cheaper than full replay (%.2fms) at chain %d",
			long.SnapshotSyncMs, long.FullReplayMs, long.ChainLength)
	}
}
