package experiments

import (
	"fmt"
	"time"

	"algorand/internal/sim"
	"algorand/internal/trace"
	"algorand/internal/txflow"
)

// PaperMBytesPerHour is the throughput the paper reports for its
// 10 MByte-block configuration (§10.2, Figure 8 discussion): ~750
// MByte/h of committed transactions, ≈125× Bitcoin.
const PaperMBytesPerHour = 750.0

// TxflowReport is one end-to-end run of the ingestion pipeline: a
// sustained submission stream pushed through admission, signature
// verification, the sharded mempool, batched gossip and block
// assembly, measured at the only point that matters — transactions
// actually committed by BA⋆.
type TxflowReport struct {
	Users      int     `json:"users"`
	Rounds     uint64  `json:"rounds"`
	OfferedTPS float64 `json:"offered_tx_per_sec"`

	// Virtual seconds from start to the end of the run.
	ElapsedSeconds float64 `json:"elapsed_virtual_seconds"`

	CommittedTxs  int     `json:"committed_txs"`
	CommittedTPS  float64 `json:"committed_tx_per_sec"`
	PayloadBytes  int64   `json:"committed_payload_bytes"`
	MBytesPerHour float64 `json:"committed_mbytes_per_hour"`

	// The paper's §10.2 reference point and our fraction of it. The
	// simulation commits real signed transactions at laptop scale, so
	// the absolute number is bounded by the offered load, not by the
	// protocol — FractionOfPaper contextualizes rather than competes.
	PaperMBytesPerHour float64 `json:"paper_mbytes_per_hour"`
	FractionOfPaper    float64 `json:"fraction_of_paper"`

	// Node 0's pipeline counters at the end of the run.
	Pipeline txflow.Stats `json:"pipeline_node0"`

	// Per-phase round-latency percentiles from the traced run, pooled
	// across every node. These are the honest before/after numbers for
	// the pipelining work queued in ROADMAP: block assembly and
	// commit→persist are synchronous compute, so under the virtual
	// clock they read as ~0 ms (the simulator charges wall time only
	// for modeled costs); BA⋆ steps are real virtual-time waits.
	Phases PhaseLatencies `json:"phase_latency_ms"`
}

// PhaseLatencies is the traced per-phase decomposition of a run's
// rounds (trace.Summary digests, in milliseconds).
type PhaseLatencies struct {
	BlockAssembly   trace.Summary `json:"block_assembly"`
	BAStep          trace.Summary `json:"ba_step"`
	CommitToPersist trace.Summary `json:"commit_to_persist"`
	Round           trace.Summary `json:"round"`
}

// clusterPhaseLatencies pools every node's trace spans into the
// benchmark's phase-latency digests.
func clusterPhaseLatencies(c *sim.Cluster) PhaseLatencies {
	var asm, step, c2p, rnd []time.Duration
	for i := range c.Nodes {
		tr := c.Tracer(i)
		asm = append(asm, tr.Durations(trace.PhaseAssemble)...)
		step = append(step, tr.Durations(trace.PhaseBAStep)...)
		c2p = append(c2p, tr.ChainedDurations(trace.PhaseCommit, trace.PhasePersist)...)
		rnd = append(rnd, tr.Durations(trace.PhaseRound)...)
	}
	return PhaseLatencies{
		BlockAssembly:   trace.Summarize(asm),
		BAStep:          trace.Summarize(step),
		CommitToPersist: trace.Summarize(c2p),
		Round:           trace.Summarize(rnd),
	}
}

// TxflowThroughput runs the ingest→commit experiment: n users, a
// seeded Workload submitting offeredTPS signed payments per virtual
// second spread across every node, and the full consensus stack
// committing them. Rounds beyond the scale default give the pipeline
// time to reach steady state.
func TxflowThroughput(scale Scale, offeredTPS float64) TxflowReport {
	n := scale.users(50)
	rounds := scale.Rounds + 3
	cfg := sim.DefaultConfig(n, rounds)
	cfg.Seed = 9
	cfg.WeightEach = 1 << 20 // fund the whole stream

	c := sim.NewCluster(cfg)
	c.Workload(offeredTPS, cfg.Seed)
	elapsed := c.Run()
	if err := c.AgreementCheck(); err != nil {
		panic(fmt.Sprintf("experiments: agreement violated under load: %v", err))
	}

	committed := c.CommittedTxCount(rounds)
	payload := c.CommittedPayloadBytes(rounds)
	rep := TxflowReport{
		Users:              n,
		Rounds:             rounds,
		OfferedTPS:         offeredTPS,
		ElapsedSeconds:     elapsed.Seconds(),
		CommittedTxs:       committed,
		PayloadBytes:       payload,
		PaperMBytesPerHour: PaperMBytesPerHour,
		Pipeline:           c.Nodes[0].TxFlow().Stats(),
		Phases:             clusterPhaseLatencies(c),
	}
	if elapsed > 0 {
		rep.CommittedTPS = float64(committed) / elapsed.Seconds()
		rep.MBytesPerHour = float64(payload) / (1 << 20) / (elapsed.Seconds() / time.Hour.Seconds())
		rep.FractionOfPaper = rep.MBytesPerHour / PaperMBytesPerHour
	}
	return rep
}
