package experiments

import (
	"fmt"
	"time"

	"algorand/internal/sim"
	"algorand/internal/txflow"
)

// PaperMBytesPerHour is the throughput the paper reports for its
// 10 MByte-block configuration (§10.2, Figure 8 discussion): ~750
// MByte/h of committed transactions, ≈125× Bitcoin.
const PaperMBytesPerHour = 750.0

// TxflowReport is one end-to-end run of the ingestion pipeline: a
// sustained submission stream pushed through admission, signature
// verification, the sharded mempool, batched gossip and block
// assembly, measured at the only point that matters — transactions
// actually committed by BA⋆.
type TxflowReport struct {
	Users      int     `json:"users"`
	Rounds     uint64  `json:"rounds"`
	OfferedTPS float64 `json:"offered_tx_per_sec"`

	// Virtual seconds from start to the end of the run.
	ElapsedSeconds float64 `json:"elapsed_virtual_seconds"`

	CommittedTxs  int     `json:"committed_txs"`
	CommittedTPS  float64 `json:"committed_tx_per_sec"`
	PayloadBytes  int64   `json:"committed_payload_bytes"`
	MBytesPerHour float64 `json:"committed_mbytes_per_hour"`

	// The paper's §10.2 reference point and our fraction of it. The
	// simulation commits real signed transactions at laptop scale, so
	// the absolute number is bounded by the offered load, not by the
	// protocol — FractionOfPaper contextualizes rather than competes.
	PaperMBytesPerHour float64 `json:"paper_mbytes_per_hour"`
	FractionOfPaper    float64 `json:"fraction_of_paper"`

	// Node 0's pipeline counters at the end of the run.
	Pipeline txflow.Stats `json:"pipeline_node0"`
}

// TxflowThroughput runs the ingest→commit experiment: n users, a
// seeded Workload submitting offeredTPS signed payments per virtual
// second spread across every node, and the full consensus stack
// committing them. Rounds beyond the scale default give the pipeline
// time to reach steady state.
func TxflowThroughput(scale Scale, offeredTPS float64) TxflowReport {
	n := scale.users(50)
	rounds := scale.Rounds + 3
	cfg := sim.DefaultConfig(n, rounds)
	cfg.Seed = 9
	cfg.WeightEach = 1 << 20 // fund the whole stream

	c := sim.NewCluster(cfg)
	c.Workload(offeredTPS, cfg.Seed)
	elapsed := c.Run()
	if err := c.AgreementCheck(); err != nil {
		panic(fmt.Sprintf("experiments: agreement violated under load: %v", err))
	}

	committed := c.CommittedTxCount(rounds)
	payload := c.CommittedPayloadBytes(rounds)
	rep := TxflowReport{
		Users:              n,
		Rounds:             rounds,
		OfferedTPS:         offeredTPS,
		ElapsedSeconds:     elapsed.Seconds(),
		CommittedTxs:       committed,
		PayloadBytes:       payload,
		PaperMBytesPerHour: PaperMBytesPerHour,
		Pipeline:           c.Nodes[0].TxFlow().Stats(),
	}
	if elapsed > 0 {
		rep.CommittedTPS = float64(committed) / elapsed.Seconds()
		rep.MBytesPerHour = float64(payload) / (1 << 20) / (elapsed.Seconds() / time.Hour.Seconds())
		rep.FractionOfPaper = rep.MBytesPerHour / PaperMBytesPerHour
	}
	return rep
}
