// Package experiments regenerates every table and figure of the
// paper's evaluation (§10) plus the Figure 3 analysis, at simulation
// scale. Each function returns structured rows that bench_test.go
// reports and cmd/experiments prints as TSV; EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"time"

	"algorand/internal/baseline"
	"algorand/internal/committee"
	"algorand/internal/ledger"
	"algorand/internal/sim"
)

// Scale is a global knob for experiment sizes: 1.0 is the default CI
// scale; cmd/experiments can raise it for bigger runs.
type Scale struct {
	// Users multiplies the default user counts.
	Users float64
	// Rounds per run.
	Rounds uint64
}

// DefaultScale runs in seconds per experiment.
func DefaultScale() Scale { return Scale{Users: 1, Rounds: 3} }

func (s Scale) users(base int) int {
	n := int(float64(base) * s.Users)
	if n < 10 {
		n = 10
	}
	return n
}

// --- Figure 3 -------------------------------------------------------------

// Figure3 computes the committee-size-vs-honesty curve at the paper's
// 5·10⁻⁹ violation bound (§7.5).
func Figure3(fractions []float64) []committee.Figure3Point {
	return committee.Figure3(fractions)
}

// DefaultFigure3Fractions mirrors the x-axis of the paper's Figure 3.
func DefaultFigure3Fractions() []float64 {
	return []float64{0.76, 0.78, 0.80, 0.82, 0.84, 0.86, 0.88, 0.90}
}

// --- Figure 5: latency vs users -------------------------------------------

// LatencyPoint is one x-position of Figures 5, 6 and 8.
type LatencyPoint struct {
	Users     int
	Latency   sim.Percentiles
	FinalRate float64
	EmptyRate float64
}

// runLatency builds a cluster, runs it, and summarizes round latency
// over all measured rounds.
func runLatency(cfg sim.Config) LatencyPoint {
	c := sim.NewCluster(cfg)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		panic(fmt.Sprintf("experiments: agreement violated: %v", err))
	}
	final, empty := c.FinalityRate()
	return LatencyPoint{
		Users:     cfg.N,
		Latency:   sim.Summarize(c.AllRoundLatencies(1, cfg.Rounds)),
		FinalRate: final,
		EmptyRate: empty,
	}
}

// Figure5 measures round latency as the number of users grows (paper:
// 5,000-50,000 users, near-constant ≈22s). Committee sizes scale with
// the user count (sim.DefaultConfig), as the paper's parameters do
// relative to its population.
func Figure5(scale Scale, userCounts []int) []LatencyPoint {
	var out []LatencyPoint
	for _, base := range userCounts {
		n := scale.users(base)
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = int64(n)
		out = append(out, runLatency(cfg))
	}
	return out
}

// DefaultFigure5Users are the default x positions (scaled-down versions
// of the paper's 5k..50k sweep).
func DefaultFigure5Users() []int { return []int{50, 100, 200, 400} }

// --- Figure 6: shared-VM bottleneck ---------------------------------------

// Figure6 repeats the latency sweep with many users sharing one
// virtual machine NIC (the paper runs 500 processes/VM and observes ~4×
// the latency of the dedicated-bandwidth runs, flat in user count).
func Figure6(scale Scale, userCounts []int, procsPerVM int) []LatencyPoint {
	var out []LatencyPoint
	for _, base := range userCounts {
		n := scale.users(base)
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = int64(n)
		cfg.Net.ProcsPerVM = procsPerVM
		cfg.Net.VMBps = cfg.Net.UplinkBps // one 20 Mbit/s NIC shared by the VM
		// The paper raises λ_step to 1 minute for this experiment.
		cfg.Params.LambdaStep = time.Minute
		out = append(out, runLatency(cfg))
	}
	return out
}

// --- Figure 7: latency breakdown vs block size ----------------------------

// Fig7Point is one bar of Figure 7.
type Fig7Point struct {
	BlockSize int
	Phases    sim.PhaseBreakdown
}

// Figure7 sweeps the block size and reports the round's phase
// decomposition: block proposal grows with size; BA⋆ stays flat.
func Figure7(scale Scale, blockSizes []int) []Fig7Point {
	var out []Fig7Point
	n := scale.users(100)
	for _, bs := range blockSizes {
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = int64(bs)
		cfg.Params.BlockSize = bs
		c := sim.NewCluster(cfg)
		c.Run()
		if err := c.AgreementCheck(); err != nil {
			panic(fmt.Sprintf("experiments: agreement violated: %v", err))
		}
		// Pool phases over measured rounds: take the middle round as
		// representative (round 1 includes warmup effects).
		round := cfg.Rounds/2 + 1
		out = append(out, Fig7Point{BlockSize: bs, Phases: c.Phases(round)})
	}
	return out
}

// DefaultFigure7Sizes mirrors the paper's x axis, scaled down one step
// at the top (10 MB blocks work but take longer to simulate).
func DefaultFigure7Sizes() []int {
	return []int{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
}

// --- Figure 8: malicious users --------------------------------------------

// Figure8 runs the §10.4 attack (equivocating proposers + double-voting
// committee members) with a varying fraction of malicious users.
func Figure8(scale Scale, fractions []float64) []LatencyPoint {
	var out []LatencyPoint
	n := scale.users(100)
	for _, f := range fractions {
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = int64(1000 * f)
		c := sim.NewCluster(cfg)
		c.MakeEquivocatingProposers(int(f * float64(n)))
		c.Run()
		if err := c.AgreementCheck(); err != nil {
			panic(fmt.Sprintf("experiments: agreement violated with %.0f%% malicious: %v", 100*f, err))
		}
		final, empty := c.FinalityRate()
		out = append(out, LatencyPoint{
			Users:     int(f * 100), // x axis is percentage here
			Latency:   sim.Summarize(c.AllRoundLatencies(1, cfg.Rounds)),
			FinalRate: final,
			EmptyRate: empty,
		})
	}
	return out
}

// DefaultFigure8Fractions mirrors the paper's 0-20% sweep.
func DefaultFigure8Fractions() []float64 { return []float64{0, 0.05, 0.10, 0.15, 0.20} }

// --- Throughput vs Bitcoin (§10.2) ----------------------------------------

// ThroughputRow compares systems.
type ThroughputRow struct {
	System            string
	BlockSize         int
	MBytesPerHour     float64
	ConfLatencyMedian time.Duration
}

// ThroughputVsBitcoin measures Algorand's committed payload per hour at
// several block sizes and the Nakamoto baseline at Bitcoin parameters.
// The paper reports 327 MB/h at 2 MB blocks and ~750 MB/h at 10 MB,
// versus Bitcoin's 6 MB/h — the "125×" headline.
func ThroughputVsBitcoin(scale Scale, algorandSizes []int) []ThroughputRow {
	var rows []ThroughputRow
	n := scale.users(100)
	for _, bs := range algorandSizes {
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = int64(bs) + 7
		cfg.Params.BlockSize = bs
		c := sim.NewCluster(cfg)
		c.Run()
		if err := c.AgreementCheck(); err != nil {
			panic(fmt.Sprintf("experiments: agreement violated: %v", err))
		}
		// Steady-state round time = median completion of measured rounds;
		// throughput = blocksize / round time (final step could be
		// pipelined, which the paper notes but does not implement either).
		lat := sim.Summarize(c.AllRoundLatencies(1, cfg.Rounds))
		payload := c.CommittedPayloadBytes(cfg.Rounds)
		perRound := float64(payload) / float64(cfg.Rounds)
		mbPerHour := perRound / (1 << 20) * (float64(time.Hour) / float64(lat.Median))
		rows = append(rows, ThroughputRow{
			System:            "algorand",
			BlockSize:         bs,
			MBytesPerHour:     mbPerHour,
			ConfLatencyMedian: lat.Median,
		})
	}
	btc := baseline.Run(baseline.Bitcoin(), 30*24*time.Hour)
	rows = append(rows, ThroughputRow{
		System:            "bitcoin",
		BlockSize:         baseline.Bitcoin().BlockSize,
		MBytesPerHour:     btc.ThroughputBytesPerHour / (1 << 20),
		ConfLatencyMedian: btc.ConfLatencyMedian,
	})
	return rows
}

// --- Final-step pipelining (§10.2 optimization) ----------------------------

// PipelineResult compares round rate with and without overlapping the
// final confirmation step with the next round.
type PipelineResult struct {
	BaselineRoundTime  time.Duration // median wall time per round
	PipelinedRoundTime time.Duration
	// Speedup = baseline/pipelined round time.
	Speedup float64
	// Final rates: pipelining must not lose finality relative to the
	// baseline (both runs share a seed, so committee draws match).
	BaselineFinalRate  float64
	PipelinedFinalRate float64
}

// PipelineThroughput measures the §10.2 pipelining optimization: "the
// throughput can be further increased by pipelining the final step,
// which takes about 6 seconds, with the next round of Algorand." The
// prototype in the paper does not implement it; this repository does.
func PipelineThroughput(scale Scale) PipelineResult {
	n := scale.users(100)
	measure := func(pipeline bool) (time.Duration, float64) {
		cfg := sim.DefaultConfig(n, scale.Rounds)
		cfg.Seed = 31
		cfg.PipelineFinalStep = pipeline
		c := sim.NewCluster(cfg)
		c.Run()
		if err := c.AgreementCheck(); err != nil {
			panic(fmt.Sprintf("experiments: agreement violated: %v", err))
		}
		// Round rate: per-node time from round 1 start to last round end,
		// divided by rounds. Completion times include the final step in
		// the baseline but not in the pipelined runs — which is the point.
		var per []time.Duration
		for _, nd := range c.Nodes {
			if len(nd.Stats) == 0 {
				continue
			}
			span := nd.Stats[len(nd.Stats)-1].End - nd.Stats[0].Start
			per = append(per, span/time.Duration(len(nd.Stats)))
		}
		final, _ := c.FinalityRate()
		return sim.Summarize(per).Median, final
	}
	base, baseFinal := measure(false)
	piped, finalRate := measure(true)
	return PipelineResult{
		BaselineRoundTime:  base,
		PipelinedRoundTime: piped,
		Speedup:            float64(base) / float64(piped),
		BaselineFinalRate:  baseFinal,
		PipelinedFinalRate: finalRate,
	}
}

// --- Costs (§10.3) ---------------------------------------------------------

// CostsReport aggregates the §10.3 cost measurements.
type CostsReport struct {
	// CPUCoreFraction is the mean fraction of one core a user burns
	// (paper: ~6.5% per user process).
	CPUCoreFraction float64
	// BandwidthMbps is the mean per-user send rate (paper: ~10 Mbit/s
	// at 50k users with 1 MB blocks).
	BandwidthMbps float64
	// CertificateKB is the certificate size (paper: ~300 KB) — measured
	// at full paper committee parameters, independent of cluster size.
	CertificateKB float64
	// StorageKBPerBlockSharded is each user's storage per 1 MB block
	// with 10-way sharding (paper: ~130 KB).
	StorageKBPerBlockSharded float64
}

// Costs measures CPU, bandwidth and storage costs on a standard run.
func Costs(scale Scale) CostsReport {
	n := scale.users(100)
	cfg := sim.DefaultConfig(n, scale.Rounds)
	cfg.ShardCount = 10
	c := sim.NewCluster(cfg)
	end := c.Run()
	if err := c.AgreementCheck(); err != nil {
		panic(fmt.Sprintf("experiments: agreement violated: %v", err))
	}

	var cpu time.Duration
	var sentBits float64
	for i := range c.Nodes {
		st := c.Net.NodeStats(i)
		cpu += st.CPUUsed
		sentBits += float64(st.BytesSent * 8)
	}
	cpuFrac := float64(cpu) / float64(end) / float64(n)
	bwMbps := sentBits / end.Seconds() / float64(n) / 1e6

	// Certificate size at the paper's full committee parameters: the
	// threshold vote count times the wire vote size (measured
	// structurally; see ledger.Certificate.WireSize).
	paperVotes := 1371 // ⌊0.685·2000⌋+1
	certKB := float64(ledger.CertWireSize(paperVotes)) / 1024

	// Sharded storage per block: every 10th (block + certificate).
	var storage int64
	for _, nd := range c.Nodes {
		storage += nd.Store().Bytes
	}
	blocks := float64(cfg.Rounds)
	perUserPerBlockKB := float64(storage) / float64(n) / blocks / 1024

	return CostsReport{
		CPUCoreFraction:          cpuFrac,
		BandwidthMbps:            bwMbps,
		CertificateKB:            certKB,
		StorageKBPerBlockSharded: perUserPerBlockKB,
	}
}

// --- Timeout validation (§10.5) --------------------------------------------

// TimeoutReport validates the Figure 4 timeout parameters against
// measured behavior.
type TimeoutReport struct {
	// StepTimes summarizes non-timeout CountVotes durations; the paper
	// checks these sit well under λ_step = 20s.
	StepTimes sim.Percentiles
	// StepSpread is p75-p25 of BA⋆ completion, checked against
	// λ_stepvar = 5s.
	StepSpread time.Duration
	// PriorityPropagation summarizes how long the winning priority took
	// to arrive (paper: ~1s, well under λ_priority = 5s).
	PriorityPropagation sim.Percentiles
	// TimeoutFraction is the fraction of steps that hit their deadline.
	TimeoutFraction float64
}

// TimeoutValidation reproduces the §10.5 measurements.
func TimeoutValidation(scale Scale) TimeoutReport {
	n := scale.users(100)
	cfg := sim.DefaultConfig(n, scale.Rounds)
	c := sim.NewCluster(cfg)
	c.Run()

	var steps []time.Duration
	var completions []time.Duration
	var prio []time.Duration
	timeouts, total := 0, 0
	for _, nd := range c.Nodes {
		for _, st := range nd.StepTimes {
			total++
			if st.TimedOut {
				timeouts++
				continue
			}
			steps = append(steps, st.Took)
		}
		for _, rs := range nd.Stats {
			if rs.End > 0 {
				completions = append(completions, rs.End-rs.Start)
				if rs.PriorityLearned > rs.Start {
					prio = append(prio, rs.PriorityLearned-rs.Start)
				}
			}
		}
	}
	comp := sim.Summarize(completions)
	frac := 0.0
	if total > 0 {
		frac = float64(timeouts) / float64(total)
	}
	return TimeoutReport{
		StepTimes:           sim.Summarize(steps),
		StepSpread:          comp.P75 - comp.P25,
		PriorityPropagation: sim.Summarize(prio),
		TimeoutFraction:     frac,
	}
}

// --- BA⋆ step counts (§4/§7) -----------------------------------------------

// StepCountReport is the distribution of BinaryBA⋆ step counts.
type StepCountReport struct {
	// Histogram[k] counts rounds concluded in k binary steps.
	Histogram map[int]int
	// FinalRate is the fraction of rounds that reached final consensus.
	FinalRate float64
}

// StepCounts measures the common-case efficiency claim: with an honest
// highest-priority proposer BA⋆ concludes in one binary step (4
// interactive steps total counting the two reduction steps and the
// final confirmation).
func StepCounts(scale Scale, maliciousFrac float64) StepCountReport {
	n := scale.users(100)
	cfg := sim.DefaultConfig(n, scale.Rounds)
	c := sim.NewCluster(cfg)
	if maliciousFrac > 0 {
		c.MakeEquivocatingProposers(int(maliciousFrac * float64(n)))
	}
	c.Run()
	hist := make(map[int]int)
	finals, total := 0, 0
	for _, nd := range c.Nodes {
		for _, st := range nd.Stats {
			if st.End == 0 {
				continue
			}
			hist[st.BinarySteps]++
			total++
			if st.Final {
				finals++
			}
		}
	}
	fr := 0.0
	if total > 0 {
		fr = float64(finals) / float64(total)
	}
	return StepCountReport{Histogram: hist, FinalRate: fr}
}
