package node_test

import (
	"testing"
	"time"

	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/node"
	"algorand/internal/sim"
	"algorand/internal/vtime"
)

// fastParams shrinks the timeouts so stall-and-recover scenarios run in
// little virtual time.
func fastParams(c *sim.Config) {
	c.Params.LambdaPriority = time.Second
	c.Params.LambdaStepVar = time.Second
	c.Params.LambdaBlock = 5 * time.Second
	c.Params.LambdaStep = 2 * time.Second
	c.Params.MaxSteps = 8
	c.Params.BlockSize = 4096
}

func TestNodeBasicRounds(t *testing.T) {
	cfg := sim.DefaultConfig(20, 4)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	n := c.Nodes[0]
	if n.Ledger().ChainLength() != 4 {
		t.Fatalf("chain length %d, want 4", n.Ledger().ChainLength())
	}
	if len(n.Stats) != 4 {
		t.Fatalf("stats for %d rounds", len(n.Stats))
	}
	for _, st := range n.Stats {
		if st.End <= st.Start || st.BinaryDone < st.ProposalDone {
			t.Fatalf("inconsistent timeline: %+v", st)
		}
	}
}

// TestForkRecovery exercises §8.2 end to end: a partition with a
// weakened step threshold lets the two halves commit *tentative* forks;
// after healing, nodes detect alien votes and the recovery protocol
// converges everyone onto one fork. Final consensus must never conflict.
func TestForkRecovery(t *testing.T) {
	cfg := sim.DefaultConfig(20, 0) // run until horizon
	fastParams(&cfg)
	// Weaken only the ordinary-step threshold so each half can commit
	// tentative blocks during the partition; the final-step threshold
	// stays at the paper's value, so no forked block can become final.
	cfg.Params.TStep = 0.40
	cfg.RecoveryInterval = 2 * time.Minute
	cfg.Horizon = 8 * time.Minute
	c := sim.NewCluster(cfg)
	c.SplitWorld(0, 60) // partition for the first virtual minute
	// Once the network heals, restore the paper's safe threshold so the
	// weakened-TStep fork generator stops firing and recovery can stick.
	c.Sim.After(70*time.Second, func() {
		honest := cfg.Params
		honest.TStep = 0.685
		for _, n := range c.Nodes {
			n.SetParams(honest)
		}
	})

	c.Run()

	// 1. Forks must actually have formed (the test premise).
	forked := false
	seen := map[uint64]crypto.Digest{}
	for _, n := range c.Nodes {
		for _, st := range n.Stats {
			if prev, ok := seen[st.Round]; ok && prev != st.Value {
				forked = true
			} else {
				seen[st.Round] = st.Value
			}
		}
	}
	if !forked {
		t.Fatal("partition did not produce forks; test premise broken")
	}

	// 2. No two nodes may have *final* consensus on different blocks in
	// the same round (safety, §8.2).
	finals := map[uint64]crypto.Digest{}
	for _, n := range c.Nodes {
		for _, st := range n.Stats {
			if !st.Final {
				continue
			}
			if prev, ok := finals[st.Round]; ok && prev != st.Value {
				t.Fatalf("FINAL fork at round %d", st.Round)
			}
			finals[st.Round] = st.Value
		}
	}

	// 3. Recovery must have run on most nodes.
	recovered := 0
	for _, n := range c.Nodes {
		if n.Recovered > 0 {
			recovered++
		}
	}
	if recovered < len(c.Nodes)/2 {
		t.Fatalf("recovery ran on only %d/%d nodes", recovered, len(c.Nodes))
	}

	// 4. After recovery, heads must have converged onto one chain: every
	// node's head is on the chain of the longest head.
	var best *ledger.Ledger
	for _, n := range c.Nodes {
		if best == nil || n.Ledger().ChainLength() > best.ChainLength() {
			best = n.Ledger()
		}
	}
	converged := 0
	for _, n := range c.Nodes {
		l := n.Ledger()
		if b, ok := best.BlockAt(l.ChainLength()); ok && b.Hash() == l.HeadHash() {
			converged++
		}
	}
	if converged < len(c.Nodes)*8/10 {
		t.Fatalf("only %d/%d nodes converged after recovery", converged, len(c.Nodes))
	}
}

// TestStallRecovery: a full partition (paper thresholds) stalls BA⋆
// entirely; after healing and the recovery checkpoint, progress resumes.
func TestStallRecovery(t *testing.T) {
	cfg := sim.DefaultConfig(16, 0)
	fastParams(&cfg)
	cfg.RecoveryInterval = 90 * time.Second
	cfg.Horizon = 8 * time.Minute
	c := sim.NewCluster(cfg)
	c.SplitWorld(0, 45)

	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	// Progress must resume: chains should be well past genesis.
	short := 0
	for _, n := range c.Nodes {
		if n.Ledger().ChainLength() < 2 {
			short++
		}
	}
	if short > len(c.Nodes)/4 {
		t.Fatalf("%d/%d nodes made no progress after heal", short, len(c.Nodes))
	}
}

func TestCatchUpFromClusterArchive(t *testing.T) {
	cfg := sim.DefaultConfig(20, 3)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}

	// Collect blocks+certs from node 0's archive and bootstrap a fresh
	// user from genesis (§8.3).
	src := c.Nodes[0]
	var blocks []*ledger.Block
	var certs []*ledger.Certificate
	for r := uint64(1); r <= src.Ledger().ChainLength(); r++ {
		b, ok := src.Store().Block(r)
		if !ok {
			t.Fatalf("round %d missing from archive", r)
		}
		cert, ok := src.Store().Cert(r)
		if !ok {
			t.Fatalf("round %d missing certificate", r)
		}
		blocks = append(blocks, b)
		certs = append(certs, cert)
	}
	cp := ledger.CommitteeParams{
		TauStep:        cfg.Params.TauStep,
		StepThreshold:  cfg.Params.StepThreshold(),
		TauFinal:       cfg.Params.TauFinal,
		FinalThreshold: cfg.Params.FinalThreshold(),
	}
	l, err := ledger.CatchUp(c.Provider, cfg.LedgerCfg, c.Genesis, c.Seed0, blocks, certs, cp)
	if err != nil {
		t.Fatalf("catch-up: %v", err)
	}
	if l.HeadHash() != src.Ledger().HeadHash() {
		t.Fatal("bootstrapped user reached a different head")
	}
}

func TestEmptyRoundsWhenProposersSilent(t *testing.T) {
	// If every selected proposer withholds its block, rounds still
	// complete — with empty blocks (the §6 liveness fallback).
	cfg := sim.DefaultConfig(16, 2)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)
	for _, n := range c.Nodes {
		n.Misbehave = func(*node.Node, *blockprop.Proposal) {} // selected, says nothing
	}
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	_, empty := c.FinalityRate()
	if empty < 0.99 {
		t.Fatalf("empty-block rate %.2f, want 1.0 with silent proposers", empty)
	}
	if c.Nodes[0].Ledger().ChainLength() != 2 {
		t.Fatalf("chain did not grow: %d", c.Nodes[0].Ledger().ChainLength())
	}
}

// TestObserverSyncsOverNetwork: a brand-new user joins the gossip
// network after several rounds and bootstraps its ledger entirely over
// the network via ChainRequest/ChainReply (§8.3), validating every
// block against its certificate.
func TestObserverSyncsOverNetwork(t *testing.T) {
	cfg := sim.DefaultConfig(20, 4)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)

	// The observer occupies network slot 20: build the network with one
	// extra endpoint.
	// (Cluster sizes the network to N, so instead attach the observer to
	// an existing slot after the run completes — slot reuse is fine since
	// the original node has stopped.)
	c.Run()
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}

	// Fresh node with an empty ledger on slot 0 (taking over its
	// endpoint and handler).
	obsID := 0
	observer := node.New(obsID, c.Sim, c.Net, c.Provider,
		c.Identity(obsID), node.Config{
			Params:    cfg.Params,
			LedgerCfg: cfg.LedgerCfg,
		}, c.Genesis, c.Seed0)

	var gotRounds uint64
	var syncErr error
	synced := false
	observer.StartObserver(c.Sim.Now()+2*time.Minute, func(n uint64, err error) {
		gotRounds, syncErr = n, err
		synced = true
	})
	c.Sim.Run(c.Sim.Now() + 3*time.Minute)

	if !synced {
		t.Fatal("observer sync never completed")
	}
	if syncErr != nil {
		t.Fatalf("observer sync error: %v", syncErr)
	}
	ref := c.Nodes[1].Ledger()
	if gotRounds != ref.ChainLength() {
		t.Fatalf("observer reached round %d, network at %d", gotRounds, ref.ChainLength())
	}
	if observer.Ledger().HeadHash() != ref.HeadHash() {
		t.Fatal("observer head differs from the network's")
	}
}

// TestObserverRejectsTamperedReply: catch-up must fail closed on a
// forged chain.
func TestObserverRejectsTamperedReply(t *testing.T) {
	cfg := sim.DefaultConfig(20, 3)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)
	c.Run()

	src := c.Nodes[1]
	var blocks []*ledger.Block
	var certs []*ledger.Certificate
	for r := uint64(1); r <= src.Ledger().ChainLength(); r++ {
		b, _ := src.Store().Block(r)
		cert, _ := src.Store().Cert(r)
		blocks = append(blocks, b)
		certs = append(certs, cert)
	}
	// Tamper: alter round 1's block content. Its own certificate no
	// longer matches the forged hash, and the round-2 PrevHash link —
	// which could otherwise validate an uncertified block transitively —
	// breaks too, so validation must reject the run either way.
	if len(blocks) < 2 {
		t.Skip("need >=2 rounds")
	}
	forged := *blocks[0]
	forged.Timestamp++
	blocks[0] = &forged

	observer := node.New(0, c.Sim, c.Net, c.Provider, c.Identity(0), node.Config{
		Params:    cfg.Params,
		LedgerCfg: cfg.LedgerCfg,
	}, c.Genesis, c.Seed0)
	// Feed the forged reply directly through the handler path.
	var syncErr error
	done := false
	c.Sim.Spawn("tampered-sync", func(p *vtime.Proc) {
		_, syncErr = observer.ApplyForgedReplyForTest(blocks, certs)
		done = true
	})
	c.Sim.Run(c.Sim.Now() + time.Minute)
	if !done {
		t.Fatal("did not run")
	}
	if syncErr == nil {
		t.Fatal("forged certificate accepted during catch-up")
	}
}
