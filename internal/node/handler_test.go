package node

// White-box tests of the node's gossip message handling: verdicts,
// pull-based block fetching, pending-round buffering.

import (
	"testing"
	"time"

	"algorand/internal/agreement"
	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/params"
	"algorand/internal/sortition"
	"algorand/internal/vtime"
)

// handlerRig is a two-node network where node 0 is the unit under test.
type handlerRig struct {
	sim      *vtime.Sim
	net      *network.Network
	provider crypto.Provider
	ids      []crypto.Identity
	node     *Node
	ctx      *agreement.Context
}

func newHandlerRig(t *testing.T, n int) *handlerRig {
	r := &handlerRig{
		sim:      vtime.New(),
		provider: crypto.NewFast(),
	}
	r.net = network.New(r.sim, network.DefaultConfig(), n)
	genesis := make(map[crypto.PublicKey]uint64)
	for i := 0; i < n; i++ {
		id := r.provider.NewIdentity(crypto.SeedFromUint64(uint64(i)))
		r.ids = append(r.ids, id)
		genesis[id.PublicKey()] = 100
	}
	prm := params.Default()
	prm.TauProposer = 200 // everyone proposes (deterministic tests)
	prm.TauStep = 200
	prm.TauFinal = 200
	cfg := Config{Params: prm, LedgerCfg: ledger.DefaultConfig()}
	r.node = New(0, r.sim, r.net, r.provider, r.ids[0], cfg, genesis, crypto.HashBytes("g"))
	r.ctx = agreement.NewContext(r.node.Ledger())
	r.node.setContext(r.ctx)
	return r
}

// makeProposal builds a valid proposal for the rig's round 1, proposed
// by identity idx.
func (r *handlerRig) makeProposal(t *testing.T, idx int) *blockprop.Proposal {
	id := r.ids[idx]
	out, proof := id.VRFProve(ledger.SeedAlpha(r.node.Ledger().PrevSeed(), 1))
	block := &ledger.Block{
		Round:     1,
		PrevHash:  r.node.Ledger().HeadHash(),
		Timestamp: time.Second,
		Seed:      ledger.SeedFromVRF(out),
		SeedProof: proof,
		Proposer:  id.PublicKey(),
	}
	prop := blockprop.Propose(id, sortition.RoleProposer, r.ctx.Seed, 1,
		r.node.cfg.Params.TauProposer, 100, r.ctx.TotalWeight, block)
	if prop == nil {
		t.Fatal("identity not selected; raise tau")
	}
	return prop
}

// makeVote builds a valid committee vote for (round, step) by identity idx.
func (r *handlerRig) makeVote(t *testing.T, idx int, round, step uint64, value crypto.Digest) *ledger.Vote {
	id := r.ids[idx]
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: round, Step: step}
	res := sortition.Execute(id, r.ctx.Seed[:], role, r.node.cfg.Params.TauStep, 100, r.ctx.TotalWeight)
	if res.J == 0 {
		t.Fatal("identity not on committee; raise tau")
	}
	v := &ledger.Vote{
		Sender:    id.PublicKey(),
		Round:     round,
		Step:      step,
		SortHash:  res.Output,
		SortProof: res.Proof,
		PrevHash:  r.ctx.LastBlockHash,
		Value:     value,
	}
	v.Sign(id)
	return v
}

func TestHandlerVoteVerdicts(t *testing.T) {
	r := newHandlerRig(t, 5)

	good := r.makeVote(t, 1, 1, agreement.StepReduction1, crypto.HashBytes("v"))
	if v := r.node.handleMessage(1, &VoteMsg{Vote: *good}); !v.Relay {
		t.Fatal("valid vote not relayed")
	}
	if r.node.voteInbox(1, agreement.StepReduction1).Len() != 1 {
		t.Fatal("valid vote not enqueued")
	}

	// Tampered signature: no relay, no enqueue.
	bad := *good
	bad.Value = crypto.HashBytes("other")
	if v := r.node.handleMessage(1, &VoteMsg{Vote: bad}); v.Relay {
		t.Fatal("tampered vote relayed")
	}

	// Wrong-chain vote counts as fork evidence, not a relayable message.
	alien := r.makeVote(t, 2, 1, agreement.StepReduction1, crypto.HashBytes("v"))
	alien.PrevHash = crypto.Digest{9}
	alien.Sign(r.ids[2])
	before := r.node.alienVotes
	if v := r.node.handleMessage(2, &VoteMsg{Vote: *alien}); v.Relay {
		t.Fatal("alien vote relayed")
	}
	if r.node.alienVotes != before+1 {
		t.Fatal("alien vote not counted as fork evidence")
	}

	// Next-round votes are buffered for later validation.
	r2 := r.ctx.Round + 1
	future := &ledger.Vote{Sender: r.ids[3].PublicKey(), Round: r2, Step: 1}
	if v := r.node.handleMessage(3, &VoteMsg{Vote: *future}); v.Relay {
		t.Fatal("future vote relayed before validation")
	}
	if len(r.node.pendingMsgs[r2]) != 1 {
		t.Fatal("future vote not buffered")
	}
}

func TestHandlerAnnounceTriggersFetch(t *testing.T) {
	r := newHandlerRig(t, 5)
	prop := r.makeProposal(t, 1)

	// Node 1 holds the block; its announce should make node 0 request it
	// and, once the transfer arrives, re-announce.
	requests := 0
	transfers := 0
	r.net.SetHandler(1, network.HandlerFunc(func(from int, m network.Message) network.Verdict {
		if req, ok := m.(*BlockRequest); ok {
			requests++
			r.net.Unicast(1, req.Requester, &BlockGossip{M: prop.Block, Recipient: req.Requester})
		}
		return network.Verdict{}
	}))
	// Count announces reaching node 2 from node 0 (the re-announce).
	r.net.SetHandler(2, network.HandlerFunc(func(from int, m network.Message) network.Verdict {
		if _, ok := m.(*BlockAnnounce); ok && from == 0 {
			transfers++
		}
		return network.Verdict{}
	}))

	r.sim.Spawn("driver", func(p *vtime.Proc) {
		r.net.Unicast(1, 0, &BlockAnnounce{M: prop.Priority, Announcer: 1})
		p.Sleep(10 * time.Second)
	})
	r.sim.Run(time.Minute)

	if requests != 1 {
		t.Fatalf("announcer served %d requests, want 1", requests)
	}
	if _, have := r.node.blockMsgs[prop.Block.Block.Hash()]; !have {
		t.Fatal("block body not stored after transfer")
	}
	if _, ok := r.node.Ledger().BlockOfHash(prop.Block.Block.Hash()); !ok {
		t.Fatal("block not registered as proposal")
	}
}

func TestHandlerDoesNotRefetchHeldBlock(t *testing.T) {
	r := newHandlerRig(t, 5)
	prop := r.makeProposal(t, 1)
	r.node.storeBlockMsg(&prop.Block)

	requests := 0
	r.net.SetHandler(1, network.HandlerFunc(func(from int, m network.Message) network.Verdict {
		if _, ok := m.(*BlockRequest); ok {
			requests++
		}
		return network.Verdict{}
	}))
	r.sim.Spawn("driver", func(p *vtime.Proc) {
		r.net.Unicast(1, 0, &BlockAnnounce{M: prop.Priority, Announcer: 1})
		p.Sleep(5 * time.Second)
	})
	r.sim.Run(time.Minute)
	if requests != 0 {
		t.Fatalf("node refetched a block it already holds (%d requests)", requests)
	}
}

func TestHandlerServesBlockRequests(t *testing.T) {
	r := newHandlerRig(t, 5)
	prop := r.makeProposal(t, 1)
	r.node.storeBlockMsg(&prop.Block)

	served := 0
	r.net.SetHandler(3, network.HandlerFunc(func(from int, m network.Message) network.Verdict {
		if bg, ok := m.(*BlockGossip); ok {
			if bg.M.Block.Hash() != prop.Block.Block.Hash() {
				t.Error("served wrong block")
			}
			served++
		}
		return network.Verdict{}
	}))
	r.sim.Spawn("driver", func(p *vtime.Proc) {
		r.net.Unicast(3, 0, &BlockRequest{Hash: prop.Block.Block.Hash(), Requester: 3, Nonce: 1})
		// Requests for unknown blocks are ignored.
		r.net.Unicast(3, 0, &BlockRequest{Hash: crypto.Digest{42}, Requester: 3, Nonce: 2})
		p.Sleep(5 * time.Second)
	})
	r.sim.Run(time.Minute)
	if served != 1 {
		t.Fatalf("served %d transfers, want 1", served)
	}
}

func TestHandlerPriorityRelayFilter(t *testing.T) {
	r := newHandlerRig(t, 8)
	a := r.makeProposal(t, 1)
	b := r.makeProposal(t, 2)
	hi, lo := a, b
	if a.Priority.Priority.Less(b.Priority.Priority) {
		hi, lo = b, a
	}

	// Higher priority first: relayed. Lower afterwards: not relayed.
	if v := r.node.handleMessage(1, &PriorityGossip{M: hi.Priority}); !v.Relay {
		t.Fatal("high-priority message not relayed")
	}
	if v := r.node.handleMessage(2, &PriorityGossip{M: lo.Priority}); v.Relay {
		t.Fatal("low-priority message relayed after better one seen")
	}
	// Both still reach the waiter (discard is about relaying, §6).
	if r.node.propInbox(1).Len() != 2 {
		t.Fatalf("proposal inbox has %d arrivals, want 2", r.node.propInbox(1).Len())
	}
}

func TestHandlerEquivocatingAnnouncesBothTravel(t *testing.T) {
	r := newHandlerRig(t, 8)
	prop := r.makeProposal(t, 1)
	// Second variant: same credentials, different block hash, re-signed.
	alt := prop.Priority
	alt.BlockHash = crypto.HashBytes("other-block")
	alt.Sig = r.ids[1].Sign(alt.SigningBytes())

	if v := r.node.handleMessage(1, &PriorityGossip{M: prop.Priority}); !v.Relay {
		t.Fatal("first variant not relayed")
	}
	// The equal-priority second variant must also relay so the network
	// learns about the equivocation (§10.4).
	if v := r.node.handleMessage(1, &PriorityGossip{M: alt}); !v.Relay {
		t.Fatal("equivocation evidence not relayed")
	}
}

func TestPendingVotesReplayOnRoundEntry(t *testing.T) {
	r := newHandlerRig(t, 5)
	// A vote for round 2 arrives while we are in round 1.
	nextRoundVote := &ledger.Vote{
		Sender: r.ids[1].PublicKey(),
		Round:  2,
		Step:   agreement.StepReduction1,
	}
	r.node.handleMessage(1, &VoteMsg{Vote: *nextRoundVote})
	if len(r.node.pendingMsgs[2]) != 1 {
		t.Fatal("not buffered")
	}
	// Advance to round 2: commit an empty block and install its context.
	if err := r.node.Ledger().Commit(r.node.Ledger().NextEmptyBlock(), nil); err != nil {
		t.Fatal(err)
	}
	ctx2 := agreement.NewContext(r.node.Ledger())
	// Craft a now-valid vote for round 2 and buffer it too.
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: 2, Step: 1}
	res := sortition.Execute(r.ids[1], ctx2.Seed[:], role, r.node.cfg.Params.TauStep, 100, ctx2.TotalWeight)
	if res.J > 0 {
		v := &ledger.Vote{
			Sender: r.ids[1].PublicKey(), Round: 2, Step: 1,
			SortHash: res.Output, SortProof: res.Proof,
			PrevHash: ctx2.LastBlockHash, Value: crypto.HashBytes("x"),
		}
		v.Sign(r.ids[1])
		r.node.pendingMsgs[2] = append(r.node.pendingMsgs[2], &VoteMsg{Vote: *v})
	}
	r.node.setContext(ctx2)
	if len(r.node.pendingMsgs[2]) != 0 {
		t.Fatal("pending buffer not drained")
	}
	if res.J > 0 && r.node.voteInbox(2, 1).Len() == 0 {
		t.Fatal("valid buffered vote not replayed into inbox")
	}
}
