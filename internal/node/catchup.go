package node

import (
	"fmt"
	"time"

	"algorand/internal/agreement"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/vtime"
)

// DebugCatchup, when set by tests, traces sync progress.
var DebugCatchup func(id int, what string, chain uint64)

// This file implements the networked side of §8.3 bootstrapping: a
// node serves its archive to peers (ChainRequest → ChainReply), and a
// fresh node can synchronize its ledger from the network, validating
// every block against its certificate as it goes — the same trustless
// validation ledger.CatchUp performs offline.

// handleChainRequest serves up to MaxBlocks consecutive archived rounds.
func (n *Node) handleChainRequest(msg *ChainRequest) network.Verdict {
	max := msg.MaxBlocks
	if max <= 0 || max > 64 {
		max = 64
	}
	reply := &ChainReply{Recipient: msg.Requester, Nonce: msg.Nonce}
	for r := msg.FromRound; r < msg.FromRound+uint64(max); r++ {
		b, ok := n.store.Block(r)
		if !ok {
			break
		}
		c, ok := n.store.Cert(r)
		if !ok {
			break
		}
		reply.Blocks = append(reply.Blocks, b)
		reply.Certs = append(reply.Certs, c)
	}
	if len(reply.Blocks) > 0 {
		n.net.Unicast(n.ID, msg.Requester, reply)
	}
	return network.Verdict{Relay: false}
}

// committeeParams derives the certificate-verification configuration
// from the node's protocol parameters.
func (n *Node) committeeParams() ledger.CommitteeParams {
	return ledger.CommitteeParams{
		TauStep:        n.cfg.Params.TauStep,
		StepThreshold:  n.cfg.Params.StepThreshold(),
		TauFinal:       n.cfg.Params.TauFinal,
		FinalThreshold: n.cfg.Params.FinalThreshold(),
		MaxStep:        agreement.WireStepOfBinary(n.cfg.Params.MaxSteps),
	}
}

// applyChainReply validates and commits a reply's blocks in order,
// returning how many rounds advanced.
func (n *Node) applyChainReply(reply *ChainReply) (int, error) {
	if len(reply.Blocks) != len(reply.Certs) {
		return 0, fmt.Errorf("catchup: %d blocks, %d certs", len(reply.Blocks), len(reply.Certs))
	}
	cp := n.committeeParams()
	applied := 0
	for i, b := range reply.Blocks {
		if b.Round != n.ledger.NextRound() {
			continue // stale or ahead; ignore
		}
		cert := reply.Certs[i]
		if cert.Value != b.Hash() {
			return applied, fmt.Errorf("catchup: round %d cert/block mismatch", b.Round)
		}
		seed := n.ledger.SortitionSeed(b.Round)
		weights, total := n.ledger.SortitionWeights(b.Round)
		tau, threshold := cp.TauStep, cp.StepThreshold
		if cert.Final {
			tau, threshold = cp.TauFinal, cp.FinalThreshold
		} else if cp.MaxStep != 0 && cert.Step > cp.MaxStep {
			return applied, fmt.Errorf("catchup: round %d absurd step %d", b.Round, cert.Step)
		}
		if err := cert.Verify(n.provider, seed, weights, total, tau, threshold, n.ledger.HeadHash()); err != nil {
			return applied, fmt.Errorf("catchup: round %d cert: %w", b.Round, err)
		}
		if err := n.ledger.ValidateBlock(b, b.Timestamp+n.cfg.LedgerCfg.MaxTimestampSkew); err != nil {
			return applied, fmt.Errorf("catchup: round %d block: %w", b.Round, err)
		}
		if err := n.ledger.Commit(b, cert); err != nil {
			return applied, fmt.Errorf("catchup: round %d commit: %w", b.Round, err)
		}
		n.store.Put(b, cert)
		applied++
	}
	return applied, nil
}

// SyncFromPeers catches the node's ledger up to the network (§8.3):
// it repeatedly asks peers for the next run of blocks+certificates and
// validates them from genesis state, stopping when no peer has more or
// the deadline passes. It must run inside the node's scheduler; use
// StartObserver for a convenient wrapper.
func (n *Node) SyncFromPeers(p *vtime.Proc, deadline time.Duration) (uint64, error) {
	return n.SyncFromPeersUntil(p, deadline, 0)
}

// SyncFromPeersUntil is SyncFromPeers with an optional target round:
// once the ledger reaches it, the sync returns immediately instead of
// probing peers until they run dry (target 0 = sync everything).
func (n *Node) SyncFromPeersUntil(p *vtime.Proc, deadline time.Duration, target uint64) (uint64, error) {
	peers := n.net.Neighbors(n.ID)
	if len(peers) == 0 {
		return 0, fmt.Errorf("catchup: no peers")
	}
	inbox := n.catchupInbox()
	peerIdx := 0
	stalls := 0
	for p.Now() < deadline && stalls < 2*len(peers) {
		if target > 0 && n.ledger.ChainLength() >= target {
			break
		}
		n.reqNonce++
		req := &ChainRequest{
			FromRound: n.ledger.NextRound(),
			MaxBlocks: 32,
			Requester: n.ID,
			Nonce:     n.reqNonce,
		}
		n.net.Unicast(n.ID, peers[peerIdx%len(peers)], req)
		peerIdx++

		m, ok := p.RecvTimeout(inbox, 2*time.Second)
		if !ok {
			if DebugCatchup != nil {
				DebugCatchup(n.ID, "stall", n.ledger.ChainLength())
			}
			stalls++
			continue
		}
		reply := m.(*ChainReply)
		applied, err := n.applyChainReply(reply)
		if DebugCatchup != nil {
			DebugCatchup(n.ID, fmt.Sprintf("applied %d err %v", applied, err), n.ledger.ChainLength())
		}
		if err != nil {
			return n.ledger.ChainLength(), err
		}
		if applied == 0 {
			stalls++
		} else {
			stalls = 0
		}
	}
	return n.ledger.ChainLength(), nil
}

// catchupInbox returns the mailbox chain replies are routed to.
func (n *Node) catchupInbox() *vtime.Mailbox {
	if n.chainReplies == nil {
		n.chainReplies = n.sim.NewMailbox()
	}
	return n.chainReplies
}

// StartObserver spawns a process that synchronizes this node from its
// peers and then reports via done (chain length reached, error).
func (n *Node) StartObserver(deadline time.Duration, done func(uint64, error)) {
	n.sim.Spawn(fmt.Sprintf("node-%d-catchup", n.ID), func(p *vtime.Proc) {
		n.proc = p
		got, err := n.SyncFromPeers(p, deadline)
		if done != nil {
			done(got, err)
		}
	})
}

// ApplyForgedReplyForTest exposes applyChainReply for adversarial
// tests: it applies a (possibly forged) chain reply and returns the
// validation outcome.
func (n *Node) ApplyForgedReplyForTest(blocks []*ledger.Block, certs []*ledger.Certificate) (int, error) {
	return n.applyChainReply(&ChainReply{Blocks: blocks, Certs: certs, Recipient: n.ID})
}
