package node

import (
	"fmt"
	"time"

	"algorand/internal/agreement"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/params"
	"algorand/internal/vtime"
)

// DebugCatchup, when set by tests, traces sync progress.
var DebugCatchup func(id int, what string, chain uint64)

// This file implements the networked side of §8.3 bootstrapping: a
// node serves its archive to peers (ChainRequest → ChainReply), and a
// fresh node can synchronize its ledger from the network, validating
// every block against its certificate as it goes — the same trustless
// validation ledger.CatchUp performs offline.

// handleChainRequest serves up to MaxBlocks consecutive archived rounds.
func (n *Node) handleChainRequest(msg *ChainRequest) network.Verdict {
	max := msg.MaxBlocks
	if max <= 0 || max > 64 {
		max = 64
	}
	// Serve the canonical chain, not the raw archive: after §8.2
	// recovery the archive may still hold an abandoned fork's block for
	// an adopted round. Blocks without a certificate of their own
	// (recovery adoptions) are included only up to the last certified
	// block — beyond that the receiver could not validate them.
	reply := &ChainReply{Recipient: msg.Requester, Nonce: msg.Nonce}
	var blocks []*ledger.Block
	var certs []*ledger.Certificate
	servable := 0
	for r := msg.FromRound; r < msg.FromRound+uint64(max); r++ {
		b, ok := n.ledger.BlockAt(r)
		if !ok {
			break
		}
		blocks = append(blocks, b)
		if c, ok := n.ledger.Certificate(b.Hash()); ok {
			certs = append(certs, c)
			servable = len(blocks)
		}
	}
	reply.Blocks = blocks[:servable]
	reply.Certs = certs
	if len(reply.Blocks) > 0 {
		n.net.Unicast(n.ID, msg.Requester, reply)
	}
	return network.Verdict{Relay: false}
}

// CommitteeParamsFor derives the certificate-verification
// configuration from protocol parameters — the same derivation for
// every verifier of the chain, consensus node or access gateway.
func CommitteeParamsFor(p params.Params) ledger.CommitteeParams {
	return ledger.CommitteeParams{
		TauStep:        p.TauStep,
		StepThreshold:  p.StepThreshold(),
		TauFinal:       p.TauFinal,
		FinalThreshold: p.FinalThreshold(),
		MaxStep:        agreement.WireStepOfBinary(p.MaxSteps),
	}
}

// committeeParams derives the certificate-verification configuration
// from the node's protocol parameters.
func (n *Node) committeeParams() ledger.CommitteeParams {
	return CommitteeParamsFor(n.cfg.Params)
}

// applyRound validates block b against certificate cert at the current
// ledger head, commits it, and archives it — the trustless per-round
// step shared by network catch-up and crash-restart archive replay.
func (n *Node) applyRound(b *ledger.Block, cert *ledger.Certificate, cp ledger.CommitteeParams) error {
	if cert.Value != b.Hash() {
		return fmt.Errorf("round %d cert/block mismatch", b.Round)
	}
	if cert.Round >= recoveryRoundBase {
		// The block was adopted by §8.2 recovery; its proof is the
		// recovery round's certificate, verified from the self-describing
		// recovery context instead of the chain round's.
		if err := VerifyRecoveryCert(n.provider, n.ledger, b, cert, cp); err != nil {
			return fmt.Errorf("round %d recovery cert: %w", b.Round, err)
		}
	} else {
		seed := n.ledger.SortitionSeed(b.Round)
		weights, total := n.ledger.SortitionWeights(b.Round)
		tau, threshold := cp.TauStep, cp.StepThreshold
		if cert.Final {
			tau, threshold = cp.TauFinal, cp.FinalThreshold
		} else if cp.MaxStep != 0 && cert.Step > cp.MaxStep {
			return fmt.Errorf("round %d absurd step %d", b.Round, cert.Step)
		}
		if err := cert.Verify(n.provider, seed, weights, total, tau, threshold, n.ledger.HeadHash()); err != nil {
			return fmt.Errorf("round %d cert: %w", b.Round, err)
		}
	}
	if err := n.ledger.ValidateBlock(b, b.Timestamp+n.cfg.LedgerCfg.MaxTimestampSkew); err != nil {
		return fmt.Errorf("round %d block: %w", b.Round, err)
	}
	if err := n.ledger.Commit(b, cert); err != nil {
		return fmt.Errorf("round %d commit: %w", b.Round, err)
	}
	n.persistPut(b, cert)
	return nil
}

// applyChainReply validates and commits a reply's blocks in order,
// returning how many rounds advanced.
func (n *Node) applyChainReply(reply *ChainReply) (int, error) {
	cp := n.committeeParams()
	certOf := make(map[crypto.Digest]*ledger.Certificate, len(reply.Certs))
	for _, c := range reply.Certs {
		certOf[c.Value] = c
	}
	applied := 0
	var pending []*ledger.Block
	for _, b := range reply.Blocks {
		if b.Round != n.ledger.NextRound()+uint64(len(pending)) {
			continue // stale or ahead; ignore
		}
		cert, ok := certOf[b.Hash()]
		if !ok {
			// A §8.2 recovery adoption: no certificate of its own. It is
			// acceptable only on the strength of a later certificate in
			// this reply, whose block commits to it through PrevHash.
			pending = append(pending, b)
			continue
		}
		k, err := n.applyCertifiedRun(pending, b, cert, cp)
		applied += k
		pending = nil
		if err != nil {
			return applied, fmt.Errorf("catchup: %w", err)
		}
	}
	// Trailing blocks with no certificate anchor are unverifiable; the
	// sender should not have included them, and we must not trust them.
	return applied, nil
}

// applyCertifiedRun commits an uncertified prefix plus the certified
// block cb on top of it. The certificate commits to cb, and cb commits
// to every ancestor through the PrevHash chain, so one valid
// certificate transitively validates the entire run (§8.3) — this is
// what lets catch-up cross rounds the network adopted during fork
// recovery, which carry no certificate of their own. The prefix is
// committed tentatively; if the anchoring certificate fails to verify,
// the head is restored and the tentative entries are left behind as a
// dead side branch.
func (n *Node) applyCertifiedRun(pending []*ledger.Block, cb *ledger.Block, cert *ledger.Certificate, cp ledger.CommitteeParams) (int, error) {
	prevHead := n.ledger.HeadHash()
	prev := prevHead
	for _, b := range pending {
		if b.PrevHash != prev {
			return 0, fmt.Errorf("round %d breaks the hash chain", b.Round)
		}
		prev = b.Hash()
	}
	if cb.PrevHash != prev {
		return 0, fmt.Errorf("round %d certified block breaks the hash chain", cb.Round)
	}
	for _, b := range pending {
		if err := n.ledger.ValidateBlock(b, b.Timestamp+n.cfg.LedgerCfg.MaxTimestampSkew); err != nil {
			n.ledger.SwitchHead(prevHead)
			return 0, fmt.Errorf("round %d block: %w", b.Round, err)
		}
		if err := n.ledger.Commit(b, nil); err != nil {
			n.ledger.SwitchHead(prevHead)
			return 0, fmt.Errorf("round %d commit: %w", b.Round, err)
		}
	}
	if err := n.applyRound(cb, cert, cp); err != nil {
		n.ledger.SwitchHead(prevHead)
		return 0, err
	}
	// The whole run is certificate-backed now; archive the prefix too.
	for _, b := range pending {
		n.persistReconcile(b, nil)
	}
	return len(pending) + 1, nil
}

// RestoreFromArchive replays a crashed node's archive (§8.3) into this
// node's ledger, validating every block against its certificate exactly
// as network catch-up does — the restarting node trusts its disk no more
// than it trusts a peer. Replay stops at the first round whose block or
// certificate is missing from the archive (recovery-adopted blocks are
// committed without certificates, so gaps are legitimate); the remainder
// is fetched from peers. Returns the number of rounds restored.
func (n *Node) RestoreFromArchive(src *ledger.Store) (uint64, error) {
	cp := n.committeeParams()
	var restored uint64
	for {
		r := n.ledger.NextRound()
		b, ok := src.Block(r)
		if !ok {
			return restored, nil
		}
		c, ok := src.Cert(r)
		if !ok {
			return restored, nil
		}
		if err := n.applyRound(b, c, cp); err != nil {
			return restored, fmt.Errorf("restore: %w", err)
		}
		restored++
	}
}

// SyncFromPeers catches the node's ledger up to the network (§8.3):
// it repeatedly asks peers for the next run of blocks+certificates and
// validates them from genesis state, stopping when no peer has more or
// the deadline passes. It must run inside the node's scheduler; use
// StartObserver for a convenient wrapper.
func (n *Node) SyncFromPeers(p *vtime.Proc, deadline time.Duration) (uint64, error) {
	return n.SyncFromPeersUntil(p, deadline, 0)
}

// SyncFromPeersUntil is SyncFromPeers with an optional target round:
// once the ledger reaches it, the sync returns immediately instead of
// probing peers until they run dry (target 0 = sync everything).
func (n *Node) SyncFromPeersUntil(p *vtime.Proc, deadline time.Duration, target uint64) (uint64, error) {
	peers := n.net.Neighbors(n.ID)
	if len(peers) == 0 {
		return 0, fmt.Errorf("catchup: no peers")
	}
	inbox := n.catchupInbox()
	peerIdx := 0
	stalls := 0
	probedFork := false
	fromOverride := uint64(0)
	for p.Now() < deadline && stalls < 2*len(peers) {
		if target > 0 && n.ledger.ChainLength() >= target {
			break
		}
		n.reqNonce++
		req := &ChainRequest{
			FromRound: n.ledger.NextRound(),
			MaxBlocks: 32,
			Requester: n.ID,
			Nonce:     n.reqNonce,
		}
		if fromOverride > 0 {
			req.FromRound = fromOverride
			fromOverride = 0
		}
		n.net.Unicast(n.ID, peers[peerIdx%len(peers)], req)
		peerIdx++

		m, ok := p.RecvTimeout(inbox, 2*time.Second)
		if !ok {
			if DebugCatchup != nil {
				DebugCatchup(n.ID, "stall", n.ledger.ChainLength())
			}
			stalls++
			continue
		}
		reply := m.(*ChainReply)
		applied, err := n.applyChainReply(reply)
		if DebugCatchup != nil {
			DebugCatchup(n.ID, fmt.Sprintf("applied %d err %v", applied, err), n.ledger.ChainLength())
		}
		if err != nil {
			// The peer's chain conflicts with ours below our head: we may
			// hold the losing side of a tentative fork (§8.2). Try to adopt
			// the peer's branch on the strength of its certificates.
			if n.tryAdoptFork(reply) {
				stalls = 0
				continue
			}
			// The divergence may start below the reply's first round, in
			// which case the reply never shows us the fork point. Re-request
			// once from just past our last final block — the earliest round
			// a fork can live at — so the next reply spans the divergence.
			if !probedFork {
				probedFork = true
				fromOverride = n.ledger.LastFinal().Round + 1
				continue
			}
			return n.ledger.ChainLength(), err
		}
		if applied == 0 {
			stalls++
		} else {
			stalls = 0
		}
	}
	return n.ledger.ChainLength(), nil
}

// tryAdoptFork reconciles this node onto a strictly longer certified
// chain served by a peer whose blocks conflict with our own tentative
// suffix. A node that committed the losing side of a tentative fork —
// say it crossed a step threshold for the empty block while the rest of
// the network certified a proposal one step later — is wedged: its own
// rounds extend a branch nobody else builds on, catch-up refuses the
// conflicting peer data, and it cannot finish §8.2 recovery alone,
// because a minority never reaches the recovery vote threshold against
// a healthy majority that skips its checkpoints. The §8.3 certificate
// chain is the transferable proof that frees it: verify the competing
// branch from the fork point exactly as regular catch-up would, and
// switch to it iff it is certified strictly past our head and abandons
// no final block. Finality is forever — a conflicting *final* block is
// a safety violation to surface, never to paper over by switching.
func (n *Node) tryAdoptFork(reply *ChainReply) bool {
	// Locate the divergence: the first reply block at a round we also
	// have, carrying a different block.
	var fork *ledger.Block
	idx := -1
	for i, b := range reply.Blocks {
		ours, ok := n.ledger.BlockAt(b.Round)
		if !ok {
			break // past our head: no same-round conflict in this reply
		}
		if ours.Hash() != b.Hash() {
			fork, idx = b, i
			break
		}
	}
	if fork == nil {
		return false
	}
	// The competing branch must graft onto our canonical chain…
	parent, ok := n.ledger.BlockAt(fork.Round - 1)
	if !ok || parent.Hash() != fork.PrevHash {
		return false
	}
	// …must not abandon finalized history…
	if n.ledger.LastFinal().Round >= fork.Round {
		return false
	}
	// …and must be certified strictly past our head, so the switch is
	// backed by proof of a longer chain rather than taste.
	certified := make(map[crypto.Digest]bool, len(reply.Certs))
	for _, c := range reply.Certs {
		certified[c.Value] = true
	}
	certifiedTo := uint64(0)
	for _, b := range reply.Blocks[idx:] {
		if certified[b.Hash()] {
			certifiedTo = b.Round
		}
	}
	prevLen := n.ledger.ChainLength()
	if certifiedTo <= prevLen {
		return false
	}
	// Replay regular catch-up from the fork parent: every certificate is
	// verified on the competing branch before the switch sticks, and any
	// failure restores the original head. Our abandoned blocks stay in
	// the ledger as a dead side branch, like a lost recovery fork.
	prevHead := n.ledger.HeadHash()
	if n.ledger.SwitchHead(parent.Hash()) != nil {
		return false
	}
	sub := &ChainReply{Recipient: reply.Recipient, Blocks: reply.Blocks[idx:], Certs: reply.Certs}
	if _, err := n.applyChainReply(sub); err != nil || n.ledger.ChainLength() <= prevLen {
		n.ledger.SwitchHead(prevHead)
		return false
	}
	// Force the archives onto the adopted branch, as §8.2 repair does: a
	// restart must replay the canonical chain, not the abandoned fork.
	certOf := make(map[crypto.Digest]*ledger.Certificate, len(reply.Certs))
	for _, c := range reply.Certs {
		certOf[c.Value] = c
	}
	for r := fork.Round; r <= n.ledger.ChainLength(); r++ {
		if b, ok := n.ledger.BlockAt(r); ok {
			n.persistReconcile(b, certOf[b.Hash()])
		}
	}
	n.ForkAdoptions++
	if DebugCatchup != nil {
		DebugCatchup(n.ID, fmt.Sprintf("adopted fork at round %d", fork.Round), n.ledger.ChainLength())
	}
	return true
}

// catchupInbox returns the mailbox chain replies are routed to.
func (n *Node) catchupInbox() *vtime.Mailbox {
	if n.chainReplies == nil {
		n.chainReplies = n.sim.NewMailbox()
	}
	return n.chainReplies
}

// StartObserver spawns a process that synchronizes this node from its
// peers and then reports via done (chain length reached, error).
func (n *Node) StartObserver(deadline time.Duration, done func(uint64, error)) {
	n.sim.Spawn(fmt.Sprintf("node-%d-catchup", n.ID), func(p *vtime.Proc) {
		n.proc = p
		got, err := n.SyncFromPeers(p, deadline)
		if done != nil {
			done(got, err)
		}
	})
}

// trySyncBehind probes peers for committed rounds we are missing, in
// short bounded bites so a genuinely stalled network (nobody has more
// blocks than we do) costs only ~10 virtual seconds before the caller
// falls through to §8.2 recovery. Returns whether the chain advanced.
func (n *Node) trySyncBehind() bool {
	before := n.ledger.ChainLength()
	for !n.halted {
		prev := n.ledger.ChainLength()
		if _, err := n.SyncFromPeersUntil(n.proc, n.proc.Now()+10*time.Second, 0); err != nil {
			// Peer data conflicts with our chain and the sync loop's fork
			// adoption could not resolve it (not longer, or final blocks
			// diverge): leave it to §8.2 recovery.
			break
		}
		if n.ledger.ChainLength() == prev {
			break
		}
	}
	return n.ledger.ChainLength() > before
}

// StartAfterSync spawns the node's process in rejoin mode: it catches
// up from peers, then attempts a live round; if that round fails — the
// network had moved on while we synced — it re-syncs and tries again
// instead of invoking §8.2 fork recovery (a node that is merely behind
// is not forked). Once a round completes in lockstep it falls into the
// regular loop. syncBudget bounds the rejoin phase; a cycle that syncs
// nothing AND fails its round ends it early, because spinning cannot
// help then — peers have nothing servable beyond our head, so either
// the whole network is stalled or we are forked from it. Both are the
// main loop's job: its checkpoints run §8.2 recovery.
func (n *Node) StartAfterSync(syncBudget time.Duration) {
	n.sim.Spawn(fmt.Sprintf("node-%d-rejoin", n.ID), func(p *vtime.Proc) {
		n.proc = p
		n.rejoinLoop(p, syncBudget)
	})
}

// rejoinLoop is the body of StartAfterSync (also the tail of the
// snapshot-first rejoin, see StartAfterSnapshotSync): sync, try a live
// round, repeat within the budget, then fall into the main loop.
func (n *Node) rejoinLoop(p *vtime.Proc, syncBudget time.Duration) {
	deadline := p.Now() + syncBudget
	for !n.sim.Stopped() && !n.halted {
		before := n.ledger.ChainLength()
		if _, err := n.SyncFromPeersUntil(p, deadline, 0); err != nil {
			return // inconsistent peer data; give up rather than diverge
		}
		if n.StopAfterRound > 0 && n.ledger.NextRound() > n.StopAfterRound {
			return
		}
		if err := n.runRound(); err == nil {
			break // back in lockstep with the network
		}
		if p.Now() >= deadline || n.ledger.ChainLength() == before {
			break
		}
	}
	n.run()
}

// ApplyForgedReplyForTest exposes applyChainReply for adversarial
// tests: it applies a (possibly forged) chain reply and returns the
// validation outcome.
func (n *Node) ApplyForgedReplyForTest(blocks []*ledger.Block, certs []*ledger.Certificate) (int, error) {
	return n.applyChainReply(&ChainReply{Blocks: blocks, Certs: certs, Recipient: n.ID})
}
