// Package node assembles the full Algorand user (§4, Figure 1): it
// collects pending transactions, runs block proposal (§6) and BA⋆ (§7)
// each round, maintains the ledger with certificates (§8.1, §8.3),
// validates and relays gossip traffic (§8.4), and falls back to the
// fork-recovery protocol (§8.2) when consensus stalls.
package node

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"algorand/internal/agreement"
	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/ledger/diskstore"
	"algorand/internal/metrics"
	"algorand/internal/network"
	"algorand/internal/params"
	"algorand/internal/sortition"
	"algorand/internal/trace"
	"algorand/internal/txflow"
	"algorand/internal/vtime"
)

// Transport abstracts the gossip network under the node: the
// deterministic simulator (internal/network.Network) or a real TCP
// transport (internal/realnet.Transport). Both enforce the gossip rules
// of §8.4 (validate-before-relay via the handler's verdicts, duplicate
// suppression, relay limits).
type Transport interface {
	Gossip(origin int, m network.Message)
	Unicast(from, to int, m network.Message)
	SetHandler(id int, h network.Handler)
	// Neighbors returns the node's current peer set (used as fetch
	// targets when an agreed block is missing and no Fetch oracle is
	// configured).
	Neighbors(id int) []int
}

// TransportHealth is a coarse liveness snapshot of the transport under
// a node. The paper's liveness argument assumes the network heals
// (§3's strong synchrony holds "most of the time"); this is the signal
// an operator watches to know whether that assumption currently holds
// for this node: how many peers are reachable, how many are serving a
// misbehavior quarantine, and how much gossip the transport has shed
// (queue drops) or repaired (redials).
type TransportHealth struct {
	Peers       int // address-book peers (self excluded)
	Connected   int // peers with a live outbound connection
	Quarantined int // peers currently quarantined for misbehavior
	QueueDrops  uint64
	Redials     uint64
}

// TransportHealthReporter is optionally implemented by transports that
// can report health (internal/realnet does; the in-process simulator
// has no failing links to report on).
type TransportHealthReporter interface {
	Health() TransportHealth
}

// TransportHealth reports the underlying transport's health snapshot,
// or ok=false when the transport does not expose one.
func (n *Node) TransportHealth() (TransportHealth, bool) {
	if hr, ok := n.net.(TransportHealthReporter); ok {
		return hr.Health(), true
	}
	return TransportHealth{}, false
}

// Config assembles a node's dependencies.
type Config struct {
	Params    params.Params
	LedgerCfg ledger.Config
	// ChargeCrypto controls whether the modeled crypto CPU costs
	// (provider.Costs()) are charged on message validation. With the
	// Real provider, verification already consumes real CPU; the model
	// costs are for Fast runs.
	ChargeCrypto bool
	// Fetch resolves a block hash this node never received (the paper's
	// "obtain it from other users", §7.1); the simulation provides it.
	Fetch func(h crypto.Digest) (*ledger.Block, bool)
	// RecoveryInterval is how often nodes check for forks and kick off
	// the §8.2 recovery protocol (the paper suggests e.g. hourly).
	RecoveryInterval time.Duration
	// MaxRecoveryAttempts bounds consecutive failed recovery BA⋆ tries.
	MaxRecoveryAttempts int
	// ShardCount configures §8.3 storage sharding (0 = store all).
	ShardCount uint64
	// Archive, when non-nil, is the durable on-disk form of the node's
	// §8.3 store: every commit, catch-up adoption, and §8.2 fork repair
	// is journaled (fsync'd) through it before the node proceeds, and a
	// restart recovers the chain from it instead of from genesis. The
	// node owns writes to the archive for its lifetime; the caller still
	// owns Close.
	Archive *diskstore.Store
	// DisablePriorityGossip suppresses the §6 small priority
	// announcements (ablation: blocks must carry priorities alone).
	DisablePriorityGossip bool
	// KeepFirstOnEquivocation keeps the first block version from an
	// equivocating proposer instead of discarding both (ablation of the
	// §10.4 optimization).
	KeepFirstOnEquivocation bool
	// TxFlow sizes the transaction ingestion pipeline (see
	// internal/txflow). The zero value gets defaults; unless TxFlow.Now
	// is set, the pipeline clock is the node's (virtual) scheduler
	// clock.
	TxFlow txflow.Config
	// TxFlowWorkers, when positive, launches that many background
	// signature-verification workers and offloads gossip-batch
	// ingestion to them (real deployments). Zero keeps the pipeline
	// fully synchronous in the scheduler goroutine, which the
	// deterministic simulator requires.
	TxFlowWorkers int
	// TxFlushInterval is how often freshly admitted transactions are
	// flushed to neighbors as TxBatch gossip (default 250ms).
	TxFlushInterval time.Duration
	// PipelineFinalStep overlaps the §7.4 final confirmation step with
	// the next round: the node commits tentatively after BinaryBA⋆ and
	// upgrades the block to final in the background when the final-step
	// votes arrive. This is the §10.2 throughput optimization the paper
	// describes ("the final step ... could be pipelined with the next
	// round (although our prototype does not do so)").
	PipelineFinalStep bool
	// CheckpointInterval, when positive, writes a state checkpoint —
	// block header, certificate, full account table — every that many
	// rounds: into the durable archive when one is configured, and
	// always into memory for serving SnapshotRequest peers. Restarting
	// or joining nodes fast-sync from the newest checkpoint plus a
	// catch-up delta instead of replaying the chain from genesis.
	CheckpointInterval uint64
	// AnnounceCommits makes the node gossip a CommitAnnounce to its
	// direct neighbors after every durable commit. Gateways (the access
	// tier) tail these announcements to advance their read models;
	// consensus nodes ignore them and they are never relayed, so the
	// per-round cost is one 44-byte frame per neighbor link.
	AnnounceCommits bool
	// Metrics is the registry every subsystem under this node records
	// into: BA⋆ step counters, round counters, the trace phase
	// histograms, and (unless TxFlow.Metrics overrides it) the
	// transaction pipeline. Nil gets a private registry.
	Metrics *metrics.Registry
	// Tracer records per-round phase spans (sortition → propose → BA⋆
	// steps → certify → commit → persist) on the node's clock. Nil gets
	// a tracer on the scheduler clock with the default ring size.
	Tracer *trace.Tracer
}

// RoundStat records one round's timeline on this node, feeding the
// §10 evaluation figures.
type RoundStat struct {
	Round           uint64
	Start           time.Duration
	PriorityLearned time.Duration // winning priority first seen (§10.5)
	ProposalDone    time.Duration // highest-priority block in hand (Figure 7 bottom)
	BinaryDone      time.Duration // BA⋆ without the final step (Figure 7 middle)
	End             time.Duration // final step complete (Figure 7 top)
	BinarySteps     int
	Final           bool
	Empty           bool
	Equivocation    bool
	Value           crypto.Digest
}

// Node is one simulated Algorand user.
type Node struct {
	ID       int
	cfg      Config
	provider crypto.Provider
	identity crypto.Identity
	ledger   *ledger.Ledger
	flow     *txflow.Flow
	store    *ledger.Store
	archive  *diskstore.Store
	// persistErrors counts archive writes that failed even after the
	// store's rotate-and-retry — commits that are NOT durable. Atomic:
	// the pipelined final-step process and tests read it concurrently.
	persistErrors atomic.Int64
	net           Transport
	sim           *vtime.Sim
	proc          *vtime.Proc
	reg           *metrics.Registry
	tracer        *trace.Tracer
	ba            *agreement.Metrics
	// Round outcome counters (registry-backed views of Stats).
	roundsTotal, roundsEmpty, roundsFinal *metrics.Counter
	persistErrCounter                     *metrics.Counter

	// Current consensus context, nil between rounds. The handler uses it
	// to validate incoming messages.
	ctx *agreement.Context
	// finalCtxs holds contexts of rounds whose pipelined final step is
	// still in flight; the handler accepts their final-step votes.
	finalCtxs map[uint64]*agreement.Context

	// Vote inboxes per (round, step); proposal inboxes per round.
	voteInboxes map[[2]uint64]*vtime.Mailbox
	propInboxes map[uint64]*vtime.Mailbox

	// Messages for the next round, buffered until we get there.
	pendingMsgs map[uint64][]network.Message

	// bestPriority tracks the best proposal priority seen per round, for
	// the §6 relay filter.
	bestPriority map[uint64]sortition.Priority

	// blockMsgs holds block bodies (with credentials) we can serve to
	// requesters, keyed by block hash; blockMsgRound drives GC.
	blockMsgs     map[crypto.Digest]*blockprop.BlockMsg
	blockMsgRound map[crypto.Digest]uint64
	// requestedAt tracks outstanding block fetches for retry control.
	requestedAt map[crypto.Digest]time.Duration
	reqNonce    uint64
	// chainReplies receives §8.3 catch-up replies (see catchup.go).
	chainReplies *vtime.Mailbox
	// snapReplies receives fast-sync snapshot replies (see snapshot.go).
	snapReplies *vtime.Mailbox

	// checkpoint is the newest state snapshot this node holds — written
	// at the checkpoint interval, adopted during fast sync, or restored
	// from the archive — and what it serves to SnapshotRequest peers.
	checkpoint *ledger.Checkpoint
	// genesisAccounts/seed0 are retained common knowledge (§8.3): the
	// verification context for peer-served snapshots, and the base a
	// checkpoint ledger is grafted onto.
	genesisAccounts map[crypto.PublicKey]uint64
	seed0           crypto.Digest

	// halted marks a simulated crash: the node stops handling and
	// emitting messages and its process winds down (see Halt).
	halted bool

	// finished is set when the main process returns after completing
	// its configured rounds; auxiliary processes (tx flushing) use it
	// to wind down too. Atomic because SubmitTx reads it from RPC
	// goroutines while the scheduler winds the node down.
	finished atomic.Bool

	// alienVotes counts votes rejected for extending a different chain —
	// the fork signal that triggers recovery participation (§8.2).
	alienVotes int
	// recovered counts completed recovery executions.
	Recovered int
	// ForkAdoptions counts catch-up fork adoptions: times this node
	// abandoned a tentative suffix for a strictly longer certified chain
	// served by peers (see tryAdoptFork).
	ForkAdoptions int
	// SnapshotSyncs counts fast syncs: times this node re-based its
	// ledger onto a verified peer-served checkpoint.
	SnapshotSyncs int
	// SnapshotRejects counts peer-served snapshots that failed
	// verification (tampered table, forged certificate, or insufficient
	// context) and were refused.
	SnapshotRejects int

	// Behavior hooks for adversarial nodes (see sim package). When
	// Misbehave is non-nil it is invoked instead of the honest proposal
	// logic once the node is selected as proposer.
	Misbehave func(n *Node, prop *blockprop.Proposal)
	// VoteSaboteur, when non-nil, maps each outgoing committee vote to
	// the set of votes actually sent (e.g. double-voting for two values,
	// §10.4). Extra votes must be re-signed by the saboteur.
	VoteSaboteur func(n *Node, v *ledger.Vote) []*ledger.Vote

	Stats []RoundStat
	// StepTimes records (duration, timedOut) of every CountVotes call,
	// for the §10.5 timeout-validation experiment.
	StepTimes []StepTime
	// StopAfterRound ends the main loop once the ledger reaches it.
	StopAfterRound uint64
}

// StepTime is one CountVotes observation.
type StepTime struct {
	Step     uint64
	Took     time.Duration
	TimedOut bool
}

// New creates a node bound to slot id on the network. Call Start to
// launch its process.
func New(
	id int,
	sim *vtime.Sim,
	net Transport,
	provider crypto.Provider,
	identity crypto.Identity,
	cfg Config,
	genesisAccounts map[crypto.PublicKey]uint64,
	seed0 crypto.Digest,
) *Node {
	if cfg.RecoveryInterval == 0 {
		cfg.RecoveryInterval = time.Hour
	}
	if cfg.MaxRecoveryAttempts == 0 {
		cfg.MaxRecoveryAttempts = 8
	}
	if cfg.TxFlushInterval == 0 {
		cfg.TxFlushInterval = 250 * time.Millisecond
	}
	if cfg.TxFlow.Now == nil {
		// The pipeline clock follows the scheduler. Virtual-time runs
		// only call into the Flow from scheduler context; realtime
		// deployments that submit from other goroutines (the RPC
		// server) override Now with a wall clock in cmd/algorand-node.
		cfg.TxFlow.Now = sim.Now
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.TxFlow.Metrics == nil {
		cfg.TxFlow.Metrics = cfg.Metrics
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.New(sim.Now, 0)
	}
	cfg.Tracer.RegisterMetrics(cfg.Metrics)
	shardCount := cfg.ShardCount
	if shardCount == 0 {
		shardCount = 1
	}
	n := &Node{
		ID:              id,
		cfg:             cfg,
		provider:        provider,
		identity:        identity,
		ledger:          ledger.New(provider, cfg.LedgerCfg, genesisAccounts, seed0),
		genesisAccounts: genesisAccounts,
		seed0:           seed0,
		flow:            txflow.New(provider, cfg.TxFlow),
		store:           ledger.NewStore(uint64(id), shardCount),
		net:             net,
		sim:             sim,
		voteInboxes:     make(map[[2]uint64]*vtime.Mailbox),
		propInboxes:     make(map[uint64]*vtime.Mailbox),
		pendingMsgs:     make(map[uint64][]network.Message),
		bestPriority:    make(map[uint64]sortition.Priority),
		blockMsgs:       make(map[crypto.Digest]*blockprop.BlockMsg),
		blockMsgRound:   make(map[crypto.Digest]uint64),
		requestedAt:     make(map[crypto.Digest]time.Duration),
		finalCtxs:       make(map[uint64]*agreement.Context),
		archive:         cfg.Archive,
		reg:             cfg.Metrics,
		tracer:          cfg.Tracer,
		ba:              agreement.NewMetrics(cfg.Metrics),
	}
	n.roundsTotal = cfg.Metrics.Counter("algorand_node_rounds_total", "rounds this node completed")
	n.roundsEmpty = cfg.Metrics.Counter("algorand_node_rounds_empty_total", "completed rounds that committed the empty block")
	n.roundsFinal = cfg.Metrics.Counter("algorand_node_rounds_final_total", "completed rounds that reached final consensus")
	n.persistErrCounter = cfg.Metrics.Counter("algorand_node_persist_errors_total", "archive writes that failed after retry")
	net.SetHandler(id, network.HandlerFunc(n.handleMessage))
	return n
}

// Metrics exposes the node's registry: every subsystem under the node
// (BA⋆, txflow, tracing, round outcomes) records here.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Tracer exposes the node's per-round phase tracer.
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Ledger exposes the node's ledger (read-only use).
func (n *Node) Ledger() *ledger.Ledger { return n.ledger }

// HandleMessage implements network.Handler (New registers it with the
// transport). Exported so adversarial harnesses can wrap a node's
// handler — intercept chosen messages, delegate the rest.
func (n *Node) HandleMessage(from int, m network.Message) network.Verdict {
	return n.handleMessage(from, m)
}

// Store exposes the node's §8.3 archive.
func (n *Node) Store() *ledger.Store { return n.store }

// Archive exposes the node's durable on-disk store, if configured.
func (n *Node) Archive() *diskstore.Store { return n.archive }

// PersistErrors reports how many archive writes failed permanently
// (after the diskstore's own rotate-and-retry) — each one a commit the
// node holds in memory but could not make durable.
func (n *Node) PersistErrors() int64 { return n.persistErrors.Load() }

// persistPut archives a committed (block, certificate) pair, journaling
// it to the durable store — fsync'd before this returns — when one is
// configured. The paper's §8.3 storage obligation: persist before the
// round's outcome is treated as settled.
func (n *Node) persistPut(b *ledger.Block, c *ledger.Certificate) {
	n.store.Put(b, c)
	if n.archive != nil {
		if err := n.archive.Append(b, c); err != nil {
			n.persistErrors.Add(1)
			n.persistErrCounter.Inc()
		}
	}
	n.maybeCheckpoint(b, c)
}

// persistReconcile forces the archives — memory and disk — to the
// canonical block for a round after §8.2 fork repair.
func (n *Node) persistReconcile(b *ledger.Block, c *ledger.Certificate) {
	n.store.Reconcile(b, c)
	if n.archive != nil {
		if err := n.archive.Reconcile(b, c); err != nil {
			n.persistErrors.Add(1)
			n.persistErrCounter.Inc()
		}
	}
}

// TxFlow exposes the node's transaction ingestion pipeline. Unlike
// the unsynchronized pool it replaced, the Flow is safe for concurrent
// use from any goroutine — RPC servers and load generators may call
// Submit/SubmitBatch/Stats directly while the scheduler runs rounds.
func (n *Node) TxFlow() *txflow.Flow { return n.flow }

// PublicKey returns the node's identity key.
func (n *Node) PublicKey() crypto.PublicKey { return n.identity.PublicKey() }

// SubmitTx runs a transaction through the ingestion pipeline
// (Figure 1 step 1). On admission it is staged for the next batched
// gossip flush; a rejection comes back immediately with the typed
// reason. Safe to call from any goroutine.
func (n *Node) SubmitTx(tx *ledger.Transaction) error {
	if n.Done() {
		return errors.New("node: stopped")
	}
	return n.flow.Submit(tx)
}

// Halt simulates a crash: the node stops handling incoming messages,
// emitting votes, proposing, and serving its archive. Its process winds
// down silently at the next round boundary (an in-flight round can no
// longer complete without the node's own votes). Ledger and Store keep
// their state, as a crashed machine's disk would — a replacement node
// for the same slot can RestoreFromArchive and rejoin.
func (n *Node) Halt() { n.halted = true }

// Halted reports whether the node has been crashed via Halt.
func (n *Node) Halted() bool { return n.halted }

// Done reports whether the node's main process has wound down — either
// crashed via Halt or completed its configured rounds. A done node no
// longer flushes transaction batches or accepts submissions.
func (n *Node) Done() bool { return n.halted || n.finished.Load() }

func (n *Node) voteInbox(round, step uint64) *vtime.Mailbox {
	k := [2]uint64{round, step}
	mb, ok := n.voteInboxes[k]
	if !ok {
		mb = n.sim.NewMailbox()
		n.voteInboxes[k] = mb
	}
	return mb
}

func (n *Node) propInbox(round uint64) *vtime.Mailbox {
	mb, ok := n.propInboxes[round]
	if !ok {
		mb = n.sim.NewMailbox()
		n.propInboxes[round] = mb
	}
	return mb
}

// costs returns the modeled CPU cost model if charging is enabled.
func (n *Node) costs() crypto.CostModel {
	if !n.cfg.ChargeCrypto {
		return crypto.CostModel{}
	}
	return n.provider.Costs()
}

// handleMessage validates and routes one delivered gossip message. It
// runs in scheduler context (§8.4: validate before relaying).
func (n *Node) handleMessage(from int, m network.Message) network.Verdict {
	if n.halted {
		return network.Verdict{}
	}
	cost := n.costs()
	switch msg := m.(type) {
	case *TxMsg:
		// Singleton transaction gossip (legacy path; batched TxBatch is
		// the steady state). Fresh admissions relay onward.
		fresh, sigChecked := n.flow.IngestGossip(&msg.Tx)
		var cpu time.Duration
		if sigChecked {
			cpu = cost.VerifySig
		}
		return network.Verdict{Relay: fresh, CPU: cpu}

	case *TxBatch:
		return n.handleTxBatch(msg, cost)

	case *VoteMsg:
		return n.handleVote(msg, cost)

	case *PriorityGossip:
		return n.handlePriority(msg, cost)

	case *BlockAnnounce:
		return n.handleAnnounce(msg, cost)

	case *BlockRequest:
		return n.handleBlockRequest(msg)

	case *BlockGossip:
		return n.handleBlock(msg, cost)

	case *ChainRequest:
		return n.handleChainRequest(msg)

	case *ChainReply:
		if msg.Recipient == n.ID {
			n.catchupInbox().Send(msg)
		}
		return network.Verdict{Relay: false}

	case *BlockFill:
		// A bare block body answering a resolveBlock fallback request.
		// Register it so the poller finds it; the hash it is stored
		// under is computed from the contents, so a bogus fill cannot
		// satisfy a request for a different block.
		n.ledger.RegisterProposal(msg.Block)
		return network.Verdict{Relay: false}

	case *CommitAnnounce:
		// Gateway read-model feed; consensus nodes have their own ledger
		// and ignore it. Never relayed — each committer announces its own.
		return network.Verdict{Relay: false}

	case *SnapshotRequest:
		return n.handleSnapshotRequest(msg)

	case *SnapshotReply:
		if msg.Recipient == n.ID {
			n.snapshotInbox().Send(msg)
		}
		return network.Verdict{Relay: false}
	}
	return network.Verdict{}
}

// announceCommit tells direct neighbors this node just committed a
// round (see Config.AnnounceCommits).
func (n *Node) announceCommit(b *ledger.Block) {
	if !n.cfg.AnnounceCommits || n.halted {
		return
	}
	n.net.Gossip(n.ID, &CommitAnnounce{Round: b.Round, Hash: b.Hash(), Announcer: n.ID})
}

func (n *Node) handleVote(msg *VoteMsg, cost crypto.CostModel) network.Verdict {
	cpu := cost.VerifySig + cost.VRFVerify
	v := &msg.Vote
	// Final-step votes of a round whose pipelined confirmation is still
	// in flight are validated against that round's context.
	if v.Step == agreement.StepFinal {
		if fctx, ok := n.finalCtxs[v.Round]; ok {
			nv := agreement.ProcessVote(n.provider, n.cfg.Params, fctx, v)
			if nv == 0 {
				return network.Verdict{Relay: false, CPU: cpu}
			}
			n.voteInbox(v.Round, v.Step).Send(agreement.ValidatedVote{Vote: *v, NumVotes: nv})
			return network.Verdict{Relay: true, CPU: cpu}
		}
	}
	ctx := n.ctx
	if ctx == nil {
		return network.Verdict{Relay: false}
	}
	switch {
	case v.Round == ctx.Round:
		if v.PrevHash != ctx.LastBlockHash {
			// A vote extending some other chain: fork evidence (§8.2).
			n.alienVotes++
			return network.Verdict{Relay: false, CPU: cost.VerifySig}
		}
		nv := agreement.ProcessVote(n.provider, n.cfg.Params, ctx, v)
		if nv == 0 {
			return network.Verdict{Relay: false, CPU: cpu}
		}
		n.voteInbox(v.Round, v.Step).Send(agreement.ValidatedVote{Vote: *v, NumVotes: nv})
		return network.Verdict{Relay: true, CPU: cpu}
	case v.Round == ctx.Round+1:
		// We are a step behind; buffer and validate when we get there.
		n.pendingMsgs[v.Round] = append(n.pendingMsgs[v.Round], msg)
		return network.Verdict{Relay: false}
	case v.Round < ctx.Round:
		// A straggler's vote. If it extends a block other than ours at
		// that position, someone is stuck on a fork: recovery evidence
		// (§8.2 "users passively monitor all BA⋆ votes ... and keep
		// track of all forks").
		if prev, ok := n.ledger.BlockAt(v.Round - 1); ok && prev.Hash() != v.PrevHash {
			n.alienVotes++
		}
		return network.Verdict{Relay: false}
	default:
		return network.Verdict{Relay: false}
	}
}

func (n *Node) handlePriority(msg *PriorityGossip, cost crypto.CostModel) network.Verdict {
	cpu := cost.VerifySig + cost.VRFVerify
	m := &msg.M
	ctx := n.ctx
	if m.Round >= recoveryRoundBase && (ctx == nil || ctx.Round != m.Round) {
		// §8.2 recovery contexts are self-describing: rebuild this one so
		// the attempt's proposals verify, buffer, and relay even on nodes
		// that are not (yet) inside that attempt.
		ctx = n.recoveryCtxForRound(m.Round)
	}
	if ctx == nil {
		return network.Verdict{Relay: false}
	}
	switch {
	case m.Round == ctx.Round:
		roleKind := n.proposerRoleKind(m.Round)
		j := blockprop.VerifyPriority(n.provider, m, roleKind, ctx.Seed,
			n.cfg.Params.TauProposer, ctx.Weights[m.Proposer], ctx.TotalWeight)
		if j == 0 {
			return network.Verdict{Relay: false, CPU: cpu}
		}
		n.propInbox(m.Round).Send(blockprop.NewArrivalPriority(m))
		// §6: discard (do not relay) messages below the best priority
		// seen so far. Equal priority still relays: an equivocator's two
		// variants share one priority and both must travel (§10.4).
		if best, ok := n.bestPriority[m.Round]; ok && best != m.Priority && !best.Less(m.Priority) {
			return network.Verdict{Relay: false, CPU: cpu}
		}
		n.bestPriority[m.Round] = m.Priority
		return network.Verdict{Relay: true, CPU: cpu}
	case m.Round == ctx.Round+1:
		n.pendingMsgs[m.Round] = append(n.pendingMsgs[m.Round], msg)
		return network.Verdict{Relay: false}
	default:
		return network.Verdict{Relay: false}
	}
}

// handleAnnounce processes an "I hold this block" message: after
// credential checks it may trigger a fetch of the block body from the
// announcer (pull-based dissemination).
func (n *Node) handleAnnounce(msg *BlockAnnounce, cost crypto.CostModel) network.Verdict {
	cpu := cost.VerifySig + cost.VRFVerify
	m := &msg.M
	ctx := n.ctx
	if m.Round >= recoveryRoundBase && (ctx == nil || ctx.Round != m.Round) {
		ctx = n.recoveryCtxForRound(m.Round) // see handlePriority
	}
	if ctx == nil {
		return network.Verdict{Relay: false}
	}
	switch {
	case m.Round == ctx.Round:
		roleKind := n.proposerRoleKind(m.Round)
		j := blockprop.VerifyPriority(n.provider, m, roleKind, ctx.Seed,
			n.cfg.Params.TauProposer, ctx.Weights[m.Proposer], ctx.TotalWeight)
		if j == 0 {
			return network.Verdict{Relay: false, CPU: cpu}
		}
		// The announce carries the same priority information as the
		// flood; let the waiter see it (it may arrive first).
		n.propInbox(m.Round).Send(blockprop.NewArrivalPriority(m))
		if best, ok := n.bestPriority[m.Round]; !ok || best.Less(m.Priority) {
			n.bestPriority[m.Round] = m.Priority
		}
		n.maybeFetch(m, msg.Announcer)
		return network.Verdict{Relay: false, CPU: cpu}
	case m.Round == ctx.Round+1:
		n.pendingMsgs[m.Round] = append(n.pendingMsgs[m.Round], msg)
		return network.Verdict{Relay: false}
	default:
		return network.Verdict{Relay: false}
	}
}

// maybeFetch requests the announced block body if it is competitive
// (at least ties the best known priority — ties matter for §10.4
// equivocation detection) and not already held or recently requested.
func (n *Node) maybeFetch(m *blockprop.PriorityMsg, announcer int) {
	if _, have := n.blockMsgs[m.BlockHash]; have {
		return
	}
	if best, ok := n.bestPriority[m.Round]; ok && m.Priority.Less(best) {
		return
	}
	const retryAfter = 8 * time.Second
	if at, ok := n.requestedAt[m.BlockHash]; ok && n.sim.Now()-at < retryAfter {
		return
	}
	n.requestedAt[m.BlockHash] = n.sim.Now()
	n.reqNonce++
	n.net.Unicast(n.ID, announcer, &BlockRequest{
		Hash:      m.BlockHash,
		Requester: n.ID,
		Nonce:     n.reqNonce,
	})
}

// handleBlockRequest serves a block body we hold: either a current
// proposal (with its announce credentials) or, for the §7.1 "obtain it
// from other users" fallback, any committed block (sent without
// credentials — the requester validates it against the agreed hash).
func (n *Node) handleBlockRequest(msg *BlockRequest) network.Verdict {
	if bm, ok := n.blockMsgs[msg.Hash]; ok {
		n.net.Unicast(n.ID, msg.Requester, &BlockGossip{M: *bm, Recipient: msg.Requester})
		return network.Verdict{Relay: false}
	}
	if b, ok := n.ledger.BlockOfHash(msg.Hash); ok {
		n.net.Unicast(n.ID, msg.Requester, &BlockFill{Block: b, Recipient: msg.Requester})
	}
	return network.Verdict{Relay: false}
}

// handleBlock processes a block body arriving in response to one of our
// requests: validate, store, hand to the waiter, and announce that we
// now hold it so neighbors can fetch from us.
func (n *Node) handleBlock(msg *BlockGossip, cost crypto.CostModel) network.Verdict {
	m := &msg.M
	// Verifying a block costs the credential check plus one signature
	// verification per materialized transaction. PayloadPadding models
	// unverified payload bytes (the paper's evaluation proposes 1 MB
	// blocks of synthetic content; its measured CPU is dominated by
	// vote/VRF verification, §10.3), so padding costs bandwidth but not
	// CPU.
	cpu := cost.VRFVerify + time.Duration(len(m.Block.Txns))*cost.VerifySig
	round := m.Round()
	ctx := n.ctx
	if round >= recoveryRoundBase && (ctx == nil || ctx.Round != round) {
		ctx = n.recoveryCtxForRound(round) // see handlePriority
	}
	if ctx == nil {
		return network.Verdict{Relay: false}
	}
	switch {
	case round == ctx.Round:
		roleKind := n.proposerRoleKind(round)
		if !blockprop.VerifyBlockMsg(n.provider, m, roleKind, ctx.Seed,
			n.cfg.Params.TauProposer, ctx.Weights[m.Proposer()], ctx.TotalWeight) {
			return network.Verdict{Relay: false, CPU: cost.VRFVerify}
		}
		h := m.Block.Hash()
		if _, have := n.blockMsgs[h]; have {
			return network.Verdict{Relay: false}
		}
		n.storeBlockMsg(m)
		n.ledger.RegisterProposal(m.Block)
		n.propInbox(round).Send(blockprop.NewArrivalBlock(m))
		if best, ok := n.bestPriority[round]; !ok || best.Less(m.Priority()) {
			n.bestPriority[round] = m.Priority()
		}
		// Re-announce: we can now serve this block.
		n.net.Gossip(n.ID, &BlockAnnounce{M: m.Announce, Announcer: n.ID})
		return network.Verdict{Relay: false, CPU: cpu}
	case round == ctx.Round+1:
		n.pendingMsgs[round] = append(n.pendingMsgs[round], msg)
		return network.Verdict{Relay: false}
	default:
		return network.Verdict{Relay: false}
	}
}

// storeBlockMsg remembers a block body (with credentials) for serving.
func (n *Node) storeBlockMsg(m *blockprop.BlockMsg) {
	h := m.Block.Hash()
	cp := *m
	n.blockMsgs[h] = &cp
	n.blockMsgRound[h] = m.Round()
}

// proposerRoleKind returns the sortition role kind for proposals in a
// round: the fork-recovery rounds use their own role.
func (n *Node) proposerRoleKind(round uint64) string {
	if round >= recoveryRoundBase {
		return sortition.RoleForkProposer
	}
	return sortition.RoleProposer
}

// setContext installs the context the handler validates against and
// replays buffered messages for that round.
func (n *Node) setContext(ctx *agreement.Context) {
	n.ctx = ctx
	if ctx == nil {
		return
	}
	buffered := n.pendingMsgs[ctx.Round]
	delete(n.pendingMsgs, ctx.Round)
	for _, m := range buffered {
		n.handleMessage(-1, m) // relay verdict already settled at arrival
	}
	// Garbage-collect stale buffers and inboxes.
	for r := range n.pendingMsgs {
		if r < ctx.Round {
			delete(n.pendingMsgs, r)
		}
	}
	for k := range n.voteInboxes {
		if k[0] < ctx.Round {
			if _, pipelined := n.finalCtxs[k[0]]; pipelined && k[1] == agreement.StepFinal {
				continue
			}
			delete(n.voteInboxes, k)
		}
	}
	for r := range n.propInboxes {
		if r < ctx.Round {
			delete(n.propInboxes, r)
		}
	}
	for r := range n.bestPriority {
		if r < ctx.Round {
			delete(n.bestPriority, r)
		}
	}
	for h, r := range n.blockMsgRound {
		if r < ctx.Round {
			delete(n.blockMsgRound, h)
			delete(n.blockMsgs, h)
			delete(n.requestedAt, h)
		}
	}
}

// gossipVote publishes one of our votes and counts it locally (a
// committee member processes its own message too).
func (n *Node) gossipVote(v *ledger.Vote) {
	if n.halted {
		return
	}
	votes := []*ledger.Vote{v}
	if n.VoteSaboteur != nil {
		votes = n.VoteSaboteur(n, v)
	}
	for _, vv := range votes {
		msg := &VoteMsg{Vote: *vv}
		n.net.Gossip(n.ID, msg)
		if ctx := n.ctx; ctx != nil && vv.Round == ctx.Round {
			if nv := agreement.ProcessVote(n.provider, n.cfg.Params, ctx, vv); nv > 0 {
				n.voteInbox(vv.Round, vv.Step).Send(agreement.ValidatedVote{Vote: *vv, NumVotes: nv})
			}
		}
	}
}

// env builds the BA⋆ environment for the current process, recording
// each CountVotes call as a ba_step span of the given round.
func (n *Node) env(round uint64) *agreement.Env {
	e := &agreement.Env{
		Proc:     n.proc,
		Provider: n.provider,
		Identity: n.identity,
		Params:   n.cfg.Params,
		Gossip:   n.gossipVote,
		Inbox:    n.voteInbox,
		Metrics:  n.ba,
	}
	e.StepTimer = func(step uint64, took time.Duration, timedOut bool) {
		n.StepTimes = append(n.StepTimes, StepTime{Step: step, Took: took, TimedOut: timedOut})
		// e.Proc, not n.proc: the pipelined final step runs this from a
		// background process with its own clock handle.
		end := e.Proc.Now()
		n.tracer.Record(round, trace.PhaseBAStep, step, end-took, end)
	}
	return e
}

// Start spawns the node's main process, which runs rounds until
// StopAfterRound is reached (or forever if zero), plus the gossip
// flush process that ships freshly admitted transactions to neighbors
// in size-capped batches.
func (n *Node) Start() {
	n.flow.Start(n.cfg.TxFlowWorkers)
	n.sim.Spawn(fmt.Sprintf("node-%d", n.ID), func(p *vtime.Proc) {
		n.proc = p
		n.run()
	})
	n.sim.Spawn(fmt.Sprintf("node-%d-txflush", n.ID), func(p *vtime.Proc) {
		for !n.sim.Stopped() {
			p.Sleep(n.cfg.TxFlushInterval)
			if n.Done() {
				return
			}
			n.flushTxBatches()
		}
	})
}

// flushTxBatches drains the pipeline's outbox into TxBatch gossip.
func (n *Node) flushTxBatches() {
	for _, batch := range n.flow.DrainOutbox(MaxTxBatchBytes) {
		n.net.Gossip(n.ID, &TxBatch{Txns: batch})
	}
}

// handleTxBatch admits every transaction of a gossiped batch through
// the pipeline. Batches are never relayed verbatim (Relay is always
// false): what was fresh here lands in our own outbox and reaches our
// neighbors re-batched, so propagation terminates exactly when no
// receiver sees anything new. With a worker pool running, the whole
// batch is handed off so the scheduler never pays for signature
// verification.
func (n *Node) handleTxBatch(msg *TxBatch, cost crypto.CostModel) network.Verdict {
	if n.cfg.TxFlowWorkers > 0 {
		n.flow.EnqueueBatch(msg.Txns)
		return network.Verdict{}
	}
	var cpu time.Duration
	for i := range msg.Txns {
		_, sigChecked := n.flow.IngestGossip(&msg.Txns[i])
		if sigChecked {
			cpu += cost.VerifySig
		}
	}
	return network.Verdict{CPU: cpu}
}

// DebugRound, when set by tests, observes every failed round attempt.
var DebugRound func(id int, round uint64, now time.Duration, err error)

func (n *Node) run() {
	defer n.finished.Store(true)
	lastRecoveryCheck := time.Duration(0)
	for !n.sim.Stopped() {
		if n.halted {
			return
		}
		if n.StopAfterRound > 0 && n.ledger.NextRound() > n.StopAfterRound {
			return
		}
		// §8.2: at every recovery checkpoint, if we have seen evidence of
		// forks, run the recovery protocol before the next round.
		checkpoint := n.proc.Now() / n.cfg.RecoveryInterval
		if checkpoint > lastRecoveryCheck/n.cfg.RecoveryInterval {
			if n.alienVotes > 0 || n.liveFork() {
				n.recover()
			}
		}
		lastRecoveryCheck = n.proc.Now()

		if err := n.runRound(); err != nil {
			if DebugRound != nil {
				DebugRound(n.ID, n.ledger.NextRound(), n.proc.Now(), err)
			}
			// The round may have failed because we fell behind the network
			// (an outage on our links) rather than because consensus
			// stalled globally: try §8.3 catch-up from peers first. A node
			// that is merely behind is not forked and must not wait for a
			// recovery checkpoint.
			if n.trySyncBehind() {
				// Caught up — but only rejoin immediately if the next
				// round can finish before the next recovery checkpoint.
				// A round spanning the checkpoint makes this node miss
				// the one moment the network reassembles (§8.2 recovery
				// and round retries run on the checkpoint grid), and a
				// few off-grid nodes can starve everyone's quorum when
				// committees are small.
				next := (n.proc.Now()/n.cfg.RecoveryInterval + 1) * n.cfg.RecoveryInterval
				if n.proc.Now()+n.roundBudget() > next {
					n.proc.Sleep(next - n.proc.Now())
				}
				continue
			}
			// No consensus within MaxSteps: wait for the next recovery
			// checkpoint (loosely synchronized clocks), then recover.
			next := (n.proc.Now()/n.cfg.RecoveryInterval + 1) * n.cfg.RecoveryInterval
			n.proc.Sleep(next - n.proc.Now())
			if n.halted {
				return
			}
			n.recover()
		}
	}
}

// liveFork reports whether the ledger holds a competing branch at least
// as long as the canonical one. Shorter dead-end branches — losers of an
// already completed recovery — stay in the ledger forever, but they are
// not evidence of live disagreement and must not drag the node back into
// recovery at every checkpoint.
func (n *Node) liveFork() bool {
	headRound := n.ledger.NextRound() - 1
	head := n.ledger.HeadHash()
	for _, tip := range n.ledger.ForkTips() {
		if tip.Round >= headRound && tip.Hash() != head {
			return true
		}
	}
	return false
}

// runRound executes one complete round: propose, wait, BA⋆, commit.
func (n *Node) runRound() error {
	round := n.ledger.NextRound()
	stat := RoundStat{Round: round, Start: n.proc.Now()}
	ctx := agreement.NewContext(n.ledger)
	n.setContext(ctx)

	// --- Block proposal (§6).
	n.proposeIfSelected(ctx)
	n.tracer.Record(round, trace.PhaseSortition, 0, stat.Start, n.proc.Now())
	wres := blockprop.WaitOpts(n.proc, n.propInbox(round),
		n.cfg.Params.LambdaPriority, n.cfg.Params.LambdaStepVar, n.cfg.Params.LambdaBlock,
		n.cfg.KeepFirstOnEquivocation)
	stat.Equivocation = wres.Equivocation
	stat.PriorityLearned = wres.BestPriorityAt

	target := n.ledger.NextEmptyBlock()
	if wres.Block != nil {
		if err := n.ledger.ValidateBlock(wres.Block, n.proc.Now()); err == nil {
			target = wres.Block
		}
	}
	stat.ProposalDone = n.proc.Now()
	n.tracer.Record(round, trace.PhasePropose, 0, stat.Start, stat.ProposalDone)

	// --- Agreement (§7).
	if n.cfg.PipelineFinalStep {
		return n.finishRoundPipelined(ctx, target, stat)
	}
	out, err := agreement.Run(n.env(round), ctx, target.Hash())
	if err != nil {
		n.setContext(nil)
		return err
	}
	stat.BinaryDone = out.BinaryDone
	stat.BinarySteps = out.BinarySteps
	stat.Final = out.Final
	n.tracer.Record(round, trace.PhaseCertify, 0, out.BinaryDone, n.proc.Now())

	// --- Resolve and commit.
	block := n.resolveBlock(ctx, out.Value)
	cert := out.Cert
	if out.FinalCert != nil {
		cert = out.FinalCert
	}
	commitStart := n.tracer.WallNow()
	if err := n.ledger.Commit(block, cert); err != nil {
		// Agreed on a block we cannot apply: treat like no-consensus so
		// recovery reconciles us (should not happen in honest runs).
		n.setContext(nil)
		return fmt.Errorf("commit: %w", err)
	}
	n.tracer.Record(round, trace.PhaseCommit, 0, commitStart, n.tracer.WallNow())
	persistStart := n.tracer.WallNow()
	n.persistPut(block, cert)
	n.tracer.Record(round, trace.PhasePersist, 0, persistStart, n.tracer.WallNow())
	n.announceCommit(block)
	n.flow.Committed(block, n.ledger.Balances())
	stat.Empty = block.IsEmpty()
	stat.Value = out.Value
	stat.End = n.proc.Now()
	n.Stats = append(n.Stats, stat)
	n.recordRoundOutcome(round, stat)
	n.setContext(nil)
	return nil
}

// recordRoundOutcome closes a completed round's trace and bumps the
// round outcome counters.
func (n *Node) recordRoundOutcome(round uint64, stat RoundStat) {
	n.tracer.Record(round, trace.PhaseRound, 0, stat.Start, stat.End)
	n.roundsTotal.Inc()
	if stat.Empty {
		n.roundsEmpty.Inc()
	}
	if stat.Final {
		n.roundsFinal.Inc()
	}
}

// finishRoundPipelined commits after BinaryBA⋆ and runs the final
// confirmation step in a background process, overlapped with the next
// round (§10.2 pipelining).
func (n *Node) finishRoundPipelined(ctx *agreement.Context, target *ledger.Block, stat RoundStat) error {
	bres, err := agreement.RunWithoutFinal(n.env(ctx.Round), ctx, target.Hash())
	if err != nil {
		n.setContext(nil)
		return err
	}
	stat.BinaryDone = n.proc.Now()
	stat.BinarySteps = bres.Steps

	block := n.resolveBlock(ctx, bres.Value)
	commitStart := n.tracer.WallNow()
	if err := n.ledger.Commit(block, bres.Cert); err != nil {
		n.setContext(nil)
		return fmt.Errorf("commit: %w", err)
	}
	n.tracer.Record(ctx.Round, trace.PhaseCommit, 0, commitStart, n.tracer.WallNow())
	persistStart := n.tracer.WallNow()
	n.persistPut(block, bres.Cert)
	n.tracer.Record(ctx.Round, trace.PhasePersist, 0, persistStart, n.tracer.WallNow())
	n.announceCommit(block)
	n.flow.Committed(block, n.ledger.Balances())
	stat.Empty = block.IsEmpty()
	stat.Value = bres.Value
	stat.End = n.proc.Now()
	n.Stats = append(n.Stats, stat)
	n.recordRoundOutcome(ctx.Round, stat)
	statIdx := len(n.Stats) - 1

	// Keep accepting this round's final-step votes and count them in
	// the background; the next round starts immediately.
	n.finalCtxs[ctx.Round] = ctx
	n.setContext(nil)
	n.sim.Spawn(fmt.Sprintf("node-%d-final-%d", n.ID, ctx.Round), func(p *vtime.Proc) {
		env := n.env(ctx.Round)
		env.Proc = p
		certifyStart := p.Now()
		cert := agreement.WaitFinal(env, ctx, bres.Value)
		delete(n.finalCtxs, ctx.Round)
		if cert == nil {
			return
		}
		n.tracer.Record(ctx.Round, trace.PhaseCertify, 0, certifyStart, p.Now())
		n.Stats[statIdx].Final = true
		n.roundsFinal.Inc()
		// Upgrade the ledger entry and the archive to final.
		if err := n.ledger.Commit(block, cert); err == nil {
			n.persistPut(block, cert)
		}
	})
	return nil
}

// proposeIfSelected runs proposer sortition and gossips our proposal.
func (n *Node) proposeIfSelected(ctx *agreement.Context) {
	w := ctx.Weights[n.identity.PublicKey()]
	if w == 0 {
		return
	}
	block := n.buildBlock(ctx.Round)
	prop := blockprop.Propose(n.identity, sortition.RoleProposer, ctx.Seed, ctx.Round,
		n.cfg.Params.TauProposer, w, ctx.TotalWeight, block)
	if prop == nil {
		return
	}
	if n.Misbehave != nil {
		n.Misbehave(n, prop)
		return
	}
	n.ledger.RegisterProposal(block)
	n.bestPriority[ctx.Round] = prop.Priority.Priority
	n.storeBlockMsg(&prop.Block)
	// Gossip the small priority message first (§6), then announce the
	// block body for our neighbors to pull.
	if !n.cfg.DisablePriorityGossip {
		n.net.Gossip(n.ID, &PriorityGossip{M: prop.Priority})
	}
	n.net.Gossip(n.ID, &BlockAnnounce{M: prop.Priority, Announcer: n.ID})
	// Self-delivery so our own Wait sees the proposal.
	n.propInbox(ctx.Round).Send(blockprop.NewArrivalPriority(&prop.Priority))
	n.propInbox(ctx.Round).Send(blockprop.NewArrivalBlock(&prop.Block))
}

// buildBlock assembles a block of pending transactions for a round,
// with the §5.2 seed and padding up to the configured block size.
func (n *Node) buildBlock(round uint64) *ledger.Block {
	prevSeed := n.ledger.PrevSeed()
	out, proof := n.identity.VRFProve(ledger.SeedAlpha(prevSeed, round))
	assembleStart := n.tracer.WallNow()
	txs := n.flow.Assemble(n.ledger.Balances(), n.cfg.Params.BlockSize)
	n.tracer.Record(round, trace.PhaseAssemble, 0, assembleStart, n.tracer.WallNow())
	// The header commits the post-apply state root; the assembled
	// transactions are valid against the head state by construction, but
	// drop any straggler that does not apply rather than propose a block
	// every validator would reject.
	post := n.ledger.Balances().Clone()
	kept := txs[:0]
	for i := range txs {
		if post.ApplyTx(&txs[i]) == nil {
			kept = append(kept, txs[i])
		}
	}
	b := &ledger.Block{
		Round:     round,
		PrevHash:  n.ledger.HeadHash(),
		Timestamp: n.proc.Now(),
		StateRoot: post.Root(),
		Seed:      ledger.SeedFromVRF(out),
		SeedProof: proof,
		Proposer:  n.identity.PublicKey(),
		Txns:      kept,
	}
	if pad := n.cfg.Params.BlockSize - b.WireSize(); pad > 0 {
		b.PayloadPadding = pad
	}
	return b
}

// resolveBlock maps an agreed hash to block contents (Algorithm 3's
// BlockOfHash). If the block is unknown it is obtained "from other
// users" (§7.1): via the Fetch oracle in simulations, or by requesting
// it from gossip peers over the transport in real deployments.
func (n *Node) resolveBlock(ctx *agreement.Context, h crypto.Digest) *ledger.Block {
	if h == ctx.EmptyHash {
		return n.ledger.NextEmptyBlock()
	}
	if b, ok := n.ledger.BlockOfHash(h); ok {
		return b
	}
	if n.cfg.Fetch != nil {
		if b, ok := n.cfg.Fetch(h); ok {
			return b
		}
	}
	// Ask every peer for the block and poll until it arrives (the
	// committee agreed on it, so many honest users hold it).
	deadline := n.proc.Now() + n.cfg.Params.LambdaBlock
	for _, peer := range n.net.Neighbors(n.ID) {
		n.reqNonce++
		n.net.Unicast(n.ID, peer, &BlockRequest{Hash: h, Requester: n.ID, Nonce: n.reqNonce})
	}
	for n.proc.Now() < deadline {
		n.proc.Sleep(250 * time.Millisecond)
		if b, ok := n.ledger.BlockOfHash(h); ok {
			return b
		}
	}
	panic(fmt.Sprintf("node %d: cannot resolve agreed block %v", n.ID, h))
}

// AlienVotes reports how many fork-evidence votes this node has seen
// since the last recovery (diagnostics).
func (n *Node) AlienVotes() int { return n.alienVotes }

// SetParams replaces the node's protocol parameters. Intended for test
// harnesses that script scenario phases (e.g. restoring thresholds
// after a partition window); the simulation's single-threaded execution
// makes the swap race-free.
func (n *Node) SetParams(p params.Params) { n.cfg.Params = p }

// SetDisablePriorityGossip toggles the §6 priority pre-gossip
// (ablation hook).
func (n *Node) SetDisablePriorityGossip(v bool) { n.cfg.DisablePriorityGossip = v }

// SetKeepFirstOnEquivocation toggles the §10.4 equivocation policy
// (ablation hook).
func (n *Node) SetKeepFirstOnEquivocation(v bool) { n.cfg.KeepFirstOnEquivocation = v }
