package node

import (
	"algorand/internal/agreement"
	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/sortition"
	"algorand/internal/wire"
)

// recoveryRoundBase offsets recovery BA⋆ executions into their own
// round-number space so their sortition roles and vote buffers never
// collide with regular rounds.
const recoveryRoundBase = uint64(1) << 40

// DebugRecovery, when set by tests, observes each recovery attempt.
var DebugRecovery func(id int, recRound uint64, proposed crypto.Digest, out agreement.Outcome, err error)

// recover runs the §8.2 fork-recovery protocol: propose the longest
// fork (as an empty block extending its tip) via sortition with a
// dedicated role, agree on one proposal with BA⋆ using seed and weights
// from before the fork, then switch every user onto the winning chain.
//
// The paper takes the pre-fork context from the next-to-last b-long
// period using block timestamps; we use the last *final* block, which
// is fork-free by construction and common to all users — the same
// property the paper's quantization is after, available exactly in a
// deterministic simulation.
func (n *Node) recover() {
	checkpoint := uint64(n.proc.Now() / n.cfg.RecoveryInterval)
	for attempt := 0; attempt < n.cfg.MaxRecoveryAttempts; attempt++ {
		if n.recoverOnce(checkpoint, uint64(attempt)) {
			n.alienVotes = 0
			n.Recovered++
			return
		}
	}
	// Give up until the next checkpoint; regular rounds may still work
	// for us even if stragglers remain.
	n.alienVotes = 0
}

// recoverOnce runs one recovery BA⋆ attempt; it reports success.
func (n *Node) recoverOnce(checkpoint, attempt uint64) bool {
	base := n.ledger.LastFinal()
	baseHash := base.Hash()
	balances, ok := n.ledger.BalancesAt(baseHash)
	if !ok {
		return false
	}

	// Fresh proposers and committees per attempt: hash the seed each
	// time (§8.2). The attempt coordinates are wire-encoded so the
	// preimage layout is the codec's, not ad hoc.
	e := wire.NewEncoderSize(16)
	e.Uint64(checkpoint)
	e.Uint64(attempt)
	seed := crypto.HashBytes("algorand.recovery.seed", base.Seed[:], e.Data())
	recRound := recoveryRoundBase + checkpoint*1024 + attempt

	ctx := &agreement.Context{
		Round:         recRound,
		Seed:          seed,
		Weights:       balances.Money,
		TotalWeight:   balances.Total,
		LastBlockHash: baseHash,
		EmptyHash:     crypto.HashBytes("algorand.recovery.empty", seed[:], baseHash[:]),
	}
	n.setContext(ctx)
	defer n.setContext(nil)

	// Propose the longest fork we know: an empty block extending its tip.
	tips := n.ledger.ForkTips()
	longest := tips[0]
	proposal := ledger.EmptyBlock(longest.Round+1, longest.Hash(), longest.Seed)
	w := balances.Money[n.identity.PublicKey()]
	if prop := blockprop.Propose(n.identity, sortition.RoleForkProposer, seed, recRound,
		n.cfg.Params.TauProposer, w, balances.Total, proposal); prop != nil {
		n.ledger.RegisterProposal(proposal)
		n.storeBlockMsg(&prop.Block)
		n.net.Gossip(n.ID, &PriorityGossip{M: prop.Priority})
		n.net.Gossip(n.ID, &BlockAnnounce{M: prop.Priority, Announcer: n.ID})
		n.propInbox(recRound).Send(blockprop.NewArrivalPriority(&prop.Priority))
		n.propInbox(recRound).Send(blockprop.NewArrivalBlock(&prop.Block))
	}

	wres := blockprop.Wait(n.proc, n.propInbox(recRound),
		n.cfg.Params.LambdaPriority, n.cfg.Params.LambdaStepVar, n.cfg.Params.LambdaBlock)

	// Validate the §8.2 way: the proposed fork must be at least as long
	// as the longest chain we have seen.
	value := ctx.EmptyHash
	if wres.Block != nil && wres.Block.Round >= longest.Round+1 && wres.Block.IsEmpty() {
		n.ledger.RegisterProposal(wres.Block)
		value = wres.Block.Hash()
	}

	out, err := agreement.Run(n.env(), ctx, value)
	if DebugRecovery != nil {
		DebugRecovery(n.ID, recRound, value, out, err)
	}
	if err != nil || out.Value == ctx.EmptyHash {
		return false
	}

	// Adopt the winning fork.
	fb, ok := n.ledger.BlockOfHash(out.Value)
	if !ok && n.cfg.Fetch != nil {
		fb, ok = n.cfg.Fetch(out.Value)
	}
	if !ok {
		return false
	}
	if !n.adoptChain(fb) {
		return false
	}
	return true
}

// adoptChain commits b and any missing ancestors (fetched on demand),
// then switches the canonical head to b.
func (n *Node) adoptChain(b *ledger.Block) bool {
	// Collect the missing ancestry, newest first.
	var chain []*ledger.Block
	cur := b
	for !n.ledger.Knows(cur.PrevHash) {
		if n.cfg.Fetch == nil {
			return false
		}
		parent, ok := n.cfg.Fetch(cur.PrevHash)
		if !ok {
			return false
		}
		chain = append(chain, parent)
		cur = parent
	}
	// Commit oldest first.
	for i := len(chain) - 1; i >= 0; i-- {
		if err := n.ledger.Commit(chain[i], nil); err != nil {
			return false
		}
	}
	if !n.ledger.Knows(b.Hash()) {
		if err := n.ledger.Commit(b, nil); err != nil {
			return false
		}
	}
	return n.ledger.SwitchHead(b.Hash()) == nil
}
