package node

import (
	"fmt"
	"time"

	"algorand/internal/agreement"
	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/sortition"
	"algorand/internal/wire"
)

// recoveryRoundBase offsets recovery BA⋆ executions into their own
// round-number space so their sortition roles and vote buffers never
// collide with regular rounds.
const recoveryRoundBase = uint64(1) << 40

// DebugRecovery, when set by tests, observes each recovery attempt.
var DebugRecovery func(id int, recRound uint64, proposed crypto.Digest, out agreement.Outcome, err error)

// recover runs the §8.2 fork-recovery protocol: propose the longest
// fork (as an empty block extending its tip) via sortition with a
// dedicated role, agree on one proposal with BA⋆ using seed and weights
// from before the fork, then switch every user onto the winning chain.
//
// The paper takes the pre-fork context from the next-to-last b-long
// period using block timestamps; we use the last *final* block, which
// is fork-free by construction and common to all users — the same
// property the paper's quantization is after, available exactly in a
// deterministic simulation.
func (n *Node) recover() {
	ri := n.cfg.RecoveryInterval
	checkpoint := uint64(n.proc.Now() / ri)
	// Recovery only works when the whole network attends the same
	// checkpoint (§8.2 runs at predetermined times on loosely
	// synchronized clocks): a minority-side recovery can never reach the
	// vote threshold. So never let the attempt sequence spill past this
	// window — stop early enough to retry one regular round and still
	// make the next checkpoint, or two wedged partitions end up
	// attending alternating checkpoints forever.
	windowEnd := time.Duration(checkpoint+1)*ri - n.roundBudget()
	// Re-align before resuming regular rounds. Nodes leave the attempt
	// loop at different times (winners after k attempts, losers at the
	// window bound), and a regular round needs most of the committee
	// running it *concurrently* to reach quorum — staggered retries fail
	// one by one forever. windowEnd is on the shared checkpoint grid, so
	// sleeping to it puts every recovering node's retry round in lockstep
	// with exactly one round budget left before the next checkpoint.
	defer func() {
		n.alienVotes = 0
		if d := windowEnd - n.proc.Now(); d > 0 {
			n.proc.Sleep(d)
		}
	}()
	for attempt := 0; attempt < n.cfg.MaxRecoveryAttempts; attempt++ {
		// A failed attempt takes up to one round budget, so gate on the
		// attempt *finishing* by windowEnd — an attempt that merely starts
		// before the bound overruns it, pushes the retry round across the
		// next checkpoint, and takes this node off the grid for a whole
		// extra window.
		if attempt > 0 && n.proc.Now()+n.roundBudget() > windowEnd {
			break
		}
		if n.recoverOnce(checkpoint, uint64(attempt)) {
			n.Recovered++
			return
		}
	}
	// Give up until the next checkpoint; regular rounds may still work
	// for us even if stragglers remain.
}

// roundBudget is an upper bound on one round (or recovery attempt)
// worst-case duration: the proposal wait plus every BA⋆ step timing
// out, with slack for the reduction and final steps.
func (n *Node) roundBudget() time.Duration {
	p := n.cfg.Params
	return p.LambdaPriority + p.LambdaStepVar + p.LambdaBlock +
		time.Duration(p.MaxSteps+2)*(p.LambdaStep+p.LambdaStepVar)
}

// recoveryContext derives the BA⋆ context for one recovery attempt.
// Everything in it comes from the last final block — which is fork-free
// and common to all honest users — plus the checkpoint/attempt
// coordinates, so the context is *self-describing*: any node can
// rebuild it from a recovery round number alone and verify, buffer, and
// relay that attempt's proposals without being in recovery itself.
// (Nodes drift in and out of attempts at different times; if only nodes
// currently inside an attempt relayed its messages, the fork proposal
// would die within a hop of its proposer.)
//
// Fresh proposers and committees per attempt: hash the seed each time
// (§8.2). The attempt coordinates are wire-encoded so the preimage
// layout is the codec's, not ad hoc.
func (n *Node) recoveryContext(checkpoint, attempt uint64) *agreement.Context {
	return n.recoveryContextAt(n.ledger.LastFinal(), checkpoint, attempt)
}

// recoverySeed derives the sortition seed of one recovery attempt from
// its base block and coordinates.
func recoverySeed(base *ledger.Block, checkpoint, attempt uint64) crypto.Digest {
	e := wire.NewEncoderSize(16)
	e.Uint64(checkpoint)
	e.Uint64(attempt)
	return crypto.HashBytes("algorand.recovery.seed", base.Seed[:], e.Data())
}

// recoveryContextAt is recoveryContext with an explicit base block.
func (n *Node) recoveryContextAt(base *ledger.Block, checkpoint, attempt uint64) *agreement.Context {
	baseHash := base.Hash()
	balances, ok := n.ledger.BalancesAt(baseHash)
	if !ok {
		return nil
	}
	seed := recoverySeed(base, checkpoint, attempt)
	return &agreement.Context{
		Round:         recoveryRoundBase + checkpoint*1024 + attempt,
		Seed:          seed,
		Weights:       balances.Money,
		TotalWeight:   balances.Total,
		LastBlockHash: baseHash,
		EmptyHash:     crypto.HashBytes("algorand.recovery.empty", seed[:], baseHash[:]),
	}
}

// recoveryCtxForRound rebuilds the context a recovery-round message
// belongs to; the coordinates are encoded in the round number.
func (n *Node) recoveryCtxForRound(round uint64) *agreement.Context {
	if round < recoveryRoundBase {
		return nil
	}
	off := round - recoveryRoundBase
	return n.recoveryContext(off/1024, off%1024)
}

// recoverOnce runs one recovery BA⋆ attempt; it reports success.
func (n *Node) recoverOnce(checkpoint, attempt uint64) bool {
	ctx := n.recoveryContext(checkpoint, attempt)
	if ctx == nil {
		return false
	}
	recRound := ctx.Round
	seed := ctx.Seed
	baseHash := ctx.LastBlockHash
	balances, _ := n.ledger.BalancesAt(baseHash)
	n.setContext(ctx)
	defer n.setContext(nil)

	// Propose the longest fork we know: an empty block extending its tip.
	tips := n.ledger.ForkTips()
	longest := tips[0]
	proposal := ledger.EmptyBlock(longest.Round+1, longest.Hash(), longest.Seed, longest.StateRoot)
	w := balances.Money[n.identity.PublicKey()]
	if prop := blockprop.Propose(n.identity, sortition.RoleForkProposer, seed, recRound,
		n.cfg.Params.TauProposer, w, balances.Total, proposal); prop != nil {
		n.ledger.RegisterProposal(proposal)
		n.storeBlockMsg(&prop.Block)
		n.net.Gossip(n.ID, &PriorityGossip{M: prop.Priority})
		n.net.Gossip(n.ID, &BlockAnnounce{M: prop.Priority, Announcer: n.ID})
		n.propInbox(recRound).Send(blockprop.NewArrivalPriority(&prop.Priority))
		n.propInbox(recRound).Send(blockprop.NewArrivalBlock(&prop.Block))
	}

	cands := blockprop.WaitAll(n.proc, n.propInbox(recRound),
		n.cfg.Params.LambdaPriority+n.cfg.Params.LambdaStepVar+n.cfg.Params.LambdaBlock)

	// Validate the §8.2 way: a proposed fork is acceptable if it is at
	// least as long as the longest chain we have seen. Among acceptable
	// proposals prefer the longest fork, then the highest priority —
	// NOT priority alone: a proposer on a short branch cannot know a
	// longer branch exists, and nodes on the long branch must reject
	// its proposal, so following raw priority splits the committee's
	// inputs between that proposal and the empty value.
	value := ctx.EmptyHash
	var bestBlk *ledger.Block
	var bestPri sortition.Priority
	for _, c := range cands {
		if c.Block.Round < longest.Round+1 || !c.Block.IsEmpty() {
			continue
		}
		if bestBlk == nil || c.Block.Round > bestBlk.Round ||
			(c.Block.Round == bestBlk.Round && bestPri.Less(c.Priority)) {
			bestBlk, bestPri = c.Block, c.Priority
		}
	}
	if bestBlk != nil {
		n.ledger.RegisterProposal(bestBlk)
		value = bestBlk.Hash()
	}

	out, err := agreement.Run(n.env(recRound), ctx, value)
	if DebugRecovery != nil {
		DebugRecovery(n.ID, recRound, value, out, err)
	}
	if err != nil || out.Value == ctx.EmptyHash {
		return false
	}

	// Adopt the winning fork, keeping the recovery certificate: it is
	// the transferable proof of this adoption, and without it a node
	// that missed the checkpoint could never be convinced of the
	// adopted round (§8.3 catch-up serves only certified tails).
	fb, ok := n.ledger.BlockOfHash(out.Value)
	if !ok && n.cfg.Fetch != nil {
		fb, ok = n.cfg.Fetch(out.Value)
	}
	if !ok {
		return false
	}
	cert := out.Cert
	if out.Final && out.FinalCert != nil {
		cert = out.FinalCert
	}
	if !n.adoptChain(fb, cert) {
		return false
	}
	return true
}

// VerifyRecoveryCert checks a §8.2 recovery certificate as transferable
// proof that the network adopted block b. The certificate's votes name
// their base block (every vote's PrevHash is the recovery context's
// anchor); the verifier requires that base on its own canonical chain,
// rebuilds the self-describing context from it and the coordinates in
// the round number, and re-verifies the committee votes — the same
// trustless check as a regular certificate, just against the recovery
// round's seed and the base block's stake distribution.
func VerifyRecoveryCert(p crypto.Provider, l *ledger.Ledger, b *ledger.Block, cert *ledger.Certificate, cp ledger.CommitteeParams) error {
	if cert.Round < recoveryRoundBase {
		return fmt.Errorf("round %d is not a recovery round", cert.Round)
	}
	if cert.Value != b.Hash() {
		return fmt.Errorf("recovery cert is for another block")
	}
	if len(cert.Votes) == 0 {
		return fmt.Errorf("recovery cert has no votes")
	}
	baseHash := cert.Votes[0].PrevHash
	base, ok := l.BlockOfHash(baseHash)
	if !ok {
		return fmt.Errorf("recovery cert base unknown")
	}
	if on, ok := l.BlockAt(base.Round); !ok || on.Hash() != baseHash {
		return fmt.Errorf("recovery cert base not on our chain")
	}
	balances, ok := l.BalancesAt(baseHash)
	if !ok {
		return fmt.Errorf("recovery cert base state unavailable")
	}
	off := cert.Round - recoveryRoundBase
	seed := recoverySeed(base, off/1024, off%1024)
	tau, threshold := cp.TauStep, cp.StepThreshold
	if cert.Final {
		tau, threshold = cp.TauFinal, cp.FinalThreshold
	} else if cp.MaxStep != 0 && cert.Step > cp.MaxStep {
		return fmt.Errorf("recovery cert step %d beyond MaxSteps", cert.Step)
	}
	return cert.Verify(p, seed, balances.Money, balances.Total, tau, threshold, baseHash)
}

// adoptChain commits b and any missing ancestors (fetched on demand),
// then switches the canonical head to b, recording cert (the recovery
// certificate, possibly nil) as b's proof.
func (n *Node) adoptChain(b *ledger.Block, cert *ledger.Certificate) bool {
	// Collect the missing ancestry, newest first.
	var chain []*ledger.Block
	cur := b
	for !n.ledger.Knows(cur.PrevHash) {
		if n.cfg.Fetch == nil {
			return false
		}
		parent, ok := n.cfg.Fetch(cur.PrevHash)
		if !ok {
			return false
		}
		chain = append(chain, parent)
		cur = parent
	}
	// Commit oldest first.
	for i := len(chain) - 1; i >= 0; i-- {
		if err := n.ledger.Commit(chain[i], nil); err != nil {
			return false
		}
	}
	// Commit (or re-commit: the dup path attaches certificates to known
	// entries) the adopted block with its recovery certificate.
	if err := n.ledger.Commit(b, cert); err != nil {
		return false
	}
	if n.ledger.SwitchHead(b.Hash()) != nil {
		return false
	}
	// Reconcile the archive onto the adopted chain: any block this node
	// archived for those rounds belongs to the abandoned fork, and a
	// restart must not replay it.
	for i := len(chain) - 1; i >= 0; i-- {
		n.persistReconcile(chain[i], nil)
	}
	n.persistReconcile(b, cert)
	return true
}
