package node

import (
	"encoding/binary"
	"fmt"

	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/wire"
)

// VoteMsg wraps a BA⋆ vote for the gossip network.
type VoteMsg struct {
	Vote ledger.Vote
}

// WireSize implements network.Message.
func (m *VoteMsg) WireSize() int { return m.Vote.WireSize() }

// EncodeTo implements wire.Marshaler.
func (m *VoteMsg) EncodeTo(e *wire.Encoder) { m.Vote.EncodeTo(e) }

// DecodeFrom implements wire.Unmarshaler.
func (m *VoteMsg) DecodeFrom(d *wire.Decoder) { m.Vote.DecodeFrom(d) }

// ID identifies the exact vote (sender, round, step, value): an
// equivocating sender's two votes are distinct messages.
func (m *VoteMsg) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], m.Vote.Round)
	binary.LittleEndian.PutUint64(buf[8:], m.Vote.Step)
	return crypto.HashBytes("msg.vote", m.Vote.Sender[:], buf[:], m.Vote.Value[:])
}

// LimitKey enforces the §8.4 rule: relay at most one message per sender
// per (round, step).
func (m *VoteMsg) LimitKey() string {
	return fmt.Sprintf("v|%x|%d|%d", m.Vote.Sender[:8], m.Vote.Round, m.Vote.Step)
}

// PriorityGossip wraps a §6 priority announcement for flooding.
type PriorityGossip struct {
	M blockprop.PriorityMsg
}

// WireSize implements network.Message.
func (m *PriorityGossip) WireSize() int { return m.M.WireSize() }

// EncodeTo implements wire.Marshaler.
func (m *PriorityGossip) EncodeTo(e *wire.Encoder) { m.M.EncodeTo(e) }

// DecodeFrom implements wire.Unmarshaler.
func (m *PriorityGossip) DecodeFrom(d *wire.Decoder) { m.M.DecodeFrom(d) }

// ID identifies the announcement, including the bound block hash so an
// equivocator's two variants are distinct messages.
func (m *PriorityGossip) ID() crypto.Digest {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], m.M.Round)
	return crypto.HashBytes("msg.priority", m.M.Proposer[:], buf[:], m.M.Priority[:], m.M.BlockHash[:])
}

// LimitKey: priority messages are limited per proposer per round.
func (m *PriorityGossip) LimitKey() string {
	return fmt.Sprintf("p|%x|%d", m.M.Proposer[:8], m.M.Round)
}

// RelayLimit allows two variants per proposer so that equivocation
// evidence (§10.4) reaches everyone even under the §8.4 relay limit.
func (m *PriorityGossip) RelayLimit() int { return 2 }

// BlockAnnounce tells neighbors "I hold this block" — the inv of the
// pull-based block dissemination. Announcer is transport metadata (whom
// to request from); the signed core is the proposer's PriorityMsg.
type BlockAnnounce struct {
	M         blockprop.PriorityMsg
	Announcer int
}

// WireSize implements network.Message.
func (m *BlockAnnounce) WireSize() int { return m.M.WireSize() + 4 }

// EncodeTo implements wire.Marshaler.
func (m *BlockAnnounce) EncodeTo(e *wire.Encoder) {
	m.M.EncodeTo(e)
	e.Int(m.Announcer)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *BlockAnnounce) DecodeFrom(d *wire.Decoder) {
	m.M.DecodeFrom(d)
	m.Announcer = d.Int()
}

// ID covers the announcer: each holder announces once.
func (m *BlockAnnounce) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], m.M.Round)
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.Announcer))
	return crypto.HashBytes("msg.announce", m.M.Proposer[:], buf[:], m.M.BlockHash[:])
}

// LimitKey: announcements are never relayed (each holder gossips its
// own), so no limit is needed.
func (m *BlockAnnounce) LimitKey() string { return "" }

// BlockRequest asks an announcer for a block body (the getdata).
type BlockRequest struct {
	Hash      crypto.Digest
	Requester int
	Nonce     uint64
}

// WireSize implements network.Message.
func (m *BlockRequest) WireSize() int { return 32 + 4 + 8 }

// EncodeTo implements wire.Marshaler.
func (m *BlockRequest) EncodeTo(e *wire.Encoder) {
	e.Fixed(m.Hash[:])
	e.Int(m.Requester)
	e.Uint64(m.Nonce)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *BlockRequest) DecodeFrom(d *wire.Decoder) {
	d.Fixed(m.Hash[:])
	m.Requester = d.Int()
	m.Nonce = d.Uint64()
}

// ID is unique per request.
func (m *BlockRequest) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(m.Requester))
	binary.LittleEndian.PutUint64(buf[8:], m.Nonce)
	return crypto.HashBytes("msg.blockreq", m.Hash[:], buf[:])
}

// LimitKey: requests are unicast, never relayed.
func (m *BlockRequest) LimitKey() string { return "" }

// BlockGossip carries a full block body, sent unicast in response to a
// BlockRequest. It is never relayed; dissemination happens through the
// announce/request cycle.
type BlockGossip struct {
	M blockprop.BlockMsg
	// Recipient disambiguates transfers of the same block to different
	// requesters for duplicate suppression.
	Recipient int
}

// WireSize implements network.Message.
func (m *BlockGossip) WireSize() int { return m.M.WireSize() + 4 }

// EncodeTo implements wire.Marshaler.
func (m *BlockGossip) EncodeTo(e *wire.Encoder) {
	m.M.EncodeTo(e)
	e.Int(m.Recipient)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *BlockGossip) DecodeFrom(d *wire.Decoder) {
	m.M.DecodeFrom(d)
	m.Recipient = d.Int()
}

// ID covers the block hash, the proposal credentials, and the
// recipient: the same body sent to two requesters is two transfers.
func (m *BlockGossip) ID() crypto.Digest {
	h := m.M.Block.Hash()
	p := m.M.Proposer()
	return crypto.HashUint64("msg.block", m.M.Round()<<16|uint64(m.Recipient), h[:], p[:])
}

// LimitKey: transfers are unicast, never relayed.
func (m *BlockGossip) LimitKey() string { return "" }

// TxMsg carries a payment submitted by a user (Figure 1).
type TxMsg struct {
	Tx ledger.Transaction
}

// WireSize implements network.Message.
func (m *TxMsg) WireSize() int { return m.Tx.WireSize() }

// EncodeTo implements wire.Marshaler.
func (m *TxMsg) EncodeTo(e *wire.Encoder) { m.Tx.EncodeTo(e) }

// DecodeFrom implements wire.Unmarshaler.
func (m *TxMsg) DecodeFrom(d *wire.Decoder) { m.Tx.DecodeFrom(d) }

// ID is the transaction ID.
func (m *TxMsg) ID() crypto.Digest {
	return crypto.HashBytes("msg.tx", m.Tx.SigningBytes())
}

// LimitKey: transactions are not rate-limited per step.
func (m *TxMsg) LimitKey() string { return "" }

// MaxTxBatchBytes caps the cumulative encoded size of the transactions
// in one TxBatch message. Peers sending larger batches are malformed
// (realnet scores and drops them); honest flushes pack below the cap.
const MaxTxBatchBytes = 128 << 10

// maxTxBatchTxs bounds the element count a decoder will accept.
const maxTxBatchTxs = MaxTxBatchBytes / ledger.TxMinWireSize

// TxBatch carries freshly admitted transactions in bulk, so tx gossip
// costs one frame per flush interval instead of one per payment.
// Batches are never relayed verbatim: each receiver admits the
// transactions through its own txflow pipeline and re-batches whatever
// was fresh for its neighbors, so duplicate suppression falls out of
// the mempool instead of the gossip seen-cache.
type TxBatch struct {
	Txns []ledger.Transaction
}

// WireSize implements network.Message.
func (m *TxBatch) WireSize() int {
	total := 4
	for i := range m.Txns {
		total += m.Txns[i].WireSize()
	}
	return total
}

// EncodeTo implements wire.Marshaler.
func (m *TxBatch) EncodeTo(e *wire.Encoder) {
	e.Int(len(m.Txns))
	for i := range m.Txns {
		m.Txns[i].EncodeTo(e)
	}
}

// DecodeFrom implements wire.Unmarshaler. Hostile counts are rejected
// twice over: Count bounds the element count by the remaining input,
// and the cumulative size cap fails batches above MaxTxBatchBytes.
func (m *TxBatch) DecodeFrom(d *wire.Decoder) {
	n := d.Count(ledger.TxMinWireSize)
	if n > maxTxBatchTxs {
		d.Fail(fmt.Errorf("node: tx batch of %d exceeds cap %d", n, maxTxBatchTxs))
		return
	}
	m.Txns = nil
	if n == 0 {
		return
	}
	m.Txns = make([]ledger.Transaction, n)
	total := 4
	for i := range m.Txns {
		m.Txns[i].DecodeFrom(d)
		if d.Err() != nil {
			m.Txns = nil
			return
		}
		total += m.Txns[i].WireSize()
	}
	if total > MaxTxBatchBytes {
		m.Txns = nil
		d.Fail(fmt.Errorf("node: tx batch payload %d exceeds cap %d", total, MaxTxBatchBytes))
	}
}

// ID hashes the contained transaction IDs: identical re-batches are
// the same message to the duplicate-suppression layer.
func (m *TxBatch) ID() crypto.Digest {
	ids := make([]byte, 0, 32*len(m.Txns))
	for i := range m.Txns {
		id := m.Txns[i].ID()
		ids = append(ids, id[:]...)
	}
	return crypto.HashBytes("msg.txbatch", ids)
}

// LimitKey: batches are never relayed (receivers re-batch), so no
// relay limit applies.
func (m *TxBatch) LimitKey() string { return "" }

// BlockFill is a bare committed-block body answering a resolveBlock
// fallback request (§7.1 "obtain it from other users"); unlike
// BlockGossip it carries no proposal credentials — the requester
// already knows the agreed hash and validates against it.
type BlockFill struct {
	Block     *ledger.Block
	Recipient int
}

// WireSize implements network.Message.
func (m *BlockFill) WireSize() int { return m.Block.WireSize() + 4 }

// EncodeTo implements wire.Marshaler.
func (m *BlockFill) EncodeTo(e *wire.Encoder) {
	m.Block.EncodeTo(e)
	e.Int(m.Recipient)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *BlockFill) DecodeFrom(d *wire.Decoder) {
	m.Block = new(ledger.Block)
	m.Block.DecodeFrom(d)
	m.Recipient = d.Int()
}

// ID covers block hash and recipient.
func (m *BlockFill) ID() crypto.Digest {
	h := m.Block.Hash()
	return crypto.HashUint64("msg.blockfill", uint64(m.Recipient), h[:])
}

// LimitKey: unicast, never relayed.
func (m *BlockFill) LimitKey() string { return "" }

// ChainRequest asks a peer for committed blocks and certificates
// starting at a round (the §8.3 catch-up protocol).
type ChainRequest struct {
	FromRound uint64
	MaxBlocks int
	Requester int
	Nonce     uint64
}

// WireSize implements network.Message.
func (m *ChainRequest) WireSize() int { return 8 + 4 + 4 + 8 }

// EncodeTo implements wire.Marshaler.
func (m *ChainRequest) EncodeTo(e *wire.Encoder) {
	e.Uint64(m.FromRound)
	e.Int(m.MaxBlocks)
	e.Int(m.Requester)
	e.Uint64(m.Nonce)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *ChainRequest) DecodeFrom(d *wire.Decoder) {
	m.FromRound = d.Uint64()
	m.MaxBlocks = d.Int()
	m.Requester = d.Int()
	m.Nonce = d.Uint64()
}

// ID is unique per request.
func (m *ChainRequest) ID() crypto.Digest {
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[:8], m.FromRound)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m.Requester))
	binary.LittleEndian.PutUint64(buf[16:], m.Nonce)
	return crypto.HashBytes("msg.chainreq", buf[:])
}

// LimitKey: unicast, never relayed.
func (m *ChainRequest) LimitKey() string { return "" }

// ChainReply returns a contiguous run of blocks with their §8.3
// certificates. The receiver validates everything; nothing is trusted.
type ChainReply struct {
	Blocks    []*ledger.Block
	Certs     []*ledger.Certificate
	Recipient int
	Nonce     uint64
}

// WireSize implements network.Message.
func (m *ChainReply) WireSize() int {
	total := 4 + 4 + 4 + 8 // two counts, recipient, nonce
	for _, b := range m.Blocks {
		total += b.WireSize()
	}
	for _, c := range m.Certs {
		total += c.WireSize()
	}
	return total
}

// EncodeTo implements wire.Marshaler.
func (m *ChainReply) EncodeTo(e *wire.Encoder) {
	e.Int(len(m.Blocks))
	for _, b := range m.Blocks {
		b.EncodeTo(e)
	}
	e.Int(len(m.Certs))
	for _, c := range m.Certs {
		c.EncodeTo(e)
	}
	e.Int(m.Recipient)
	e.Uint64(m.Nonce)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *ChainReply) DecodeFrom(d *wire.Decoder) {
	nb := d.Count(1)
	m.Blocks = nil
	for i := 0; i < nb; i++ {
		b := new(ledger.Block)
		b.DecodeFrom(d)
		if d.Err() != nil {
			return
		}
		m.Blocks = append(m.Blocks, b)
	}
	nc := d.Count(1)
	m.Certs = nil
	for i := 0; i < nc; i++ {
		c := new(ledger.Certificate)
		c.DecodeFrom(d)
		if d.Err() != nil {
			return
		}
		m.Certs = append(m.Certs, c)
	}
	m.Recipient = d.Int()
	m.Nonce = d.Uint64()
}

// ID is unique per reply.
func (m *ChainReply) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(m.Recipient))
	binary.LittleEndian.PutUint64(buf[8:], m.Nonce)
	first := uint64(0)
	if len(m.Blocks) > 0 {
		first = m.Blocks[0].Round
	}
	return crypto.HashUint64("msg.chainreply", first, buf[:])
}

// LimitKey: unicast, never relayed.
func (m *ChainReply) LimitKey() string { return "" }

// CommitAnnounce tells neighbors "round Round committed with this
// block hash". It is the feed gateway read models tail (the access
// tier's lag-tolerant view of the chain): each node announces its own
// commits to its direct neighbors and the message is never relayed —
// a gateway neighbors several consensus nodes, so it hears every round
// announced independently by each of them and can demand a quorum of
// matching announcers before fetching the body (BlockRequest →
// BlockFill, or ChainRequest for gap fill). Consensus nodes ignore it.
type CommitAnnounce struct {
	Round     uint64
	Hash      crypto.Digest
	Announcer int
}

// WireSize implements network.Message.
func (m *CommitAnnounce) WireSize() int { return 8 + 32 + 4 }

// EncodeTo implements wire.Marshaler.
func (m *CommitAnnounce) EncodeTo(e *wire.Encoder) {
	e.Uint64(m.Round)
	e.Fixed(m.Hash[:])
	e.Int(m.Announcer)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *CommitAnnounce) DecodeFrom(d *wire.Decoder) {
	m.Round = d.Uint64()
	d.Fixed(m.Hash[:])
	m.Announcer = d.Int()
}

// ID covers the announcer: each node announces each commit once.
func (m *CommitAnnounce) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], m.Round)
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.Announcer))
	return crypto.HashBytes("msg.commitann", buf[:], m.Hash[:])
}

// LimitKey: announcements are never relayed (each committer gossips
// its own), so no relay limit is needed.
func (m *CommitAnnounce) LimitKey() string { return "" }

// SnapshotRequest asks a peer for its newest state checkpoint (the
// fast-sync handshake): a restarting or joining node fetches a
// verified snapshot and replays only the delta past it, instead of
// the whole chain from genesis.
type SnapshotRequest struct {
	// MinRound filters checkpoints the requester already has: peers
	// whose newest checkpoint is at or below it stay silent.
	MinRound  uint64
	Requester int
	Nonce     uint64
}

// WireSize implements network.Message.
func (m *SnapshotRequest) WireSize() int { return 8 + 4 + 8 }

// EncodeTo implements wire.Marshaler.
func (m *SnapshotRequest) EncodeTo(e *wire.Encoder) {
	e.Uint64(m.MinRound)
	e.Int(m.Requester)
	e.Uint64(m.Nonce)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *SnapshotRequest) DecodeFrom(d *wire.Decoder) {
	m.MinRound = d.Uint64()
	m.Requester = d.Int()
	m.Nonce = d.Uint64()
}

// ID is unique per request.
func (m *SnapshotRequest) ID() crypto.Digest {
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[:8], m.MinRound)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m.Requester))
	binary.LittleEndian.PutUint64(buf[16:], m.Nonce)
	return crypto.HashBytes("msg.snapreq", buf[:])
}

// LimitKey: unicast, never relayed.
func (m *SnapshotRequest) LimitKey() string { return "" }

// SnapshotReply carries one full checkpoint. The receiver trusts
// nothing: it verifies the certificate against the committee and the
// account table against the block header's state root before adopting
// any of it, exactly as it would a chain served by a peer.
type SnapshotReply struct {
	Checkpoint *ledger.Checkpoint
	Recipient  int
	Nonce      uint64
}

// WireSize implements network.Message.
func (m *SnapshotReply) WireSize() int { return m.Checkpoint.WireSize() + 4 + 8 }

// EncodeTo implements wire.Marshaler.
func (m *SnapshotReply) EncodeTo(e *wire.Encoder) {
	m.Checkpoint.EncodeTo(e)
	e.Int(m.Recipient)
	e.Uint64(m.Nonce)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *SnapshotReply) DecodeFrom(d *wire.Decoder) {
	m.Checkpoint = new(ledger.Checkpoint)
	m.Checkpoint.DecodeFrom(d)
	m.Recipient = d.Int()
	m.Nonce = d.Uint64()
}

// ID is unique per reply.
func (m *SnapshotReply) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(m.Recipient))
	binary.LittleEndian.PutUint64(buf[8:], m.Nonce)
	return crypto.HashUint64("msg.snapreply", m.Checkpoint.Round(), buf[:])
}

// LimitKey: unicast, never relayed.
func (m *SnapshotReply) LimitKey() string { return "" }

// --- Wire registry ----------------------------------------------------------

// Frame type tags, one per gossip message type. These are wire format:
// never renumber an existing tag.
const (
	TagVote byte = 1 + iota
	TagPriority
	TagBlockAnnounce
	TagBlockRequest
	TagBlockGossip
	TagTx
	TagBlockFill
	TagChainRequest
	TagChainReply
	TagTxBatch
	TagCommitAnnounce
	TagSnapshotRequest
	TagSnapshotReply
)

// wireMessage is the constraint every gossip message satisfies: the
// network contract plus the canonical codec.
type wireMessage interface {
	network.Message
	wire.Marshaler
	wire.Unmarshaler
}

// MessageTag returns the frame tag for a gossip message.
func MessageTag(m network.Message) (byte, bool) {
	switch m.(type) {
	case *VoteMsg:
		return TagVote, true
	case *PriorityGossip:
		return TagPriority, true
	case *BlockAnnounce:
		return TagBlockAnnounce, true
	case *BlockRequest:
		return TagBlockRequest, true
	case *BlockGossip:
		return TagBlockGossip, true
	case *TxMsg:
		return TagTx, true
	case *BlockFill:
		return TagBlockFill, true
	case *ChainRequest:
		return TagChainRequest, true
	case *ChainReply:
		return TagChainReply, true
	case *TxBatch:
		return TagTxBatch, true
	case *CommitAnnounce:
		return TagCommitAnnounce, true
	case *SnapshotRequest:
		return TagSnapshotRequest, true
	case *SnapshotReply:
		return TagSnapshotReply, true
	}
	return 0, false
}

// NewMessage returns a fresh message of the tagged type, or nil for an
// unknown tag.
func NewMessage(tag byte) network.Message {
	switch tag {
	case TagVote:
		return new(VoteMsg)
	case TagPriority:
		return new(PriorityGossip)
	case TagBlockAnnounce:
		return new(BlockAnnounce)
	case TagBlockRequest:
		return new(BlockRequest)
	case TagBlockGossip:
		return new(BlockGossip)
	case TagTx:
		return new(TxMsg)
	case TagBlockFill:
		return new(BlockFill)
	case TagChainRequest:
		return new(ChainRequest)
	case TagChainReply:
		return new(ChainReply)
	case TagTxBatch:
		return new(TxBatch)
	case TagCommitAnnounce:
		return new(CommitAnnounce)
	case TagSnapshotRequest:
		return new(SnapshotRequest)
	case TagSnapshotReply:
		return new(SnapshotReply)
	}
	return nil
}

// EncodeMessage encodes a gossip message into its frame tag and
// canonical payload.
func EncodeMessage(m network.Message) (tag byte, payload []byte, err error) {
	tag, ok := MessageTag(m)
	if !ok {
		return 0, nil, fmt.Errorf("node: %T is not a wire message", m)
	}
	e := wire.NewEncoderSize(m.WireSize())
	m.(wireMessage).EncodeTo(e)
	return tag, e.Data(), nil
}

// DecodeMessage reconstructs a gossip message from its frame tag and
// payload. It never panics on malformed input and requires the payload
// to be fully consumed.
func DecodeMessage(tag byte, payload []byte) (network.Message, error) {
	m := NewMessage(tag)
	if m == nil {
		return nil, fmt.Errorf("node: unknown message tag %d", tag)
	}
	if err := wire.Decode(payload, m.(wireMessage)); err != nil {
		return nil, err
	}
	return m, nil
}
