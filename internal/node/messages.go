package node

import (
	"encoding/binary"
	"fmt"

	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
)

// VoteMsg wraps a BA⋆ vote for the gossip network.
type VoteMsg struct {
	Vote ledger.Vote
}

// WireSize implements network.Message.
func (m *VoteMsg) WireSize() int { return ledger.VoteWireSize }

// ID identifies the exact vote (sender, round, step, value): an
// equivocating sender's two votes are distinct messages.
func (m *VoteMsg) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], m.Vote.Round)
	binary.LittleEndian.PutUint64(buf[8:], m.Vote.Step)
	return crypto.HashBytes("msg.vote", m.Vote.Sender[:], buf[:], m.Vote.Value[:])
}

// LimitKey enforces the §8.4 rule: relay at most one message per sender
// per (round, step).
func (m *VoteMsg) LimitKey() string {
	return fmt.Sprintf("v|%x|%d|%d", m.Vote.Sender[:8], m.Vote.Round, m.Vote.Step)
}

// PriorityGossip wraps a §6 priority announcement for flooding.
type PriorityGossip struct {
	M blockprop.PriorityMsg
}

// WireSize implements network.Message.
func (m *PriorityGossip) WireSize() int { return blockprop.PriorityMsgWireSize }

// ID identifies the announcement, including the bound block hash so an
// equivocator's two variants are distinct messages.
func (m *PriorityGossip) ID() crypto.Digest {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], m.M.Round)
	return crypto.HashBytes("msg.priority", m.M.Proposer[:], buf[:], m.M.Priority[:], m.M.BlockHash[:])
}

// LimitKey: priority messages are limited per proposer per round.
func (m *PriorityGossip) LimitKey() string {
	return fmt.Sprintf("p|%x|%d", m.M.Proposer[:8], m.M.Round)
}

// RelayLimit allows two variants per proposer so that equivocation
// evidence (§10.4) reaches everyone even under the §8.4 relay limit.
func (m *PriorityGossip) RelayLimit() int { return 2 }

// BlockAnnounce tells neighbors "I hold this block" — the inv of the
// pull-based block dissemination. Announcer is transport metadata (whom
// to request from); the signed core is the proposer's PriorityMsg.
type BlockAnnounce struct {
	M         blockprop.PriorityMsg
	Announcer int
}

// WireSize implements network.Message.
func (m *BlockAnnounce) WireSize() int { return blockprop.PriorityMsgWireSize + 4 }

// ID covers the announcer: each holder announces once.
func (m *BlockAnnounce) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], m.M.Round)
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.Announcer))
	return crypto.HashBytes("msg.announce", m.M.Proposer[:], buf[:], m.M.BlockHash[:])
}

// LimitKey: announcements are never relayed (each holder gossips its
// own), so no limit is needed.
func (m *BlockAnnounce) LimitKey() string { return "" }

// BlockRequest asks an announcer for a block body (the getdata).
type BlockRequest struct {
	Hash      crypto.Digest
	Requester int
	Nonce     uint64
}

// WireSize implements network.Message.
func (m *BlockRequest) WireSize() int { return 32 + 4 + 8 }

// ID is unique per request.
func (m *BlockRequest) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(m.Requester))
	binary.LittleEndian.PutUint64(buf[8:], m.Nonce)
	return crypto.HashBytes("msg.blockreq", m.Hash[:], buf[:])
}

// LimitKey: requests are unicast, never relayed.
func (m *BlockRequest) LimitKey() string { return "" }

// BlockGossip carries a full block body, sent unicast in response to a
// BlockRequest. It is never relayed; dissemination happens through the
// announce/request cycle.
type BlockGossip struct {
	M blockprop.BlockMsg
	// Recipient disambiguates transfers of the same block to different
	// requesters for duplicate suppression.
	Recipient int
}

// WireSize implements network.Message.
func (m *BlockGossip) WireSize() int { return m.M.WireSize() }

// ID covers the block hash, the proposal credentials, and the
// recipient: the same body sent to two requesters is two transfers.
func (m *BlockGossip) ID() crypto.Digest {
	h := m.M.Block.Hash()
	p := m.M.Proposer()
	return crypto.HashUint64("msg.block", m.M.Round()<<16|uint64(m.Recipient), h[:], p[:])
}

// LimitKey: transfers are unicast, never relayed.
func (m *BlockGossip) LimitKey() string { return "" }

// TxMsg carries a payment submitted by a user (Figure 1).
type TxMsg struct {
	Tx ledger.Transaction
}

// WireSize implements network.Message.
func (m *TxMsg) WireSize() int { return ledger.TxWireSize }

// ID is the transaction ID.
func (m *TxMsg) ID() crypto.Digest {
	return crypto.HashBytes("msg.tx", m.Tx.SigningBytes())
}

// LimitKey: transactions are not rate-limited per step.
func (m *TxMsg) LimitKey() string { return "" }

// BlockFill is a bare committed-block body answering a resolveBlock
// fallback request (§7.1 "obtain it from other users"); unlike
// BlockGossip it carries no proposal credentials — the requester
// already knows the agreed hash and validates against it.
type BlockFill struct {
	Block     *ledger.Block
	Recipient int
}

// WireSize implements network.Message.
func (m *BlockFill) WireSize() int { return m.Block.WireSize() }

// ID covers block hash and recipient.
func (m *BlockFill) ID() crypto.Digest {
	h := m.Block.Hash()
	return crypto.HashUint64("msg.blockfill", uint64(m.Recipient), h[:])
}

// LimitKey: unicast, never relayed.
func (m *BlockFill) LimitKey() string { return "" }

// ChainRequest asks a peer for committed blocks and certificates
// starting at a round (the §8.3 catch-up protocol).
type ChainRequest struct {
	FromRound uint64
	MaxBlocks int
	Requester int
	Nonce     uint64
}

// WireSize implements network.Message.
func (m *ChainRequest) WireSize() int { return 8 + 8 + 4 + 8 }

// ID is unique per request.
func (m *ChainRequest) ID() crypto.Digest {
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[:8], m.FromRound)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m.Requester))
	binary.LittleEndian.PutUint64(buf[16:], m.Nonce)
	return crypto.HashBytes("msg.chainreq", buf[:])
}

// LimitKey: unicast, never relayed.
func (m *ChainRequest) LimitKey() string { return "" }

// ChainReply returns a contiguous run of blocks with their §8.3
// certificates. The receiver validates everything; nothing is trusted.
type ChainReply struct {
	Blocks    []*ledger.Block
	Certs     []*ledger.Certificate
	Recipient int
	Nonce     uint64
}

// WireSize implements network.Message.
func (m *ChainReply) WireSize() int {
	total := 16
	for _, b := range m.Blocks {
		total += b.WireSize()
	}
	for _, c := range m.Certs {
		total += c.WireSize()
	}
	return total
}

// ID is unique per reply.
func (m *ChainReply) ID() crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(m.Recipient))
	binary.LittleEndian.PutUint64(buf[8:], m.Nonce)
	first := uint64(0)
	if len(m.Blocks) > 0 {
		first = m.Blocks[0].Round
	}
	return crypto.HashUint64("msg.chainreply", first, buf[:])
}

// LimitKey: unicast, never relayed.
func (m *ChainReply) LimitKey() string { return "" }
