package node_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"algorand/internal/diskfault"
	"algorand/internal/sim"
	"algorand/internal/wire"
)

// walMagic mirrors the diskstore record magic ("AWL1" little-endian);
// the test parses segment framing to corrupt an exact record.
func walMagic() uint32 { return binary.LittleEndian.Uint32([]byte("AWL1")) }

// newestSegment returns the path of the highest-numbered WAL segment in
// a node's data dir.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	for _, e := range entries {
		if best == "" || e.Name() > best { // zero-padded names sort correctly
			best = e.Name()
		}
	}
	if best == "" {
		t.Fatal("no segment files")
	}
	return filepath.Join(dir, best)
}

// walRecords parses a segment's record framing, returning each record's
// start offset and payload length.
func walRecords(t *testing.T, data []byte) (offs, lens []int) {
	t.Helper()
	const headerSize = 12
	for off := 0; off+headerSize <= len(data); {
		if binary.LittleEndian.Uint32(data[off:]) != walMagic() {
			break
		}
		l := int(binary.LittleEndian.Uint32(data[off+4:]))
		if off+headerSize+l > len(data) {
			break
		}
		offs = append(offs, off)
		lens = append(lens, l)
		off += headerSize + l
	}
	return offs, lens
}

// TestDurableRestartRecoversFromDisk is the PR's acceptance path end to
// end: a cluster runs with on-disk archives while diskfault scripts a
// torn write and an fsync failure against the victim's WAL (absorbed
// live by rotate-and-retry); the victim is then SIGKILLed mid-commit —
// modeled as a half-written record appended to its newest segment plus
// a corrupted byte in an earlier record (bit rot). The restart must
// recover from the data dir alone: truncate the torn tail, drop the
// corrupt record at its checksum, re-verify every surviving
// certificate, rejoin via delta catch-up from the last durable round,
// and finish with a chain byte-for-byte equal to the network's.
func TestDurableRestartRecoversFromDisk(t *testing.T) {
	cfg := sim.DefaultConfig(16, 10)
	fastParams(&cfg)
	cfg.DataDir = t.TempDir()
	inj := diskfault.New(nil)
	cfg.DiskFS = inj

	const victim = 3
	// Live faults on the victim's commit path: tear the write crossing
	// byte 200 of its first segment (inside the round-1 record), and
	// fail an fsync on its second segment once 5000 bytes are down.
	inj.Script(filepath.Join("node-3", "seg-00000001.wal"),
		diskfault.Script{{After: 200, Act: diskfault.TornWrite}})
	inj.Script(filepath.Join("node-3", "seg-00000002.wal"),
		diskfault.Script{{After: 5000, Act: diskfault.FailSync}})

	c := sim.NewCluster(cfg)
	victimDir := filepath.Join(cfg.DataDir, "node-3")

	var restored uint64
	var restartErr error
	var chainAtCrash uint64
	var faultsAtCrash, truncatedAtCrash int
	corrupted := false
	c.Sim.After(8*time.Second, func() {
		c.CrashNode(victim)
		chainAtCrash = c.Nodes[victim].Ledger().ChainLength()
		st := c.Archive(victim).Stats()
		faultsAtCrash = st.WriteErrors + st.SyncErrors

		// SIGKILL mid-commit: a half-written record at the newest
		// segment's tail (header claims 4 KiB, 20 bytes present)...
		seg := newestSegment(t, victimDir)
		tail := make([]byte, 32)
		binary.LittleEndian.PutUint32(tail[0:4], walMagic())
		binary.LittleEndian.PutUint32(tail[4:8], 4096)
		f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Errorf("appending torn tail: %v", err)
			return
		}
		f.Write(tail)
		f.Close()
		truncatedAtCrash = len(tail)

		// ...and bit rot in the last complete record of that segment.
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Errorf("reading segment: %v", err)
			return
		}
		offs, lens := walRecords(t, data)
		if n := len(offs); n > 1 { // never corrupt the meta record
			i := n - 1
			data[offs[i]+12+lens[i]/2] ^= 0xFF
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Errorf("writing corrupted segment: %v", err)
				return
			}
			corrupted = true
		}
	})
	c.Sim.After(14*time.Second, func() {
		_, restored, restartErr = c.RestartNode(victim, 10*time.Minute)
	})

	c.Run()

	if restartErr != nil {
		t.Fatalf("restart: %v", restartErr)
	}
	if chainAtCrash < 2 || chainAtCrash >= cfg.Rounds {
		t.Fatalf("crash at chain length %d breaks the test premise", chainAtCrash)
	}
	if faultsAtCrash == 0 {
		t.Fatalf("scripted disk faults never fired before the crash (injector fired %d)", inj.Fired())
	}
	if !corrupted {
		t.Fatal("newest segment had no record to corrupt; test premise broken")
	}
	if restored == 0 {
		t.Fatal("disk recovery restored nothing")
	}
	if restored >= chainAtCrash {
		t.Fatalf("restored %d rounds, but the corrupt record should have cost at least one (chain was %d)",
			restored, chainAtCrash)
	}
	st := c.Archive(victim).Stats()
	if st.TruncatedBytes < int64(truncatedAtCrash) {
		t.Fatalf("recovery truncated %d bytes, want ≥ %d (the torn tail)", st.TruncatedBytes, truncatedAtCrash)
	}
	if st.DroppedRecords == 0 {
		t.Fatal("recovery dropped no records despite the corrupted one")
	}

	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	repl := c.Nodes[victim]
	if repl.PersistErrors() != 0 {
		t.Fatalf("replacement reported %d persist errors", repl.PersistErrors())
	}
	if got := repl.Ledger().ChainLength(); got != cfg.Rounds {
		t.Fatalf("replacement chain length %d, want %d", got, cfg.Rounds)
	}
	// Byte-for-byte: the recovered-and-caught-up chain equals the chain
	// a node that never crashed committed.
	ref := c.Nodes[0].Ledger()
	for r := uint64(1); r <= cfg.Rounds; r++ {
		want, ok1 := ref.BlockAt(r)
		got, ok2 := repl.Ledger().BlockAt(r)
		if !ok1 || !ok2 {
			t.Fatalf("round %d missing (ref %v, replacement %v)", r, ok1, ok2)
		}
		if string(wire.Encode(want)) != string(wire.Encode(got)) {
			t.Fatalf("round %d: recovered chain is not byte-identical", r)
		}
	}
}

// TestDurableRestartCleanShutdown: without any injected damage, a
// restart from disk restores the whole pre-crash chain (no round is
// sacrificed) and the replacement keeps extending the same archive.
func TestDurableRestartCleanShutdown(t *testing.T) {
	cfg := sim.DefaultConfig(16, 8)
	fastParams(&cfg)
	cfg.DataDir = t.TempDir()

	const victim = 5
	var restored, chainAtCrash uint64
	var restartErr error
	c := sim.NewCluster(cfg)
	c.Sim.After(8*time.Second, func() {
		c.CrashNode(victim)
		chainAtCrash = c.Nodes[victim].Ledger().ChainLength()
	})
	c.Sim.After(12*time.Second, func() {
		_, restored, restartErr = c.RestartNode(victim, 10*time.Minute)
	})
	c.Run()

	if restartErr != nil {
		t.Fatalf("restart: %v", restartErr)
	}
	if chainAtCrash == 0 {
		t.Fatal("crash before round 1; premise broken")
	}
	if restored < chainAtCrash {
		t.Fatalf("restored %d rounds from a clean archive of %d", restored, chainAtCrash)
	}
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseArchives(); err != nil {
		t.Fatalf("closing archives: %v", err)
	}
	// The archive now holds the full run durably: a cold re-open (as the
	// next process start would) sees every round the node committed.
	reopened := sim.NewCluster(cfg) // fresh cluster over the same DataDir
	defer reopened.CloseArchives()
	got := reopened.Archive(victim).Rounds()
	if got < int(cfg.Rounds) {
		t.Fatalf("cold re-open recovered %d rounds, want ≥ %d", got, cfg.Rounds)
	}
}
