package node_test

import (
	"testing"
	"time"

	"algorand/internal/ledger"
	"algorand/internal/sim"
)

// TestCrashRestartCatchesUp is the §8.3 crash path end to end: a node
// crashes mid-run, a replacement restores the validated prefix from the
// crashed node's archive, pulls the missing rounds from peers, and
// rejoins consensus in time to finish the run with everyone else.
func TestCrashRestartCatchesUp(t *testing.T) {
	cfg := sim.DefaultConfig(16, 10)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)

	// Rounds complete in ~2.7 virtual seconds with fastParams: crash
	// mid-run (~round 3) and restart a couple of rounds later.
	const victim = 3
	var restored uint64
	var restartErr error
	var chainAtCrash uint64
	c.Sim.After(8*time.Second, func() {
		c.CrashNode(victim)
		chainAtCrash = c.Nodes[victim].Ledger().ChainLength()
	})
	c.Sim.After(14*time.Second, func() {
		_, restored, restartErr = c.RestartNode(victim, 10*time.Minute)
	})

	c.Run()

	if restartErr != nil {
		t.Fatalf("restart: %v", restartErr)
	}
	if restored == 0 {
		t.Fatal("archive replay restored nothing; crash happened too early for the test premise")
	}
	if chainAtCrash >= cfg.Rounds {
		t.Fatal("crash happened after the run finished; test premise broken")
	}
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	repl := c.Nodes[victim]
	if got := repl.Ledger().ChainLength(); got != cfg.Rounds {
		t.Fatalf("replacement chain length %d, want %d", got, cfg.Rounds)
	}
	// The replacement's chain must be block-for-block the chain the rest
	// of the network committed.
	ref := c.Nodes[0].Ledger()
	for r := uint64(1); r <= cfg.Rounds; r++ {
		want, ok1 := ref.BlockAt(r)
		got, ok2 := repl.Ledger().BlockAt(r)
		if !ok1 || !ok2 {
			t.Fatalf("round %d missing (ref %v, replacement %v)", r, ok1, ok2)
		}
		if want.Hash() != got.Hash() {
			t.Fatalf("round %d: replacement diverged", r)
		}
	}
	// And the crashed node must not have completed rounds after the crash.
	if repl.Halted() {
		t.Fatal("replacement inherited the halt flag")
	}
}

// TestRestartFromEmptyArchive crashes a node before its archive has
// anything useful and restarts it: the replacement must rebuild the
// whole chain from peers alone.
func TestRestartFromEmptyArchive(t *testing.T) {
	cfg := sim.DefaultConfig(16, 8)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)

	const victim = 5
	c.Sim.After(time.Second, func() { // before round 1 completes
		c.CrashNode(victim)
	})
	c.Sim.After(10*time.Second, func() {
		if _, _, err := c.RestartNode(victim, 10*time.Minute); err != nil {
			t.Errorf("restart: %v", err)
		}
	})

	c.Run()

	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[victim].Ledger().ChainLength(); got != cfg.Rounds {
		t.Fatalf("replacement chain length %d, want %d", got, cfg.Rounds)
	}
}

// TestRestartRejectsTamperedArchive corrupts the crashed node's archive
// before restart: the replacement validates every archived block against
// its certificate and must refuse the forged round rather than replay it.
func TestRestartRejectsTamperedArchive(t *testing.T) {
	cfg := sim.DefaultConfig(16, 6)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)

	const victim = 7
	var restored uint64
	var restartErr error
	tampered := false
	c.Sim.After(10*time.Second, func() {
		c.CrashNode(victim)
		// Build a forged copy of the archive: round 2's block is altered
		// (block pointers are shared between nodes in the simulation, so
		// the original must not be mutated in place).
		src := c.Nodes[victim].Store()
		forgedStore := ledger.NewStore(0, 1)
		for r := uint64(1); ; r++ {
			b, ok1 := src.Block(r)
			cert, ok2 := src.Cert(r)
			if !ok1 || !ok2 {
				break
			}
			if r == 2 {
				forged := *b
				forged.Timestamp++ // changes the hash; cert no longer matches
				b = &forged
				tampered = true
			}
			forgedStore.Put(b, cert)
		}
		if !tampered {
			return // premise check below fails the test
		}
		_, restored, restartErr = c.RestartNodeFromStore(victim, forgedStore, 10*time.Minute)
	})

	c.Run()

	if !tampered {
		t.Fatal("archive had fewer than 2 rounds at crash time; test premise broken")
	}
	if restartErr == nil {
		t.Fatal("restore accepted a tampered archive block")
	}
	if restored != 1 {
		t.Fatalf("restored %d rounds before the forgery, want 1", restored)
	}
	// The untampered remainder of the network is unaffected.
	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestHaltSilencesNode pins the crash semantics: a halted node emits and
// handles nothing, so its stats freeze while the network proceeds.
func TestHaltSilencesNode(t *testing.T) {
	cfg := sim.DefaultConfig(12, 6)
	fastParams(&cfg)
	c := sim.NewCluster(cfg)

	const victim = 2
	var bytesAtCrash int64
	c.Sim.After(6*time.Second, func() { // ~round 3 of 6
		c.CrashNode(victim)
		bytesAtCrash = c.Net.NodeStats(victim).BytesSent
	})
	c.Run()

	if err := c.AgreementCheck(); err != nil {
		t.Fatal(err)
	}
	// The survivors finish all rounds without the victim.
	done := 0
	for i, n := range c.Nodes {
		if i == victim {
			continue
		}
		if n.Ledger().ChainLength() == cfg.Rounds {
			done++
		}
	}
	if done != len(c.Nodes)-1 {
		t.Fatalf("%d/%d survivors completed all rounds", done, len(c.Nodes)-1)
	}
	// The victim sent almost nothing after the crash (an in-flight
	// transfer may still have been on its uplink).
	after := c.Net.NodeStats(victim).BytesSent - bytesAtCrash
	if after > 2048 {
		t.Fatalf("halted node sent %d bytes after crash", after)
	}
	if c.Nodes[victim].Ledger().ChainLength() >= cfg.Rounds {
		t.Fatal("halted node kept committing rounds")
	}
	tx := &ledger.Transaction{Amount: 1}
	pre := c.Net.NodeStats(victim).BytesSent
	c.Nodes[victim].SubmitTx(tx)
	if c.Net.NodeStats(victim).BytesSent != pre {
		t.Fatal("halted node gossiped a submitted transaction")
	}
}
