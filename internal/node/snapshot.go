package node

import (
	"fmt"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/vtime"
)

// This file implements checkpointed fast sync: nodes write periodic
// state checkpoints (block header + certificate + full account table),
// serve them to peers on request, and a restarting or joining node
// re-bases its ledger onto a verified checkpoint and replays only the
// delta through regular §8.3 catch-up — O(delta) recovery instead of
// O(chain).

// MisbehaviorReporter is optionally implemented by transports that
// score peer misbehavior (internal/realnet does): a peer that serves a
// snapshot failing verification is reported, feeding the transport's
// quarantine machinery.
type MisbehaviorReporter interface {
	ReportMisbehavior(peer int, reason string)
}

// maybeCheckpoint writes a state checkpoint when a commit lands on the
// checkpoint grid: every persisted round whose number is a positive
// multiple of CheckpointInterval, certified by a regular (non-recovery)
// certificate. Recovery-certified rounds are skipped — their proof
// needs the adopter's chain context, which a fast-syncing node does
// not have yet; the next grid round carries a normal certificate.
func (n *Node) maybeCheckpoint(b *ledger.Block, c *ledger.Certificate) {
	interval := n.cfg.CheckpointInterval
	if interval == 0 || b.Round == 0 || b.Round%interval != 0 {
		return
	}
	if c == nil || c.Value != b.Hash() || c.Round >= recoveryRoundBase {
		return
	}
	if n.checkpoint != nil && n.checkpoint.Round() >= b.Round {
		return
	}
	bal, ok := n.ledger.BalancesAt(b.Hash())
	if !ok {
		return
	}
	cp := ledger.CheckpointOf(b, c, bal)
	n.checkpoint = cp
	if n.archive != nil {
		if err := n.archive.AppendCheckpoint(cp); err != nil {
			n.persistErrors.Add(1)
			n.persistErrCounter.Inc()
		}
	}
}

// Checkpoint returns the newest state snapshot this node holds, if any.
func (n *Node) Checkpoint() (*ledger.Checkpoint, bool) {
	return n.checkpoint, n.checkpoint != nil
}

// handleSnapshotRequest serves this node's newest checkpoint to a
// fast-syncing peer, if it is newer than what the requester already
// has.
func (n *Node) handleSnapshotRequest(msg *SnapshotRequest) network.Verdict {
	if n.checkpoint != nil && n.checkpoint.Round() > msg.MinRound {
		n.net.Unicast(n.ID, msg.Requester, &SnapshotReply{
			Checkpoint: n.checkpoint,
			Recipient:  msg.Requester,
			Nonce:      msg.Nonce,
		})
	}
	return network.Verdict{Relay: false}
}

// snapshotInbox returns the mailbox snapshot replies are routed to.
func (n *Node) snapshotInbox() *vtime.Mailbox {
	if n.snapReplies == nil {
		n.snapReplies = n.sim.NewMailbox()
	}
	return n.snapReplies
}

// VerifyCheckpoint checks a checkpoint as transferable proof that the
// network committed its block, using only common knowledge: the
// genesis state held by base. Structural integrity first (certificate
// is for the block, account table hashes to the header's state root),
// then the certificate itself against the committee that genesis
// context derives for the checkpointed round. Returns an error when
// the proof fails OR when base lacks the sortition context to judge it
// — a checkpoint past the first seed-refresh epoch needs chain history
// genesis alone cannot supply, and an unverifiable snapshot is treated
// exactly like a forged one: refused.
func VerifyCheckpoint(p crypto.Provider, base *ledger.Ledger, chk *ledger.Checkpoint, cp ledger.CommitteeParams) error {
	if _, err := chk.VerifyState(); err != nil {
		return err
	}
	c, b := chk.Cert, chk.Block
	if c.Round >= recoveryRoundBase {
		return fmt.Errorf("snapshot: round %d carries a recovery certificate, not syncable without chain context", b.Round)
	}
	if c.Round != b.Round {
		return fmt.Errorf("snapshot: certificate round %d does not match block round %d", c.Round, b.Round)
	}
	if !base.SortitionContextKnown(b.Round) || !base.SortitionContextKnown(b.Round+1) {
		return fmt.Errorf("snapshot: round %d is past the genesis seed epoch, context unavailable", b.Round)
	}
	seed := base.SortitionSeed(b.Round)
	weights, total := base.SortitionWeights(b.Round)
	tau, threshold := cp.TauStep, cp.StepThreshold
	if c.Final {
		tau, threshold = cp.TauFinal, cp.FinalThreshold
	} else if cp.MaxStep != 0 && c.Step > cp.MaxStep {
		return fmt.Errorf("snapshot: absurd certificate step %d", c.Step)
	}
	// Committee votes name the parent of the block they commit.
	return c.Verify(p, seed, weights, total, tau, threshold, b.PrevHash)
}

// adoptCheckpoint re-bases the node's ledger onto a checkpoint that
// has already been verified. The old ledger (and anything tentative on
// it) is discarded; the checkpoint anchors finality.
func (n *Node) adoptCheckpoint(chk *ledger.Checkpoint) error {
	l, err := ledger.NewFromCheckpoint(n.provider, n.cfg.LedgerCfg, n.genesisAccounts, n.seed0, chk)
	if err != nil {
		return err
	}
	n.ledger = l
	if n.checkpoint == nil || chk.Round() > n.checkpoint.Round() {
		n.checkpoint = chk
	}
	n.persistPut(chk.Block, chk.Cert)
	if n.archive != nil {
		if err := n.archive.AppendCheckpoint(chk); err != nil {
			n.persistErrors.Add(1)
			n.persistErrCounter.Inc()
		}
	}
	return nil
}

// trySnapshotSync asks peers round-robin for a checkpoint newer than
// our chain and adopts the first one that verifies, with backoff
// between attempts. Peers serving snapshots that fail verification are
// counted, reported to the transport's misbehavior scoring, and
// skipped; the sync then continues with the next peer. Returns whether
// the ledger was re-based — on false the caller falls back to full
// replay from its current head (ultimately genesis), so a poisoned or
// stale snapshot can delay a join but never corrupt or wedge it.
func (n *Node) trySnapshotSync(p *vtime.Proc) bool {
	peers := n.net.Neighbors(n.ID)
	if len(peers) == 0 {
		return false
	}
	inbox := n.snapshotInbox()
	committee := n.committeeParams()
	for attempt, peer := range peers {
		if attempt > 0 {
			p.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		if n.halted {
			return false
		}
		n.reqNonce++
		n.net.Unicast(n.ID, peer, &SnapshotRequest{
			MinRound:  n.ledger.ChainLength(),
			Requester: n.ID,
			Nonce:     n.reqNonce,
		})
		m, ok := p.RecvTimeout(inbox, 2*time.Second)
		if !ok {
			continue // peer has no newer checkpoint, or is gone
		}
		chk := m.(*SnapshotReply).Checkpoint
		if chk.Round() <= n.ledger.ChainLength() {
			continue
		}
		// Verification context is pure common knowledge — a fresh genesis
		// ledger — so a hostile snapshot cannot lean on any state it
		// shipped us.
		base := ledger.New(n.provider, n.cfg.LedgerCfg, n.genesisAccounts, n.seed0)
		if err := VerifyCheckpoint(n.provider, base, chk, committee); err != nil {
			n.SnapshotRejects++
			if DebugCatchup != nil {
				DebugCatchup(n.ID, fmt.Sprintf("snapshot from %d rejected: %v", peer, err), n.ledger.ChainLength())
			}
			if mr, ok := n.net.(MisbehaviorReporter); ok {
				mr.ReportMisbehavior(peer, "snapshot failed verification")
			}
			continue
		}
		if err := n.adoptCheckpoint(chk); err != nil {
			n.SnapshotRejects++
			continue
		}
		n.SnapshotSyncs++
		if DebugCatchup != nil {
			DebugCatchup(n.ID, fmt.Sprintf("snapshot sync to round %d", chk.Round()), n.ledger.ChainLength())
		}
		return true
	}
	return false
}

// RestoreFromCheckpoint re-bases the node's ledger onto a checkpoint
// recovered from its own archive. The disk is trusted no more than a
// peer: the checkpoint is verified exactly like a served snapshot, and
// a failure leaves the ledger untouched (the caller falls back to
// genesis replay of the block archive). Adopt only if it advances the
// chain.
func (n *Node) RestoreFromCheckpoint(chk *ledger.Checkpoint) (bool, error) {
	if chk == nil || chk.Round() <= n.ledger.ChainLength() {
		return false, nil
	}
	base := ledger.New(n.provider, n.cfg.LedgerCfg, n.genesisAccounts, n.seed0)
	if err := VerifyCheckpoint(n.provider, base, chk, n.committeeParams()); err != nil {
		n.SnapshotRejects++
		return false, err
	}
	if err := n.adoptCheckpoint(chk); err != nil {
		return false, err
	}
	return true, nil
}

// SyncFromSnapshotThenPeers is the full fast-sync recipe for a joining
// or restarted node: snapshot-first (checkpoint plus delta), falling
// back transparently to plain §8.3 catch-up from the current head when
// no usable snapshot is available. Returns the chain length reached.
func (n *Node) SyncFromSnapshotThenPeers(p *vtime.Proc, deadline time.Duration) (uint64, error) {
	n.trySnapshotSync(p)
	return n.SyncFromPeers(p, deadline)
}

// StartAfterSnapshotSync is StartAfterSync with the snapshot-first
// path: fetch and verify the newest peer checkpoint, re-base, then
// rejoin through the regular sync-and-run loop (which replays the
// delta past the checkpoint).
func (n *Node) StartAfterSnapshotSync(syncBudget time.Duration) {
	n.sim.Spawn(fmt.Sprintf("node-%d-snapsync", n.ID), func(p *vtime.Proc) {
		n.proc = p
		n.trySnapshotSync(p)
		n.rejoinLoop(p, syncBudget)
	})
}
