package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates what a registry entry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindGaugeFunc
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric.
type entry struct {
	name string // full name including rendered labels
	base string // name with labels stripped (exposition grouping)
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; the registration methods are idempotent (registering
// the same name twice returns the existing metric), so restart paths
// that rebuild a subsystem against the same registry keep accumulating
// into the same series.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Name renders a metric name with constant labels in Prometheus form:
// Name("x_total", "peer", "3") → `x_total{peer="3"}`. Pairs are emitted
// in the order given.
func Name(base string, labelPairs ...string) string {
	if len(labelPairs) == 0 {
		return base
	}
	if len(labelPairs)%2 != 0 {
		panic("metrics: Name requires key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labelPairs[i], labelPairs[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// baseOf strips a rendered label set off a full metric name.
func baseOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register installs e if name is free, or returns the existing entry.
// Kind mismatches are programming errors and panic.
func (r *Registry) register(name string, kind Kind, mk func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %v (was %v)", name, kind, e.kind))
		}
		return e
	}
	e := mk()
	r.entries[name] = e
	return e
}

// Counter returns the counter registered under name, creating it if
// needed. name may carry rendered labels (see Name).
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, KindCounter, func() *entry {
		return &entry{name: name, base: baseOf(name), help: help, kind: KindCounter, counter: &Counter{}}
	})
	return e.counter
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, KindGauge, func() *entry {
		return &entry{name: name, base: baseOf(name), help: help, kind: KindGauge, gauge: &Gauge{}}
	})
	return e.gauge
}

// GaugeFunc registers a gauge whose value is computed by f at snapshot
// and exposition time — for occupancy numbers a subsystem already
// maintains (queue depths, cache sizes). f must be safe to call from
// any goroutine. Re-registering the same name replaces the function
// (restart paths rebuild their closures over fresh state).
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != KindGaugeFunc {
			panic(fmt.Sprintf("metrics: %s re-registered as gauge func (was %v)", name, e.kind))
		}
		e.gaugeFn = f
		return
	}
	r.entries[name] = &entry{name: name, base: baseOf(name), help: help, kind: KindGaugeFunc, gaugeFn: f}
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if needed (nil bounds = DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e := r.register(name, KindHistogram, func() *entry {
		if bounds == nil {
			bounds = DurationBuckets()
		}
		return &entry{name: name, base: baseOf(name), help: help, kind: KindHistogram, hist: NewHistogram(bounds)}
	})
	return e.hist
}

// sorted returns the entries ordered by (base, full name) for
// deterministic exposition and snapshots.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].name < out[j].name
	})
	return out
}

// WriteText writes the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE headers per metric family,
// then one sample line per series, histograms expanded into
// _bucket/_sum/_count.
func (r *Registry) WriteText(w io.Writer) error {
	var lastBase string
	for _, e := range r.sorted() {
		if e.base != lastBase {
			lastBase = e.base
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.base, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.base, e.kind); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.counter.Load())
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.gauge.Load())
		case KindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %v\n", e.name, e.gaugeFn())
		case KindHistogram:
			err = writeHistogramText(w, e)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramText expands one histogram entry into bucket lines.
func writeHistogramText(w io.Writer, e *entry) error {
	h := e.hist
	counts := h.bucketCounts()
	var cum uint64
	for i, n := range counts {
		cum += n
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%v", h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", histSeries(e.name, "_bucket", "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %v\n", histSeries(e.name, "_sum"), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", histSeries(e.name, "_count"), h.Count())
	return err
}

// histSeries derives a histogram sub-series name, splicing suffix (and
// an optional extra label) into a possibly-labeled metric name:
// histSeries(`x{a="1"}`, "_bucket", "le", "5") → `x_bucket{a="1",le="5"}`.
func histSeries(name, suffix string, labelKV ...string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i+1:len(name)-1]
	}
	if len(labelKV) == 2 {
		extra := fmt.Sprintf("%s=%q", labelKV[0], labelKV[1])
		if labels != "" {
			labels += "," + extra
		} else {
			labels = extra
		}
	}
	if labels == "" {
		return base + suffix
	}
	return base + suffix + "{" + labels + "}"
}

// Value is one metric's state in a Snapshot.
type Value struct {
	Kind string `json:"kind"`
	// Value holds counter and gauge readings.
	Value float64 `json:"value,omitempty"`
	// Histogram summary.
	Count uint64             `json:"count,omitempty"`
	Sum   float64            `json:"sum,omitempty"`
	Q     map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshot is a point-in-time JSON-able view of a registry.
type Snapshot map[string]Value

// Snapshot captures every metric's current value. Histograms are
// summarized as count/sum plus p50/p90/p99 estimates.
func (r *Registry) Snapshot() Snapshot {
	out := make(Snapshot, len(r.entries))
	for _, e := range r.sorted() {
		switch e.kind {
		case KindCounter:
			out[e.name] = Value{Kind: "counter", Value: float64(e.counter.Load())}
		case KindGauge:
			out[e.name] = Value{Kind: "gauge", Value: float64(e.gauge.Load())}
		case KindGaugeFunc:
			out[e.name] = Value{Kind: "gauge", Value: e.gaugeFn()}
		case KindHistogram:
			out[e.name] = Value{
				Kind:  "histogram",
				Count: e.hist.Count(),
				Sum:   e.hist.Sum(),
				Q: map[string]float64{
					"p50": e.hist.Quantile(0.50),
					"p90": e.hist.Quantile(0.90),
					"p99": e.hist.Quantile(0.99),
				},
			}
		}
	}
	return out
}

// Handler returns an http.Handler serving the text exposition format —
// what cmd/algorand-node mounts on -metrics-addr.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
