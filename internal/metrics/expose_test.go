package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the Prometheus text format byte-for-byte:
// HELP/TYPE headers once per family, samples sorted by (base, labels),
// histograms expanded into cumulative _bucket/_sum/_count series.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("algorand_txflow_admitted_total", "transactions admitted").Add(42)
	r.Counter(Name("algorand_realnet_frames_out_total", "peer", "0"), "frames sent per peer").Add(7)
	r.Counter(Name("algorand_realnet_frames_out_total", "peer", "1"), "frames sent per peer").Add(9)
	r.Gauge("algorand_txflow_pending", "pending transactions").Set(3)
	r.GaugeFunc("algorand_node_round", "current round", func() float64 { return 12 })
	h := r.Histogram("algorand_node_round_seconds", "round latency", []float64{0.5, 1, 2})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP algorand_node_round current round
# TYPE algorand_node_round gauge
algorand_node_round 12
# HELP algorand_node_round_seconds round latency
# TYPE algorand_node_round_seconds histogram
algorand_node_round_seconds_bucket{le="0.5"} 1
algorand_node_round_seconds_bucket{le="1"} 2
algorand_node_round_seconds_bucket{le="2"} 2
algorand_node_round_seconds_bucket{le="+Inf"} 3
algorand_node_round_seconds_sum 6
algorand_node_round_seconds_count 3
# HELP algorand_realnet_frames_out_total frames sent per peer
# TYPE algorand_realnet_frames_out_total counter
algorand_realnet_frames_out_total{peer="0"} 7
algorand_realnet_frames_out_total{peer="1"} 9
# HELP algorand_txflow_admitted_total transactions admitted
# TYPE algorand_txflow_admitted_total counter
algorand_txflow_admitted_total 42
# HELP algorand_txflow_pending pending transactions
# TYPE algorand_txflow_pending gauge
algorand_txflow_pending 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramLabeledSeries pins the label-splicing of histogram
// sub-series: the le label joins any existing constant labels.
func TestHistogramLabeledSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Name("x_seconds", "phase", "commit"), "", []float64{1})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`x_seconds_bucket{phase="commit",le="1"} 1`,
		`x_seconds_bucket{phase="commit",le="+Inf"} 1`,
		`x_seconds_sum{phase="commit"} 0.5`,
		`x_seconds_count{phase="commit"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(5)
	r.Histogram("h_seconds", "", []float64{1, 2}).Observe(1.5)
	snap := r.Snapshot()

	if v := snap["c_total"]; v.Kind != "counter" || v.Value != 5 {
		t.Fatalf("counter snapshot = %+v", v)
	}
	hv := snap["h_seconds"]
	if hv.Kind != "histogram" || hv.Count != 1 || hv.Sum != 1.5 {
		t.Fatalf("histogram snapshot = %+v", hv)
	}
	if hv.Q["p50"] < 1 || hv.Q["p50"] > 2 {
		t.Fatalf("histogram p50 = %v, want within (1,2]", hv.Q["p50"])
	}

	// The snapshot must round-trip as JSON (BENCH artifacts embed it).
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back["c_total"].Value != 5 {
		t.Fatalf("round-trip lost counter: %+v", back["c_total"])
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "requests served").Add(1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "served_total 1\n") {
		t.Fatalf("body missing sample:\n%s", body)
	}
}

func TestNameRendering(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Fatalf("Name no labels = %q", got)
	}
	if got := Name("x_total", "a", "1", "b", "two"); got != `x_total{a="1",b="two"}` {
		t.Fatalf("Name = %q", got)
	}
}
