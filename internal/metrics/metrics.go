// Package metrics is the repo's unified observability substrate: the
// counter/gauge/histogram primitives every subsystem's instrumentation
// is built on, and the named registry that snapshots and exposes them.
//
// The paper's headline claims are quantitative — one-minute confirmation
// latency, 750 MByte/h committed payload, flat scaling to 500k users
// (§10) — so the instrumentation must be cheap enough to leave on in
// every configuration that produces those numbers. Hot paths are single
// atomic operations with no locks and no allocation: a Counter.Add is
// one atomic add; a Histogram.Observe is one binary search over a small
// immutable bound slice plus two atomic adds. Registration happens once
// at construction; the registry lock is only taken when a metric is
// created or a snapshot/exposition is requested.
//
// Naming follows the Prometheus convention the exposition format
// implies: algorand_<subsystem>_<metric>[_total], with constant labels
// rendered into the registered name via Name (e.g.
// algorand_realnet_frames_out_total{peer="3"}). Counters end in _total;
// gauges and histograms do not.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a Counter must not be copied after first use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. The zero value is ready to
// use; a Gauge must not be copied after first use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets with atomic
// increments, Prometheus-style: bucket i counts observations ≤
// bounds[i], with an implicit +Inf bucket at the end. Sum is maintained
// with a CAS loop over the float64 bit pattern.
type Histogram struct {
	bounds []float64 // ascending upper bounds; immutable after creation
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a standalone (unregistered) histogram over the
// given ascending bucket upper bounds. Most callers want
// Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus base
// unit for time).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts
// by linear interpolation inside the containing bucket, the same
// estimate Prometheus's histogram_quantile computes. Returns 0 with no
// observations. The top (+Inf) bucket is clamped to its lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		// The rank falls in bucket i.
		if i == len(h.bounds) {
			// +Inf bucket: clamp to the highest finite bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(rank-cum)/n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCounts returns a stable copy of the per-bucket counts.
func (h *Histogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DurationBuckets is the default histogram layout for latencies:
// exponential from 1ms to ~137s, which brackets everything from a
// lock-free cache hit to the paper's one-minute confirmation budget.
func DurationBuckets() []float64 {
	out := make([]float64, 0, 18)
	for v := 0.001; v < 150; v *= 2 {
		out = append(out, v)
	}
	return out
}

// SizeBuckets is the default histogram layout for byte sizes:
// exponential from 64 B to 16 MiB (the span from a vote to a large
// block).
func SizeBuckets() []float64 {
	out := make([]float64, 0, 19)
	for v := 64.0; v <= 16<<20; v *= 4 {
		out = append(out, v)
	}
	return out
}
