package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "a counter"); again != c {
		t.Fatal("re-registering a counter must return the same instance")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter should panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Sum(); math.Abs(got-150) > 1e-9 {
		t.Fatalf("sum = %v, want 150", got)
	}
	// Every observation in (1,2]: quantiles interpolate inside it.
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if v := h.Quantile(q); v < 1 || v > 2 {
			t.Fatalf("Quantile(%v) = %v, want within (1,2]", q, v)
		}
	}
	// Median should sit near the middle of the bucket.
	if med := h.Quantile(0.5); math.Abs(med-1.5) > 0.51 {
		t.Fatalf("median = %v, want ≈1.5", med)
	}

	// Overflow bucket clamps to the top finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if v := h2.Quantile(0.5); v != 2 {
		t.Fatalf("overflow quantile = %v, want 2 (clamped)", v)
	}

	// Empty histogram.
	if v := NewHistogram([]float64{1}).Quantile(0.5); v != 0 {
		t.Fatalf("empty quantile = %v, want 0", v)
	}
}

func TestHistogramDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", nil)
	h.ObserveDuration(10 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("sum = %v, want 0.010", got)
	}
}

// TestConcurrentHammer updates counters, gauges and histograms from many
// goroutines while snapshots and expositions run concurrently; run under
// -race, it is the satellite's concurrency check, and the final counts
// double as a lost-update check.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	r.GaugeFunc("hammer_fn", "", func() float64 { return float64(c.Load()) })

	const (
		workers = 16
		perW    = 10000
	)
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot/exposition readers racing the writers.
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Snapshot()
				var b strings.Builder
				if err := r.WriteText(&b); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				// Late registration racing exposition must also be safe.
				if i%1000 == 0 {
					r.Counter(Name("late_total", "w", "x"), "").Inc()
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := c.Load(); got != workers*perW {
		t.Fatalf("counter lost updates: %d, want %d", got, workers*perW)
	}
	if got := g.Load(); got != workers*perW {
		t.Fatalf("gauge lost updates: %d, want %d", got, workers*perW)
	}
	if got := h.Count(); got != workers*perW {
		t.Fatalf("histogram lost observations: %d, want %d", got, workers*perW)
	}
}
