package sortition

import (
	"math"
	"testing"
	"testing/quick"

	"algorand/internal/crypto"
)

func TestExecuteVerifyAgree(t *testing.T) {
	for _, p := range []crypto.Provider{crypto.NewReal(), crypto.NewFast()} {
		t.Run(p.Name(), func(t *testing.T) {
			id := p.NewIdentity(crypto.SeedFromUint64(1))
			seed := []byte("round-seed")
			role := Role{Kind: RoleCommittee, Round: 5, Step: 2}
			const tau, w, W = 200, 50, 1000

			res := Execute(id, seed, role, tau, w, W)
			out, j := Verify(p, id.PublicKey(), res.Proof, seed, role, tau, w, W)
			if j != res.J {
				t.Fatalf("verify j=%d, execute j=%d", j, res.J)
			}
			if out != res.Output {
				t.Fatal("verify output differs")
			}
		})
	}
}

func TestVerifyRejectsWrongRole(t *testing.T) {
	p := crypto.NewFast()
	id := p.NewIdentity(crypto.SeedFromUint64(2))
	seed := []byte("seed")
	role := Role{Kind: RoleCommittee, Round: 1, Step: 1}
	res := Execute(id, seed, role, 1000, 100, 1000)

	wrongRole := Role{Kind: RoleCommittee, Round: 1, Step: 2}
	if _, j := Verify(p, id.PublicKey(), res.Proof, seed, wrongRole, 1000, 100, 1000); j != 0 {
		t.Fatal("proof accepted for wrong role")
	}
	if _, j := Verify(p, id.PublicKey(), res.Proof, []byte("other"), role, 1000, 100, 1000); j != 0 {
		t.Fatal("proof accepted for wrong seed")
	}
	other := p.NewIdentity(crypto.SeedFromUint64(3))
	if _, j := Verify(p, other.PublicKey(), res.Proof, seed, role, 1000, 100, 1000); j != 0 {
		t.Fatal("proof accepted for wrong key")
	}
}

func TestRoleBytesUnambiguous(t *testing.T) {
	a := Role{Kind: RoleCommittee, Round: 1, Step: 2}
	b := Role{Kind: RoleCommittee, Round: 2, Step: 1}
	c := Role{Kind: RoleProposer, Round: 1, Step: 2}
	if string(a.Bytes()) == string(b.Bytes()) || string(a.Bytes()) == string(c.Bytes()) {
		t.Fatal("role encodings collide")
	}
}

// TestSelectionProportionalToWeight is the central statistical check:
// across many users and rounds, each user's share of committee seats
// approaches w_i/W (Sybil resistance, §5.1).
func TestSelectionProportionalToWeight(t *testing.T) {
	p := crypto.NewFast()
	weights := []uint64{1, 5, 10, 50, 100}
	var W uint64
	for _, w := range weights {
		W += w
	}
	ids := make([]crypto.Identity, len(weights))
	for i := range ids {
		ids[i] = p.NewIdentity(crypto.SeedFromUint64(uint64(100 + i)))
	}

	const tau = 30
	const rounds = 800
	selected := make([]uint64, len(weights))
	var total uint64
	for r := 0; r < rounds; r++ {
		seed := crypto.HashUint64("test.seed", uint64(r))
		role := Role{Kind: RoleCommittee, Round: uint64(r), Step: 1}
		for i, id := range ids {
			res := Execute(id, seed[:], role, tau, weights[i], W)
			selected[i] += res.J
			total += res.J
		}
	}

	// Expected total = tau * rounds.
	wantTotal := float64(tau * rounds)
	if math.Abs(float64(total)-wantTotal) > 5*math.Sqrt(wantTotal) {
		t.Fatalf("total selections %d, want ≈%.0f", total, wantTotal)
	}
	for i, w := range weights {
		want := float64(w) / float64(W) * wantTotal
		got := float64(selected[i])
		sigma := math.Sqrt(want)
		if math.Abs(got-want) > 6*sigma+3 {
			t.Fatalf("user %d (w=%d): selected %v, want ≈%.0f", i, w, got, want)
		}
	}
}

// TestPrivacy: without the secret key, selection is unpredictable — we
// approximate this by checking that outputs across users are distinct
// and that selection status varies across rounds.
func TestSelectionVariesAcrossRounds(t *testing.T) {
	p := crypto.NewFast()
	id := p.NewIdentity(crypto.SeedFromUint64(9))
	const tau, w, W = 500, 10, 1000
	selectedCount := 0
	const rounds = 200
	for r := 0; r < rounds; r++ {
		seed := crypto.HashUint64("vary.seed", uint64(r))
		res := Execute(id, seed[:], Role{Kind: RoleCommittee, Round: uint64(r), Step: 1}, tau, w, W)
		if res.Selected() {
			selectedCount++
		}
	}
	// E[j per round] = 5, so P[selected] is essentially 1 - e^-5 ≈ 0.993;
	// requiring both some hits and some variation in J guards degeneracy.
	if selectedCount == 0 || selectedCount == rounds {
		t.Logf("selected in %d/%d rounds", selectedCount, rounds)
	}
	if selectedCount < rounds/2 {
		t.Fatalf("selected only %d/%d rounds; expected most", selectedCount, rounds)
	}
}

func TestBestPriority(t *testing.T) {
	var out crypto.VRFOutput
	out[0] = 7
	p0, idx0 := BestPriority(out, 0)
	if idx0 != 0 || p0 != (Priority{}) {
		t.Fatal("no sub-users should yield zero priority")
	}
	p1, idx1 := BestPriority(out, 1)
	if idx1 != 1 {
		t.Fatal("single sub-user should win")
	}
	p5, idx5 := BestPriority(out, 5)
	if idx5 < 1 || idx5 > 5 {
		t.Fatalf("winning index %d out of range", idx5)
	}
	// Priority with more sub-users dominates or equals.
	if p5.Less(p1) {
		t.Fatal("more sub-users cannot lower the best priority")
	}
	// Deterministic.
	p5b, idx5b := BestPriority(out, 5)
	if p5 != p5b || idx5 != idx5b {
		t.Fatal("BestPriority not deterministic")
	}
}

func TestPriorityLess(t *testing.T) {
	a := Priority{0: 1}
	b := Priority{0: 2}
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Fatal("Less ordering wrong")
	}
}

func TestSubUserHashDistinct(t *testing.T) {
	var out crypto.VRFOutput
	seen := map[crypto.Digest]bool{}
	for j := uint64(1); j <= 20; j++ {
		h := SubUserHash(out, j)
		if seen[h] {
			t.Fatal("sub-user hash collision")
		}
		seen[h] = true
	}
}

func BenchmarkExecuteFast(b *testing.B) {
	p := crypto.NewFast()
	id := p.NewIdentity(crypto.SeedFromUint64(1))
	seed := []byte("seed")
	role := Role{Kind: RoleCommittee, Round: 1, Step: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Execute(id, seed, role, 2000, 100, 100000)
	}
}

func BenchmarkVerifyReal(b *testing.B) {
	p := crypto.NewReal()
	id := p.NewIdentity(crypto.SeedFromUint64(1))
	seed := []byte("seed")
	role := Role{Kind: RoleCommittee, Round: 1, Step: 1}
	res := Execute(id, seed, role, 2000, 100, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Verify(p, id.PublicKey(), res.Proof, seed, role, 2000, 100, 100000)
	}
}

// Property: Execute and Verify agree for arbitrary parameters, and the
// result is deterministic.
func TestExecuteVerifyAgreeQuick(t *testing.T) {
	p := crypto.NewFast()
	ids := make([]crypto.Identity, 8)
	for i := range ids {
		ids[i] = p.NewIdentity(crypto.SeedFromUint64(uint64(500 + i)))
	}
	f := func(who uint8, round, step uint16, tau16, w16 uint16) bool {
		id := ids[int(who)%len(ids)]
		W := uint64(10000)
		w := uint64(w16) % W
		tau := uint64(tau16) % 3000
		seed := crypto.HashUint64("quick.seed", uint64(round))
		role := Role{Kind: RoleCommittee, Round: uint64(round), Step: uint64(step)}
		a := Execute(id, seed[:], role, tau, w, W)
		b := Execute(id, seed[:], role, tau, w, W)
		if a.J != b.J || a.Output != b.Output {
			return false
		}
		out, j := Verify(p, id.PublicKey(), a.Proof, seed[:], role, tau, w, W)
		return j == a.J && (j == 0 || out == a.Output) && a.J <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
