package sortition

import (
	"math"
	"math/rand"
	"testing"

	"algorand/internal/committee"
	"algorand/internal/crypto"
)

// skewedWeights builds a heavy-tailed stake vector: Zipf assigns
// weight ∝ 1/rank^alpha, Pareto draws i.i.d. tails. Scaled so the
// total comfortably exceeds the largest τ under test (sortition needs
// p = τ/W < 1).
func skewedWeights(t *testing.T, dist string, n int, alpha float64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(424242))
	w := make([]uint64, n)
	switch dist {
	case "zipf":
		for i := 0; i < n; i++ {
			v := math.Round(100000 / math.Pow(float64(i+1), alpha))
			if v < 1 {
				v = 1
			}
			w[i] = uint64(v)
		}
	case "pareto":
		for i := 0; i < n; i++ {
			v := math.Round(10000 * math.Pow(1-rng.Float64(), -1/alpha))
			if v < 10000 {
				v = 10000
			}
			if v > 400000 {
				v = 400000
			}
			w[i] = uint64(v)
		}
	default:
		t.Fatalf("unknown dist %q", dist)
	}
	return w
}

// TestSelectionUnderSkewedStake runs committee sortition over
// heavy-tailed (Zipf and Pareto) stake at the paper's committee sizes
// (τ_step = 2000, τ_final-scale = 10000) and demands seat allocation
// stay proportional to weight within Chernoff concentration bounds: no
// user — whale or minnow — may collect seats whose binomial upper-tail
// probability under its stake fraction is below 1e-9, the total must
// track τ per round, and the whale must actually show up (a whale
// frozen out of committees is the opposite failure: weight ignored).
//
// This is the stake-weighted counterpart of
// TestSelectionProportionalToWeight, and the unit-level ground truth
// for the chaos harness's sortition-bias invariant, which applies the
// same bound to adversarial runs.
func TestSelectionUnderSkewedStake(t *testing.T) {
	p := crypto.NewFast()
	const users = 40
	const lnTarget = -20.7 // ln(1e-9)

	cases := []struct {
		dist   string
		alpha  float64
		tau    uint64
		rounds int
	}{
		{"zipf", 1.2, 2000, 20},
		{"zipf", 1.2, 10000, 8},
		{"pareto", 1.5, 2000, 20},
		{"pareto", 1.5, 10000, 8},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dist+"/tau="+itoa(tc.tau), func(t *testing.T) {
			weights := skewedWeights(t, tc.dist, users, tc.alpha)
			var W uint64
			whale := 0
			for i, w := range weights {
				W += w
				if w > weights[whale] {
					whale = i
				}
			}
			if tc.tau >= W {
				t.Fatalf("total stake %d not above tau %d; test misconfigured", W, tc.tau)
			}
			ids := make([]crypto.Identity, users)
			for i := range ids {
				ids[i] = p.NewIdentity(crypto.SeedFromUint64(uint64(9000 + i)))
			}

			seats := make([]uint64, users)
			var total uint64
			for r := 0; r < tc.rounds; r++ {
				seed := crypto.HashUint64("skewed.seed", uint64(r))
				role := Role{Kind: RoleCommittee, Round: uint64(r), Step: 1}
				for i, id := range ids {
					res := Execute(id, seed[:], role, tc.tau, weights[i], W)
					if res.J > weights[i] {
						t.Fatalf("user %d drew %d seats from %d weight", i, res.J, weights[i])
					}
					seats[i] += res.J
					total += res.J
				}
			}

			// Total committee size tracks τ per round.
			wantTotal := float64(tc.tau) * float64(tc.rounds)
			if math.Abs(float64(total)-wantTotal) > 6*math.Sqrt(wantTotal) {
				t.Fatalf("total seats %d, want ≈%.0f", total, wantTotal)
			}

			// Concentration: each user's seats are Binomial(w·R, τ/W);
			// none may land past the 1e-9 upper tail of its own stake.
			pSel := float64(tc.tau) / float64(W)
			for i := range seats {
				n := int(weights[i]) * tc.rounds
				if lb := committee.BinomialUpperTailLog(n, pSel, int(seats[i])); lb < lnTarget {
					t.Errorf("user %d (w=%d/%d) holds %d seats, expected %.0f (Chernoff ln P ≤ %.1f)",
						i, weights[i], W, seats[i], float64(n)*pSel, lb)
				}
			}

			// The whale participates in proportion: at these committee
			// sizes its expectation is in the hundreds or thousands, so
			// half of it is an extremely loose lower bound.
			whaleWant := float64(weights[whale]) / float64(W) * wantTotal
			if float64(seats[whale]) < whaleWant/2 {
				t.Errorf("whale (w=%d/%d) holds %d seats, expected ≈%.0f",
					weights[whale], W, seats[whale], whaleWant)
			}
			t.Logf("%s τ=%d: total %d/%v, whale %d seats (want ≈%.0f)",
				tc.dist, tc.tau, total, wantTotal, seats[whale], whaleWant)
		})
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
