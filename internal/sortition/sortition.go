// Package sortition implements cryptographic sortition (§5 of the
// Algorand paper, Algorithms 1 and 2) on top of the VRF: a user is
// selected for a role in proportion to their currency weight, privately
// and non-interactively, and can prove the selection to anyone.
//
// The package also computes block-proposal priorities (§6): each
// selected sub-user's priority is H(vrfOutput || subUserIndex), and the
// user's block priority is the maximum over their selected sub-users.
package sortition

import (
	"encoding/binary"

	"algorand/internal/binomial"
	"algorand/internal/crypto"
)

// Role identifies what a user may be selected for: proposing a block in
// a round, or serving on the committee of a specific BA⋆ step.
type Role struct {
	Kind  string // "proposer", "committee", or "fork-proposer"
	Round uint64
	Step  uint64 // 0 for proposer roles
}

// Well-known role kinds.
const (
	RoleProposer     = "proposer"
	RoleCommittee    = "committee"
	RoleForkProposer = "fork-proposer"
)

// Bytes returns the canonical encoding of the role, appended to the
// seed as the VRF input ("seed || role" in Algorithm 1).
func (r Role) Bytes() []byte {
	buf := make([]byte, 0, len(r.Kind)+17)
	buf = append(buf, r.Kind...)
	buf = append(buf, 0)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], r.Round)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], r.Step)
	buf = append(buf, tmp[:]...)
	return buf
}

// alpha builds the VRF input seed||role.
func alpha(seed []byte, role Role) []byte {
	rb := role.Bytes()
	out := make([]byte, 0, len(seed)+len(rb))
	out = append(out, seed...)
	out = append(out, rb...)
	return out
}

// Result is the outcome of running sortition locally (Algorithm 1).
type Result struct {
	// Output is the VRF pseudorandom output ("hash" in the paper).
	Output crypto.VRFOutput
	// Proof is the VRF proof π.
	Proof []byte
	// J is how many of the user's sub-users were selected; zero means
	// not selected.
	J uint64
}

// Selected reports whether the user was chosen at all.
func (r Result) Selected() bool { return r.J > 0 }

// Execute runs Algorithm 1: it evaluates the user's VRF on seed||role
// and computes the number of selected sub-users for a user with weight
// w out of total weight W and expected selections tau.
func Execute(id crypto.Identity, seed []byte, role Role, tau, w, W uint64) Result {
	out, proof := id.VRFProve(alpha(seed, role))
	j := binomial.Select(out[:], w, W, tau)
	return Result{Output: out, Proof: proof, J: j}
}

// Verify runs Algorithm 2: it checks the VRF proof for pk on seed||role
// and returns the number of selected sub-users (zero if the proof is
// invalid or the user was not selected).
func Verify(p crypto.Provider, pk crypto.PublicKey, proof, seed []byte, role Role, tau, w, W uint64) (crypto.VRFOutput, uint64) {
	out, ok := p.VRFVerify(pk, alpha(seed, role), proof)
	if !ok {
		return crypto.VRFOutput{}, 0
	}
	return out, binomial.Select(out[:], w, W, tau)
}

// Priority is a block-proposal priority, comparable byte-wise. Higher
// is better (so the "highest-priority proposer" wins).
type Priority crypto.Digest

// Less reports whether p orders before q (i.e. q has higher priority).
func (p Priority) Less(q Priority) bool {
	for i := 0; i < len(p); i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return false
}

// BestPriority returns the highest priority among the j selected
// sub-users and the winning sub-user index (1-based), per §6: the
// priority of sub-user i is H(vrfOutput || i).
func BestPriority(out crypto.VRFOutput, j uint64) (Priority, uint64) {
	var best Priority
	bestIdx := uint64(0)
	for i := uint64(1); i <= j; i++ {
		d := crypto.HashUint64("algorand.priority", i, out[:])
		p := Priority(d)
		if bestIdx == 0 || best.Less(p) {
			best = p
			bestIdx = i
		}
	}
	return best, bestIdx
}

// SubUserHash returns H(sortitionHash || subUserIndex), the per-sub-user
// hash used both for priorities and for the common coin (Algorithm 9).
func SubUserHash(out crypto.VRFOutput, j uint64) crypto.Digest {
	return crypto.HashUint64("algorand.priority", j, out[:])
}
