package sortition

import (
	"math"
	"testing"

	"algorand/internal/binomial"
	"algorand/internal/crypto"
	"algorand/internal/params"
)

// TestExecuteHardBoundaries pins Execute/Verify at the degenerate edges:
// zero weight, zero committee, and a committee spanning the entire
// stake. Execute and Verify must agree exactly on each.
func TestExecuteHardBoundaries(t *testing.T) {
	p := crypto.NewFast()
	id := p.NewIdentity(crypto.SeedFromUint64(77))
	seed := []byte("boundary-seed")
	role := Role{Kind: RoleCommittee, Round: 3, Step: 1}

	cases := []struct {
		name        string
		tau, w, W   uint64
		wantJ       uint64
		exactJ      bool
		wantPicked  bool
		exactPicked bool
	}{
		{name: "zero-weight", tau: 200, w: 0, W: 1000,
			wantJ: 0, exactJ: true, wantPicked: false, exactPicked: true},
		{name: "zero-committee", tau: 0, w: 100, W: 1000,
			wantJ: 0, exactJ: true, wantPicked: false, exactPicked: true},
		{name: "committee-is-whole-stake", tau: 1000, w: 100, W: 1000,
			wantJ: 100, exactJ: true, wantPicked: true, exactPicked: true},
		{name: "sole-user-owns-everything", tau: 600, w: 1000, W: 1000,
			wantJ: 0, exactJ: false, wantPicked: true, exactPicked: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Execute(id, seed, role, tc.tau, tc.w, tc.W)
			if tc.exactJ && res.J != tc.wantJ {
				t.Fatalf("J = %d, want %d", res.J, tc.wantJ)
			}
			if res.J > tc.w {
				t.Fatalf("J = %d exceeds weight %d", res.J, tc.w)
			}
			if tc.exactPicked && res.Selected() != tc.wantPicked {
				t.Fatalf("Selected() = %v, want %v", res.Selected(), tc.wantPicked)
			}
			_, j := Verify(p, id.PublicKey(), res.Proof, seed, role, tc.tau, tc.w, tc.W)
			if j != res.J {
				t.Fatalf("Verify j=%d disagrees with Execute j=%d", j, res.J)
			}
		})
	}
}

// TestFigure4CommitteeParameters pins the paper's Figure 4 committee
// configuration: τ=2000 with threshold T=0.685 for ordinary steps and
// τ=10000 with T=0.74 for the final step. The derived vote thresholds
// (1370 and 7400) are what the BA⋆ safety analysis (§7.5, Appendix C)
// depends on, so a silent change here must fail a test.
func TestFigure4CommitteeParameters(t *testing.T) {
	d := params.Default()
	if d.TauStep != 2000 || d.TauFinal != 10000 {
		t.Fatalf("committee sizes τ_step=%d τ_final=%d, want 2000/10000", d.TauStep, d.TauFinal)
	}
	if got := d.StepThreshold(); got != 1370 {
		t.Fatalf("step threshold %d, want 1370 (= 0.685·2000)", got)
	}
	if got := d.FinalThreshold(); got != 7400 {
		t.Fatalf("final threshold %d, want 7400 (= 0.74·10000)", got)
	}
	// Both thresholds must be strict majorities of their committees —
	// the overlap argument behind BA⋆ safety needs that.
	if 2*d.StepThreshold() <= d.TauStep {
		t.Fatal("step threshold is not a majority of τ_step")
	}
	if 2*d.FinalThreshold() <= d.TauFinal {
		t.Fatal("final threshold is not a majority of τ_final")
	}
}

// TestCommitteeSizeAtFigure4Tau runs real sortition (VRF and all) over a
// population and checks the realised committee sizes center on τ for
// the Figure 4 committees.
func TestCommitteeSizeAtFigure4Tau(t *testing.T) {
	p := crypto.NewFast()
	const users = 100
	const weight = 500
	const W = users * weight
	ids := make([]crypto.Identity, users)
	for i := range ids {
		ids[i] = p.NewIdentity(crypto.SeedFromUint64(uint64(9000 + i)))
	}
	for _, tau := range []uint64{2000, 10000} {
		var total uint64
		const rounds = 4
		for r := uint64(0); r < rounds; r++ {
			seed := crypto.HashUint64("fig4.seed", r)
			role := Role{Kind: RoleCommittee, Round: r, Step: 1}
			for _, id := range ids {
				total += Execute(id, seed[:], role, tau, weight, W).J
			}
		}
		want := float64(tau * rounds)
		sigma := math.Sqrt(want)
		if math.Abs(float64(total)-want) > 6*sigma {
			t.Fatalf("τ=%d: %d selections over %d rounds, want ≈%.0f (6σ=%.0f)",
				tau, total, rounds, want, 6*sigma)
		}
	}
}

// TestSelectionMatchesCDFInterval is the cross-package agreement check:
// the j that Execute reports must be exactly the CDF interval of
// Binomial(w, τ/W) that the VRF output's fraction falls into —
// CDF(j-1) ≤ hash/2^hashlen < CDF(j). A mismatch would mean prover and
// verifier could disagree about committee membership.
func TestSelectionMatchesCDFInterval(t *testing.T) {
	p := crypto.NewFast()
	const tau, w, W = 300, 40, 1000
	for i := uint64(0); i < 50; i++ {
		id := p.NewIdentity(crypto.SeedFromUint64(500 + i))
		seed := crypto.HashUint64("cdf.seed", i)
		role := Role{Kind: RoleProposer, Round: i}
		res := Execute(id, seed[:], role, tau, w, W)

		frac := binomial.FractionOfHash(res.Output[:])
		upper := binomial.New(w, tau, W).CDF(res.J)
		if frac.Cmp(upper) >= 0 {
			t.Fatalf("i=%d: fraction ≥ CDF(J=%d); j too small", i, res.J)
		}
		if res.J > 0 {
			lower := binomial.New(w, tau, W).CDF(res.J - 1)
			if frac.Cmp(lower) < 0 {
				t.Fatalf("i=%d: fraction < CDF(J-1=%d); j too large", i, res.J-1)
			}
		}
	}
}
