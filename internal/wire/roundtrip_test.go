package wire_test

// The universal round-trip test: one table of every wire-encodable type
// in the repository, asserting the two invariants the codec exists for:
//
//  1. Decode(Encode(m)) == m, exactly (nil proofs stay nil, padding
//     counts survive);
//  2. len(Encode(m)) == m.WireSize() — no hand-counted size constant
//     can drift from the canonical encoding again;
//
// plus the signing invariant: SigningBytes is a strict prefix of the
// canonical encoding for every signed type.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"algorand/internal/blockprop"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/node"
	"algorand/internal/sortition"
	"algorand/internal/wire"
)

func sampleTx() ledger.Transaction {
	return ledger.Transaction{
		From:   crypto.PublicKey{1, 2, 3},
		To:     crypto.PublicKey{4, 5, 6},
		Amount: 1000,
		Fee:    3,
		Nonce:  7,
		Sig:    bytes.Repeat([]byte{0x51}, 64),
	}
}

func sampleVote() ledger.Vote {
	return ledger.Vote{
		Sender:    crypto.PublicKey{9},
		Round:     12,
		Step:      3,
		SortHash:  crypto.VRFOutput{8, 7},
		SortProof: bytes.Repeat([]byte{2}, 80),
		PrevHash:  crypto.HashBytes("prev"),
		Value:     crypto.HashBytes("value"),
		Sig:       bytes.Repeat([]byte{3}, 64),
	}
}

func sampleCert() *ledger.Certificate {
	return &ledger.Certificate{
		Round: 12,
		Step:  3,
		Value: crypto.HashBytes("value"),
		Final: true,
		Votes: []ledger.Vote{sampleVote(), sampleVote()},
	}
}

func sampleBlock() *ledger.Block {
	return &ledger.Block{
		Round:          12,
		PrevHash:       crypto.HashBytes("prev"),
		Timestamp:      42 * time.Second,
		StateRoot:      crypto.HashBytes("state"),
		Seed:           crypto.HashBytes("seed"),
		SeedProof:      bytes.Repeat([]byte{4}, 80),
		Proposer:       crypto.PublicKey{11},
		ProposerProof:  bytes.Repeat([]byte{5}, 80),
		Txns:           []ledger.Transaction{sampleTx(), sampleTx()},
		PayloadPadding: 4096,
	}
}

func samplePriority() blockprop.PriorityMsg {
	return blockprop.PriorityMsg{
		Proposer:  crypto.PublicKey{11},
		Round:     12,
		BlockHash: crypto.HashBytes("block"),
		SortHash:  crypto.VRFOutput{6},
		SortProof: bytes.Repeat([]byte{7}, 80),
		SubUser:   2,
		Priority:  sortition.Priority(crypto.HashBytes("pri")),
		Sig:       bytes.Repeat([]byte{8}, 64),
	}
}

func sampleBlockMsg() blockprop.BlockMsg {
	return blockprop.BlockMsg{Block: sampleBlock(), Announce: samplePriority()}
}

func sampleCheckpoint() *ledger.Checkpoint {
	bal := &ledger.Balances{
		Money: map[crypto.PublicKey]uint64{
			{1}: 100,
			{2}: 250,
			{3}: 7,
		},
		Nonce: map[crypto.PublicKey]uint64{{2}: 4},
	}
	return ledger.CheckpointOf(sampleBlock(), sampleCert(), bal)
}

// sizedMarshaler is what every wire-encodable value in the table
// satisfies: codec plus a WireSize that must match it.
type sizedMarshaler interface {
	wire.Marshaler
	wire.Unmarshaler
	WireSize() int
}

func TestUniversalRoundTrip(t *testing.T) {
	tx := sampleTx()
	unsignedTx := sampleTx()
	unsignedTx.Sig = nil
	vote := sampleVote()
	pri := samplePriority()
	emptyBlock := ledger.EmptyBlock(3, crypto.HashBytes("h"), crypto.HashBytes("s"), crypto.HashBytes("root"))
	bmsg := sampleBlockMsg()

	cases := []struct {
		name string
		m    sizedMarshaler
		zero func() sizedMarshaler
	}{
		{"Transaction", &tx, func() sizedMarshaler { return new(ledger.Transaction) }},
		{"Transaction/unsigned", &unsignedTx, func() sizedMarshaler { return new(ledger.Transaction) }},
		{"Vote", &vote, func() sizedMarshaler { return new(ledger.Vote) }},
		{"Certificate", sampleCert(), func() sizedMarshaler { return new(ledger.Certificate) }},
		{"Certificate/empty", &ledger.Certificate{Round: 1}, func() sizedMarshaler { return new(ledger.Certificate) }},
		{"Block", sampleBlock(), func() sizedMarshaler { return new(ledger.Block) }},
		{"Block/empty", emptyBlock, func() sizedMarshaler { return new(ledger.Block) }},
		{"PriorityMsg", &pri, func() sizedMarshaler { return new(blockprop.PriorityMsg) }},
		{"BlockMsg", &bmsg, func() sizedMarshaler { return new(blockprop.BlockMsg) }},
		{"Checkpoint", sampleCheckpoint(), func() sizedMarshaler { return new(ledger.Checkpoint) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := wire.Encode(c.m)
			if len(data) != c.m.WireSize() {
				t.Fatalf("encoded %d bytes, WireSize says %d", len(data), c.m.WireSize())
			}
			got := c.zero()
			if err := wire.Decode(data, got); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(c.m, got) {
				t.Fatalf("round-trip mismatch:\n got %#v\nwant %#v", got, c.m)
			}
		})
	}
}

// gossipMessages is the full set of gossip envelope types, populated.
func gossipMessages() []network.Message {
	tx := sampleTx()
	return []network.Message{
		&node.VoteMsg{Vote: sampleVote()},
		&node.PriorityGossip{M: samplePriority()},
		&node.BlockAnnounce{M: samplePriority(), Announcer: 3},
		&node.BlockRequest{Hash: crypto.HashBytes("h"), Requester: 2, Nonce: 99},
		&node.BlockGossip{M: sampleBlockMsg(), Recipient: 4},
		&node.TxMsg{Tx: tx},
		&node.TxBatch{Txns: []ledger.Transaction{sampleTx(), sampleTx(), sampleTx()}},
		&node.TxBatch{},
		&node.BlockFill{Block: sampleBlock(), Recipient: 5},
		&node.ChainRequest{FromRound: 10, MaxBlocks: 32, Requester: 1, Nonce: 98},
		&node.ChainReply{
			Blocks:    []*ledger.Block{sampleBlock()},
			Certs:     []*ledger.Certificate{sampleCert()},
			Recipient: 1,
			Nonce:     98,
		},
		&node.CommitAnnounce{Round: 12, Hash: crypto.HashBytes("c"), Announcer: 7},
		&node.SnapshotRequest{MinRound: 40, Requester: 6, Nonce: 97},
		&node.SnapshotReply{Checkpoint: sampleCheckpoint(), Recipient: 6, Nonce: 97},
	}
}

func TestUniversalGossipRoundTrip(t *testing.T) {
	for _, m := range gossipMessages() {
		t.Run(reflect.TypeOf(m).Elem().Name(), func(t *testing.T) {
			tag, payload, err := node.EncodeMessage(m)
			if err != nil {
				t.Fatal(err)
			}
			if len(payload) != m.WireSize() {
				t.Fatalf("encoded %d bytes, WireSize says %d", len(payload), m.WireSize())
			}
			got, err := node.DecodeMessage(tag, payload)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m, got) {
				t.Fatalf("round-trip mismatch:\n got %#v\nwant %#v", got, m)
			}
			if got.ID() != m.ID() {
				t.Fatal("round-trip changed message identity")
			}
		})
	}
}

// TestSigningBytesArePrefix pins the invariant "signing bytes ⊂ wire
// bytes": what a key signs is exactly the canonical encoding up to the
// signature field, so there is one byte layout per type.
func TestSigningBytesArePrefix(t *testing.T) {
	tx := sampleTx()
	vote := sampleVote()
	pri := samplePriority()
	cases := []struct {
		name    string
		m       wire.Marshaler
		signing []byte
	}{
		{"Transaction", &tx, tx.SigningBytes()},
		{"Vote", &vote, vote.SigningBytes()},
		{"PriorityMsg", &pri, pri.SigningBytes()},
	}
	for _, c := range cases {
		full := wire.Encode(c.m)
		if !bytes.HasPrefix(full, c.signing) {
			t.Fatalf("%s: signing bytes are not a prefix of the wire encoding", c.name)
		}
		// The only bytes beyond the signing prefix are the signature
		// field (u32 length + signature).
		if want := len(c.signing) + 4 + 64; len(full) != want {
			t.Fatalf("%s: %d wire bytes, want %d", c.name, len(full), want)
		}
	}
}

// TestWireSizeConstants pins the package-level size constants (used by
// the simulator's bandwidth model and txflow's block filling) to
// the canonical encodings of standard-size messages.
func TestWireSizeConstants(t *testing.T) {
	tx := sampleTx()
	if got := len(wire.Encode(&tx)); got != ledger.TxWireSize {
		t.Fatalf("TxWireSize %d, canonical encoding is %d", ledger.TxWireSize, got)
	}
	vote := sampleVote()
	if got := len(wire.Encode(&vote)); got != ledger.VoteWireSize {
		t.Fatalf("VoteWireSize %d, canonical encoding is %d", ledger.VoteWireSize, got)
	}
	pri := samplePriority()
	if got := len(wire.Encode(&pri)); got != blockprop.PriorityMsgWireSize {
		t.Fatalf("PriorityMsgWireSize %d, canonical encoding is %d", blockprop.PriorityMsgWireSize, got)
	}
	cert := sampleCert()
	if got := len(wire.Encode(cert)); got != ledger.CertWireSize(len(cert.Votes)) {
		t.Fatalf("CertWireSize %d, canonical encoding is %d", ledger.CertWireSize(len(cert.Votes)), got)
	}
	// A TxBatch is a u32 count plus the canonical transactions: its
	// WireSize must track TxWireSize exactly (drift check).
	batch := &node.TxBatch{Txns: []ledger.Transaction{sampleTx(), sampleTx()}}
	if got, want := len(wire.Encode(batch)), 4+2*ledger.TxWireSize; got != want || got != batch.WireSize() {
		t.Fatalf("TxBatch encoding %d bytes, WireSize %d, constant math %d", got, batch.WireSize(), want)
	}
}

// TestTxBatchDecodeRejectsHostileInputs pins the batch decoder's two
// caps: an element count beyond the protocol bound and a cumulative
// payload above MaxTxBatchBytes both fail cleanly (no panic, no
// allocation proportional to the claimed count).
func TestTxBatchDecodeRejectsHostileInputs(t *testing.T) {
	// Hostile count with no payload behind it.
	e := wire.NewEncoderSize(4)
	e.Int(1 << 30)
	if err := wire.Decode(e.Data(), new(node.TxBatch)); err == nil {
		t.Fatal("hostile count accepted")
	}
	// A too-large batch: enough oversized-signature transactions to
	// cross MaxTxBatchBytes while keeping the element count legal.
	tx := sampleTx()
	tx.Sig = bytes.Repeat([]byte{9}, 120)
	n := node.MaxTxBatchBytes/tx.WireSize() + 2
	big := &node.TxBatch{Txns: make([]ledger.Transaction, n)}
	for i := range big.Txns {
		big.Txns[i] = tx
	}
	if err := wire.Decode(wire.Encode(big), new(node.TxBatch)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// Truncated mid-transaction.
	ok := &node.TxBatch{Txns: []ledger.Transaction{sampleTx(), sampleTx()}}
	data := wire.Encode(ok)
	if err := wire.Decode(data[:len(data)-10], new(node.TxBatch)); err == nil {
		t.Fatal("truncated batch accepted")
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := ledger.NewStore(0, 1)
	b := sampleBlock()
	if !s.Put(b, sampleCert()) {
		t.Fatal("Put refused")
	}
	b2 := sampleBlock()
	b2.Round = 13
	if !s.Put(b2, nil) {
		t.Fatal("Put refused")
	}

	data := wire.Encode(s)
	got := new(ledger.Store)
	if err := wire.Decode(data, got); err != nil {
		t.Fatal(err)
	}
	if got.Rounds() != s.Rounds() || got.Bytes != s.Bytes {
		t.Fatalf("snapshot: %d rounds / %d bytes, want %d / %d",
			got.Rounds(), got.Bytes, s.Rounds(), s.Bytes)
	}
	gb, ok := got.Block(12)
	if !ok || gb.Hash() != b.Hash() {
		t.Fatal("block 12 lost in snapshot")
	}
	if _, ok := got.Cert(12); !ok {
		t.Fatal("cert 12 lost in snapshot")
	}
	// Deterministic: re-encoding the decoded store is byte-identical.
	if !bytes.Equal(data, wire.Encode(got)) {
		t.Fatal("snapshot re-encoding differs")
	}
}
