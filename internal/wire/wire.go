// Package wire is the canonical binary codec for every Algorand message
// in this repository: transactions, votes, certificates, blocks, block
// proposal messages and the gossip envelopes of internal/node.
//
// The paper's evaluation quantities (Figures 5-8) are functions of
// message bytes on the wire, so there must be exactly one byte layout
// per type. This package enforces that discipline:
//
//   - Encoder is an append-style writer producing a deterministic
//     encoding: fixed-width little-endian integers, raw fixed-size
//     arrays, and u32-length-prefixed variable byte strings. No
//     reflection, no type information in the stream, no map iteration.
//   - Decoder is the error-accumulating inverse. It never panics on
//     malformed input: every read is bounds-checked against the buffer,
//     every length prefix is validated against the bytes that remain
//     before anything is allocated, and the first failure sticks.
//   - Frames (WriteFrame/ReadFrame) wrap an encoded message for stream
//     transports: a u32 length prefix followed by a one-byte type tag
//     and the payload.
//
// Types opt in by implementing Marshaler/Unmarshaler; their WireSize
// methods must equal len(Encode(m)) exactly (asserted by the universal
// round-trip test), so the simulator's bandwidth model, storage
// accounting and the real TCP transport all count the same bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Marshaler is a type with a canonical wire encoding.
type Marshaler interface {
	EncodeTo(e *Encoder)
}

// Unmarshaler is a type that can reconstruct itself from its canonical
// wire encoding.
type Unmarshaler interface {
	DecodeFrom(d *Decoder)
}

// Encode returns m's canonical encoding.
func Encode(m Marshaler) []byte {
	var e Encoder
	m.EncodeTo(&e)
	return e.Data()
}

// Decode reconstructs m from a canonical encoding produced by Encode,
// requiring that every byte is consumed.
func Decode(data []byte, m Unmarshaler) error {
	d := NewDecoder(data)
	m.DecodeFrom(d)
	return d.Finish()
}

// Encoder builds a deterministic binary encoding by appending to an
// internal buffer. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoderSize returns an encoder with capacity preallocated.
func NewEncoderSize(n int) *Encoder {
	return &Encoder{buf: make([]byte, 0, n)}
}

// Data returns the bytes encoded so far.
func (e *Encoder) Data() []byte { return e.buf }

// Len returns how many bytes have been encoded.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint64 appends a little-endian 64-bit integer.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Uint32 appends a little-endian 32-bit integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Int appends a non-negative Go int as a u32 (node ids, counts and
// bounded lengths; values outside [0, 2³²) are a programming error and
// are clamped into range so the encoding stays well-formed).
func (e *Encoder) Int(v int) {
	if v < 0 {
		v = 0
	}
	if uint64(v) > 0xffffffff {
		v = 0xffffffff
	}
	e.Uint32(uint32(v))
}

// Byte appends one byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Fixed appends a fixed-size field raw, with no length prefix (hashes,
// public keys, VRF outputs — anything whose size is part of the type).
func (e *Encoder) Fixed(b []byte) { e.buf = append(e.buf, b...) }

// Bytes appends a variable-length byte string with a u32 length prefix
// (signatures, sortition proofs).
func (e *Encoder) Bytes(b []byte) {
	e.Int(len(b))
	e.buf = append(e.buf, b...)
}

// Zeros appends n zero bytes (materialized block payload padding).
func (e *Encoder) Zeros(n int) {
	if n <= 0 {
		return
	}
	e.buf = append(e.buf, make([]byte, n)...)
}

// ErrTruncated is reported when the input ends before a field does.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTrailing is reported by Finish when input bytes remain unconsumed.
var ErrTrailing = errors.New("wire: trailing bytes")

// Decoder consumes a canonical encoding. All reads are bounds-checked;
// after the first error every subsequent read returns zero values, so
// DecodeFrom implementations can decode straight through and check
// Err/Finish once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns how many bytes are left to consume.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Fail records an error (used by DecodeFrom implementations for
// semantic validation, e.g. an unknown type tag).
func (d *Decoder) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Finish returns an error if decoding failed or input bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d of %d bytes unconsumed", ErrTrailing, len(d.buf)-d.off, len(d.buf))
	}
	return nil
}

// take reserves n bytes of input, or fails.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.Fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, len(d.buf)-d.off))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads a little-endian 64-bit integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uint32 reads a little-endian 32-bit integer.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Int reads a u32-encoded Go int.
func (d *Decoder) Int() int { return int(d.Uint32()) }

// Byte reads one byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean; any nonzero byte is true.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Fixed fills dst from the input with no length prefix.
func (d *Decoder) Fixed(dst []byte) {
	b := d.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// Bytes reads a u32-length-prefixed byte string into a fresh slice. A
// zero length decodes as nil so optional fields (unsigned messages, nil
// proofs) round-trip exactly. The length is validated against the
// remaining input before any allocation, so hostile prefixes cannot
// force large allocations.
func (d *Decoder) Bytes() []byte {
	n := d.Int()
	if n == 0 {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Count reads a u32 element count for a repeated field and validates
// count*minElemSize against the remaining input, so a hostile count
// cannot force a huge preallocation before the truncation is noticed.
func (d *Decoder) Count(minElemSize int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if n < 0 || n > d.Remaining()/minElemSize {
		d.Fail(fmt.Errorf("%w: count %d exceeds remaining input", ErrTruncated, n))
		return 0
	}
	return n
}

// Skip discards n bytes of input (materialized padding).
func (d *Decoder) Skip(n int) { d.take(n) }

// --- Frames -----------------------------------------------------------------

// MaxFrameSize bounds a frame read from an untrusted stream: 32 MiB
// comfortably fits the 10 MB blocks of the paper's §10.2 throughput
// experiment plus certificates, and caps what a hostile peer can make
// us buffer.
const MaxFrameSize = 32 << 20

// WriteFrame writes one length-prefixed, type-tagged frame: a u32
// little-endian length covering the tag byte and payload, then the tag,
// then the payload.
func WriteFrame(w io.Writer, tag byte, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrameSize", len(payload)+1)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = tag
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame, enforcing
// MaxFrameSize before allocating.
func ReadFrame(r io.Reader) (tag byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}
