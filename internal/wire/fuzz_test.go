package wire_test

// FuzzDecode drives arbitrary bytes through the full untrusted-input
// surface: the frame reader and every tagged message decoder. The
// decoder must never panic — hostile length prefixes, counts and
// truncations surface as errors. Run longer with
//
//	go test -fuzz=FuzzDecode ./internal/wire
//
// (the CI workflow runs a short smoke).

import (
	"bytes"
	"testing"

	"algorand/internal/ledger"
	"algorand/internal/node"
	"algorand/internal/wire"
)

func FuzzDecode(f *testing.F) {
	// Seed with every valid message encoding, framed and bare.
	for _, m := range gossipMessages() {
		tag, payload, err := node.EncodeMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tag, payload)
	}
	f.Add(byte(0), []byte{})
	f.Add(byte(255), bytes.Repeat([]byte{0xff}, 64))
	// Hostile TxBatch shapes: a count promising 2^30 transactions, and
	// a valid batch truncated mid-transaction.
	f.Add(node.TagTxBatch, []byte{0x00, 0x00, 0x00, 0x40})
	if tag, payload, err := node.EncodeMessage(
		&node.TxBatch{Txns: []ledger.Transaction{sampleTx()}}); err == nil {
		f.Add(tag, payload[:len(payload)-7])
	}

	f.Fuzz(func(t *testing.T, tag byte, data []byte) {
		m, err := node.DecodeMessage(tag, data)
		if err == nil {
			// Anything that decodes must re-encode to its own WireSize
			// and decode again — the codec accepts only what it can
			// canonically represent.
			tag2, payload2, err := node.EncodeMessage(m)
			if err != nil {
				t.Fatalf("decoded message failed to encode: %v", err)
			}
			if tag2 != tag {
				t.Fatalf("tag changed %d -> %d", tag, tag2)
			}
			if len(payload2) != m.WireSize() {
				t.Fatalf("re-encoded %d bytes, WireSize says %d", len(payload2), m.WireSize())
			}
			if _, err := node.DecodeMessage(tag2, payload2); err != nil {
				t.Fatalf("re-encoded message failed to decode: %v", err)
			}
		}

		// The frame reader must also survive the same bytes.
		var framed bytes.Buffer
		framed.WriteByte(byte(len(data)))
		framed.Write(data)
		_, _, _ = wire.ReadFrame(&framed)
		_, _, _ = wire.ReadFrame(bytes.NewReader(data))
	})
}
