package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var e Encoder
	e.Uint64(0xdeadbeefcafe)
	e.Uint32(42)
	e.Int(7)
	e.Byte(0xab)
	e.Bool(true)
	e.Bool(false)
	e.Fixed([]byte{1, 2, 3})
	e.Bytes([]byte{4, 5})
	e.Bytes(nil)
	e.Zeros(5)

	d := NewDecoder(e.Data())
	if v := d.Uint64(); v != 0xdeadbeefcafe {
		t.Fatalf("Uint64 = %x", v)
	}
	if v := d.Uint32(); v != 42 {
		t.Fatalf("Uint32 = %d", v)
	}
	if v := d.Int(); v != 7 {
		t.Fatalf("Int = %d", v)
	}
	if v := d.Byte(); v != 0xab {
		t.Fatalf("Byte = %x", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round-trip")
	}
	var fixed [3]byte
	d.Fixed(fixed[:])
	if fixed != [3]byte{1, 2, 3} {
		t.Fatalf("Fixed = %v", fixed)
	}
	if b := d.Bytes(); !bytes.Equal(b, []byte{4, 5}) {
		t.Fatalf("Bytes = %v", b)
	}
	if b := d.Bytes(); b != nil {
		t.Fatalf("empty Bytes = %v, want nil", b)
	}
	d.Skip(5)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderErrorSticks(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if v := d.Uint64(); v != 0 {
		t.Fatalf("truncated Uint64 = %d", v)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v", d.Err())
	}
	// Subsequent reads keep returning zero values without advancing.
	if v := d.Byte(); v != 0 {
		t.Fatalf("read after error = %d", v)
	}
	if err := d.Finish(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Finish = %v", err)
	}
}

func TestDecoderTrailing(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	d.Byte()
	if err := d.Finish(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Finish = %v", err)
	}
}

func TestBytesHostileLength(t *testing.T) {
	// A length prefix claiming 4 GiB over a 10-byte buffer must fail
	// without allocating.
	var e Encoder
	e.Uint32(0xffffffff)
	e.Fixed(make([]byte, 6))
	d := NewDecoder(e.Data())
	if b := d.Bytes(); b != nil {
		t.Fatalf("hostile Bytes = %d bytes", len(b))
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v", d.Err())
	}
}

func TestCountHostile(t *testing.T) {
	var e Encoder
	e.Uint32(1 << 30)
	d := NewDecoder(e.Data())
	if n := d.Count(100); n != 0 {
		t.Fatalf("hostile Count = %d", n)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v", d.Err())
	}
}

func TestEncoderIntClamps(t *testing.T) {
	var e Encoder
	e.Int(-5)
	d := NewDecoder(e.Data())
	if v := d.Int(); v != 0 {
		t.Fatalf("negative Int encoded as %d", v)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{9, 8, 7, 6}
	if err := WriteFrame(&buf, 3, payload); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5+len(payload) {
		t.Fatalf("frame is %d bytes", buf.Len())
	}
	tag, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tag != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("tag %d payload %v", tag, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}
	tag, payload, err := ReadFrame(&buf)
	if err != nil || tag != 1 || len(payload) != 0 {
		t.Fatalf("tag %d payload %v err %v", tag, payload, err)
	}
}

func TestReadFrameHostileLength(t *testing.T) {
	// Length prefix far past MaxFrameSize must be rejected before any
	// allocation happens.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Zero-length frames are malformed too (no room for the tag).
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, make([]byte, MaxFrameSize)); err == nil {
		t.Fatal("oversized frame written")
	}
}
