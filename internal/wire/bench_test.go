package wire_test

// Encode/decode microbenchmarks for the canonical codec, mirroring the
// gob-baseline measurements taken before the refactor (recorded in
// EXPERIMENTS.md): a Vote, a signed Transaction, and a 1 MB block
// transfer with padding materialized.

import (
	"testing"

	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/node"
)

func benchVoteMsg() network.Message { return &node.VoteMsg{Vote: sampleVote()} }

func benchTxMsg() network.Message { return &node.TxMsg{Tx: sampleTx()} }

func benchBlock1MB() network.Message {
	txns := make([]ledger.Transaction, 16)
	for i := range txns {
		txns[i] = sampleTx()
		txns[i].Nonce = uint64(i)
	}
	b := sampleBlock()
	b.Txns = txns
	b.PayloadPadding = 0
	b.PayloadPadding = 1<<20 - b.WireSize()
	return &node.BlockFill{Block: b, Recipient: 1}
}

func benchEncode(b *testing.B, m network.Message) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		_, payload, err := node.EncodeMessage(m)
		if err != nil {
			b.Fatal(err)
		}
		n = len(payload)
	}
	b.ReportMetric(float64(n), "bytes/msg")
}

func benchDecode(b *testing.B, m network.Message) {
	tag, payload, err := node.EncodeMessage(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := node.DecodeMessage(tag, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeVote(b *testing.B)  { benchEncode(b, benchVoteMsg()) }
func BenchmarkWireEncodeTx(b *testing.B)    { benchEncode(b, benchTxMsg()) }
func BenchmarkWireEncodeBlock(b *testing.B) { benchEncode(b, benchBlock1MB()) }
func BenchmarkWireDecodeVote(b *testing.B)  { benchDecode(b, benchVoteMsg()) }
func BenchmarkWireDecodeTx(b *testing.B)    { benchDecode(b, benchTxMsg()) }
func BenchmarkWireDecodeBlock(b *testing.B) { benchDecode(b, benchBlock1MB()) }
