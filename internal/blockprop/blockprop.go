// Package blockprop implements Algorand's block proposal stage (§6):
// proposer selection by sortition with τ_proposer, priority derivation
// from the VRF output, the two-message scheme (small priority+proof
// gossip followed by the full block), and the waiting discipline that
// lets every user settle on the highest-priority proposal.
package blockprop

import (
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/sortition"
	"algorand/internal/vtime"
	"algorand/internal/wire"
)

// PriorityMsg announces a proposer's priority, proof, and the hash of
// the proposed block (§6). At ~320 bytes it propagates quickly and lets
// users discard lower-priority blocks without downloading them; it also
// serves as the authenticated announcement that drives pull-based block
// dissemination (a node fetches the block body from a peer that holds
// it, as the inv/getdata scheme of Bitcoin's gossip, which the paper's
// TCP prototype inherits, does).
type PriorityMsg struct {
	Proposer  crypto.PublicKey
	Round     uint64
	BlockHash crypto.Digest
	SortHash  crypto.VRFOutput
	SortProof []byte
	SubUser   uint64             // winning sub-user index
	Priority  sortition.Priority // H(SortHash || SubUser)
	Sig       []byte
}

// priorityFixedSize is the encoded size of a PriorityMsg's fixed fields
// plus the two u32 length prefixes (proof, signature).
const priorityFixedSize = 32 + 8 + 32 + 64 + 4 + 8 + 32 + 4

// PriorityMsgWireSize is the canonical wire size of a standard priority
// announcement (80-byte ECVRF proof, 64-byte Ed25519 signature); the
// paper quotes "about 200 Bytes" for its flavor of this message.
// Asserted equal to len(wire.Encode) by the universal round-trip test.
const PriorityMsgWireSize = priorityFixedSize + 80 + 64

// encodeSigned appends the fields covered by the signature — every
// field but the signature itself, in wire order. The block hash is
// covered, so only the proposer can bind a hash to its priority — a
// forged second hash would otherwise let an attacker frame an honest
// proposer as an equivocator.
func (m *PriorityMsg) encodeSigned(e *wire.Encoder) {
	e.Fixed(m.Proposer[:])
	e.Uint64(m.Round)
	e.Fixed(m.BlockHash[:])
	e.Fixed(m.SortHash[:])
	e.Bytes(m.SortProof)
	e.Uint64(m.SubUser)
	e.Fixed(m.Priority[:])
}

// EncodeTo implements wire.Marshaler: the signed core followed by the
// length-prefixed signature, so SigningBytes is a strict prefix of the
// canonical encoding.
func (m *PriorityMsg) EncodeTo(e *wire.Encoder) {
	m.encodeSigned(e)
	e.Bytes(m.Sig)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *PriorityMsg) DecodeFrom(d *wire.Decoder) {
	d.Fixed(m.Proposer[:])
	m.Round = d.Uint64()
	d.Fixed(m.BlockHash[:])
	d.Fixed(m.SortHash[:])
	m.SortProof = d.Bytes()
	m.SubUser = d.Uint64()
	d.Fixed(m.Priority[:])
	m.Sig = d.Bytes()
}

// WireSize returns the message's canonical encoded size.
func (m *PriorityMsg) WireSize() int {
	return priorityFixedSize + len(m.SortProof) + len(m.Sig)
}

// SigningBytes returns the signed encoding: the prefix of the canonical
// wire encoding before the signature field.
func (m *PriorityMsg) SigningBytes() []byte {
	e := wire.NewEncoderSize(PriorityMsgWireSize)
	m.encodeSigned(e)
	return e.Data()
}

// BlockMsg carries a full proposed block together with its announce
// (the proposer's signed credentials, §6). The announce's Proposer and
// Round identify the proposal even when the block itself is an empty
// block (as §8.2 recovery proposals are).
type BlockMsg struct {
	Block    *ledger.Block
	Announce PriorityMsg
}

// Proposer returns who made this proposal.
func (m *BlockMsg) Proposer() crypto.PublicKey { return m.Announce.Proposer }

// Round returns the proposal round of the credentials.
func (m *BlockMsg) Round() uint64 { return m.Announce.Round }

// Priority returns the proposal's priority.
func (m *BlockMsg) Priority() sortition.Priority { return m.Announce.Priority }

// WireSize returns the message size (block plus credentials).
func (m *BlockMsg) WireSize() int {
	return m.Block.WireSize() + m.Announce.WireSize()
}

// EncodeTo implements wire.Marshaler: credentials first (small, fixed
// offset), then the block body.
func (m *BlockMsg) EncodeTo(e *wire.Encoder) {
	m.Announce.EncodeTo(e)
	m.Block.EncodeTo(e)
}

// DecodeFrom implements wire.Unmarshaler.
func (m *BlockMsg) DecodeFrom(d *wire.Decoder) {
	m.Announce.DecodeFrom(d)
	m.Block = new(ledger.Block)
	m.Block.DecodeFrom(d)
}

// Proposal is a block proposal this node has made.
type Proposal struct {
	Priority PriorityMsg
	Block    BlockMsg
}

// Propose runs proposer sortition for the round and, if selected,
// builds the proposal messages around the supplied block. It returns
// nil if the user was not selected. The block's seed fields must
// already be filled in by the caller (they depend on the proposer's
// VRF, see ledger.SeedFromVRF).
func Propose(
	id crypto.Identity,
	roleKind string,
	seed crypto.Digest,
	round uint64,
	tauProposer uint64,
	weight, totalWeight uint64,
	block *ledger.Block,
) *Proposal {
	role := sortition.Role{Kind: roleKind, Round: round}
	res := sortition.Execute(id, seed[:], role, tauProposer, weight, totalWeight)
	if !res.Selected() {
		return nil
	}
	pri, idx := sortition.BestPriority(res.Output, res.J)
	pm := PriorityMsg{
		Proposer:  id.PublicKey(),
		Round:     round,
		BlockHash: block.Hash(),
		SortHash:  res.Output,
		SortProof: res.Proof,
		SubUser:   idx,
		Priority:  pri,
	}
	pm.Sig = id.Sign(pm.SigningBytes())
	bm := BlockMsg{Block: block, Announce: pm}
	return &Proposal{Priority: pm, Block: bm}
}

// VerifyPriority checks a priority message: signature, sortition proof
// for the proposer role, sub-user index in range, and the priority hash
// itself. It returns the verified number of selected sub-users (0 if
// invalid).
func VerifyPriority(
	p crypto.Provider,
	m *PriorityMsg,
	roleKind string,
	seed crypto.Digest,
	tauProposer uint64,
	weight, totalWeight uint64,
) uint64 {
	if !p.VerifySig(m.Proposer, m.SigningBytes(), m.Sig) {
		return 0
	}
	role := sortition.Role{Kind: roleKind, Round: m.Round}
	out, j := sortition.Verify(p, m.Proposer, m.SortProof, seed[:], role, tauProposer, weight, totalWeight)
	if j == 0 || out != m.SortHash {
		return 0
	}
	if m.SubUser == 0 || m.SubUser > j {
		return 0
	}
	if sortition.SubUserHash(out, m.SubUser) != crypto.Digest(m.Priority) {
		return 0
	}
	return j
}

// VerifyBlockMsg checks a block message's announce credentials and that
// the body matches the announced hash (the block's semantic validity is
// the ledger's job).
func VerifyBlockMsg(
	p crypto.Provider,
	m *BlockMsg,
	roleKind string,
	seed crypto.Digest,
	tauProposer uint64,
	weight, totalWeight uint64,
) bool {
	if VerifyPriority(p, &m.Announce, roleKind, seed, tauProposer, weight, totalWeight) == 0 {
		return false
	}
	return m.Announce.BlockHash == m.Block.Hash()
}

// WaitResult is the outcome of waiting for block proposals.
type WaitResult struct {
	// Block is the highest-priority proposal received, or nil if the
	// user fell back to the empty block.
	Block *ledger.Block
	// Priority is the winning priority (zero if none).
	Priority sortition.Priority
	// Equivocation reports that the winning proposer sent conflicting
	// blocks and both were discarded (§10.4 optimization).
	Equivocation bool
	// BestPriorityAt is when the winning priority was first learned
	// (for the §10.5 priority-propagation measurement).
	BestPriorityAt time.Duration
}

// arrival is what the node's network handler enqueues for the waiter:
// either a PriorityMsg or a BlockMsg (already credential-verified).
type arrival struct {
	pri *PriorityMsg
	blk *BlockMsg
}

// NewArrivalPriority wraps a verified priority message for the waiter.
func NewArrivalPriority(m *PriorityMsg) any { return arrival{pri: m} }

// NewArrivalBlock wraps a verified block message for the waiter.
func NewArrivalBlock(m *BlockMsg) any { return arrival{blk: m} }

// Wait implements the §6 waiting discipline: listen for priority and
// block messages on inbox for λ_priority+λ_stepvar to learn the highest
// priority, then keep waiting (up to the λ_block deadline measured from
// the start) for the matching block. It returns the chosen block or the
// empty-block fallback.
func Wait(
	proc *vtime.Proc,
	inbox *vtime.Mailbox,
	lambdaPriority, lambdaStepVar, lambdaBlock time.Duration,
) WaitResult {
	return WaitOpts(proc, inbox, lambdaPriority, lambdaStepVar, lambdaBlock, false)
}

// WaitOpts is Wait with the §10.4 equivocation policy selectable:
// keepFirst keeps the first block version received from an equivocating
// proposer instead of discarding both (the ablation of the paper's
// discard-both optimization).
func WaitOpts(
	proc *vtime.Proc,
	inbox *vtime.Mailbox,
	lambdaPriority, lambdaStepVar, lambdaBlock time.Duration,
	keepFirst bool,
) WaitResult {
	start := proc.Now()
	priorityDeadline := start + lambdaPriority + lambdaStepVar
	blockDeadline := start + lambdaBlock

	var best sortition.Priority
	var bestProposer crypto.PublicKey
	var bestAt time.Duration
	haveBest := false
	// Candidate blocks by proposer, to detect equivocation and to have
	// the block at hand when its priority wins. announced tracks the
	// hash each proposer bound to its priority; a second hash marks the
	// proposer an equivocator (§10.4) without needing both block bodies.
	blocks := make(map[crypto.PublicKey]*BlockMsg)
	announced := make(map[crypto.PublicKey]crypto.Digest)
	equivocators := make(map[crypto.PublicKey]bool)

	noteHash := func(proposer crypto.PublicKey, h crypto.Digest) {
		if prev, ok := announced[proposer]; ok && prev != h {
			equivocators[proposer] = true
			return
		}
		announced[proposer] = h
	}

	note := func(pri sortition.Priority, proposer crypto.PublicKey) {
		if !haveBest || best.Less(pri) {
			best = pri
			bestProposer = proposer
			bestAt = proc.Now()
			haveBest = true
		}
	}

	// Phase 1: collect priorities (block messages may arrive too).
	for proc.Now() < priorityDeadline {
		m, ok := proc.RecvDeadline(inbox, priorityDeadline)
		if !ok {
			break
		}
		a := m.(arrival)
		if a.pri != nil {
			note(a.pri.Priority, a.pri.Proposer)
			noteHash(a.pri.Proposer, a.pri.BlockHash)
		}
		if a.blk != nil {
			noteBlock(blocks, equivocators, a.blk)
			note(a.blk.Priority(), a.blk.Proposer())
			noteHash(a.blk.Proposer(), a.blk.Block.Hash())
		}
	}
	if !haveBest {
		return WaitResult{}
	}
	_ = bestAt

	// Phase 2: wait for the winning block.
	for {
		if equivocators[bestProposer] && !keepFirst {
			return WaitResult{Priority: best, Equivocation: true, BestPriorityAt: bestAt}
		}
		if bm, ok := blocks[bestProposer]; ok {
			return WaitResult{Block: bm.Block, Priority: best, BestPriorityAt: bestAt}
		}
		m, ok := proc.RecvDeadline(inbox, blockDeadline)
		if !ok {
			return WaitResult{Priority: best, BestPriorityAt: bestAt} // timed out: empty block
		}
		a := m.(arrival)
		if a.blk != nil {
			noteBlock(blocks, equivocators, a.blk)
			noteHash(a.blk.Proposer(), a.blk.Block.Hash())
		}
		// Late priority messages can still raise the bar.
		if a.pri != nil {
			note(a.pri.Priority, a.pri.Proposer)
			noteHash(a.pri.Proposer, a.pri.BlockHash)
		}
	}
}

// Candidate is one proposer's (non-equivocating) proposal collected by
// WaitAll.
type Candidate struct {
	Block    *ledger.Block
	Priority sortition.Priority
}

// WaitAll listens for the full proposal window and returns every
// distinct proposer's block received, discarding equivocators (§10.4).
// Recovery (§8.2) uses it to settle on the longest proposed fork
// rather than on the single highest priority: a proposer on a short
// branch cannot know a longer one exists, so the highest priority
// alone may name a proposal that most of the network must reject —
// splitting BA⋆'s inputs between that proposal and the empty value.
func WaitAll(
	proc *vtime.Proc,
	inbox *vtime.Mailbox,
	lambdaBlock time.Duration,
) []Candidate {
	blockDeadline := proc.Now() + lambdaBlock
	blocks := make(map[crypto.PublicKey]*BlockMsg)
	equivocators := make(map[crypto.PublicKey]bool)
	for {
		m, ok := proc.RecvDeadline(inbox, blockDeadline)
		if !ok {
			break
		}
		a := m.(arrival)
		if a.blk != nil {
			noteBlock(blocks, equivocators, a.blk)
		}
	}
	var out []Candidate
	for proposer, bm := range blocks {
		if equivocators[proposer] {
			continue
		}
		out = append(out, Candidate{Block: bm.Block, Priority: bm.Priority()})
	}
	return out
}

// noteBlock records a block arrival, flagging equivocation when a
// proposer sends two different blocks for the same round (§10.4: "if a
// user receives two conflicting versions of a block from the highest
// priority block proposer ... he discards both proposals").
func noteBlock(blocks map[crypto.PublicKey]*BlockMsg, equivocators map[crypto.PublicKey]bool, bm *BlockMsg) {
	prev, ok := blocks[bm.Proposer()]
	if ok && prev.Block.Hash() != bm.Block.Hash() {
		equivocators[bm.Proposer()] = true
		return
	}
	blocks[bm.Proposer()] = bm
}
