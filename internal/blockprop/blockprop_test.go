package blockprop

import (
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/sortition"
	"algorand/internal/vtime"
)

const (
	testTau   = 50
	testW     = 10
	testTotal = 200
)

func makeIdentities(n int) (crypto.Provider, []crypto.Identity) {
	p := crypto.NewFast()
	var ids []crypto.Identity
	for i := 0; i < n; i++ {
		ids = append(ids, p.NewIdentity(crypto.SeedFromUint64(uint64(i))))
	}
	return p, ids
}

// propose keeps trying identities until one is selected.
func proposeAny(t *testing.T, ids []crypto.Identity, seed crypto.Digest, round uint64) (*Proposal, crypto.Identity) {
	for _, id := range ids {
		b := &ledger.Block{Round: round, Proposer: id.PublicKey()}
		if prop := Propose(id, sortition.RoleProposer, seed, round, testTau, testW, testTotal, b); prop != nil {
			return prop, id
		}
	}
	t.Fatal("no identity selected as proposer; raise tau")
	return nil, nil
}

func TestProposeVerifyRoundTrip(t *testing.T) {
	p, ids := makeIdentities(20)
	seed := crypto.HashBytes("seed")
	prop, id := proposeAny(t, ids, seed, 3)

	j := VerifyPriority(p, &prop.Priority, sortition.RoleProposer, seed, testTau, testW, testTotal)
	if j == 0 {
		t.Fatal("valid priority message rejected")
	}
	if !VerifyBlockMsg(p, &prop.Block, sortition.RoleProposer, seed, testTau, testW, testTotal) {
		t.Fatal("valid block message rejected")
	}
	if prop.Block.Proposer() != id.PublicKey() {
		t.Fatal("message proposer mismatch")
	}
}

func TestVerifyPriorityRejections(t *testing.T) {
	p, ids := makeIdentities(20)
	seed := crypto.HashBytes("seed")
	prop, _ := proposeAny(t, ids, seed, 3)

	bad := prop.Priority
	bad.SubUser = 0
	if VerifyPriority(p, &bad, sortition.RoleProposer, seed, testTau, testW, testTotal) != 0 {
		t.Fatal("sub-user 0 accepted")
	}
	bad = prop.Priority
	bad.SubUser += 1000
	if VerifyPriority(p, &bad, sortition.RoleProposer, seed, testTau, testW, testTotal) != 0 {
		t.Fatal("out-of-range sub-user accepted")
	}
	bad = prop.Priority
	bad.Priority[0] ^= 1
	if VerifyPriority(p, &bad, sortition.RoleProposer, seed, testTau, testW, testTotal) != 0 {
		t.Fatal("tampered priority accepted (breaks signature)")
	}
	bad = prop.Priority
	bad.Round++
	if VerifyPriority(p, &bad, sortition.RoleProposer, seed, testTau, testW, testTotal) != 0 {
		t.Fatal("wrong round accepted")
	}
	if VerifyPriority(p, &prop.Priority, sortition.RoleForkProposer, seed, testTau, testW, testTotal) != 0 {
		t.Fatal("wrong role accepted")
	}
	if VerifyPriority(p, &prop.Priority, sortition.RoleProposer, crypto.HashBytes("other"), testTau, testW, testTotal) != 0 {
		t.Fatal("wrong seed accepted")
	}
}

func TestVerifyBlockMsgRejections(t *testing.T) {
	p, ids := makeIdentities(20)
	seed := crypto.HashBytes("seed")
	prop, _ := proposeAny(t, ids, seed, 3)

	bad := prop.Block
	bad.Announce.SubUser = 0
	if VerifyBlockMsg(p, &bad, sortition.RoleProposer, seed, testTau, testW, testTotal) {
		t.Fatal("sub-user 0 accepted")
	}
	bad = prop.Block
	bad.Announce.Priority[0] ^= 1
	if VerifyBlockMsg(p, &bad, sortition.RoleProposer, seed, testTau, testW, testTotal) {
		t.Fatal("tampered priority accepted")
	}
	other := crypto.NewFast().NewIdentity(crypto.SeedFromUint64(999))
	bad = prop.Block
	bad.Announce.Proposer = other.PublicKey()
	if VerifyBlockMsg(p, &bad, sortition.RoleProposer, seed, testTau, testW, testTotal) {
		t.Fatal("wrong proposer accepted")
	}
	// Body not matching the announced hash must be rejected.
	bad = prop.Block
	altBlock := *prop.Block.Block
	altBlock.Timestamp += 999
	bad.Block = &altBlock
	if VerifyBlockMsg(p, &bad, sortition.RoleProposer, seed, testTau, testW, testTotal) {
		t.Fatal("body/announce hash mismatch accepted")
	}
}

func TestNotSelectedReturnsNil(t *testing.T) {
	_, ids := makeIdentities(1)
	seed := crypto.HashBytes("seed")
	b := &ledger.Block{Round: 1}
	// tau = 0: nobody is ever selected.
	if prop := Propose(ids[0], sortition.RoleProposer, seed, 1, 0, testW, testTotal, b); prop != nil {
		t.Fatal("selected with tau=0")
	}
}

// waitHarness drives Wait with scripted arrivals.
type waitHarness struct {
	sim   *vtime.Sim
	inbox *vtime.Mailbox
	res   WaitResult
}

func runWait(script func(h *waitHarness)) WaitResult {
	h := &waitHarness{sim: vtime.New()}
	h.inbox = h.sim.NewMailbox()
	h.sim.Spawn("waiter", func(p *vtime.Proc) {
		h.res = Wait(p, h.inbox, 2*time.Second, time.Second, 10*time.Second)
	})
	script(h)
	h.sim.Run(time.Minute)
	return h.res
}

func mkProposal(t *testing.T, seedByte byte, round uint64) *Proposal {
	// Use a distinct identity universe per call so two proposals come
	// from different proposers (same-proposer conflicts are the
	// equivocation case, tested separately).
	p := crypto.NewFast()
	var ids []crypto.Identity
	for i := 0; i < 30; i++ {
		ids = append(ids, p.NewIdentity(crypto.SeedFromUint64(uint64(seedByte)*1000+uint64(i))))
	}
	seed := crypto.HashBytes("wait-seed", []byte{seedByte})
	for _, id := range ids {
		b := &ledger.Block{Round: round, Proposer: id.PublicKey(), Timestamp: time.Duration(seedByte)}
		if prop := Propose(id, sortition.RoleProposer, seed, round, testTau, testW, testTotal, b); prop != nil {
			return prop
		}
	}
	t.Fatal("no proposer")
	return nil
}

func TestWaitPicksHighestPriority(t *testing.T) {
	a := mkProposal(t, 1, 1)
	b := mkProposal(t, 2, 1)
	hi, lo := a, b
	if a.Priority.Priority.Less(b.Priority.Priority) {
		hi, lo = b, a
	}
	res := runWait(func(h *waitHarness) {
		h.sim.After(100*time.Millisecond, func() {
			h.inbox.Send(NewArrivalPriority(&lo.Priority))
			h.inbox.Send(NewArrivalPriority(&hi.Priority))
		})
		h.sim.After(200*time.Millisecond, func() {
			h.inbox.Send(NewArrivalBlock(&lo.Block))
			h.inbox.Send(NewArrivalBlock(&hi.Block))
		})
	})
	if res.Block == nil {
		t.Fatal("no block chosen")
	}
	if res.Block.Hash() != hi.Block.Block.Hash() {
		t.Fatal("did not pick the highest-priority block")
	}
}

func TestWaitFallsBackToEmptyOnMissingBlock(t *testing.T) {
	a := mkProposal(t, 3, 1)
	res := runWait(func(h *waitHarness) {
		h.sim.After(100*time.Millisecond, func() {
			h.inbox.Send(NewArrivalPriority(&a.Priority))
		})
		// Block never arrives.
	})
	if res.Block != nil {
		t.Fatal("expected empty fallback")
	}
	if res.Priority == (sortition.Priority{}) {
		t.Fatal("priority should still be recorded")
	}
}

func TestWaitNoProposals(t *testing.T) {
	res := runWait(func(h *waitHarness) {})
	if res.Block != nil || res.Priority != (sortition.Priority{}) {
		t.Fatal("expected zero result")
	}
}

func TestWaitBlockArrivingLateButBeforeDeadline(t *testing.T) {
	a := mkProposal(t, 4, 1)
	res := runWait(func(h *waitHarness) {
		h.sim.After(100*time.Millisecond, func() {
			h.inbox.Send(NewArrivalPriority(&a.Priority))
		})
		// After the priority window (3s) but before λ_block (10s).
		h.sim.After(6*time.Second, func() {
			h.inbox.Send(NewArrivalBlock(&a.Block))
		})
	})
	if res.Block == nil {
		t.Fatal("late block should still be accepted")
	}
}

func TestWaitEquivocationDiscardsBoth(t *testing.T) {
	a := mkProposal(t, 5, 1)
	alt := *a.Block.Block
	alt.Timestamp += 12345
	altMsg := a.Block
	altMsg.Block = &alt

	res := runWait(func(h *waitHarness) {
		h.sim.After(100*time.Millisecond, func() {
			h.inbox.Send(NewArrivalPriority(&a.Priority))
			h.inbox.Send(NewArrivalBlock(&a.Block))
			h.inbox.Send(NewArrivalBlock(&altMsg))
		})
	})
	if !res.Equivocation {
		t.Fatal("equivocation not detected")
	}
	if res.Block != nil {
		t.Fatal("equivocating proposer's block must be discarded")
	}
}

func TestWaitBlockOnlyNoPriorityMsg(t *testing.T) {
	// A block arriving without its separate priority message still
	// carries the priority; Wait should use it.
	a := mkProposal(t, 6, 1)
	res := runWait(func(h *waitHarness) {
		h.sim.After(100*time.Millisecond, func() {
			h.inbox.Send(NewArrivalBlock(&a.Block))
		})
	})
	if res.Block == nil {
		t.Fatal("block-only proposal not accepted")
	}
}
