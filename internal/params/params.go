// Package params holds Algorand's protocol parameters. The defaults are
// the implementation parameters from Figure 4 of the paper.
package params

import "time"

// Params collects every tunable of the protocol. The zero value is not
// usable; start from Default or Scaled.
type Params struct {
	// HonestFraction h: assumed fraction of money held by honest users.
	HonestFraction float64
	// SeedRefreshInterval R: how many rounds a sortition seed is reused
	// before being refreshed (§5.2).
	SeedRefreshInterval uint64
	// TauProposer: expected number of block proposers (§B.1).
	TauProposer uint64
	// TauStep: expected committee size for ordinary BA⋆ steps (§B.2).
	TauStep uint64
	// TStep: vote threshold for ordinary steps, as a fraction of TauStep.
	TStep float64
	// TauFinal: expected committee size for the final step (§C.1).
	TauFinal uint64
	// TFinal: vote threshold fraction for the final step.
	TFinal float64
	// MaxSteps: maximum BinaryBA⋆ steps before halting for recovery.
	MaxSteps int
	// LambdaPriority: time to gossip sortition proofs.
	LambdaPriority time.Duration
	// LambdaBlock: timeout for receiving a block.
	LambdaBlock time.Duration
	// LambdaStep: timeout for a BA⋆ step.
	LambdaStep time.Duration
	// LambdaStepVar: estimate of BA⋆ completion-time variance.
	LambdaStepVar time.Duration
	// LookbackB is the weak-synchrony period b (§5.3): user weights are
	// taken from the last block at least b older than the seed block.
	LookbackB time.Duration
	// BlockSize is the size of proposed blocks in bytes.
	BlockSize int

	// Ablation switches (for the DESIGN.md ablation benches; all false
	// in normal operation).

	// AblateNoVoteNext3 disables Algorithm 8's vote-in-next-three-steps
	// after reaching consensus, which normally drags stragglers over
	// the vote threshold.
	AblateNoVoteNext3 bool
	// AblateNoCommonCoin replaces Algorithm 9's common coin with a
	// fixed choice of block_hash, reintroducing the vote-splitting
	// attack BA⋆'s third step kind exists to prevent.
	AblateNoCommonCoin bool
}

// Default returns the paper's implementation parameters (Figure 4).
func Default() Params {
	return Params{
		HonestFraction:      0.80,
		SeedRefreshInterval: 1000,
		TauProposer:         26,
		TauStep:             2000,
		TStep:               0.685,
		TauFinal:            10000,
		TFinal:              0.74,
		MaxSteps:            150,
		LambdaPriority:      5 * time.Second,
		LambdaBlock:         time.Minute,
		LambdaStep:          20 * time.Second,
		LambdaStepVar:       5 * time.Second,
		LookbackB:           24 * time.Hour,
		BlockSize:           1 << 20, // 1 MByte
	}
}

// Scaled returns parameters with committee sizes scaled down by the
// given factor while preserving the threshold fractions. Experiments on
// hundreds-to-thousands of simulated users use this so that committees
// remain a minority of users, mirroring the paper's ratios
// (50,000 users : τ_step 2,000 = 4%). The thresholds' safety margins
// shrink with the committee (variance grows relatively), so scaled runs
// trade some of the paper's 5·10⁻⁹ violation bound for tractability;
// EXPERIMENTS.md quantifies this with internal/committee.
func Scaled(factor float64) Params {
	p := Default()
	if factor <= 0 {
		factor = 1
	}
	scale := func(x uint64) uint64 {
		v := uint64(float64(x) / factor)
		if v < 1 {
			v = 1
		}
		return v
	}
	p.TauProposer = scale(p.TauProposer)
	if p.TauProposer < 3 {
		p.TauProposer = 3 // keep multiple proposers likely
	}
	p.TauStep = scale(p.TauStep)
	p.TauFinal = scale(p.TauFinal)
	return p
}

// StepThreshold returns the number of votes needed in an ordinary step:
// strictly more than TStep·TauStep votes (the paper's "> T·τ").
func (p Params) StepThreshold() uint64 {
	return uint64(p.TStep * float64(p.TauStep))
}

// FinalThreshold returns the vote weight needed in the final step.
func (p Params) FinalThreshold() uint64 {
	return uint64(p.TFinal * float64(p.TauFinal))
}
