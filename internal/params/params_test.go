package params

import (
	"testing"
	"time"
)

// TestDefaultsMatchFigure4 pins the paper's implementation parameters.
func TestDefaultsMatchFigure4(t *testing.T) {
	p := Default()
	if p.HonestFraction != 0.80 {
		t.Errorf("h = %v", p.HonestFraction)
	}
	if p.SeedRefreshInterval != 1000 {
		t.Errorf("R = %d", p.SeedRefreshInterval)
	}
	if p.TauProposer != 26 {
		t.Errorf("tau_proposer = %d", p.TauProposer)
	}
	if p.TauStep != 2000 || p.TStep != 0.685 {
		t.Errorf("step committee = %d/%v", p.TauStep, p.TStep)
	}
	if p.TauFinal != 10000 || p.TFinal != 0.74 {
		t.Errorf("final committee = %d/%v", p.TauFinal, p.TFinal)
	}
	if p.MaxSteps != 150 {
		t.Errorf("MaxSteps = %d", p.MaxSteps)
	}
	if p.LambdaPriority != 5*time.Second || p.LambdaBlock != time.Minute ||
		p.LambdaStep != 20*time.Second || p.LambdaStepVar != 5*time.Second {
		t.Errorf("lambdas = %v %v %v %v", p.LambdaPriority, p.LambdaBlock, p.LambdaStep, p.LambdaStepVar)
	}
	if p.BlockSize != 1<<20 {
		t.Errorf("block size = %d", p.BlockSize)
	}
}

func TestThresholds(t *testing.T) {
	p := Default()
	if got := p.StepThreshold(); got != 1370 {
		t.Errorf("step threshold = %d, want 1370", got)
	}
	if got := p.FinalThreshold(); got != 7400 {
		t.Errorf("final threshold = %d, want 7400", got)
	}
}

func TestScaled(t *testing.T) {
	p := Scaled(100)
	if p.TauStep != 20 {
		t.Errorf("scaled tau_step = %d", p.TauStep)
	}
	if p.TauFinal != 100 {
		t.Errorf("scaled tau_final = %d", p.TauFinal)
	}
	if p.TStep != 0.685 || p.TFinal != 0.74 {
		t.Error("thresholds must be preserved under scaling")
	}
	if p.TauProposer < 3 {
		t.Error("proposer count floor violated")
	}
	// Degenerate factors fall back safely.
	q := Scaled(0)
	if q.TauStep != Default().TauStep {
		t.Error("factor 0 should mean unscaled")
	}
	r := Scaled(1e12)
	if r.TauStep < 1 || r.TauFinal < 1 {
		t.Error("scaling must keep committees nonempty")
	}
}
