package gateway

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/txflow"
)

// Server is the gateway's client-facing TCP/JSON endpoint. The
// protocol is the node's -submit-addr protocol (newline-delimited
// JSON, one reply per request — see txflow.Server) extended with
// query ops, and hardened for hostile clients:
//
//   - at most MaxConns concurrent connections; the excess gets
//     {"ok":false,"error":"gateway: connection limit",
//     "retry_after_ms":N} and an immediate close;
//   - one request frame is one line of at most MaxFrameBytes;
//     oversized frames get a typed error and the connection closes;
//   - a connection idle for IdleTimeout is reaped (half-open sockets
//     cannot pin per-connection state);
//   - malformed JSON gets a typed error, never a panic, and costs
//     nothing but the reply.
//
// Requests:
//
//	{"from":...,"to":...,"amount":..,"fee":..,"nonce":..,"sig":...}   submit one
//	[{...},{...}]                                                     submit batch
//	{"op":"balance","account":"<64 hex>"}                             account state
//	{"op":"tx_status","id":"<64 hex>"}                                tx status
//	{"op":"block","round":N}                                          block summary
//	{"op":"head"}                                                     chain head
type Server struct {
	ln net.Listener
	gw *Gateway
	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// queryJSON is the query envelope ("op" distinguishes it from a
// transaction submission, which has no such field).
type queryJSON struct {
	Op      string `json:"op"`
	Account string `json:"account,omitempty"`
	ID      string `json:"id,omitempty"`
	Round   uint64 `json:"round,omitempty"`
}

// queryReply is the query response. AsOfRound reports the read-model
// head the answer was computed against — the consistency-lag contract:
// an answer is exact as of that round and may trail the cluster.
type queryReply struct {
	Ok        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	AsOfRound uint64 `json:"as_of_round"`
	// balance
	Balance uint64 `json:"balance,omitempty"`
	Nonce   uint64 `json:"nonce,omitempty"`
	// tx_status
	Status string `json:"status,omitempty"`
	Round  uint64 `json:"round,omitempty"`
	// block / head
	Hash         string `json:"hash,omitempty"`
	Txs          int    `json:"txs,omitempty"`
	PayloadBytes int    `json:"payload_bytes,omitempty"`
}

// errorReply is the generic typed failure frame.
type errorReply struct {
	Ok           bool   `json:"ok"`
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// batchReply mirrors txflow's submission reply shape.
type batchReply struct {
	Ok           bool            `json:"ok"`
	Error        string          `json:"error,omitempty"`
	RetryAfterMs int64           `json:"retry_after_ms,omitempty"`
	Results      []txflow.Result `json:"results,omitempty"`
}

// ListenAndServe opens the gateway endpoint.
func ListenAndServe(addr string, gw *Gateway) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, gw: gw, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// ConnCount reports currently served connections (tests assert the
// bound holds).
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		if len(s.conns) >= s.gw.cfg.MaxConns {
			s.mu.Unlock()
			s.gw.c.connRejects.Inc()
			// Typed reject with a retry hint; the client backs off and
			// redials (or fails over to another gateway).
			c.SetWriteDeadline(time.Now().Add(2 * time.Second))
			json.NewEncoder(c).Encode(errorReply{
				Error:        "gateway: connection limit",
				RetryAfterMs: s.gw.cfg.ConnRetryAfter.Milliseconds(),
			})
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.gw.c.sessions.Inc()
		s.wg.Add(1)
		go s.serve(c)
	}
}

func (s *Server) serve(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	enc := json.NewEncoder(c)
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 4096), s.gw.cfg.MaxFrameBytes)
	for {
		// Half-open reaping: no full frame within IdleTimeout kills the
		// connection.
		c.SetReadDeadline(time.Now().Add(s.gw.cfg.IdleTimeout))
		if !sc.Scan() {
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				s.gw.c.frameRejects.Inc()
				enc.Encode(errorReply{Error: "gateway: frame exceeds limit"})
			}
			return
		}
		line := sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		if err := enc.Encode(s.handle(line)); err != nil {
			return
		}
	}
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// handle dispatches one request frame.
func (s *Server) handle(raw []byte) any {
	raw = trimSpace(raw)
	if len(raw) > 0 && raw[0] == '[' {
		return s.handleBatch(raw)
	}
	// Distinguish a query from a submission by the "op" field.
	var probe struct {
		Op string `json:"op"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		s.gw.c.frameRejects.Inc()
		return errorReply{Error: "bad request: " + err.Error()}
	}
	if probe.Op != "" {
		return s.handleQuery(raw)
	}
	return s.handleSubmit(raw)
}

func (s *Server) handleSubmit(raw []byte) any {
	var one txflow.TxJSON
	if err := json.Unmarshal(raw, &one); err != nil {
		s.gw.c.frameRejects.Inc()
		return errorReply{Error: "bad tx: " + err.Error()}
	}
	tx, err := one.Transaction()
	if err != nil {
		return errorReply{Error: err.Error()}
	}
	if err := s.gw.Submit(tx); err != nil {
		rep := batchReply{Error: err.Error()}
		if retry, ok := txflow.RetryAfterHint(err); ok {
			rep.RetryAfterMs = retry.Milliseconds()
		}
		return rep
	}
	return batchReply{Ok: true}
}

func (s *Server) handleBatch(raw []byte) any {
	var batch []txflow.TxJSON
	if err := json.Unmarshal(raw, &batch); err != nil {
		s.gw.c.frameRejects.Inc()
		return errorReply{Error: "bad batch: " + err.Error()}
	}
	txs := make([]*ledger.Transaction, len(batch))
	results := make([]txflow.Result, len(batch))
	for i := range batch {
		tx, err := batch[i].Transaction()
		if err != nil {
			results[i] = txflow.Result{Error: err.Error()}
			continue
		}
		txs[i] = tx
	}
	ok := true
	errs := s.gw.SubmitBatch(txs)
	for i, err := range errs {
		if txs[i] == nil {
			ok = false
			continue
		}
		if err != nil {
			ok = false
			results[i] = txflow.Result{Error: err.Error()}
			if retry, hok := txflow.RetryAfterHint(err); hok {
				results[i].RetryAfterMs = retry.Milliseconds()
			}
		} else {
			results[i] = txflow.Result{Ok: true}
		}
	}
	return batchReply{Ok: ok, Results: results}
}

func (s *Server) handleQuery(raw []byte) any {
	var q queryJSON
	if err := json.Unmarshal(raw, &q); err != nil {
		s.gw.c.frameRejects.Inc()
		return errorReply{Error: "bad query: " + err.Error()}
	}
	s.gw.c.queries.Inc()
	rm := s.gw.rm
	switch q.Op {
	case "balance":
		var pk crypto.PublicKey
		if err := hexInto(q.Account, pk[:]); err != nil {
			return errorReply{Error: "balance: bad account key"}
		}
		money, nonce, asOf := rm.Balance(pk)
		return queryReply{Ok: true, Balance: money, Nonce: nonce, AsOfRound: asOf}
	case "tx_status":
		var id crypto.Digest
		if err := hexInto(q.ID, id[:]); err != nil {
			return errorReply{Error: "tx_status: bad id"}
		}
		status, round, asOf := rm.TxStatus(id)
		return queryReply{Ok: true, Status: status, Round: round, AsOfRound: asOf}
	case "block":
		headRound, _ := rm.Head()
		b, ok := rm.BlockAt(q.Round)
		if !ok {
			return queryReply{Ok: false, Error: "block: not retained", AsOfRound: headRound}
		}
		h := b.Hash()
		return queryReply{
			Ok: true, Round: b.Round, Hash: hex.EncodeToString(h[:]),
			Txs: len(b.Txns), PayloadBytes: b.WireSize(), AsOfRound: headRound,
		}
	case "head":
		round, h := rm.Head()
		return queryReply{Ok: true, Round: round, Hash: hex.EncodeToString(h[:]), AsOfRound: round}
	}
	return errorReply{Error: "unknown op: " + q.Op}
}

func hexInto(s string, dst []byte) error {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(dst) {
		return errors.New("bad hex")
	}
	copy(dst, b)
	return nil
}
