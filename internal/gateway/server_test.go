package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"algorand/internal/txflow"
)

// serverHarness boots a gateway TCP endpoint against a stub transport.
func serverHarness(t *testing.T, cfg Config) (*testHarness, *Server) {
	t.Helper()
	h := newHarness(t, cfg, 8)
	srv, err := ListenAndServe("127.0.0.1:0", h.gw)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(srv.Close)
	return h, srv
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes one line and decodes one JSON reply.
func roundTrip(t *testing.T, c net.Conn, line string) map[string]any {
	t.Helper()
	if _, err := fmt.Fprintf(c, "%s\n", line); err != nil {
		t.Fatalf("write: %v", err)
	}
	var reply map[string]any
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := json.NewDecoder(bufio.NewReader(c)).Decode(&reply); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return reply
}

func TestServerSubmitAndQuery(t *testing.T) {
	h, srv := serverHarness(t, Config{})
	c := dialT(t, srv.Addr())

	tx := h.tx(t, 0, 1, 0)
	j := txflow.FromTransaction(tx)
	raw, _ := json.Marshal(j)
	rep := roundTrip(t, c, string(raw))
	if rep["ok"] != true {
		t.Fatalf("submit reply: %v", rep)
	}
	// tx status via the same connection.
	id := tx.ID()
	rep = roundTrip(t, c, fmt.Sprintf(`{"op":"tx_status","id":"%x"}`, id[:]))
	if rep["ok"] != true || rep["status"] != StatusPending {
		t.Fatalf("status reply: %v", rep)
	}
	// balance (unchanged until a block commits; as_of_round present).
	pk := h.ids[0].PublicKey()
	rep = roundTrip(t, c, fmt.Sprintf(`{"op":"balance","account":"%x"}`, pk[:]))
	if rep["ok"] != true || rep["balance"].(float64) != 1000 {
		t.Fatalf("balance reply: %v", rep)
	}
	if _, haveLag := rep["as_of_round"]; !haveLag {
		t.Fatalf("no as_of_round in %v", rep)
	}
	// head.
	rep = roundTrip(t, c, `{"op":"head"}`)
	if rep["ok"] != true {
		t.Fatalf("head reply: %v", rep)
	}
}

func TestServerMalformedInputGetsTypedErrors(t *testing.T) {
	_, srv := serverHarness(t, Config{})
	for _, hostile := range []string{
		`{not json`,
		`{"op":"balance","account":"zz"}`,
		`{"op":"no_such_op"}`,
		`{"from":"short","to":"short","amount":1,"nonce":0,"sig":"00"}`,
		`[{"from":"short"}]`,
		`12345`,
		`"just a string"`,
		`{"op":"tx_status","id":"deadbeef"}`,
	} {
		c := dialT(t, srv.Addr())
		rep := roundTrip(t, c, hostile)
		if rep["ok"] == true {
			t.Fatalf("hostile input %q accepted: %v", hostile, rep)
		}
		// A typed error arrives either at the top level or (for batches)
		// per result.
		typed := rep["error"] != nil && rep["error"] != ""
		if results, ok := rep["results"].([]any); ok && !typed {
			for _, r := range results {
				if m, ok := r.(map[string]any); ok && m["error"] != nil && m["error"] != "" {
					typed = true
				}
			}
		}
		if !typed {
			t.Fatalf("hostile input %q: no typed error in %v", hostile, rep)
		}
		c.Close()
	}
}

func TestServerOversizedFrameRejectedAndClosed(t *testing.T) {
	h, srv := serverHarness(t, Config{MaxFrameBytes: 4096})
	c := dialT(t, srv.Addr())
	// A 64 KiB line against a 4 KiB frame limit.
	huge := strings.Repeat("x", 64<<10)
	rep := roundTrip(t, c, huge)
	if rep["ok"] == true || !strings.Contains(rep["error"].(string), "frame") {
		t.Fatalf("oversized frame reply: %v", rep)
	}
	// The connection must be closed after the typed error.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection stayed open after oversized frame")
	}
	if got := h.gw.Stats().FrameRejects; got == 0 {
		t.Fatal("frame reject not counted")
	}
}

func TestServerConnectionCap(t *testing.T) {
	h, srv := serverHarness(t, Config{MaxConns: 2, ConnRetryAfter: 1500 * time.Millisecond})
	c1 := dialT(t, srv.Addr())
	c2 := dialT(t, srv.Addr())
	// Prove both are served.
	roundTrip(t, c1, `{"op":"head"}`)
	roundTrip(t, c2, `{"op":"head"}`)

	// The third connection gets a typed reject with the retry hint and
	// an immediate close.
	c3 := dialT(t, srv.Addr())
	var rep map[string]any
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := json.NewDecoder(c3).Decode(&rep); err != nil {
		t.Fatalf("no reject frame on capped conn: %v", err)
	}
	if rep["ok"] == true || !strings.Contains(rep["error"].(string), "connection limit") {
		t.Fatalf("cap reject: %v", rep)
	}
	if rep["retry_after_ms"].(float64) != 1500 {
		t.Fatalf("retry_after_ms = %v, want 1500", rep["retry_after_ms"])
	}
	if _, err := c3.Read(make([]byte, 1)); err == nil {
		t.Fatal("capped connection stayed open")
	}
	if h.gw.Stats().ConnRejects == 0 {
		t.Fatal("conn reject not counted")
	}

	// Closing one in-cap connection frees a slot.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnCount() >= 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c4 := dialT(t, srv.Addr())
	rep = roundTrip(t, c4, `{"op":"head"}`)
	if rep["ok"] != true {
		t.Fatalf("freed slot not reusable: %v", rep)
	}
}

func TestServerReapsHalfOpenConnections(t *testing.T) {
	_, srv := serverHarness(t, Config{IdleTimeout: 150 * time.Millisecond})
	c := dialT(t, srv.Addr())
	// Send nothing. The server must reap the connection, not pin its
	// goroutine and map entry forever.
	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.ConnCount(); n != 0 {
		t.Fatalf("half-open connection not reaped: %d still tracked", n)
	}
	// The reaped socket reads EOF/reset on the client side.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("half-open connection still alive")
	}
}

func TestServerBoundedUnderConnectionChurn(t *testing.T) {
	_, srv := serverHarness(t, Config{MaxConns: 8})
	// 100 sequential hostile connections: garbage then slam shut. State
	// must not accumulate.
	for i := 0; i < 100; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		fmt.Fprintf(c, "garbage-%d\n", i)
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.ConnCount(); n != 0 {
		t.Fatalf("%d connections leaked after churn", n)
	}
}

func TestServerBatchSubmitWithPartialRejects(t *testing.T) {
	h, srv := serverHarness(t, Config{})
	c := dialT(t, srv.Addr())
	good := txflow.FromTransaction(h.tx(t, 0, 1, 0))
	dup := good
	tampered := h.tx(t, 2, 1, 0)
	tampered.Sig[0] ^= 0xff // bad signature
	badSig := txflow.FromTransaction(tampered)
	raw, _ := json.Marshal([]txflow.TxJSON{good, dup, badSig})
	rep := roundTrip(t, c, string(raw))
	results := rep["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %v", rep)
	}
	first := results[0].(map[string]any)
	second := results[1].(map[string]any)
	third := results[2].(map[string]any)
	if first["ok"] != true {
		t.Fatalf("good tx rejected: %v", first)
	}
	if second["ok"] == true || !strings.Contains(second["error"].(string), "duplicate") {
		t.Fatalf("duplicate not rejected: %v", second)
	}
	if third["ok"] == true || !strings.Contains(third["error"].(string), "signature") {
		t.Fatalf("tampered-sig tx outcome: %v", third)
	}
}
