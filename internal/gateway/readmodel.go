package gateway

import (
	"sync"
	"time"

	"algorand/internal/cache"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
)

// ReadModel is the gateway's lag-tolerant view of the committed
// chain, fed exclusively by CommitAnnounce gossip plus the block
// bodies fetched in response — it never calls into a consensus node's
// ledger lock. Queries answer from whatever round the model has
// reached and report that round (`as_of_round`), so a client always
// knows how stale an answer may be.
//
// Integrity model: the gateway verifies hash-chain continuity from
// the genesis block it was configured with (every applied block's
// PrevHash must equal the current head hash) and requires
// AnnounceQuorum distinct consensus nodes to have announced the same
// (round, hash) before a block is applied. It does NOT verify BA⋆
// certificates — a quorum of its consensus peers lying in concert can
// feed it a fake suffix. That is the deliberate trust line for the
// access tier: gateways are operated alongside the consensus nodes
// they peer with, and cert verification at the edge would pull
// committee state into every gateway (DESIGN.md "Access gateway").
type ReadModel struct {
	mu sync.RWMutex

	balances  *ledger.Balances
	head      crypto.Digest
	headRound uint64

	// recent is a ring of the last RecentBlocks applied blocks,
	// indexed by round % len.
	recent []*ledger.Block

	// committed maps tx id → commit round for status queries; pending
	// marks ids admitted at this gateway and not yet seen committed.
	// Both are TTL'd two-generation caches, so the status index stays
	// bounded no matter how long the gateway runs.
	committed *cache.TwoGen[crypto.Digest, uint64]
	pending   *cache.TwoGen[crypto.Digest, struct{}]

	// tallies counts announcers per (round, hash) for rounds past the
	// head, bounded by tallyHorizon rounds.
	tallies map[uint64]map[crypto.Digest]map[int]struct{}
	quorum  int

	now func() time.Duration
}

// tallyHorizon bounds how far past the head announce tallies are
// kept; announces further ahead than this are dropped (the gap fill
// will re-learn them when the head catches up).
const tallyHorizon = 128

// FetchKind tells the gateway what the read model needs next.
type FetchKind int

const (
	// FetchNone: nothing to do.
	FetchNone FetchKind = iota
	// FetchBlock: request the block body for Hash (the next round).
	FetchBlock
	// FetchChain: rounds are missing; request the chain from FromRound.
	FetchChain
)

// FetchAction is the read model's reaction to an announce.
type FetchAction struct {
	Kind      FetchKind
	Hash      crypto.Digest
	FromRound uint64
}

// NewReadModel builds the model at genesis. genesis and seed0 must
// match the consensus cluster's configuration: the genesis head hash
// is derived exactly the way ledger.New derives its genesis entry.
func NewReadModel(genesis map[crypto.PublicKey]uint64, seed0 crypto.Digest, quorum, recentBlocks int, statusTTL time.Duration, now func() time.Duration) *ReadModel {
	if quorum <= 0 {
		quorum = 1
	}
	if recentBlocks <= 0 {
		recentBlocks = 64
	}
	if statusTTL <= 0 {
		statusTTL = 5 * time.Minute
	}
	if now == nil {
		panic("gateway: ReadModel needs a clock")
	}
	gBlock := &ledger.Block{Round: 0, Seed: seed0}
	return &ReadModel{
		balances:  ledger.NewBalances(genesis),
		head:      gBlock.Hash(),
		headRound: 0,
		recent:    make([]*ledger.Block, recentBlocks),
		committed: cache.New[crypto.Digest, uint64](statusTTL),
		pending:   cache.New[crypto.Digest, struct{}](statusTTL),
		tallies:   make(map[uint64]map[crypto.Digest]map[int]struct{}),
		quorum:    quorum,
		now:       now,
	}
}

// Observe records one commit announcement and returns the fetch the
// gateway should issue, if any.
func (rm *ReadModel) Observe(round uint64, hash crypto.Digest, announcer int) FetchAction {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if round <= rm.headRound {
		return FetchAction{Kind: FetchNone}
	}
	if round > rm.headRound+tallyHorizon {
		return FetchAction{Kind: FetchNone}
	}
	byHash, ok := rm.tallies[round]
	if !ok {
		byHash = make(map[crypto.Digest]map[int]struct{})
		rm.tallies[round] = byHash
	}
	set, ok := byHash[hash]
	if !ok {
		set = make(map[int]struct{})
		byHash[hash] = set
	}
	set[announcer] = struct{}{}
	if len(set) < rm.quorum {
		return FetchAction{Kind: FetchNone}
	}
	if round == rm.headRound+1 {
		return FetchAction{Kind: FetchBlock, Hash: hash}
	}
	// A quorum exists for a round past the next one: rounds are
	// missing (this gateway was down, partitioned, or just started).
	return FetchAction{Kind: FetchChain, FromRound: rm.headRound + 1}
}

// Apply advances the head by one block if it extends the chain and —
// when a quorum tally for its round exists — matches the
// quorum-announced hash. It returns whether the block was applied
// and, if so, the post-apply balances (for the mempool's nonce
// floors; the pointer stays owned by the model and is only safe to
// read before the next Apply).
func (rm *ReadModel) Apply(b *ledger.Block) (bool, *ledger.Balances) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if b.Round != rm.headRound+1 || b.PrevHash != rm.head {
		return false, nil
	}
	h := b.Hash()
	if byHash, ok := rm.tallies[b.Round]; ok {
		quorumHash, found := crypto.Digest{}, false
		for hash, set := range byHash {
			if len(set) >= rm.quorum {
				quorumHash, found = hash, true
				break
			}
		}
		if found && quorumHash != h {
			return false, nil
		}
	}
	now := rm.now()
	for i := range b.Txns {
		tx := &b.Txns[i]
		// The consensus cluster already validated and agreed on this
		// block; per-tx apply errors here would mean our model diverged
		// (and chain continuity rules that out for honest feeds).
		_ = rm.balances.ApplyTx(tx)
		id := tx.ID()
		rm.committed.Put(id, b.Round, now)
	}
	rm.head = h
	rm.headRound = b.Round
	rm.recent[int(b.Round)%len(rm.recent)] = b
	delete(rm.tallies, b.Round)
	// Drop tallies that can never matter again (behind the head).
	for r := range rm.tallies {
		if r <= rm.headRound {
			delete(rm.tallies, r)
		}
	}
	return true, rm.balances
}

// NotePending marks a tx id admitted at this gateway, so status
// queries distinguish "pending here" from "unknown".
func (rm *ReadModel) NotePending(id crypto.Digest) {
	rm.pending.Put(id, struct{}{}, rm.now())
}

// Head returns the model's round and head hash.
func (rm *ReadModel) Head() (uint64, crypto.Digest) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	return rm.headRound, rm.head
}

// Balance answers an account query: balance, next expected nonce, and
// the round the answer is current as of.
func (rm *ReadModel) Balance(pk crypto.PublicKey) (money, nonce, asOfRound uint64) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	return rm.balances.Money[pk], rm.balances.Nonce[pk], rm.headRound
}

// TxStatus values.
const (
	StatusUnknown   = "unknown"
	StatusPending   = "pending"
	StatusCommitted = "committed"
)

// TxStatus answers a transaction status query. round is meaningful
// only for StatusCommitted; status ages out of the index after the
// configured TTL (an aged-out committed tx reads as unknown — clients
// needing deep history query block-by-round or an archive node).
func (rm *ReadModel) TxStatus(id crypto.Digest) (status string, round, asOfRound uint64) {
	now := rm.now()
	rm.mu.RLock()
	asOfRound = rm.headRound
	rm.mu.RUnlock()
	// Cache lookups take their own locks; committed wins over pending
	// (a committed tx may still sit in the pending index until TTL).
	if r, ok := rm.committed.Get(id, now); ok {
		return StatusCommitted, r, asOfRound
	}
	if rm.pending.Contains(id, now) {
		return StatusPending, 0, asOfRound
	}
	return StatusUnknown, 0, asOfRound
}

// BlockAt returns a recently applied block by round, if it is still
// in the ring.
func (rm *ReadModel) BlockAt(round uint64) (*ledger.Block, bool) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	b := rm.recent[int(round)%len(rm.recent)]
	if b == nil || b.Round != round {
		return nil, false
	}
	return b, true
}

// SnapshotBalances deep-copies the current account state (the router
// uses it to re-stage pending transactions without holding the lock).
func (rm *ReadModel) SnapshotBalances() (*ledger.Balances, uint64) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	return rm.balances.Clone(), rm.headRound
}

// Lag reports how many rounds behind a reference head the model is.
func (rm *ReadModel) Lag(refRound uint64) uint64 {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	if refRound <= rm.headRound {
		return 0
	}
	return refRound - rm.headRound
}
