package gateway

import (
	"fmt"
	"sync"
	"time"

	"algorand/internal/cache"
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/node"
)

// recoveryRoundBase mirrors the node package's §8.2 recovery round
// numbering: certificates at or past this base prove a recovery
// adoption rather than a chain round.
const recoveryRoundBase = uint64(1) << 40

// ReadModel is the gateway's lag-tolerant view of the committed
// chain, fed exclusively by CommitAnnounce gossip plus the
// block+certificate runs fetched in response — it never calls into a
// consensus node's ledger lock. Queries answer from whatever round
// the model has reached and report that round (`as_of_round`), so a
// client always knows how stale an answer may be.
//
// Integrity model: every applied block is backed by a verified BA⋆
// certificate, checked against the committee configuration exactly
// the way a catching-up consensus node checks it (seed-chain
// sortition seeds, look-back weights, τ/threshold by certificate
// kind). The model owns a full ledger replica to hold that
// verification context, so a quorum of lying consensus peers can no
// longer feed the access tier a fake suffix — the only way to move
// this head is a certificate the configured committee actually
// signed. Recovery-adopted rounds (§8.2) carry no certificate of
// their own and are accepted only beneath a later certified block
// that commits to them through the PrevHash chain, the same
// transitive argument network catch-up uses.
type ReadModel struct {
	mu sync.RWMutex

	// l is the model's own chain replica: verification context
	// (seeds, look-back weight snapshots) plus balances. It grows with
	// the chain exactly like a consensus node's ledger does.
	l *ledger.Ledger

	provider  crypto.Provider
	committee ledger.CommitteeParams
	skew      time.Duration

	// recent is a ring of the last RecentBlocks applied blocks,
	// indexed by round % len.
	recent []*ledger.Block

	// committed maps tx id → commit round for status queries; pending
	// marks ids admitted at this gateway and not yet seen committed.
	// Both are TTL'd two-generation caches, so the status index stays
	// bounded no matter how long the gateway runs.
	committed *cache.TwoGen[crypto.Digest, uint64]
	pending   *cache.TwoGen[crypto.Digest, struct{}]

	now func() time.Duration
}

// FetchKind tells the gateway what the read model needs next.
type FetchKind int

const (
	// FetchNone: nothing to do.
	FetchNone FetchKind = iota
	// FetchChain: the announced round is past the head; request the
	// chain (blocks and their certificates) from FromRound.
	FetchChain
)

// FetchAction is the read model's reaction to an announce.
type FetchAction struct {
	Kind      FetchKind
	FromRound uint64
}

// NewReadModel builds the model at genesis. genesis, seed0, lcfg and
// committee must match the consensus cluster's configuration: the
// genesis entry is derived exactly the way ledger.New derives it, and
// certificates are verified under the cluster's committee parameters.
func NewReadModel(provider crypto.Provider, lcfg ledger.Config, committee ledger.CommitteeParams,
	genesis map[crypto.PublicKey]uint64, seed0 crypto.Digest,
	recentBlocks int, statusTTL time.Duration, now func() time.Duration) *ReadModel {
	if recentBlocks <= 0 {
		recentBlocks = 64
	}
	if statusTTL <= 0 {
		statusTTL = 5 * time.Minute
	}
	if now == nil {
		panic("gateway: ReadModel needs a clock")
	}
	return &ReadModel{
		l:         ledger.New(provider, lcfg, genesis, seed0),
		provider:  provider,
		committee: committee,
		skew:      lcfg.MaxTimestampSkew,
		recent:    make([]*ledger.Block, recentBlocks),
		committed: cache.New[crypto.Digest, uint64](statusTTL),
		pending:   cache.New[crypto.Digest, struct{}](statusTTL),
		now:       now,
	}
}

// Observe records one commit announcement and returns the fetch the
// gateway should issue, if any. One announcer suffices: announces are
// only a liveness signal telling the model its head is behind — the
// fetched blocks prove themselves through their certificates, so
// counting distinct announcers would add lag without adding trust.
func (rm *ReadModel) Observe(round uint64) FetchAction {
	rm.mu.RLock()
	head := rm.l.ChainLength()
	rm.mu.RUnlock()
	if round <= head {
		return FetchAction{Kind: FetchNone}
	}
	return FetchAction{Kind: FetchChain, FromRound: head + 1}
}

// applyRound verifies one certified block at the replica's head and
// commits it — the same trustless step node catch-up performs.
func (rm *ReadModel) applyRound(b *ledger.Block, cert *ledger.Certificate) error {
	if cert.Value != b.Hash() {
		return fmt.Errorf("round %d cert/block mismatch", b.Round)
	}
	if cert.Round >= recoveryRoundBase {
		if err := node.VerifyRecoveryCert(rm.provider, rm.l, b, cert, rm.committee); err != nil {
			return fmt.Errorf("round %d recovery cert: %w", b.Round, err)
		}
	} else {
		seed := rm.l.SortitionSeed(b.Round)
		weights, total := rm.l.SortitionWeights(b.Round)
		tau, threshold := rm.committee.TauStep, rm.committee.StepThreshold
		if cert.Final {
			tau, threshold = rm.committee.TauFinal, rm.committee.FinalThreshold
		} else if rm.committee.MaxStep != 0 && cert.Step > rm.committee.MaxStep {
			return fmt.Errorf("round %d absurd step %d", b.Round, cert.Step)
		}
		if err := cert.Verify(rm.provider, seed, weights, total, tau, threshold, rm.l.HeadHash()); err != nil {
			return fmt.Errorf("round %d cert: %w", b.Round, err)
		}
	}
	if err := rm.l.ValidateBlock(b, b.Timestamp+rm.skew); err != nil {
		return fmt.Errorf("round %d block: %w", b.Round, err)
	}
	if err := rm.l.Commit(b, cert); err != nil {
		return fmt.Errorf("round %d commit: %w", b.Round, err)
	}
	return nil
}

// ApplyRun advances the head through a run of blocks and their
// certificates (a ChainReply's payload). Uncertified blocks are held
// as a tentative prefix and commit only beneath a certified anchor;
// a prefix whose anchor fails verification is rolled back entirely.
// It returns the blocks actually committed and the post-run balances
// (for the mempool's nonce floors; the pointer stays owned by the
// model and is only safe to read before the next ApplyRun). A
// non-nil error means a peer served data that failed verification.
func (rm *ReadModel) ApplyRun(blocks []*ledger.Block, certs []*ledger.Certificate) ([]*ledger.Block, *ledger.Balances, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	certOf := make(map[crypto.Digest]*ledger.Certificate, len(certs))
	for _, c := range certs {
		if c != nil {
			certOf[c.Value] = c
		}
	}
	var applied []*ledger.Block
	var pending []*ledger.Block
	var failure error
	for _, b := range blocks {
		if b == nil {
			continue
		}
		if b.Round != rm.l.NextRound()+uint64(len(pending)) {
			continue // stale or ahead; ignore
		}
		cert, ok := certOf[b.Hash()]
		if !ok {
			// A §8.2 recovery adoption: acceptable only on the strength
			// of a later certificate in this run.
			pending = append(pending, b)
			continue
		}
		run := append(pending, b)
		prevHead := rm.l.HeadHash()
		if err := rm.applyCertifiedRun(pending, b, cert); err != nil {
			rm.l.SwitchHead(prevHead)
			failure = err
			break
		}
		applied = append(applied, run...)
		pending = nil
	}
	// Trailing blocks with no certificate anchor are unverifiable and
	// dropped. Index what committed.
	now := rm.now()
	for _, b := range applied {
		for i := range b.Txns {
			rm.committed.Put(b.Txns[i].ID(), b.Round, now)
		}
		rm.recent[int(b.Round)%len(rm.recent)] = b
	}
	return applied, rm.l.Balances(), failure
}

// applyCertifiedRun commits an uncertified prefix plus the certified
// block cb on top of it: cb's certificate transitively validates the
// whole run through the PrevHash chain (§8.3). The caller restores
// the head on error.
func (rm *ReadModel) applyCertifiedRun(pending []*ledger.Block, cb *ledger.Block, cert *ledger.Certificate) error {
	prev := rm.l.HeadHash()
	for _, b := range pending {
		if b.PrevHash != prev {
			return fmt.Errorf("round %d breaks the hash chain", b.Round)
		}
		prev = b.Hash()
	}
	if cb.PrevHash != prev {
		return fmt.Errorf("round %d certified block breaks the hash chain", cb.Round)
	}
	for _, b := range pending {
		if err := rm.l.ValidateBlock(b, b.Timestamp+rm.skew); err != nil {
			return fmt.Errorf("round %d block: %w", b.Round, err)
		}
		if err := rm.l.Commit(b, nil); err != nil {
			return fmt.Errorf("round %d commit: %w", b.Round, err)
		}
	}
	return rm.applyRound(cb, cert)
}

// NotePending marks a tx id admitted at this gateway, so status
// queries distinguish "pending here" from "unknown".
func (rm *ReadModel) NotePending(id crypto.Digest) {
	rm.pending.Put(id, struct{}{}, rm.now())
}

// Head returns the model's round and head hash.
func (rm *ReadModel) Head() (uint64, crypto.Digest) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	return rm.l.ChainLength(), rm.l.HeadHash()
}

// Balance answers an account query: balance, next expected nonce, and
// the round the answer is current as of.
func (rm *ReadModel) Balance(pk crypto.PublicKey) (money, nonce, asOfRound uint64) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	bal := rm.l.Balances()
	return bal.Money[pk], bal.Nonce[pk], rm.l.ChainLength()
}

// TxStatus values.
const (
	StatusUnknown   = "unknown"
	StatusPending   = "pending"
	StatusCommitted = "committed"
)

// TxStatus answers a transaction status query. round is meaningful
// only for StatusCommitted; status ages out of the index after the
// configured TTL (an aged-out committed tx reads as unknown — clients
// needing deep history query block-by-round or an archive node).
func (rm *ReadModel) TxStatus(id crypto.Digest) (status string, round, asOfRound uint64) {
	now := rm.now()
	rm.mu.RLock()
	asOfRound = rm.l.ChainLength()
	rm.mu.RUnlock()
	// Cache lookups take their own locks; committed wins over pending
	// (a committed tx may still sit in the pending index until TTL).
	if r, ok := rm.committed.Get(id, now); ok {
		return StatusCommitted, r, asOfRound
	}
	if rm.pending.Contains(id, now) {
		return StatusPending, 0, asOfRound
	}
	return StatusUnknown, 0, asOfRound
}

// BlockAt returns a recently applied block by round, if it is still
// in the ring.
func (rm *ReadModel) BlockAt(round uint64) (*ledger.Block, bool) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	b := rm.recent[int(round)%len(rm.recent)]
	if b == nil || b.Round != round {
		return nil, false
	}
	return b, true
}

// SnapshotBalances deep-copies the current account state (the router
// uses it to re-stage pending transactions without holding the lock).
func (rm *ReadModel) SnapshotBalances() (*ledger.Balances, uint64) {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	return rm.l.Balances().Clone(), rm.l.ChainLength()
}

// Lag reports how many rounds behind a reference head the model is.
func (rm *ReadModel) Lag(refRound uint64) uint64 {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	if head := rm.l.ChainLength(); refRound > head {
		return refRound - head
	}
	return 0
}
