// Package gateway is the access tier: user-facing front-door nodes
// that sit between clients and the consensus cluster, the archetype
// the paper's deployment sketch needs to serve its claimed 500k users
// (§10) without every client connection landing on a BA⋆ hot path.
//
// A gateway
//
//   - accepts Submit/SubmitBatch plus query RPCs (tx status, balance,
//     block-by-round) over the same TCP/JSON protocol as the node's
//     -submit-addr endpoint (see Server);
//   - validates signatures and nonces at the edge by reusing the
//     txflow pipeline verbatim — structural checks, the TTL'd
//     verified-signature cache, duplicate and stale-nonce filters,
//     per-sender rate windows, bounded pools with typed rejects and
//     retry_after_ms hints;
//   - deterministically routes each admitted transaction by
//     sender-hash to a cluster of consensus nodes and coalesces
//     submissions into TxBatch gossip (see router.go);
//   - answers queries from a lag-tolerant read model fed by
//     CommitAnnounce gossip, applying only blocks whose BA⋆
//     certificates verify against the committee — never by calling
//     into a consensus node's lock (see readmodel.go).
//
// Consensus nodes carry zero client connections: clients talk to
// gateways, gateways talk consensus-gossip. A gateway holds no stake,
// proposes nothing, and votes on nothing — it can crash, restart, or
// be partitioned without touching safety, and every structure it
// keeps (mempool, verified cache, read-model indexes, connection set)
// is explicitly bounded.
package gateway

import (
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/metrics"
	"algorand/internal/network"
	"algorand/internal/node"
	"algorand/internal/txflow"
	"algorand/internal/vtime"
)

// Config assembles a gateway. The zero value of every sizing field
// gets a sensible default.
type Config struct {
	// Consensus lists the network ids of the consensus nodes this
	// gateway routes transactions to and fetches blocks from. Required.
	Consensus []int
	// Clusters partitions senders into deterministic routing clusters
	// (cluster = low 4 bytes of the sender key mod Clusters, the same
	// arithmetic txflow uses for mempool sharding, so every gateway
	// routes a given sender identically). Default min(4, len(Consensus)).
	Clusters int
	// FanOut is how many consensus members of a cluster each flushed
	// batch is sent to (redundancy against a crashed or partitioned
	// member). Default 2.
	FanOut int
	// FlushInterval is how often freshly admitted transactions are
	// coalesced into TxBatch unicasts toward their clusters.
	// Default 250ms.
	FlushInterval time.Duration
	// ResendInterval is how often transactions still pending in the
	// gateway mempool (admitted but not yet observed committed) are
	// re-sent toward their clusters — the recovery path after a routed
	// batch died with a crashed consensus node or a partition.
	// Default 10s.
	ResendInterval time.Duration
	// ResendBudget bounds the bytes re-sent per ResendInterval tick.
	// Default 256 KiB.
	ResendBudget int
	// Committee configures BA⋆ certificate verification in the read
	// model: τ/threshold per certificate kind plus the step bound. It
	// must match the consensus cluster's protocol parameters (see
	// node.CommitteeParamsFor). The zero value verifies nothing and
	// therefore applies nothing — a misconfigured gateway fails safe.
	Committee ledger.CommitteeParams
	// LedgerCfg mirrors the consensus nodes' ledger configuration
	// (seed refresh interval, look-back distance, timestamp skew); the
	// read model's chain replica needs it to derive the same sortition
	// seeds and look-back weights the committee used.
	LedgerCfg ledger.Config
	// RecentBlocks bounds the ring of full blocks retained for
	// block-by-round queries. Default 64.
	RecentBlocks int
	// StatusTTL bounds how long committed and pending transaction ids
	// are queryable in the status index (a TTL'd two-generation cache,
	// not an unbounded map). Entries live between TTL and 2×TTL.
	// Default 5 minutes.
	StatusTTL time.Duration
	// Flow sizes the edge admission pipeline (see txflow.Config).
	// Unless Flow.Now is set, the pipeline clock is the simulator's.
	Flow txflow.Config
	// FlowWorkers, when positive, starts that many background
	// signature-verification workers (real deployments). Zero keeps
	// admission synchronous, which the deterministic simulator needs.
	FlowWorkers int

	// MaxConns caps concurrently served client connections; excess
	// connections get a typed reject with a retry hint and are closed.
	// Default 1024.
	MaxConns int
	// ConnRetryAfter is the retry_after_ms hint attached to
	// connection-cap rejects. Default 1s.
	ConnRetryAfter time.Duration
	// MaxFrameBytes bounds one newline-delimited request frame; larger
	// frames get a typed error and the connection is closed.
	// Default 1 MiB.
	MaxFrameBytes int
	// IdleTimeout reaps half-open connections: a connection that sends
	// nothing for this long is closed. Default 2 minutes.
	IdleTimeout time.Duration

	// Done, when non-nil, reports that the consensus cluster has wound
	// down; the gateway's background processes exit so a simulation
	// drains instead of running to horizon.
	Done func() bool
	// Metrics receives the gateway's counters and gauges
	// (algorand_gateway_*) plus the embedded txflow pipeline's, unless
	// Flow.Metrics overrides the latter. Nil gets a private registry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Clusters <= 0 {
		c.Clusters = 4
	}
	if len(c.Consensus) > 0 && c.Clusters > len(c.Consensus) {
		c.Clusters = len(c.Consensus)
	}
	if c.FanOut <= 0 {
		c.FanOut = 2
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 250 * time.Millisecond
	}
	if c.ResendInterval <= 0 {
		c.ResendInterval = 10 * time.Second
	}
	if c.ResendBudget <= 0 {
		c.ResendBudget = 256 << 10
	}
	if c.RecentBlocks <= 0 {
		c.RecentBlocks = 64
	}
	if c.StatusTTL <= 0 {
		c.StatusTTL = 5 * time.Minute
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.ConnRetryAfter <= 0 {
		c.ConnRetryAfter = time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 1 << 20
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	return c
}

// Gateway is one access-tier node.
type Gateway struct {
	ID  int
	cfg Config

	sim  *vtime.Sim
	net  node.Transport
	flow *txflow.Flow
	rm   *ReadModel

	// Round-robin cursors, one per cluster, so successive flushes
	// rotate across a cluster's members.
	rr []int
	// resendAt is the virtual time of the next pending-tx resend.
	resendAt time.Duration

	// fetchedAt tracks outstanding chain fetches (keyed by starting
	// round) so one gap does not turn every announce into a request.
	fetchedAt map[crypto.Digest]time.Duration
	reqNonce  uint64

	halted bool

	reg *metrics.Registry
	c   gwCounters
}

type gwCounters struct {
	submitted, admitted, rejected          *metrics.Counter
	queries                                *metrics.Counter
	batchesRouted, txsRouted               *metrics.Counter
	bytesRouted, resent                    *metrics.Counter
	announces, blocksApplied               *metrics.Counter
	chainFills, certRejects, staleAnnounce *metrics.Counter
	connRejects, frameRejects              *metrics.Counter
	sessions                               *metrics.Counter
}

// New builds a gateway with network identity id. The genesis account
// map and seed0 must match the consensus cluster's, so the read model
// starts from the same genesis block hash and balances the ledger
// derives. The caller wires the transport handler by calling Start.
func New(id int, sim *vtime.Sim, net node.Transport, provider crypto.Provider, cfg Config, genesis map[crypto.PublicKey]uint64, seed0 crypto.Digest) *Gateway {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.Flow.Metrics == nil {
		cfg.Flow.Metrics = reg
	}
	if cfg.Flow.Now == nil {
		cfg.Flow.Now = sim.Now
	}
	g := &Gateway{
		ID:   id,
		cfg:  cfg,
		sim:  sim,
		net:  net,
		flow: txflow.New(provider, cfg.Flow),
		rm: NewReadModel(provider, cfg.LedgerCfg, cfg.Committee, genesis, seed0,
			cfg.RecentBlocks, cfg.StatusTTL, sim.Now),
		rr:        make([]int, cfg.Clusters),
		fetchedAt: make(map[crypto.Digest]time.Duration),
		reg:       reg,
	}
	g.c = gwCounters{
		submitted:     reg.Counter("algorand_gateway_submitted_total", "transactions offered to the gateway"),
		admitted:      reg.Counter("algorand_gateway_admitted_total", "transactions admitted at the edge"),
		rejected:      reg.Counter("algorand_gateway_rejected_total", "transactions rejected at the edge"),
		queries:       reg.Counter("algorand_gateway_queries_total", "read-model queries answered"),
		batchesRouted: reg.Counter("algorand_gateway_batches_routed_total", "TxBatch unicasts sent toward clusters"),
		txsRouted:     reg.Counter("algorand_gateway_txs_routed_total", "transactions routed toward clusters"),
		bytesRouted:   reg.Counter("algorand_gateway_bytes_routed_total", "encoded transaction bytes routed"),
		resent:        reg.Counter("algorand_gateway_resent_total", "pending transactions re-sent after ResendInterval"),
		announces:     reg.Counter("algorand_gateway_commit_announces_total", "CommitAnnounce messages observed"),
		blocksApplied: reg.Counter("algorand_gateway_blocks_applied_total", "committed blocks applied to the read model"),
		chainFills:    reg.Counter("algorand_gateway_chain_fills_total", "gap-filling chain requests issued"),
		certRejects:   reg.Counter("algorand_gateway_cert_rejects_total", "fetched chain runs rejected for failing certificate verification"),
		staleAnnounce: reg.Counter("algorand_gateway_stale_announces_total", "announces at or below the read-model head"),
		connRejects:   reg.Counter("algorand_gateway_conn_rejects_total", "connections rejected at the connection cap"),
		frameRejects:  reg.Counter("algorand_gateway_frame_rejects_total", "frames rejected as oversized or malformed"),
		sessions:      reg.Counter("algorand_gateway_sessions_total", "client sessions served (connections and virtual sessions)"),
	}
	reg.GaugeFunc("algorand_gateway_head_round", "read-model head round",
		func() float64 { r, _ := g.rm.Head(); return float64(r) })
	reg.GaugeFunc("algorand_gateway_pending", "transactions pending in the gateway mempool",
		func() float64 { return float64(g.flow.Len()) })
	return g
}

// Flow exposes the edge admission pipeline (the real-deployment server
// starts its workers; tests inspect its stats).
func (g *Gateway) Flow() *txflow.Flow { return g.flow }

// ReadModel exposes the query surface.
func (g *Gateway) ReadModel() *ReadModel { return g.rm }

// Registry exposes the gateway's metrics registry.
func (g *Gateway) Registry() *metrics.Registry { return g.reg }

// Start registers the transport handler and spawns the flush process.
func (g *Gateway) Start() {
	g.flow.Start(g.cfg.FlowWorkers)
	g.net.SetHandler(g.ID, network.HandlerFunc(g.handleMessage))
	g.sim.Spawn("gateway-"+itoa(g.ID), g.run)
}

// Close stops the edge pipeline's worker pool (if FlowWorkers started
// one). The gateway remains usable synchronously.
func (g *Gateway) Close() { g.flow.Close() }

// Halt simulates a gateway crash: it stops handling messages and its
// background process winds down. Clients of a halted gateway fail
// over to another; consensus is untouched.
func (g *Gateway) Halt() { g.halted = true }

// Resume undoes Halt (a restarted gateway keeps its read model; a
// truly cold restart would rebuild it from a fresh New).
func (g *Gateway) Resume() { g.halted = false }

// Submit offers one signed transaction at the edge. It returns nil on
// admission or a typed txflow error (ErrDuplicate, ErrStaleNonce,
// ErrBadSig, ErrRateLimited, ...) — use txflow.RetryAfterHint for the
// backoff hint on load-shedding rejects.
func (g *Gateway) Submit(tx *ledger.Transaction) error {
	g.c.submitted.Inc()
	if err := g.flow.Submit(tx); err != nil {
		g.c.rejected.Inc()
		return err
	}
	g.c.admitted.Inc()
	g.rm.NotePending(tx.ID())
	return nil
}

// SubmitBatch offers a batch; the i-th error corresponds to txs[i].
func (g *Gateway) SubmitBatch(txs []*ledger.Transaction) []error {
	g.c.submitted.Add(uint64(len(txs)))
	errs := g.flow.SubmitBatch(txs)
	for i, err := range errs {
		if err != nil {
			g.c.rejected.Inc()
			continue
		}
		g.c.admitted.Inc()
		g.rm.NotePending(txs[i].ID())
	}
	return errs
}

// CountSession bumps the served-session counter for sessions that do
// not arrive over a real socket (the load driver's virtual sessions).
func (g *Gateway) CountSession() { g.c.sessions.Inc() }

// QuerySession serves one simulated read-only client session: connect,
// ask for the chain head and an account's balance, disconnect. It does
// the same read-model work the TCP query path does and counts toward
// the session and query totals, so simulated client populations and
// socket clients share one set of books.
func (g *Gateway) QuerySession(pk crypto.PublicKey) (money, nonce, asOfRound uint64) {
	g.c.sessions.Inc()
	g.c.queries.Add(2)
	g.rm.Head()
	return g.rm.Balance(pk)
}

// handleMessage consumes consensus gossip relevant to the access
// tier. Gateways never relay: they are leaves of the gossip graph.
func (g *Gateway) handleMessage(from int, m network.Message) network.Verdict {
	if g.halted {
		return network.Verdict{}
	}
	switch msg := m.(type) {
	case *node.CommitAnnounce:
		g.c.announces.Inc()
		g.observeAnnounce(msg)
	case *node.ChainReply:
		if msg.Recipient == g.ID {
			g.applyRun(msg.Blocks, msg.Certs)
		}
	}
	return network.Verdict{}
}

// observeAnnounce feeds one commit announcement to the read model and
// issues whatever fetch it asks for. Block bodies always arrive as
// ChainReply runs — the certificates ride along, and only they can
// move the head.
func (g *Gateway) observeAnnounce(msg *node.CommitAnnounce) {
	act := g.rm.Observe(msg.Round)
	if act.Kind != FetchChain {
		g.c.staleAnnounce.Inc()
		return
	}
	now := g.sim.Now()
	// One outstanding fetch per starting round per second: every
	// consensus neighbor announces every round, and each announce
	// would otherwise re-request the same run.
	key := crypto.HashUint64("gateway.chainfill", act.FromRound)
	if at, ok := g.fetchedAt[key]; ok && now-at < time.Second {
		return
	}
	g.fetchedAt[key] = now
	g.gcFetches(now)
	g.c.chainFills.Inc()
	g.reqNonce++
	g.net.Unicast(g.ID, msg.Announcer, &node.ChainRequest{
		FromRound: act.FromRound, MaxBlocks: 64, Requester: g.ID, Nonce: g.reqNonce,
	})
}

// gcFetches bounds the outstanding-fetch map (entries older than a
// minute are dead either way).
func (g *Gateway) gcFetches(now time.Duration) {
	if len(g.fetchedAt) < 256 {
		return
	}
	for h, at := range g.fetchedAt {
		if now-at > time.Minute {
			delete(g.fetchedAt, h)
		}
	}
}

// applyRun advances the read model through a fetched chain run and,
// for each block that actually committed (certificate verified),
// clears its transactions from the gateway mempool so they are
// neither re-sent nor re-admitted.
func (g *Gateway) applyRun(blocks []*ledger.Block, certs []*ledger.Certificate) {
	applied, balances, err := g.rm.ApplyRun(blocks, certs)
	if err != nil {
		g.c.certRejects.Inc()
	}
	for _, b := range applied {
		g.c.blocksApplied.Inc()
		// Nonce floors + pending eviction, same call the node makes on
		// commit. balances is the read model's post-run state.
		g.flow.Committed(b, balances)
	}
}

// run is the gateway's background process: flush admitted
// transactions toward their clusters, periodically re-send still
// pending ones, and wind down when the cluster is done.
func (g *Gateway) run(p *vtime.Proc) {
	g.resendAt = p.Now() + g.cfg.ResendInterval
	for {
		p.Sleep(g.cfg.FlushInterval)
		if g.sim.Stopped() {
			return
		}
		if g.cfg.Done != nil && g.cfg.Done() {
			return
		}
		if g.halted {
			continue
		}
		g.flushOnce()
		if p.Now() >= g.resendAt {
			g.resendAt = p.Now() + g.cfg.ResendInterval
			g.resendPending()
		}
	}
}

// Stats is a point-in-time snapshot of the gateway's registry-backed
// counters plus the embedded pipeline's.
type Stats struct {
	Submitted, Admitted, Rejected           int64
	Queries, Sessions                       int64
	BatchesRouted, TxsRouted, BytesRouted   int64
	Resent                                  int64
	Announces, BlocksApplied                int64
	ChainFills, CertRejects, StaleAnnounces int64
	ConnRejects, FrameRejects               int64
	HeadRound                               uint64
	Pending                                 int
	PendingBytes                            int
	Flow                                    txflow.Stats
}

// Stats snapshots the gateway.
func (g *Gateway) Stats() Stats {
	head, _ := g.rm.Head()
	return Stats{
		Submitted:      int64(g.c.submitted.Load()),
		Admitted:       int64(g.c.admitted.Load()),
		Rejected:       int64(g.c.rejected.Load()),
		Queries:        int64(g.c.queries.Load()),
		Sessions:       int64(g.c.sessions.Load()),
		BatchesRouted:  int64(g.c.batchesRouted.Load()),
		TxsRouted:      int64(g.c.txsRouted.Load()),
		BytesRouted:    int64(g.c.bytesRouted.Load()),
		Resent:         int64(g.c.resent.Load()),
		Announces:      int64(g.c.announces.Load()),
		BlocksApplied:  int64(g.c.blocksApplied.Load()),
		ChainFills:     int64(g.c.chainFills.Load()),
		CertRejects:    int64(g.c.certRejects.Load()),
		StaleAnnounces: int64(g.c.staleAnnounce.Load()),
		ConnRejects:    int64(g.c.connRejects.Load()),
		FrameRejects:   int64(g.c.frameRejects.Load()),
		HeadRound:      head,
		Pending:        g.flow.Len(),
		PendingBytes:   g.flow.PendingBytes(),
		Flow:           g.flow.Stats(),
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
